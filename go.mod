module spt

go 1.22
