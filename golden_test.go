// Golden-output tests for the four text renderers. The fixtures under
// testdata/ pin both the numeric results (the simulator is deterministic)
// and the exact formatting, so map-ordering or layout regressions are
// caught byte-for-byte. The grids run with Jobs: 8 on purpose: the
// determinism tests prove the worker count cannot change the bytes, so
// these fixtures double as an end-to-end check of the parallel path.
//
// Regenerate after an intentional change with:
//
//	go test -run TestGolden -update
package spt_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spt"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func goldenOpt() spt.EvalOptions {
	return spt.EvalOptions{
		Budget:    6_000,
		Workloads: []string{"mcf", "xz", "chacha20"},
		Jobs:      8,
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with `go test -run TestGolden -update`): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("%s: first difference at line %d:\n got: %q\nwant: %q", name, i+1, g, w)
			break
		}
	}
	t.Errorf("%s: output diverged from golden fixture (regenerate with `go test -run TestGolden -update` if intentional)", name)
}

func TestGoldenFigure7(t *testing.T) {
	fig, err := spt.RunFigure7(spt.Futuristic, goldenOpt())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure7_futuristic.golden", fig.Text())
}

// TestGoldenFigure7Sampled pins a sampled Figure-7 grid byte-for-byte: the
// SMARTS-style estimator is deterministic at any worker count, so its text
// rendering is as golden-able as the full detailed run.
func TestGoldenFigure7Sampled(t *testing.T) {
	opt := goldenOpt()
	opt.Sample = spt.SampleSpec{Intervals: 3, Warmup: 300, Detail: 500}
	fig, err := spt.RunFigure7(spt.Futuristic, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure7_sampled.golden", fig.Text())
}

func TestGoldenFigure8(t *testing.T) {
	rows, err := spt.RunFigure8(goldenOpt())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure8.golden", spt.Figure8Text(rows))
}

func TestGoldenFigure9(t *testing.T) {
	rows, err := spt.RunFigure9(goldenOpt())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure9.golden", spt.Figure9Text(rows))
}

func TestGoldenFuzzReport(t *testing.T) {
	rep, err := spt.RunFuzz(spt.FuzzOptions{Seed: 1, Count: 12, Jobs: 8, Minimize: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fuzz_report.golden", rep.Text())
}

// TestGoldenCampaignReport pins the campaign text renderer: unit mix,
// bucket coverage, per-cell verdicts, and the triaged distinct-leak table
// with minimized reproducers. Campaign reports are deterministic at any
// worker count and under any sharding, so the fixture doubles as a check
// of the whole orchestration path (fresh units, corpus mutants, coverage
// mutants, triage, skeleton merge).
func TestGoldenCampaignReport(t *testing.T) {
	rep, err := spt.RunCampaign(spt.CampaignOptions{
		Seed:        1,
		Generations: 2,
		PerGen:      8,
		Schemes:     []spt.Scheme{"unsafe", "spt", "stt"},
		Models:      []spt.AttackModel{spt.Futuristic},
		CorpusDir:   filepath.Join("testdata", "fuzz"),
		Minimize:    0,
		Jobs:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "campaign_report.golden", rep.Text())
}

// TestGoldenPerfReport pins the deterministic projection of the perf
// report: simulated cycle/instruction/IPC columns byte-for-byte, host-time
// fields zeroed (they vary by machine, so the golden excludes them).
func TestGoldenPerfReport(t *testing.T) {
	rep, err := spt.RunPerf(spt.EvalOptions{Budget: 6_000, Workloads: []string{"mcf", "xz", "chacha20"}})
	if err != nil {
		t.Fatal(err)
	}
	js, err := rep.Deterministic().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "perf_report.golden", js)
}

func TestGoldenStatsBreakdown(t *testing.T) {
	bd, err := spt.RunStatsBreakdown(spt.Futuristic, goldenOpt())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "stats_breakdown.golden", bd.Text())
}

// TestGoldenStatsDump pins a full per-run counter dump byte-for-byte: the
// registry contains only simulation-derived values, so the entire JSON is
// safe to golden (host throughput lives outside the registry).
func TestGoldenStatsDump(t *testing.T) {
	res, err := spt.Run("mcf", spt.Options{Scheme: spt.SPTFull, MaxInstructions: 6_000})
	if err != nil {
		t.Fatal(err)
	}
	js, err := res.Stats.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "stats_dump_mcf_spt.golden", js)
}

func TestGoldenWidthSweep(t *testing.T) {
	rows, err := spt.RunWidthSweep([]int{1, 3, -1}, goldenOpt())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "width_sweep.golden", spt.WidthSweepText(rows))
}
