package spt_test

import (
	"strings"
	"testing"

	"spt"
)

func TestRunAllSchemesOnOneWorkload(t *testing.T) {
	for _, scheme := range spt.Schemes() {
		for _, model := range spt.AttackModels() {
			res, err := spt.Run("gcc", spt.Options{
				Scheme:          scheme,
				Model:           model,
				MaxInstructions: 20_000,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", scheme, model, err)
			}
			if res.Cycles == 0 || res.Instructions < 20_000 {
				t.Fatalf("%s/%s: empty result %+v", scheme, model, res)
			}
			if res.IPC() <= 0 || res.CPI() <= 0 {
				t.Fatalf("%s/%s: bad rates", scheme, model)
			}
			isProtected := scheme != spt.UnsafeBaseline
			if (res.Taint != nil) != isProtected {
				t.Fatalf("%s: taint stats presence mismatch", scheme)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := spt.Run("no-such-workload", spt.Options{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := spt.Run("gcc", spt.Options{Scheme: "bogus"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := spt.Run("gcc", spt.Options{Model: "bogus"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := spt.RunAssembly("bad", "not a program", spt.Options{}); err == nil {
		t.Fatal("invalid assembly accepted")
	}
}

func TestRunAssembly(t *testing.T) {
	res, err := spt.RunAssembly("loop", `
  movi r1, 200
top:
  addi r1, r1, -1
  bne r1, r0, top
  halt
`, spt.Options{Scheme: spt.SPTFull})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 402 {
		t.Fatalf("instructions = %d, want 402", res.Instructions)
	}
}

func TestWorkloadsListing(t *testing.T) {
	ws := spt.Workloads()
	if len(ws) != 19 {
		t.Fatalf("workloads = %d, want 19", len(ws))
	}
	classes := map[string]int{}
	for _, w := range ws {
		classes[w.Class]++
	}
	if classes["const-time"] != 3 || classes["int"]+classes["fp"] != 16 {
		t.Fatalf("class split wrong: %v", classes)
	}
}

func TestStatsText(t *testing.T) {
	res, err := spt.Run("namd", spt.Options{Scheme: spt.SPTFull, MaxInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	text := res.StatsText()
	for _, want := range []string{"numCycles", "committedInsts", "untaint.total", "l1dAccesses"} {
		if !strings.Contains(text, want) {
			t.Errorf("stats.txt missing %q:\n%s", want, text)
		}
	}
}

func TestMachineAndSchemeTables(t *testing.T) {
	mt := spt.MachineTable()
	for _, want := range []string{"192 ROB", "32 KB", "256 KB", "2 MB", "4x2 mesh", "MESI"} {
		if !strings.Contains(mt, want) {
			t.Errorf("machine table missing %q", want)
		}
	}
	st := spt.SchemeTable()
	for _, s := range spt.Schemes() {
		if !strings.Contains(st, string(s)) {
			t.Errorf("scheme table missing %q", s)
		}
	}
}

func TestEventNames(t *testing.T) {
	names := spt.EventNames()
	if len(names) < 7 {
		t.Fatalf("event kinds = %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("bad event name list: %v", names)
		}
		seen[n] = true
	}
}

// TestFigure7Shape runs a reduced Figure 7 and asserts the paper's
// qualitative result: protection ordering and the constant-time story.
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fig, err := spt.RunFigure7(spt.Futuristic, spt.EvalOptions{
		Budget:    30_000,
		Workloads: []string{"perlbench", "parest", "djbsort", "chacha20"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fig.MeanSpec[spt.SecureBaseline] < fig.MeanSpec[spt.SPTFull] {
		t.Errorf("SecureBaseline (%.2f) should cost more than SPT (%.2f)",
			fig.MeanSpec[spt.SecureBaseline], fig.MeanSpec[spt.SPTFull])
	}
	if fig.MeanSpec[spt.SPTFull] < 0.95 {
		t.Errorf("SPT normalized mean %.2f below baseline", fig.MeanSpec[spt.SPTFull])
	}
	if fig.MeanCT[spt.SPTFull] > fig.MeanCT[spt.SecureBaseline] {
		t.Errorf("const-time: SPT (%.2f) should beat SecureBaseline (%.2f)",
			fig.MeanCT[spt.SPTFull], fig.MeanCT[spt.SecureBaseline])
	}
}

// TestFigure8And9Smoke exercises the breakdown and histogram harnesses.
func TestFigure8And9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opt := spt.EvalOptions{Budget: 20_000, Workloads: []string{"mcf", "perlbench"}}
	rows8, err := spt.RunFigure8(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows8) != 4 { // 2 workloads x 2 models
		t.Fatalf("fig8 rows = %d", len(rows8))
	}
	var any uint64
	for _, r := range rows8 {
		any += r.Total
	}
	if any == 0 {
		t.Fatal("no untaint events recorded in fig8")
	}
	if s := spt.Figure8Text(rows8); !strings.Contains(s, "mcf") {
		t.Fatal("fig8 text missing workload")
	}

	rows9, err := spt.RunFigure9(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows9) != 2 {
		t.Fatalf("fig9 rows = %d", len(rows9))
	}
	for _, r := range rows9 {
		if r.CumulativePct[9] < 99.9 {
			t.Errorf("%s: cumulative distribution does not reach 100%%: %v", r.Workload, r.CumulativePct)
		}
	}
	if s := spt.Figure9Text(rows9); !strings.Contains(s, "width 3") {
		t.Fatal("fig9 text missing coverage line")
	}
}

// TestWidthSweepMonotonicTrend: wider broadcast never costs performance
// (modulo small timing noise).
func TestWidthSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := spt.RunWidthSweep([]int{1, 3, -1}, spt.EvalOptions{
		Budget:    20_000,
		Workloads: []string{"mcf"},
	})
	if err != nil {
		t.Fatal(err)
	}
	byWidth := map[int]uint64{}
	for _, r := range rows {
		byWidth[r.Width] = r.Cycles
	}
	if byWidth[1] < byWidth[0] {
		t.Errorf("width 1 (%d cycles) faster than unbounded (%d)", byWidth[1], byWidth[0])
	}
	if s := spt.WidthSweepText(rows); !strings.Contains(s, "w=1") {
		t.Fatal("sweep text missing width column")
	}
}

// TestObliviousScheme: the SDO-style extension runs correctly and can beat
// delay-based SPT on workloads where the visibility point lags far behind
// (e.g. dependent scattered loads), at the price of fixed-latency accesses.
func TestObliviousScheme(t *testing.T) {
	res, err := spt.Run("parest", spt.Options{Scheme: spt.SPTOblivious, MaxInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.ObliviousExecs == 0 {
		t.Error("no oblivious executions recorded")
	}
	delay, err := spt.Run("parest", spt.Options{Scheme: spt.SPTFull, MaxInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("parest: delay=%d cycles, oblivious=%d cycles", delay.Cycles, res.Cycles)
	if res.Cycles > delay.Cycles*2 {
		t.Errorf("oblivious execution (%d cycles) should be in the same league as delay (%d)", res.Cycles, delay.Cycles)
	}
}

// TestWarmup: warmed-up measurement excludes cold-start effects.
func TestWarmup(t *testing.T) {
	cold, err := spt.Run("namd", spt.Options{Scheme: spt.UnsafeBaseline, MaxInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := spt.Run("namd", spt.Options{
		Scheme: spt.UnsafeBaseline, MaxInstructions: 20_000, WarmupInstructions: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Instructions < 20_000 || warm.Instructions > 20_000+16 {
		t.Fatalf("measured instructions = %d, want ~20000 (retire-width slack)", warm.Instructions)
	}
	if warm.CPI() >= cold.CPI() {
		t.Errorf("warm CPI %.3f should beat cold CPI %.3f (cold misses excluded)", warm.CPI(), cold.CPI())
	}
}
