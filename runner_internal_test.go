package spt

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testJob(i int) Job {
	return Job{Workload: fmt.Sprintf("w%02d", i), Scheme: SPTFull, Model: Futuristic, Width: 3, Budget: 1_000}
}

func testGrid(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = testJob(i)
	}
	return jobs
}

func stubResult(j Job) *Result {
	return &Result{Workload: j.Workload, Scheme: j.Scheme, Model: j.Model, Cycles: 1, Instructions: 1}
}

func TestRunGridDedupe(t *testing.T) {
	// Three logical references to two unique cells: the duplicate (the
	// "baseline joined twice" pattern) must simulate once.
	jobs := []Job{testJob(0), testJob(1), testJob(0)}
	var calls atomic.Int64
	res, err := runGrid(jobs, EvalOptions{Jobs: 4}, func(j Job) (*Result, error) {
		calls.Add(1)
		return stubResult(j), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("runs = %d, want 2 (dedupe)", calls.Load())
	}
	if len(res) != 2 {
		t.Errorf("results = %d, want 2", len(res))
	}
	for _, j := range jobs {
		if res[j] == nil || res[j].Workload != j.Workload {
			t.Errorf("missing or wrong result for %s", j)
		}
	}
}

func TestRunGridEmpty(t *testing.T) {
	res, err := runGrid(nil, EvalOptions{}, func(j Job) (*Result, error) {
		t.Error("run called for empty grid")
		return nil, nil
	})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty grid: res=%v err=%v", res, err)
	}
}

func TestRunGridPanicRecovery(t *testing.T) {
	for _, workers := range []int{1, 8} {
		jobs := testGrid(6)
		_, err := runGrid(jobs, EvalOptions{Jobs: workers}, func(j Job) (*Result, error) {
			if j == jobs[3] {
				panic("simulated crash")
			}
			return stubResult(j), nil
		})
		if err == nil {
			t.Fatalf("Jobs=%d: panic not converted to error", workers)
		}
		if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), jobs[3].Workload) {
			t.Errorf("Jobs=%d: panic error should name the job: %v", workers, err)
		}
	}
}

func TestRunGridSequentialOrderAndFirstError(t *testing.T) {
	jobs := testGrid(8)
	var ran []string
	wantErr := fmt.Errorf("cell failed")
	_, err := runGrid(jobs, EvalOptions{Jobs: 1}, func(j Job) (*Result, error) {
		ran = append(ran, j.Workload)
		if j == jobs[2] {
			return nil, wantErr
		}
		return stubResult(j), nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want the job's error", err)
	}
	// Jobs: 1 runs in grid order and stops at the first failure.
	if want := []string{"w00", "w01", "w02"}; !reflect.DeepEqual(ran, want) {
		t.Errorf("sequential run order = %v, want %v", ran, want)
	}
}

func TestRunGridParallelErrorPropagation(t *testing.T) {
	jobs := testGrid(32)
	wantErr := fmt.Errorf("cell failed")
	var calls atomic.Int64
	_, err := runGrid(jobs, EvalOptions{Jobs: 4}, func(j Job) (*Result, error) {
		calls.Add(1)
		if j == jobs[0] {
			return nil, wantErr
		}
		time.Sleep(time.Millisecond) // keep other workers busy past the cancel
		return stubResult(j), nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want the job's error", err)
	}
	if calls.Load() >= int64(len(jobs)) {
		t.Errorf("first error should stop the grid early, but all %d jobs ran", len(jobs))
	}
}

func TestRunGridContextCancel(t *testing.T) {
	// Pre-cancelled context: nothing simulates.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	run := func(j Job) (*Result, error) {
		calls.Add(1)
		return stubResult(j), nil
	}
	for _, workers := range []int{1, 4} {
		calls.Store(0)
		_, err := runGrid(testGrid(16), EvalOptions{Jobs: workers, Context: ctx}, run)
		if err != context.Canceled {
			t.Fatalf("Jobs=%d: err = %v, want context.Canceled", workers, err)
		}
		if calls.Load() != 0 {
			t.Errorf("Jobs=%d: %d jobs ran under a cancelled context", workers, calls.Load())
		}
	}

	// Cancellation mid-grid stops the remaining feed.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	calls.Store(0)
	_, err := runGrid(testGrid(64), EvalOptions{Jobs: 2, Context: ctx2}, func(j Job) (*Result, error) {
		if calls.Add(1) == 3 {
			cancel2()
		}
		return stubResult(j), nil
	})
	if err != context.Canceled {
		t.Fatalf("mid-grid cancel: err = %v, want context.Canceled", err)
	}
	if calls.Load() >= 64 {
		t.Error("mid-grid cancel did not stop the feed")
	}
}

func TestRunGridProgress(t *testing.T) {
	const n = 24
	var mu sync.Mutex
	var dones []int
	var totals []int
	_, err := runGrid(testGrid(n), EvalOptions{
		Jobs: 8,
		Progress: func(done, total int, j Job) {
			mu.Lock()
			dones = append(dones, done)
			totals = append(totals, total)
			mu.Unlock()
		},
	}, func(j Job) (*Result, error) { return stubResult(j), nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != n {
		t.Fatalf("progress calls = %d, want %d", len(dones), n)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done sequence not monotonic: %v", dones)
		}
		if totals[i] != n {
			t.Fatalf("total = %d at call %d, want %d", totals[i], i, n)
		}
	}
}

// TestRunGridProgressCountsFailedJobs pins the exact-completion-accounting
// contract: progress ticks once per executed job, including the job that
// fails. Before the fix, a failing (or panicking) final job never reported,
// so a caller's tick count understated the work that actually ran.
func TestRunGridProgressCountsFailedJobs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 5
		jobs := testGrid(n)
		var mu sync.Mutex
		executed := 0
		var lastDone int
		_, err := runGrid(jobs, EvalOptions{
			Jobs: workers,
			Progress: func(done, total int, j Job) {
				mu.Lock()
				lastDone = done
				mu.Unlock()
			},
		}, func(j Job) (*Result, error) {
			mu.Lock()
			executed++
			mu.Unlock()
			if j == jobs[n-1] {
				panic("simulated crash in the final job")
			}
			return stubResult(j), nil
		})
		if err == nil {
			t.Fatalf("Jobs=%d: expected the panic to surface as an error", workers)
		}
		if lastDone != executed {
			t.Errorf("Jobs=%d: progress reported %d completions but %d jobs executed", workers, lastDone, executed)
		}
		// Sequentially every job up to and including the panic runs, so the
		// final tick is exactly n. (In parallel, jobs drained after the
		// cancel never execute — and correctly never report.)
		if workers == 1 && lastDone != n {
			t.Errorf("final tick = %d, want %d (the panicking job must report)", lastDone, n)
		}
	}
}

// checkNoGoroutineLeak registers a cleanup that fails the test if the
// goroutine count has not returned to (at most) its starting level shortly
// after the test body finishes — a worker goroutine leaked past wg.Wait
// would hold the count up forever.
func checkNoGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d goroutines before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// TestRunGridCancelMidGridAccounting cancels the grid at several points and
// pins the exact completion-accounting contract under cancellation: every
// executed job ticks progress exactly once, no job starts after the pool
// observed the cancellation, and no worker goroutine leaks. This extends
// TestRunGridProgressCountsFailedJobs to the cancellation path spt-serve's
// DELETE handler and the CLI signal contexts rely on.
func TestRunGridCancelMidGridAccounting(t *testing.T) {
	const n = 48
	for _, workers := range []int{1, 4, 8} {
		for _, cancelAt := range []int{1, n / 2, n - 1} {
			t.Run(fmt.Sprintf("workers=%d/cancelAt=%d", workers, cancelAt), func(t *testing.T) {
				checkNoGoroutineLeak(t)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var mu sync.Mutex
				executed := 0
				ticks := 0
				_, err := runGrid(testGrid(n), EvalOptions{
					Jobs:    workers,
					Context: ctx,
					Progress: func(done, total int, j Job) {
						mu.Lock()
						ticks++
						if done != ticks {
							t.Errorf("done = %d at tick %d", done, ticks)
						}
						mu.Unlock()
					},
				}, func(j Job) (*Result, error) {
					mu.Lock()
					executed++
					if executed == cancelAt {
						cancel()
					}
					mu.Unlock()
					return stubResult(j), nil
				})
				if err != context.Canceled {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
				mu.Lock()
				defer mu.Unlock()
				// Promptness: after the cancelling job, only simulations
				// already in flight may finish — at most workers-1 of them,
				// plus (parallel only) one more the feed had already handed
				// over before it observed the cancellation.
				if max := cancelAt + workers; executed > max {
					t.Errorf("executed = %d jobs, want <= %d (cancel at %d with %d workers)",
						executed, max, cancelAt, workers)
				}
				if ticks != executed {
					t.Errorf("progress ticks = %d but %d jobs executed", ticks, executed)
				}
			})
		}
	}
}

// TestRunPoolCancellationCause pins that a cancellation reason set via
// context.WithCancelCause surfaces from runPool, so a server cancelling a
// job can tell its callers why the grid stopped.
func TestRunPoolCancellationCause(t *testing.T) {
	wantCause := fmt.Errorf("cancelled by DELETE /v1/jobs")
	for _, workers := range []int{1, 4} {
		checkNoGoroutineLeak(t)
		ctx, cancel := context.WithCancelCause(context.Background())
		var calls atomic.Int64
		_, err := runGrid(testGrid(32), EvalOptions{Jobs: workers, Context: ctx}, func(j Job) (*Result, error) {
			if calls.Add(1) == 2 {
				cancel(wantCause)
			}
			return stubResult(j), nil
		})
		cancel(nil)
		if err != wantCause {
			t.Errorf("Jobs=%d: err = %v, want the cancellation cause", workers, err)
		}
	}
}

// TestRunJobsReal exercises the public API end to end on tiny real
// simulations and checks a parallel grid result matches a direct Run.
func TestRunJobsReal(t *testing.T) {
	jobs := []Job{
		{Workload: "gcc", Scheme: SPTFull, Model: Futuristic, Width: 3, Budget: 3_000},
		{Workload: "mcf", Scheme: UnsafeBaseline, Model: Spectre, Width: 3, Budget: 3_000},
		{Workload: "gcc", Scheme: SPTFull, Model: Futuristic, Width: 3, Budget: 3_000}, // duplicate
	}
	res, err := RunJobs(jobs, EvalOptions{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2 (dedupe)", len(res))
	}
	direct, err := Run(jobs[0].Workload, jobs[0].options())
	if err != nil {
		t.Fatal(err)
	}
	// Host timing is wall-clock and varies run to run; only the simulated
	// results must match.
	got, want := *res[jobs[0]], *direct
	got.Host, want.Host = HostStats{}, HostStats{}
	if !reflect.DeepEqual(got, want) {
		t.Error("grid result differs from a direct Run of the same cell")
	}
}
