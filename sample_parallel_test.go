package spt_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"spt"
)

// TestSampledWindowJobsBitIdentical is the parallel-window acceptance: one
// sampled simulation must produce a bit-identical Result (modulo host
// timing) whether its measured windows run serially or eight at a time.
func TestSampledWindowJobsBitIdentical(t *testing.T) {
	run := func(jobs int) *spt.Result {
		res, err := spt.Run("gcc", spt.Options{
			Scheme:          spt.SPTFull,
			MaxInstructions: 24_000,
			Sample:          spt.SampleSpec{Intervals: 6, Warmup: 400, Detail: 800},
			Jobs:            jobs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	a, b := *serial, *parallel
	a.Host, b.Host = spt.HostStats{}, spt.HostStats{}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sampled result differs between Jobs:1 and Jobs:8\nserial:   %+v\nparallel: %+v",
			serial.Sampled, parallel.Sampled)
	}
	ja, err := serial.Stats.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := parallel.Stats.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if ja != jb {
		t.Error("last-window stats dump differs between Jobs:1 and Jobs:8")
	}
	if parallel.Host.CPUSeconds <= 0 || parallel.Host.Seconds <= 0 {
		t.Errorf("host stats not populated: %+v", parallel.Host)
	}
}

// TestSampledWindowJobsViaEval checks the harness plumbing: a grid cell
// run with EvalOptions.WindowJobs matches a plain serial run of the same
// cell.
func TestSampledWindowJobsViaEval(t *testing.T) {
	job := spt.Job{
		Workload: "mcf", Scheme: spt.SPTFull, Model: spt.Futuristic, Width: 3,
		Budget: 12_000, Sample: spt.SampleSpec{Intervals: 4, Warmup: 300, Detail: 600},
	}
	res, err := spt.RunJobs([]spt.Job{job}, spt.EvalOptions{Jobs: 1, WindowJobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := spt.Run(job.Workload, spt.Options{
		Scheme: job.Scheme, Model: job.Model, UntaintBroadcastWidth: job.Width,
		MaxInstructions: job.Budget, Sample: job.Sample,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := *res[job], *ref
	a.Host, b.Host = spt.HostStats{}, spt.HostStats{}
	if !reflect.DeepEqual(a, b) {
		t.Error("WindowJobs grid cell differs from a serial run of the same cell")
	}
}

// TestSampledCancellation is the cancellation regression: cancelling the
// run's context with a cause aborts in-flight windows promptly and
// surfaces that cause, for both the serial and the parallel window pool.
func TestSampledCancellation(t *testing.T) {
	cause := errors.New("operator hit ctrl-c")
	for _, jobs := range []int{1, 4} {
		ctx, cancel := context.WithCancelCause(context.Background())
		done := make(chan error, 1)
		go func() {
			// A budget large enough that the run cannot finish before the
			// cancellation lands.
			_, err := spt.Run("gcc", spt.Options{
				Scheme:          spt.SPTFull,
				MaxInstructions: 50_000_000,
				Sample:          spt.SampleSpec{Intervals: 100},
				Jobs:            jobs,
				Context:         ctx,
			})
			done <- err
		}()
		time.Sleep(30 * time.Millisecond)
		cancel(cause)
		select {
		case err := <-done:
			if !errors.Is(err, cause) {
				t.Errorf("Jobs:%d: cancelled run returned %v, want the cancellation cause", jobs, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("Jobs:%d: cancelled run did not return", jobs)
		}
		cancel(nil)
	}

	// A context cancelled before the run starts fails fast with its cause.
	pre, cancelPre := context.WithCancelCause(context.Background())
	cancelPre(cause)
	if _, err := spt.Run("gcc", spt.Options{
		MaxInstructions: 1_000_000,
		Sample:          spt.SampleSpec{Intervals: 4},
		Context:         pre,
	}); !errors.Is(err, cause) {
		t.Errorf("pre-cancelled run returned %v, want the cancellation cause", err)
	}
}
