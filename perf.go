package spt

import (
	"encoding/json"
	"fmt"
	"strings"
)

// PerfSchemes is the scheme subset the simulator-throughput suite measures.
// The three points span the simulator's cost range: the unprotected machine
// (no policy), STT (per-cycle recompute over the window), and full SPT
// (rule evaluation plus shadow-L1 bookkeeping every cycle).
func PerfSchemes() []Scheme { return []Scheme{UnsafeBaseline, STT, SPTFull} }

// PerfRow is one (workload, scheme) throughput measurement. The simulated
// columns (cycles, instructions, IPC) are deterministic; the host columns
// depend on the machine running the simulator and are zeroed by
// Deterministic before golden comparison.
type PerfRow struct {
	Workload     string
	Scheme       Scheme
	Cycles       uint64
	Instructions uint64
	// FastForwarded counts functionally executed instructions (checkpointed
	// or sampled runs); 0 for plain detailed runs.
	FastForwarded uint64
	IPC           float64

	// Host-side simulator throughput for this run. HostSeconds is wall
	// clock; HostCPUSeconds is aggregate CPU time across concurrent window
	// workers (the two coincide for serial runs — see HostStats).
	HostSeconds      float64
	HostCPUSeconds   float64
	SimKIPS          float64
	NsPerInstruction float64
	// EffectiveKIPS includes fast-forwarded instructions in the numerator
	// and the functional pass in the denominator — the methodology-level
	// throughput a checkpointed or sampled run achieves.
	EffectiveKIPS float64
}

// PerfReport is the simulator-throughput suite's result.
type PerfReport struct {
	// Engine is the EngineVersion that produced the report, so archived
	// BENCH_*.json snapshots are distinguishable across code changes.
	Engine string
	Model  AttackModel
	Budget uint64
	Rows   []PerfRow
}

// RunPerf measures simulator throughput for every workload in the suite
// under the PerfSchemes configurations. Runs execute strictly sequentially
// regardless of opt.Jobs: concurrent simulations would contend for cores
// and memory bandwidth and distort the host-time columns.
func RunPerf(opt EvalOptions) (*PerfReport, error) {
	opt = opt.withDefaults()
	names, err := opt.names()
	if err != nil {
		return nil, err
	}
	rep := &PerfReport{Engine: EngineVersion, Model: Futuristic, Budget: opt.Budget}
	// One store for the whole suite: with opt.Skip set, each workload's
	// functional prefix runs once, not once per scheme.
	store := opt.Checkpoints
	if store == nil && opt.Skip > 0 {
		store = NewCheckpointStore("")
	}
	for _, name := range names {
		for _, s := range PerfSchemes() {
			if opt.Context != nil {
				if err := opt.Context.Err(); err != nil {
					return nil, err
				}
			}
			res, err := Run(name, Options{
				Scheme:                s,
				Model:                 Futuristic,
				UntaintBroadcastWidth: opt.Width,
				MaxInstructions:       opt.Budget,
				SkipInstructions:      opt.Skip,
				Sample:                opt.Sample,
				Checkpoints:           store,
				Jobs:                  opt.WindowJobs,
				Context:               opt.Context,
			})
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, PerfRow{
				Workload:         name,
				Scheme:           s,
				Cycles:           res.Cycles,
				Instructions:     res.Instructions,
				FastForwarded:    res.FastForwarded,
				IPC:              res.IPC(),
				HostSeconds:      res.Host.Seconds,
				HostCPUSeconds:   res.Host.CPUSeconds,
				SimKIPS:          res.Host.SimKIPS,
				NsPerInstruction: res.Host.NsPerInstruction,
				EffectiveKIPS:    res.Host.EffectiveSimKIPS,
			})
		}
	}
	return rep, nil
}

// Deterministic returns a copy of the report with every host-time field
// zeroed. Golden fixtures compare this form; the host columns vary from
// machine to machine and run to run.
func (r *PerfReport) Deterministic() *PerfReport {
	out := &PerfReport{Engine: r.Engine, Model: r.Model, Budget: r.Budget, Rows: make([]PerfRow, len(r.Rows))}
	copy(out.Rows, r.Rows)
	for i := range out.Rows {
		out.Rows[i].HostSeconds = 0
		out.Rows[i].HostCPUSeconds = 0
		out.Rows[i].SimKIPS = 0
		out.Rows[i].NsPerInstruction = 0
		out.Rows[i].EffectiveKIPS = 0
	}
	return out
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *PerfReport) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// Text renders the report as an aligned table.
func (r *PerfReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulator throughput (%s model, budget %d instructions/run)\n", r.Model, r.Budget)
	fmt.Fprintf(&b, "%-12s %-8s %12s %12s %10s %7s %12s %12s %12s %10s %10s\n",
		"benchmark", "scheme", "cycles", "insts", "ff-insts", "ipc", "host-sec", "cpu-sec", "sim-KIPS", "ns/inst", "eff-KIPS")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-8s %12d %12d %10d %7.3f %12.3f %12.3f %12.1f %10.1f %10.1f\n",
			row.Workload, row.Scheme, row.Cycles, row.Instructions, row.FastForwarded, row.IPC,
			row.HostSeconds, row.HostCPUSeconds, row.SimKIPS, row.NsPerInstruction, row.EffectiveKIPS)
	}
	return b.String()
}
