package spt_test

import (
	"strings"
	"testing"

	"spt"
)

// TestUnknownWorkloadValidation: a typo in EvalOptions.Workloads must fail
// fast with an error naming the bad workload, from every figure entry
// point — previously it flowed through classification as class "?" and
// either failed later or silently landed in the wrong aggregate.
func TestUnknownWorkloadValidation(t *testing.T) {
	bad := spt.EvalOptions{Budget: 1_000, Workloads: []string{"mcf", "no-such-workload"}}
	entries := []struct {
		name string
		run  func() error
	}{
		{"RunFigure7", func() error { _, err := spt.RunFigure7(spt.Futuristic, bad); return err }},
		{"RunFigure8", func() error { _, err := spt.RunFigure8(bad); return err }},
		{"RunFigure9", func() error { _, err := spt.RunFigure9(bad); return err }},
		{"RunWidthSweep", func() error { _, err := spt.RunWidthSweep([]int{1}, bad); return err }},
	}
	for _, e := range entries {
		err := e.run()
		if err == nil {
			t.Errorf("%s: unknown workload accepted", e.name)
			continue
		}
		if !strings.Contains(err.Error(), "no-such-workload") {
			t.Errorf("%s: error should name the unknown workload, got: %v", e.name, err)
		}
	}
}
