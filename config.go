// Package spt is a from-scratch reproduction of "Speculative Privacy
// Tracking (SPT): Leaking Information From Speculative Execution Without
// Compromising Privacy" (MICRO 2021): a cycle-level out-of-order processor
// simulator with the paper's full family of protection schemes (SPT in all
// its Table 2 configurations, STT, and the secure delay-to-visibility-point
// baseline), the SPEC-CPU2017-like and constant-time workload suite, and a
// benchmark harness that regenerates every table and figure of the paper's
// evaluation.
//
// The public API is string-based: pick a Scheme and AttackModel, then run a
// named workload (Workloads lists them) or your own µRISC assembly text.
//
//	res, err := spt.Run("mcf", spt.Options{
//	    Scheme: spt.SPTFull,
//	    Model:  spt.Futuristic,
//	    MaxInstructions: 500_000,
//	})
//	fmt.Println(res.Cycles, res.IPC())
package spt

import (
	"context"
	"fmt"

	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/taint"
)

// AttackModel selects the visibility-point definition (paper §2.2.1).
type AttackModel string

const (
	// Spectre covers control-flow speculation only.
	Spectre AttackModel = "spectre"
	// Futuristic covers all forms of speculation.
	Futuristic AttackModel = "futuristic"
)

// AttackModels lists both models in the paper's presentation order.
func AttackModels() []AttackModel { return []AttackModel{Futuristic, Spectre} }

func (m AttackModel) internal() (pipeline.AttackModel, error) {
	switch m {
	case Spectre:
		return pipeline.Spectre, nil
	case Futuristic, "":
		return pipeline.Futuristic, nil
	}
	return 0, fmt.Errorf("spt: unknown attack model %q", string(m))
}

// Scheme names a processor configuration from the paper's Table 2.
type Scheme string

const (
	// UnsafeBaseline is the unmodified, insecure processor.
	UnsafeBaseline Scheme = "unsafe"
	// SecureBaseline delays loads/stores (and branch resolution effects)
	// until the visibility point: the same protection scope as SPT.
	SecureBaseline Scheme = "secure"
	// SPTFwdNoShadowL1 enables forward untainting only.
	SPTFwdNoShadowL1 Scheme = "spt-fwd"
	// SPTBwdNoShadowL1 adds backward untainting.
	SPTBwdNoShadowL1 Scheme = "spt-bwd"
	// SPTFull is the full SPT design: forward+backward untainting plus the
	// shadow L1 (SPT{Bwd,ShadowL1}).
	SPTFull Scheme = "spt"
	// SPTBwdShadowMem replaces the shadow L1 with idealized all-memory
	// taint tracking.
	SPTBwdShadowMem Scheme = "spt-shadowmem"
	// SPTIdealShadowMem further adds single-cycle fixpoint untainting.
	SPTIdealShadowMem Scheme = "spt-ideal"
	// STT is Speculative Taint Tracking (MICRO'19): protects only
	// speculatively-accessed data.
	STT Scheme = "stt"

	// SPTOblivious is an extension beyond the paper's Table 2: full SPT
	// taint tracking with SDO-style data-oblivious execution of blocked
	// transmitters instead of delaying them (paper §6.3 notes SPT composes
	// with such policies).
	SPTOblivious Scheme = "spt-sdo"
)

// Schemes lists every configuration in the paper's Table 2 order.
func Schemes() []Scheme {
	return []Scheme{
		UnsafeBaseline, SecureBaseline,
		SPTFwdNoShadowL1, SPTBwdNoShadowL1, SPTFull,
		SPTBwdShadowMem, SPTIdealShadowMem, STT,
	}
}

// ExtensionSchemes lists configurations beyond the paper's Table 2.
func ExtensionSchemes() []Scheme { return []Scheme{SPTOblivious} }

// Describe returns the Table 2 description of the scheme.
func (s Scheme) Describe() string {
	switch s {
	case UnsafeBaseline:
		return "An unmodified, insecure processor."
	case SecureBaseline:
		return "Loads and stores delayed until reaching the VP."
	case SPTFwdNoShadowL1:
		return "Forward untainting only (in RS). No shadow L1."
	case SPTBwdNoShadowL1:
		return "Forward and backward untainting (in RS). No shadow L1."
	case SPTFull:
		return "Forward and backward untainting (in RS) plus shadow L1 (full SPT design)."
	case SPTBwdShadowMem:
		return "Forward and backward untainting (in RS) plus all-memory taint tracking."
	case SPTIdealShadowMem:
		return "Ideal forward and backward untainting (in RS) plus all-memory taint tracking."
	case STT:
		return "Only protects speculatively-accessed data."
	case SPTOblivious:
		return "Full SPT with SDO-style oblivious execution of blocked transmitters (extension)."
	}
	return "unknown scheme"
}

// Options configures a simulation run.
type Options struct {
	// Scheme defaults to UnsafeBaseline.
	Scheme Scheme
	// Model defaults to Futuristic.
	Model AttackModel
	// UntaintBroadcastWidth defaults to 3 (paper §9.4). Ignored by
	// non-SPT schemes; 0 or negative means unbounded.
	UntaintBroadcastWidth int
	// MaxInstructions bounds retired instructions (the SimPoint stand-in).
	// Default 200,000.
	MaxInstructions uint64
	// WarmupInstructions run before measurement begins: caches, predictors
	// and taint state stay warm, but Cycles/Instructions exclude the
	// warmup (SimPoint-style methodology). Default 0.
	WarmupInstructions uint64
	// MaxCycles is a safety bound. Default 400x MaxInstructions.
	MaxCycles uint64
	// WorkloadIters sets the workload's outer-loop iteration count.
	// Default: effectively unbounded (the instruction budget stops the
	// run).
	WorkloadIters int64
	// TrackInsts enables the untaint-event breakdown and per-cycle
	// histogram collection in the result (always on for SPT schemes; this
	// flag mirrors the artifact's --track-insts).
	TrackInsts bool

	// SkipInstructions fast-forwards this many instructions on the
	// functional emulator — warming caches, the TLB, and the branch
	// predictors along the way — before detailed simulation starts. The
	// gem5/SimPoint-style checkpoint methodology: Cycles/Instructions cover
	// only the detailed region; Result.FastForwarded records the prefix.
	// Mutually exclusive with Sample.
	SkipInstructions uint64
	// Sample enables SMARTS-style sampled simulation (see SampleSpec):
	// MaxInstructions becomes the whole-run budget and Cycles becomes an
	// estimate from the measured windows. Mutually exclusive with
	// SkipInstructions and WarmupInstructions.
	Sample SampleSpec
	// Checkpoints, if non-nil, caches fast-forward checkpoints so runs
	// sharing a (workload, skip) prefix execute it once. Grid harnesses
	// (RunJobs and the figure harnesses) wire a shared store automatically
	// when Skip is set; set this to also share across separate calls or to
	// use an on-disk cache directory.
	Checkpoints *CheckpointStore

	// Jobs is the number of measured windows a sampled run simulates
	// concurrently (each window boots from its own copy-on-write snapshot
	// and cloned warm state). 0 or 1 runs windows serially. Results are
	// bit-identical for every value — only host wall-clock time changes.
	// Ignored outside sampled mode.
	Jobs int
	// Context, if non-nil, cancels the run cooperatively: it is checked
	// between sample windows and every few thousand simulated cycles within
	// a detailed region. On cancellation Run returns context.Cause. The
	// functional fast-forward pass itself is not interruptible.
	Context context.Context
}

const defaultBroadcastWidth = 3

func (o Options) withDefaults() Options {
	if o.Scheme == "" {
		o.Scheme = UnsafeBaseline
	}
	if o.Model == "" {
		o.Model = Futuristic
	}
	if o.UntaintBroadcastWidth == 0 {
		o.UntaintBroadcastWidth = defaultBroadcastWidth
	}
	if o.MaxInstructions == 0 {
		o.MaxInstructions = 200_000
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 400 * o.MaxInstructions
	}
	if o.WorkloadIters == 0 {
		o.WorkloadIters = 1 << 40
	}
	return o
}

// policy builds the pipeline policy for the scheme. The returned *taint.SPT
// (or *taint.STT) is also returned for stats extraction; nil for the unsafe
// baseline.
func (o Options) policy() (pipeline.Policy, *taint.SPT, *taint.STT, error) {
	w := o.UntaintBroadcastWidth
	mk := func(cfg taint.SPTConfig) (pipeline.Policy, *taint.SPT, *taint.STT, error) {
		p := taint.NewSPT(cfg)
		return p, p, nil, nil
	}
	switch o.Scheme {
	case UnsafeBaseline:
		return nil, nil, nil, nil
	case SecureBaseline:
		return mk(taint.SPTConfig{Method: taint.UntaintNone})
	case SPTFwdNoShadowL1:
		return mk(taint.SPTConfig{Method: taint.UntaintFwd, BroadcastWidth: w})
	case SPTBwdNoShadowL1:
		return mk(taint.SPTConfig{Method: taint.UntaintBwd, BroadcastWidth: w})
	case SPTFull:
		return mk(taint.SPTConfig{Method: taint.UntaintBwd, Shadow: taint.ShadowL1, BroadcastWidth: w})
	case SPTBwdShadowMem:
		return mk(taint.SPTConfig{Method: taint.UntaintBwd, Shadow: taint.ShadowMem, BroadcastWidth: w})
	case SPTIdealShadowMem:
		return mk(taint.SPTConfig{Method: taint.UntaintIdeal, Shadow: taint.ShadowMem})
	case STT:
		p := taint.NewSTT()
		return p, nil, p, nil
	case SPTOblivious:
		return mk(taint.SPTConfig{
			Method: taint.UntaintBwd, Shadow: taint.ShadowL1, BroadcastWidth: w,
			Protect: taint.ObliviousExecution,
		})
	}
	return nil, nil, nil, fmt.Errorf("spt: unknown scheme %q", string(o.Scheme))
}

// MachineTable renders the simulated machine parameters (paper Table 1).
func MachineTable() string {
	core := pipeline.DefaultConfig()
	h := mem.DefaultHierarchyConfig()
	return fmt.Sprintf(`Simulated architecture parameters (paper Table 1)
Pipeline        %d fetch/decode/issue/commit, %d/%d SQ/LQ entries, %d ROB, %d MSHRs, LTAGE-class branch predictor
L1 I-Cache      %d KB, %d B line, %d-way, %d-cycle latency
L1 D-Cache      %d KB, %d B line, %d-way, %d-cycle latency
L2 Cache        %d KB, %d B line, %d-way, %d-cycle latency
L3 Cache        %d MB, %d B line, %d-way, %d-cycle latency
Network         %dx%d mesh, %d b link width, %d cycle latency per hop
Coherence       Two-Level MESI protocol
DRAM            %d cycles (50 ns) after L3
Untaint broadcast width (SPT only)  %d
`,
		core.FetchWidth, core.SQSize, core.LQSize, core.ROBSize, h.MSHRs,
		h.L1I.SizeBytes>>10, h.L1I.LineBytes, h.L1I.Ways, h.L1I.LatencyCycles,
		h.L1D.SizeBytes>>10, h.L1D.LineBytes, h.L1D.Ways, h.L1D.LatencyCycles,
		h.L2.SizeBytes>>10, h.L2.LineBytes, h.L2.Ways, h.L2.LatencyCycles,
		h.L3.SizeBytes>>20, h.L3.LineBytes, h.L3.Ways, h.L3.LatencyCycles,
		h.Mesh.Width, h.Mesh.Height, h.Mesh.FlitBytes*8, h.Mesh.LinkCycles,
		h.DRAMCycles, defaultBroadcastWidth)
}

// SchemeTable renders the evaluated design variants (paper Table 2) plus
// this repository's extensions.
func SchemeTable() string {
	out := "Evaluated design variants (paper Table 2)\n"
	for _, s := range Schemes() {
		out += fmt.Sprintf("%-16s %s\n", string(s), s.Describe())
	}
	for _, s := range ExtensionSchemes() {
		out += fmt.Sprintf("%-16s %s\n", string(s), s.Describe())
	}
	return out
}
