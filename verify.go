package spt

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"spt/internal/fuzz"
	"spt/internal/symx"
)

// VerifyOptions configures a two-oracle verification campaign
// (RunVerify): every program in the workload — checked-in corpus
// reproducers plus freshly generated gadgets — is judged by both the
// differential fuzz oracle and the relational symbolic executor, and the
// two verdicts are reconciled per (scheme, model) cell. The report is a
// pure function of the options minus Jobs/Context/Progress.
type VerifyOptions struct {
	// CorpusDir, if non-empty, loads every .urisc reproducer in the
	// directory into the workload. Corpus metadata (leaks-under /
	// clean-under) becomes a third, recorded expectation the oracles are
	// checked against.
	CorpusDir string
	// Seed is the base RNG seed for generated gadgets; gadget i uses seed
	// Seed+i. Default 1.
	Seed int64
	// Count is the number of generated gadgets; 0 runs a corpus-only
	// campaign.
	Count int
	// Schemes to test; default Schemes() (all eight Table 2 configs).
	Schemes []Scheme
	// Models to test; default AttackModels() (futuristic and spectre).
	Models []AttackModel
	// Jobs is the worker count, as in EvalOptions. Default one per core.
	Jobs int
	// Context, if non-nil, cancels the campaign between cells.
	Context context.Context
	// Progress, if non-nil, is called (serialized) after each cell.
	Progress func(done, total int, j VerifyJob)
}

func (o VerifyOptions) withDefaults() VerifyOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Schemes) == 0 {
		o.Schemes = Schemes()
	}
	if len(o.Models) == 0 {
		o.Models = AttackModels()
	}
	return o
}

// VerifyJob is one cell of the campaign: one workload program checked by
// both oracles under one (scheme, model) pair.
type VerifyJob struct {
	// Kind is "corpus" or "gen".
	Kind string
	// Name identifies the program (corpus entry name or generated gadget
	// name).
	Name string
	// Index is the position in the corpus list or the generated-gadget
	// offset from the base seed.
	Index  int
	Scheme Scheme
	Model  AttackModel
}

func (j VerifyJob) String() string {
	return fmt.Sprintf("%s %s under %s/%s", j.Kind, j.Name, j.Scheme, j.Model)
}

// VerifyRow is one reconciled cell in the report.
type VerifyRow struct {
	Kind       string      `json:"kind"`
	Name       string      `json:"name"`
	Scheme     Scheme      `json:"scheme"`
	Model      AttackModel `json:"model"`
	Agreement  string      `json:"agreement"`
	FuzzLeaked bool        `json:"fuzz_leaked"`
	SymVerdict string      `json:"sym_verdict"`
	SymMethod  string      `json:"sym_method"`
	Detail     string      `json:"detail,omitempty"`
	// Expected is the recorded ground truth for the cell: "leak" or
	// "clean" (corpus metadata or the generator's ExpectLeak matrix), ""
	// when the cell is unclassified.
	Expected string `json:"expected,omitempty"`
	// Mismatch is true when a ground-truth expectation exists and either
	// oracle contradicts it.
	Mismatch bool `json:"mismatch,omitempty"`
}

// VerifyCellStats tallies one (scheme, model) column of the campaign.
type VerifyCellStats struct {
	Scheme        Scheme      `json:"scheme"`
	Model         AttackModel `json:"model"`
	Checks        int         `json:"checks"`
	AgreeLeak     int         `json:"agree_leak"`
	AgreeSecure   int         `json:"agree_secure"`
	SymConfirmed  int         `json:"sym_confirmed"`
	Unknown       int         `json:"unknown"`
	Enumerated    int         `json:"enumerated"`
	Disagreements int         `json:"disagreements"`
	Mismatches    int         `json:"mismatches"`
}

// VerifyWitness is a symbolic-only leak (the fuzzer's default secret pair
// missed it, the witness pair reproduces it) packaged as a corpus-format
// reproducer ready to check into testdata/fuzz/.
type VerifyWitness struct {
	Name   string      `json:"name"`
	Scheme Scheme      `json:"scheme"`
	Model  AttackModel `json:"model"`
	Corpus string      `json:"corpus"`
}

// VerifyReport is the outcome of a two-oracle campaign. Reports with the
// same (CorpusDir, Seed, Count, Schemes, Models) are byte-identical
// regardless of Jobs.
type VerifyReport struct {
	// Engine is the EngineVersion that produced the report, so archived
	// or cached reports are distinguishable across code changes.
	Engine    string            `json:"engine"`
	CorpusDir string            `json:"corpus_dir,omitempty"`
	Seed      int64             `json:"seed"`
	Count     int               `json:"count"`
	Programs  int               `json:"programs"`
	Schemes   []Scheme          `json:"schemes"`
	Models    []AttackModel     `json:"models"`
	Cells     []VerifyCellStats `json:"cells"`
	// Disagreements are the hard failures: soundness bugs (symbolic says
	// secure, fuzzer observed a divergence) and unconfirmable witnesses
	// (symbolic claims a leak its own pair cannot reproduce).
	Disagreements []VerifyRow `json:"disagreements,omitempty"`
	// Mismatches are cells where an oracle contradicts the recorded
	// ground truth (corpus metadata or the generator matrix).
	Mismatches []VerifyRow `json:"mismatches,omitempty"`
	// Unknowns are cells where the symbolic oracle abstained.
	Unknowns []VerifyRow `json:"unknowns,omitempty"`
	// Witnesses are reproducers for leaks only the symbolic oracle found.
	Witnesses []VerifyWitness `json:"witnesses,omitempty"`
}

// OK is the campaign's pass condition: no oracle disagreement and no
// ground-truth mismatch. Abstentions and symbolic-only findings are
// reported but do not fail the campaign.
func (r *VerifyReport) OK() bool {
	return len(r.Disagreements) == 0 && len(r.Mismatches) == 0
}

// JSON renders the report as indented JSON.
func (r *VerifyReport) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// Text renders the agreement table and every anomalous cell.
func (r *VerifyReport) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Two-oracle verification campaign (%d programs", r.Programs)
	if r.CorpusDir != "" {
		fmt.Fprintf(&sb, ", corpus %s", r.CorpusDir)
	}
	if r.Count > 0 {
		fmt.Fprintf(&sb, ", %d generated from seed %d", r.Count, r.Seed)
	}
	sb.WriteString(")\n")
	sb.WriteString("Each cell is checked by the differential fuzzer and the symbolic executor.\n\n")
	fmt.Fprintf(&sb, "%-14s %-11s %7s %10s %12s %10s %8s %6s %9s %9s\n",
		"SCHEME", "MODEL", "CHECKS", "AGREE-LEAK", "AGREE-SECURE", "SYM-FOUND", "UNKNOWN", "ENUM", "DISAGREE", "MISMATCH")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%-14s %-11s %7d %10d %12d %10d %8d %6d %9d %9d\n",
			c.Scheme, c.Model, c.Checks, c.AgreeLeak, c.AgreeSecure,
			c.SymConfirmed, c.Unknown, c.Enumerated, c.Disagreements, c.Mismatches)
	}
	section := func(title string, rows []VerifyRow) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(&sb, "\n%s:\n", title)
		for _, row := range rows {
			fmt.Fprintf(&sb, "  %-44s %-12s/%-10s %-20s fuzz=%v sym=%s(%s) %s\n",
				row.Name, row.Scheme, row.Model, row.Agreement,
				row.FuzzLeaked, row.SymVerdict, row.SymMethod, row.Detail)
		}
	}
	section("Oracle disagreements", r.Disagreements)
	section("Ground-truth mismatches", r.Mismatches)
	section("Symbolic abstentions", r.Unknowns)
	if len(r.Witnesses) > 0 {
		sb.WriteString("\nSymbolic-only leaks (witness reproducers available):\n")
		for _, w := range r.Witnesses {
			fmt.Fprintf(&sb, "  %-44s %s/%s\n", w.Name, w.Scheme, w.Model)
		}
	}
	if r.OK() {
		sb.WriteString("\nVERDICT: PASS — both oracles agree on every cell\n")
	} else {
		fmt.Fprintf(&sb, "\nVERDICT: FAIL — %d disagreement(s), %d ground-truth mismatch(es)\n",
			len(r.Disagreements), len(r.Mismatches))
	}
	return sb.String()
}

// verifyExpectation looks up a corpus entry's recorded classification for
// a cell: "leak", "clean", or "" when unclassified.
func verifyExpectation(e fuzz.CorpusEntry, scheme Scheme, model AttackModel) string {
	for _, sm := range e.LeaksUnder() {
		if sm.Scheme == string(scheme) && sm.Model == string(model) {
			return "leak"
		}
	}
	for _, sm := range e.CleanUnder() {
		if sm.Scheme == string(scheme) && sm.Model == string(model) {
			return "clean"
		}
	}
	return ""
}

// RunVerify runs a two-oracle verification campaign on a worker pool:
// every workload program is checked by fuzz.CrossCheckProgram under every
// (scheme, model) cell, results are reconciled against each other and
// against the recorded ground truth, and confirmed symbolic-only leaks
// are packaged as corpus reproducers. Aggregation is strictly in
// enumeration order, so the report is independent of Jobs.
func RunVerify(opt VerifyOptions) (*VerifyReport, error) {
	opt = opt.withDefaults()

	var entries []fuzz.CorpusEntry
	if opt.CorpusDir != "" {
		var err error
		entries, err = fuzz.LoadCorpus(opt.CorpusDir)
		if err != nil {
			return nil, err
		}
	}
	progFor := func(j VerifyJob) *fuzz.CorpusEntry {
		if j.Kind == "corpus" {
			return &entries[j.Index]
		}
		c := fuzz.Generate(opt.Seed + int64(j.Index))
		return &fuzz.CorpusEntry{Name: c.Name, Prog: c.Prog}
	}

	var jobs []VerifyJob
	addGrid := func(kind, name string, index int) {
		for _, s := range opt.Schemes {
			for _, m := range opt.Models {
				jobs = append(jobs, VerifyJob{Kind: kind, Name: name, Index: index, Scheme: s, Model: m})
			}
		}
	}
	for i, e := range entries {
		addGrid("corpus", e.Name, i)
	}
	for i := 0; i < opt.Count; i++ {
		addGrid("gen", fuzz.Generate(opt.Seed+int64(i)).Name, i)
	}

	run := func(j VerifyJob) (fuzz.CrossCheck, error) {
		return fuzz.CrossCheckProgram(progFor(j).Prog, string(j.Scheme), string(j.Model))
	}
	results, err := runPool(jobs, poolConfig[VerifyJob]{
		Workers:  opt.Jobs,
		Context:  opt.Context,
		Progress: opt.Progress,
	}, run)
	if err != nil {
		return nil, err
	}

	rep := &VerifyReport{
		Engine:    EngineVersion,
		CorpusDir: opt.CorpusDir, Seed: opt.Seed, Count: opt.Count,
		Programs: len(entries) + opt.Count,
		Schemes:  opt.Schemes, Models: opt.Models,
	}
	cellIdx := map[VerifyJob]int{}
	for _, s := range opt.Schemes {
		for _, m := range opt.Models {
			cellIdx[VerifyJob{Scheme: s, Model: m}] = len(rep.Cells)
			rep.Cells = append(rep.Cells, VerifyCellStats{Scheme: s, Model: m})
		}
	}

	// Aggregate strictly in enumeration order.
	for _, j := range jobs {
		cc := results[j]
		cell := &rep.Cells[cellIdx[VerifyJob{Scheme: j.Scheme, Model: j.Model}]]
		cell.Checks++

		row := VerifyRow{
			Kind: j.Kind, Name: j.Name, Scheme: j.Scheme, Model: j.Model,
			Agreement:  string(cc.Agreement),
			FuzzLeaked: cc.FuzzLeaked,
			SymVerdict: cc.Sym.Verdict.String(),
			SymMethod:  cc.Sym.Method,
			Detail:     cc.Detail,
		}
		if cc.Sym.Method == "enumeration" {
			cell.Enumerated++
		}

		switch cc.Agreement {
		case fuzz.AgreeLeak:
			cell.AgreeLeak++
		case fuzz.AgreeSecure:
			cell.AgreeSecure++
		case fuzz.SymLeakConfirmed:
			cell.SymConfirmed++
			e := fuzz.WitnessEntry(progFor(j).Prog, string(j.Scheme), string(j.Model), cc.Sym.Witness)
			rep.Witnesses = append(rep.Witnesses, VerifyWitness{
				Name: e.Name, Scheme: j.Scheme, Model: j.Model,
				Corpus: fuzz.FormatCorpusEntry(e),
			})
		case fuzz.SymUnknown:
			cell.Unknown++
			rep.Unknowns = append(rep.Unknowns, row)
		default: // SoundnessBug, WitnessUnconfirmed
			cell.Disagreements++
			rep.Disagreements = append(rep.Disagreements, row)
		}

		// Ground truth: corpus metadata for reproducers, the generator's
		// leak matrix for fresh gadgets.
		if j.Kind == "corpus" {
			row.Expected = verifyExpectation(entries[j.Index], j.Scheme, j.Model)
		} else {
			c := fuzz.Generate(opt.Seed + int64(j.Index))
			if fuzz.ExpectLeak(string(j.Scheme), string(j.Model), c) {
				row.Expected = "leak"
			} else {
				row.Expected = "clean"
			}
		}
		if row.Expected != "" && cc.OK() {
			wantLeak := row.Expected == "leak"
			symSaysLeak := cc.Sym.Verdict == symx.VerdictLeak
			leakSeen := cc.FuzzLeaked || cc.Agreement == fuzz.SymLeakConfirmed
			if cc.Sym.Verdict != symx.VerdictUnknown && (symSaysLeak != wantLeak || leakSeen != wantLeak) {
				row.Mismatch = true
				cell.Mismatches++
				rep.Mismatches = append(rep.Mismatches, row)
			}
		}
	}
	return rep, nil
}
