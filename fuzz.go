package spt

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"spt/internal/attack"
	"spt/internal/fuzz"
	"spt/internal/isa"
)

// FuzzOptions configures a differential leakage-fuzzing campaign
// (RunFuzz). The campaign is deterministic in (Seed, Count): worker count
// and scheduling cannot change the report.
type FuzzOptions struct {
	// Seed is the base RNG seed; program i uses seed Seed+i. Default 1.
	Seed int64
	// Count is the number of generated programs. Default 32.
	Count int
	// Schemes to test; default Schemes() (all eight Table 2 configs).
	Schemes []Scheme
	// Models to test; default AttackModels() (futuristic and spectre).
	Models []AttackModel
	// Minimize caps how many distinct leaking programs (first in campaign
	// order) are shrunk into corpus-format reproducers. Default 0 (off).
	Minimize int
	// Jobs is the worker count, as in EvalOptions. Default one per core.
	Jobs int
	// Context, if non-nil, cancels the campaign between oracle runs.
	Context context.Context
	// Progress, if non-nil, is called (serialized) after each oracle run.
	Progress func(done, total int, j FuzzJob)
}

func (o FuzzOptions) withDefaults() FuzzOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Count == 0 {
		o.Count = 32
	}
	if len(o.Schemes) == 0 {
		o.Schemes = Schemes()
	}
	if len(o.Models) == 0 {
		o.Models = AttackModels()
	}
	return o
}

// FuzzJob is one oracle cell of a campaign: generated program Index
// (seed = base seed + Index) checked under one (scheme, model) pair.
type FuzzJob struct {
	Index  int
	Scheme Scheme
	Model  AttackModel
}

func (j FuzzJob) String() string {
	return fmt.Sprintf("case %d under %s/%s", j.Index, j.Scheme, j.Model)
}

// fuzzVerdict is the pool result for one FuzzJob.
type fuzzVerdict struct {
	leaked     bool
	divergence string
}

// FuzzFinding records one leak: a generated program whose observation
// traces diverged across the two secret values in one (scheme, model)
// cell.
type FuzzFinding struct {
	Seed         int64       `json:"seed"`
	Name         string      `json:"name"`
	Class        string      `json:"class"`
	Primitive    string      `json:"primitive"`
	Transmitter  string      `json:"transmitter"`
	Scheme       Scheme      `json:"scheme"`
	Model        AttackModel `json:"model"`
	Instructions int         `json:"instructions"`
	// Expected is true for true-positive controls (unsafe baseline, STT on
	// non-speculative secrets, memory speculation outside the Spectre
	// threat model); false means a defense failed.
	Expected   bool   `json:"expected"`
	Divergence string `json:"divergence"`
}

// FuzzCellStats tallies one (scheme, model) column of the campaign.
type FuzzCellStats struct {
	Scheme     Scheme      `json:"scheme"`
	Model      AttackModel `json:"model"`
	Cases      int         `json:"cases"`
	Leaks      int         `json:"leaks"`
	Expected   int         `json:"expected"`
	Unexpected int         `json:"unexpected"`
	Clean      int         `json:"clean"`
}

// MinimizedRepro is a leak shrunk to a minimal reproducer, rendered in
// the .urisc corpus format (metadata header + disassembly) ready to be
// checked into testdata/fuzz/.
type MinimizedRepro struct {
	Name   string `json:"name"`
	Seed   int64  `json:"seed"`
	Before int    `json:"before"` // instruction count pre-minimization
	After  int    `json:"after"`  // instruction count post-minimization
	// LeaksUnder/CleanUnder re-verify the minimized program over the
	// campaign's full scheme x model grid.
	LeaksUnder []string `json:"leaks_under"`
	CleanUnder []string `json:"clean_under"`
	Corpus     string   `json:"corpus"`
}

// FuzzReport is the outcome of a campaign. Reports with the same
// (Seed, Count, Schemes, Models, Minimize) are byte-identical regardless
// of Jobs.
type FuzzReport struct {
	// Engine is the EngineVersion that produced the report, so archived
	// or cached reports are distinguishable across code changes.
	Engine    string           `json:"engine"`
	Seed      int64            `json:"seed"`
	Count     int              `json:"count"`
	Schemes   []Scheme         `json:"schemes"`
	Models    []AttackModel    `json:"models"`
	Cells     []FuzzCellStats  `json:"cells"`
	Findings  []FuzzFinding    `json:"findings"`
	Minimized []MinimizedRepro `json:"minimized,omitempty"`
}

// Unexpected returns the findings that are defense failures (leaks the
// ground-truth matrix says the scheme must block). An empty result is the
// campaign's pass condition.
func (r *FuzzReport) Unexpected() []FuzzFinding {
	var out []FuzzFinding
	for _, f := range r.Findings {
		if !f.Expected {
			out = append(out, f)
		}
	}
	return out
}

// JSON renders the report as indented JSON.
func (r *FuzzReport) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// Text renders the campaign verdict table, findings, and minimized
// reproducers.
func (r *FuzzReport) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Differential leakage fuzzing campaign (seed=%d, %d programs)\n", r.Seed, r.Count)
	sb.WriteString("Leak = observation traces diverge across secrets with identical architectural execution.\n\n")
	fmt.Fprintf(&sb, "%-14s %-11s %6s %6s %9s %11s %6s\n",
		"SCHEME", "MODEL", "CASES", "LEAKS", "EXPECTED", "UNEXPECTED", "CLEAN")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%-14s %-11s %6d %6d %9d %11d %6d\n",
			c.Scheme, c.Model, c.Cases, c.Leaks, c.Expected, c.Unexpected, c.Clean)
	}
	if len(r.Findings) > 0 {
		sb.WriteString("\nFindings:\n")
		for _, f := range r.Findings {
			tag := "expected"
			if !f.Expected {
				tag = "UNEXPECTED"
			}
			fmt.Fprintf(&sb, "  %-44s %-12s/%-10s %-10s %s\n",
				f.Name, f.Scheme, f.Model, tag, f.Divergence)
		}
	}
	if len(r.Minimized) > 0 {
		sb.WriteString("\nMinimized reproducers:\n")
		for _, m := range r.Minimized {
			fmt.Fprintf(&sb, "  %-44s %d -> %d instructions; leaks under %s\n",
				m.Name, m.Before, m.After, strings.Join(m.LeaksUnder, " "))
		}
	}
	if bad := r.Unexpected(); len(bad) > 0 {
		fmt.Fprintf(&sb, "\nVERDICT: FAIL — %d unexpected leak(s)\n", len(bad))
	} else {
		sb.WriteString("\nVERDICT: PASS — every leak is a true-positive control\n")
	}
	return sb.String()
}

// RunFuzz runs a differential leakage-fuzzing campaign: Count generated
// gadget programs, each checked by the SPECTECTOR-style oracle under
// every (scheme, model) cell on a worker pool, with the first Minimize
// distinct leaking programs shrunk to corpus reproducers. The report is a
// pure function of the options minus Jobs/Context/Progress.
func RunFuzz(opt FuzzOptions) (*FuzzReport, error) {
	opt = opt.withDefaults()

	jobs := make([]FuzzJob, 0, opt.Count*len(opt.Schemes)*len(opt.Models))
	for i := 0; i < opt.Count; i++ {
		for _, s := range opt.Schemes {
			for _, m := range opt.Models {
				jobs = append(jobs, FuzzJob{Index: i, Scheme: s, Model: m})
			}
		}
	}

	run := func(j FuzzJob) (fuzzVerdict, error) {
		c := fuzz.Generate(opt.Seed + int64(j.Index))
		v, err := fuzz.CheckLeak(c.Prog, string(j.Scheme), string(j.Model))
		if err != nil {
			return fuzzVerdict{}, err
		}
		return fuzzVerdict{leaked: v.Leaked, divergence: v.Div.String()}, nil
	}
	results, err := runPool(jobs, poolConfig[FuzzJob]{
		Workers:  opt.Jobs,
		Context:  opt.Context,
		Progress: opt.Progress,
	}, run)
	if err != nil {
		return nil, err
	}

	// Aggregate strictly in enumeration order.
	rep := &FuzzReport{Engine: EngineVersion, Seed: opt.Seed, Count: opt.Count, Schemes: opt.Schemes, Models: opt.Models}
	cellIdx := map[FuzzJob]int{}
	for _, s := range opt.Schemes {
		for _, m := range opt.Models {
			cellIdx[FuzzJob{Scheme: s, Model: m}] = len(rep.Cells)
			rep.Cells = append(rep.Cells, FuzzCellStats{Scheme: s, Model: m})
		}
	}
	for i := 0; i < opt.Count; i++ {
		c := fuzz.Generate(opt.Seed + int64(i))
		for _, s := range opt.Schemes {
			for _, m := range opt.Models {
				v := results[FuzzJob{Index: i, Scheme: s, Model: m}]
				cell := &rep.Cells[cellIdx[FuzzJob{Scheme: s, Model: m}]]
				cell.Cases++
				expected := fuzz.ExpectLeak(string(s), string(m), c)
				if !v.leaked {
					cell.Clean++
					continue
				}
				cell.Leaks++
				if expected {
					cell.Expected++
				} else {
					cell.Unexpected++
				}
				rep.Findings = append(rep.Findings, FuzzFinding{
					Seed: c.Seed, Name: c.Name,
					Class: string(c.Class), Primitive: string(c.Primitive), Transmitter: string(c.Transmit),
					Scheme: s, Model: m,
					Instructions: len(c.Prog.Code),
					Expected:     expected, Divergence: v.divergence,
				})
			}
		}
	}

	if opt.Minimize > 0 {
		if err := minimizeFindings(rep, opt); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// minimizeFindings shrinks the first opt.Minimize distinct leaking
// programs (campaign order; unexpected leaks take priority) and attaches
// corpus-format reproducers to the report. Minimization is sequential and
// deterministic.
func minimizeFindings(rep *FuzzReport, opt FuzzOptions) error {
	ordered := append(rep.Unexpected(), rep.Findings...)
	seen := map[int64]bool{}
	for _, f := range ordered {
		if len(rep.Minimized) >= opt.Minimize {
			break
		}
		if seen[f.Seed] {
			continue
		}
		seen[f.Seed] = true
		c := fuzz.Generate(f.Seed)
		keep := func(p *isa.Program) bool {
			v, err := fuzz.CheckLeak(p, string(f.Scheme), string(f.Model))
			return err == nil && v.Leaked
		}
		min := fuzz.Minimize(c.Prog, keep)

		// Re-verify the minimized program over the full campaign grid.
		var leaks, clean []string
		for _, s := range opt.Schemes {
			for _, m := range opt.Models {
				v, err := fuzz.CheckLeak(min, string(s), string(m))
				if err != nil {
					return fmt.Errorf("spt: re-verifying minimized %s under %s/%s: %w", c.Name, s, m, err)
				}
				if v.Leaked {
					leaks = append(leaks, fmt.Sprintf("%s/%s", s, m))
				} else {
					clean = append(clean, fmt.Sprintf("%s/%s", s, m))
				}
			}
		}
		entry := fuzz.CorpusEntry{
			Name: c.Name,
			Meta: map[string]string{
				"seed":        fmt.Sprintf("%d", c.Seed),
				"class":       string(c.Class),
				"primitive":   string(c.Primitive),
				"transmitter": string(c.Transmit),
				"secret-addr": fmt.Sprintf("%#x", uint64(attack.SecretAddr)),
				"leaks-under": strings.Join(leaks, " "),
				"clean-under": strings.Join(clean, " "),
			},
			Prog: min,
		}
		rep.Minimized = append(rep.Minimized, MinimizedRepro{
			Name: c.Name, Seed: c.Seed,
			Before: len(c.Prog.Code), After: len(min.Code),
			LeaksUnder: leaks, CleanUnder: clean,
			Corpus: fuzz.FormatCorpusEntry(entry),
		})
	}
	return nil
}
