package spt

// EngineVersion stamps every JSON artifact the engine emits — fuzz and
// verify campaign reports, perf reports, and full counter dumps — and keys
// the spt-serve content-addressed result cache. Bump it whenever a change
// can alter any simulated result or report schema: archived reports stay
// distinguishable across code changes, and every cached or persisted
// server result from an older engine is invalidated automatically (the
// version participates in the cache key, so stale entries simply never
// match again).
//
// The value is "spt-engine/<n>"; <n> increments with the PR sequence
// whenever simulated behavior or report schemas change.
const EngineVersion = "spt-engine/8"
