// Campaign determinism tests: the ISSUE-level contract is that sharding,
// interruption + resume, and worker count can never change a byte of the
// final report. Each test renders full JSON reports (and state files
// where relevant) and compares them byte-for-byte.
package spt_test

import (
	"os"
	"path/filepath"
	"testing"

	"spt"
)

// testCampaignOpt is a campaign small enough for CI but still exercising
// every unit kind: fresh generation, corpus mutants (testdata/fuzz), and
// coverage mutants (generations > 1).
func testCampaignOpt() spt.CampaignOptions {
	return spt.CampaignOptions{
		Seed:        11,
		Generations: 3,
		PerGen:      8,
		Schemes:     []spt.Scheme{"unsafe", "spt", "stt"},
		Models:      []spt.AttackModel{spt.Futuristic},
		CorpusDir:   filepath.Join("testdata", "fuzz"),
		Minimize:    0, // minimize every cluster representative
		Jobs:        8,
	}
}

func reportJSON(t *testing.T, rep *spt.CampaignReport) string {
	t.Helper()
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return js
}

// TestCampaignShardMergeByteIdentical: a fixed-seed campaign split across
// two shards, merged, must produce a state and report byte-identical to
// the single-process run — the CI-matrix soak contract.
func TestCampaignShardMergeByteIdentical(t *testing.T) {
	dir := t.TempDir()

	full := testCampaignOpt()
	full.StatePath = filepath.Join(dir, "full.json")
	fullRep, err := spt.RunCampaign(full)
	if err != nil {
		t.Fatal(err)
	}
	if fullRep.Pending != 0 || fullRep.Stopped {
		t.Fatalf("full run incomplete: pending=%d stopped=%v", fullRep.Pending, fullRep.Stopped)
	}

	shardPaths := make([]string, 2)
	for s := 0; s < 2; s++ {
		opt := testCampaignOpt()
		opt.Shard, opt.Shards = s, 2
		opt.StatePath = filepath.Join(dir, "shard.json")
		shardPaths[s] = opt.StatePath + "." + string(rune('0'+s))
		opt.StatePath = shardPaths[s]
		rep, err := spt.RunCampaign(opt)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if rep.Pending == 0 {
			t.Fatalf("shard %d evaluated everything; sharding is not slicing the work", s)
		}
	}

	// Merge in reverse order: the result must not depend on input order.
	merged, err := spt.MergeCampaignStates([]string{shardPaths[1], shardPaths[0]})
	if err != nil {
		t.Fatal(err)
	}
	mergedPath := filepath.Join(dir, "merged.json")
	if err := merged.Save(mergedPath); err != nil {
		t.Fatal(err)
	}

	fullState, err := os.ReadFile(full.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	mergedState, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(fullState) != string(mergedState) {
		t.Error("merged shard state differs from single-process state")
	}

	mergedRep, err := spt.CampaignReportFromState(merged, testCampaignOpt())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, mergedRep), reportJSON(t, fullRep); got != want {
		t.Error("merged report differs from single-process report")
	}
}

// TestCampaignResumeMatchesUninterrupted: a campaign killed mid-shard
// (after 5 evaluated units) and resumed from its state file must converge
// to the same state and report as a never-interrupted run.
func TestCampaignResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()

	straight := testCampaignOpt()
	straight.StatePath = filepath.Join(dir, "straight.json")
	straightRep, err := spt.RunCampaign(straight)
	if err != nil {
		t.Fatal(err)
	}

	interrupted := testCampaignOpt()
	interrupted.StatePath = filepath.Join(dir, "resumed.json")
	interrupted.StopAfterUnits = 5
	partial, err := spt.RunCampaign(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Stopped || partial.Pending == 0 {
		t.Fatalf("interruption hook did not interrupt: stopped=%v pending=%d", partial.Stopped, partial.Pending)
	}

	resumed := testCampaignOpt()
	resumed.StatePath = interrupted.StatePath
	resumedRep, err := spt.RunCampaign(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, resumedRep), reportJSON(t, straightRep); got != want {
		t.Error("resumed report differs from uninterrupted report")
	}

	a, err := os.ReadFile(straight.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("resumed state differs from uninterrupted state")
	}
}

// TestCampaignJobsDeterminism: triage clustering (and everything else in
// the report) is stable across worker counts.
func TestCampaignJobsDeterminism(t *testing.T) {
	serial := testCampaignOpt()
	serial.Jobs = 1
	serialRep, err := spt.RunCampaign(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := testCampaignOpt()
	parallel.Jobs = 8
	parallelRep, err := spt.RunCampaign(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, parallelRep), reportJSON(t, serialRep); got != want {
		t.Error("Jobs=8 report differs from Jobs=1 report")
	}
	if len(serialRep.Clusters) == 0 {
		t.Error("campaign found no leak clusters; triage path untested")
	}
	for _, cl := range serialRep.Clusters {
		if cl.Repro == nil {
			t.Errorf("cluster %s has no minimized reproducer", cl.Key)
		}
	}
}

// TestCampaignStateGuards: resuming against a different config or corpus
// must be refused, not silently mixed.
func TestCampaignStateGuards(t *testing.T) {
	dir := t.TempDir()
	opt := testCampaignOpt()
	opt.Generations = 1
	opt.StatePath = filepath.Join(dir, "state.json")
	if _, err := spt.RunCampaign(opt); err != nil {
		t.Fatal(err)
	}

	other := opt
	other.Seed = 999
	if _, err := spt.RunCampaign(other); err == nil {
		t.Error("state reuse across different configs not refused")
	}

	noCorpus := opt
	noCorpus.CorpusDir = ""
	if _, err := spt.RunCampaign(noCorpus); err == nil {
		t.Error("state reuse across different corpora not refused")
	}
}
