// Simulator-throughput benchmarks and tests for the perf reporting layer.
// BenchmarkCoreThroughput is the number the performance work in this repo
// is judged by: simulated millions of instructions per host second, per
// protection scheme. CI runs it with -benchtime=1x as a smoke test;
// meaningful measurements need the default benchtime on an idle machine.
package spt_test

import (
	"encoding/json"
	"testing"

	"spt"
)

// BenchmarkCoreThroughput measures raw simulation speed for the three
// schemes spanning the simulator's cost range (no policy, STT's per-cycle
// recompute, full SPT). Reported metrics: simulated MIPS and host
// nanoseconds per simulated instruction.
func BenchmarkCoreThroughput(b *testing.B) {
	for _, scheme := range spt.PerfSchemes() {
		b.Run(string(scheme), func(b *testing.B) {
			var insts uint64
			for i := 0; i < b.N; i++ {
				res, err := spt.Run("gcc", spt.Options{
					Scheme: scheme, Model: spt.Futuristic, MaxInstructions: 100_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				insts += res.Instructions
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 && insts > 0 {
				b.ReportMetric(float64(insts)/sec/1e6, "sim-MIPS")
				b.ReportMetric(sec*1e9/float64(insts), "ns/sim-inst")
			}
		})
	}
}

// TestHostStatsPopulated checks that every run reports host-side
// throughput, and that the host fields never leak into StatsText (which
// golden fixtures compare byte-for-byte).
func TestHostStatsPopulated(t *testing.T) {
	res, err := spt.Run("xz", spt.Options{MaxInstructions: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Host.Seconds <= 0 || res.Host.SimKIPS <= 0 || res.Host.NsPerInstruction <= 0 {
		t.Fatalf("host stats not populated: %+v", res.Host)
	}
	if res.Host.CPUSeconds < res.Host.Seconds {
		t.Fatalf("CPUSeconds %.6f below wall Seconds %.6f for a serial run", res.Host.CPUSeconds, res.Host.Seconds)
	}
	for _, field := range []string{"host", "KIPS", "ns/inst"} {
		if containsFold(res.StatsText(), field) {
			t.Fatalf("StatsText leaks host-dependent field %q", field)
		}
	}
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := 0; j < len(sub); j++ {
			a, b := s[i+j], sub[j]
			if 'A' <= a && a <= 'Z' {
				a += 'a' - 'A'
			}
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			if a != b {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// TestPerfReportDeterministic checks that the deterministic projection of
// two independent perf runs is byte-identical, and that host fields are
// actually zeroed by it (they differ run to run).
func TestPerfReportDeterministic(t *testing.T) {
	opt := spt.EvalOptions{Budget: 4_000, Workloads: []string{"xz"}}
	a, err := spt.RunPerf(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spt.RunPerf(opt)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.Deterministic().JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Deterministic().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if ja != jb {
		t.Fatalf("deterministic projections differ:\n%s\n---\n%s", ja, jb)
	}
	var parsed spt.PerfReport
	if err := json.Unmarshal([]byte(ja), &parsed); err != nil {
		t.Fatal(err)
	}
	for _, row := range parsed.Rows {
		if row.HostSeconds != 0 || row.SimKIPS != 0 || row.NsPerInstruction != 0 {
			t.Fatalf("host fields survive Deterministic(): %+v", row)
		}
	}
	for _, row := range a.Rows {
		if row.HostSeconds <= 0 {
			t.Fatalf("raw report missing host timing: %+v", row)
		}
	}
}
