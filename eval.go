package spt

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"spt/internal/workloads"
)

// EvalOptions scales the evaluation harness.
type EvalOptions struct {
	// Budget is the retired-instruction budget per run (the SimPoint
	// stand-in). Default 120,000.
	Budget uint64
	// Workloads restricts the suite (nil = all). Names are validated before
	// any simulation starts; an unknown name is an error.
	Workloads []string
	// Width is the untaint broadcast width for SPT runs. Default 3.
	Width int
	// Jobs is the number of simulations run concurrently. 0 (the default)
	// uses runtime.GOMAXPROCS(0); 1 runs the grid strictly sequentially.
	// Aggregation is always a sequential pass in grid order, so every figure
	// and sweep produces bit-identical output regardless of Jobs.
	Jobs int
	// WindowJobs is each cell's Options.Jobs: how many measured windows a
	// sampled simulation runs concurrently. It composes multiplicatively
	// with Jobs (cells x windows workers can oversubscribe the host), so
	// prefer WindowJobs when the grid is small and Jobs when it is large.
	// Results are bit-identical for every value. Ignored without Sample.
	WindowJobs int
	// Context, if non-nil, cancels an in-flight evaluation between
	// simulations (an individual simulation is not interruptible).
	Context context.Context
	// Progress, if non-nil, is called after each executed simulation
	// (successful or failed) with the number done so far, the grid total,
	// and the finished job. Calls are serialized; completion order depends
	// on scheduling when Jobs > 1.
	Progress func(done, total int, j Job)
	// Skip fast-forwards each cell's first Skip instructions functionally
	// before detailed simulation (Options.SkipInstructions). Cells sharing
	// a workload share one checkpoint, so the functional prefix runs once
	// per workload for the whole grid.
	Skip uint64
	// Sample runs every cell in SMARTS-style sampled mode (Options.Sample).
	// Mutually exclusive with Skip.
	Sample SampleSpec
	// Checkpoints, if non-nil, supplies the checkpoint store grid cells
	// share (e.g. NewCheckpointStore with an on-disk directory). Nil with
	// Skip set uses an ephemeral in-memory store per harness call.
	Checkpoints *CheckpointStore
}

func (o EvalOptions) withDefaults() EvalOptions {
	if o.Budget == 0 {
		o.Budget = 120_000
	}
	if o.Width == 0 {
		o.Width = 3
	}
	return o
}

// names returns the workload list for the run, validating any explicit
// subset so a typo fails fast with a descriptive error instead of flowing
// through the grid as an unknown class.
func (o EvalOptions) names() ([]string, error) {
	if len(o.Workloads) > 0 {
		for _, name := range o.Workloads {
			if _, err := workloads.ByName(name); err != nil {
				return nil, fmt.Errorf("spt: invalid EvalOptions.Workloads: %w (spt-sim -list names the suite)", err)
			}
		}
		return o.Workloads, nil
	}
	var names []string
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	return names, nil
}

func classOf(name string) string {
	w, err := workloads.ByName(name)
	if err != nil {
		return "?"
	}
	return w.Class.String()
}

// Figure7Row is one benchmark's normalized execution time per scheme.
type Figure7Row struct {
	Workload   string
	Class      string
	Cycles     map[Scheme]uint64
	Normalized map[Scheme]float64 // relative to UnsafeBaseline
}

// Figure7 reproduces the paper's Figure 7 for one attack model.
type Figure7 struct {
	Model   AttackModel
	Schemes []Scheme
	Rows    []Figure7Row
	// Mean is the geometric mean of normalized execution time per scheme
	// over all benchmarks; MeanSpec and MeanCT restrict to the SPEC-like
	// and constant-time subsets.
	Mean, MeanSpec, MeanCT map[Scheme]float64
}

// RunFigure7 measures normalized execution time for every workload and
// scheme under the given attack model. The |workloads| x |schemes| grid
// runs on opt.Jobs workers; the unsafe baseline is an ordinary grid cell
// joined during aggregation.
func RunFigure7(model AttackModel, opt EvalOptions) (*Figure7, error) {
	opt = opt.withDefaults()
	names, err := opt.names()
	if err != nil {
		return nil, err
	}
	fig := &Figure7{
		Model:   model,
		Schemes: Schemes(),
		Mean:    map[Scheme]float64{}, MeanSpec: map[Scheme]float64{}, MeanCT: map[Scheme]float64{},
	}

	cell := func(name string, s Scheme) Job {
		return Job{Workload: name, Scheme: s, Model: model, Width: opt.Width, Budget: opt.Budget, Skip: opt.Skip, Sample: opt.Sample}
	}
	var jobs []Job
	for _, name := range names {
		for _, s := range fig.Schemes {
			jobs = append(jobs, cell(name, s))
		}
	}
	results, err := runGrid(jobs, opt, jobRunner(jobs, opt))
	if err != nil {
		return nil, err
	}

	type acc struct {
		logSum float64
		n      int
	}
	accAll := map[Scheme]*acc{}
	accSpec := map[Scheme]*acc{}
	accCT := map[Scheme]*acc{}
	for _, s := range fig.Schemes {
		accAll[s], accSpec[s], accCT[s] = &acc{}, &acc{}, &acc{}
	}

	for _, name := range names {
		row := Figure7Row{
			Workload:   name,
			Class:      classOf(name),
			Cycles:     map[Scheme]uint64{},
			Normalized: map[Scheme]float64{},
		}
		base := results[cell(name, UnsafeBaseline)]
		for _, s := range fig.Schemes {
			res := results[cell(name, s)]
			row.Cycles[s] = res.Cycles
			norm := res.NormalizedTo(base)
			row.Normalized[s] = norm
			accAll[s].logSum += math.Log(norm)
			accAll[s].n++
			if row.Class == "const-time" {
				accCT[s].logSum += math.Log(norm)
				accCT[s].n++
			} else {
				accSpec[s].logSum += math.Log(norm)
				accSpec[s].n++
			}
		}
		fig.Rows = append(fig.Rows, row)
	}
	gm := func(a *acc) float64 {
		if a.n == 0 {
			return 0
		}
		return math.Exp(a.logSum / float64(a.n))
	}
	for _, s := range fig.Schemes {
		fig.Mean[s] = gm(accAll[s])
		fig.MeanSpec[s] = gm(accSpec[s])
		fig.MeanCT[s] = gm(accCT[s])
	}
	return fig, nil
}

// Text renders the figure as an aligned table.
func (f *Figure7) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — execution time normalized to UnsafeBaseline (%s model)\n", f.Model)
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, s := range f.Schemes {
		fmt.Fprintf(&b, " %13s", s)
	}
	b.WriteString("\n")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-12s", row.Workload)
		for _, s := range f.Schemes {
			fmt.Fprintf(&b, " %13.3f", row.Normalized[s])
		}
		b.WriteString("\n")
	}
	for _, m := range []struct {
		name string
		v    map[Scheme]float64
	}{{"gmean(spec)", f.MeanSpec}, {"gmean(ct)", f.MeanCT}, {"gmean(all)", f.Mean}} {
		fmt.Fprintf(&b, "%-12s", m.name)
		for _, s := range f.Schemes {
			fmt.Fprintf(&b, " %13.3f", m.v[s])
		}
		b.WriteString("\n")
	}
	b.WriteString("\n" + f.Headline())
	return b.String()
}

// Headline summarizes the paper's §9.2 claims from the measured data.
func (f *Figure7) Headline() string {
	var b strings.Builder
	sptOv := f.MeanSpec[SPTFull] - 1
	secOv := f.MeanSpec[SecureBaseline] - 1
	fmt.Fprintf(&b, "[%s] SPT overhead vs UnsafeBaseline (spec): %.1f%%  (paper: 45%% futuristic / 11%% spectre)\n",
		f.Model, 100*sptOv)
	if sptOv > 0 {
		fmt.Fprintf(&b, "[%s] SecureBaseline/SPT overhead ratio (spec): %.1fx  (paper: 3.6x / 3x)\n",
			f.Model, secOv/sptOv)
	}
	fmt.Fprintf(&b, "[%s] const-time kernels: SecureBaseline %.2fx, SPT %.2fx vs unsafe (paper futuristic: 2.8x -> 1.10x)\n",
		f.Model, f.MeanCT[SecureBaseline], f.MeanCT[SPTFull])
	fmt.Fprintf(&b, "[%s] SPT extra overhead vs STT (spec): %.1f pp (paper: +26.1 futuristic / +3.3 spectre)\n",
		f.Model, 100*(f.MeanSpec[SPTFull]-f.MeanSpec[STT]))
	return b.String()
}

// Figure8Row is one benchmark's untaint-event breakdown under one model.
type Figure8Row struct {
	Workload string
	Model    AttackModel
	// Counts maps event kind to count; Fractions are counts normalized to
	// the row total.
	Counts    map[string]uint64
	Fractions map[string]float64
	Total     uint64
}

// RunFigure8 reproduces the untaint-event breakdown (full SPT design,
// both attack models). The |workloads| x |models| grid runs on opt.Jobs
// workers.
func RunFigure8(opt EvalOptions) ([]Figure8Row, error) {
	opt = opt.withDefaults()
	names, err := opt.names()
	if err != nil {
		return nil, err
	}
	cell := func(name string, model AttackModel) Job {
		return Job{Workload: name, Scheme: SPTFull, Model: model, Width: opt.Width, Budget: opt.Budget, Skip: opt.Skip, Sample: opt.Sample}
	}
	var jobs []Job
	for _, name := range names {
		for _, model := range AttackModels() {
			jobs = append(jobs, cell(name, model))
		}
	}
	results, err := runGrid(jobs, opt, jobRunner(jobs, opt))
	if err != nil {
		return nil, err
	}

	var rows []Figure8Row
	for _, name := range names {
		for _, model := range AttackModels() {
			res := results[cell(name, model)]
			row := Figure8Row{
				Workload:  name,
				Model:     model,
				Counts:    res.Taint.Events,
				Fractions: map[string]float64{},
			}
			for _, v := range res.Taint.Events {
				row.Total += v
			}
			if row.Total > 0 {
				for k, v := range res.Taint.Events {
					row.Fractions[k] = float64(v) / float64(row.Total)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Figure8Text renders the breakdown table.
func Figure8Text(rows []Figure8Row) string {
	kinds := EventNames()
	var b strings.Builder
	b.WriteString("Figure 8 — breakdown of untaint events, SPT{Bwd,ShadowL1} (F = futuristic, S = spectre)\n")
	fmt.Fprintf(&b, "%-12s %-2s %10s", "benchmark", "m", "total")
	for _, k := range kinds {
		fmt.Fprintf(&b, " %12s", k)
	}
	b.WriteString("\n")
	for _, r := range rows {
		m := "F"
		if r.Model == Spectre {
			m = "S"
		}
		fmt.Fprintf(&b, "%-12s %-2s %10d", r.Workload, m, r.Total)
		for _, k := range kinds {
			fmt.Fprintf(&b, " %11.1f%%", 100*r.Fractions[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure9Row is one benchmark's cumulative untaints-per-cycle distribution
// under SPT{Ideal,ShadowMem}.
type Figure9Row struct {
	Workload string
	// CumulativePct[i] is the percentage of untainting cycles that untaint
	// at most i+1 registers (the last bucket covers 10+ and is 100).
	CumulativePct    [10]float64
	UntaintingCycles uint64
}

// RunFigure9 measures, for each untainting cycle, how many registers were
// untainted (paper Figure 9; justifies broadcast width 3). The per-workload
// runs execute on opt.Jobs workers.
func RunFigure9(opt EvalOptions) ([]Figure9Row, error) {
	opt = opt.withDefaults()
	all, err := opt.names()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, name := range all {
		if classOf(name) == "const-time" {
			continue // the paper runs Figure 9 on SPEC only
		}
		names = append(names, name)
	}
	cell := func(name string) Job {
		return Job{Workload: name, Scheme: SPTIdealShadowMem, Model: Futuristic, Width: opt.Width, Budget: opt.Budget, Skip: opt.Skip, Sample: opt.Sample}
	}
	var jobs []Job
	for _, name := range names {
		jobs = append(jobs, cell(name))
	}
	results, err := runGrid(jobs, opt, jobRunner(jobs, opt))
	if err != nil {
		return nil, err
	}

	var rows []Figure9Row
	for _, name := range names {
		res := results[cell(name)]
		row := Figure9Row{Workload: name, UntaintingCycles: res.Taint.UntaintingCycles}
		var cum uint64
		for i, v := range res.Taint.UntaintHist {
			cum += v
			if res.Taint.UntaintingCycles > 0 {
				row.CumulativePct[i] = 100 * float64(cum) / float64(res.Taint.UntaintingCycles)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure9Text renders the cumulative distribution table, plus the average
// coverage of width 3 (the paper's ~81% claim).
func Figure9Text(rows []Figure9Row) string {
	var b strings.Builder
	b.WriteString("Figure 9 — % of untainting cycles untainting <= N registers, SPT{Ideal,ShadowMem}\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for n := 1; n <= 9; n++ {
		fmt.Fprintf(&b, " %6s", fmt.Sprintf("<=%d", n))
	}
	fmt.Fprintf(&b, " %6s\n", "10+")
	var sum3 float64
	active := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		for i := 0; i < 10; i++ {
			fmt.Fprintf(&b, " %5.1f%%", r.CumulativePct[i])
		}
		if r.UntaintingCycles == 0 {
			b.WriteString("  (no untainting cycles)")
		} else {
			sum3 += r.CumulativePct[2]
			active++
		}
		b.WriteString("\n")
	}
	if active > 0 {
		fmt.Fprintf(&b, "average coverage of width 3: %.1f%% (paper: ~81%%)\n", sum3/float64(active))
	}
	return b.String()
}

// StatsBreakdownSchemes lists the schemes the stats breakdown compares:
// both baselines and both taint schemes (the paper's Fig. 10 comparison
// points).
func StatsBreakdownSchemes() []Scheme {
	return []Scheme{UnsafeBaseline, SecureBaseline, STT, SPTFull}
}

// StatsBreakdownRow is one workload × scheme cell of the "where did the
// slowdown go" table, with every figure derived from the run's stats dump.
type StatsBreakdownRow struct {
	Workload string
	Scheme   Scheme
	// Normalized is execution time relative to UnsafeBaseline.
	Normalized float64
	IPC        float64
	// DelayedTransmitterPct is the percentage of executed loads/stores the
	// policy blocked for at least one cycle (paper Fig. 10).
	DelayedTransmitterPct float64
	// AvgDelayCycles is the mean blocked-cycle count per delayed transmitter.
	AvgDelayCycles float64
	// UntaintVPPKI is untaint-at-VP events per kilo-instruction (SPT's
	// vp-declassify rule; STT's transitive untaints).
	UntaintVPPKI float64
	L1DMPKI      float64
	// SquashPKI is squash events per kilo-instruction.
	SquashPKI float64
}

// StatsBreakdown is the full table for one attack model.
type StatsBreakdown struct {
	Model   AttackModel
	Schemes []Scheme
	Rows    []StatsBreakdownRow
}

// RunStatsBreakdown runs the |workloads| × |StatsBreakdownSchemes| grid and
// derives the breakdown from each run's stats dump. Like every harness here
// it aggregates sequentially in grid order, so the output is bit-identical
// at any opt.Jobs.
func RunStatsBreakdown(model AttackModel, opt EvalOptions) (*StatsBreakdown, error) {
	opt = opt.withDefaults()
	names, err := opt.names()
	if err != nil {
		return nil, err
	}
	bd := &StatsBreakdown{Model: model, Schemes: StatsBreakdownSchemes()}
	cell := func(name string, s Scheme) Job {
		return Job{Workload: name, Scheme: s, Model: model, Width: opt.Width, Budget: opt.Budget, Skip: opt.Skip, Sample: opt.Sample}
	}
	var jobs []Job
	for _, name := range names {
		for _, s := range bd.Schemes {
			jobs = append(jobs, cell(name, s))
		}
	}
	results, err := runGrid(jobs, opt, jobRunner(jobs, opt))
	if err != nil {
		return nil, err
	}

	for _, name := range names {
		base := results[cell(name, UnsafeBaseline)]
		for _, s := range bd.Schemes {
			res := results[cell(name, s)]
			d := res.Stats
			scalar := func(stat string) uint64 {
				v, _ := d.Get(stat)
				return v.Scalar
			}
			formula := func(stat string) float64 {
				v, _ := d.Get(stat)
				return v.Float
			}
			row := StatsBreakdownRow{
				Workload:              name,
				Scheme:                s,
				Normalized:            res.NormalizedTo(base),
				IPC:                   res.IPC(),
				DelayedTransmitterPct: formula("policy.delayed_transmitter_pct"),
				L1DMPKI:               formula("l1d.mpki"),
				SquashPKI:             formula("squash.pki"),
			}
			if td, ok := d.Get("policy.transmitter_delay"); ok && td.Dist != nil {
				row.AvgDelayCycles = td.Dist.Mean
			}
			var untaints uint64
			if _, ok := d.Get("spt.untaint.vp-declassify"); ok {
				untaints = scalar("spt.untaint.vp-declassify")
			} else if _, ok := d.Get("stt.untaints"); ok {
				untaints = scalar("stt.untaints")
			}
			if res.Instructions > 0 {
				row.UntaintVPPKI = 1000 * float64(untaints) / float64(res.Instructions)
			}
			bd.Rows = append(bd.Rows, row)
		}
	}
	return bd, nil
}

// Text renders the breakdown as an aligned per-workload × per-scheme table.
func (bd *StatsBreakdown) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10-style breakdown — where the slowdown goes (%s model)\n", bd.Model)
	fmt.Fprintf(&b, "%-12s %-8s %8s %7s %9s %9s %12s %9s %10s\n",
		"benchmark", "scheme", "norm", "ipc", "delayed%", "avgdelay", "untaintVP/ki", "l1d-mpki", "squash/ki")
	for _, r := range bd.Rows {
		fmt.Fprintf(&b, "%-12s %-8s %8.3f %7.3f %8.1f%% %9.1f %12.1f %9.2f %10.2f\n",
			r.Workload, r.Scheme, r.Normalized, r.IPC,
			r.DelayedTransmitterPct, r.AvgDelayCycles, r.UntaintVPPKI, r.L1DMPKI, r.SquashPKI)
	}
	return b.String()
}

// WidthSweepRow is one (workload, width) cycle count.
type WidthSweepRow struct {
	Workload   string
	Width      int // 0 = unbounded
	Cycles     uint64
	Normalized float64 // vs unbounded width
}

// RunWidthSweep measures sensitivity to the untaint broadcast width
// (paper §9.4). The |workloads| x |widths| grid runs on opt.Jobs workers.
func RunWidthSweep(widths []int, opt EvalOptions) ([]WidthSweepRow, error) {
	opt = opt.withDefaults()
	if len(widths) == 0 {
		widths = []int{1, 2, 3, 4, 6, 8, -1}
	}
	names, err := opt.names()
	if err != nil {
		return nil, err
	}
	cell := func(name string, w int) Job {
		return Job{Workload: name, Scheme: SPTFull, Model: Futuristic, Width: w, Budget: opt.Budget, Skip: opt.Skip, Sample: opt.Sample}
	}
	var jobs []Job
	for _, name := range names {
		for _, w := range widths {
			jobs = append(jobs, cell(name, w))
		}
	}
	results, err := runGrid(jobs, opt, jobRunner(jobs, opt))
	if err != nil {
		return nil, err
	}

	var rows []WidthSweepRow
	for _, name := range names {
		base := map[int]uint64{}
		start := len(rows)
		for _, w := range widths {
			res := results[cell(name, w)]
			wKey := w
			if w < 0 {
				wKey = 0
			}
			base[wKey] = res.Cycles
			rows = append(rows, WidthSweepRow{Workload: name, Width: wKey, Cycles: res.Cycles})
		}
		if unb, ok := base[0]; ok && unb > 0 {
			for i := start; i < len(rows); i++ {
				rows[i].Normalized = float64(rows[i].Cycles) / float64(unb)
			}
		}
	}
	return rows, nil
}

// WidthSweepText renders the sweep.
func WidthSweepText(rows []WidthSweepRow) string {
	byWorkload := map[string]map[int]WidthSweepRow{}
	var names []string
	widthSet := map[int]bool{}
	for _, r := range rows {
		if byWorkload[r.Workload] == nil {
			byWorkload[r.Workload] = map[int]WidthSweepRow{}
			names = append(names, r.Workload)
		}
		byWorkload[r.Workload][r.Width] = r
		widthSet[r.Width] = true
	}
	var widths []int
	for w := range widthSet {
		widths = append(widths, w)
	}
	sort.Ints(widths)
	var b strings.Builder
	b.WriteString("§9.4 — untaint broadcast width sweep, cycles normalized to unbounded width (0)\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, w := range widths {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("w=%d", w))
	}
	b.WriteString("\n")
	for _, n := range names {
		fmt.Fprintf(&b, "%-12s", n)
		for _, w := range widths {
			fmt.Fprintf(&b, " %8.3f", byWorkload[n][w].Normalized)
		}
		b.WriteString("\n")
	}
	return b.String()
}
