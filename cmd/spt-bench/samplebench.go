// The samplebench mode regenerates BENCH_sample.json: host-side numbers
// for the two fast-forward engines (the threaded-code basic-block engine
// vs the single-instruction Step interpreter) and for the parallel-window
// sampling driver (the same sampled grid with windows serial vs eight in
// flight). Every timing is the median of three runs; simulated results
// are bit-identical across all variants, so only host seconds differ.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"spt"
	"spt/internal/checkpoint"
	"spt/internal/emu"
	"spt/internal/mem"
	"spt/internal/workloads"
)

// sampleBenchRuns is the per-measurement repeat count; medians absorb
// one-off scheduler hiccups without needing long campaigns.
const sampleBenchRuns = 3

type functionalRow struct {
	Workload  string
	StepMIPS  float64
	BlockMIPS float64
	SpeedupX  float64
}

type warmingRow struct {
	Workload   string
	HookedMIPS float64
	BlockMIPS  float64
	SpeedupX   float64
}

type sampleBenchReport struct {
	Engine     string
	Note       string
	GOMAXPROCS int
	Runs       int
	Functional struct {
		Instructions uint64
		Rows         []functionalRow
		GeomeanX     float64
	}
	Warming struct {
		Instructions uint64
		Rows         []warmingRow
		GeomeanX     float64
	}
	SampledGrid struct {
		Workloads       []string
		Schemes         []spt.Scheme
		Budget          uint64
		Sample          string
		WindowJobs      int
		SerialSeconds   float64
		ParallelSeconds float64
		SpeedupX        float64

		// The long-prefix grid keeps the same windows but stretches the
		// budget so the functional walker pass dominates, the shape of a
		// paper-scale grid (billions skipped, thousands measured). Its
		// wall clock tracks warming throughput where the small grid above
		// is detail-dominated and barely moves with fast-forward changes.
		LongPrefixWorkloads []string
		LongPrefixBudget    uint64
		LongPrefixSample    string
		LongPrefixSeconds   float64
	}
}

func median(v []float64) float64 {
	sort.Float64s(v)
	return v[len(v)/2]
}

// benchFunctional times both functional engines over the same region of
// each workload and returns per-workload throughput rows.
func benchFunctional(ctx context.Context, insts uint64) ([]functionalRow, float64, error) {
	names := []string{"gcc", "mcf", "lbm", "aes-bitslice", "chacha20"}
	rows := make([]functionalRow, 0, len(names))
	logSum := 0.0
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, 0, context.Cause(ctx)
		}
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, 0, err
		}
		p := w.Build(1 << 40)
		var stepSec, blockSec []float64
		for r := 0; r < sampleBenchRuns; r++ {
			step := emu.New(p)
			start := time.Now()
			for j := uint64(0); j < insts; j++ {
				if err := step.Step(); err != nil {
					return nil, 0, err
				}
			}
			stepSec = append(stepSec, time.Since(start).Seconds())

			block := emu.New(p)
			start = time.Now()
			if _, err := block.Run(insts); err != nil {
				return nil, 0, err
			}
			blockSec = append(blockSec, time.Since(start).Seconds())
		}
		s, b := median(stepSec), median(blockSec)
		row := functionalRow{
			Workload:  name,
			StepMIPS:  float64(insts) / s / 1e6,
			BlockMIPS: float64(insts) / b / 1e6,
			SpeedupX:  s / b,
		}
		logSum += math.Log(row.SpeedupX)
		rows = append(rows, row)
	}
	return rows, math.Exp(logSum / float64(len(rows))), nil
}

// benchWarming times the functional-warming walker — the serial
// bottleneck of sampled grids — through both its paths: the
// per-instruction hook reference (AdvanceHooked) and the block-granular
// event-replay fast path (Advance). Both produce byte-identical warm
// state; the ratio is pure dispatch-and-batching overhead.
func benchWarming(ctx context.Context, insts uint64) ([]warmingRow, float64, error) {
	names := []string{"gcc", "mcf", "lbm", "aes-bitslice", "chacha20"}
	hcfg := mem.DefaultHierarchyConfig()
	rows := make([]warmingRow, 0, len(names))
	logSum := 0.0
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, 0, context.Cause(ctx)
		}
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, 0, err
		}
		p := w.Build(1 << 40)
		var hookedSec, blockSec []float64
		for r := 0; r < sampleBenchRuns; r++ {
			bw := checkpoint.NewWalker(p, hcfg, true)
			start := time.Now()
			if err := bw.Advance(insts); err != nil {
				return nil, 0, err
			}
			blockSec = append(blockSec, time.Since(start).Seconds())

			hw := checkpoint.NewWalker(p, hcfg, true)
			start = time.Now()
			if err := hw.AdvanceHooked(insts); err != nil {
				return nil, 0, err
			}
			hookedSec = append(hookedSec, time.Since(start).Seconds())
		}
		h, b := median(hookedSec), median(blockSec)
		row := warmingRow{
			Workload:   name,
			HookedMIPS: float64(insts) / h / 1e6,
			BlockMIPS:  float64(insts) / b / 1e6,
			SpeedupX:   h / b,
		}
		logSum += math.Log(row.SpeedupX)
		rows = append(rows, row)
	}
	return rows, math.Exp(logSum / float64(len(rows))), nil
}

// benchSampledGrid times the same sampled grid with serial windows and
// with windowJobs windows in flight, asserting the estimates agree.
func benchSampledGrid(ctx context.Context, rep *sampleBenchReport) error {
	g := &rep.SampledGrid
	g.Workloads = []string{"gcc", "mcf", "xz", "chacha20"}
	g.Schemes = []spt.Scheme{spt.UnsafeBaseline, spt.SPTFull}
	g.Budget = 32_000
	sample := spt.SampleSpec{Intervals: 8, Warmup: 400, Detail: 3200}
	g.Sample = sample.String()
	g.WindowJobs = 8

	var jobs []spt.Job
	for _, w := range g.Workloads {
		for _, s := range g.Schemes {
			jobs = append(jobs, spt.Job{
				Workload: w, Scheme: s, Model: spt.Futuristic,
				Budget: g.Budget, Sample: sample,
			})
		}
	}
	grid := func(windowJobs int) (float64, map[spt.Job]*spt.Result, error) {
		start := time.Now()
		res, err := spt.RunJobs(jobs, spt.EvalOptions{Jobs: 1, WindowJobs: windowJobs, Context: ctx})
		return time.Since(start).Seconds(), res, err
	}
	var serialSec, parSec []float64
	var serial, par map[spt.Job]*spt.Result
	for r := 0; r < sampleBenchRuns; r++ {
		sec, res, err := grid(1)
		if err != nil {
			return err
		}
		serialSec, serial = append(serialSec, sec), res
		sec, res, err = grid(g.WindowJobs)
		if err != nil {
			return err
		}
		parSec, par = append(parSec, sec), res
	}
	for _, j := range jobs {
		if serial[j].Cycles != par[j].Cycles {
			return fmt.Errorf("%s: sampled estimate differs between serial and parallel windows", j)
		}
	}
	g.SerialSeconds = median(serialSec)
	g.ParallelSeconds = median(parSec)
	g.SpeedupX = g.SerialSeconds / g.ParallelSeconds

	g.LongPrefixWorkloads = []string{"gcc", "mcf"}
	g.LongPrefixBudget = 2_000_000
	longSample := spt.SampleSpec{Intervals: 8, Warmup: 400, Detail: 3200}
	g.LongPrefixSample = longSample.String()
	var longJobs []spt.Job
	for _, w := range g.LongPrefixWorkloads {
		longJobs = append(longJobs, spt.Job{
			Workload: w, Scheme: spt.SPTFull, Model: spt.Futuristic,
			Budget: g.LongPrefixBudget, Sample: longSample,
		})
	}
	var longSec []float64
	for r := 0; r < sampleBenchRuns; r++ {
		start := time.Now()
		if _, err := spt.RunJobs(longJobs, spt.EvalOptions{Jobs: 1, WindowJobs: 1, Context: ctx}); err != nil {
			return err
		}
		longSec = append(longSec, time.Since(start).Seconds())
	}
	g.LongPrefixSeconds = median(longSec)
	return nil
}

// runSampleBench produces the BENCH_sample.json report, writing it to path
// (stdout when empty).
func runSampleBench(ctx context.Context, path string) error {
	rep := &sampleBenchReport{
		Engine: spt.EngineVersion,
		Note: "Medians of 3 runs. Functional compares the predecoded basic-block engine (Run) " +
			"against the Step interpreter over the same region; Warming compares the block-granular " +
			"warming walker (batched event replay) against the per-instruction hook reference, " +
			"both producing byte-identical warm state; SampledGrid compares one sampled " +
			"grid with measured windows serial vs 8 in flight. Simulated results are bit-identical " +
			"in every variant; window parallelism needs GOMAXPROCS > 1 to show wall-clock gains.",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Runs:       sampleBenchRuns,
	}
	rep.Functional.Instructions = 4_000_000
	rows, geomean, err := benchFunctional(ctx, rep.Functional.Instructions)
	if err != nil {
		return err
	}
	rep.Functional.Rows, rep.Functional.GeomeanX = rows, geomean
	rep.Warming.Instructions = 1_000_000
	wrows, wgeomean, err := benchWarming(ctx, rep.Warming.Instructions)
	if err != nil {
		return err
	}
	rep.Warming.Rows, rep.Warming.GeomeanX = wrows, wgeomean
	if err := benchSampledGrid(ctx, rep); err != nil {
		return err
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
