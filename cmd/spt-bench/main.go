// Command spt-bench regenerates the paper's evaluation artifacts:
//
//	spt-bench -what machine   # Table 1 (simulated machine)
//	spt-bench -what configs   # Table 2 (design variants)
//	spt-bench -what fig7      # Figure 7, both attack models + headline numbers
//	spt-bench -what fig8      # Figure 8, untaint event breakdown
//	spt-bench -what fig9      # Figure 9, untaints-per-cycle distribution
//	spt-bench -what width     # §9.4 broadcast width sweep
//	spt-bench -what stats     # Fig. 10-style "where did the slowdown go" breakdown
//	spt-bench -what pentest   # §9.1 penetration testing
//	spt-bench -what perf      # simulator-throughput suite (host-side)
//	spt-bench -what samplebench  # BENCH_sample.json (fast-forward + window-pool timings)
//	spt-bench -what all       # everything (except samplebench)
//
// -budget scales the per-run retired-instruction count (the SimPoint
// stand-in); -workloads restricts the suite; -jobs sets how many
// simulations run concurrently (0 = one per core, 1 = sequential — the
// figures are bit-identical either way); -window-jobs additionally overlaps
// each sampled run's measured windows (also bit-identical); -progress
// reports grid completion on stderr. -json switches the perf report to JSON
// (the format of BENCH_core.json); -bench-out names the samplebench output
// file. -cpuprofile/-memprofile write pprof profiles of the whole
// invocation.
//
// -skip fast-forwards every run past a functional prefix (executed once per
// workload and shared across the grid; -checkpoint-dir persists the
// architectural checkpoints between invocations), and -sample replaces each
// detailed run with a SMARTS-style sampled estimate. With either flag,
// `-what perf` reports effective sim-KIPS including fast-forwarded
// instructions.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"spt"
	"spt/internal/attack"
	"spt/internal/pipeline"
	"spt/internal/taint"
)

func main() {
	var (
		what       = flag.String("what", "all", "machine|configs|fig7|fig8|fig9|width|stats|pentest|perf|all")
		budget     = flag.Uint64("budget", 120_000, "retired instructions per run")
		workloads  = flag.String("workloads", "", "comma-separated subset (default: all)")
		jobs       = flag.Int("jobs", 0, "concurrent simulations (0 = one per core, 1 = sequential)")
		windowJobs = flag.Int("window-jobs", 0, "concurrent measured windows per sampled run (0/1 = serial)")
		skip       = flag.Uint64("skip", 0, "fast-forward this many instructions functionally before each detailed run")
		ckptDir    = flag.String("checkpoint-dir", "", "persist architectural checkpoints here (reused across runs)")
		sample     = flag.String("sample", "", "SMARTS sampling spec: \"intervals\" or \"intervals:warmup:detail\"")
		progress   = flag.Bool("progress", false, "report per-simulation grid progress on stderr")
		jsonOut    = flag.Bool("json", false, "emit the perf report as JSON")
		benchOut   = flag.String("bench-out", "", "samplebench output file (default stdout)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spt-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "spt-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spt-bench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "spt-bench: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	sampleSpec, err := spt.ParseSampleSpec(*sample)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spt-bench: %v\n", err)
		os.Exit(1)
	}
	// SIGINT/SIGTERM cancel the evaluation context: the worker pool stops
	// picking up grid cells after the in-flight simulations finish, so a
	// long campaign exits cleanly instead of needing a hard kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opt := spt.EvalOptions{Budget: *budget, Jobs: *jobs, WindowJobs: *windowJobs, Skip: *skip, Sample: sampleSpec, Context: ctx}
	if *ckptDir != "" {
		opt.Checkpoints = spt.NewCheckpointStore(*ckptDir)
	}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}
	if *progress {
		opt.Progress = func(done, total int, j spt.Job) {
			fmt.Fprintf(os.Stderr, "\r[%d/%d] %s\033[K", done, total, j)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	run := func(name string, f func() error) {
		if *what != "all" && *what != name {
			return
		}
		if err := f(); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "spt-bench: %s: interrupted (partial grid discarded)\n", name)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "spt-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	// samplebench is opt-in only: it regenerates a benchmark artifact with
	// repeated timed runs, so "all" does not include it.
	if *what == "samplebench" {
		run("samplebench", func() error { return runSampleBench(ctx, *benchOut) })
		return
	}

	run("machine", func() error {
		fmt.Println(spt.MachineTable())
		return nil
	})
	run("configs", func() error {
		fmt.Println(spt.SchemeTable())
		return nil
	})
	run("fig7", func() error {
		for _, model := range spt.AttackModels() {
			fig, err := spt.RunFigure7(model, opt)
			if err != nil {
				return err
			}
			fmt.Println(fig.Text())
		}
		return nil
	})
	run("fig8", func() error {
		rows, err := spt.RunFigure8(opt)
		if err != nil {
			return err
		}
		fmt.Println(spt.Figure8Text(rows))
		return nil
	})
	run("fig9", func() error {
		rows, err := spt.RunFigure9(opt)
		if err != nil {
			return err
		}
		fmt.Println(spt.Figure9Text(rows))
		return nil
	})
	run("width", func() error {
		rows, err := spt.RunWidthSweep(nil, opt)
		if err != nil {
			return err
		}
		fmt.Println(spt.WidthSweepText(rows))
		return nil
	})
	run("stats", func() error {
		bd, err := spt.RunStatsBreakdown(spt.Futuristic, opt)
		if err != nil {
			return err
		}
		fmt.Println(bd.Text())
		return nil
	})
	run("pentest", runPentest)
	run("perf", func() error {
		rep, err := spt.RunPerf(opt)
		if err != nil {
			return err
		}
		if *jsonOut {
			s, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Print(s)
			return nil
		}
		fmt.Println(rep.Text())
		return nil
	})
}

func runPentest() error {
	fmt.Println("Penetration testing (paper §9.1)")
	type cfg struct {
		name string
		mk   func() pipeline.Policy
	}
	cfgs := []cfg{
		{"unsafe", func() pipeline.Policy { return nil }},
		{"secure", func() pipeline.Policy { return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintNone}) }},
		{"stt", func() pipeline.Policy { return taint.NewSTT() }},
		{"spt", func() pipeline.Policy { return taint.NewSPT(taint.DefaultSPTConfig()) }},
	}
	for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		for _, c := range cfgs {
			res, err := attack.Run(attack.SpectreV1Program(42), model, c.mk())
			if err != nil {
				return err
			}
			verdict := "BLOCKED"
			if res.Leaked {
				verdict = fmt.Sprintf("LEAKED value %d", res.Value)
			}
			fmt.Printf("  spectre-v1      %-10s %-8s -> %s\n", model, c.name, verdict)
		}
	}
	for _, c := range cfgs {
		res, err := attack.Run(attack.NonSpecSecretProgram(0x3C), pipeline.Futuristic, c.mk())
		if err != nil {
			return err
		}
		verdict := "BLOCKED"
		if res.Leaked {
			verdict = fmt.Sprintf("LEAKED value %#x", res.Value)
		}
		fmt.Printf("  nonspec-secret  %-10s %-8s -> %s\n", pipeline.Futuristic, c.name, verdict)
	}
	fmt.Println("  expected: unsafe leaks both; stt leaks only nonspec-secret; secure/spt block everything")
	return nil
}
