// Command spt-asm assembles, disassembles, and functionally executes
// µRISC programs:
//
//	spt-asm -in prog.s -out prog.bin          # assemble (code section)
//	spt-asm -in prog.bin -disasm              # disassemble
//	spt-asm -in prog.s -run -max-insts 100000 # run on the functional emulator
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spt/internal/asm"
	"spt/internal/emu"
	"spt/internal/isa"
)

func main() {
	var (
		in       = flag.String("in", "", "input file (.s assembly or .bin code)")
		out      = flag.String("out", "", "output file for -assemble")
		disasm   = flag.Bool("disasm", false, "disassemble a .bin input")
		run      = flag.Bool("run", false, "execute on the functional emulator")
		maxInsts = flag.Uint64("max-insts", 10_000_000, "emulation budget")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("need -in"))
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}

	var prog *isa.Program
	if strings.HasSuffix(*in, ".bin") {
		code, err := isa.DecodeProgram(data)
		if err != nil {
			fatal(err)
		}
		prog = &isa.Program{Name: filepath.Base(*in), Code: code}
	} else {
		prog, err = asm.Assemble(filepath.Base(*in), string(data))
		if err != nil {
			fatal(err)
		}
	}

	switch {
	case *disasm:
		fmt.Print(asm.Disassemble(prog))
	case *run:
		e := emu.New(prog)
		n, err := e.Run(*maxInsts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed %d instructions, halted=%v\n", n, e.State.Halted)
		for r := 0; r < isa.NumRegs; r += 4 {
			fmt.Printf("r%-2d=%#-18x r%-2d=%#-18x r%-2d=%#-18x r%-2d=%#x\n",
				r, e.State.Regs[r], r+1, e.State.Regs[r+1], r+2, e.State.Regs[r+2], r+3, e.State.Regs[r+3])
		}
	default:
		if *out == "" {
			fatal(fmt.Errorf("need -out, -disasm, or -run"))
		}
		if err := os.WriteFile(*out, isa.EncodeProgram(prog.Code), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d instructions (%d bytes) to %s\n",
			len(prog.Code), len(prog.Code)*isa.WordSize, *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spt-asm:", err)
	os.Exit(1)
}
