// Command spt-fuzz runs a differential leakage-fuzzing campaign: generated
// speculation gadgets are checked by the SPECTECTOR-style oracle (same
// architectural execution, diffed observation traces) under every requested
// (scheme, threat-model) cell, and leaking programs are minimized into
// .urisc reproducers.
//
//	spt-fuzz -seed 1 -count 64                      # full Table 2 grid
//	spt-fuzz -schemes stt,spt -models futuristic    # the paper's §3 gap
//	spt-fuzz -count 32 -minimize 4 -corpus out/     # write reproducers
//	spt-fuzz -json > report.json
//
// The report is deterministic in (seed, count, schemes, models, minimize):
// -jobs changes only the wall-clock time, never a byte of output. The exit
// status is the campaign verdict — 0 when every leak is a true-positive
// control (unsafe baseline, STT on non-speculative secrets, memory
// speculation outside the Spectre threat model), 1 when any defense failed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"spt"
	"spt/internal/fuzz"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "base RNG seed; program i uses seed+i")
		count      = flag.Int("count", 32, "number of generated programs")
		jobs       = flag.Int("jobs", 0, "concurrent oracle checks (0 = one per core)")
		schemes    = flag.String("schemes", "", "comma-separated schemes (default: all eight Table 2 configs)")
		models     = flag.String("models", "", "comma-separated threat models (default: futuristic,spectre)")
		minimize   = flag.Int("minimize", 2, "minimize up to this many distinct leaking programs")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON instead of text")
		corpus     = flag.String("corpus", "", "write minimized reproducers as .urisc files into this directory")
		quiet      = flag.Bool("q", false, "suppress the progress meter")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	// SIGINT/SIGTERM cancel the campaign context: the oracle pool stops
	// picking up cells once the in-flight checks finish, so a long campaign
	// exits cleanly mid-grid instead of needing a hard kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opt := spt.FuzzOptions{
		Seed:     *seed,
		Count:    *count,
		Jobs:     *jobs,
		Minimize: *minimize,
		Context:  ctx,
	}
	for _, name := range splitList(*schemes) {
		if _, err := fuzz.PolicyByName(name); err != nil {
			fatal(err)
		}
		opt.Schemes = append(opt.Schemes, spt.Scheme(name))
	}
	for _, name := range splitList(*models) {
		if _, err := fuzz.ModelByName(name); err != nil {
			fatal(err)
		}
		opt.Models = append(opt.Models, spt.AttackModel(name))
	}
	if !*quiet {
		opt.Progress = func(done, total int, j spt.FuzzJob) {
			fmt.Fprintf(os.Stderr, "\r%d/%d oracle checks\033[K", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	rep, err := spt.RunFuzz(opt)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "spt-fuzz: interrupted (partial campaign discarded)")
			os.Exit(130)
		}
		fatal(err)
	}

	if *corpus != "" {
		for _, m := range rep.Minimized {
			e, perr := fuzz.ParseCorpusEntry(m.Name, m.Corpus)
			if perr != nil {
				fatal(perr)
			}
			path, werr := fuzz.WriteCorpusEntry(*corpus, e)
			if werr != nil {
				fatal(werr)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d instructions)\n", path, m.After)
		}
	}

	if *jsonOut {
		js, jerr := rep.JSON()
		if jerr != nil {
			fatal(jerr)
		}
		fmt.Print(js)
	} else {
		fmt.Print(rep.Text())
	}
	if len(rep.Unexpected()) > 0 {
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, ignoring empty items.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spt-fuzz:", err)
	os.Exit(1)
}
