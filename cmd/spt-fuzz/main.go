// Command spt-fuzz runs differential leakage fuzzing in two modes.
//
// Batch mode (the default) checks -count generated speculation gadgets
// with the SPECTECTOR-style oracle (same architectural execution, diffed
// observation traces) under every requested (scheme, threat-model) cell,
// and minimizes leaking programs into .urisc reproducers:
//
//	spt-fuzz -seed 1 -count 64                      # full Table 2 grid
//	spt-fuzz -schemes stt,spt -models futuristic    # the paper's §3 gap
//	spt-fuzz -count 32 -minimize 4 -corpus out/     # write reproducers
//	spt-fuzz -json > report.json
//
// Campaign mode (-campaign) runs the coverage-guided orchestrator:
// generations of fresh gadgets, corpus mutants, and coverage-frontier
// mutants, observation-shape bucket coverage, clustered leak triage, and
// resumable sharded state:
//
//	spt-fuzz -campaign -generations 4 -per-gen 64
//	spt-fuzz -campaign -for 30s -state soak.json              # resumable
//	spt-fuzz -campaign -shard 1/4 -state shard1.json          # one shard
//	spt-fuzz -campaign -merge 'shard*.json' -state all.json   # merge
//	spt-fuzz -campaign -mutate-corpus testdata/fuzz -min-buckets 20
//
// Reports in both modes are deterministic in the campaign inputs: -jobs,
// sharding, interruption and resume change only wall-clock time, never a
// byte of output. The exit status is the verdict — 0 when every leak is a
// true-positive control (unsafe baseline, STT on non-speculative secrets,
// memory speculation outside the Spectre threat model), 1 when any
// defense failed or a coverage floor was missed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"spt"
	"spt/internal/fuzz"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "base RNG seed; program i uses seed+i")
		count      = flag.Int("count", 32, "batch mode: number of generated programs (must be > 0; use -campaign -for for time-budgeted runs)")
		jobs       = flag.Int("jobs", 0, "concurrent oracle checks (0 = one per core)")
		schemes    = flag.String("schemes", "", "comma-separated schemes (default: all eight Table 2 configs)")
		models     = flag.String("models", "", "comma-separated threat models (default: futuristic,spectre)")
		minimize   = flag.Int("minimize", 2, "batch: minimize up to this many leaking programs; campaign: cluster cap (0 = all clusters)")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON instead of text")
		corpus     = flag.String("corpus", "", "write minimized reproducers as .urisc files into this directory")
		quiet      = flag.Bool("q", false, "suppress the progress meter")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		campaign     = flag.Bool("campaign", false, "run the coverage-guided campaign orchestrator")
		generations  = flag.Int("generations", 4, "campaign: number of generations")
		perGen       = flag.Int("per-gen", 64, "campaign: units per generation")
		budget       = flag.Duration("for", 0, "campaign: stop at the first generation boundary past this time budget (resumable via -state)")
		shard        = flag.String("shard", "", "campaign: evaluate only one shard, as i/n (e.g. 0/4); plans and shapes are still computed for all units")
		state        = flag.String("state", "", "campaign: persist/resume state at this JSON file (with -merge: where to write the merged state)")
		merge        = flag.String("merge", "", "campaign: merge these shard state files (comma-separated paths or globs) instead of running")
		mutateCorpus = flag.String("mutate-corpus", "", "campaign: evolve the *.urisc reproducers in this directory alongside fresh generation")
		minBuckets   = flag.Int("min-buckets", 0, "campaign: fail unless coverage reaches this many observation-shape buckets")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	var schemeList []spt.Scheme
	for _, name := range splitList(*schemes) {
		if _, err := fuzz.PolicyByName(name); err != nil {
			fatal(err)
		}
		schemeList = append(schemeList, spt.Scheme(name))
	}
	var modelList []spt.AttackModel
	for _, name := range splitList(*models) {
		if _, err := fuzz.ModelByName(name); err != nil {
			fatal(err)
		}
		modelList = append(modelList, spt.AttackModel(name))
	}

	// SIGINT/SIGTERM cancel the campaign context: the oracle pool stops
	// picking up cells once the in-flight checks finish, so a long campaign
	// exits cleanly mid-grid instead of needing a hard kill. In campaign
	// mode with -state, the interrupted state is saved and resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *campaign {
		runCampaign(ctx, campaignFlags{
			seed: *seed, generations: *generations, perGen: *perGen, budget: *budget,
			schemes: schemeList, models: modelList, minimize: *minimize, jobs: *jobs,
			shard: *shard, state: *state, merge: *merge, mutateCorpus: *mutateCorpus,
			minBuckets: *minBuckets, corpusOut: *corpus, jsonOut: *jsonOut, quiet: *quiet,
		})
		return
	}

	// Batch mode. -count 0 used to fall through to the library default and
	// silently run 32 programs; it is now an explicit usage error.
	if *count <= 0 {
		fmt.Fprintln(os.Stderr, "spt-fuzz: -count must be > 0 in batch mode (use -campaign with -for <duration> for a time-budgeted run)")
		os.Exit(2)
	}
	opt := spt.FuzzOptions{
		Seed:     *seed,
		Count:    *count,
		Jobs:     *jobs,
		Minimize: *minimize,
		Context:  ctx,
		Schemes:  schemeList,
		Models:   modelList,
	}
	if !*quiet {
		opt.Progress = func(done, total int, j spt.FuzzJob) {
			fmt.Fprintf(os.Stderr, "\r%d/%d oracle checks\033[K", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	rep, err := spt.RunFuzz(opt)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "spt-fuzz: interrupted (partial campaign discarded)")
			os.Exit(130)
		}
		fatal(err)
	}

	writeRepros(*corpus, rep.Minimized)

	if *jsonOut {
		js, jerr := rep.JSON()
		if jerr != nil {
			fatal(jerr)
		}
		fmt.Print(js)
	} else {
		fmt.Print(rep.Text())
	}
	if len(rep.Unexpected()) > 0 {
		os.Exit(1)
	}
}

type campaignFlags struct {
	seed                int64
	generations, perGen int
	budget              time.Duration
	schemes             []spt.Scheme
	models              []spt.AttackModel
	minimize, jobs      int
	shard, state, merge string
	mutateCorpus        string
	minBuckets          int
	corpusOut           string
	jsonOut, quiet      bool
}

// runCampaign drives campaign mode: either merge shard states into one
// report, or run (a shard of) the orchestrator.
func runCampaign(ctx context.Context, f campaignFlags) {
	opt := spt.CampaignOptions{
		Seed: f.seed, Generations: f.generations, PerGen: f.perGen, Budget: f.budget,
		Schemes: f.schemes, Models: f.models, Minimize: f.minimize, Jobs: f.jobs,
		StatePath: f.state, CorpusDir: f.mutateCorpus, Context: ctx,
	}
	if f.shard != "" {
		if _, err := fmt.Sscanf(f.shard, "%d/%d", &opt.Shard, &opt.Shards); err != nil {
			fatal(fmt.Errorf("bad -shard %q (want i/n): %w", f.shard, err))
		}
	}
	if !f.quiet {
		opt.Progress = func(done, total int, what string) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d\033[K", what, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	var rep *spt.CampaignReport
	var err error
	if f.merge != "" {
		var paths []string
		for _, pat := range splitList(f.merge) {
			matches, gerr := filepath.Glob(pat)
			if gerr != nil {
				fatal(gerr)
			}
			if len(matches) == 0 {
				fatal(fmt.Errorf("-merge pattern %q matches no files", pat))
			}
			paths = append(paths, matches...)
		}
		st, merr := spt.MergeCampaignStates(paths)
		if merr != nil {
			fatal(merr)
		}
		if f.state != "" {
			if serr := st.Save(f.state); serr != nil {
				fatal(serr)
			}
		}
		rep, err = spt.CampaignReportFromState(st, opt)
	} else {
		rep, err = spt.RunCampaign(opt)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if f.state != "" && f.merge == "" {
				fmt.Fprintf(os.Stderr, "spt-fuzz: interrupted; state saved to %s (rerun to resume)\n", f.state)
			} else {
				fmt.Fprintln(os.Stderr, "spt-fuzz: interrupted")
			}
			os.Exit(130)
		}
		fatal(err)
	}

	var repros []spt.MinimizedRepro
	for _, cl := range rep.Clusters {
		if cl.Repro != nil {
			repros = append(repros, *cl.Repro)
		}
	}
	writeRepros(f.corpusOut, repros)

	if f.jsonOut {
		js, jerr := rep.JSON()
		if jerr != nil {
			fatal(jerr)
		}
		fmt.Print(js)
	} else {
		fmt.Print(rep.Text())
	}
	if f.minBuckets > 0 && rep.Buckets < f.minBuckets {
		fmt.Fprintf(os.Stderr, "spt-fuzz: coverage floor missed: %d observation-shape buckets < required %d\n", rep.Buckets, f.minBuckets)
		os.Exit(1)
	}
	if len(rep.Unexpected()) > 0 {
		os.Exit(1)
	}
}

// writeRepros writes minimized reproducers as .urisc files.
func writeRepros(dir string, repros []spt.MinimizedRepro) {
	if dir == "" {
		return
	}
	for _, m := range repros {
		e, perr := fuzz.ParseCorpusEntry(m.Name, m.Corpus)
		if perr != nil {
			fatal(perr)
		}
		path, werr := fuzz.WriteCorpusEntry(dir, e)
		if werr != nil {
			fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d instructions)\n", path, m.After)
	}
}

// splitList parses a comma-separated flag value, ignoring empty items.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spt-fuzz:", err)
	os.Exit(1)
}
