// Command spt-sim runs one workload (or a µRISC assembly file) under one
// processor configuration and prints gem5-style statistics. It is the
// equivalent of the paper artifact's run_spt.py helper:
//
//	spt-sim -workload mcf -scheme spt -threat-model futuristic
//	spt-sim -workload mcf -scheme spt -stats                # full counter dump
//	spt-sim -workload mcf -scheme spt -stats-json           # ... as JSON
//	spt-sim -workload mcf,gcc,xz -jobs 0 -output-dir out   # parallel batch
//	spt-sim -workload mcf -skip 1000000 -checkpoint-dir ckpt  # fast-forward, cached
//	spt-sim -workload mcf -sample 10:500:1000               # SMARTS sampled estimate
//	spt-sim -asm prog.s -scheme secure -max-insts 500000
//	spt-sim -random 80 -seed 42                            # reproducible random program
//	spt-sim -list
//
// -workload accepts a comma-separated list; multiple workloads run as a
// job grid on -jobs workers (0 = one per core) and print their stats in
// list order.
//
// Scheme names follow the artifact's configurations (Table 2): unsafe,
// secure, spt-fwd, spt-bwd, spt (= SPT{Bwd,ShadowL1}), spt-shadowmem,
// spt-ideal, stt.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spt"
	"spt/internal/asm"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/taint"
	"spt/internal/trace"
	"spt/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "", "workload name or comma-separated list (see -list)")
		jobs      = flag.Int("jobs", 0, "concurrent simulations for a workload list (0 = one per core)")
		asmFile   = flag.String("asm", "", "µRISC assembly file to run instead of a workload")
		scheme    = flag.String("scheme", "unsafe", "processor configuration (Table 2)")
		model     = flag.String("threat-model", "futuristic", "spectre or futuristic")
		width     = flag.Int("untaint-width", 3, "untaint broadcast width (SPT only; <0 = unbounded)")
		maxInsts  = flag.Uint64("max-insts", 200_000, "retired-instruction budget")
		skip      = flag.Uint64("skip", 0, "fast-forward this many instructions functionally before detailed simulation")
		ckptDir   = flag.String("checkpoint-dir", "", "persist architectural checkpoints here (reused across runs)")
		sample    = flag.String("sample", "", "SMARTS sampling spec: \"intervals\" or \"intervals:warmup:detail\"")
		randSize  = flag.Int("random", 0, "generate and run a random program of this many grammar steps")
		seed      = flag.Int64("seed", 1, "RNG seed for -random (printed, so runs are reproducible)")
		list      = flag.Bool("list", false, "list workloads and exit")
		stats     = flag.Bool("stats", false, "print the full gem5-style counter dump instead of the summary")
		statsJSON = flag.Bool("stats-json", false, "print the full counter dump as JSON (implies -stats)")
		outDir    = flag.String("output-dir", "", "write stats.txt here instead of stdout")
		track     = flag.Bool("track-insts", false, "print a per-instruction pipeline timeline (assembly input only)")
		trackMax  = flag.Int("track-limit", 2000, "event buffer for -track-insts")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %-11s %s\n", "NAME", "CLASS", "BEHAVIOR")
		for _, w := range spt.Workloads() {
			fmt.Printf("%-14s %-11s %s\n", w.Name, w.Class, w.Behavior)
		}
		return
	}

	sampleSpec, err := spt.ParseSampleSpec(*sample)
	if err != nil {
		fatal(err)
	}
	opt := spt.Options{
		Scheme:                spt.Scheme(*scheme),
		Model:                 spt.AttackModel(*model),
		UntaintBroadcastWidth: *width,
		MaxInstructions:       *maxInsts,
		SkipInstructions:      *skip,
		Sample:                sampleSpec,
	}
	if *ckptDir != "" {
		opt.Checkpoints = spt.NewCheckpointStore(*ckptDir)
	}

	var res *spt.Result
	switch {
	case *randSize > 0:
		prog := workloads.RandomProgram(*seed, *randSize)
		src := asm.Disassemble(prog)
		fmt.Printf("# %s (seed %d, %d instructions)\n", prog.Name, *seed, len(prog.Code))
		if *track {
			if err := runTracked(prog.Name, src, opt, *trackMax); err != nil {
				fatal(err)
			}
			return
		}
		res, err = spt.RunAssembly(prog.Name, src, opt)
	case *asmFile != "":
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			fatal(rerr)
		}
		if *track {
			if err := runTracked(filepath.Base(*asmFile), string(src), opt, *trackMax); err != nil {
				fatal(err)
			}
			return
		}
		res, err = spt.RunAssembly(filepath.Base(*asmFile), string(src), opt)
	case strings.Contains(*workload, ","):
		if err := runBatch(strings.Split(*workload, ","), opt, *jobs, *outDir, *stats, *statsJSON); err != nil {
			fatal(err)
		}
		return
	case *workload != "":
		res, err = spt.Run(*workload, opt)
	default:
		fatal(fmt.Errorf("need -workload or -asm (try -list)"))
	}
	if err != nil {
		fatal(err)
	}

	text, suffix, err := renderResult(res, *stats, *statsJSON)
	if err != nil {
		fatal(err)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*outDir, "stats"+suffix)
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
		return
	}
	fmt.Print(text)
}

// renderResult picks the output form: the legacy summary (default), the
// full deterministic counter dump (-stats), or its JSON form (-stats-json).
// The returned suffix names output files (".txt" or ".json").
func renderResult(res *spt.Result, stats, statsJSON bool) (text, suffix string, err error) {
	switch {
	case statsJSON:
		j, err := res.Stats.JSON()
		return j, ".json", err
	case stats:
		return res.Stats.Text(), ".txt", nil
	default:
		return res.StatsText(), ".txt", nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spt-sim:", err)
	os.Exit(1)
}

// runBatch simulates several workloads under one configuration as a job
// grid, then emits each stats.txt in the order the workloads were named
// (results do not depend on the worker count).
func runBatch(names []string, opt spt.Options, jobs int, outDir string, stats, statsJSON bool) error {
	grid := make([]spt.Job, len(names))
	for i, name := range names {
		grid[i] = spt.Job{
			Workload: name,
			Scheme:   opt.Scheme,
			Model:    opt.Model,
			Width:    opt.UntaintBroadcastWidth,
			Budget:   opt.MaxInstructions,
			Skip:     opt.SkipInstructions,
			Sample:   opt.Sample,
		}
	}
	results, err := spt.RunJobs(grid, spt.EvalOptions{Jobs: jobs, Checkpoints: opt.Checkpoints})
	if err != nil {
		return err
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, j := range grid {
		text, suffix, err := renderResult(results[j], stats, statsJSON)
		if err != nil {
			return err
		}
		if outDir == "" {
			fmt.Print(text)
			continue
		}
		path := filepath.Join(outDir, j.Workload+".stats"+suffix)
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// runTracked executes an assembly program with the per-instruction tracer
// attached (the artifact's --track-insts) and prints the stage timeline.
func runTracked(name, src string, opt spt.Options, limit int) error {
	prog, err := asm.Assemble(name, src)
	if err != nil {
		return err
	}
	cfg := pipeline.DefaultConfig()
	if opt.Model == spt.Spectre {
		cfg.Model = pipeline.Spectre
	}
	var pol pipeline.Policy
	switch opt.Scheme {
	case spt.UnsafeBaseline, "":
	case spt.SecureBaseline:
		pol = taint.NewSPT(taint.SPTConfig{Method: taint.UntaintNone})
	case spt.STT:
		pol = taint.NewSTT()
	default:
		pol = taint.NewSPT(taint.DefaultSPTConfig())
	}
	core, err := pipeline.New(cfg, prog, mem.NewHierarchy(mem.DefaultHierarchyConfig()), pol)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder()
	rec.Limit = limit
	core.Tracer = rec
	if err := core.Run(opt.MaxInstructions, 400*opt.MaxInstructions); err != nil {
		return err
	}
	if err := rec.WriteTimeline(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\n%d cycles, %d retired, IPC %.3f (%s)\n",
		core.Stats.Cycles, core.Stats.Retired, core.Stats.IPC(), rec.Summary())
	return nil
}
