// Command spt-verify runs the two-oracle leakage verification campaign:
// every program in the workload — checked-in .urisc reproducers plus
// freshly generated gadgets — is judged by both the differential fuzz
// oracle (two concrete secrets, diffed observation traces) and the
// relational symbolic executor (all secrets at once), and the verdicts
// are reconciled per (scheme, threat-model) cell.
//
//	spt-verify -corpus testdata/fuzz -json          # cross-check the corpus
//	spt-verify -count 256                           # 256 fresh gadgets
//	spt-verify -schemes spt,unsafe -models spectre  # a slice of the grid
//	spt-verify -extract out/                        # save symbolic-only witnesses
//
// The report is deterministic in (corpus, seed, count, schemes, models):
// -jobs changes only the wall-clock time, never a byte of output. The
// exit status is the soundness verdict — 0 when the oracles agree on
// every cell and match the recorded ground truth, 1 on any soundness
// disagreement (symbolic-secure with a concrete divergence, or a
// symbolic witness the pipeline cannot reproduce) or ground-truth
// mismatch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"spt"
	"spt/internal/fuzz"
)

func main() {
	var (
		corpus  = flag.String("corpus", "", "load .urisc reproducers from this directory into the workload")
		seed    = flag.Int64("seed", 1, "base RNG seed; generated gadget i uses seed+i")
		count   = flag.Int("count", 0, "number of freshly generated gadgets to verify")
		jobs    = flag.Int("jobs", 0, "concurrent cells (0 = one per core)")
		schemes = flag.String("schemes", "", "comma-separated schemes (default: all eight Table 2 configs)")
		models  = flag.String("models", "", "comma-separated threat models (default: futuristic,spectre)")
		jsonOut = flag.Bool("json", false, "emit the report as JSON instead of text")
		extract = flag.String("extract", "", "write symbolic-only leak witnesses as .urisc reproducers into this directory")
		quiet   = flag.Bool("q", false, "suppress the progress meter")
	)
	flag.Parse()

	if *corpus == "" && *count == 0 {
		fatal(fmt.Errorf("nothing to verify: pass -corpus and/or -count"))
	}

	// SIGINT/SIGTERM cancel the campaign context: the cell pool stops
	// picking up work once the in-flight oracle runs finish, so a long
	// cross-check exits cleanly mid-grid instead of needing a hard kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opt := spt.VerifyOptions{
		CorpusDir: *corpus,
		Seed:      *seed,
		Count:     *count,
		Jobs:      *jobs,
		Context:   ctx,
	}
	for _, name := range splitList(*schemes) {
		if _, err := fuzz.PolicyByName(name); err != nil {
			fatal(err)
		}
		opt.Schemes = append(opt.Schemes, spt.Scheme(name))
	}
	for _, name := range splitList(*models) {
		if _, err := fuzz.ModelByName(name); err != nil {
			fatal(err)
		}
		opt.Models = append(opt.Models, spt.AttackModel(name))
	}
	if !*quiet {
		opt.Progress = func(done, total int, j spt.VerifyJob) {
			fmt.Fprintf(os.Stderr, "\r%d/%d oracle cells\033[K", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	rep, err := spt.RunVerify(opt)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "spt-verify: interrupted (partial campaign discarded)")
			os.Exit(130)
		}
		fatal(err)
	}

	if *extract != "" {
		for _, w := range rep.Witnesses {
			e, perr := fuzz.ParseCorpusEntry(w.Name, w.Corpus)
			if perr != nil {
				fatal(perr)
			}
			path, werr := fuzz.WriteCorpusEntry(*extract, e)
			if werr != nil {
				fatal(werr)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%s/%s witness)\n", path, w.Scheme, w.Model)
		}
	}

	if *jsonOut {
		js, jerr := rep.JSON()
		if jerr != nil {
			fatal(jerr)
		}
		fmt.Print(js)
	} else {
		fmt.Print(rep.Text())
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, ignoring empty items.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spt-verify:", err)
	os.Exit(1)
}
