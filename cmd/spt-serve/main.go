// Command spt-serve runs the evaluation engine as a long-lived HTTP
// service: a persistent priority job queue with request coalescing, a
// content-addressed result cache, per-tenant quotas, queue-depth
// backpressure, and SSE progress streaming.
//
//	spt-serve -addr :8714                         # serve the API
//	spt-serve -queue-dir q/ -cache-dir c/         # durable queue + cache
//	spt-serve -bench -bench-out BENCH_serve.json  # measure and exit
//
// The API (see DESIGN.md §4h):
//
//	POST   /v1/jobs       submit {type, cells|fuzz|verify, priority, tenant}
//	GET    /v1/jobs/{id}  status + result; SSE with Accept: text/event-stream
//	DELETE /v1/jobs/{id}  cancel
//	GET    /v1/metrics    coalesce/cache/queue counters (stats-dump JSON)
//
// Results are bit-identical to calling the spt library directly: a job's
// payload is a pure function of its normalized spec and the engine
// version, which is what makes the content-addressed cache sound.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, workers
// finish their in-flight jobs, and the queue journal keeps every pending
// job for the next process to resume.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"spt"
	"spt/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8714", "listen address")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = one per core)")
		gridJobs     = flag.Int("grid-jobs", 1, "engine workers within one job")
		queueDir     = flag.String("queue-dir", "", "persist the job queue in this directory (resumed on restart)")
		cacheDir     = flag.String("cache-dir", "", "on-disk result cache directory")
		cacheEntries = flag.Int("cache-entries", 256, "in-memory result cache capacity")
		maxQueue     = flag.Int("max-queue", 1024, "reject new jobs (429) beyond this queue depth")
		quotaRate    = flag.Float64("quota-rate", 0, "per-tenant jobs/sec admitted (0 = unlimited)")
		quotaBurst   = flag.Int("quota-burst", 8, "per-tenant token-bucket burst")
		drainWait    = flag.Duration("drain-timeout", time.Minute, "graceful drain deadline on SIGTERM")
		bench        = flag.Bool("bench", false, "run the serving benchmark and exit")
		benchOut     = flag.String("bench-out", "BENCH_serve.json", "benchmark report path (with -bench)")
		benchN       = flag.Int("bench-requests", 12, "distinct jobs per benchmark phase (with -bench)")
	)
	flag.Parse()

	cfg := serve.Config{
		Workers:       *workers,
		GridJobs:      *gridJobs,
		QueueDir:      *queueDir,
		CacheDir:      *cacheDir,
		CacheEntries:  *cacheEntries,
		MaxQueueDepth: *maxQueue,
		QuotaRate:     *quotaRate,
		QuotaBurst:    *quotaBurst,
	}

	if *bench {
		if err := runBench(cfg, *benchOut, *benchN); err != nil {
			fatal(err)
		}
		return
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "spt-serve: %s listening on http://%s\n", spt.EngineVersion, ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "spt-serve: draining (in-flight jobs finish; queued jobs stay journaled)")
	case err := <-errCh:
		fatal(err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "spt-serve: http shutdown:", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "spt-serve: drain deadline passed; unfinished jobs were requeued:", err)
	}
	fmt.Fprintln(os.Stderr, "spt-serve: drained")
}

// benchPhase is one measured phase of the serving benchmark.
type benchPhase struct {
	Requests       int     `json:"requests"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
}

// benchReport is the BENCH_serve.json schema.
type benchReport struct {
	Engine   string     `json:"engine"`
	Workers  int        `json:"workers"`
	Budget   uint64     `json:"budget"`
	Uncached benchPhase `json:"uncached"`
	Cached   benchPhase `json:"cached"`
	// Speedup is uncached p50 over cached p50: what content addressing
	// buys a repeated query.
	Speedup float64 `json:"speedup_p50"`
}

// runBench measures end-to-end serving latency through a real HTTP
// listener: N distinct small jobs (uncached: each executes a simulation)
// and then the same N again (cached: zero simulation). Requests run
// sequentially so the latency distribution is per-request, not
// queue-contention noise.
func runBench(cfg serve.Config, out string, n int) error {
	const budget = 2000
	cfg.QueueDir, cfg.QuotaRate = "", 0 // the bench is ephemeral and unthrottled
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()

	phase := func() (benchPhase, error) {
		lat := make([]time.Duration, 0, n)
		start := time.Now()
		for i := 0; i < n; i++ {
			body := fmt.Sprintf(`{"type":"simulate","cells":[{"workload":"mcf","budget":%d}]}`, budget+uint64(i))
			t0 := time.Now()
			id, state, err := post(base, body)
			if err != nil {
				return benchPhase{}, err
			}
			for state != "done" && state != "failed" {
				time.Sleep(2 * time.Millisecond)
				state, err = getState(base, id)
				if err != nil {
					return benchPhase{}, err
				}
			}
			if state != "done" {
				return benchPhase{}, fmt.Errorf("bench job %s failed", id)
			}
			lat = append(lat, time.Since(t0))
		}
		wall := time.Since(start).Seconds()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(p float64) float64 {
			k := int(p * float64(len(lat)-1))
			return float64(lat[k].Microseconds()) / 1000
		}
		return benchPhase{
			Requests:       n,
			RequestsPerSec: float64(n) / wall,
			P50Ms:          pct(0.50),
			P99Ms:          pct(0.99),
		}, nil
	}

	uncached, err := phase()
	if err != nil {
		return err
	}
	cached, err := phase() // identical specs: every request is a cache hit
	if err != nil {
		return err
	}
	rep := benchReport{
		Engine:   spt.EngineVersion,
		Workers:  cfg.Workers,
		Budget:   budget,
		Uncached: uncached,
		Cached:   cached,
	}
	if cached.P50Ms > 0 {
		rep.Speedup = uncached.P50Ms / cached.P50Ms
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spt-serve: bench written to %s\n", out)
	_, err = os.Stdout.Write(b)
	return err
}

// post submits a job and returns its id and admission-time state.
func post(base, body string) (string, string, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	var v struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", "", err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("POST /v1/jobs: %d %s", resp.StatusCode, v.Error)
	}
	return v.ID, v.State, nil
}

// getState polls a job's state.
func getState(base, id string) (string, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var v struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", err
	}
	return v.State, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spt-serve:", err)
	os.Exit(1)
}
