// Constant-time demo: the paper's headline use case. Data-oblivious code
// (here: the ChaCha20, bitslice-AES-style, and djbsort kernels) is secure
// non-speculatively by construction, but a blanket defense like the secure
// baseline makes it pay for protection it does not need. SPT restores
// nearly all of the lost performance while *extending* the constant-time
// guarantee to speculative execution (paper: 2.8x -> 1.10x in the
// Futuristic model).
package main

import (
	"fmt"
	"log"

	"spt"
)

func main() {
	kernels := []string{"chacha20", "aes-bitslice", "djbsort"}
	schemes := []spt.Scheme{spt.UnsafeBaseline, spt.SecureBaseline, spt.SPTFull}

	fmt.Printf("%-14s", "kernel")
	for _, s := range schemes {
		fmt.Printf(" %14s", s)
	}
	fmt.Println(" (normalized execution time, Futuristic model)")

	for _, k := range kernels {
		var base *spt.Result
		fmt.Printf("%-14s", k)
		for _, s := range schemes {
			res, err := spt.Run(k, spt.Options{
				Scheme:          s,
				Model:           spt.Futuristic,
				MaxInstructions: 80_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			if base == nil {
				base = res
			}
			fmt.Printf(" %14.3f", res.NormalizedTo(base))
		}
		fmt.Println()
	}

	fmt.Println("\nWhy SPT is nearly free here: constant-time code only passes public")
	fmt.Println("values to loads, stores and branches, so the non-speculative execution")
	fmt.Println("declassifies every address and predicate the code will ever use, and")
	fmt.Println("the untaint rules propagate that through the dataflow graph.")
}
