// Fuzzing demo: a short differential campaign that rediscovers the paper's
// motivating gap (§3) automatically. The generator composes speculation
// primitives (branch, return, indirect jump, store bypass) with random
// filler around a planted secret; the oracle runs each program twice with
// different secret bytes — the two runs are architecturally identical by
// construction — and diffs the observation traces. Any divergence is a
// microarchitectural leak in the sense of Definition 1.
//
// With schemes {unsafe, stt, spt} the campaign finds:
//   - the unsafe baseline leaks every gadget,
//   - STT leaks exactly the gadgets whose secret was loaded
//     NON-speculatively (constant-time victim code — the scenario STT's
//     taint model does not cover),
//   - full SPT leaks nothing.
//
// One STT leak is then minimized by instruction-range bisection into a
// reproducer a few instructions long, printed in the checked-in corpus
// format (testdata/fuzz/ holds reproducers found exactly this way).
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"spt"
)

func main() {
	rep, err := spt.RunFuzz(spt.FuzzOptions{
		Seed:     1,
		Count:    24,
		Schemes:  []spt.Scheme{spt.UnsafeBaseline, spt.STT, spt.SPTFull},
		Models:   []spt.AttackModel{spt.Futuristic},
		Minimize: 1,
		Jobs:     runtime.GOMAXPROCS(0),
		Progress: func(done, total int, j spt.FuzzJob) {
			fmt.Fprintf(os.Stderr, "\r%d/%d oracle checks\033[K", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Text())

	for _, f := range rep.Findings {
		if f.Scheme == spt.STT && f.Class == "nonspec-secret" {
			fmt.Printf("\nSTT missed %s: the secret entered a register architecturally,\n", f.Name)
			fmt.Println("so STT never tainted it — a transient gadget transmitted it anyway.")
			fmt.Println("SPT taints the secret from its first load until the program itself")
			fmt.Println("would leak it, which constant-time code never does.")
			break
		}
	}

	if len(rep.Minimized) > 0 {
		m := rep.Minimized[0]
		fmt.Printf("\nMinimized %s from %d to %d instructions:\n\n%s", m.Name, m.Before, m.After, m.Corpus)
	}
}
