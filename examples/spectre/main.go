// Spectre demo: mounts the paper's two penetration tests (§9.1) —
// the classic Spectre V1 bounds bypass and the attack on a
// *non-speculative secret* held by constant-time code — against every
// protection scheme, and shows which ones leak.
//
// The second attack is the paper's motivation: STT protects only
// speculatively-accessed data, so a secret that constant-time code loaded
// architecturally can still be exfiltrated by a transient gadget. SPT
// closes exactly that gap.
package main

import (
	"fmt"
	"log"

	"spt/internal/attack"
	"spt/internal/pipeline"
	"spt/internal/taint"
)

func main() {
	configs := []struct {
		name string
		mk   func() pipeline.Policy
	}{
		{"unsafe", func() pipeline.Policy { return nil }},
		{"secure-baseline", func() pipeline.Policy { return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintNone}) }},
		{"stt", func() pipeline.Policy { return taint.NewSTT() }},
		{"spt-full", func() pipeline.Policy { return taint.NewSPT(taint.DefaultSPTConfig()) }},
	}

	const secret = 0xA5
	fmt.Printf("victim secret byte: %#x\n\n", secret)

	fmt.Println("Attack 1: Spectre V1 — transient out-of-bounds read of speculatively-accessed data")
	for _, c := range configs {
		res, err := attack.Run(attack.SpectreV1Program(secret), pipeline.Futuristic, c.mk())
		if err != nil {
			log.Fatal(err)
		}
		report(c.name, res)
	}

	fmt.Println("\nAttack 2: transient gadget transmits a register holding a NON-speculative secret")
	fmt.Println("(constant-time victim: the secret never flows to a branch or address architecturally)")
	for _, c := range configs {
		res, err := attack.Run(attack.NonSpecSecretProgram(secret), pipeline.Futuristic, c.mk())
		if err != nil {
			log.Fatal(err)
		}
		report(c.name, res)
	}

	fmt.Println("\nSTT fails attack 2 because the secret was accessed non-speculatively;")
	fmt.Println("SPT taints it until the program itself leaks it — which never happens.")
}

func report(name string, res attack.Result) {
	if res.Leaked {
		fmt.Printf("  %-16s receiver recovered %#x from the cache side channel\n", name, res.Value)
	} else {
		fmt.Printf("  %-16s blocked (%d probe lines touched)\n", name, res.ResidentLines)
	}
}
