// Quickstart: run one workload under the insecure baseline, the secure
// baseline, and full SPT, and print what the protection costs.
package main

import (
	"fmt"
	"log"

	"spt"
)

func main() {
	const workload = "perlbench"
	const budget = 100_000

	fmt.Println(spt.MachineTable())

	schemes := []spt.Scheme{spt.UnsafeBaseline, spt.SecureBaseline, spt.SPTFull, spt.STT}
	var base *spt.Result
	fmt.Printf("%-10s %12s %8s %12s\n", "scheme", "cycles", "IPC", "normalized")
	for _, s := range schemes {
		res, err := spt.Run(workload, spt.Options{
			Scheme:          s,
			Model:           spt.Futuristic,
			MaxInstructions: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = res
		}
		fmt.Printf("%-10s %12d %8.3f %12.3f\n", s, res.Cycles, res.IPC(), res.NormalizedTo(base))
	}

	fmt.Println("\nThe secure baseline pays for delaying every speculative load and")
	fmt.Println("store to the visibility point; SPT recovers most of that by")
	fmt.Println("declassifying operands the program leaks non-speculatively anyway.")
}
