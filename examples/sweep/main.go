// Sweep demo: reproduces the paper's §9.4 design-space exploration of the
// untaint broadcast width, plus a per-benchmark Figure 9-style view of how
// many registers want to untaint per cycle. The paper picks width 3
// because ~81% of untainting cycles untaint at most 3 registers.
package main

import (
	"fmt"
	"log"

	"spt"
)

func main() {
	workloadSubset := []string{"mcf", "perlbench", "xz", "exchange2"}
	opt := spt.EvalOptions{Budget: 60_000, Workloads: workloadSubset}

	rows, err := spt.RunWidthSweep([]int{1, 2, 3, 4, 8, -1}, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(spt.WidthSweepText(rows))

	fig9, err := spt.RunFigure9(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(spt.Figure9Text(fig9))

	fmt.Println("A width of 3 captures the large majority of untainting cycles at a")
	fmt.Println("fraction of the wiring cost of a full-RS broadcast (paper §9.4).")
}
