// Sweep demo: reproduces the paper's §9.4 design-space exploration of the
// untaint broadcast width, plus a per-benchmark Figure 9-style view of how
// many registers want to untaint per cycle. The paper picks width 3
// because ~81% of untainting cycles untaint at most 3 registers.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"spt"
)

func main() {
	workloadSubset := []string{"mcf", "perlbench", "xz", "exchange2"}
	opt := spt.EvalOptions{
		Budget:    60_000,
		Workloads: workloadSubset,
		// The sweep grid is embarrassingly parallel; run one simulation per
		// core. Results are bit-identical to Jobs: 1.
		Jobs: runtime.GOMAXPROCS(0),
		Progress: func(done, total int, j spt.Job) {
			fmt.Fprintf(os.Stderr, "\r%d/%d simulations\033[K", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}

	rows, err := spt.RunWidthSweep([]int{1, 2, 3, 4, 8, -1}, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(spt.WidthSweepText(rows))

	fig9, err := spt.RunFigure9(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(spt.Figure9Text(fig9))

	fmt.Println("A width of 3 captures the large majority of untainting cycles at a")
	fmt.Println("fraction of the wiring cost of a full-RS broadcast (paper §9.4).")
}
