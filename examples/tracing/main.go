// Tracing demo: watch SPT work at per-instruction granularity. The same
// tiny program runs on the unprotected core and under full SPT; the
// pipeline timelines show exactly where the taint engine delays the
// dependent load (its address is a loaded, still-tainted value) and where
// the visibility-point declassification releases it.
package main

import (
	"fmt"
	"log"
	"os"

	"spt/internal/asm"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/taint"
	"spt/internal/trace"
)

const program = `
; A pointer dereference whose address is ready early but tainted: the
; unprotected core issues it immediately; SPT holds it until the pointer
; is declassified at the visibility point. The slow pointer chase at the
; head keeps the VP far behind, making the delay visible.
.data 0x7000
.quad 0x7100
.data 0x4000
.quad 0x4100
.text
  movi r8, 0x7000
  ld r8, 0(r8)      ; cold miss: VP blocker #1
  ld r8, 0(r8)      ; dependent cold miss: VP blocker #2
  movi r1, 0x4000
  ld r3, 0(r1)      ; r3 = pointer loaded from memory: tainted
  ld r4, 0(r3)      ; address ready long before the VP; SPT delays it
  addi r5, r4, 1
  halt
`

func main() {
	for _, cfg := range []struct {
		name string
		pol  pipeline.Policy
	}{
		{"unsafe baseline", nil},
		{"full SPT", taint.NewSPT(taint.DefaultSPTConfig())},
	} {
		fmt.Printf("=== %s ===\n", cfg.name)
		prog, err := asm.Assemble("demo", program)
		if err != nil {
			log.Fatal(err)
		}
		core, err := pipeline.New(pipeline.DefaultConfig(), prog, mem.NewHierarchy(mem.DefaultHierarchyConfig()), cfg.pol)
		if err != nil {
			log.Fatal(err)
		}
		rec := trace.NewRecorder()
		core.Tracer = rec
		if err := core.Run(1000, 1_000_000); err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteTimeline(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("total: %d cycles\n\n", core.Stats.Cycles)
	}
	fmt.Println("Compare the 'mem' column of the dependent load (pc=5): under SPT it")
	fmt.Println("waits until the pointer is declassified at the visibility point.")
}
