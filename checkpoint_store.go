package spt

import (
	"spt/internal/checkpoint"
	"spt/internal/isa"
	"spt/internal/mem"
)

// CheckpointStore caches functional fast-forward checkpoints across runs.
// Share one store across a grid (EvalOptions.Checkpoints, or the default
// RunJobs wiring) and each distinct (workload, skip distance, program
// content) prefix executes exactly once no matter how many scheme x model
// cells restore from it, concurrently or not.
type CheckpointStore struct {
	inner *checkpoint.Store
}

// NewCheckpointStore returns a store. dir, if non-empty, persists
// architectural snapshots on disk (one .ckpt file per prefix) so later
// processes skip cold functional passes; empty keeps the cache in memory
// only. Disk entries are integrity-checked against a functional replay
// when microarchitectural warming is needed, so simulation results are
// bit-identical whether or not the files existed.
func NewCheckpointStore(dir string) *CheckpointStore {
	return &CheckpointStore{inner: checkpoint.NewStore(dir)}
}

// CheckpointStoreStats counts store activity. Builds is the number of
// functional passes executed — for a shared store over an N-scheme x
// M-model grid it equals the number of distinct workload prefixes, the
// direct evidence each prefix ran once, not NxM times.
type CheckpointStoreStats struct {
	Builds    uint64 // functional fast-forward passes executed
	MemHits   uint64 // checkpoints served from memory
	DiskHits  uint64 // checkpoints served from disk without a pass
	DiskSaves uint64 // snapshot files written
}

// Stats returns a snapshot of the store's counters.
func (s *CheckpointStore) Stats() CheckpointStoreStats {
	st := s.inner.Stats()
	return CheckpointStoreStats{
		Builds:    st.Builds,
		MemHits:   st.MemHits,
		DiskHits:  st.DiskHits,
		DiskSaves: st.DiskSaves,
	}
}

// checkpointFor returns the checkpoint for p's first o.SkipInstructions
// instructions, warm, via the run's store (building an unshared one-shot
// checkpoint when no store is configured).
func (o Options) checkpointFor(p *isa.Program) (*checkpoint.Checkpoint, error) {
	hcfg := mem.DefaultHierarchyConfig()
	if o.Checkpoints != nil {
		return o.Checkpoints.inner.Get(p, o.SkipInstructions, hcfg, true)
	}
	return checkpoint.Build(p, o.SkipInstructions, hcfg, true)
}
