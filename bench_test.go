// Benchmarks regenerating the paper's evaluation artifacts. Each
// table/figure has a dedicated benchmark; custom metrics carry the numbers
// the paper reports (normalized execution time, overhead percentages,
// width-3 coverage). Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-iteration instruction budget is deliberately small so the full
// suite completes in minutes; cmd/spt-bench runs the same harness at
// larger budgets.
package spt_test

import (
	"fmt"
	"testing"
	"time"

	"spt"
)

const benchBudget = 15_000

// BenchmarkTable1Machine verifies the machine configuration is constructed
// (Table 1); it mostly exists so every table has a named artifact.
func BenchmarkTable1Machine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(spt.MachineTable()) == 0 {
			b.Fatal("empty machine table")
		}
	}
}

// BenchmarkTable2Configs runs every Table 2 configuration once on one
// benchmark and reports each scheme's normalized execution time.
func BenchmarkTable2Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var base *spt.Result
		for _, s := range spt.Schemes() {
			res, err := spt.Run("gcc", spt.Options{
				Scheme: s, Model: spt.Futuristic, MaxInstructions: benchBudget,
			})
			if err != nil {
				b.Fatal(err)
			}
			if base == nil {
				base = res
			}
			b.ReportMetric(res.NormalizedTo(base), string(s)+"-norm")
		}
	}
}

// benchFigure7 runs the Figure 7 sweep for one attack model over a
// representative subset and reports the headline aggregates.
func benchFigure7(b *testing.B, model spt.AttackModel) {
	subset := []string{"perlbench", "mcf", "parest", "namd", "xz", "chacha20", "djbsort", "aes-bitslice"}
	for i := 0; i < b.N; i++ {
		fig, err := spt.RunFigure7(model, spt.EvalOptions{Budget: benchBudget, Workloads: subset})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.MeanSpec[spt.SPTFull], "spt-norm-spec")
		b.ReportMetric(fig.MeanSpec[spt.SecureBaseline], "secure-norm-spec")
		b.ReportMetric(fig.MeanCT[spt.SPTFull], "spt-norm-ct")
		b.ReportMetric(fig.MeanCT[spt.SecureBaseline], "secure-norm-ct")
		b.ReportMetric(fig.MeanSpec[spt.STT], "stt-norm-spec")
	}
}

// BenchmarkFigure7Futuristic regenerates Figure 7 (top graph): normalized
// execution time under the Futuristic attack model (paper: SPT 45%
// overhead, 3.6x below SecureBaseline; const-time 2.8x -> 1.10x).
func BenchmarkFigure7Futuristic(b *testing.B) { benchFigure7(b, spt.Futuristic) }

// benchFigure7Jobs runs the same Figure 7 grid at a fixed worker count, so
// the sequential/parallel pair below exposes the evaluation engine's
// wall-clock scaling in the bench trajectory. Output is identical at any
// worker count; only scheduling differs.
func benchFigure7Jobs(b *testing.B, jobs int) {
	subset := []string{"perlbench", "mcf", "parest", "namd", "xz", "chacha20"}
	for i := 0; i < b.N; i++ {
		fig, err := spt.RunFigure7(spt.Futuristic, spt.EvalOptions{
			Budget: benchBudget, Workloads: subset, Jobs: jobs,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.MeanSpec[spt.SPTFull], "spt-norm-spec")
	}
}

// BenchmarkFigure7Sequential pins the pre-engine behavior: the whole
// workload x scheme grid on one worker.
func BenchmarkFigure7Sequential(b *testing.B) { benchFigure7Jobs(b, 1) }

// BenchmarkFigure7Parallel runs the identical grid with one worker per
// core (EvalOptions.Jobs = 0 default). On a 4-core runner this should be
// >= 2x faster than BenchmarkFigure7Sequential.
func BenchmarkFigure7Parallel(b *testing.B) { benchFigure7Jobs(b, 0) }

// BenchmarkFigure7Spectre regenerates Figure 7 (bottom graph): the Spectre
// attack model (paper: SPT 11% overhead, 3x below SecureBaseline).
func BenchmarkFigure7Spectre(b *testing.B) { benchFigure7(b, spt.Spectre) }

// BenchmarkFigure7Checkpointed measures the checkpointing win on a Figure 7
// grid. Both variants cover the same per-cell instruction region (skip +
// budget); the full variant simulates all of it in detail for every cell,
// the checkpointed variant executes the skip prefix functionally ONCE per
// workload and shares the checkpoint across every scheme cell. The
// "speedup-x" metric is the grid wall-clock ratio (CI floors it), and the
// sanity check asserts both grids retire the same detailed-region results.
func BenchmarkFigure7Checkpointed(b *testing.B) {
	const skip = 2 * benchBudget
	subset := []string{"perlbench", "mcf", "xz", "chacha20"}
	for i := 0; i < b.N; i++ {
		fullStart := time.Now()
		if _, err := spt.RunFigure7(spt.Futuristic, spt.EvalOptions{
			Budget: skip + benchBudget, Workloads: subset,
		}); err != nil {
			b.Fatal(err)
		}
		fullSec := time.Since(fullStart).Seconds()

		ckptStart := time.Now()
		fig, err := spt.RunFigure7(spt.Futuristic, spt.EvalOptions{
			Budget: benchBudget, Workloads: subset, Skip: skip,
		})
		if err != nil {
			b.Fatal(err)
		}
		ckptSec := time.Since(ckptStart).Seconds()

		b.ReportMetric(fullSec/ckptSec, "speedup-x")
		b.ReportMetric(fig.MeanSpec[spt.SPTFull], "spt-norm-spec")
	}
}

// BenchmarkFigure7Sampled runs the same grid with the SMARTS estimator:
// ~1/4 of each run simulated in detail, the rest fast-forwarded with
// functional warming.
func BenchmarkFigure7Sampled(b *testing.B) {
	subset := []string{"perlbench", "mcf", "xz", "chacha20"}
	sample := spt.SampleSpec{Intervals: 3, Warmup: 400, Detail: 800}
	for i := 0; i < b.N; i++ {
		fig, err := spt.RunFigure7(spt.Futuristic, spt.EvalOptions{
			Budget: benchBudget, Workloads: subset, Sample: sample,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.MeanSpec[spt.SPTFull], "spt-norm-spec")
	}
}

// BenchmarkSampledWindows measures the parallel-window sampling driver:
// the same sampled grid run twice, once with each cell's measured windows
// strictly serial and once with eight windows in flight (cell-level
// concurrency pinned to 1 both times, so the ratio isolates window
// parallelism). The "speedup-x" metric is the wall-clock ratio — CI floors
// it — and the sanity check asserts the estimates are identical, which is
// the whole point of the deterministic window pool.
func BenchmarkSampledWindows(b *testing.B) {
	// Windows must dominate the serial checkpoint walker for parallelism to
	// pay: detailed simulation runs ~6-7x slower per instruction than the
	// warming walker, so a near-full detail fraction (8 x 3600 of 32k) puts
	// >85% of each cell's host time inside the window pool.
	sample := spt.SampleSpec{Intervals: 8, Warmup: 400, Detail: 3200}
	var jobs []spt.Job
	for _, w := range []string{"gcc", "mcf", "xz", "chacha20"} {
		for _, s := range []spt.Scheme{spt.UnsafeBaseline, spt.SPTFull} {
			jobs = append(jobs, spt.Job{
				Workload: w, Scheme: s, Model: spt.Futuristic,
				Budget: 32_000, Sample: sample,
			})
		}
	}
	grid := func(windowJobs int) (float64, map[spt.Job]*spt.Result) {
		start := time.Now()
		res, err := spt.RunJobs(jobs, spt.EvalOptions{Jobs: 1, WindowJobs: windowJobs})
		if err != nil {
			b.Fatal(err)
		}
		return time.Since(start).Seconds(), res
	}
	for i := 0; i < b.N; i++ {
		serialSec, serial := grid(1)
		parSec, par := grid(8)
		for _, j := range jobs {
			if serial[j].Cycles != par[j].Cycles {
				b.Fatalf("%s: sampled estimate differs between WindowJobs 1 and 8", j)
			}
		}
		b.ReportMetric(serialSec/parSec, "speedup-x")
	}
}

// BenchmarkSampledLongPrefix measures a fast-forward-dominated sampled
// grid: the same windows as BenchmarkSampledWindows but a 2M-instruction
// budget, so most of each cell's host time is the functional warming
// walker between windows — the shape of a paper-scale grid, where
// billions are skipped and thousands are measured. The "ff-MIPS" metric
// (total budget over wall clock) tracks fast-forward throughput
// end-to-end; CI floors it.
func BenchmarkSampledLongPrefix(b *testing.B) {
	sample := spt.SampleSpec{Intervals: 8, Warmup: 400, Detail: 3200}
	const budget = 2_000_000
	var jobs []spt.Job
	for _, w := range []string{"gcc", "mcf"} {
		jobs = append(jobs, spt.Job{
			Workload: w, Scheme: spt.SPTFull, Model: spt.Futuristic,
			Budget: budget, Sample: sample,
		})
	}
	var sec float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := spt.RunJobs(jobs, spt.EvalOptions{Jobs: 1, WindowJobs: 1}); err != nil {
			b.Fatal(err)
		}
		sec += time.Since(start).Seconds()
	}
	b.ReportMetric(float64(budget*uint64(len(jobs)))*float64(b.N)/sec/1e6, "ff-MIPS")
}

// BenchmarkFigure8Breakdown regenerates the untaint-event breakdown
// (Figure 8) on the full SPT design for both models, reporting the share
// of forward untaints in the futuristic rows.
func BenchmarkFigure8Breakdown(b *testing.B) {
	subset := []string{"perlbench", "mcf", "fotonik3d", "namd"}
	for i := 0; i < b.N; i++ {
		rows, err := spt.RunFigure8(spt.EvalOptions{Budget: benchBudget, Workloads: subset})
		if err != nil {
			b.Fatal(err)
		}
		var fwd, total float64
		for _, r := range rows {
			if r.Model == spt.Futuristic {
				fwd += float64(r.Counts["forward"]) + float64(r.Counts["vp-declassify"])
				total += float64(r.Total)
			}
		}
		if total > 0 {
			b.ReportMetric(100*fwd/total, "fwd+vp-share-%")
		}
	}
}

// BenchmarkFigure9Histogram regenerates Figure 9: the untaints-per-cycle
// distribution under SPT{Ideal,ShadowMem}, reporting the width-3 coverage
// the paper uses to justify its design point (~81%).
func BenchmarkFigure9Histogram(b *testing.B) {
	subset := []string{"perlbench", "mcf", "xz", "bwaves"}
	for i := 0; i < b.N; i++ {
		rows, err := spt.RunFigure9(spt.EvalOptions{Budget: benchBudget, Workloads: subset})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.CumulativePct[2]
		}
		if len(rows) > 0 {
			b.ReportMetric(sum/float64(len(rows)), "width3-coverage-%")
		}
	}
}

// BenchmarkWidthSweep regenerates §9.4: sensitivity to the untaint
// broadcast width, reporting width-1 and width-3 slowdowns vs unbounded.
func BenchmarkWidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := spt.RunWidthSweep([]int{1, 3, -1}, spt.EvalOptions{
			Budget: benchBudget, Workloads: []string{"mcf", "perlbench"},
		})
		if err != nil {
			b.Fatal(err)
		}
		agg := map[int][]float64{}
		for _, r := range rows {
			agg[r.Width] = append(agg[r.Width], r.Normalized)
		}
		mean := func(v []float64) float64 {
			var s float64
			for _, x := range v {
				s += x
			}
			return s / float64(len(v))
		}
		b.ReportMetric(mean(agg[1]), "w1-vs-unbounded")
		b.ReportMetric(mean(agg[3]), "w3-vs-unbounded")
	}
}

// BenchmarkConstTimeHeadline isolates the paper's constant-time claim:
// SecureBaseline vs SPT on the three data-oblivious kernels (Futuristic).
func BenchmarkConstTimeHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var secure, sptn float64
		for _, k := range []string{"chacha20", "aes-bitslice", "djbsort"} {
			base, err := spt.Run(k, spt.Options{Scheme: spt.UnsafeBaseline, MaxInstructions: benchBudget})
			if err != nil {
				b.Fatal(err)
			}
			s, err := spt.Run(k, spt.Options{Scheme: spt.SecureBaseline, MaxInstructions: benchBudget})
			if err != nil {
				b.Fatal(err)
			}
			p, err := spt.Run(k, spt.Options{Scheme: spt.SPTFull, MaxInstructions: benchBudget})
			if err != nil {
				b.Fatal(err)
			}
			secure += s.NormalizedTo(base)
			sptn += p.NormalizedTo(base)
		}
		b.ReportMetric(secure/3, "secure-norm")
		b.ReportMetric(sptn/3, "spt-norm")
	}
}

// BenchmarkSimulatorSpeed measures raw simulation throughput (simulated
// instructions per wall-clock second) per scheme — a library-quality
// metric rather than a paper artifact.
func BenchmarkSimulatorSpeed(b *testing.B) {
	for _, scheme := range []spt.Scheme{spt.UnsafeBaseline, spt.SPTFull} {
		b.Run(string(scheme), func(b *testing.B) {
			var insts uint64
			for i := 0; i < b.N; i++ {
				res, err := spt.Run("gcc", spt.Options{
					Scheme: scheme, MaxInstructions: 50_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				insts += res.Instructions
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
		})
	}
}

// BenchmarkWorkloadSuite runs each workload once under full SPT; useful
// for spotting outliers and as per-benchmark artifacts for Figure 7's
// individual bars.
func BenchmarkWorkloadSuite(b *testing.B) {
	for _, w := range spt.Workloads() {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := spt.Run(w.Name, spt.Options{Scheme: spt.UnsafeBaseline, MaxInstructions: benchBudget})
				if err != nil {
					b.Fatal(err)
				}
				res, err := spt.Run(w.Name, spt.Options{Scheme: spt.SPTFull, MaxInstructions: benchBudget})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.NormalizedTo(base), "spt-norm")
			}
		})
	}
}

func ExampleRun() {
	res, err := spt.Run("chacha20", spt.Options{
		Scheme:          spt.SPTFull,
		Model:           spt.Futuristic,
		MaxInstructions: 10_000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Workload, res.Instructions >= 10_000)
	// Output: chacha20 true
}

// BenchmarkAblationSDO compares the two protection policies the paper's
// §6.3 discusses — delayed execution (evaluated in the paper) and
// SDO-style oblivious execution (this repo's extension) — on a workload
// where the visibility point lags badly behind (dependent scattered
// loads).
func BenchmarkAblationSDO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		delay, err := spt.Run("parest", spt.Options{Scheme: spt.SPTFull, MaxInstructions: benchBudget})
		if err != nil {
			b.Fatal(err)
		}
		obl, err := spt.Run("parest", spt.Options{Scheme: spt.SPTOblivious, MaxInstructions: benchBudget})
		if err != nil {
			b.Fatal(err)
		}
		base, err := spt.Run("parest", spt.Options{Scheme: spt.UnsafeBaseline, MaxInstructions: benchBudget})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(delay.NormalizedTo(base), "delay-norm")
		b.ReportMetric(obl.NormalizedTo(base), "oblivious-norm")
	}
}

// BenchmarkAblationWarmup quantifies cold-start effects the SimPoint-style
// warmup removes.
func BenchmarkAblationWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cold, err := spt.Run("namd", spt.Options{Scheme: spt.SPTFull, MaxInstructions: benchBudget})
		if err != nil {
			b.Fatal(err)
		}
		warm, err := spt.Run("namd", spt.Options{
			Scheme: spt.SPTFull, MaxInstructions: benchBudget, WarmupInstructions: benchBudget,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cold.CPI(), "cold-cpi")
		b.ReportMetric(warm.CPI(), "warm-cpi")
	}
}
