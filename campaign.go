package spt

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"spt/internal/attack"
	"spt/internal/fuzz"
	"spt/internal/isa"
)

// CampaignOptions configures a coverage-guided fuzzing campaign
// (RunCampaign). A campaign's results are deterministic in
// (Seed, Generations, PerGen, Schemes, Models, corpus contents): worker
// count, sharding, interruption and resume cannot change a byte of the
// final report.
type CampaignOptions struct {
	// Seed is the base seed. Default 1.
	Seed int64
	// Generations and PerGen size the campaign: Generations generations of
	// PerGen units each. Defaults 4 and 64.
	Generations int
	PerGen      int
	// Budget, when positive, stops the campaign at the first generation
	// boundary past the deadline. The state file (StatePath) makes the
	// truncated campaign resumable; the report is marked Stopped.
	Budget time.Duration
	// Schemes and Models define the per-unit oracle grid; defaults as in
	// FuzzOptions.
	Schemes []Scheme
	Models  []AttackModel
	// Minimize caps how many triage clusters get a minimized reproducer:
	// 0 (default) minimizes every cluster representative, negative
	// disables minimization.
	Minimize int
	// Jobs is the worker count; 0 = one per core. Never affects output.
	Jobs int
	// Shard/Shards select a slice of the oracle work: this process
	// evaluates only units with unit%Shards == Shard (planning and shapes
	// are computed everywhere — that is what makes merges exact). Shards 0
	// or 1 means unsharded.
	Shard, Shards int
	// StatePath, when set, persists campaign state after every generation
	// (atomically) and resumes from it when the file already exists.
	StatePath string
	// CorpusDir, when set, loads *.urisc reproducers to evolve alongside
	// fresh generation.
	CorpusDir string
	// Context cancels the campaign between oracle runs; when StatePath is
	// set the state is saved before returning, so cancellation is just an
	// interruption.
	Context context.Context
	// Progress, if non-nil, is called (serialized) after each unit of work.
	Progress func(done, total int, what string)
	// StopAfterUnits, when positive, stops after evaluating that many
	// units (the interruption test hook; the state file stays resumable).
	StopAfterUnits int
}

func (o CampaignOptions) withDefaults() CampaignOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Generations == 0 {
		o.Generations = 4
	}
	if o.PerGen == 0 {
		o.PerGen = 64
	}
	if len(o.Schemes) == 0 {
		o.Schemes = Schemes()
	}
	if len(o.Models) == 0 {
		o.Models = AttackModels()
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

func (o CampaignOptions) config() fuzz.CampaignConfig {
	cfg := fuzz.CampaignConfig{Seed: o.Seed, Generations: o.Generations, PerGen: o.PerGen}
	for _, s := range o.Schemes {
		cfg.Schemes = append(cfg.Schemes, string(s))
	}
	for _, m := range o.Models {
		cfg.Models = append(cfg.Models, string(m))
	}
	return cfg
}

// CampaignBucket is one row of the coverage map.
type CampaignBucket struct {
	Bucket string `json:"bucket"`
	Count  int    `json:"count"`
	First  int    `json:"first"` // unit that opened the bucket
}

// CampaignCluster is one distinct leak in the triage table, optionally
// backed by a minimized reproducer.
type CampaignCluster struct {
	fuzz.LeakCluster
	// Name is the representative unit's program name.
	Name string `json:"name"`
	// Skeleton is the opcode-skeleton digest of the minimized reproducer;
	// clusters sharing it were merged.
	Skeleton string          `json:"skeleton,omitempty"`
	Repro    *MinimizedRepro `json:"repro,omitempty"`
}

// CampaignReport is the campaign outcome, a pure function of the merged
// state (plus the Minimize cap).
type CampaignReport struct {
	Engine    string              `json:"engine"`
	Digest    string              `json:"digest"`
	Config    fuzz.CampaignConfig `json:"config"`
	Units     int                 `json:"units"`
	Evaluated int                 `json:"evaluated"`
	Rejected  int                 `json:"rejected"`
	// Pending counts evaluable units with no oracle results yet: non-zero
	// for a single shard's report or a stopped campaign, zero after a
	// complete run or merge.
	Pending    int               `json:"pending"`
	Kinds      map[string]int    `json:"kinds"`
	Buckets    int               `json:"buckets"`
	Coverage   []CampaignBucket  `json:"coverage"`
	Cells      []FuzzCellStats   `json:"cells"`
	Clusters   []CampaignCluster `json:"clusters"`
	EvalErrors []string          `json:"eval_errors,omitempty"`
	Stopped    bool              `json:"stopped,omitempty"`
}

// Unexpected returns the clusters that contain a defense failure. An
// empty result is the campaign's pass condition.
func (r *CampaignReport) Unexpected() []CampaignCluster {
	var out []CampaignCluster
	for _, cl := range r.Clusters {
		if cl.Unexpected {
			out = append(out, cl)
		}
	}
	return out
}

// JSON renders the report as indented JSON.
func (r *CampaignReport) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// Text renders the campaign summary: unit mix, coverage, the per-cell
// verdict table, and the triaged distinct-leak table.
func (r *CampaignReport) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Coverage-guided fuzzing campaign (seed=%d, %d generations x %d units)\n",
		r.Config.Seed, r.Config.Generations, r.Config.PerGen)
	fmt.Fprintf(&sb, "Units: %d planned", r.Units)
	kinds := make([]string, 0, len(r.Kinds))
	for k := range r.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&sb, ", %d %s", r.Kinds[k], k)
	}
	fmt.Fprintf(&sb, "; %d evaluated, %d rejected, %d pending\n", r.Evaluated, r.Rejected, r.Pending)
	fmt.Fprintf(&sb, "Coverage: %d observation-shape buckets\n", r.Buckets)
	if r.Stopped {
		sb.WriteString("NOTE: campaign stopped early (budget/interrupt); state file is resumable\n")
	}

	fmt.Fprintf(&sb, "\n%-14s %-11s %6s %6s %9s %11s %6s\n",
		"SCHEME", "MODEL", "CASES", "LEAKS", "EXPECTED", "UNEXPECTED", "CLEAN")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%-14s %-11s %6d %6d %9d %11d %6d\n",
			c.Scheme, c.Model, c.Cases, c.Leaks, c.Expected, c.Unexpected, c.Clean)
	}

	if len(r.Clusters) > 0 {
		fmt.Fprintf(&sb, "\nDistinct leaks (%d clusters):\n", len(r.Clusters))
		for _, cl := range r.Clusters {
			tag := "expected"
			if cl.Unexpected {
				tag = "UNEXPECTED"
			}
			repro := ""
			if cl.Repro != nil {
				repro = fmt.Sprintf(" [min %d->%d insns]", cl.Repro.Before, cl.Repro.After)
			}
			fmt.Fprintf(&sb, "  %-10s x%-5d %-14s %-12s %-7s cells=%s kinds=%s%s\n",
				tag, cl.Count, cl.Class, cl.Primitive, cl.Transmitter,
				strings.Join(cl.Cells, ","), cl.Kinds, repro)
		}
	}
	if len(r.EvalErrors) > 0 {
		fmt.Fprintf(&sb, "\nEval errors (%d):\n", len(r.EvalErrors))
		for _, e := range r.EvalErrors {
			fmt.Fprintf(&sb, "  %s\n", e)
		}
	}
	if bad := r.Unexpected(); len(bad) > 0 {
		fmt.Fprintf(&sb, "\nVERDICT: FAIL — %d distinct unexpected leak(s)\n", len(bad))
	} else if r.Pending > 0 {
		sb.WriteString("\nVERDICT: PARTIAL — no unexpected leaks in the evaluated slice\n")
	} else {
		sb.WriteString("\nVERDICT: PASS — every distinct leak is a true-positive control\n")
	}
	return sb.String()
}

// RunCampaign runs a coverage-guided fuzzing campaign: generations of
// planned units (fresh gadgets, corpus mutants, coverage-frontier
// mutants), each shaped on the reference cell and evaluated under the
// full oracle grid, with per-generation state persistence, sharding by
// unit id, and triage of the results into distinct leaks. See
// DESIGN.md §4j for the determinism contract.
func RunCampaign(opt CampaignOptions) (*CampaignReport, error) {
	opt = opt.withDefaults()
	if opt.Shard < 0 || opt.Shard >= opt.Shards {
		return nil, fmt.Errorf("spt: shard %d out of range [0,%d)", opt.Shard, opt.Shards)
	}

	var corpus []fuzz.CorpusEntry
	if opt.CorpusDir != "" {
		var err error
		if corpus, err = fuzz.LoadCorpus(opt.CorpusDir); err != nil {
			return nil, err
		}
	}
	cfg := opt.config()
	digest := cfg.Digest(corpus)

	st := fuzz.NewCampaignState(cfg, digest, EngineVersion)
	if opt.StatePath != "" {
		if _, err := os.Stat(opt.StatePath); err == nil {
			loaded, err := fuzz.LoadState(opt.StatePath)
			if err != nil {
				return nil, err
			}
			if loaded.Digest != digest {
				return nil, fmt.Errorf("spt: state %s was built for campaign digest %s, this config/corpus digests to %s",
					opt.StatePath, loaded.Digest, digest)
			}
			if loaded.Engine != EngineVersion {
				return nil, fmt.Errorf("spt: state %s was built by %s, this binary is %s",
					opt.StatePath, loaded.Engine, EngineVersion)
			}
			st = loaded
		}
	}

	var deadline time.Time
	if opt.Budget > 0 {
		deadline = time.Now().Add(opt.Budget)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }
	save := func() error {
		if opt.StatePath == "" {
			return nil
		}
		return st.Save(opt.StatePath)
	}
	// On failure or cancellation, persist what completed so the campaign
	// resumes instead of restarting.
	fail := func(err error) (*CampaignReport, error) {
		if serr := save(); serr != nil {
			return nil, fmt.Errorf("%w (and saving state failed: %v)", err, serr)
		}
		return nil, err
	}

	evaled, stopped := 0, false
	for g := 0; g < cfg.Generations; g++ {
		// Shape phase: plan and shape the generation unless the state
		// already holds it (resume).
		traces := map[int][]string{}
		if st.UnitByID(g*cfg.PerGen) == -1 {
			if expired() {
				stopped = true
				break
			}
			plan := fuzz.PlanGeneration(cfg, corpus, g, st.Units)
			prior := st.Units
			idxs := make([]int, len(plan))
			for i := range idxs {
				idxs[i] = i
			}
			type shaped struct {
				rec   fuzz.UnitRecord
				trace []string
			}
			res, err := runPool(idxs, poolConfig[int]{
				Workers:  opt.Jobs,
				Context:  opt.Context,
				Progress: phaseProgress(opt.Progress, "shape gen %d", g),
			}, func(i int) (shaped, error) {
				rec, _, trace, err := fuzz.ShapeUnit(plan[i], prior, corpus)
				return shaped{rec, trace}, err
			})
			if err != nil {
				return fail(err)
			}
			for _, i := range idxs {
				st.Units = append(st.Units, res[i].rec)
				if res[i].trace != nil {
					traces[res[i].rec.Unit] = res[i].trace
				}
			}
		}

		// Eval phase: the oracle grid for owned, shaped, unevaluated units.
		var pending []int
		for i, u := range st.Units {
			if u.Gen == g && u.Rejected == "" && !u.Done && fuzz.OwnsUnit(u.Unit, opt.Shard, opt.Shards) {
				pending = append(pending, i)
			}
		}
		if expired() {
			stopped = true
		}
		if opt.StopAfterUnits > 0 && evaled+len(pending) > opt.StopAfterUnits {
			pending = pending[:opt.StopAfterUnits-evaled]
			stopped = true
		}
		if stopped && len(pending) == 0 {
			break
		}
		res, err := runPool(pending, poolConfig[int]{
			Workers:  opt.Jobs,
			Context:  opt.Context,
			Progress: phaseProgress(opt.Progress, "eval gen %d", g),
		}, func(i int) (fuzz.UnitRecord, error) {
			rec := st.Units[i]
			c, _, reject, err := fuzz.RealizeUnit(rec, st.Units, corpus)
			if err != nil || reject != "" {
				return rec, fmt.Errorf("spt: realizing unit %d: %v%s", rec.Unit, err, reject)
			}
			leaks, err := fuzz.EvalUnit(c, cfg.Schemes, cfg.Models, traces[rec.Unit])
			if err != nil {
				// Deterministic per-unit failures (a mutant the reference
				// cell accepted but another policy cannot finish) are
				// recorded, not fatal: every shard and resume sees the same
				// string.
				rec.EvalError = err.Error()
			}
			rec.Done = true
			rec.Leaks = leaks
			return rec, nil
		})
		if err != nil {
			return fail(err)
		}
		for _, i := range pending {
			st.Units[i] = res[i]
		}
		evaled += len(pending)
		if err := save(); err != nil {
			return nil, err
		}
		if stopped {
			break
		}
	}

	rep, err := CampaignReportFromState(st, opt)
	if err != nil {
		return nil, err
	}
	rep.Stopped = stopped
	return rep, nil
}

// phaseProgress adapts the campaign progress callback to one pool phase.
func phaseProgress(p func(done, total int, what string), format string, args ...any) func(int, int, int) {
	if p == nil {
		return nil
	}
	what := fmt.Sprintf(format, args...)
	return func(done, total int, _ int) { p(done, total, what) }
}

// MergeCampaignStates loads shard state files and merges them into one
// state. The merge is deterministic in the set of inputs (order does not
// matter) and refuses states from different campaigns or engines.
func MergeCampaignStates(paths []string) (*fuzz.CampaignState, error) {
	states := make([]*fuzz.CampaignState, 0, len(paths))
	for _, p := range paths {
		st, err := fuzz.LoadState(p)
		if err != nil {
			return nil, err
		}
		states = append(states, st)
	}
	return fuzz.MergeStates(states)
}

// CampaignReportFromState derives the campaign report from a (possibly
// merged) state: coverage map, per-cell tallies, triage clusters, and
// minimized representative reproducers. Options supply the Minimize cap,
// worker count, context, and the corpus directory (which must digest to
// the state's campaign identity); everything the report says comes from
// the state, so equal states render byte-identical reports.
func CampaignReportFromState(st *fuzz.CampaignState, opt CampaignOptions) (*CampaignReport, error) {
	opt.Shards = 0 // report derivation is never sharded
	opt = opt.withDefaults()
	cfg := st.Config

	var corpus []fuzz.CorpusEntry
	if opt.CorpusDir != "" {
		var err error
		if corpus, err = fuzz.LoadCorpus(opt.CorpusDir); err != nil {
			return nil, err
		}
	}
	if d := cfg.Digest(corpus); d != st.Digest {
		return nil, fmt.Errorf("spt: corpus %q digests the campaign to %s, state says %s", opt.CorpusDir, d, st.Digest)
	}

	rep := &CampaignReport{
		Engine: st.Engine, Digest: st.Digest, Config: cfg,
		Units: len(st.Units), Kinds: map[string]int{},
	}

	cov := fuzz.CoverageFromRecords(st.Units)
	for _, k := range cov.Keys() {
		rep.Coverage = append(rep.Coverage, CampaignBucket{Bucket: k, Count: cov.Counts[k], First: cov.First[k]})
	}
	rep.Buckets = len(rep.Coverage)

	cellIdx := map[fuzz.SchemeModel]int{}
	for _, s := range cfg.Schemes {
		for _, m := range cfg.Models {
			cellIdx[fuzz.SchemeModel{Scheme: s, Model: m}] = len(rep.Cells)
			rep.Cells = append(rep.Cells, FuzzCellStats{Scheme: Scheme(s), Model: AttackModel(m)})
		}
	}
	for _, u := range st.Units {
		rep.Kinds[u.Kind]++
		switch {
		case u.Rejected != "":
			rep.Rejected++
		case !u.Done:
			rep.Pending++
		case u.EvalError != "":
			rep.Evaluated++
			rep.EvalErrors = append(rep.EvalErrors, fmt.Sprintf("unit %d (%s): %s", u.Unit, u.Name, u.EvalError))
		default:
			rep.Evaluated++
			for i := range rep.Cells {
				rep.Cells[i].Cases++
			}
			leaked := map[int]bool{}
			for _, l := range u.Leaks {
				ci := cellIdx[fuzz.SchemeModel{Scheme: l.Scheme, Model: l.Model}]
				cell := &rep.Cells[ci]
				cell.Leaks++
				leaked[ci] = true
				if l.Expected {
					cell.Expected++
				} else {
					cell.Unexpected++
				}
			}
			for i := range rep.Cells {
				if !leaked[i] {
					rep.Cells[i].Clean++
				}
			}
		}
	}

	for _, cl := range fuzz.Triage(st.Units) {
		idx := st.UnitByID(cl.Representative)
		name := ""
		if idx >= 0 {
			name = st.Units[idx].Name
		}
		rep.Clusters = append(rep.Clusters, CampaignCluster{LeakCluster: cl, Name: name})
	}

	if opt.Minimize >= 0 {
		if err := minimizeClusters(rep, st, corpus, opt); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// minimizeClusters shrinks each cluster representative into a corpus
// reproducer (on the worker pool; minimization of distinct clusters is
// independent) and then merges clusters whose minimized programs share an
// opcode skeleton and cell profile — different constants, same gadget.
func minimizeClusters(rep *CampaignReport, st *fuzz.CampaignState, corpus []fuzz.CorpusEntry, opt CampaignOptions) error {
	limit := len(rep.Clusters)
	if opt.Minimize > 0 && opt.Minimize < limit {
		limit = opt.Minimize
	}
	if limit == 0 {
		return nil
	}
	cfg := st.Config

	idxs := make([]int, limit)
	for i := range idxs {
		idxs[i] = i
	}
	type minned struct {
		skeleton string
		repro    *MinimizedRepro
	}
	res, err := runPool(idxs, poolConfig[int]{
		Workers:  opt.Jobs,
		Context:  opt.Context,
		Progress: phaseProgress(opt.Progress, "minimize clusters"),
	}, func(i int) (minned, error) {
		cl := rep.Clusters[i]
		ui := st.UnitByID(cl.Representative)
		if ui < 0 {
			return minned{}, fmt.Errorf("spt: cluster representative unit %d missing from state", cl.Representative)
		}
		rec := st.Units[ui]
		c, _, reject, err := fuzz.RealizeUnit(rec, st.Units, corpus)
		if err != nil || reject != "" {
			return minned{}, fmt.Errorf("spt: realizing cluster representative %d: %v%s", rec.Unit, err, reject)
		}
		// Shrink while preserving the leak in the cluster's anchor cell
		// (the first unexpected cell when there is one).
		anchor := rec.Leaks[0]
		for _, l := range rec.Leaks {
			if !l.Expected {
				anchor = l
				break
			}
		}
		keep := func(p *isa.Program) bool {
			v, err := fuzz.CheckLeak(p, anchor.Scheme, anchor.Model)
			return err == nil && v.Leaked
		}
		min := fuzz.Minimize(c.Prog, keep)

		var leaks, clean []string
		for _, s := range cfg.Schemes {
			for _, m := range cfg.Models {
				v, err := fuzz.CheckLeak(min, s, m)
				if err != nil {
					return minned{}, fmt.Errorf("spt: re-verifying minimized %s under %s/%s: %w", c.Name, s, m, err)
				}
				if v.Leaked {
					leaks = append(leaks, s+"/"+m)
				} else {
					clean = append(clean, s+"/"+m)
				}
			}
		}
		entry := fuzz.CorpusEntry{
			Name: c.Name,
			Meta: map[string]string{
				"seed":        fmt.Sprintf("%d", c.Seed),
				"class":       string(c.Class),
				"primitive":   string(c.Primitive),
				"transmitter": string(c.Transmit),
				"secret-addr": fmt.Sprintf("%#x", uint64(attack.SecretAddr)),
				"leaks-under": strings.Join(leaks, " "),
				"clean-under": strings.Join(clean, " "),
			},
			Prog: min,
		}
		return minned{
			skeleton: fmt.Sprintf("%016x", fuzz.SkeletonDigest(min)),
			repro: &MinimizedRepro{
				Name: c.Name, Seed: c.Seed,
				Before: len(c.Prog.Code), After: len(min.Code),
				LeaksUnder: leaks, CleanUnder: clean,
				Corpus: fuzz.FormatCorpusEntry(entry),
			},
		}, nil
	})
	if err != nil {
		return err
	}
	for _, i := range idxs {
		rep.Clusters[i].Skeleton = res[i].skeleton
		rep.Clusters[i].Repro = res[i].repro
	}

	// Second-level merge: clusters whose minimized reproducers share an
	// opcode skeleton and cell profile are one distinct leak. Clusters are
	// already ordered (unexpected first, then by representative), so the
	// first of a group absorbs the rest.
	byShape := map[string]int{}
	merged := rep.Clusters[:0]
	for _, cl := range rep.Clusters {
		shapeKey := ""
		if cl.Skeleton != "" {
			shapeKey = cl.Skeleton + "|" + strings.Join(cl.Cells, ",")
		}
		if shapeKey != "" {
			if fi, ok := byShape[shapeKey]; ok {
				first := &merged[fi]
				first.Count += cl.Count
				for _, u := range cl.Units {
					if len(first.Units) < 16 {
						first.Units = append(first.Units, u)
					}
				}
				sort.Ints(first.Units)
				continue
			}
			byShape[shapeKey] = len(merged)
		}
		merged = append(merged, cl)
	}
	rep.Clusters = merged
	return nil
}
