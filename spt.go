package spt

import (
	"fmt"
	"time"

	"spt/internal/asm"
	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/taint"
	"spt/internal/workloads"
)

// WorkloadInfo describes one benchmark available to Run.
type WorkloadInfo struct {
	Name string
	// Class is "int", "fp", or "const-time".
	Class string
	// Behavior summarizes the SPEC CPU2017 behavior the kernel mimics.
	Behavior string
}

// Workloads lists the benchmark suite: the SPEC-CPU2017-like kernels and
// the constant-time kernels the paper evaluates.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, w := range workloads.All() {
		out = append(out, WorkloadInfo{Name: w.Name, Class: w.Class.String(), Behavior: w.Behavior})
	}
	return out
}

// Run simulates the named workload under the given options.
func Run(workload string, opt Options) (*Result, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	o := opt.withDefaults()
	return runProgram(w.Build(o.WorkloadIters), o)
}

// RunAssembly assembles µRISC source text and simulates it. The assembly
// syntax is documented on internal/asm.Assemble; see the examples/
// directory for complete programs.
func RunAssembly(name, source string, opt Options) (*Result, error) {
	p, err := asm.Assemble(name, source)
	if err != nil {
		return nil, err
	}
	return runProgram(p, opt.withDefaults())
}

func runProgram(p *isa.Program, o Options) (*Result, error) {
	if o.Sample.enabled() {
		if o.SkipInstructions > 0 {
			return nil, fmt.Errorf("spt: Sample and SkipInstructions are mutually exclusive (sampling fast-forwards internally)")
		}
		if o.WarmupInstructions > 0 {
			return nil, fmt.Errorf("spt: use Sample.Warmup instead of WarmupInstructions for sampled runs")
		}
		return runSampled(p, o)
	}
	model, err := o.Model.internal()
	if err != nil {
		return nil, err
	}
	pol, sptPol, sttPol, err := o.policy()
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Model = model

	var core *pipeline.Core
	var ffSeconds float64
	if o.SkipInstructions > 0 {
		// Fast-forward the prefix functionally (warming caches, the TLB,
		// and the predictors) and boot the detailed core from the resulting
		// checkpoint. A shared Options.Checkpoints store makes the prefix
		// pass run once per workload across a whole grid.
		ffStart := time.Now()
		cp, err := o.checkpointFor(p)
		if err != nil {
			return nil, err
		}
		snap, hier, pred := cp.Materialize(mem.DefaultHierarchyConfig())
		ffSeconds = time.Since(ffStart).Seconds()
		core, err = pipeline.BootFromSnapshot(cfg, p, hier, pol, snap, pred)
		if err != nil {
			return nil, err
		}
	} else {
		hier := mem.NewHierarchy(mem.DefaultHierarchyConfig())
		core, err = pipeline.New(cfg, p, hier, pol)
		if err != nil {
			return nil, err
		}
	}
	var warmCycles, warmInsts uint64
	var warmSeconds float64
	if o.WarmupInstructions > 0 {
		warmStart := time.Now()
		if err := core.RunCtx(o.Context, o.WarmupInstructions, o.MaxCycles); err != nil {
			return nil, fmt.Errorf("spt: warmup: %w", err)
		}
		warmSeconds = time.Since(warmStart).Seconds()
		warmCycles, warmInsts = core.Stats.Cycles, core.Stats.Retired
	}
	hostStart := time.Now()
	if err := core.RunCtx(o.Context, warmInsts+o.MaxInstructions, o.MaxCycles); err != nil {
		return nil, fmt.Errorf("spt: %s under %s/%s: %w", p.Name, o.Scheme, o.Model, err)
	}
	hostSeconds := time.Since(hostStart).Seconds()
	if !core.Finished() && core.Stats.Retired < warmInsts+o.MaxInstructions {
		return nil, fmt.Errorf("spt: %s under %s/%s: hit the cycle bound (%d cycles, %d retired)",
			p.Name, o.Scheme, o.Model, core.Stats.Cycles, core.Stats.Retired)
	}

	res := &Result{
		Workload:      p.Name,
		Scheme:        o.Scheme,
		Model:         o.Model,
		Cycles:        core.Stats.Cycles - warmCycles,
		Instructions:  core.Stats.Retired - warmInsts,
		FastForwarded: core.Stats.FastForwarded,
		Pipeline:      core.Stats,
		Memory:        core.Hier.Stats,
		L1D:           core.Hier.L1D.Stats(),
		L2:            core.Hier.L2.Stats(),
		L3:            core.Hier.L3.Stats(),
		TLBMisses:     core.Hier.DTLB.Stats.Misses,
		Predictor:     core.Pred.Stats,
		Stats:         core.StatsRegistry().Dump(),
		Taint:         taintResultStats(sptPol, sttPol),
	}
	res.Stats.Engine = EngineVersion
	res.Host.Seconds = hostSeconds
	// A plain run has no concurrency, so aggregate CPU time is just the
	// phases Seconds excludes (fast-forward, warmup) plus the measured
	// window itself.
	res.Host.CPUSeconds = ffSeconds + warmSeconds + hostSeconds
	if insts := res.Instructions; insts > 0 && hostSeconds > 0 {
		res.Host.SimKIPS = float64(insts) / hostSeconds / 1e3
		res.Host.NsPerInstruction = hostSeconds * 1e9 / float64(insts)
	}
	if total := res.FastForwarded + res.Instructions; total > 0 && hostSeconds+ffSeconds > 0 {
		res.Host.EffectiveSimKIPS = float64(total) / (hostSeconds + ffSeconds) / 1e3
	}
	return res, nil
}

// taintResultStats converts the run's policy counters to the public form;
// nil for the unsafe baseline.
func taintResultStats(sptPol *taint.SPT, sttPol *taint.STT) *TaintStats {
	if sptPol != nil {
		ts := &TaintStats{Events: map[string]uint64{}}
		for k, v := range sptPol.Stats.Events {
			ts.Events[EventName(k)] = v
		}
		ts.UntaintingCycles = sptPol.Stats.UntaintingCycles
		ts.UntaintHist = sptPol.Stats.UntaintHist
		ts.BroadcastDeferred = sptPol.Stats.BroadcastDeferred
		ts.MemUntaints = sptPol.Stats.MemUntaints
		ts.TaintedAtRename = sptPol.Stats.TaintedAtRename
		ts.STLPublicHits = sptPol.Stats.STLPublicHits
		return ts
	}
	if sttPol != nil {
		return &TaintStats{
			Events:          map[string]uint64{"stt-untaint": sttPol.Stats.Untaints},
			TaintedAtRename: sttPol.Stats.TaintedAtRename,
			STLPublicHits:   sttPol.Stats.STLPublicHits,
		}
	}
	return nil
}
