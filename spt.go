package spt

import (
	"fmt"
	"time"

	"spt/internal/asm"
	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/workloads"
)

// WorkloadInfo describes one benchmark available to Run.
type WorkloadInfo struct {
	Name string
	// Class is "int", "fp", or "const-time".
	Class string
	// Behavior summarizes the SPEC CPU2017 behavior the kernel mimics.
	Behavior string
}

// Workloads lists the benchmark suite: the SPEC-CPU2017-like kernels and
// the constant-time kernels the paper evaluates.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, w := range workloads.All() {
		out = append(out, WorkloadInfo{Name: w.Name, Class: w.Class.String(), Behavior: w.Behavior})
	}
	return out
}

// Run simulates the named workload under the given options.
func Run(workload string, opt Options) (*Result, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	o := opt.withDefaults()
	return runProgram(w.Build(o.WorkloadIters), o)
}

// RunAssembly assembles µRISC source text and simulates it. The assembly
// syntax is documented on internal/asm.Assemble; see the examples/
// directory for complete programs.
func RunAssembly(name, source string, opt Options) (*Result, error) {
	p, err := asm.Assemble(name, source)
	if err != nil {
		return nil, err
	}
	return runProgram(p, opt.withDefaults())
}

func runProgram(p *isa.Program, o Options) (*Result, error) {
	model, err := o.Model.internal()
	if err != nil {
		return nil, err
	}
	pol, sptPol, sttPol, err := o.policy()
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Model = model
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	core, err := pipeline.New(cfg, p, hier, pol)
	if err != nil {
		return nil, err
	}
	var warmCycles, warmInsts uint64
	if o.WarmupInstructions > 0 {
		if err := core.Run(o.WarmupInstructions, o.MaxCycles); err != nil {
			return nil, fmt.Errorf("spt: warmup: %w", err)
		}
		warmCycles, warmInsts = core.Stats.Cycles, core.Stats.Retired
	}
	hostStart := time.Now()
	if err := core.Run(warmInsts+o.MaxInstructions, o.MaxCycles); err != nil {
		return nil, fmt.Errorf("spt: %s under %s/%s: %w", p.Name, o.Scheme, o.Model, err)
	}
	hostSeconds := time.Since(hostStart).Seconds()
	if !core.Finished() && core.Stats.Retired < warmInsts+o.MaxInstructions {
		return nil, fmt.Errorf("spt: %s under %s/%s: hit the cycle bound (%d cycles, %d retired)",
			p.Name, o.Scheme, o.Model, core.Stats.Cycles, core.Stats.Retired)
	}

	res := &Result{
		Workload:     p.Name,
		Scheme:       o.Scheme,
		Model:        o.Model,
		Cycles:       core.Stats.Cycles - warmCycles,
		Instructions: core.Stats.Retired - warmInsts,
		Pipeline:     core.Stats,
		Memory:       hier.Stats,
		L1D:          hier.L1D.Stats(),
		L2:           hier.L2.Stats(),
		L3:           hier.L3.Stats(),
		TLBMisses:    hier.DTLB.Stats.Misses,
		Predictor:    core.Pred.Stats,
		Stats:        core.StatsRegistry().Dump(),
	}
	res.Host.Seconds = hostSeconds
	if insts := res.Instructions; insts > 0 && hostSeconds > 0 {
		res.Host.SimKIPS = float64(insts) / hostSeconds / 1e3
		res.Host.NsPerInstruction = hostSeconds * 1e9 / float64(insts)
	}
	if sptPol != nil {
		res.Taint = &TaintStats{Events: map[string]uint64{}}
		for k, v := range sptPol.Stats.Events {
			res.Taint.Events[EventName(k)] = v
		}
		res.Taint.UntaintingCycles = sptPol.Stats.UntaintingCycles
		res.Taint.UntaintHist = sptPol.Stats.UntaintHist
		res.Taint.BroadcastDeferred = sptPol.Stats.BroadcastDeferred
		res.Taint.MemUntaints = sptPol.Stats.MemUntaints
		res.Taint.TaintedAtRename = sptPol.Stats.TaintedAtRename
		res.Taint.STLPublicHits = sptPol.Stats.STLPublicHits
	}
	if sttPol != nil {
		res.Taint = &TaintStats{
			Events:          map[string]uint64{"stt-untaint": sttPol.Stats.Untaints},
			TaintedAtRename: sttPol.Stats.TaintedAtRename,
			STLPublicHits:   sttPol.Stats.STLPublicHits,
		}
	}
	if res.Taint != nil && res.Taint.Events == nil {
		res.Taint.Events = map[string]uint64{}
	}
	return res, nil
}
