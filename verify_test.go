package spt_test

import (
	"encoding/json"
	"strings"
	"testing"

	"spt"
	"spt/internal/attack"
	"spt/internal/fuzz"
	"spt/internal/isa"
	"spt/internal/symx"
)

// TestRunVerifyCorpus pins the acceptance contract on the checked-in
// corpus: the campaign passes, every reproducer is Leak under unsafe and
// Secure under spt in the futuristic model, and the report agrees with
// the corpus metadata on every classified cell.
func TestRunVerifyCorpus(t *testing.T) {
	rep, err := spt.RunVerify(spt.VerifyOptions{CorpusDir: "testdata/fuzz"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("corpus campaign failed:\n%s", rep.Text())
	}
	if rep.Programs != 4 {
		t.Fatalf("expected 4 corpus programs, got %d", rep.Programs)
	}
	find := func(scheme spt.Scheme, model spt.AttackModel) spt.VerifyCellStats {
		for _, c := range rep.Cells {
			if c.Scheme == scheme && c.Model == model {
				return c
			}
		}
		t.Fatalf("cell %s/%s missing from report", scheme, model)
		return spt.VerifyCellStats{}
	}
	unsafeCell := find(spt.UnsafeBaseline, spt.Futuristic)
	if unsafeCell.AgreeLeak != 4 {
		t.Fatalf("unsafe/futuristic: want 4 agreed leaks, got %+v", unsafeCell)
	}
	sptCell := find(spt.SPTFull, spt.Futuristic)
	if sptCell.AgreeSecure != 4 {
		t.Fatalf("spt/futuristic: want 4 agreed secure, got %+v", sptCell)
	}
}

// TestRunVerifyDeterminism pins jobs-independence: the JSON report is
// byte-identical at 1 worker and at 7.
func TestRunVerifyDeterminism(t *testing.T) {
	opt := spt.VerifyOptions{CorpusDir: "testdata/fuzz", Count: 6, Seed: 11}
	opt.Jobs = 1
	a, err := spt.RunVerify(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Jobs = 7
	b, err := spt.RunVerify(opt)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if ja != jb {
		t.Fatal("report differs between -jobs 1 and -jobs 7")
	}
	var parsed spt.VerifyReport
	if err := json.Unmarshal([]byte(ja), &parsed); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
}

// TestRunVerifyGenerated checks a generated-only campaign stays clean and
// the text report renders a verdict line.
func TestRunVerifyGenerated(t *testing.T) {
	count := 24
	if testing.Short() {
		count = 6
	}
	rep, err := spt.RunVerify(spt.VerifyOptions{Count: count, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("generated campaign failed:\n%s", rep.Text())
	}
	if !strings.Contains(rep.Text(), "VERDICT: PASS") {
		t.Fatalf("text report missing verdict:\n%s", rep.Text())
	}
}

// FuzzOracleAgreement is the native fuzz entry for the two-oracle
// harness: any generated gadget, any grid cell, the differential fuzzer
// and the symbolic executor must agree with each other and with the
// generator's ground-truth matrix.
func FuzzOracleAgreement(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(2), uint8(3), uint8(1))
	f.Add(int64(18), uint8(7), uint8(1))
	f.Add(int64(33), uint8(5), uint8(0))
	schemes := fuzz.SchemeNames()
	models := fuzz.ModelNames()
	f.Fuzz(func(t *testing.T, seed int64, si, mi uint8) {
		scheme := schemes[int(si)%len(schemes)]
		model := models[int(mi)%len(models)]
		c := fuzz.Generate(seed)
		cc, err := fuzz.CrossCheckProgram(c.Prog, scheme, model)
		if err != nil {
			t.Fatalf("seed %d %s/%s: %v", seed, scheme, model, err)
		}
		if !cc.OK() {
			t.Fatalf("oracle disagreement: %s", cc)
		}
		if cc.Sym.Verdict == symx.VerdictUnknown {
			t.Fatalf("seed %d %s/%s: symbolic oracle abstained: %s", seed, scheme, model, cc.Sym.Reason)
		}
		want := fuzz.ExpectLeak(scheme, model, c)
		if got := cc.Sym.Verdict == symx.VerdictLeak; got != want {
			t.Fatalf("seed %d %s/%s: ExpectLeak=%v but symbolic verdict %s", seed, scheme, model, want, cc.Sym.Verdict)
		}
		if cc.FuzzLeaked != want && cc.Agreement != fuzz.SymLeakConfirmed {
			t.Fatalf("seed %d %s/%s: ExpectLeak=%v but fuzzer leak=%v", seed, scheme, model, want, cc.FuzzLeaked)
		}
	})
}

// FuzzSymxNoPanic feeds arbitrary instruction encodings to the symbolic
// executor: malformed programs must be rejected with an error, never a
// panic, and verdicts on well-formed ones must come back without error.
func FuzzSymxNoPanic(f *testing.F) {
	seedProg := func(seed int64) []byte {
		return isa.EncodeProgram(fuzz.Generate(seed).Prog.Code)
	}
	f.Add(seedProg(1), uint8(0))
	f.Add(seedProg(5), uint8(9))
	f.Add([]byte{}, uint8(0))
	f.Add(make([]byte, isa.WordSize), uint8(3))
	schemes := fuzz.SchemeNames()
	models := fuzz.ModelNames()
	f.Fuzz(func(t *testing.T, raw []byte, cell uint8) {
		code, err := isa.DecodeProgram(raw)
		if err != nil {
			return
		}
		prog := &isa.Program{
			Name: "fuzz-symx",
			Code: code,
			Data: []isa.Segment{{Addr: attack.SecretAddr, Bytes: []byte{0}}},
		}
		scheme := schemes[int(cell)%len(schemes)]
		model := models[int(cell/16)%len(models)]
		cfg := fuzz.SymxConfig()
		// Arbitrary programs may loop or touch every page; keep the
		// budget small so the fuzzer iterates fast. Verify must return a
		// Result or an error — contract errors (validation, budget,
		// non-termination, arch leaks) are fine, panics are the bug.
		cfg.MaxSteps = 1 << 10
		cfg.MaxWork = 1 << 16
		res, err := symx.Verify(prog, scheme, model, cfg)
		if err != nil {
			return
		}
		if res.Verdict == symx.VerdictLeak && res.Witness == nil {
			t.Fatalf("%s/%s: leak verdict without witness", scheme, model)
		}
	})
}
