package spt

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Job identifies one cell of an evaluation grid: one simulation of one
// workload under one (scheme, attack model, broadcast width) point at a
// fixed instruction budget. The figure harnesses (RunFigure7, RunFigure8,
// RunFigure9, RunWidthSweep) enumerate their full grid as []Job up front,
// execute it on a worker pool, and then aggregate sequentially in grid
// order — which is what makes their output independent of EvalOptions.Jobs.
type Job struct {
	Workload string
	Scheme   Scheme
	Model    AttackModel
	// Width is passed through as Options.UntaintBroadcastWidth: 0 means the
	// default (3), negative means unbounded.
	Width  int
	Budget uint64
	// Skip fast-forwards the cell's first Skip instructions functionally
	// (Options.SkipInstructions); cells sharing a (workload, skip) prefix
	// share one checkpoint when the grid carries a store.
	Skip uint64
	// Sample enables sampled simulation for the cell (Options.Sample).
	Sample SampleSpec
}

// String names the job for errors and progress reporting.
func (j Job) String() string {
	width := fmt.Sprintf("w=%d", j.Width)
	if j.Width < 0 {
		width = "w=unbounded"
	}
	s := fmt.Sprintf("%s/%s/%s %s budget=%d", j.Workload, j.Scheme, j.Model, width, j.Budget)
	if j.Skip > 0 {
		s += fmt.Sprintf(" skip=%d", j.Skip)
	}
	if j.Sample.enabled() {
		s += fmt.Sprintf(" sample=%s", j.Sample)
	}
	return s
}

// options translates the grid cell into simulation options.
func (j Job) options() Options {
	return Options{
		Scheme:                j.Scheme,
		Model:                 j.Model,
		UntaintBroadcastWidth: j.Width,
		MaxInstructions:       j.Budget,
		SkipInstructions:      j.Skip,
		Sample:                j.Sample,
	}
}

// RunJobs executes an evaluation grid on a worker pool and returns the
// results keyed by Job. Execution honors opt.Jobs (worker count), opt.Context
// (cancellation between simulations; an individual simulation is not
// interruptible), and opt.Progress; opt.Budget, opt.Width, and opt.Workloads
// are ignored here — they only matter when a figure harness enumerates its
// grid. Duplicate jobs are simulated once. On error the first failure in
// grid order is returned and the partial results are discarded.
func RunJobs(jobs []Job, opt EvalOptions) (map[Job]*Result, error) {
	return runGrid(jobs, opt, jobRunner(jobs, opt))
}

// runJob simulates one grid cell.
func runJob(j Job) (*Result, error) { return Run(j.Workload, j.options()) }

// jobRunner returns the per-cell runner for a grid. When any cell
// fast-forwards, the cells share a checkpoint store (opt.Checkpoints, or an
// ephemeral in-memory one) so each distinct workload prefix executes once
// for the whole grid instead of once per cell. The harness context and
// per-cell window concurrency (opt.WindowJobs) flow into every cell's
// Options, so sampled cells can overlap their measured windows and a
// cancelled harness also aborts the simulation it is inside of.
func jobRunner(jobs []Job, opt EvalOptions) func(Job) (*Result, error) {
	store := opt.Checkpoints
	if store == nil {
		for _, j := range jobs {
			if j.Skip > 0 {
				store = NewCheckpointStore("")
				break
			}
		}
	}
	if store == nil && opt.WindowJobs == 0 && opt.Context == nil {
		return runJob
	}
	return func(j Job) (*Result, error) {
		o := j.options()
		o.Checkpoints = store
		o.Jobs = opt.WindowJobs
		o.Context = opt.Context
		return Run(j.Workload, o)
	}
}

// runGrid adapts the simulation grid to the generic worker pool.
func runGrid(jobs []Job, opt EvalOptions, run func(Job) (*Result, error)) (map[Job]*Result, error) {
	return runPool(jobs, poolConfig[Job]{
		Workers:  opt.Jobs,
		Context:  opt.Context,
		Progress: opt.Progress,
	}, run)
}

// poolConfig configures runPool. The zero value runs on one worker per
// core with no cancellation or progress reporting.
type poolConfig[J comparable] struct {
	// Workers is the concurrency; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Context cancels the pool between jobs (a running job is not
	// interrupted).
	Context context.Context
	// Progress, if non-nil, is called (serialized) after each completion.
	Progress func(done, total int, j J)
}

// safeRun converts a panicking job into a structured error naming the
// job, so one crashed cell fails the pool cleanly instead of killing the
// process from a worker goroutine.
func safeRun[J comparable, R any](j J, run func(J) (R, error)) (res R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("spt: job %v panicked: %v", j, r)
		}
	}()
	return run(j)
}

// runPool is the shared evaluation engine behind RunJobs and RunFuzz: it
// executes the deduplicated job list on cfg.Workers workers (1 reproduces
// a strictly sequential harness) and collects results into a map keyed by
// job. Only scheduling is concurrent — callers aggregate from the map in
// their own order, so rendered output is bit-identical for any worker
// count. On error the first failure in job order is returned and partial
// results are discarded.
func runPool[J comparable, R any](jobs []J, cfg poolConfig[J], run func(J) (R, error)) (map[J]R, error) {
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}

	// Deduplicate while preserving first-occurrence order; grids may join
	// one cell (e.g. the unsafe baseline) into several aggregates.
	order := make([]J, 0, len(jobs))
	seen := make(map[J]bool, len(jobs))
	for _, j := range jobs {
		if !seen[j] {
			seen[j] = true
			order = append(order, j)
		}
	}
	total := len(order)
	if total == 0 {
		return map[J]R{}, nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	results := make([]R, total)
	errs := make([]error, total)

	// Progress calls are serialized; done counts completions, not grid
	// positions, so it increases monotonically under any worker count.
	var progressMu sync.Mutex
	done := 0
	report := func(k int) {
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		cfg.Progress(done, total, order[k])
		progressMu.Unlock()
	}
	// Every executed job reports, failed or not: progress accounts for
	// exactly the simulations that ran, so a caller's final tick count
	// matches executed work even when the last job fails or panics.
	exec := func(k int) {
		results[k], errs[k] = safeRun(order[k], run)
		report(k)
	}

	if workers == 1 {
		for k := range order {
			if ctx.Err() != nil {
				return nil, context.Cause(ctx)
			}
			exec(k)
			if errs[k] != nil {
				return nil, errs[k]
			}
		}
	} else {
		gctx, cancel := context.WithCancel(ctx)
		defer cancel()
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for k := range idx {
					if gctx.Err() != nil {
						continue // drain the queue without simulating
					}
					exec(k)
					if errs[k] != nil {
						cancel() // first failure stops the feed; in-flight jobs finish
					}
				}
			}()
		}
	feed:
		for k := range order {
			if gctx.Err() != nil {
				break
			}
			select {
			case idx <- k:
			case <-gctx.Done():
				break feed
			}
		}
		close(idx)
		wg.Wait()
		// Report the earliest failure in job order, not in completion
		// order, so the error does not depend on scheduling.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// Cancellation surfaces its cause (context.Cause), so a caller that
		// cancels with a reason — spt-serve's DELETE handler, a CLI signal
		// context — sees that reason, not a bare context.Canceled.
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
	}

	out := make(map[J]R, total)
	for k, j := range order {
		out[j] = results[k]
	}
	return out, nil
}
