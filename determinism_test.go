// Determinism diff-tests for the parallel evaluation engine: every figure
// and sweep harness must produce deeply-equal rows/means and byte-identical
// text renderings whether the grid runs on one worker or eight. This is the
// guarantee that lets CI compare golden fixtures produced at any -jobs
// setting.
package spt_test

import (
	"reflect"
	"testing"

	"spt"
)

func determinismOpt(jobs int) spt.EvalOptions {
	return spt.EvalOptions{
		Budget:    8_000,
		Workloads: []string{"mcf", "gcc", "chacha20"},
		Jobs:      jobs,
	}
}

func TestFigure7Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	seq, err := spt.RunFigure7(spt.Futuristic, determinismOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := spt.RunFigure7(spt.Futuristic, determinismOpt(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Figure7 rows/means differ between Jobs:1 and Jobs:8\nseq: %+v\npar: %+v", seq, par)
	}
	if seq.Text() != par.Text() {
		t.Errorf("Figure7 text differs between Jobs:1 and Jobs:8\n--- Jobs:1\n%s\n--- Jobs:8\n%s", seq.Text(), par.Text())
	}
}

func TestFigure8Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	seq, err := spt.RunFigure8(determinismOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := spt.RunFigure8(determinismOpt(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Figure8 rows differ between Jobs:1 and Jobs:8")
	}
	if spt.Figure8Text(seq) != spt.Figure8Text(par) {
		t.Errorf("Figure8 text differs between Jobs:1 and Jobs:8\n--- Jobs:1\n%s\n--- Jobs:8\n%s",
			spt.Figure8Text(seq), spt.Figure8Text(par))
	}
}

func TestFigure9Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	seq, err := spt.RunFigure9(determinismOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := spt.RunFigure9(determinismOpt(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Figure9 rows differ between Jobs:1 and Jobs:8")
	}
	if spt.Figure9Text(seq) != spt.Figure9Text(par) {
		t.Errorf("Figure9 text differs between Jobs:1 and Jobs:8\n--- Jobs:1\n%s\n--- Jobs:8\n%s",
			spt.Figure9Text(seq), spt.Figure9Text(par))
	}
}

// TestStatsDeterminism is the acceptance check for the stats subsystem's
// grid determinism: the full per-run counter dumps (what spt-sim -stats-json
// prints) must be bit-identical whether the grid ran on one worker or eight,
// and so must the derived breakdown table.
func TestStatsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	grid := func(jobs int) map[spt.Job]*spt.Result {
		var jl []spt.Job
		for _, w := range []string{"mcf", "gcc", "chacha20"} {
			for _, s := range spt.StatsBreakdownSchemes() {
				jl = append(jl, spt.Job{Workload: w, Scheme: s, Model: spt.Futuristic, Width: 3, Budget: 8_000})
			}
		}
		res, err := spt.RunJobs(jl, spt.EvalOptions{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := grid(1), grid(8)
	for j, r := range seq {
		a, err := r.Stats.JSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := par[j].Stats.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%v: stats dump differs between Jobs:1 and Jobs:8", j)
		}
	}

	seqBD, err := spt.RunStatsBreakdown(spt.Futuristic, determinismOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	parBD, err := spt.RunStatsBreakdown(spt.Futuristic, determinismOpt(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqBD, parBD) {
		t.Errorf("stats breakdown rows differ between Jobs:1 and Jobs:8")
	}
	if seqBD.Text() != parBD.Text() {
		t.Errorf("stats breakdown text differs between Jobs:1 and Jobs:8\n--- Jobs:1\n%s\n--- Jobs:8\n%s",
			seqBD.Text(), parBD.Text())
	}
}

// TestCheckpointedDeterminism: a fast-forwarded grid (every cell skips a
// shared functional prefix) is bit-identical between Jobs:1 and Jobs:8 —
// including the full stats dumps — even though the workers race to restore
// from the shared checkpoint store.
func TestCheckpointedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	grid := func(jobs int) map[spt.Job]*spt.Result {
		var jl []spt.Job
		for _, w := range []string{"mcf", "gcc", "chacha20"} {
			for _, s := range []spt.Scheme{spt.UnsafeBaseline, spt.STT, spt.SPTFull} {
				jl = append(jl, spt.Job{Workload: w, Scheme: s, Model: spt.Futuristic, Width: 3, Budget: 6_000, Skip: 12_000})
			}
		}
		res, err := spt.RunJobs(jl, spt.EvalOptions{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := grid(1), grid(8)
	for j, r := range seq {
		a, err := r.Stats.JSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := par[j].Stats.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%v: checkpointed stats dump differs between Jobs:1 and Jobs:8", j)
		}
		got, want := *par[j], *r
		got.Host, want.Host = spt.HostStats{}, spt.HostStats{}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: checkpointed result differs between Jobs:1 and Jobs:8", j)
		}
	}
}

// TestSampledDeterminism: sampled grids are bit-identical at any worker
// count — the CPI samples, the estimate, and the last-window stats dump.
func TestSampledDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	sample := spt.SampleSpec{Intervals: 3, Warmup: 300, Detail: 500}
	grid := func(jobs int) map[spt.Job]*spt.Result {
		var jl []spt.Job
		for _, w := range []string{"mcf", "gcc", "chacha20"} {
			for _, s := range []spt.Scheme{spt.UnsafeBaseline, spt.SPTFull} {
				jl = append(jl, spt.Job{Workload: w, Scheme: s, Model: spt.Futuristic, Width: 3, Budget: 9_000, Sample: sample})
			}
		}
		res, err := spt.RunJobs(jl, spt.EvalOptions{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := grid(1), grid(8)
	for j, r := range seq {
		got, want := *par[j], *r
		got.Host, want.Host = spt.HostStats{}, spt.HostStats{}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: sampled result differs between Jobs:1 and Jobs:8\nseq: %+v\npar: %+v", j, want.Sampled, got.Sampled)
		}
	}
}

func TestWidthSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	widths := []int{1, 3, -1}
	seq, err := spt.RunWidthSweep(widths, determinismOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := spt.RunWidthSweep(widths, determinismOpt(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("width sweep rows differ between Jobs:1 and Jobs:8")
	}
	if spt.WidthSweepText(seq) != spt.WidthSweepText(par) {
		t.Errorf("width sweep text differs between Jobs:1 and Jobs:8\n--- Jobs:1\n%s\n--- Jobs:8\n%s",
			spt.WidthSweepText(seq), spt.WidthSweepText(par))
	}
}
