// Campaign-level tests for the differential leakage fuzzer: determinism
// across worker counts, and the paper's expected security results over a
// fixed-seed campaign (the same assertions the CI smoke job enforces).
package spt_test

import (
	"strings"
	"testing"

	"spt"
)

func fuzzOpt() spt.FuzzOptions {
	return spt.FuzzOptions{Seed: 1, Count: 24, Jobs: 8, Minimize: 2}
}

// TestFuzzCampaignDeterministic: the JSON report is byte-identical at
// jobs=1 and jobs=8.
func TestFuzzCampaignDeterministic(t *testing.T) {
	seq := fuzzOpt()
	seq.Jobs = 1
	par := fuzzOpt()
	par.Jobs = 8

	rs, err := spt.RunFuzz(seq)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := spt.RunFuzz(par)
	if err != nil {
		t.Fatal(err)
	}
	js, err := rs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jp, err := rp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if js != jp {
		t.Fatal("campaign report depends on the worker count")
	}
	if rs.Text() != rp.Text() {
		t.Fatal("campaign text rendering depends on the worker count")
	}
}

// TestFuzzCampaignExpectations: the fixed-seed campaign reproduces the
// paper's security results.
func TestFuzzCampaignExpectations(t *testing.T) {
	rep, err := spt.RunFuzz(fuzzOpt())
	if err != nil {
		t.Fatal(err)
	}

	if bad := rep.Unexpected(); len(bad) != 0 {
		for _, f := range bad {
			t.Errorf("unexpected leak: %s under %s/%s (%s)", f.Name, f.Scheme, f.Model, f.Divergence)
		}
	}

	cell := func(s spt.Scheme, m spt.AttackModel) spt.FuzzCellStats {
		for _, c := range rep.Cells {
			if c.Scheme == s && c.Model == m {
				return c
			}
		}
		t.Fatalf("cell %s/%s missing from report", s, m)
		return spt.FuzzCellStats{}
	}

	// The unsafe baseline leaks every generated gadget.
	for _, m := range spt.AttackModels() {
		c := cell(spt.UnsafeBaseline, m)
		if c.Leaks < 1 || c.Leaks != c.Cases {
			t.Errorf("unsafe/%s: %d/%d leaks, want all", m, c.Leaks, c.Cases)
		}
	}

	// STT leaks at least one non-speculatively-accessed secret (the
	// paper's motivating gap).
	sttNonSpec := 0
	for _, f := range rep.Findings {
		if f.Scheme == spt.STT && f.Class == "nonspec-secret" {
			sttNonSpec++
		}
	}
	if sttNonSpec == 0 {
		t.Error("no STT leak on a non-speculative secret found")
	}

	// Full SPT and the secure baseline are clean under the futuristic
	// model; under the Spectre model their only (expected) leaks are
	// memory speculation, which that threat model does not cover.
	for _, s := range []spt.Scheme{spt.SPTFull, spt.SecureBaseline} {
		if c := cell(s, spt.Futuristic); c.Leaks != 0 {
			t.Errorf("%s/futuristic: %d leaks, want 0", s, c.Leaks)
		}
		if c := cell(s, spt.Spectre); c.Unexpected != 0 {
			t.Errorf("%s/spectre: %d unexpected leaks, want 0", s, c.Unexpected)
		}
	}
	for _, f := range rep.Findings {
		if (f.Scheme == spt.SPTFull || f.Scheme == spt.SecureBaseline) && f.Primitive != "store-bypass" {
			t.Errorf("%s leak under %s/%s is not memory speculation", f.Name, f.Scheme, f.Model)
		}
	}

	// The minimizer produced sub-40-instruction reproducers that still
	// leak, in corpus format.
	if len(rep.Minimized) != 2 {
		t.Fatalf("got %d minimized reproducers, want 2", len(rep.Minimized))
	}
	for _, m := range rep.Minimized {
		if m.After >= m.Before {
			t.Errorf("%s: no shrink (%d -> %d)", m.Name, m.Before, m.After)
		}
		if m.After >= 40 {
			t.Errorf("%s: minimized to %d instructions, want < 40", m.Name, m.After)
		}
		if len(m.LeaksUnder) == 0 {
			t.Errorf("%s: minimized reproducer leaks nowhere", m.Name)
		}
		if !strings.Contains(m.Corpus, "; name: ") || !strings.Contains(m.Corpus, "leaks-under") {
			t.Errorf("%s: corpus rendering missing metadata header", m.Name)
		}
	}
}
