package spt

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"spt/internal/checkpoint"
	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/stats"
)

// SampleSpec configures SMARTS-style sampled simulation: the instruction
// budget is split into Intervals equal windows, each window's tail runs in
// detail (Warmup instructions to re-train detailed-only state, then Detail
// measured instructions), and everything else fast-forwards functionally
// with cache/TLB/predictor warming. Whole-run cycles are estimated as
// mean(measured CPI) x budget with a 95% confidence interval.
type SampleSpec struct {
	// Intervals is the number of measurement windows; 0 disables sampling.
	Intervals int
	// Warmup is the detailed instruction count run before each measured
	// window and excluded from it. Default: interval length / 12.
	Warmup uint64
	// Detail is the measured detailed instruction count per window.
	// Default: interval length / 6.
	Detail uint64
}

func (s SampleSpec) enabled() bool { return s.Intervals > 0 }

// normalized resolves defaults against the run's instruction budget and
// validates that the windows fit their intervals.
func (s SampleSpec) normalized(budget uint64) (SampleSpec, error) {
	if s.Intervals <= 0 {
		return s, fmt.Errorf("spt: Sample.Intervals must be positive")
	}
	interval := budget / uint64(s.Intervals)
	if interval == 0 {
		return s, fmt.Errorf("spt: %d sample intervals do not fit a budget of %d instructions", s.Intervals, budget)
	}
	if s.Detail == 0 {
		s.Detail = interval / 6
		if s.Detail == 0 {
			s.Detail = 1
		}
	}
	if s.Warmup == 0 {
		s.Warmup = interval / 12
	}
	if s.Warmup+s.Detail > interval {
		return s, fmt.Errorf("spt: sample window (%d warmup + %d detail) exceeds the interval length %d",
			s.Warmup, s.Detail, interval)
	}
	return s, nil
}

// String renders the spec compactly (the -sample CLI syntax).
func (s SampleSpec) String() string {
	return fmt.Sprintf("%d:%d:%d", s.Intervals, s.Warmup, s.Detail)
}

// ParseSampleSpec parses the -sample CLI syntax: "intervals" or
// "intervals:warmup:detail" (0 for warmup/detail keeps the budget-relative
// defaults). An empty string disables sampling.
func ParseSampleSpec(s string) (SampleSpec, error) {
	var spec SampleSpec
	if s == "" {
		return spec, nil
	}
	bad := func() (SampleSpec, error) {
		return SampleSpec{}, fmt.Errorf("spt: bad sample spec %q (want \"intervals\" or \"intervals:warmup:detail\")", s)
	}
	parts := strings.Split(s, ":")
	if len(parts) != 1 && len(parts) != 3 {
		return bad()
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil || n <= 0 {
		return bad()
	}
	spec.Intervals = n
	if len(parts) == 3 {
		if spec.Warmup, err = strconv.ParseUint(parts[1], 10, 64); err != nil {
			return bad()
		}
		if spec.Detail, err = strconv.ParseUint(parts[2], 10, 64); err != nil {
			return bad()
		}
	}
	return spec, nil
}

// SampleStats reports how a sampled run's estimate was formed.
type SampleStats struct {
	// Spec is the normalized specification the run used (defaults resolved).
	Spec SampleSpec
	// IntervalCPI is each measured window's cycles per instruction.
	IntervalCPI []float64
	// MeanCPI is the sample mean of IntervalCPI; Result.Cycles is
	// MeanCPI x the instruction budget, rounded.
	MeanCPI float64
	// CPIConfidence95 is the 95% confidence half-width on MeanCPI
	// (1.96 x stddev / sqrt(n)).
	CPIConfidence95 float64
	// DetailInstructions and DetailCycles total the measured windows;
	// WarmupInstructions totals detailed warmup (executed in detail but
	// excluded from the estimate).
	DetailInstructions uint64
	DetailCycles       uint64
	WarmupInstructions uint64
}

// runSampled is the sampled-simulation driver behind Run: one functional
// walker pass over the budget, pausing at each interval's window to boot a
// detailed core from a warm checkpoint. Fully deterministic: the walker,
// the checkpoints, and each detailed window depend only on the program and
// options.
func runSampled(p *isa.Program, o Options) (*Result, error) {
	spec, err := o.Sample.normalized(o.MaxInstructions)
	if err != nil {
		return nil, err
	}
	model, err := o.Model.internal()
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Model = model
	hcfg := mem.DefaultHierarchyConfig()
	interval := o.MaxInstructions / uint64(spec.Intervals)

	hostStart := time.Now()
	w := checkpoint.NewWalker(p, hcfg, true)
	samp := &SampleStats{Spec: spec, IntervalCPI: make([]float64, 0, spec.Intervals)}
	var last *pipeline.Core
	var lastTaint *TaintStats
	for i := 0; i < spec.Intervals; i++ {
		windowStart := uint64(i+1)*interval - (spec.Warmup + spec.Detail)
		if err := w.Advance(windowStart); err != nil {
			return nil, err
		}
		snap, hier, pred := w.Checkpoint().Materialize(hcfg)

		pol, sptPol, sttPol, err := o.policy()
		if err != nil {
			return nil, err
		}
		core, err := pipeline.BootFromSnapshot(cfg, p, hier, pol, snap, pred)
		if err != nil {
			return nil, err
		}
		if spec.Warmup > 0 {
			if err := core.Run(spec.Warmup, o.MaxCycles); err != nil {
				return nil, fmt.Errorf("spt: %s sample interval %d warmup: %w", p.Name, i, err)
			}
		}
		warmCycles, warmInsts := core.Stats.Cycles, core.Stats.Retired
		target := warmInsts + spec.Detail
		if err := core.Run(target, o.MaxCycles); err != nil {
			return nil, fmt.Errorf("spt: %s sample interval %d: %w", p.Name, i, err)
		}
		if !core.Finished() && core.Stats.Retired < target {
			return nil, fmt.Errorf("spt: %s sample interval %d under %s/%s: hit the cycle bound (%d cycles, %d retired)",
				p.Name, i, o.Scheme, o.Model, core.Stats.Cycles, core.Stats.Retired)
		}
		cycles := core.Stats.Cycles - warmCycles
		insts := core.Stats.Retired - warmInsts
		if insts == 0 {
			return nil, fmt.Errorf("spt: %s sample interval %d measured no instructions", p.Name, i)
		}
		samp.IntervalCPI = append(samp.IntervalCPI, float64(cycles)/float64(insts))
		samp.DetailCycles += cycles
		samp.DetailInstructions += insts
		samp.WarmupInstructions += warmInsts
		last = core
		lastTaint = taintResultStats(sptPol, sttPol)
	}
	hostSeconds := time.Since(hostStart).Seconds()

	mean, std := stats.MeanStd(samp.IntervalCPI)
	samp.MeanCPI = mean
	samp.CPIConfidence95 = 1.96 * std / math.Sqrt(float64(len(samp.IntervalCPI)))

	detailed := samp.DetailInstructions + samp.WarmupInstructions
	res := &Result{
		Workload:     p.Name,
		Scheme:       o.Scheme,
		Model:        o.Model,
		Cycles:       uint64(mean*float64(o.MaxInstructions) + 0.5),
		Instructions: o.MaxInstructions,
		// FastForwarded counts budget instructions never executed in detail.
		FastForwarded: o.MaxInstructions - detailed,
		Sampled:       samp,
		// Microarchitectural counters and the stats dump describe the LAST
		// measured window (plus its warmup) — a representative detailed
		// region, not whole-run totals, which a sampled run never observes.
		Pipeline:  last.Stats,
		Memory:    last.Hier.Stats,
		L1D:       last.Hier.L1D.Stats(),
		L2:        last.Hier.L2.Stats(),
		L3:        last.Hier.L3.Stats(),
		TLBMisses: last.Hier.DTLB.Stats.Misses,
		Predictor: last.Pred.Stats,
		Stats:     last.StatsRegistry().Dump(),
		Taint:     lastTaint,
	}
	res.Stats.Engine = EngineVersion
	res.Host.Seconds = hostSeconds
	if hostSeconds > 0 {
		res.Host.SimKIPS = float64(detailed) / hostSeconds / 1e3
		res.Host.EffectiveSimKIPS = float64(o.MaxInstructions) / hostSeconds / 1e3
		if detailed > 0 {
			res.Host.NsPerInstruction = hostSeconds * 1e9 / float64(detailed)
		}
	}
	return res, nil
}
