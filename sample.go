package spt

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spt/internal/checkpoint"
	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/stats"
)

// SampleSpec configures SMARTS-style sampled simulation: the instruction
// budget is split into Intervals equal windows, each window's tail runs in
// detail (Warmup instructions to re-train detailed-only state, then Detail
// measured instructions), and everything else fast-forwards functionally
// with cache/TLB/predictor warming. Whole-run cycles are estimated as
// mean(measured CPI) x budget with a 95% confidence interval.
type SampleSpec struct {
	// Intervals is the number of measurement windows; 0 disables sampling.
	Intervals int
	// Warmup is the detailed instruction count run before each measured
	// window and excluded from it. Default: interval length / 12.
	Warmup uint64
	// Detail is the measured detailed instruction count per window.
	// Default: interval length / 6.
	Detail uint64
}

func (s SampleSpec) enabled() bool { return s.Intervals > 0 }

// normalized resolves defaults against the run's instruction budget and
// validates that the windows fit their intervals.
func (s SampleSpec) normalized(budget uint64) (SampleSpec, error) {
	if s.Intervals <= 0 {
		return s, fmt.Errorf("spt: Sample.Intervals must be positive")
	}
	interval := budget / uint64(s.Intervals)
	if interval == 0 {
		return s, fmt.Errorf("spt: %d sample intervals do not fit a budget of %d instructions", s.Intervals, budget)
	}
	if s.Detail == 0 {
		s.Detail = interval / 6
		if s.Detail == 0 {
			s.Detail = 1
		}
	}
	if s.Warmup == 0 {
		s.Warmup = interval / 12
	}
	if s.Warmup+s.Detail > interval {
		return s, fmt.Errorf("spt: sample window (%d warmup + %d detail) exceeds the interval length %d",
			s.Warmup, s.Detail, interval)
	}
	return s, nil
}

// String renders the spec compactly (the -sample CLI syntax).
func (s SampleSpec) String() string {
	return fmt.Sprintf("%d:%d:%d", s.Intervals, s.Warmup, s.Detail)
}

// ParseSampleSpec parses the -sample CLI syntax: "intervals" or
// "intervals:warmup:detail" (0 for warmup/detail keeps the budget-relative
// defaults). An empty string disables sampling.
func ParseSampleSpec(s string) (SampleSpec, error) {
	var spec SampleSpec
	if s == "" {
		return spec, nil
	}
	bad := func() (SampleSpec, error) {
		return SampleSpec{}, fmt.Errorf("spt: bad sample spec %q (want \"intervals\" or \"intervals:warmup:detail\")", s)
	}
	parts := strings.Split(s, ":")
	if len(parts) != 1 && len(parts) != 3 {
		return bad()
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil || n <= 0 {
		return bad()
	}
	spec.Intervals = n
	if len(parts) == 3 {
		if spec.Warmup, err = strconv.ParseUint(parts[1], 10, 64); err != nil {
			return bad()
		}
		if spec.Detail, err = strconv.ParseUint(parts[2], 10, 64); err != nil {
			return bad()
		}
	}
	return spec, nil
}

// SampleStats reports how a sampled run's estimate was formed.
type SampleStats struct {
	// Spec is the normalized specification the run used (defaults resolved).
	Spec SampleSpec
	// IntervalCPI is each measured window's cycles per instruction.
	IntervalCPI []float64
	// MeanCPI is the sample mean of IntervalCPI; Result.Cycles is
	// MeanCPI x the instruction budget, rounded.
	MeanCPI float64
	// CPIConfidence95 is the 95% confidence half-width on MeanCPI
	// (1.96 x stddev / sqrt(n)).
	CPIConfidence95 float64
	// DetailInstructions and DetailCycles total the measured windows;
	// WarmupInstructions totals detailed warmup (executed in detail but
	// excluded from the estimate).
	DetailInstructions uint64
	DetailCycles       uint64
	WarmupInstructions uint64
}

// windowRun is one measured window's contribution to the sampled estimate.
// cycles/insts cover the measured region only; warmInsts is the detailed
// warmup executed before it. seconds is the window's own host CPU time
// (checkpoint materialization through the last detailed cycle), which
// aggregates into HostStats.CPUSeconds. core and taint are retained only
// for the run's last window, which supplies the representative
// microarchitectural counters.
type windowRun struct {
	cycles    uint64
	insts     uint64
	warmInsts uint64
	seconds   float64
	core      *pipeline.Core
	taint     *TaintStats
}

// runWindow boots a detailed core from cp and executes sample window idx
// (warmup then measured detail). It touches nothing shared: the checkpoint
// hands out copy-on-write snapshots and cloned warm state, and the policy
// is built fresh per window, so any number of windows run concurrently.
// The computation depends only on (cp, options, idx) — never on which
// worker runs it or when — which is what keeps sampled results
// bit-identical for every Options.Jobs value.
func runWindow(ctx context.Context, p *isa.Program, o Options, cfg pipeline.Config,
	hcfg mem.HierarchyConfig, spec SampleSpec, idx int, cp *checkpoint.Checkpoint) (*windowRun, error) {
	start := time.Now()
	snap, hier, pred := cp.Materialize(hcfg)
	pol, sptPol, sttPol, err := o.policy()
	if err != nil {
		return nil, err
	}
	core, err := pipeline.BootFromSnapshot(cfg, p, hier, pol, snap, pred)
	if err != nil {
		return nil, err
	}
	if spec.Warmup > 0 {
		if err := core.RunCtx(ctx, spec.Warmup, o.MaxCycles); err != nil {
			return nil, fmt.Errorf("spt: %s sample interval %d warmup: %w", p.Name, idx, err)
		}
	}
	warmCycles, warmInsts := core.Stats.Cycles, core.Stats.Retired
	target := warmInsts + spec.Detail
	if err := core.RunCtx(ctx, target, o.MaxCycles); err != nil {
		return nil, fmt.Errorf("spt: %s sample interval %d: %w", p.Name, idx, err)
	}
	if !core.Finished() && core.Stats.Retired < target {
		return nil, fmt.Errorf("spt: %s sample interval %d under %s/%s: hit the cycle bound (%d cycles, %d retired)",
			p.Name, idx, o.Scheme, o.Model, core.Stats.Cycles, core.Stats.Retired)
	}
	cycles := core.Stats.Cycles - warmCycles
	insts := core.Stats.Retired - warmInsts
	if insts == 0 {
		return nil, fmt.Errorf("spt: %s sample interval %d measured no instructions", p.Name, idx)
	}
	return &windowRun{
		cycles:    cycles,
		insts:     insts,
		warmInsts: warmInsts,
		seconds:   time.Since(start).Seconds(),
		core:      core,
		taint:     taintResultStats(sptPol, sttPol),
	}, nil
}

// runSampled is the sampled-simulation driver behind Run: one functional
// walker pass over the budget, checkpointing at each interval's window and
// booting a detailed core from the warm checkpoint. With Options.Jobs > 1
// the walker becomes a streaming producer and up to Jobs windows simulate
// concurrently, each on its own copy-on-write snapshot and cloned warm
// state. Fully deterministic at any Jobs value: the walker, the
// checkpoints, and each detailed window depend only on the program and
// options, and aggregation always runs in window-index order.
func runSampled(p *isa.Program, o Options) (*Result, error) {
	spec, err := o.Sample.normalized(o.MaxInstructions)
	if err != nil {
		return nil, err
	}
	model, err := o.Model.internal()
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Model = model
	hcfg := mem.DefaultHierarchyConfig()
	interval := o.MaxInstructions / uint64(spec.Intervals)
	windowStart := func(i int) uint64 {
		return uint64(i+1)*interval - (spec.Warmup + spec.Detail)
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := o.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > spec.Intervals {
		jobs = spec.Intervals
	}

	hostStart := time.Now()
	w := checkpoint.NewWalker(p, hcfg, true)
	results := make([]*windowRun, spec.Intervals)
	var walkSeconds float64

	if jobs == 1 {
		// Serial: produce and consume each window in turn. This is the
		// reference order; the concurrent path below computes the exact same
		// windows from the exact same checkpoints.
		for i := 0; i < spec.Intervals; i++ {
			if ctx.Err() != nil {
				return nil, context.Cause(ctx)
			}
			t0 := time.Now()
			if err := w.Advance(windowStart(i)); err != nil {
				return nil, err
			}
			cp := w.Checkpoint()
			walkSeconds += time.Since(t0).Seconds()
			r, err := runWindow(ctx, p, o, cfg, hcfg, spec, i, cp)
			if err != nil {
				return nil, err
			}
			if i != spec.Intervals-1 {
				r.core = nil // retain only the last window's core
			}
			results[i] = r
		}
	} else {
		// Concurrent: this goroutine is the producer — it walks the program
		// serially (the walker is inherently sequential) and feeds each
		// window's checkpoint to a worker pool. Workers never share state:
		// every window gets its own CoW snapshot and warm-state clones.
		//
		// Error semantics mirror the serial path deterministically: windows
		// are produced in index order and every produced window runs to
		// completion even after a failure elsewhere (an error only stops
		// further production), so the earliest failure by window index is
		// exactly the error the serial loop would have returned. Parent
		// context cancellation is the exception — it aborts in-flight
		// windows promptly (RunCtx polls) and wins error selection.
		type windowJob struct {
			idx int
			cp  *checkpoint.Checkpoint
		}
		feed := make(chan windowJob)
		errs := make([]error, spec.Intervals)
		var stop atomic.Bool
		var wg sync.WaitGroup
		wg.Add(jobs)
		for k := 0; k < jobs; k++ {
			go func() {
				defer wg.Done()
				for jb := range feed {
					r, err := runWindow(ctx, p, o, cfg, hcfg, spec, jb.idx, jb.cp)
					if err != nil {
						errs[jb.idx] = err
						stop.Store(true)
						continue
					}
					if jb.idx != spec.Intervals-1 {
						r.core = nil
					}
					results[jb.idx] = r
				}
			}()
		}
		var prodErr error
		for i := 0; i < spec.Intervals && !stop.Load() && ctx.Err() == nil; i++ {
			t0 := time.Now()
			if err := w.Advance(windowStart(i)); err != nil {
				prodErr = err
				break
			}
			cp := w.Checkpoint()
			walkSeconds += time.Since(t0).Seconds()
			feed <- windowJob{idx: i, cp: cp}
		}
		close(feed)
		wg.Wait()
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		// Earliest window failure in index order; every window preceding a
		// walker failure has already run, so window errors outrank prodErr.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		if prodErr != nil {
			return nil, prodErr
		}
	}

	// Aggregate in window-index order. The per-interval CPI sequence (and
	// therefore every derived statistic) is independent of scheduling.
	samp := &SampleStats{Spec: spec, IntervalCPI: make([]float64, 0, spec.Intervals)}
	var cpuSeconds float64
	for _, r := range results {
		samp.IntervalCPI = append(samp.IntervalCPI, float64(r.cycles)/float64(r.insts))
		samp.DetailCycles += r.cycles
		samp.DetailInstructions += r.insts
		samp.WarmupInstructions += r.warmInsts
		cpuSeconds += r.seconds
	}
	lastRun := results[spec.Intervals-1]
	last := lastRun.core
	hostSeconds := time.Since(hostStart).Seconds()
	cpuSeconds += walkSeconds

	mean, std := stats.MeanStd(samp.IntervalCPI)
	samp.MeanCPI = mean
	samp.CPIConfidence95 = 1.96 * std / math.Sqrt(float64(len(samp.IntervalCPI)))

	detailed := samp.DetailInstructions + samp.WarmupInstructions
	res := &Result{
		Workload:     p.Name,
		Scheme:       o.Scheme,
		Model:        o.Model,
		Cycles:       uint64(mean*float64(o.MaxInstructions) + 0.5),
		Instructions: o.MaxInstructions,
		// FastForwarded counts budget instructions never executed in detail.
		FastForwarded: o.MaxInstructions - detailed,
		Sampled:       samp,
		// Microarchitectural counters and the stats dump describe the LAST
		// measured window (plus its warmup) — a representative detailed
		// region, not whole-run totals, which a sampled run never observes.
		Pipeline:  last.Stats,
		Memory:    last.Hier.Stats,
		L1D:       last.Hier.L1D.Stats(),
		L2:        last.Hier.L2.Stats(),
		L3:        last.Hier.L3.Stats(),
		TLBMisses: last.Hier.DTLB.Stats.Misses,
		Predictor: last.Pred.Stats,
		Stats:     last.StatsRegistry().Dump(),
		Taint:     lastRun.taint,
	}
	res.Stats.Engine = EngineVersion
	// Seconds is wall clock for the whole sampled run; CPUSeconds aggregates
	// the walker pass plus every window's own simulation time, so the two
	// split apart exactly when windows overlap (their ratio is the effective
	// parallel speedup).
	res.Host.Seconds = hostSeconds
	res.Host.CPUSeconds = cpuSeconds
	if cpuSeconds > 0 && detailed > 0 {
		res.Host.SimKIPS = float64(detailed) / cpuSeconds / 1e3
		res.Host.NsPerInstruction = cpuSeconds * 1e9 / float64(detailed)
	}
	if hostSeconds > 0 {
		res.Host.EffectiveSimKIPS = float64(o.MaxInstructions) / hostSeconds / 1e3
	}
	return res, nil
}
