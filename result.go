package spt

import (
	"fmt"
	"sort"
	"strings"

	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/predictor"
	"spt/internal/stats"
	"spt/internal/taint"
)

// Result holds everything a simulation run measured.
type Result struct {
	Workload     string
	Scheme       Scheme
	Model        AttackModel
	Cycles       uint64
	Instructions uint64
	// FastForwarded counts instructions executed functionally (emulator
	// fast-forward) rather than in detail: the skip prefix for checkpointed
	// runs, or everything outside the detailed windows for sampled runs.
	FastForwarded uint64

	// Sampled is non-nil for sampled runs (Options.Sample); it reports the
	// per-interval CPI samples and the confidence interval behind the
	// Cycles estimate.
	Sampled *SampleStats

	Pipeline  pipeline.Stats
	Memory    mem.HierarchyStats
	L1D       mem.CacheStats
	L2        mem.CacheStats
	L3        mem.CacheStats
	TLBMisses uint64
	Predictor predictor.UnitStats

	// Taint is non-nil for protected schemes.
	Taint *TaintStats

	// Stats is the full gem5-style counter dump: every registered scalar,
	// distribution, and formula in registration order (see internal/stats).
	// It contains only simulation-derived values — host-dependent
	// measurements are never registered — so it is deterministic and safe
	// for golden comparisons.
	Stats *stats.Dump

	// Host measures the simulator's own throughput for the measured
	// (post-warmup) window. Host fields depend on the machine running the
	// simulation, so they are excluded from StatsText and from every golden
	// comparison.
	Host HostStats
}

// HostStats reports simulator throughput: wall-clock cost of the run on
// the host, not a property of the simulated machine.
type HostStats struct {
	// Seconds is the host wall-clock time of the run (for sampled runs, the
	// whole sampled pass; otherwise the measured window).
	Seconds float64
	// CPUSeconds is the aggregate host CPU time the run consumed across
	// every concurrent worker: the functional pass plus the sum of each
	// detailed region's own time. For serial runs CPUSeconds ≈ Seconds
	// (plus the fast-forward pass, which Seconds excludes for checkpointed
	// runs); for parallel-window sampled runs CPUSeconds exceeds Seconds,
	// and their ratio is the effective parallel speedup.
	CPUSeconds float64
	// SimKIPS is simulated (retired) kilo-instructions per host CPU second
	// of detailed simulation — per-core simulator throughput, independent
	// of how many windows ran concurrently.
	SimKIPS float64
	// NsPerInstruction is host nanoseconds per simulated instruction.
	NsPerInstruction float64
	// EffectiveSimKIPS counts fast-forwarded instructions too: total
	// instructions covered (functional + detailed) per wall-clock second,
	// including the functional pass's own time. This is the
	// methodology-level throughput — it improves both with fast-forwarding
	// and with parallel windows.
	EffectiveSimKIPS float64
}

// TaintStats summarizes the taint engine's activity.
type TaintStats struct {
	// Events maps untaint-event kind (see EventNames) to count.
	Events map[string]uint64
	// UntaintHist[i] counts untainting cycles with i+1 register untaints
	// (last bucket: 10 or more) — paper Figure 9.
	UntaintHist       [10]uint64
	UntaintingCycles  uint64
	BroadcastDeferred uint64
	MemUntaints       uint64
	// TaintedAtRename counts instructions whose output was tainted at
	// rename; STLPublicHits counts store-to-load forwards permitted openly
	// (the STLPublic fast path).
	TaintedAtRename uint64
	STLPublicHits   uint64
}

// EventName returns the stable name of untaint-event kind k.
func EventName(k int) string { return taint.EventKind(k).String() }

// EventNames lists the untaint-event kinds in breakdown order (Figure 8).
func EventNames() []string {
	out := make([]string, taint.NumEvents)
	for k := 0; k < int(taint.NumEvents); k++ {
		out[k] = EventName(k)
	}
	return out
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// CPI returns cycles per retired instruction (the unit the paper's
// Figure 7 normalizes: execution time for a fixed instruction budget).
func (r *Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// NormalizedTo returns this run's execution time relative to a baseline
// run of the same workload (Figure 7's y-axis).
func (r *Result) NormalizedTo(base *Result) float64 {
	if base == nil || base.CPI() == 0 {
		return 0
	}
	return r.CPI() / base.CPI()
}

// StatsText renders the run in the artifact's stats.txt style: one counter
// per line with a short description.
func (r *Result) StatsText() string {
	var b strings.Builder
	w := func(name string, v interface{}, desc string) {
		fmt.Fprintf(&b, "%-34s %14v  # %s\n", name, v, desc)
	}
	fmt.Fprintf(&b, "---------- Begin Simulation Statistics ----------\n")
	fmt.Fprintf(&b, "# workload=%s scheme=%s model=%s\n", r.Workload, r.Scheme, r.Model)
	w("numCycles", r.Cycles, "total cycles simulated")
	w("committedInsts", r.Instructions, "instructions retired")
	w("ipc", fmt.Sprintf("%.4f", r.IPC()), "retired instructions per cycle")
	w("fetchedInsts", r.Pipeline.Fetched, "instructions fetched (incl. wrong path)")
	w("branchResolutions", r.Pipeline.BranchResolutions, "control-flow resolutions")
	w("branchMispredicts", r.Pipeline.BranchMispredicts, "mispredicted control flow")
	w("squashes", r.Pipeline.Squashes, "pipeline squashes")
	w("squashedInsts", r.Pipeline.SquashedInstrs, "instructions squashed")
	w("memOrderViolations", r.Pipeline.MemViolations, "memory-dependence squashes")
	w("stlForwards", r.Pipeline.STLForwards, "store-to-load forwards")
	w("transmitterDelayCycles", r.Pipeline.TransmitterDelays, "load/store cycles delayed by protection")
	w("resolutionDelayCycles", r.Pipeline.ResolutionDelays, "branch-resolution cycles delayed by protection")
	w("l1dAccesses", r.L1D.Accesses, "L1D accesses")
	w("l1dMisses", r.L1D.Misses, "L1D misses")
	w("l2Misses", r.L2.Misses, "L2 misses")
	w("l3Misses", r.L3.Misses, "L3 misses")
	w("dramAccesses", r.Memory.DRAMAccesses, "DRAM accesses")
	w("dtlbMisses", r.TLBMisses, "data TLB misses")
	if r.Taint != nil {
		var total uint64
		names := make([]string, 0, len(r.Taint.Events))
		for k := range r.Taint.Events {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			total += r.Taint.Events[k]
			w("untaint."+k, r.Taint.Events[k], "register untaint events ("+k+")")
		}
		w("untaint.total", total, "all register untaint events")
		w("untaint.cycles", r.Taint.UntaintingCycles, "cycles with >=1 untaint")
		w("untaint.deferred", r.Taint.BroadcastDeferred, "untaints deferred by broadcast width")
		w("untaint.memBytesOps", r.Taint.MemUntaints, "shadow L1/memory untaint operations")
	}
	fmt.Fprintf(&b, "---------- End Simulation Statistics   ----------\n")
	return b.String()
}
