// Acceptance tests for checkpointed fast-forward and sampled simulation:
// prefix-executed-once accounting, store-vs-direct equivalence, and the
// sampled estimator's accuracy against a full detailed run.
package spt_test

import (
	"math"
	"reflect"
	"testing"

	"spt"
)

// TestCheckpointedGridRunsPrefixOnce: a schemes x models grid over a shared
// store executes each workload's functional prefix exactly once — the
// Builds counter is the proof — and every cell still simulates its own
// detailed region.
func TestCheckpointedGridRunsPrefixOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	workloadsList := []string{"mcf", "gcc"}
	store := spt.NewCheckpointStore("")
	var jobs []spt.Job
	for _, w := range workloadsList {
		for _, s := range []spt.Scheme{spt.UnsafeBaseline, spt.STT, spt.SPTFull} {
			for _, m := range spt.AttackModels() {
				jobs = append(jobs, spt.Job{Workload: w, Scheme: s, Model: m, Width: 3, Budget: 5_000, Skip: 10_000})
			}
		}
	}
	res, err := spt.RunJobs(jobs, spt.EvalOptions{Jobs: 8, Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if int(st.Builds) != len(workloadsList) {
		t.Errorf("functional passes = %d, want %d (one per workload prefix, not per cell)", st.Builds, len(workloadsList))
	}
	if want := uint64(len(jobs) - len(workloadsList)); st.MemHits != want {
		t.Errorf("memory hits = %d, want %d", st.MemHits, want)
	}
	for _, j := range jobs {
		r := res[j]
		if r.FastForwarded != j.Skip {
			t.Errorf("%v: FastForwarded = %d, want %d", j, r.FastForwarded, j.Skip)
		}
		if r.Instructions == 0 || r.Cycles == 0 {
			t.Errorf("%v: empty detailed region (%d insts, %d cycles)", j, r.Instructions, r.Cycles)
		}
	}
}

// TestCheckpointStoreDoesNotChangeResults: the same checkpointed run is
// bit-identical whether checkpoints come from a shared store or are built
// directly, and repeatable run to run.
func TestCheckpointStoreDoesNotChangeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opt := spt.Options{Scheme: spt.SPTFull, MaxInstructions: 6_000, SkipInstructions: 12_000}
	direct, err := spt.Run("gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	stored := opt
	stored.Checkpoints = spt.NewCheckpointStore(t.TempDir())
	viaStore, err := spt.Run("gcc", stored)
	if err != nil {
		t.Fatal(err)
	}
	// Same store again: now served from memory, still identical.
	again, err := spt.Run("gcc", stored)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*spt.Result{viaStore, again} {
		got, want := *r, *direct
		got.Host, want.Host = spt.HostStats{}, spt.HostStats{}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("checkpoint store changed simulation results")
		}
	}
}

// TestSampledAccuracy is the estimator acceptance: on gcc, sampling with
// at most one third of the budget simulated in detail estimates the full
// detailed run's IPC within 5%.
func TestSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	const budget = 60_000
	spec := spt.SampleSpec{Intervals: 6, Warmup: 1_500, Detail: 1_500}
	full, err := spt.Run("gcc", spt.Options{Scheme: spt.SPTFull, MaxInstructions: budget})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := spt.Run("gcc", spt.Options{Scheme: spt.SPTFull, MaxInstructions: budget, Sample: spec})
	if err != nil {
		t.Fatal(err)
	}
	detailed := sampled.Sampled.DetailInstructions + sampled.Sampled.WarmupInstructions
	if detailed > budget/3 {
		t.Fatalf("sampled run simulated %d instructions in detail, budget/3 = %d", detailed, budget/3)
	}
	if sampled.FastForwarded+detailed != budget {
		t.Errorf("FastForwarded %d + detailed %d != budget %d", sampled.FastForwarded, detailed, budget)
	}
	relErr := math.Abs(sampled.IPC()-full.IPC()) / full.IPC()
	t.Logf("full IPC %.4f, sampled IPC %.4f (+-%.4f CPI at 95%%), relative error %.2f%%, detail fraction %.0f%%",
		full.IPC(), sampled.IPC(), sampled.Sampled.CPIConfidence95, 100*relErr, 100*float64(detailed)/budget)
	if relErr > 0.05 {
		t.Errorf("sampled IPC %.4f vs full %.4f: relative error %.1f%% exceeds 5%%",
			sampled.IPC(), full.IPC(), 100*relErr)
	}
	if got := len(sampled.Sampled.IntervalCPI); got != spec.Intervals {
		t.Errorf("measured %d intervals, want %d", got, spec.Intervals)
	}
}

// TestSampleSpecValidation pins the option-combination errors.
func TestSampleSpecValidation(t *testing.T) {
	bad := []spt.Options{
		{Sample: spt.SampleSpec{Intervals: 2}, SkipInstructions: 100},                            // mutually exclusive
		{Sample: spt.SampleSpec{Intervals: 2}, WarmupInstructions: 100},                          // sampled has its own warmup
		{Sample: spt.SampleSpec{Intervals: 4, Warmup: 900, Detail: 200}, MaxInstructions: 4_000}, // window > interval
	}
	for i, o := range bad {
		if _, err := spt.Run("gcc", o); err == nil {
			t.Errorf("case %d: invalid sample options accepted", i)
		}
	}
}
