//go:build race

package emu

// raceEnabled reports whether the race detector is active. The block
// dispatch allocation test skips under -race: detector instrumentation
// allocates shadow state on code paths that are allocation-free in normal
// builds, so AllocsPerRun would report false positives.
const raceEnabled = true
