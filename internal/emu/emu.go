// Package emu is a functional (non-pipelined) µRISC emulator. It defines
// the architectural semantics of the ISA and serves as the golden model the
// out-of-order pipeline is property-tested against: after running the same
// program, the pipeline's retired architectural state must match the
// emulator's exactly.
package emu

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"

	"spt/internal/isa"
)

// Memory is a sparse byte-addressable memory backed by fixed-size pages.
// Small direct-mapped caches in front of the page map serve the common
// case — repeated accesses to a few hot pages — without a map lookup per
// byte. Reads and writes use separate caches: a snapshot freezes every
// page copy-on-write, and the write cache's invariant is that it only
// holds writable (unfrozen) pages, so the write fast path never needs a
// frozen check. Any operation that replaces pages behind the caches'
// backs (Snapshot, restore) must call Invalidate.
type Memory struct {
	pages map[uint64]*page
	ctags [pcacheSlots]uint64 // read cache: page number + 1; 0 marks empty
	cptrs [pcacheSlots]*page
	wtags [pcacheSlots]uint64 // write cache: only unfrozen pages
	wptrs [pcacheSlots]*page
	// frozen marks pages aliased by at least one live Snapshot. A write to
	// a frozen page clones it first (copy-on-write), so snapshot contents
	// are immutable. nil until the first snapshot touches this memory.
	frozen map[uint64]struct{}
	// epoch is a globally unique generation stamp validating the block
	// engine's per-µop translation slots (block.go). It advances — to a
	// fresh value no Memory has ever used — whenever a cached page pointer
	// could go stale: Invalidate (snapshot, restore) and copy-on-write
	// clones. A slot whose epoch matches is guaranteed to point at the
	// live page of this memory.
	epoch uint64
}

// memEpochCtr issues globally unique memory epochs. Atomic because
// parallel sampled windows run emulators on concurrent goroutines.
var memEpochCtr atomic.Uint64

func newMemEpoch() uint64 { return memEpochCtr.Add(1) }

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	// pcacheSlots is the number of direct-mapped page-cache slots (a power
	// of two). 256 slots cover 1 MiB of hot footprint — enough that the
	// pointer-chasing kernels (mcf, x264, lbm) mostly stay out of the page
	// map.
	pcacheSlots = 256
)

type page [pageSize]byte

// NewMemory returns an empty memory. All bytes read as zero.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page), epoch: newMemEpoch()}
}

// lookup returns the page holding page number pn, or nil if it has never
// been written, going through the direct-mapped cache.
func (m *Memory) lookup(pn uint64) *page {
	i := pn & (pcacheSlots - 1)
	if m.ctags[i] == pn+1 {
		return m.cptrs[i]
	}
	p := m.pages[pn]
	if p != nil {
		m.ctags[i] = pn + 1
		m.cptrs[i] = p
	}
	return p
}

// ensure returns a writable page holding pn, allocating it on first touch
// and breaking copy-on-write sharing if the page is frozen by a snapshot.
func (m *Memory) ensure(pn uint64) *page {
	i := pn & (pcacheSlots - 1)
	if m.wtags[i] == pn+1 {
		return m.wptrs[i]
	}
	p := m.pages[pn]
	if p == nil {
		p = new(page)
		m.pages[pn] = p
	} else if m.frozen != nil {
		if _, f := m.frozen[pn]; f {
			cp := new(page)
			*cp = *p
			m.pages[pn] = cp
			delete(m.frozen, pn)
			p = cp
			// The old page pointer is now stale for writes and no longer
			// the live copy for reads: expire every translation slot.
			m.epoch = newMemEpoch()
		}
	}
	m.wtags[i] = pn + 1
	m.wptrs[i] = p
	// Keep the read cache coherent: after a copy-on-write clone the old
	// pointer would serve stale data to lookup.
	m.ctags[i] = pn + 1
	m.cptrs[i] = p
	return p
}

// Invalidate drops every cached page pointer, forcing the next access of
// each page through the page map. It must be called whenever the page map
// is mutated behind the caches' backs — Snapshot (which freezes pages) and
// snapshot restore (which installs a new page map) do so internally.
// Without it a cached pointer could alias a page that is no longer the
// live copy.
func (m *Memory) Invalidate() {
	m.ctags = [pcacheSlots]uint64{}
	m.cptrs = [pcacheSlots]*page{}
	m.wtags = [pcacheSlots]uint64{}
	m.wptrs = [pcacheSlots]*page{}
	m.epoch = newMemEpoch()
}

// LoadSegments copies a program's initial data image into memory.
func (m *Memory) LoadSegments(segs []isa.Segment) {
	for _, s := range segs {
		for i, b := range s.Bytes {
			m.SetByte(s.Addr+uint64(i), b)
		}
	}
}

// ByteAt reads one byte.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.lookup(addr >> pageShift)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// SetByte writes one byte.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.ensure(addr >> pageShift)[addr&(pageSize-1)] = b
}

// Read reads size bytes little-endian, zero-extended to 64 bits.
func (m *Memory) Read(addr uint64, size int) uint64 {
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		// Fast path: the access stays within one page. The common widths
		// load whole words instead of assembling bytes.
		p := m.lookup(addr >> pageShift)
		if p == nil {
			return 0
		}
		switch size {
		case 8:
			return binary.LittleEndian.Uint64(p[off : off+8])
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off : off+4]))
		case 1:
			return uint64(p[off])
		}
		var v uint64
		for i := 0; i < size; i++ {
			v |= uint64(p[off+uint64(i)]) << (8 * i)
		}
		return v
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write writes the low size bytes of v little-endian.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		p := m.ensure(addr >> pageShift)
		switch size {
		case 8:
			binary.LittleEndian.PutUint64(p[off:off+8], v)
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:off+4], uint32(v))
			return
		case 1:
			p[off] = byte(v)
			return
		}
		for i := 0; i < size; i++ {
			p[off+uint64(i)] = byte(v >> (8 * i))
		}
		return
	}
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// Footprint returns the number of allocated pages (for tests and stats).
func (m *Memory) Footprint() int { return len(m.pages) }

// State is the complete architectural state of a µRISC machine.
type State struct {
	PC     uint64
	Regs   [isa.NumRegs]uint64
	Mem    *Memory
	Halted bool
	// Retired counts executed (retired) instructions.
	Retired uint64
}

// Emulator executes µRISC programs. Step interprets one instruction at a
// time from the program text (the golden reference path); Run and
// RunHooked execute through the predecoded basic-block cache (block.go),
// which is semantically identical but several times faster. The two paths
// can be mixed freely on one emulator.
type Emulator struct {
	Prog  *isa.Program
	State State

	// blocks caches predecoded superblocks by entry PC (block.go). It is
	// a decode cache over the immutable code section — the only
	// architectural pointers it holds (per-µop translation slots) are
	// epoch-guarded — so snapshot/restore never touches it and it
	// survives Restore. SetCode/InvalidateCode drop stale entries.
	blocks []*block

	// warmBuf is RunWarm's reusable event buffer (warm.go).
	warmBuf []WarmEvent
}

// New creates an emulator with the program's data image loaded and the PC
// at the entry point.
func New(p *isa.Program) *Emulator {
	mem := NewMemory()
	mem.LoadSegments(p.Data)
	return &Emulator{
		Prog:  p,
		State: State{PC: p.Entry, Mem: mem},
	}
}

// ErrPCOutOfRange is returned when execution falls off the end of the code.
type ErrPCOutOfRange struct{ PC uint64 }

func (e ErrPCOutOfRange) Error() string {
	return fmt.Sprintf("emu: pc %d out of range", e.PC)
}

// Step executes one instruction. It returns an error if the PC is invalid.
// Stepping a halted machine is a no-op.
func (e *Emulator) Step() error {
	s := &e.State
	if s.Halted {
		return nil
	}
	if s.PC >= uint64(len(e.Prog.Code)) {
		return ErrPCOutOfRange{s.PC}
	}
	ins := e.Prog.Code[s.PC]
	nextPC := s.PC + 1

	reg := func(r isa.Reg) uint64 { return s.Regs[r] }
	setReg := func(r isa.Reg, v uint64) {
		if r != isa.Zero {
			s.Regs[r] = v
		}
	}

	switch ins.Op {
	case isa.NOP:
	case isa.HALT:
		s.Halted = true
	case isa.MOVI:
		setReg(ins.Rd, uint64(ins.Imm))
	case isa.MOV:
		setReg(ins.Rd, reg(ins.Rs1))
	case isa.LD, isa.LDW, isa.LDB:
		addr := reg(ins.Rs1) + uint64(ins.Imm)
		setReg(ins.Rd, s.Mem.Read(addr, ins.MemSize()))
	case isa.ST, isa.STW, isa.STB:
		addr := reg(ins.Rs1) + uint64(ins.Imm)
		s.Mem.Write(addr, ins.MemSize(), reg(ins.Rs2))
	case isa.JAL:
		setReg(ins.Rd, s.PC+1)
		nextPC = s.PC + uint64(ins.Imm)
	case isa.JALR:
		target := reg(ins.Rs1) + uint64(ins.Imm)
		setReg(ins.Rd, s.PC+1)
		nextPC = target
	default:
		if ins.IsCondBranch() {
			if BranchTaken(ins.Op, reg(ins.Rs1), reg(ins.Rs2)) {
				nextPC = s.PC + uint64(ins.Imm)
			}
		} else {
			setReg(ins.Rd, ALU(ins.Op, reg(ins.Rs1), reg(ins.Rs2), ins.Imm))
		}
	}
	s.PC = nextPC
	s.Retired++
	return nil
}

// Run executes until the machine halts or maxInstructions retire, through
// the predecoded basic-block engine. It reports the number of instructions
// retired by this call.
func (e *Emulator) Run(maxInstructions uint64) (uint64, error) {
	return e.runFast(maxInstructions)
}

// RunHooked is Run with a per-instruction observer: hook is called before
// each instruction executes, with the instruction's PC and its encoding
// (a pointer into Prog.Code — do not retain it) while State still holds
// the pre-execution register file. It is the per-instruction reference
// observation path; the checkpoint walker's fast path batches the same
// information through RunWarm instead.
func (e *Emulator) RunHooked(maxInstructions uint64, hook func(pc uint64, ins *isa.Instruction)) (uint64, error) {
	return e.runObserved(maxInstructions, hook, false, nil)
}

// BranchTaken evaluates a conditional branch's predicate.
func BranchTaken(op isa.Op, a, b uint64) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return int64(a) < int64(b)
	case isa.BGE:
		return int64(a) >= int64(b)
	case isa.BLTU:
		return a < b
	case isa.BGEU:
		return a >= b
	}
	panic(fmt.Sprintf("emu: BranchTaken on non-branch %v", op))
}

// ALU evaluates a register-writing ALU operation. It is the single source
// of truth for arithmetic semantics: the pipeline's execute stage calls it
// too, so the golden model and the timing model cannot diverge.
func ALU(op isa.Op, a, b uint64, imm int64) uint64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	case isa.SHL:
		return a << (b & 63)
	case isa.SHR:
		return a >> (b & 63)
	case isa.SRA:
		return uint64(int64(a) >> (b & 63))
	case isa.MUL:
		return a * b
	case isa.DIV:
		if b == 0 {
			return ^uint64(0) // -1, RISC-V convention
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return a // overflow: return dividend
		}
		return uint64(int64(a) / int64(b))
	case isa.REM:
		if b == 0 {
			return a
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case isa.SLT:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case isa.SLTU:
		if a < b {
			return 1
		}
		return 0
	case isa.MIN:
		if int64(a) < int64(b) {
			return a
		}
		return b
	case isa.MAX:
		if int64(a) > int64(b) {
			return a
		}
		return b
	case isa.MINU:
		if a < b {
			return a
		}
		return b
	case isa.MAXU:
		if a > b {
			return a
		}
		return b
	case isa.ADDW:
		return uint64(uint32(a) + uint32(b))
	case isa.SUBW:
		return uint64(uint32(a) - uint32(b))
	case isa.ROLW:
		return uint64(bits.RotateLeft32(uint32(a), int(b&31)))
	case isa.RORW:
		return uint64(bits.RotateLeft32(uint32(a), -int(b&31)))
	case isa.ADDI:
		return a + uint64(imm)
	case isa.ANDI:
		return a & uint64(imm)
	case isa.ORI:
		return a | uint64(imm)
	case isa.XORI:
		return a ^ uint64(imm)
	case isa.SHLI:
		return a << (uint64(imm) & 63)
	case isa.SHRI:
		return a >> (uint64(imm) & 63)
	case isa.SRAI:
		return uint64(int64(a) >> (uint64(imm) & 63))
	case isa.SLTI:
		if int64(a) < imm {
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("emu: ALU on unsupported op %v", op))
}
