package emu

import (
	"testing"
	"testing/quick"

	"spt/internal/isa"
	"spt/internal/workloads"
)

// TestSnapshotIsolatesLaterWrites is the copy-on-write contract: writes
// after a snapshot — through the write-path page cache included — must not
// leak into the snapshot, and writes through a restored memory must not
// leak back into it either.
func TestSnapshotIsolatesLaterWrites(t *testing.T) {
	e := New(&isa.Program{Code: []isa.Instruction{{Op: isa.HALT}}})
	m := e.State.Mem
	m.SetByte(0x10, 1)
	m.SetByte(0x10, 1) // second write goes through the cached-page fast path

	s := e.Snapshot()
	m.SetByte(0x10, 2) // must clone the frozen page, not mutate it

	m2 := s.NewMemory()
	if got := m2.ByteAt(0x10); got != 1 {
		t.Fatalf("snapshot saw a post-snapshot write: byte = %d, want 1", got)
	}
	m2.SetByte(0x10, 3)
	if got := s.NewMemory().ByteAt(0x10); got != 1 {
		t.Fatalf("restored-memory write leaked into the snapshot: byte = %d, want 1", got)
	}
	if got := m.ByteAt(0x10); got != 2 {
		t.Fatalf("live memory lost its own write: byte = %d, want 2", got)
	}
}

// TestInvalidateDropsStalePagePointers is the regression test for the
// page-cache staleness bug: before Invalidate existed, replacing a page in
// the page map left the direct-mapped caches pointing at the old page, so
// reads served dropped data. Snapshot restore replaces pages wholesale and
// depends on Invalidate for correctness.
func TestInvalidateDropsStalePagePointers(t *testing.T) {
	m := NewMemory()
	m.SetByte(0x40, 7) // installs the page in both caches

	repl := new(page)
	repl[0x40] = 9
	for pn := range m.pages {
		m.pages[pn] = repl
	}
	if got := m.ByteAt(0x40); got != 7 {
		t.Fatalf("precondition: expected the stale cached page to serve 7, got %d", got)
	}
	m.Invalidate()
	if got := m.ByteAt(0x40); got != 9 {
		t.Fatalf("after Invalidate: byte = %d, want 9 (cache still stale)", got)
	}
}

// TestSnapshotResumeMatchesUninterrupted is the snapshot round-trip
// property: for random programs, running k steps, snapshotting, and
// resuming from the snapshot reaches exactly the state an uninterrupted
// run reaches — registers, PC, retirement count, halt flag, and memory.
func TestSnapshotResumeMatchesUninterrupted(t *testing.T) {
	f := func(seed int64, kRaw uint16) bool {
		p := workloads.RandomProgram(seed, 40)
		const budget = 2000
		k := uint64(kRaw) % budget

		ref := New(p)
		if _, err := ref.Run(budget); err != nil {
			return true // programs that trap are outside this property
		}

		e := New(p)
		if _, err := e.Run(k); err != nil {
			return true
		}
		snap := e.Snapshot()
		if _, err := e.Run(budget - k); err != nil { // snapshotted machine keeps going
			return true
		}

		r := NewFromSnapshot(p, snap)
		if _, err := r.Run(budget - k); err != nil {
			t.Logf("seed %d k %d: resume error", seed, k)
			return false
		}
		for _, pair := range [][2]*State{{&ref.State, &e.State}, {&ref.State, &r.State}} {
			a, b := pair[0], pair[1]
			if a.PC != b.PC || a.Regs != b.Regs || a.Retired != b.Retired || a.Halted != b.Halted {
				t.Logf("seed %d k %d: arch state diverged", seed, k)
				return false
			}
		}
		// Compare memory over every page either machine touched.
		seen := map[uint64]bool{}
		for pn := range ref.State.Mem.pages {
			seen[pn] = true
		}
		for pn := range r.State.Mem.pages {
			seen[pn] = true
		}
		for pn := range seen {
			base := pn << pageShift
			for off := uint64(0); off < pageSize; off += 8 {
				if ref.State.Mem.Read(base+off, 8) != r.State.Mem.Read(base+off, 8) {
					t.Logf("seed %d k %d: memory diverged at %#x", seed, k, base+off)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotMarshalRoundTrip(t *testing.T) {
	p := workloads.RandomProgram(7, 40)
	e := New(p)
	if _, err := e.Run(500); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()

	b, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.PC != snap.PC || back.Regs != snap.Regs || back.Retired != snap.Retired || back.Halted != snap.Halted {
		t.Fatal("unmarshaled snapshot's architectural fields differ")
	}
	h1, err1 := snap.Hash()
	h2, err2 := back.Hash()
	if err1 != nil || err2 != nil || h1 != h2 {
		t.Fatalf("hash not stable across marshal round trip: %x vs %x", h1, h2)
	}

	// Resuming from the decoded snapshot behaves identically.
	a, b2 := NewFromSnapshot(p, snap), NewFromSnapshot(p, back)
	if _, err := a.Run(500); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Run(500); err != nil {
		t.Fatal(err)
	}
	if a.State.PC != b2.State.PC || a.State.Regs != b2.State.Regs || a.State.Retired != b2.State.Retired {
		t.Fatal("decoded snapshot resumed differently")
	}

	// Corruption is detected, not silently accepted.
	if _, err := UnmarshalSnapshot(b[:len(b)-1]); err == nil {
		t.Fatal("truncated snapshot unmarshaled without error")
	}
	if _, err := UnmarshalSnapshot(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("trailing garbage unmarshaled without error")
	}
	if _, err := UnmarshalSnapshot([]byte("NOTASNAP")); err == nil {
		t.Fatal("bad magic unmarshaled without error")
	}
}
