package emu

import (
	"testing"
	"testing/quick"

	"spt/internal/isa"
)

func run(t *testing.T, code []isa.Instruction, data []isa.Segment) *Emulator {
	t.Helper()
	p := &isa.Program{Code: code, Data: data}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid program: %v", err)
	}
	e := New(p)
	if _, err := e.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !e.State.Halted {
		t.Fatal("program did not halt")
	}
	return e
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..10 into r3.
	code := []isa.Instruction{
		{Op: isa.MOVI, Rd: 1, Imm: 10},         // r1 = n
		{Op: isa.MOVI, Rd: 3, Imm: 0},          // r3 = sum
		{Op: isa.MOVI, Rd: 2, Imm: 1},          // r2 = i
		{Op: isa.ADD, Rd: 3, Rs1: 3, Rs2: 2},   // sum += i
		{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 1},  // i++
		{Op: isa.BGE, Rs1: 1, Rs2: 2, Imm: -2}, // while n >= i
		{Op: isa.HALT},
	}
	e := run(t, code, nil)
	if got := e.State.Regs[3]; got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestMemoryWidths(t *testing.T) {
	code := []isa.Instruction{
		{Op: isa.MOVI, Rd: 1, Imm: 0x1000},
		{Op: isa.MOVI, Rd: 2, Imm: 0x1122334455667788 & 0x7FFFFFFFFFFFFFFF},
		{Op: isa.ST, Rs1: 1, Rs2: 2, Imm: 0},
		{Op: isa.LD, Rd: 3, Rs1: 1, Imm: 0},
		{Op: isa.LDW, Rd: 4, Rs1: 1, Imm: 0},
		{Op: isa.LDB, Rd: 5, Rs1: 1, Imm: 7},
		{Op: isa.STB, Rs1: 1, Rs2: 2, Imm: 9},
		{Op: isa.LDB, Rd: 6, Rs1: 1, Imm: 9},
		{Op: isa.HALT},
	}
	e := run(t, code, nil)
	want2 := uint64(0x1122334455667788 & 0x7FFFFFFFFFFFFFFF)
	if e.State.Regs[3] != want2 {
		t.Errorf("LD = %#x, want %#x", e.State.Regs[3], want2)
	}
	if e.State.Regs[4] != want2&0xFFFFFFFF {
		t.Errorf("LDW = %#x, want %#x", e.State.Regs[4], want2&0xFFFFFFFF)
	}
	if e.State.Regs[5] != want2>>56 {
		t.Errorf("LDB = %#x, want %#x", e.State.Regs[5], want2>>56)
	}
	if e.State.Regs[6] != want2&0xFF {
		t.Errorf("STB/LDB = %#x, want %#x", e.State.Regs[6], want2&0xFF)
	}
}

func TestDataSegmentLoad(t *testing.T) {
	data := []isa.Segment{{Addr: 0x2000, Bytes: []byte{1, 2, 3, 4, 5, 6, 7, 8}}}
	code := []isa.Instruction{
		{Op: isa.MOVI, Rd: 1, Imm: 0x2000},
		{Op: isa.LD, Rd: 2, Rs1: 1},
		{Op: isa.HALT},
	}
	e := run(t, code, data)
	if got := e.State.Regs[2]; got != 0x0807060504030201 {
		t.Fatalf("LD of data segment = %#x", got)
	}
}

func TestCallReturn(t *testing.T) {
	// main: r5 = f(7) where f(x) = x*3; via JAL/JALR.
	code := []isa.Instruction{
		{Op: isa.MOVI, Rd: 10, Imm: 7},            // 0: arg
		{Op: isa.JAL, Rd: isa.RA, Imm: 3},         // 1: call f (pc 4)
		{Op: isa.MOV, Rd: 5, Rs1: 11},             // 2: r5 = result
		{Op: isa.HALT},                            // 3
		{Op: isa.MOVI, Rd: 12, Imm: 3},            // 4: f:
		{Op: isa.MUL, Rd: 11, Rs1: 10, Rs2: 12},   // 5
		{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA}, // 6: ret
	}
	e := run(t, code, nil)
	if got := e.State.Regs[5]; got != 21 {
		t.Fatalf("f(7) = %d, want 21", got)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	code := []isa.Instruction{
		{Op: isa.MOVI, Rd: isa.Zero, Imm: 99},
		{Op: isa.ADDI, Rd: isa.Zero, Rs1: isa.Zero, Imm: 5},
		{Op: isa.MOV, Rd: 1, Rs1: isa.Zero},
		{Op: isa.HALT},
	}
	e := run(t, code, nil)
	if e.State.Regs[0] != 0 || e.State.Regs[1] != 0 {
		t.Fatalf("zero register was written: r0=%d r1=%d", e.State.Regs[0], e.State.Regs[1])
	}
}

func negU(x uint64) uint64 { return ^x + 1 }

func TestALUEdgeCases(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b uint64
		imm  int64
		want uint64
	}{
		{isa.DIV, 10, 0, 0, ^uint64(0)},
		{isa.DIV, 1 << 63, ^uint64(0), 0, 1 << 63}, // MinInt64 / -1
		{isa.REM, 10, 0, 0, 10},
		{isa.REM, 1 << 63, ^uint64(0), 0, 0},
		{isa.DIV, negU(7), 2, 0, negU(3)},
		{isa.SRA, negU(8), 1, 0, negU(4)},
		{isa.SHR, negU(8), 1, 0, (1 << 63) - 4},
		{isa.SHL, 1, 64 + 3, 0, 8}, // shift amount masked to 6 bits
		{isa.ROLW, 0x80000001, 1, 0, 0x00000003},
		{isa.RORW, 0x00000003, 1, 0, 0x80000001},
		{isa.ADDW, 0xFFFFFFFF, 1, 0, 0},
		{isa.SUBW, 0, 1, 0, 0xFFFFFFFF},
		{isa.MIN, negU(5), 3, 0, negU(5)},
		{isa.MINU, negU(5), 3, 0, 3},
		{isa.MAX, negU(5), 3, 0, 3},
		{isa.MAXU, negU(5), 3, 0, negU(5)},
		{isa.SLT, negU(1), 0, 0, 1},
		{isa.SLTU, negU(1), 0, 0, 0},
		{isa.SLTI, 5, 0, 10, 1},
		{isa.XORI, 0xFF, 0, 0x0F, 0xF0},
	}
	for _, c := range cases {
		if got := ALU(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("ALU(%v, %#x, %#x, %d) = %#x, want %#x", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	neg := negU(1)
	cases := []struct {
		op   isa.Op
		a, b uint64
		want bool
	}{
		{isa.BEQ, 1, 1, true}, {isa.BEQ, 1, 2, false},
		{isa.BNE, 1, 2, true}, {isa.BNE, 2, 2, false},
		{isa.BLT, neg, 0, true}, {isa.BLT, 0, neg, false},
		{isa.BGE, 0, neg, true}, {isa.BGE, neg, 0, false},
		{isa.BLTU, 0, neg, true}, {isa.BLTU, neg, 0, false},
		{isa.BGEU, neg, 0, true}, {isa.BGEU, 0, neg, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("BranchTaken(%v, %#x, %#x) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestMemorySparseRoundTrip(t *testing.T) {
	f := func(addr uint64, val uint64, sz uint8) bool {
		m := NewMemory()
		size := 1 << (sz % 4) // 1,2,4,8
		if size == 2 {
			size = 4
		}
		addr &= 0xFFFFFFFF
		m.Write(addr, size, val)
		var mask uint64 = ^uint64(0)
		if size < 8 {
			mask = (1 << (8 * size)) - 1
		}
		return m.Read(addr, size) == val&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 4)
	m.Write(addr, 8, 0x1234567890ABCDEF)
	if got := m.Read(addr, 8); got != 0x1234567890ABCDEF {
		t.Fatalf("cross-page read = %#x", got)
	}
	if m.Footprint() != 2 {
		t.Fatalf("footprint = %d, want 2 pages", m.Footprint())
	}
}

func TestPCOutOfRange(t *testing.T) {
	p := &isa.Program{Code: []isa.Instruction{{Op: isa.NOP}}}
	e := New(p)
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err == nil {
		t.Fatal("expected PC-out-of-range error")
	}
}

func TestRunBudget(t *testing.T) {
	// Infinite loop; Run must stop at the budget.
	p := &isa.Program{Code: []isa.Instruction{{Op: isa.JAL, Rd: isa.Zero, Imm: 0}}}
	e := New(p)
	n, err := e.Run(1000)
	if err != nil || n != 1000 {
		t.Fatalf("Run = %d, %v; want 1000, nil", n, err)
	}
	if e.State.Halted {
		t.Fatal("machine should not be halted")
	}
}

func TestHaltIsSticky(t *testing.T) {
	p := &isa.Program{Code: []isa.Instruction{{Op: isa.HALT}, {Op: isa.MOVI, Rd: 1, Imm: 9}}}
	e := New(p)
	for i := 0; i < 5; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.State.Regs[1] != 0 || e.State.Retired != 1 {
		t.Fatalf("halted machine kept executing: r1=%d retired=%d", e.State.Regs[1], e.State.Retired)
	}
}
