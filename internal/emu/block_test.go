package emu

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"spt/internal/isa"
	"spt/internal/workloads"
)

// stepRun drives the golden Step interpreter for up to max instructions,
// mirroring Run's stopping conditions (halt or budget).
func stepRun(e *Emulator, max uint64) (uint64, error) {
	var n uint64
	for n < max && !e.State.Halted {
		if err := e.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func sameState(a, b *State) bool {
	return a.PC == b.PC && a.Halted == b.Halted && a.Retired == b.Retired && a.Regs == b.Regs
}

// compareEngines runs prog on the block engine (in chunks drawn from rng,
// exercising budget truncation mid-block) and on the Step loop, comparing
// the full architectural state at every chunk boundary and the memory
// image at the end. Returns an error description, or "" on success.
func compareEngines(prog *isa.Program, budget uint64, rng *rand.Rand) string {
	blk := New(prog)
	ref := New(prog)
	var done uint64
	for done < budget && !blk.State.Halted {
		chunk := uint64(1 + rng.Intn(700))
		if done+chunk > budget {
			chunk = budget - done
		}
		nb, errB := blk.Run(chunk)
		ns, errS := stepRun(ref, chunk)
		if (errB == nil) != (errS == nil) || (errB != nil && errB.Error() != errS.Error()) {
			return "error mismatch: block=" + errString(errB) + " step=" + errString(errS)
		}
		if nb != ns {
			return "retired-count mismatch within chunk"
		}
		if !sameState(&blk.State, &ref.State) {
			return "architectural state diverged at chunk boundary"
		}
		if errB != nil {
			return "" // both failed identically; nothing more to compare
		}
		done += nb
		if nb < chunk && !blk.State.Halted {
			return "block engine under-ran its budget without halting"
		}
	}
	hb, err := blk.Snapshot().Hash()
	if err != nil {
		return "snapshot hash (block): " + err.Error()
	}
	hs, err := ref.Snapshot().Hash()
	if err != nil {
		return "snapshot hash (step): " + err.Error()
	}
	if hb != hs {
		return "final memory images differ"
	}
	return ""
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// TestBlockEngineMatchesStepOnSuite cross-checks the threaded-code engine
// against the Step interpreter on real suite kernels, with random budget
// chunking so blocks are entered mid-stream and truncated mid-block.
func TestBlockEngineMatchesStepOnSuite(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, name := range []string{"gcc", "mcf", "xz", "aes-bitslice", "chacha20"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := w.Build(1 << 40)
		if msg := compareEngines(p, 120_000, rng); msg != "" {
			t.Errorf("%s: %s", name, msg)
		}
	}
}

// TestBlockEngineMatchesStepQuick property-tests the two engines on random
// programs: same final registers, PC, halt state, retired count, memory
// image, and identical errors (including ErrPCOutOfRange) under random
// chunking.
func TestBlockEngineMatchesStepQuick(t *testing.T) {
	f := func(seed int64, chunkSeed int64) bool {
		rng := rand.New(rand.NewSource(chunkSeed))
		p := workloads.RandomProgram(seed, 60+int(uint64(seed)%140))
		return compareEngines(p, 1_000_000, rng) == ""
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestBlockEngineOutOfRange pins that running off the end of the code
// section yields the same ErrPCOutOfRange (and the same retired count) as
// the Step loop — including when the fall-off happens via a chained
// fallthrough rather than the outer dispatch check.
func TestBlockEngineOutOfRange(t *testing.T) {
	p := &isa.Program{Code: []isa.Instruction{
		{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 1},
		{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 2},
	}}
	blk := New(p)
	nb, errB := blk.Run(100)
	ref := New(p)
	ns, errS := stepRun(ref, 100)
	var oorB, oorS ErrPCOutOfRange
	if !errors.As(errB, &oorB) || !errors.As(errS, &oorS) {
		t.Fatalf("expected ErrPCOutOfRange from both: block=%v step=%v", errB, errS)
	}
	if oorB != oorS || nb != ns || !sameState(&blk.State, &ref.State) {
		t.Fatalf("out-of-range divergence: block (%d, %v) vs step (%d, %v)", nb, errB, ns, errS)
	}
}

// resetTo rewinds an emulator to the program entry with clean registers,
// deliberately keeping the decoded block cache (that is what is under
// test).
func resetTo(e *Emulator) {
	e.State.PC = e.Prog.Entry
	e.State.Regs = [isa.NumRegs]uint64{}
	e.State.Halted = false
	e.State.Retired = 0
}

// TestSetCodeRedecode covers the code-patching contract: SetCode (and
// direct mutation followed by InvalidateCode) re-decodes on next entry;
// direct mutation without invalidation keeps executing the stale decode.
func TestSetCodeRedecode(t *testing.T) {
	mk := func() *isa.Program {
		return &isa.Program{Code: []isa.Instruction{
			{Op: isa.MOVI, Rd: 1, Imm: 5},
			{Op: isa.ADDI, Rd: 2, Rs1: 1, Imm: 1}, // patch target
			{Op: isa.HALT},
		}}
	}
	patch := isa.Instruction{Op: isa.MUL, Rd: 2, Rs1: 1, Rs2: 1} // r2 = 25

	t.Run("set-code", func(t *testing.T) {
		e := New(mk())
		if _, err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		if e.State.Regs[2] != 6 {
			t.Fatalf("pre-patch r2 = %d, want 6", e.State.Regs[2])
		}
		e.SetCode(1, patch)
		resetTo(e)
		if _, err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		if e.State.Regs[2] != 25 {
			t.Fatalf("post-patch r2 = %d, want 25 (stale decode executed)", e.State.Regs[2])
		}
	})

	t.Run("direct-mutation-plus-invalidate", func(t *testing.T) {
		e := New(mk())
		if _, err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		e.Prog.Code[1] = patch
		e.InvalidateCode(1, 2)
		resetTo(e)
		if _, err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		if e.State.Regs[2] != 25 {
			t.Fatalf("post-invalidate r2 = %d, want 25", e.State.Regs[2])
		}
	})

	t.Run("stale-without-invalidate", func(t *testing.T) {
		// Pins the documented contract: mutating Prog.Code behind the
		// cache's back keeps the old decode live until InvalidateCode.
		e := New(mk())
		if _, err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		e.Prog.Code[1] = patch
		resetTo(e)
		if _, err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		if e.State.Regs[2] != 6 {
			t.Fatalf("stale decode r2 = %d, want 6 (old semantics)", e.State.Regs[2])
		}
		e.InvalidateCode(1, 2)
		resetTo(e)
		if _, err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		if e.State.Regs[2] != 25 {
			t.Fatalf("post-invalidate r2 = %d, want 25", e.State.Regs[2])
		}
	})

	t.Run("patch-changes-block-shape", func(t *testing.T) {
		// Patching a straight-line op into a branch must split the block:
		// the new branch skips the instruction after it.
		e := New(mk())
		if _, err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		e.SetCode(1, isa.Instruction{Op: isa.BEQ, Rs1: 0, Rs2: 0, Imm: 1}) // always taken → HALT
		resetTo(e)
		if _, err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		if !e.State.Halted || e.State.Regs[2] != 0 || e.State.Retired != 3 {
			t.Fatalf("branch patch: halted=%v r2=%d retired=%d, want true/0/3",
				e.State.Halted, e.State.Regs[2], e.State.Retired)
		}
	})
}

// TestInvalidateCodeScope checks that invalidation is range-sensitive: a
// range overlapping no cached block leaves the cache intact, while any
// overlap drops it wholesale (blocks chain successor pointers, so partial
// eviction would leave stale neighbors reachable).
func TestInvalidateCodeScope(t *testing.T) {
	p := &isa.Program{Code: []isa.Instruction{
		{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 1},
		{Op: isa.JAL, Imm: 2}, // skip pc 2 (never decoded)
		{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 9},
		{Op: isa.HALT},
	}}
	e := New(p)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.blocks == nil || e.blocks[0] == nil {
		t.Fatal("expected a cached block at pc 0 after running")
	}
	cached := e.blocks[0]

	// pc 2 was jumped over: no cached block covers it, so the cache stays.
	e.InvalidateCode(2, 3)
	if e.blocks == nil || e.blocks[0] != cached {
		t.Fatal("invalidating an uncached range dropped the cache")
	}

	// pc 0 is inside the cached block: the whole cache must go.
	e.InvalidateCode(0, 1)
	if e.blocks != nil {
		t.Fatal("invalidating a cached range kept the cache")
	}
}

// TestInvalidateCodeSecondRange pins the multi-range overlap check: a
// superblock that inlined a forward JAL spans two disjoint PC ranges, and
// an invalidation touching only the second range (the jump target's code)
// must still drop the block — a block keyed only by its entry range would
// keep executing the stale decode of the patched instruction.
func TestInvalidateCodeSecondRange(t *testing.T) {
	p := &isa.Program{Code: []isa.Instruction{
		{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 1},
		{Op: isa.JAL, Imm: 3}, // forward to pc 4: inlined, opens a second range
		{Op: isa.HALT},        // skipped, never decoded
		{Op: isa.HALT},
		{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 7}, // patch target, second range only
		{Op: isa.HALT},
	}}
	e := New(p)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.State.Regs[2] != 7 {
		t.Fatalf("pre-patch r2 = %d, want 7", e.State.Regs[2])
	}
	b := e.blocks[0]
	if b == nil || len(b.ranges) < 2 {
		t.Fatalf("expected a superblock with an inlined jump (>= 2 ranges), got %+v", b)
	}

	// The gap between the ranges (the skipped pcs 2-3) overlaps nothing.
	e.InvalidateCode(2, 4)
	if e.blocks == nil || e.blocks[0] != b {
		t.Fatal("invalidating the inter-range gap dropped the cache")
	}

	// pc 4 lives only in the block's second range; the overlap check must
	// consult it, not just the entry range.
	e.Prog.Code[4] = isa.Instruction{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 100}
	e.InvalidateCode(4, 5)
	if e.blocks != nil {
		t.Fatal("invalidating the second range of a superblock kept the cache")
	}
	resetTo(e)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.State.Regs[2] != 100 {
		t.Fatalf("post-patch r2 = %d, want 100 (stale second-range decode executed)", e.State.Regs[2])
	}
}

// TestRunHookedTraceMatchesStep verifies the hook sees every instruction,
// in retirement order, with pre-execution state — regardless of how the
// budget is chunked — by comparing its (pc, op, rs1-value) trace to one
// collected from the Step loop.
func TestRunHookedTraceMatchesStep(t *testing.T) {
	type ev struct {
		pc  uint64
		op  isa.Op
		rs1 uint64
	}
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(1 << 40)
	const budget = 20_000

	var want []ev
	ref := New(p)
	for uint64(len(want)) < budget && !ref.State.Halted {
		ins := p.Code[ref.State.PC]
		want = append(want, ev{ref.State.PC, ins.Op, ref.State.Regs[ins.Rs1]})
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}

	var got []ev
	hooked := New(p)
	rng := rand.New(rand.NewSource(7))
	for uint64(len(got)) < budget && !hooked.State.Halted {
		chunk := uint64(1 + rng.Intn(997))
		if rem := budget - uint64(len(got)); chunk > rem {
			chunk = rem
		}
		_, err := hooked.RunHooked(chunk, func(pc uint64, ins *isa.Instruction) {
			got = append(got, ev{pc, ins.Op, hooked.State.Regs[ins.Rs1]})
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	if len(got) != len(want) {
		t.Fatalf("hook saw %d instructions, step trace has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace diverges at %d: hook %+v, step %+v", i, got[i], want[i])
		}
	}
}

// TestBlockDispatchZeroAllocs pins the steady-state allocation behavior of
// the dispatch loop: once the hot blocks are decoded and the page caches
// are warm, Run must not allocate.
func TestBlockDispatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under the race detector")
	}
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	e := New(w.Build(1 << 40))
	// Warm until the decoded-block count is stable: the dispatch loop is
	// allowed to allocate on a cache miss, so measurement starts only once
	// the program's code footprint is fully decoded.
	countBlocks := func() int {
		n := 0
		for _, b := range e.blocks {
			if b != nil {
				n++
			}
		}
		return n
	}
	prev, stable := -1, 0
	for i := 0; i < 200 && stable < 8; i++ {
		if _, err := e.Run(100_000); err != nil {
			t.Fatal(err)
		}
		if n := countBlocks(); n == prev {
			stable++
		} else {
			prev, stable = n, 0
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := e.Run(50_000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("block dispatch allocated %.1f times per Run in steady state, want 0", allocs)
	}
}
