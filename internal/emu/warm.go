package emu

import "spt/internal/isa"

// WarmEvent is one instruction's worth of microarchitectural warming
// information, emitted by RunWarm as the block engine executes. The
// checkpoint walker replays batches of these into the memory hierarchy
// and branch predictors; the stream is byte-identical — same events, same
// order, same operand values — to what the per-instruction RunHooked
// reference path produces, because every field is captured at the exact
// point the reference hook would have read it.
//
// Kind selects the event class; Aux carries the class-specific operand:
// the data address for loads and stores, the resolved (post-execution)
// control-flow target for branches and jumps, and zero for plain fetches.
// PC is the instruction's program counter in word units.
type WarmEvent struct {
	PC   uint64
	Aux  uint64
	Kind uint8
}

// WarmEvent kinds. WarmFetch is zero so a freshly appended event defaults
// to a plain instruction fetch and only the interesting classes pay for a
// second write.
const (
	WarmFetch uint8 = iota
	WarmLoad
	WarmStore
	WarmCondNotTaken
	WarmCondTaken
	WarmJal      // direct jump, not a call
	WarmJalCall  // direct jump writing the return-address register
	WarmJalr     // indirect jump, neither call nor return
	WarmJalrCall // indirect call
	WarmJalrRet  // return (indirect jump through the return-address register)
)

// warmBufCap sizes the warming event buffer: large enough to amortize the
// flush callback over thousands of instructions, small enough to stay
// resident in L1/L2 while the replay loop walks it.
const warmBufCap = 4096

// RunWarm executes like Run but streams one WarmEvent per retired
// instruction into flush, in retirement order. flush is called whenever
// the internal buffer fills and once more before RunWarm returns; the
// slice it receives is reused across calls and must not be retained.
// It reports the number of instructions retired by this call.
func (e *Emulator) RunWarm(maxInstructions uint64, flush func([]WarmEvent)) (uint64, error) {
	return e.runObserved(maxInstructions, nil, true, flush)
}

// warmEventFor classifies the instruction at pc against the current
// (pre-execution) architectural state — the per-instruction mirror of the
// event emission inlined in the block dispatch loop, used on the
// budget-truncated tail path.
func warmEventFor(s *State, pc uint64, ins *isa.Instruction) WarmEvent {
	ev := WarmEvent{PC: pc}
	switch {
	case ins.IsMem():
		ev.Aux = s.Regs[ins.Rs1] + uint64(ins.Imm)
		if ins.IsStore() {
			ev.Kind = WarmStore
		} else {
			ev.Kind = WarmLoad
		}
	case ins.IsCondBranch():
		if BranchTaken(ins.Op, s.Regs[ins.Rs1], s.Regs[ins.Rs2]) {
			ev.Kind = WarmCondTaken
			ev.Aux = pc + uint64(ins.Imm)
		} else {
			ev.Kind = WarmCondNotTaken
			ev.Aux = pc + 1
		}
	case ins.Op == isa.JAL:
		ev.Aux = pc + uint64(ins.Imm)
		if ins.IsCall() {
			ev.Kind = WarmJalCall
		} else {
			ev.Kind = WarmJal
		}
	case ins.Op == isa.JALR:
		ev.Aux = s.Regs[ins.Rs1] + uint64(ins.Imm)
		switch {
		case ins.IsCall():
			ev.Kind = WarmJalrCall
		case ins.IsReturn():
			ev.Kind = WarmJalrRet
		default:
			ev.Kind = WarmJalr
		}
	}
	return ev
}
