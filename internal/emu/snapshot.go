package emu

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"spt/internal/isa"
)

// Snapshot is an immutable copy of a machine's complete architectural
// state: PC, registers, retired-instruction count, halt flag, and the
// memory image. Taking one is O(pages) pointer copies — the pages
// themselves are shared copy-on-write with the live memory, so neither
// continued emulation nor restored machines can mutate snapshot contents.
// A snapshot may therefore be restored any number of times, concurrently.
type Snapshot struct {
	PC      uint64
	Regs    [isa.NumRegs]uint64
	Retired uint64
	Halted  bool

	pages map[uint64]*page
}

// Snapshot captures the emulator's architectural state. The live memory
// keeps running: its pages are frozen and any later write clones the
// affected page first.
func (e *Emulator) Snapshot() *Snapshot {
	s := &Snapshot{
		PC:      e.State.PC,
		Regs:    e.State.Regs,
		Retired: e.State.Retired,
		Halted:  e.State.Halted,
	}
	s.pages = e.State.Mem.freeze()
	return s
}

// freeze marks every live page copy-on-write and returns an aliasing page
// map for a snapshot. The write cache is invalidated so no cached pointer
// can bypass the clone-on-write check.
func (m *Memory) freeze() map[uint64]*page {
	pages := make(map[uint64]*page, len(m.pages))
	if m.frozen == nil {
		m.frozen = make(map[uint64]struct{}, len(m.pages))
	}
	for pn, p := range m.pages {
		pages[pn] = p
		m.frozen[pn] = struct{}{}
	}
	m.Invalidate()
	return pages
}

// NewMemory builds a memory whose initial contents equal the snapshot's.
// The snapshot's pages are shared copy-on-write; the first write to each
// page clones it, so the snapshot stays intact. Safe to call concurrently
// on one snapshot.
func (s *Snapshot) NewMemory() *Memory {
	m := NewMemory()
	m.pages = make(map[uint64]*page, len(s.pages))
	m.frozen = make(map[uint64]struct{}, len(s.pages))
	for pn, p := range s.pages {
		m.pages[pn] = p
		m.frozen[pn] = struct{}{}
	}
	return m
}

// NewFromSnapshot builds an emulator for prog resuming from the snapshot.
func NewFromSnapshot(p *isa.Program, s *Snapshot) *Emulator {
	return &Emulator{
		Prog: p,
		State: State{
			PC:      s.PC,
			Regs:    s.Regs,
			Mem:     s.NewMemory(),
			Halted:  s.Halted,
			Retired: s.Retired,
		},
	}
}

// Restore rewinds the emulator to the snapshot's state. The previous
// memory is discarded.
func (e *Emulator) Restore(s *Snapshot) {
	e.State = State{
		PC:      s.PC,
		Regs:    s.Regs,
		Mem:     s.NewMemory(),
		Halted:  s.Halted,
		Retired: s.Retired,
	}
}

// Pages reports the number of pages captured by the snapshot.
func (s *Snapshot) Pages() int { return len(s.pages) }

// snapMagic identifies (and versions) the serialized snapshot format.
const snapMagic = "SPTSNAP1"

// MarshalBinary serializes the snapshot to the compact on-disk format:
// magic, architectural fields, then each allocated page (number + raw
// bytes) in ascending page-number order. The encoding is deterministic —
// the same execution always produces the same bytes — so Hash doubles as
// a content identity for the checkpoint cache.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	pns := make([]uint64, 0, len(s.pages))
	for pn := range s.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })

	out := make([]byte, 0, len(snapMagic)+8*(3+isa.NumRegs)+len(pns)*(8+pageSize))
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint64(out, s.PC)
	out = binary.LittleEndian.AppendUint64(out, s.Retired)
	var halted uint64
	if s.Halted {
		halted = 1
	}
	out = binary.LittleEndian.AppendUint64(out, halted)
	for _, r := range s.Regs {
		out = binary.LittleEndian.AppendUint64(out, r)
	}
	out = binary.LittleEndian.AppendUint64(out, uint64(len(pns)))
	for _, pn := range pns {
		out = binary.LittleEndian.AppendUint64(out, pn)
		out = append(out, s.pages[pn][:]...)
	}
	return out, nil
}

// UnmarshalSnapshot parses the format produced by MarshalBinary.
func UnmarshalSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("emu: not a snapshot (bad magic)")
	}
	b = b[len(snapMagic):]
	need := func(n int) error {
		if len(b) < n {
			return fmt.Errorf("emu: truncated snapshot")
		}
		return nil
	}
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v
	}
	if err := need(8 * (3 + isa.NumRegs + 1)); err != nil {
		return nil, err
	}
	s := &Snapshot{pages: map[uint64]*page{}}
	s.PC = u64()
	s.Retired = u64()
	s.Halted = u64() != 0
	for r := range s.Regs {
		s.Regs[r] = u64()
	}
	n := u64()
	for i := uint64(0); i < n; i++ {
		if err := need(8 + pageSize); err != nil {
			return nil, err
		}
		pn := u64()
		if _, dup := s.pages[pn]; dup {
			return nil, fmt.Errorf("emu: snapshot page %d duplicated", pn)
		}
		p := new(page)
		copy(p[:], b[:pageSize])
		b = b[pageSize:]
		s.pages[pn] = p
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("emu: %d trailing bytes after snapshot", len(b))
	}
	return s, nil
}

// Hash returns the SHA-256 of the canonical serialization: the snapshot's
// content identity for the checkpoint cache.
func (s *Snapshot) Hash() ([32]byte, error) {
	b, err := s.MarshalBinary()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(b), nil
}
