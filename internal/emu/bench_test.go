// Functional-engine throughput benchmarks. BenchmarkFastForward is the
// number the threaded-code work is judged by: emulated millions of
// instructions per host second for the predecoded basic-block engine
// (Run), against the single-instruction reference interpreter (Step)
// executing the identical region. CI runs the aes-bitslice case with
// -benchtime=1x and floors the speedup-x metric.
package emu

import (
	"testing"
	"time"

	"spt/internal/workloads"
)

// BenchmarkFastForward measures both engines on each workload and reports
// the block engine's absolute throughput (emu-MIPS), the Step loop's
// (step-MIPS), and their ratio (speedup-x).
func BenchmarkFastForward(b *testing.B) {
	const insts = 2_000_000
	for _, name := range []string{"gcc", "mcf", "lbm", "aes-bitslice", "chacha20"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		p := w.Build(1 << 40)
		b.Run(name, func(b *testing.B) {
			var stepSec, blockSec float64
			for i := 0; i < b.N; i++ {
				step := New(p)
				start := time.Now()
				for j := 0; j < insts; j++ {
					if err := step.Step(); err != nil {
						b.Fatal(err)
					}
				}
				stepSec += time.Since(start).Seconds()

				block := New(p)
				start = time.Now()
				if _, err := block.Run(insts); err != nil {
					b.Fatal(err)
				}
				blockSec += time.Since(start).Seconds()
			}
			total := float64(insts) * float64(b.N)
			b.ReportMetric(total/blockSec/1e6, "emu-MIPS")
			b.ReportMetric(total/stepSec/1e6, "step-MIPS")
			b.ReportMetric(stepSec/blockSec, "speedup-x")
		})
	}
}
