package emu

import (
	"encoding/binary"
	"math/bits"

	"spt/internal/isa"
)

// Threaded-code execution engine: instead of re-decoding every instruction
// on every visit (the Step path), Run predecodes straight-line runs of code
// into basic blocks of dense micro-op records — operands, immediates, and
// branch targets already extracted, the handler selected — and executes
// them in a tight dispatch loop. Blocks are cached per entry PC, so loop
// bodies decode once and then execute with no per-instruction fetch,
// bounds check, or operand extraction.
//
// Correctness contract: the block engine and Step implement identical
// architectural semantics (block_test.go cross-checks them instruction for
// instruction on random programs). Step remains the golden reference; the
// block engine is the throughput path behind Run and RunHooked.
//
// The cache holds no architectural state — only a decoded view of
// Prog.Code — so snapshots and copy-on-write restores (snapshot.go) never
// interact with it: restoring architectural state onto an emulator keeps
// its decoded blocks valid because the code is unchanged. The only way
// code changes is through SetCode/InvalidateCode, which drop every cached
// block overlapping the modified range.

// uKind selects a micro-op handler in the dispatch loop. Hot operations
// get dedicated kinds with the semantics inlined; the rarer ALU ops
// (division, comparisons, min/max) share the generic uAlu kind, which
// falls back to the ALU function — the same single source of truth the
// pipeline's execute stage uses.
type uKind uint8

const (
	uNop uKind = iota
	uHalt
	uMovi
	uMov
	uLoad8
	uLoad4
	uLoad1
	uStore8
	uStore4
	uStore1
	uJal
	uJalr
	uBeq
	uBne
	uBlt
	uBge
	uBltu
	uBgeu
	uAdd
	uSub
	uAnd
	uOr
	uXor
	uShl
	uShr
	uSra
	uMul
	uAddw
	uSubw
	uRolw
	uRorw
	uAddi
	uAndi
	uOri
	uXori
	uShli
	uShri
	uSrai
	uSlti
	uAlu // anything else register-writing: DIV, REM, SLT(U), MIN/MAX(U), ...
)

// uOp is one predecoded micro-op: 32 bytes, everything the dispatch loop
// needs without touching isa.Instruction again.
type uOp struct {
	kind uKind
	op   isa.Op // original opcode, for uAlu dispatch
	rd   uint8
	rs1  uint8
	rs2  uint8

	imm int64
	// target is the statically known control-flow destination (pc+imm) for
	// conditional branches and uJal; link is pc+1 for uJal/uJalr.
	target uint64
	link   uint64
}

// maxBlockLen bounds a block so the budget arithmetic in execBlock stays
// cheap and a pathological straight-line program cannot decode the whole
// code section in one shot.
const maxBlockLen = 128

// block is a predecoded straight-line run starting at start. The last op
// is the first control-flow instruction (or HALT) at or after start, or
// the maxBlockLen'th op, whichever comes first. next and tkn chain to the
// fallthrough and taken-branch successor blocks (resolved lazily on first
// transition), so steady-state execution hops block to block without
// consulting the cache index.
type block struct {
	start uint64
	ops   []uOp
	next  *block // fallthrough successor
	tkn   *block // statically known taken/jump successor
}

// execBlock exit reasons: how control left the block.
const (
	exitFall  uint8 = iota // ran off the end (or a not-taken terminal branch)
	exitTaken              // terminal branch taken or uJal: PC = static target
	exitDyn                // uJalr or budget truncation: PC needs a fresh lookup
	exitHalt               // HALT retired
)

// decodeOne predecodes the instruction at pc. Register-writing ops whose
// destination is the hardwired zero register are architectural no-ops
// (loads included: a functional memory read has no side effects), so they
// decode to uNop and the dispatch loop never needs an rd != Zero check on
// those paths.
func decodeOne(ins isa.Instruction, pc uint64) uOp {
	u := uOp{op: ins.Op, rd: uint8(ins.Rd), rs1: uint8(ins.Rs1), rs2: uint8(ins.Rs2), imm: ins.Imm}
	switch ins.Op {
	case isa.NOP:
		u.kind = uNop
	case isa.HALT:
		u.kind = uHalt
	case isa.MOVI:
		u.kind = uMovi
	case isa.MOV:
		u.kind = uMov
	case isa.LD:
		u.kind = uLoad8
	case isa.LDW:
		u.kind = uLoad4
	case isa.LDB:
		u.kind = uLoad1
	case isa.ST:
		u.kind = uStore8
	case isa.STW:
		u.kind = uStore4
	case isa.STB:
		u.kind = uStore1
	case isa.JAL:
		u.kind = uJal
		u.target = pc + uint64(ins.Imm)
		u.link = pc + 1
	case isa.JALR:
		u.kind = uJalr
		u.link = pc + 1
	case isa.BEQ:
		u.kind = uBeq
		u.target = pc + uint64(ins.Imm)
	case isa.BNE:
		u.kind = uBne
		u.target = pc + uint64(ins.Imm)
	case isa.BLT:
		u.kind = uBlt
		u.target = pc + uint64(ins.Imm)
	case isa.BGE:
		u.kind = uBge
		u.target = pc + uint64(ins.Imm)
	case isa.BLTU:
		u.kind = uBltu
		u.target = pc + uint64(ins.Imm)
	case isa.BGEU:
		u.kind = uBgeu
		u.target = pc + uint64(ins.Imm)
	case isa.ADD:
		u.kind = uAdd
	case isa.SUB:
		u.kind = uSub
	case isa.AND:
		u.kind = uAnd
	case isa.OR:
		u.kind = uOr
	case isa.XOR:
		u.kind = uXor
	case isa.SHL:
		u.kind = uShl
	case isa.SHR:
		u.kind = uShr
	case isa.SRA:
		u.kind = uSra
	case isa.MUL:
		u.kind = uMul
	case isa.ADDW:
		u.kind = uAddw
	case isa.SUBW:
		u.kind = uSubw
	case isa.ROLW:
		u.kind = uRolw
	case isa.RORW:
		u.kind = uRorw
	case isa.ADDI:
		u.kind = uAddi
	case isa.ANDI:
		u.kind = uAndi
	case isa.ORI:
		u.kind = uOri
	case isa.XORI:
		u.kind = uXori
	case isa.SHLI:
		u.kind = uShli
	case isa.SHRI:
		u.kind = uShri
	case isa.SRAI:
		u.kind = uSrai
	case isa.SLTI:
		u.kind = uSlti
	default:
		// Every remaining opcode is a register-writing ALU operation; ALU
		// panics on anything it does not know, exactly like Step would.
		u.kind = uAlu
	}
	if u.rd == 0 {
		switch u.kind {
		case uMovi, uMov, uLoad8, uLoad4, uLoad1, uAdd, uSub, uAnd, uOr, uXor, uShl, uShr, uSra,
			uMul, uAddw, uSubw, uRolw, uRorw, uAddi, uAndi, uOri, uXori,
			uShli, uShri, uSrai, uSlti, uAlu:
			u.kind = uNop
		}
	}
	return u
}

// decodeBlock predecodes the straight-line run starting at start.
func decodeBlock(code []isa.Instruction, start uint64) *block {
	b := &block{start: start}
	for pc := start; pc < uint64(len(code)) && len(b.ops) < maxBlockLen; pc++ {
		ins := code[pc]
		b.ops = append(b.ops, decodeOne(ins, pc))
		if ins.IsControlFlow() || ins.Op == isa.HALT {
			break
		}
	}
	return b
}

// blockAt returns the cached block entered at pc, decoding it on first
// visit. The caller guarantees pc < len(Prog.Code).
func (e *Emulator) blockAt(pc uint64) *block {
	if e.blocks == nil {
		e.blocks = make([]*block, len(e.Prog.Code))
	}
	b := e.blocks[pc]
	if b == nil {
		b = decodeBlock(e.Prog.Code, pc)
		e.blocks[pc] = b
	}
	return b
}

// SetCode replaces the instruction at pc and invalidates every cached
// block that decoded it, so the next execution re-decodes the new code.
// This is the self-modifying-code hook: µRISC keeps code in an immutable
// section separate from data memory, so stores can never alias it —
// mutation happens only through this explicit API. The program is mutated
// in place; the caller owns sharing (an isa.Program handed to several
// emulators is mutated for all of them, but only this emulator's block
// cache is invalidated — use one program per emulator when patching code).
func (e *Emulator) SetCode(pc uint64, ins isa.Instruction) {
	e.Prog.Code[pc] = ins
	e.InvalidateCode(pc, pc+1)
}

// InvalidateCode drops cached blocks covering [from, to), forcing a
// re-decode on next entry. Use it after mutating Prog.Code directly.
// Invalidation is coarse — one overlapping block drops the whole cache —
// because blocks chain successor pointers to each other, so a surviving
// block could otherwise keep a stale neighbor reachable. Code patching is
// rare and decode is cheap; correctness wins over precision here.
func (e *Emulator) InvalidateCode(from, to uint64) {
	for _, b := range e.blocks {
		if b != nil && b.start < to && from < b.start+uint64(len(b.ops)) {
			e.blocks = nil
			return
		}
	}
}

// execBlock executes up to budget micro-ops of b, which must be entered at
// b.start == State.PC. It updates PC and Retired and returns the number of
// instructions executed plus the exit reason (run's chaining decision). A
// control-flow op or HALT always terminates the run through the block;
// otherwise execution falls off the end (or stops at the budget) with PC
// pointing at the next sequential instruction. hook, if non-nil, observes
// each instruction (original encoding, pre-execution state) before it
// executes.
func (e *Emulator) execBlock(b *block, budget uint64, hook func(pc uint64, ins *isa.Instruction)) (uint64, uint8) {
	s := &e.State
	regs := &s.Regs
	m := s.Mem
	ops := b.ops
	if budget < uint64(len(ops)) {
		ops = ops[:budget]
	}
	pc := b.start
	for j := range ops {
		i := uint64(j)
		o := &ops[j]
		if hook != nil {
			hook(pc, &e.Prog.Code[pc])
		}
		switch o.kind {
		case uNop:
		case uHalt:
			s.Halted = true
			s.PC = pc + 1
			s.Retired += i + 1
			return i + 1, exitHalt
		case uMovi:
			regs[o.rd&31] = uint64(o.imm)
		case uMov:
			regs[o.rd&31] = regs[o.rs1&31]
		case uLoad8:
			// Loads and stores inline the page-cache hit path per access
			// width; any miss (cold slot, page-crossing, copy-on-write)
			// falls back to the general Read/Write.
			a := regs[o.rs1&31] + uint64(o.imm)
			off := a & (pageSize - 1)
			pn := a >> pageShift
			si := pn & (pcacheSlots - 1)
			if off <= pageSize-8 && m.ctags[si] == pn+1 {
				regs[o.rd&31] = binary.LittleEndian.Uint64(m.cptrs[si][off : off+8])
			} else {
				regs[o.rd&31] = m.Read(a, 8)
			}
		case uLoad4:
			a := regs[o.rs1&31] + uint64(o.imm)
			off := a & (pageSize - 1)
			pn := a >> pageShift
			si := pn & (pcacheSlots - 1)
			if off <= pageSize-4 && m.ctags[si] == pn+1 {
				regs[o.rd&31] = uint64(binary.LittleEndian.Uint32(m.cptrs[si][off : off+4]))
			} else {
				regs[o.rd&31] = m.Read(a, 4)
			}
		case uLoad1:
			a := regs[o.rs1&31] + uint64(o.imm)
			pn := a >> pageShift
			si := pn & (pcacheSlots - 1)
			if m.ctags[si] == pn+1 {
				regs[o.rd&31] = uint64(m.cptrs[si][a&(pageSize-1)])
			} else {
				regs[o.rd&31] = m.Read(a, 1)
			}
		case uStore8:
			a := regs[o.rs1&31] + uint64(o.imm)
			off := a & (pageSize - 1)
			pn := a >> pageShift
			si := pn & (pcacheSlots - 1)
			if off <= pageSize-8 && m.wtags[si] == pn+1 {
				binary.LittleEndian.PutUint64(m.wptrs[si][off:off+8], regs[o.rs2&31])
			} else {
				m.Write(a, 8, regs[o.rs2&31])
			}
		case uStore4:
			a := regs[o.rs1&31] + uint64(o.imm)
			off := a & (pageSize - 1)
			pn := a >> pageShift
			si := pn & (pcacheSlots - 1)
			if off <= pageSize-4 && m.wtags[si] == pn+1 {
				binary.LittleEndian.PutUint32(m.wptrs[si][off:off+4], uint32(regs[o.rs2&31]))
			} else {
				m.Write(a, 4, regs[o.rs2&31])
			}
		case uStore1:
			a := regs[o.rs1&31] + uint64(o.imm)
			pn := a >> pageShift
			si := pn & (pcacheSlots - 1)
			if m.wtags[si] == pn+1 {
				m.wptrs[si][a&(pageSize-1)] = byte(regs[o.rs2&31])
			} else {
				m.Write(a, 1, regs[o.rs2&31])
			}
		case uJal:
			if o.rd != 0 {
				regs[o.rd&31] = o.link
			}
			s.PC = o.target
			s.Retired += i + 1
			return i + 1, exitTaken
		case uJalr:
			// Read rs1 before writing the link: JALR may use its own
			// destination as the jump base.
			t := regs[o.rs1&31] + uint64(o.imm)
			if o.rd != 0 {
				regs[o.rd&31] = o.link
			}
			s.PC = t
			s.Retired += i + 1
			return i + 1, exitDyn
		case uBeq:
			if regs[o.rs1&31] == regs[o.rs2&31] {
				s.PC = o.target
				s.Retired += i + 1
				return i + 1, exitTaken
			}
		case uBne:
			if regs[o.rs1&31] != regs[o.rs2&31] {
				s.PC = o.target
				s.Retired += i + 1
				return i + 1, exitTaken
			}
		case uBlt:
			if int64(regs[o.rs1&31]) < int64(regs[o.rs2&31]) {
				s.PC = o.target
				s.Retired += i + 1
				return i + 1, exitTaken
			}
		case uBge:
			if int64(regs[o.rs1&31]) >= int64(regs[o.rs2&31]) {
				s.PC = o.target
				s.Retired += i + 1
				return i + 1, exitTaken
			}
		case uBltu:
			if regs[o.rs1&31] < regs[o.rs2&31] {
				s.PC = o.target
				s.Retired += i + 1
				return i + 1, exitTaken
			}
		case uBgeu:
			if regs[o.rs1&31] >= regs[o.rs2&31] {
				s.PC = o.target
				s.Retired += i + 1
				return i + 1, exitTaken
			}
		case uAdd:
			regs[o.rd&31] = regs[o.rs1&31] + regs[o.rs2&31]
		case uSub:
			regs[o.rd&31] = regs[o.rs1&31] - regs[o.rs2&31]
		case uAnd:
			regs[o.rd&31] = regs[o.rs1&31] & regs[o.rs2&31]
		case uOr:
			regs[o.rd&31] = regs[o.rs1&31] | regs[o.rs2&31]
		case uXor:
			regs[o.rd&31] = regs[o.rs1&31] ^ regs[o.rs2&31]
		case uShl:
			regs[o.rd&31] = regs[o.rs1&31] << (regs[o.rs2&31] & 63)
		case uShr:
			regs[o.rd&31] = regs[o.rs1&31] >> (regs[o.rs2&31] & 63)
		case uSra:
			regs[o.rd&31] = uint64(int64(regs[o.rs1&31]) >> (regs[o.rs2&31] & 63))
		case uMul:
			regs[o.rd&31] = regs[o.rs1&31] * regs[o.rs2&31]
		case uAddw:
			regs[o.rd&31] = uint64(uint32(regs[o.rs1&31]) + uint32(regs[o.rs2&31]))
		case uSubw:
			regs[o.rd&31] = uint64(uint32(regs[o.rs1&31]) - uint32(regs[o.rs2&31]))
		case uRolw:
			regs[o.rd&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs1&31]), int(regs[o.rs2&31]&31)))
		case uRorw:
			regs[o.rd&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs1&31]), -int(regs[o.rs2&31]&31)))
		case uAddi:
			regs[o.rd&31] = regs[o.rs1&31] + uint64(o.imm)
		case uAndi:
			regs[o.rd&31] = regs[o.rs1&31] & uint64(o.imm)
		case uOri:
			regs[o.rd&31] = regs[o.rs1&31] | uint64(o.imm)
		case uXori:
			regs[o.rd&31] = regs[o.rs1&31] ^ uint64(o.imm)
		case uShli:
			regs[o.rd&31] = regs[o.rs1&31] << (uint64(o.imm) & 63)
		case uShri:
			regs[o.rd&31] = regs[o.rs1&31] >> (uint64(o.imm) & 63)
		case uSrai:
			regs[o.rd&31] = uint64(int64(regs[o.rs1&31]) >> (uint64(o.imm) & 63))
		case uSlti:
			if int64(regs[o.rs1&31]) < o.imm {
				regs[o.rd&31] = 1
			} else {
				regs[o.rd&31] = 0
			}
		case uAlu:
			regs[o.rd&31] = ALU(o.op, regs[o.rs1&31], regs[o.rs2&31], o.imm)
		}
		pc++
	}
	n := uint64(len(ops))
	s.PC = pc
	s.Retired += n
	if n < uint64(len(b.ops)) {
		return n, exitDyn // budget truncation: resume mid-block next call
	}
	return n, exitFall
}

// run is the shared engine behind Run and RunHooked. The inner loop
// follows the blocks' successor chains (resolving them on first use);
// only dynamic jumps and budget truncation fall back to a cache lookup.
func (e *Emulator) run(maxInstructions uint64, hook func(pc uint64, ins *isa.Instruction)) (uint64, error) {
	s := &e.State
	codeLen := uint64(len(e.Prog.Code))
	var done uint64
	for !s.Halted && done < maxInstructions {
		if s.PC >= codeLen {
			return done, ErrPCOutOfRange{s.PC}
		}
		b := e.blockAt(s.PC)
		for done < maxInstructions {
			n, exit := e.execBlock(b, maxInstructions-done, hook)
			done += n
			switch exit {
			case exitFall:
				if b.next == nil {
					if s.PC >= codeLen {
						return done, ErrPCOutOfRange{s.PC}
					}
					b.next = e.blockAt(s.PC)
				}
				b = b.next
			case exitTaken:
				if b.tkn == nil {
					if s.PC >= codeLen {
						return done, ErrPCOutOfRange{s.PC}
					}
					b.tkn = e.blockAt(s.PC)
				}
				b = b.tkn
			default: // exitDyn, exitHalt: back to the outer checks
				goto outer
			}
		}
	outer:
	}
	return done, nil
}
