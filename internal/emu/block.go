package emu

import (
	"encoding/binary"
	"math/bits"

	"spt/internal/isa"
)

// Threaded-code execution engine, v2: instead of re-decoding every
// instruction on every visit (the Step path), run predecodes code into
// superblocks of dense micro-op records — operands, immediates, and
// branch targets already extracted, the handler selected — and executes
// them in a tight dispatch loop.
//
// A superblock has one entry and many exits: decode continues through
// conditional branches (the not-taken path stays in-block, the taken path
// exits through a per-op successor pointer) and through forward JALs (the
// link write is emitted as a uJalIn micro-op and decode resumes at the
// jump target, so hot call chains flatten into one µop array). Decode
// terminates at JALR, HALT, backward jumps, or the instruction budget.
// Because an inlined jump makes the block span several disjoint PC
// ranges, each block records its ranges for InvalidateCode overlap
// checks.
//
// Two decode-time optimizations ride on top:
//
//   - Micro-op fusion: the dominant adjacent pairs — an ALU op feeding a
//     conditional branch, and address generation feeding a load/store —
//     collapse into one uFused micro-op executed in a single dispatch.
//     Fusion never crosses a range boundary and both halves retire
//     atomically on the fast path (budget-truncated runs fall back to the
//     per-instruction tail, which splits pairs naturally).
//   - Per-µop translation slots: each memory micro-op owns a one-entry
//     page-translation cache (memSlot) validated by the memory's epoch,
//     so the three-array kernels (lbm) whose bases alias in the global
//     direct-mapped page cache each keep their own hot page.
//
// Correctness contract: the block engine and Step implement identical
// architectural semantics (block_test.go cross-checks them instruction
// for instruction on random programs). Step remains the golden reference;
// the block engine is the throughput path behind Run, RunHooked, and
// RunWarm.
//
// The cache holds no architectural state — only a decoded view of
// Prog.Code — so snapshots and copy-on-write restores (snapshot.go) never
// interact with it (the translation slots carry architectural *page
// pointers, but they are guarded by the memory epoch, which every
// snapshot, restore, and copy-on-write clone advances). The only way code
// changes is through SetCode/InvalidateCode, which drop every cached
// block overlapping the modified range.

// uKind selects a micro-op handler in the dispatch loop. Hot operations
// get dedicated kinds with the semantics inlined; the rarer ALU ops
// (division, comparisons, min/max) share the generic uAlu kind, which
// falls back to the ALU function — the same single source of truth the
// pipeline's execute stage uses.
type uKind uint8

const (
	uNop uKind = iota
	uHalt
	uMovi
	uMov
	uLoadNop // load to the zero register: no architectural effect, but warming still sees the access
	uLoad8
	uLoad4
	uLoad1
	uStore8
	uStore4
	uStore1
	uJal   // terminal jump: backward or out-of-range target
	uJalIn // inlined forward JAL: link write only, execution continues in-block
	uJalr
	uBeq
	uBne
	uBlt
	uBge
	uBltu
	uBgeu
	uAdd
	uSub
	uAnd
	uOr
	uXor
	uShl
	uShr
	uSra
	uMul
	uAddw
	uSubw
	uRolw
	uRorw
	uAddi
	uAndi
	uOri
	uXori
	uShli
	uShri
	uSrai
	uSlti
	uAlu   // anything else register-writing: DIV, REM, SLT(U), MIN/MAX(U), ...
	uFused // two-instruction pair: k1 (ALU first half) + k2 (branch or memory second half)
)

// raReg is the return-address register, the only register with
// call/return semantics baked into the warming event classification.
const raReg = uint8(isa.RA)

// uOp is one predecoded micro-op: everything the dispatch loop needs
// without touching isa.Instruction again. A fused op carries both halves:
// rd/rs1/rs2/imm belong to the first (ALU) instruction at pc, and
// rd2/rs21/rs22/imm2/target to the second at pc+1.
type uOp struct {
	imm    int64
	imm2   int64
	target uint64 // static taken/jump destination (branches, uJal, uJalIn)
	succ   *block // cached block at target, resolved lazily on first taken exit
	pc     uint32 // PC of this op's (first) instruction
	sIdx   uint16 // index into the block's translation slots (memory ops only)
	cum    uint16 // instructions retired through this op inclusive (2 for fused)
	kind   uKind
	k1     uKind // fused first-half kind
	k2     uKind // fused second-half kind
	op     isa.Op
	rd     uint8
	rs1    uint8
	rs2    uint8
	rd2    uint8
	rs21   uint8
	rs22   uint8
}

// memSlot is a one-entry page-translation cache owned by a single memory
// micro-op. tag is the page number + 1 (0 marks empty); the slot is valid
// only while epoch matches the memory's current epoch, which advances on
// every snapshot, restore, explicit invalidation, and copy-on-write page
// clone — and epochs are globally unique, so a slot can never alias a
// different Memory that happens to reuse the address.
type memSlot struct {
	epoch uint64
	tag   uint64
	pg    *page
}

const (
	// maxBlockLen bounds a superblock's instruction count so the budget
	// arithmetic stays cheap and a pathological straight-line program
	// cannot decode the whole code section in one shot.
	maxBlockLen = 128
	// maxRanges bounds how many disjoint PC ranges one superblock may
	// span (each inlined forward JAL opens a new range).
	maxRanges = 8
)

// crange is one half-open PC range [from, to) covered by a superblock.
type crange struct{ from, to uint64 }

// block is a predecoded superblock entered at start. cost is the number
// of architectural instructions a full pass retires; end is the resume PC
// when execution falls off the last op. next chains to the fall-through
// successor (resolved lazily), taken exits chain through each op's succ.
type block struct {
	start  uint64
	end    uint64
	cost   uint64
	ops    []uOp
	slots  []memSlot
	next   *block
	ranges []crange
}

// decodeOne predecodes the instruction at pc. Register-writing ops whose
// destination is the hardwired zero register are architectural no-ops, so
// they decode to uNop — except loads, which decode to uLoadNop so the
// warming event stream still sees the memory access exactly like the
// per-instruction reference path does.
func decodeOne(ins isa.Instruction, pc uint64) uOp {
	u := uOp{op: ins.Op, rd: uint8(ins.Rd), rs1: uint8(ins.Rs1), rs2: uint8(ins.Rs2), imm: ins.Imm, pc: uint32(pc)}
	switch ins.Op {
	case isa.NOP:
		u.kind = uNop
	case isa.HALT:
		u.kind = uHalt
	case isa.MOVI:
		u.kind = uMovi
	case isa.MOV:
		u.kind = uMov
	case isa.LD:
		u.kind = uLoad8
	case isa.LDW:
		u.kind = uLoad4
	case isa.LDB:
		u.kind = uLoad1
	case isa.ST:
		u.kind = uStore8
	case isa.STW:
		u.kind = uStore4
	case isa.STB:
		u.kind = uStore1
	case isa.JAL:
		u.kind = uJal
		u.target = pc + uint64(ins.Imm)
	case isa.JALR:
		u.kind = uJalr
	case isa.BEQ:
		u.kind = uBeq
		u.target = pc + uint64(ins.Imm)
	case isa.BNE:
		u.kind = uBne
		u.target = pc + uint64(ins.Imm)
	case isa.BLT:
		u.kind = uBlt
		u.target = pc + uint64(ins.Imm)
	case isa.BGE:
		u.kind = uBge
		u.target = pc + uint64(ins.Imm)
	case isa.BLTU:
		u.kind = uBltu
		u.target = pc + uint64(ins.Imm)
	case isa.BGEU:
		u.kind = uBgeu
		u.target = pc + uint64(ins.Imm)
	case isa.ADD:
		u.kind = uAdd
	case isa.SUB:
		u.kind = uSub
	case isa.AND:
		u.kind = uAnd
	case isa.OR:
		u.kind = uOr
	case isa.XOR:
		u.kind = uXor
	case isa.SHL:
		u.kind = uShl
	case isa.SHR:
		u.kind = uShr
	case isa.SRA:
		u.kind = uSra
	case isa.MUL:
		u.kind = uMul
	case isa.ADDW:
		u.kind = uAddw
	case isa.SUBW:
		u.kind = uSubw
	case isa.ROLW:
		u.kind = uRolw
	case isa.RORW:
		u.kind = uRorw
	case isa.ADDI:
		u.kind = uAddi
	case isa.ANDI:
		u.kind = uAndi
	case isa.ORI:
		u.kind = uOri
	case isa.XORI:
		u.kind = uXori
	case isa.SHLI:
		u.kind = uShli
	case isa.SHRI:
		u.kind = uShri
	case isa.SRAI:
		u.kind = uSrai
	case isa.SLTI:
		u.kind = uSlti
	default:
		// Every remaining opcode is a register-writing ALU operation; ALU
		// panics on anything it does not know, exactly like Step would.
		u.kind = uAlu
	}
	if u.rd == 0 {
		switch u.kind {
		case uLoad8, uLoad4, uLoad1:
			u.kind = uLoadNop
		case uMovi, uMov, uAdd, uSub, uAnd, uOr, uXor, uShl, uShr, uSra,
			uMul, uAddw, uSubw, uRolw, uRorw, uAddi, uAndi, uOri, uXori,
			uShli, uShri, uSrai, uSlti, uAlu:
			u.kind = uNop
		}
	}
	return u
}

// fusableFirst reports whether k can serve as the first half of a fused
// pair: a single-dispatch register write with no control flow — a plain
// ALU op (the classic condition-feeds-branch and address-generation
// producers) or a load (pointer chases and load-compare-branch chains).
func fusableFirst(k uKind) bool {
	switch k {
	case uMovi, uMov, uAdd, uSub, uAnd, uOr, uXor, uShl, uShr, uSra, uMul,
		uAddw, uSubw, uRolw, uRorw, uAddi, uAndi, uOri, uXori, uShli, uShri, uSrai, uSlti,
		uLoad8, uLoad4, uLoad1:
		return true
	}
	return false
}

// fusableSecond reports whether k can serve as the second half of a fused
// pair: a conditional branch (the condition-feeds-branch pattern), a
// load/store (the address-generation pattern), or another plain ALU op
// (back-to-back arithmetic, the common case in crypto kernels). uAlu is
// excluded because a fused op has no room for a second isa.Op.
func fusableSecond(k uKind) bool {
	switch k {
	case uBeq, uBne, uBlt, uBge, uBltu, uBgeu, uLoad8, uLoad4, uLoad1, uStore8, uStore4, uStore1:
		return true
	}
	return false
}

func isMemKind(k uKind) bool {
	switch k {
	case uLoad8, uLoad4, uLoad1, uStore8, uStore4, uStore1:
		return true
	}
	return false
}

// decodeBlock predecodes the superblock entered at start: straight-line
// code plus not-taken branch fall-through, with forward JALs inlined.
func decodeBlock(code []isa.Instruction, start uint64) *block {
	b := &block{start: start}
	codeLen := uint64(len(code))
	pc := start
	from := start // start of the current contiguous range
	n := 0        // instructions decoded
	nslots := 0
	finish := func(endPC, rangeTo uint64) *block {
		b.ranges = append(b.ranges, crange{from, rangeTo})
		b.end = endPC
		b.cost = uint64(n)
		if nslots > 0 {
			b.slots = make([]memSlot, nslots)
		}
		return b
	}
	for n < maxBlockLen && pc < codeLen {
		ins := code[pc]
		u := decodeOne(ins, pc)
		n++
		u.cum = uint16(n)
		switch {
		case u.kind == uHalt || u.kind == uJalr:
			b.ops = append(b.ops, u)
			return finish(pc+1, pc+1)
		case u.kind == uJal:
			if tgt := u.target; tgt > pc && tgt < codeLen && len(b.ranges) < maxRanges-1 && n < maxBlockLen {
				// Forward jump: emit the link write and keep decoding at
				// the target — the chain flattens into this block.
				u.kind = uJalIn
				b.ops = append(b.ops, u)
				b.ranges = append(b.ranges, crange{from, pc + 1})
				pc = tgt
				from = tgt
				continue
			}
			// Backward or out-of-range jump: terminal, taken exit.
			b.ops = append(b.ops, u)
			return finish(pc+1, pc+1)
		default:
			// Try fusing with the previous op: both halves must be
			// adjacent in the same range, the first must be a plain
			// register write (fused ops themselves never refuse again
			// because uFused is not fusableFirst), and at most one half
			// may touch memory — a fused pair carries a single
			// translation slot.
			if fusableSecond(u.kind) && len(b.ops) > 0 {
				prev := &b.ops[len(b.ops)-1]
				if fusableFirst(prev.kind) && uint64(prev.pc)+1 == pc &&
					!(isMemKind(prev.kind) && isMemKind(u.kind)) {
					prev.k1 = prev.kind
					prev.k2 = u.kind
					prev.kind = uFused
					prev.rd2 = u.rd
					prev.rs21 = u.rs1
					prev.rs22 = u.rs2
					prev.imm2 = u.imm
					prev.target = u.target
					prev.cum = uint16(n)
					if isMemKind(u.kind) {
						prev.sIdx = uint16(nslots)
						nslots++
					}
					pc++
					continue
				}
			}
			if isMemKind(u.kind) {
				u.sIdx = uint16(nslots)
				nslots++
			}
			b.ops = append(b.ops, u)
			pc++
		}
	}
	return finish(pc, pc)
}

// blockAt returns the cached block entered at pc, decoding it on first
// visit. The caller guarantees pc < len(Prog.Code).
func (e *Emulator) blockAt(pc uint64) *block {
	if e.blocks == nil {
		e.blocks = make([]*block, len(e.Prog.Code))
	}
	b := e.blocks[pc]
	if b == nil {
		b = decodeBlock(e.Prog.Code, pc)
		e.blocks[pc] = b
	}
	return b
}

// SetCode replaces the instruction at pc and invalidates every cached
// block that decoded it, so the next execution re-decodes the new code.
// This is the self-modifying-code hook: µRISC keeps code in an immutable
// section separate from data memory, so stores can never alias it —
// mutation happens only through this explicit API. The program is mutated
// in place; the caller owns sharing (an isa.Program handed to several
// emulators is mutated for all of them, but only this emulator's block
// cache is invalidated — use one program per emulator when patching code).
func (e *Emulator) SetCode(pc uint64, ins isa.Instruction) {
	e.Prog.Code[pc] = ins
	e.InvalidateCode(pc, pc+1)
}

// InvalidateCode drops cached blocks covering [from, to), forcing a
// re-decode on next entry. Use it after mutating Prog.Code directly.
// A superblock spans every range it decoded through (inlined forward
// jumps open new ranges), so overlap is checked against each range.
// Invalidation is coarse — one overlapping block drops the whole cache —
// because blocks chain successor pointers to each other, so a surviving
// block could otherwise keep a stale neighbor reachable. Code patching is
// rare and decode is cheap; correctness wins over precision here.
func (e *Emulator) InvalidateCode(from, to uint64) {
	for _, b := range e.blocks {
		if b == nil {
			continue
		}
		for _, r := range b.ranges {
			if r.from < to && from < r.to {
				e.blocks = nil
				return
			}
		}
	}
}

// runFast is the plain (unobserved) engine behind Run. Control chains
// superblock to superblock through cached successor pointers (taken exits
// through the exiting op's succ, fall-through through the block's next);
// only dynamic jumps fall back to a cache lookup. A block executes on the
// fast path only when the remaining budget covers it whole — the final
// partial block runs through the per-instruction Step reference, which
// also splits fused pairs at budget boundaries.
//
// runObserved is the same loop with per-instruction observation (hook
// calls and warming events) woven in; the two must stay in lockstep.
// They are separate functions on purpose: keeping the observation state
// out of this loop entirely is worth ~25% dispatch throughput (the
// compiler keeps every hot variable in registers), and the lockstep tests
// (compareEngines, the RunHooked trace test, and the walker replay
// cross-check) pin all paths to Step's semantics.
func (e *Emulator) runFast(maxInstructions uint64) (uint64, error) {
	s := &e.State
	regs := &s.Regs
	m := s.Mem
	codeLen := uint64(len(e.Prog.Code))
	// pc and done shadow s.PC and the retired count so block exits touch
	// only registers; they are flushed back to State at the halt, error,
	// and budget boundaries (and around the Step tail, which operates on
	// State directly).
	pc := s.PC
	var (
		done    uint64
		flushed uint64 // portion of done already folded into s.Retired
		b       *block
		slots   []memSlot
		ops     []uOp
		o       *uOp
		j       int
		err     error
	)

top:
	if s.Halted || done >= maxInstructions {
		goto out
	}
	if pc >= codeLen {
		err = ErrPCOutOfRange{pc}
		goto out
	}
	b = e.blockAt(pc)

enter:
	if done+b.cost > maxInstructions {
		goto tail
	}
	ops = b.ops
	slots = b.slots
	for j = 0; j < len(ops); j++ {
		o = &ops[j]
		switch o.kind {
		case uNop, uLoadNop:
		case uHalt:
			s.Halted = true
			pc = uint64(o.pc) + 1
			done += uint64(o.cum)
			goto out
		case uMovi:
			regs[o.rd&31] = uint64(o.imm)
		case uMov:
			regs[o.rd&31] = regs[o.rs1&31]
		case uLoad8:
			// Memory ops go through the op's private translation slot
			// first (hot page pinned per static instruction, immune to
			// page-cache aliasing), then the shared direct-mapped page
			// cache, then the general Read/Write; the slot re-primes on
			// the slowest path only, so pointer-chasing access patterns
			// that would thrash it stay on the shared cache.
			a := regs[o.rs1&31] + uint64(o.imm)
			off := a & (pageSize - 1)
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if off <= pageSize-8 && sl.tag == pn+1 && sl.epoch == m.epoch {
				regs[o.rd&31] = binary.LittleEndian.Uint64(sl.pg[off : off+8])
			} else if si := pn & (pcacheSlots - 1); off <= pageSize-8 && m.ctags[si] == pn+1 {
				p := m.cptrs[si]
				if sl.tag == pn+1 {
					sl.epoch, sl.pg = m.epoch, p
				}
				regs[o.rd&31] = binary.LittleEndian.Uint64(p[off : off+8])
			} else {
				regs[o.rd&31] = m.Read(a, 8)
				if p := m.lookup(pn); p != nil && off <= pageSize-8 {
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
				}
			}
		case uLoad4:
			a := regs[o.rs1&31] + uint64(o.imm)
			off := a & (pageSize - 1)
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if off <= pageSize-4 && sl.tag == pn+1 && sl.epoch == m.epoch {
				regs[o.rd&31] = uint64(binary.LittleEndian.Uint32(sl.pg[off : off+4]))
			} else if si := pn & (pcacheSlots - 1); off <= pageSize-4 && m.ctags[si] == pn+1 {
				p := m.cptrs[si]
				if sl.tag == pn+1 {
					sl.epoch, sl.pg = m.epoch, p
				}
				regs[o.rd&31] = uint64(binary.LittleEndian.Uint32(p[off : off+4]))
			} else {
				regs[o.rd&31] = m.Read(a, 4)
				if p := m.lookup(pn); p != nil && off <= pageSize-4 {
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
				}
			}
		case uLoad1:
			a := regs[o.rs1&31] + uint64(o.imm)
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if sl.tag == pn+1 && sl.epoch == m.epoch {
				regs[o.rd&31] = uint64(sl.pg[a&(pageSize-1)])
			} else if si := pn & (pcacheSlots - 1); m.ctags[si] == pn+1 {
				p := m.cptrs[si]
				if sl.tag == pn+1 {
					sl.epoch, sl.pg = m.epoch, p
				}
				regs[o.rd&31] = uint64(p[a&(pageSize-1)])
			} else {
				regs[o.rd&31] = m.Read(a, 1)
				if p := m.lookup(pn); p != nil {
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
				}
			}
		case uStore8:
			a := regs[o.rs1&31] + uint64(o.imm)
			off := a & (pageSize - 1)
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if off <= pageSize-8 && sl.tag == pn+1 && sl.epoch == m.epoch {
				binary.LittleEndian.PutUint64(sl.pg[off:off+8], regs[o.rs2&31])
			} else if si := pn & (pcacheSlots - 1); off <= pageSize-8 && m.wtags[si] == pn+1 {
				p := m.wptrs[si]
				if sl.tag == pn+1 {
					sl.epoch, sl.pg = m.epoch, p
				}
				binary.LittleEndian.PutUint64(p[off:off+8], regs[o.rs2&31])
			} else {
				m.Write(a, 8, regs[o.rs2&31])
				if off <= pageSize-8 {
					// ensure after Write is a cheap write-cache hit, and if
					// the write just broke copy-on-write the slot picks up
					// the fresh epoch and the cloned page.
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
				}
			}
		case uStore4:
			a := regs[o.rs1&31] + uint64(o.imm)
			off := a & (pageSize - 1)
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if off <= pageSize-4 && sl.tag == pn+1 && sl.epoch == m.epoch {
				binary.LittleEndian.PutUint32(sl.pg[off:off+4], uint32(regs[o.rs2&31]))
			} else if si := pn & (pcacheSlots - 1); off <= pageSize-4 && m.wtags[si] == pn+1 {
				p := m.wptrs[si]
				if sl.tag == pn+1 {
					sl.epoch, sl.pg = m.epoch, p
				}
				binary.LittleEndian.PutUint32(p[off:off+4], uint32(regs[o.rs2&31]))
			} else {
				m.Write(a, 4, regs[o.rs2&31])
				if off <= pageSize-4 {
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
				}
			}
		case uStore1:
			a := regs[o.rs1&31] + uint64(o.imm)
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if sl.tag == pn+1 && sl.epoch == m.epoch {
				sl.pg[a&(pageSize-1)] = byte(regs[o.rs2&31])
			} else if si := pn & (pcacheSlots - 1); m.wtags[si] == pn+1 {
				p := m.wptrs[si]
				if sl.tag == pn+1 {
					sl.epoch, sl.pg = m.epoch, p
				}
				p[a&(pageSize-1)] = byte(regs[o.rs2&31])
			} else {
				m.Write(a, 1, regs[o.rs2&31])
				sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
			}
		case uJal:
			if o.rd != 0 {
				regs[o.rd&31] = uint64(o.pc) + 1
			}
			pc = o.target
			done += uint64(o.cum)
			goto taken
		case uJalIn:
			if o.rd != 0 {
				regs[o.rd&31] = uint64(o.pc) + 1
			}
		case uJalr:
			// Read rs1 before writing the link: JALR may use its own
			// destination as the jump base.
			a := regs[o.rs1&31] + uint64(o.imm)
			if o.rd != 0 {
				regs[o.rd&31] = uint64(o.pc) + 1
			}
			pc = a
			done += uint64(o.cum)
			goto top
		case uBeq:
			if regs[o.rs1&31] == regs[o.rs2&31] {
				goto bTaken
			}
		case uBne:
			if regs[o.rs1&31] != regs[o.rs2&31] {
				goto bTaken
			}
		case uBlt:
			if int64(regs[o.rs1&31]) < int64(regs[o.rs2&31]) {
				goto bTaken
			}
		case uBge:
			if int64(regs[o.rs1&31]) >= int64(regs[o.rs2&31]) {
				goto bTaken
			}
		case uBltu:
			if regs[o.rs1&31] < regs[o.rs2&31] {
				goto bTaken
			}
		case uBgeu:
			if regs[o.rs1&31] >= regs[o.rs2&31] {
				goto bTaken
			}
		case uAdd:
			regs[o.rd&31] = regs[o.rs1&31] + regs[o.rs2&31]
		case uSub:
			regs[o.rd&31] = regs[o.rs1&31] - regs[o.rs2&31]
		case uAnd:
			regs[o.rd&31] = regs[o.rs1&31] & regs[o.rs2&31]
		case uOr:
			regs[o.rd&31] = regs[o.rs1&31] | regs[o.rs2&31]
		case uXor:
			regs[o.rd&31] = regs[o.rs1&31] ^ regs[o.rs2&31]
		case uShl:
			regs[o.rd&31] = regs[o.rs1&31] << (regs[o.rs2&31] & 63)
		case uShr:
			regs[o.rd&31] = regs[o.rs1&31] >> (regs[o.rs2&31] & 63)
		case uSra:
			regs[o.rd&31] = uint64(int64(regs[o.rs1&31]) >> (regs[o.rs2&31] & 63))
		case uMul:
			regs[o.rd&31] = regs[o.rs1&31] * regs[o.rs2&31]
		case uAddw:
			regs[o.rd&31] = uint64(uint32(regs[o.rs1&31]) + uint32(regs[o.rs2&31]))
		case uSubw:
			regs[o.rd&31] = uint64(uint32(regs[o.rs1&31]) - uint32(regs[o.rs2&31]))
		case uRolw:
			regs[o.rd&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs1&31]), int(regs[o.rs2&31]&31)))
		case uRorw:
			regs[o.rd&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs1&31]), -int(regs[o.rs2&31]&31)))
		case uAddi:
			regs[o.rd&31] = regs[o.rs1&31] + uint64(o.imm)
		case uAndi:
			regs[o.rd&31] = regs[o.rs1&31] & uint64(o.imm)
		case uOri:
			regs[o.rd&31] = regs[o.rs1&31] | uint64(o.imm)
		case uXori:
			regs[o.rd&31] = regs[o.rs1&31] ^ uint64(o.imm)
		case uShli:
			regs[o.rd&31] = regs[o.rs1&31] << (uint64(o.imm) & 63)
		case uShri:
			regs[o.rd&31] = regs[o.rs1&31] >> (uint64(o.imm) & 63)
		case uSrai:
			regs[o.rd&31] = uint64(int64(regs[o.rs1&31]) >> (uint64(o.imm) & 63))
		case uSlti:
			if int64(regs[o.rs1&31]) < o.imm {
				regs[o.rd&31] = 1
			} else {
				regs[o.rd&31] = 0
			}
		case uAlu:
			regs[o.rd&31] = ALU(o.op, regs[o.rs1&31], regs[o.rs2&31], o.imm)
		case uFused:
			// First half: the ALU or load instruction at o.pc.
			switch o.k1 {
			case uMovi:
				regs[o.rd&31] = uint64(o.imm)
			case uMov:
				regs[o.rd&31] = regs[o.rs1&31]
			case uAdd:
				regs[o.rd&31] = regs[o.rs1&31] + regs[o.rs2&31]
			case uSub:
				regs[o.rd&31] = regs[o.rs1&31] - regs[o.rs2&31]
			case uAnd:
				regs[o.rd&31] = regs[o.rs1&31] & regs[o.rs2&31]
			case uOr:
				regs[o.rd&31] = regs[o.rs1&31] | regs[o.rs2&31]
			case uXor:
				regs[o.rd&31] = regs[o.rs1&31] ^ regs[o.rs2&31]
			case uShl:
				regs[o.rd&31] = regs[o.rs1&31] << (regs[o.rs2&31] & 63)
			case uShr:
				regs[o.rd&31] = regs[o.rs1&31] >> (regs[o.rs2&31] & 63)
			case uSra:
				regs[o.rd&31] = uint64(int64(regs[o.rs1&31]) >> (regs[o.rs2&31] & 63))
			case uMul:
				regs[o.rd&31] = regs[o.rs1&31] * regs[o.rs2&31]
			case uAddw:
				regs[o.rd&31] = uint64(uint32(regs[o.rs1&31]) + uint32(regs[o.rs2&31]))
			case uSubw:
				regs[o.rd&31] = uint64(uint32(regs[o.rs1&31]) - uint32(regs[o.rs2&31]))
			case uRolw:
				regs[o.rd&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs1&31]), int(regs[o.rs2&31]&31)))
			case uRorw:
				regs[o.rd&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs1&31]), -int(regs[o.rs2&31]&31)))
			case uAddi:
				regs[o.rd&31] = regs[o.rs1&31] + uint64(o.imm)
			case uAndi:
				regs[o.rd&31] = regs[o.rs1&31] & uint64(o.imm)
			case uOri:
				regs[o.rd&31] = regs[o.rs1&31] | uint64(o.imm)
			case uXori:
				regs[o.rd&31] = regs[o.rs1&31] ^ uint64(o.imm)
			case uShli:
				regs[o.rd&31] = regs[o.rs1&31] << (uint64(o.imm) & 63)
			case uShri:
				regs[o.rd&31] = regs[o.rs1&31] >> (uint64(o.imm) & 63)
			case uSrai:
				regs[o.rd&31] = uint64(int64(regs[o.rs1&31]) >> (uint64(o.imm) & 63))
			case uSlti:
				if int64(regs[o.rs1&31]) < o.imm {
					regs[o.rd&31] = 1
				} else {
					regs[o.rd&31] = 0
				}
			case uLoad8:
				a := regs[o.rs1&31] + uint64(o.imm)
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-8 && sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd&31] = binary.LittleEndian.Uint64(sl.pg[off : off+8])
				} else if si := pn & (pcacheSlots - 1); off <= pageSize-8 && m.ctags[si] == pn+1 {
					p := m.cptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					regs[o.rd&31] = binary.LittleEndian.Uint64(p[off : off+8])
				} else {
					regs[o.rd&31] = m.Read(a, 8)
					if p := m.lookup(pn); p != nil && off <= pageSize-8 {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			case uLoad4:
				a := regs[o.rs1&31] + uint64(o.imm)
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-4 && sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd&31] = uint64(binary.LittleEndian.Uint32(sl.pg[off : off+4]))
				} else if si := pn & (pcacheSlots - 1); off <= pageSize-4 && m.ctags[si] == pn+1 {
					p := m.cptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					regs[o.rd&31] = uint64(binary.LittleEndian.Uint32(p[off : off+4]))
				} else {
					regs[o.rd&31] = m.Read(a, 4)
					if p := m.lookup(pn); p != nil && off <= pageSize-4 {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			case uLoad1:
				a := regs[o.rs1&31] + uint64(o.imm)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd&31] = uint64(sl.pg[a&(pageSize-1)])
				} else if si := pn & (pcacheSlots - 1); m.ctags[si] == pn+1 {
					p := m.cptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					regs[o.rd&31] = uint64(p[a&(pageSize-1)])
				} else {
					regs[o.rd&31] = m.Read(a, 1)
					if p := m.lookup(pn); p != nil {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			}
			// Second half: the branch, memory, or ALU instruction at
			// o.pc+1 (operands in rd2/rs21/rs22/imm2).
			switch o.k2 {
			case uMovi:
				regs[o.rd2&31] = uint64(o.imm2)
			case uMov:
				regs[o.rd2&31] = regs[o.rs21&31]
			case uAdd:
				regs[o.rd2&31] = regs[o.rs21&31] + regs[o.rs22&31]
			case uSub:
				regs[o.rd2&31] = regs[o.rs21&31] - regs[o.rs22&31]
			case uAnd:
				regs[o.rd2&31] = regs[o.rs21&31] & regs[o.rs22&31]
			case uOr:
				regs[o.rd2&31] = regs[o.rs21&31] | regs[o.rs22&31]
			case uXor:
				regs[o.rd2&31] = regs[o.rs21&31] ^ regs[o.rs22&31]
			case uMul:
				regs[o.rd2&31] = regs[o.rs21&31] * regs[o.rs22&31]
			case uShl:
				regs[o.rd2&31] = regs[o.rs21&31] << (regs[o.rs22&31] & 63)
			case uShr:
				regs[o.rd2&31] = regs[o.rs21&31] >> (regs[o.rs22&31] & 63)
			case uSra:
				regs[o.rd2&31] = uint64(int64(regs[o.rs21&31]) >> (regs[o.rs22&31] & 63))
			case uAddw:
				regs[o.rd2&31] = uint64(uint32(regs[o.rs21&31]) + uint32(regs[o.rs22&31]))
			case uSubw:
				regs[o.rd2&31] = uint64(uint32(regs[o.rs21&31]) - uint32(regs[o.rs22&31]))
			case uRolw:
				regs[o.rd2&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs21&31]), int(regs[o.rs22&31]&31)))
			case uRorw:
				regs[o.rd2&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs21&31]), -int(regs[o.rs22&31]&31)))
			case uAddi:
				regs[o.rd2&31] = regs[o.rs21&31] + uint64(o.imm2)
			case uAndi:
				regs[o.rd2&31] = regs[o.rs21&31] & uint64(o.imm2)
			case uOri:
				regs[o.rd2&31] = regs[o.rs21&31] | uint64(o.imm2)
			case uXori:
				regs[o.rd2&31] = regs[o.rs21&31] ^ uint64(o.imm2)
			case uShli:
				regs[o.rd2&31] = regs[o.rs21&31] << (uint64(o.imm2) & 63)
			case uShri:
				regs[o.rd2&31] = regs[o.rs21&31] >> (uint64(o.imm2) & 63)
			case uSrai:
				regs[o.rd2&31] = uint64(int64(regs[o.rs21&31]) >> (uint64(o.imm2) & 63))
			case uSlti:
				if int64(regs[o.rs21&31]) < o.imm2 {
					regs[o.rd2&31] = 1
				} else {
					regs[o.rd2&31] = 0
				}
			case uBeq:
				if regs[o.rs21&31] == regs[o.rs22&31] {
					goto bTaken
				}
			case uBne:
				if regs[o.rs21&31] != regs[o.rs22&31] {
					goto bTaken
				}
			case uBlt:
				if int64(regs[o.rs21&31]) < int64(regs[o.rs22&31]) {
					goto bTaken
				}
			case uBge:
				if int64(regs[o.rs21&31]) >= int64(regs[o.rs22&31]) {
					goto bTaken
				}
			case uBltu:
				if regs[o.rs21&31] < regs[o.rs22&31] {
					goto bTaken
				}
			case uBgeu:
				if regs[o.rs21&31] >= regs[o.rs22&31] {
					goto bTaken
				}
			case uLoad8:
				a := regs[o.rs21&31] + uint64(o.imm2)
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-8 && sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd2&31] = binary.LittleEndian.Uint64(sl.pg[off : off+8])
				} else if si := pn & (pcacheSlots - 1); off <= pageSize-8 && m.ctags[si] == pn+1 {
					p := m.cptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					regs[o.rd2&31] = binary.LittleEndian.Uint64(p[off : off+8])
				} else {
					regs[o.rd2&31] = m.Read(a, 8)
					if p := m.lookup(pn); p != nil && off <= pageSize-8 {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			case uLoad4:
				a := regs[o.rs21&31] + uint64(o.imm2)
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-4 && sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd2&31] = uint64(binary.LittleEndian.Uint32(sl.pg[off : off+4]))
				} else if si := pn & (pcacheSlots - 1); off <= pageSize-4 && m.ctags[si] == pn+1 {
					p := m.cptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					regs[o.rd2&31] = uint64(binary.LittleEndian.Uint32(p[off : off+4]))
				} else {
					regs[o.rd2&31] = m.Read(a, 4)
					if p := m.lookup(pn); p != nil && off <= pageSize-4 {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			case uLoad1:
				a := regs[o.rs21&31] + uint64(o.imm2)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd2&31] = uint64(sl.pg[a&(pageSize-1)])
				} else if si := pn & (pcacheSlots - 1); m.ctags[si] == pn+1 {
					p := m.cptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					regs[o.rd2&31] = uint64(p[a&(pageSize-1)])
				} else {
					regs[o.rd2&31] = m.Read(a, 1)
					if p := m.lookup(pn); p != nil {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			case uStore8:
				a := regs[o.rs21&31] + uint64(o.imm2)
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-8 && sl.tag == pn+1 && sl.epoch == m.epoch {
					binary.LittleEndian.PutUint64(sl.pg[off:off+8], regs[o.rs22&31])
				} else if si := pn & (pcacheSlots - 1); off <= pageSize-8 && m.wtags[si] == pn+1 {
					p := m.wptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					binary.LittleEndian.PutUint64(p[off:off+8], regs[o.rs22&31])
				} else {
					m.Write(a, 8, regs[o.rs22&31])
					if off <= pageSize-8 {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
					}
				}
			case uStore4:
				a := regs[o.rs21&31] + uint64(o.imm2)
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-4 && sl.tag == pn+1 && sl.epoch == m.epoch {
					binary.LittleEndian.PutUint32(sl.pg[off:off+4], uint32(regs[o.rs22&31]))
				} else if si := pn & (pcacheSlots - 1); off <= pageSize-4 && m.wtags[si] == pn+1 {
					p := m.wptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					binary.LittleEndian.PutUint32(p[off:off+4], uint32(regs[o.rs22&31]))
				} else {
					m.Write(a, 4, regs[o.rs22&31])
					if off <= pageSize-4 {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
					}
				}
			case uStore1:
				a := regs[o.rs21&31] + uint64(o.imm2)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if sl.tag == pn+1 && sl.epoch == m.epoch {
					sl.pg[a&(pageSize-1)] = byte(regs[o.rs22&31])
				} else if si := pn & (pcacheSlots - 1); m.wtags[si] == pn+1 {
					p := m.wptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					p[a&(pageSize-1)] = byte(regs[o.rs22&31])
				} else {
					m.Write(a, 1, regs[o.rs22&31])
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
				}
			}
		}
		continue

	bTaken:
		pc = o.target
		done += uint64(o.cum)
		goto taken
	}

	// Fell off the end of the block: resume at the next sequential PC.
	pc = b.end
	done += b.cost
	if b.next == nil {
		if pc >= codeLen {
			err = ErrPCOutOfRange{pc}
			goto out
		}
		b.next = e.blockAt(pc)
	}
	b = b.next
	goto enter

taken:
	if o.succ == nil {
		if pc >= codeLen {
			err = ErrPCOutOfRange{pc}
			goto out
		}
		o.succ = e.blockAt(pc)
	}
	b = o.succ
	goto enter

tail:
	// The remaining budget does not cover the next block whole: retire the
	// leftovers one instruction at a time through Step (identical
	// semantics by contract), which also splits fused pairs cleanly. Step
	// operates on State, so the shadowed pc and retired count are flushed
	// first and reloaded after.
	s.PC = pc
	s.Retired += done - flushed
	flushed = done
	for done < maxInstructions && !s.Halted {
		pc = s.PC
		if pc >= codeLen {
			err = ErrPCOutOfRange{pc}
			goto out
		}
		if err = e.Step(); err != nil {
			pc = s.PC
			goto out
		}
		done++
		flushed++
	}
	pc = s.PC
	goto top

out:
	s.PC = pc
	s.Retired += done - flushed
	return done, err
}

// runObserved is runFast with per-instruction observation woven in: it is
// the shared engine behind RunHooked and RunWarm. Control
// chains superblock to superblock through cached successor pointers
// (taken exits through the exiting op's succ, fall-through through the
// block's next); only dynamic jumps fall back to a cache lookup. A block
// executes on the fast path only when the remaining budget covers it
// whole — the final partial block runs through the per-instruction Step
// reference, which also splits fused pairs at budget boundaries.
//
// hook, if non-nil, observes every instruction (original encoding,
// pre-execution state) before it executes. With warm set, every
// instruction appends one WarmEvent to the warming buffer, flushed
// through flush whenever it fills and before every return.
func (e *Emulator) runObserved(maxInstructions uint64, hook func(pc uint64, ins *isa.Instruction), warm bool, flush func([]WarmEvent)) (uint64, error) {
	s := &e.State
	regs := &s.Regs
	m := s.Mem
	code := e.Prog.Code
	codeLen := uint64(len(code))
	var (
		done  uint64
		b     *block
		buf   []WarmEvent
		slots []memSlot
		ops   []uOp
		o     *uOp
		j     int
		err   error
	)
	if warm {
		if e.warmBuf == nil {
			e.warmBuf = make([]WarmEvent, 0, warmBufCap)
		}
		buf = e.warmBuf[:0]
	}

top:
	if s.Halted || done >= maxInstructions {
		goto out
	}
	if s.PC >= codeLen {
		err = ErrPCOutOfRange{s.PC}
		goto out
	}
	b = e.blockAt(s.PC)

enter:
	if done+b.cost > maxInstructions {
		goto tail
	}
	ops = b.ops
	slots = b.slots
	for j = 0; j < len(ops); j++ {
		o = &ops[j]
		if hook != nil {
			hook(uint64(o.pc), &code[o.pc])
		}
		if warm {
			if len(buf)+2 > cap(buf) {
				flush(buf)
				buf = buf[:0]
			}
			buf = append(buf, WarmEvent{PC: uint64(o.pc)})
		}
		switch o.kind {
		case uNop:
		case uHalt:
			s.Halted = true
			s.PC = uint64(o.pc) + 1
			s.Retired += uint64(o.cum)
			done += uint64(o.cum)
			goto out
		case uMovi:
			regs[o.rd&31] = uint64(o.imm)
		case uMov:
			regs[o.rd&31] = regs[o.rs1&31]
		case uLoadNop:
			if warm {
				ev := &buf[len(buf)-1]
				ev.Kind = WarmLoad
				ev.Aux = regs[o.rs1&31] + uint64(o.imm)
			}
		case uLoad8:
			// Memory ops go through the op's private translation slot
			// first (hot page pinned per static instruction, immune to
			// page-cache aliasing); any miss falls back to the general
			// Read/Write, then re-primes the slot.
			a := regs[o.rs1&31] + uint64(o.imm)
			if warm {
				ev := &buf[len(buf)-1]
				ev.Kind = WarmLoad
				ev.Aux = a
			}
			off := a & (pageSize - 1)
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if off <= pageSize-8 && sl.tag == pn+1 && sl.epoch == m.epoch {
				regs[o.rd&31] = binary.LittleEndian.Uint64(sl.pg[off : off+8])
			} else {
				regs[o.rd&31] = m.Read(a, 8)
				if p := m.lookup(pn); p != nil {
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
				}
			}
		case uLoad4:
			a := regs[o.rs1&31] + uint64(o.imm)
			if warm {
				ev := &buf[len(buf)-1]
				ev.Kind = WarmLoad
				ev.Aux = a
			}
			off := a & (pageSize - 1)
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if off <= pageSize-4 && sl.tag == pn+1 && sl.epoch == m.epoch {
				regs[o.rd&31] = uint64(binary.LittleEndian.Uint32(sl.pg[off : off+4]))
			} else {
				regs[o.rd&31] = m.Read(a, 4)
				if p := m.lookup(pn); p != nil {
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
				}
			}
		case uLoad1:
			a := regs[o.rs1&31] + uint64(o.imm)
			if warm {
				ev := &buf[len(buf)-1]
				ev.Kind = WarmLoad
				ev.Aux = a
			}
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if sl.tag == pn+1 && sl.epoch == m.epoch {
				regs[o.rd&31] = uint64(sl.pg[a&(pageSize-1)])
			} else {
				regs[o.rd&31] = m.Read(a, 1)
				if p := m.lookup(pn); p != nil {
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
				}
			}
		case uStore8:
			a := regs[o.rs1&31] + uint64(o.imm)
			if warm {
				ev := &buf[len(buf)-1]
				ev.Kind = WarmStore
				ev.Aux = a
			}
			off := a & (pageSize - 1)
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if off <= pageSize-8 && sl.tag == pn+1 && sl.epoch == m.epoch {
				binary.LittleEndian.PutUint64(sl.pg[off:off+8], regs[o.rs2&31])
			} else {
				m.Write(a, 8, regs[o.rs2&31])
				if off <= pageSize-8 {
					// ensure after Write is a cheap write-cache hit, and if
					// the write just broke copy-on-write the slot picks up
					// the fresh epoch and the cloned page.
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
				}
			}
		case uStore4:
			a := regs[o.rs1&31] + uint64(o.imm)
			if warm {
				ev := &buf[len(buf)-1]
				ev.Kind = WarmStore
				ev.Aux = a
			}
			off := a & (pageSize - 1)
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if off <= pageSize-4 && sl.tag == pn+1 && sl.epoch == m.epoch {
				binary.LittleEndian.PutUint32(sl.pg[off:off+4], uint32(regs[o.rs2&31]))
			} else {
				m.Write(a, 4, regs[o.rs2&31])
				if off <= pageSize-4 {
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
				}
			}
		case uStore1:
			a := regs[o.rs1&31] + uint64(o.imm)
			if warm {
				ev := &buf[len(buf)-1]
				ev.Kind = WarmStore
				ev.Aux = a
			}
			pn := a >> pageShift
			sl := &slots[o.sIdx]
			if sl.tag == pn+1 && sl.epoch == m.epoch {
				sl.pg[a&(pageSize-1)] = byte(regs[o.rs2&31])
			} else {
				m.Write(a, 1, regs[o.rs2&31])
				sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
			}
		case uJal:
			if warm {
				ev := &buf[len(buf)-1]
				ev.Aux = o.target
				if o.rd == raReg {
					ev.Kind = WarmJalCall
				} else {
					ev.Kind = WarmJal
				}
			}
			if o.rd != 0 {
				regs[o.rd&31] = uint64(o.pc) + 1
			}
			s.PC = o.target
			s.Retired += uint64(o.cum)
			done += uint64(o.cum)
			goto taken
		case uJalIn:
			if warm {
				ev := &buf[len(buf)-1]
				ev.Aux = o.target
				if o.rd == raReg {
					ev.Kind = WarmJalCall
				} else {
					ev.Kind = WarmJal
				}
			}
			if o.rd != 0 {
				regs[o.rd&31] = uint64(o.pc) + 1
			}
		case uJalr:
			// Read rs1 before writing the link: JALR may use its own
			// destination as the jump base.
			a := regs[o.rs1&31] + uint64(o.imm)
			if warm {
				ev := &buf[len(buf)-1]
				ev.Aux = a
				switch {
				case o.rd == raReg:
					ev.Kind = WarmJalrCall
				case o.rs1 == raReg:
					ev.Kind = WarmJalrRet
				default:
					ev.Kind = WarmJalr
				}
			}
			if o.rd != 0 {
				regs[o.rd&31] = uint64(o.pc) + 1
			}
			s.PC = a
			s.Retired += uint64(o.cum)
			done += uint64(o.cum)
			goto top
		case uBeq:
			if regs[o.rs1&31] == regs[o.rs2&31] {
				goto bTaken
			}
			goto bNotTaken
		case uBne:
			if regs[o.rs1&31] != regs[o.rs2&31] {
				goto bTaken
			}
			goto bNotTaken
		case uBlt:
			if int64(regs[o.rs1&31]) < int64(regs[o.rs2&31]) {
				goto bTaken
			}
			goto bNotTaken
		case uBge:
			if int64(regs[o.rs1&31]) >= int64(regs[o.rs2&31]) {
				goto bTaken
			}
			goto bNotTaken
		case uBltu:
			if regs[o.rs1&31] < regs[o.rs2&31] {
				goto bTaken
			}
			goto bNotTaken
		case uBgeu:
			if regs[o.rs1&31] >= regs[o.rs2&31] {
				goto bTaken
			}
			goto bNotTaken
		case uAdd:
			regs[o.rd&31] = regs[o.rs1&31] + regs[o.rs2&31]
		case uSub:
			regs[o.rd&31] = regs[o.rs1&31] - regs[o.rs2&31]
		case uAnd:
			regs[o.rd&31] = regs[o.rs1&31] & regs[o.rs2&31]
		case uOr:
			regs[o.rd&31] = regs[o.rs1&31] | regs[o.rs2&31]
		case uXor:
			regs[o.rd&31] = regs[o.rs1&31] ^ regs[o.rs2&31]
		case uShl:
			regs[o.rd&31] = regs[o.rs1&31] << (regs[o.rs2&31] & 63)
		case uShr:
			regs[o.rd&31] = regs[o.rs1&31] >> (regs[o.rs2&31] & 63)
		case uSra:
			regs[o.rd&31] = uint64(int64(regs[o.rs1&31]) >> (regs[o.rs2&31] & 63))
		case uMul:
			regs[o.rd&31] = regs[o.rs1&31] * regs[o.rs2&31]
		case uAddw:
			regs[o.rd&31] = uint64(uint32(regs[o.rs1&31]) + uint32(regs[o.rs2&31]))
		case uSubw:
			regs[o.rd&31] = uint64(uint32(regs[o.rs1&31]) - uint32(regs[o.rs2&31]))
		case uRolw:
			regs[o.rd&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs1&31]), int(regs[o.rs2&31]&31)))
		case uRorw:
			regs[o.rd&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs1&31]), -int(regs[o.rs2&31]&31)))
		case uAddi:
			regs[o.rd&31] = regs[o.rs1&31] + uint64(o.imm)
		case uAndi:
			regs[o.rd&31] = regs[o.rs1&31] & uint64(o.imm)
		case uOri:
			regs[o.rd&31] = regs[o.rs1&31] | uint64(o.imm)
		case uXori:
			regs[o.rd&31] = regs[o.rs1&31] ^ uint64(o.imm)
		case uShli:
			regs[o.rd&31] = regs[o.rs1&31] << (uint64(o.imm) & 63)
		case uShri:
			regs[o.rd&31] = regs[o.rs1&31] >> (uint64(o.imm) & 63)
		case uSrai:
			regs[o.rd&31] = uint64(int64(regs[o.rs1&31]) >> (uint64(o.imm) & 63))
		case uSlti:
			if int64(regs[o.rs1&31]) < o.imm {
				regs[o.rd&31] = 1
			} else {
				regs[o.rd&31] = 0
			}
		case uAlu:
			regs[o.rd&31] = ALU(o.op, regs[o.rs1&31], regs[o.rs2&31], o.imm)
		case uFused:
			// First half: the ALU or load instruction at o.pc.
			switch o.k1 {
			case uMovi:
				regs[o.rd&31] = uint64(o.imm)
			case uMov:
				regs[o.rd&31] = regs[o.rs1&31]
			case uAdd:
				regs[o.rd&31] = regs[o.rs1&31] + regs[o.rs2&31]
			case uSub:
				regs[o.rd&31] = regs[o.rs1&31] - regs[o.rs2&31]
			case uAnd:
				regs[o.rd&31] = regs[o.rs1&31] & regs[o.rs2&31]
			case uOr:
				regs[o.rd&31] = regs[o.rs1&31] | regs[o.rs2&31]
			case uXor:
				regs[o.rd&31] = regs[o.rs1&31] ^ regs[o.rs2&31]
			case uShl:
				regs[o.rd&31] = regs[o.rs1&31] << (regs[o.rs2&31] & 63)
			case uShr:
				regs[o.rd&31] = regs[o.rs1&31] >> (regs[o.rs2&31] & 63)
			case uSra:
				regs[o.rd&31] = uint64(int64(regs[o.rs1&31]) >> (regs[o.rs2&31] & 63))
			case uMul:
				regs[o.rd&31] = regs[o.rs1&31] * regs[o.rs2&31]
			case uAddw:
				regs[o.rd&31] = uint64(uint32(regs[o.rs1&31]) + uint32(regs[o.rs2&31]))
			case uSubw:
				regs[o.rd&31] = uint64(uint32(regs[o.rs1&31]) - uint32(regs[o.rs2&31]))
			case uRolw:
				regs[o.rd&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs1&31]), int(regs[o.rs2&31]&31)))
			case uRorw:
				regs[o.rd&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs1&31]), -int(regs[o.rs2&31]&31)))
			case uAddi:
				regs[o.rd&31] = regs[o.rs1&31] + uint64(o.imm)
			case uAndi:
				regs[o.rd&31] = regs[o.rs1&31] & uint64(o.imm)
			case uOri:
				regs[o.rd&31] = regs[o.rs1&31] | uint64(o.imm)
			case uXori:
				regs[o.rd&31] = regs[o.rs1&31] ^ uint64(o.imm)
			case uShli:
				regs[o.rd&31] = regs[o.rs1&31] << (uint64(o.imm) & 63)
			case uShri:
				regs[o.rd&31] = regs[o.rs1&31] >> (uint64(o.imm) & 63)
			case uSrai:
				regs[o.rd&31] = uint64(int64(regs[o.rs1&31]) >> (uint64(o.imm) & 63))
			case uSlti:
				if int64(regs[o.rs1&31]) < o.imm {
					regs[o.rd&31] = 1
				} else {
					regs[o.rd&31] = 0
				}
			case uLoad8:
				a := regs[o.rs1&31] + uint64(o.imm)
				if warm {
					ev := &buf[len(buf)-1]
					ev.Kind = WarmLoad
					ev.Aux = a
				}
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-8 && sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd&31] = binary.LittleEndian.Uint64(sl.pg[off : off+8])
				} else if si := pn & (pcacheSlots - 1); off <= pageSize-8 && m.ctags[si] == pn+1 {
					p := m.cptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					regs[o.rd&31] = binary.LittleEndian.Uint64(p[off : off+8])
				} else {
					regs[o.rd&31] = m.Read(a, 8)
					if p := m.lookup(pn); p != nil && off <= pageSize-8 {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			case uLoad4:
				a := regs[o.rs1&31] + uint64(o.imm)
				if warm {
					ev := &buf[len(buf)-1]
					ev.Kind = WarmLoad
					ev.Aux = a
				}
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-4 && sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd&31] = uint64(binary.LittleEndian.Uint32(sl.pg[off : off+4]))
				} else if si := pn & (pcacheSlots - 1); off <= pageSize-4 && m.ctags[si] == pn+1 {
					p := m.cptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					regs[o.rd&31] = uint64(binary.LittleEndian.Uint32(p[off : off+4]))
				} else {
					regs[o.rd&31] = m.Read(a, 4)
					if p := m.lookup(pn); p != nil && off <= pageSize-4 {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			case uLoad1:
				a := regs[o.rs1&31] + uint64(o.imm)
				if warm {
					ev := &buf[len(buf)-1]
					ev.Kind = WarmLoad
					ev.Aux = a
				}
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd&31] = uint64(sl.pg[a&(pageSize-1)])
				} else if si := pn & (pcacheSlots - 1); m.ctags[si] == pn+1 {
					p := m.cptrs[si]
					if sl.tag == pn+1 {
						sl.epoch, sl.pg = m.epoch, p
					}
					regs[o.rd&31] = uint64(p[a&(pageSize-1)])
				} else {
					regs[o.rd&31] = m.Read(a, 1)
					if p := m.lookup(pn); p != nil {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			}
			// Second half: the branch or memory instruction at o.pc+1.
			// The hook (and the warm event) observe it after the first
			// half executed — exactly the state the per-instruction
			// reference paths would see.
			if hook != nil {
				hook(uint64(o.pc)+1, &code[o.pc+1])
			}
			if warm {
				buf = append(buf, WarmEvent{PC: uint64(o.pc) + 1})
			}
			switch o.k2 {
			case uMovi:
				regs[o.rd2&31] = uint64(o.imm2)
			case uMov:
				regs[o.rd2&31] = regs[o.rs21&31]
			case uAdd:
				regs[o.rd2&31] = regs[o.rs21&31] + regs[o.rs22&31]
			case uSub:
				regs[o.rd2&31] = regs[o.rs21&31] - regs[o.rs22&31]
			case uAnd:
				regs[o.rd2&31] = regs[o.rs21&31] & regs[o.rs22&31]
			case uOr:
				regs[o.rd2&31] = regs[o.rs21&31] | regs[o.rs22&31]
			case uXor:
				regs[o.rd2&31] = regs[o.rs21&31] ^ regs[o.rs22&31]
			case uMul:
				regs[o.rd2&31] = regs[o.rs21&31] * regs[o.rs22&31]
			case uShl:
				regs[o.rd2&31] = regs[o.rs21&31] << (regs[o.rs22&31] & 63)
			case uShr:
				regs[o.rd2&31] = regs[o.rs21&31] >> (regs[o.rs22&31] & 63)
			case uSra:
				regs[o.rd2&31] = uint64(int64(regs[o.rs21&31]) >> (regs[o.rs22&31] & 63))
			case uAddw:
				regs[o.rd2&31] = uint64(uint32(regs[o.rs21&31]) + uint32(regs[o.rs22&31]))
			case uSubw:
				regs[o.rd2&31] = uint64(uint32(regs[o.rs21&31]) - uint32(regs[o.rs22&31]))
			case uRolw:
				regs[o.rd2&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs21&31]), int(regs[o.rs22&31]&31)))
			case uRorw:
				regs[o.rd2&31] = uint64(bits.RotateLeft32(uint32(regs[o.rs21&31]), -int(regs[o.rs22&31]&31)))
			case uAddi:
				regs[o.rd2&31] = regs[o.rs21&31] + uint64(o.imm2)
			case uAndi:
				regs[o.rd2&31] = regs[o.rs21&31] & uint64(o.imm2)
			case uOri:
				regs[o.rd2&31] = regs[o.rs21&31] | uint64(o.imm2)
			case uXori:
				regs[o.rd2&31] = regs[o.rs21&31] ^ uint64(o.imm2)
			case uShli:
				regs[o.rd2&31] = regs[o.rs21&31] << (uint64(o.imm2) & 63)
			case uShri:
				regs[o.rd2&31] = regs[o.rs21&31] >> (uint64(o.imm2) & 63)
			case uSrai:
				regs[o.rd2&31] = uint64(int64(regs[o.rs21&31]) >> (uint64(o.imm2) & 63))
			case uSlti:
				if int64(regs[o.rs21&31]) < o.imm2 {
					regs[o.rd2&31] = 1
				} else {
					regs[o.rd2&31] = 0
				}
			case uBeq:
				if regs[o.rs21&31] == regs[o.rs22&31] {
					goto bTaken
				}
				goto bNotTaken
			case uBne:
				if regs[o.rs21&31] != regs[o.rs22&31] {
					goto bTaken
				}
				goto bNotTaken
			case uBlt:
				if int64(regs[o.rs21&31]) < int64(regs[o.rs22&31]) {
					goto bTaken
				}
				goto bNotTaken
			case uBge:
				if int64(regs[o.rs21&31]) >= int64(regs[o.rs22&31]) {
					goto bTaken
				}
				goto bNotTaken
			case uBltu:
				if regs[o.rs21&31] < regs[o.rs22&31] {
					goto bTaken
				}
				goto bNotTaken
			case uBgeu:
				if regs[o.rs21&31] >= regs[o.rs22&31] {
					goto bTaken
				}
				goto bNotTaken
			case uLoad8:
				a := regs[o.rs21&31] + uint64(o.imm2)
				if warm {
					ev := &buf[len(buf)-1]
					ev.Kind = WarmLoad
					ev.Aux = a
				}
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-8 && sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd2&31] = binary.LittleEndian.Uint64(sl.pg[off : off+8])
				} else {
					regs[o.rd2&31] = m.Read(a, 8)
					if p := m.lookup(pn); p != nil {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			case uLoad4:
				a := regs[o.rs21&31] + uint64(o.imm2)
				if warm {
					ev := &buf[len(buf)-1]
					ev.Kind = WarmLoad
					ev.Aux = a
				}
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-4 && sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd2&31] = uint64(binary.LittleEndian.Uint32(sl.pg[off : off+4]))
				} else {
					regs[o.rd2&31] = m.Read(a, 4)
					if p := m.lookup(pn); p != nil {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			case uLoad1:
				a := regs[o.rs21&31] + uint64(o.imm2)
				if warm {
					ev := &buf[len(buf)-1]
					ev.Kind = WarmLoad
					ev.Aux = a
				}
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if sl.tag == pn+1 && sl.epoch == m.epoch {
					regs[o.rd2&31] = uint64(sl.pg[a&(pageSize-1)])
				} else {
					regs[o.rd2&31] = m.Read(a, 1)
					if p := m.lookup(pn); p != nil {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, p
					}
				}
			case uStore8:
				a := regs[o.rs21&31] + uint64(o.imm2)
				if warm {
					ev := &buf[len(buf)-1]
					ev.Kind = WarmStore
					ev.Aux = a
				}
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-8 && sl.tag == pn+1 && sl.epoch == m.epoch {
					binary.LittleEndian.PutUint64(sl.pg[off:off+8], regs[o.rs22&31])
				} else {
					m.Write(a, 8, regs[o.rs22&31])
					if off <= pageSize-8 {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
					}
				}
			case uStore4:
				a := regs[o.rs21&31] + uint64(o.imm2)
				if warm {
					ev := &buf[len(buf)-1]
					ev.Kind = WarmStore
					ev.Aux = a
				}
				off := a & (pageSize - 1)
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if off <= pageSize-4 && sl.tag == pn+1 && sl.epoch == m.epoch {
					binary.LittleEndian.PutUint32(sl.pg[off:off+4], uint32(regs[o.rs22&31]))
				} else {
					m.Write(a, 4, regs[o.rs22&31])
					if off <= pageSize-4 {
						sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
					}
				}
			case uStore1:
				a := regs[o.rs21&31] + uint64(o.imm2)
				if warm {
					ev := &buf[len(buf)-1]
					ev.Kind = WarmStore
					ev.Aux = a
				}
				pn := a >> pageShift
				sl := &slots[o.sIdx]
				if sl.tag == pn+1 && sl.epoch == m.epoch {
					sl.pg[a&(pageSize-1)] = byte(regs[o.rs22&31])
				} else {
					m.Write(a, 1, regs[o.rs22&31])
					sl.epoch, sl.tag, sl.pg = m.epoch, pn+1, m.ensure(pn)
				}
			}
		}
		continue

	bNotTaken:
		// Not-taken branch: execution continues in-block (the superblock
		// decoded through the fall-through path).
		if warm {
			ev := &buf[len(buf)-1]
			ev.Kind = WarmCondNotTaken
			ev.Aux = ev.PC + 1
		}
		continue

	bTaken:
		if warm {
			ev := &buf[len(buf)-1]
			ev.Kind = WarmCondTaken
			ev.Aux = o.target
		}
		s.PC = o.target
		s.Retired += uint64(o.cum)
		done += uint64(o.cum)
		goto taken
	}

	// Fell off the end of the block: resume at the next sequential PC.
	s.PC = b.end
	s.Retired += b.cost
	done += b.cost
	if b.next == nil {
		if s.PC >= codeLen {
			err = ErrPCOutOfRange{s.PC}
			goto out
		}
		b.next = e.blockAt(s.PC)
	}
	b = b.next
	goto enter

taken:
	if o.succ == nil {
		if s.PC >= codeLen {
			err = ErrPCOutOfRange{s.PC}
			goto out
		}
		o.succ = e.blockAt(s.PC)
	}
	b = o.succ
	goto enter

tail:
	// The remaining budget does not cover the next block whole: retire the
	// leftovers one instruction at a time through Step (identical
	// semantics by contract), which also splits fused pairs cleanly.
	for done < maxInstructions && !s.Halted {
		if s.PC >= codeLen {
			err = ErrPCOutOfRange{s.PC}
			goto out
		}
		if hook != nil {
			hook(s.PC, &code[s.PC])
		}
		if warm {
			if len(buf) >= cap(buf) {
				flush(buf)
				buf = buf[:0]
			}
			buf = append(buf, warmEventFor(s, s.PC, &code[s.PC]))
		}
		if err = e.Step(); err != nil {
			goto out
		}
		done++
	}
	goto top

out:
	if warm {
		if len(buf) > 0 {
			flush(buf)
		}
		e.warmBuf = buf[:0]
	}
	return done, err
}
