//go:build !race

package emu

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
