package stats

import (
	"math"
	"testing"
)

func TestMeanStd(t *testing.T) {
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
	cases := []struct {
		name      string
		xs        []float64
		mean, std float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3.5}, 3.5, 0},
		{"constant", []float64{2, 2, 2, 2}, 2, 0},
		{"pair", []float64{1, 3}, 2, math.Sqrt2},
		{"known", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 5, math.Sqrt(32.0 / 7.0)},
	}
	for _, c := range cases {
		mean, std := MeanStd(c.xs)
		if !approx(mean, c.mean) || !approx(std, c.std) {
			t.Errorf("%s: MeanStd = (%g, %g), want (%g, %g)", c.name, mean, std, c.mean, c.std)
		}
	}
}
