package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestHistBucketing(t *testing.T) {
	var h Hist
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 22, HistBuckets - 1}, {^uint64(0), HistBuckets - 1},
	}
	for _, c := range cases {
		before := h.Buckets[c.bucket]
		h.Observe(c.v)
		if h.Buckets[c.bucket] != before+1 {
			t.Errorf("Observe(%d): bucket %d not incremented", c.v, c.bucket)
		}
	}
	if h.N != uint64(len(cases)) {
		t.Errorf("N = %d, want %d", h.N, len(cases))
	}
	if h.Max != ^uint64(0) {
		t.Errorf("Max = %d, want max uint64", h.Max)
	}
}

func TestHistMean(t *testing.T) {
	var h Hist
	if h.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", h.Mean())
	}
	h.Observe(10)
	h.Observe(20)
	if h.Mean() != 15 {
		t.Errorf("Mean = %v, want 15", h.Mean())
	}
}

func TestBucketBounds(t *testing.T) {
	for i := 1; i < HistBuckets-1; i++ {
		lo, hi := BucketBounds(i)
		if lo != 1<<(i-1) || hi != 1<<i-1 {
			t.Errorf("BucketBounds(%d) = [%d,%d], want [%d,%d]", i, lo, hi, 1<<(i-1), 1<<i-1)
		}
	}
	if lo, hi := BucketBounds(0); lo != 0 || hi != 0 {
		t.Errorf("BucketBounds(0) = [%d,%d], want [0,0]", lo, hi)
	}
	if _, hi := BucketBounds(HistBuckets - 1); hi != ^uint64(0) {
		t.Errorf("last bucket must be open-ended, hi = %d", hi)
	}
}

func TestRegistryDumpOrderAndKinds(t *testing.T) {
	var a, b uint64 = 7, 3
	var h Hist
	h.Observe(0)
	h.Observe(5)

	r := New()
	r.Scalar("core.a", "counter a", &a)
	r.Hist("core.h", "histogram h", &h)
	r.Formula("core.ratio", "a per b", func() float64 { return float64(a) / float64(b) })

	d := r.Dump()
	if len(d.Values) != 3 {
		t.Fatalf("dump has %d values, want 3", len(d.Values))
	}
	if d.Values[0].Name != "core.a" || d.Values[1].Name != "core.h" || d.Values[2].Name != "core.ratio" {
		t.Fatalf("dump order != registration order: %+v", d.Values)
	}
	if d.Values[0].Scalar != 7 {
		t.Errorf("scalar = %d, want 7", d.Values[0].Scalar)
	}
	if d.Values[2].Float != 7.0/3.0 {
		t.Errorf("formula = %v", d.Values[2].Float)
	}
	dist := d.Values[1].Dist
	if dist == nil || dist.Count != 2 || dist.Sum != 5 {
		t.Fatalf("dist snapshot wrong: %+v", dist)
	}
	if len(dist.Buckets) != 2 {
		t.Fatalf("want 2 non-empty buckets, got %+v", dist.Buckets)
	}

	// The dump is a snapshot: later increments must not leak into it.
	a = 100
	if d.Values[0].Scalar != 7 {
		t.Error("dump aliases the live counter")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	var v uint64
	r := New()
	r.Scalar("x", "", &v)
	r.Scalar("x", "", &v)
}

func TestDumpJSONDeterministic(t *testing.T) {
	mk := func() *Dump {
		var v uint64 = 42
		var h Hist
		h.Observe(3)
		r := New()
		r.Scalar("s", "scalar", &v)
		r.Hist("h", "hist", &h)
		r.Formula("f", "formula", func() float64 { return 1.5 })
		return r.Dump()
	}
	j1, err := mk().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := mk().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatalf("JSON not deterministic:\n%s\n---\n%s", j1, j2)
	}
	var round Dump
	if err := json.Unmarshal([]byte(j1), &round); err != nil {
		t.Fatal(err)
	}
	if len(round.Values) != 3 {
		t.Fatalf("round trip lost values: %+v", round)
	}
}

func TestDumpText(t *testing.T) {
	var v uint64 = 9
	var h Hist
	h.Observe(2)
	r := New()
	r.Scalar("sim.counter", "a counter", &v)
	r.Hist("sim.dist", "a distribution", &h)
	text := r.Dump().Text()
	for _, want := range []string{"sim.counter", "# a counter", "sim.dist::count", "sim.dist::[2,3]"} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}
}

func TestDumpGet(t *testing.T) {
	var v uint64 = 5
	r := New()
	r.Scalar("here", "", &v)
	d := r.Dump()
	if got, ok := d.Get("here"); !ok || got.Scalar != 5 {
		t.Errorf("Get(here) = %+v, %v", got, ok)
	}
	if _, ok := d.Get("missing"); ok {
		t.Error("Get(missing) found something")
	}
}

// TestObserveAllocs pins the hot-loop property: Observe performs no heap
// allocation.
func TestObserveAllocs(t *testing.T) {
	var h Hist
	avg := testing.AllocsPerRun(100, func() {
		h.Observe(17)
	})
	if avg != 0 {
		t.Fatalf("Hist.Observe allocates: %v allocs/op", avg)
	}
}
