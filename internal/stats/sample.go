package stats

import "math"

// MeanStd returns the sample mean and the Bessel-corrected (n-1) sample
// standard deviation of xs. It underlies SMARTS-style sampling confidence
// intervals (half-width = 1.96*std/sqrt(n) at 95%). Fewer than two samples
// have no dispersion estimate: std is 0, and mean is 0 for empty input.
func MeanStd(xs []float64) (mean, std float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(n-1))
}
