// Package stats is a gem5-style hardware-counter registry for the
// simulator: fixed-slot scalar counters, power-of-two-bucket histograms,
// and derived formulas (rates, ratios, per-kilo-instruction figures).
//
// The design splits responsibilities so the hot loop pays nothing for
// observability:
//
//   - Counters live as plain uint64 fields (and Hist values) inline in the
//     component structs that own them (pipeline.Stats, mem.CacheStats,
//     taint.Stats, ...). The per-cycle loops increment them with ordinary
//     struct-field adds — no map lookups, no interface calls, no
//     allocation per event.
//   - A Registry is built once at construction (pipeline.New registers the
//     core, memory system, predictors, and the attached policy). It only
//     records names, descriptions, and pointers to those fields.
//   - Dump snapshots the registry into a serializable, deterministic form
//     after the run; formulas are evaluated exactly once, at dump time.
//
// Registration order is dump order, so two runs of the same configuration
// produce byte-identical text and JSON output.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"strings"
)

// HistBuckets is the fixed bucket count of every histogram. Bucket 0 holds
// observations of exactly 0; bucket i (i >= 1) holds values in
// [2^(i-1), 2^i); the last bucket absorbs everything larger.
const HistBuckets = 24

// Hist is a power-of-two-bucket histogram. The zero value is ready to use;
// Observe is a handful of integer operations and never allocates, so
// histograms can sit inline in hot-loop stats structs.
type Hist struct {
	N       uint64 // observations
	Sum     uint64 // sum of observed values
	Max     uint64 // largest observed value
	Buckets [HistBuckets]uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	i := bits.Len64(v) // 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.Buckets[i]++
}

// Mean returns the average observed value (0 when empty).
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// BucketBounds returns the closed value range [lo, hi] covered by bucket i.
// The last bucket is open-ended; its hi is the maximum uint64.
func BucketBounds(i int) (lo, hi uint64) {
	switch {
	case i <= 0:
		return 0, 0
	case i >= HistBuckets-1:
		return 1 << (HistBuckets - 2), ^uint64(0)
	default:
		return 1 << (i - 1), 1<<i - 1
	}
}

// entryKind discriminates registry entries.
type entryKind uint8

const (
	kindScalar entryKind = iota
	kindFormula
	kindHist
)

type entry struct {
	name, desc string
	kind       entryKind
	scalar     *uint64
	hist       *Hist
	formula    func() float64
}

// Registry holds descriptors for counters owned elsewhere. Build it once at
// construction; it is not safe for concurrent registration and never
// touched by the simulation loop.
type Registry struct {
	entries []entry
	names   map[string]bool
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) add(e entry) {
	if r.names[e.name] {
		panic(fmt.Sprintf("stats: duplicate registration of %q", e.name))
	}
	r.names[e.name] = true
	r.entries = append(r.entries, e)
}

// Scalar registers a counter field. The pointer must stay valid for the
// registry's lifetime (counters live inline in long-lived component
// structs).
func (r *Registry) Scalar(name, desc string, v *uint64) {
	if v == nil {
		panic(fmt.Sprintf("stats: nil scalar %q", name))
	}
	r.add(entry{name: name, desc: desc, kind: kindScalar, scalar: v})
}

// Hist registers a histogram field.
func (r *Registry) Hist(name, desc string, h *Hist) {
	if h == nil {
		panic(fmt.Sprintf("stats: nil histogram %q", name))
	}
	r.add(entry{name: name, desc: desc, kind: kindHist, hist: h})
}

// Formula registers a derived statistic, evaluated at Dump time. Formulas
// must be deterministic functions of registered counters (guard divisions
// by zero; NaN and Inf would break the deterministic renderings).
func (r *Registry) Formula(name, desc string, f func() float64) {
	if f == nil {
		panic(fmt.Sprintf("stats: nil formula %q", name))
	}
	r.add(entry{name: name, desc: desc, kind: kindFormula, formula: f})
}

// Len reports the number of registered statistics.
func (r *Registry) Len() int { return len(r.entries) }

// Bucket is one non-empty histogram bucket in a dump.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// DistValue is a histogram snapshot. Only non-empty buckets are kept.
type DistValue struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Value is one dumped statistic.
type Value struct {
	Name string `json:"name"`
	Desc string `json:"desc,omitempty"`
	// Kind is "scalar", "formula", or "dist".
	Kind   string     `json:"kind"`
	Scalar uint64     `json:"scalar,omitempty"`
	Float  float64    `json:"float,omitempty"`
	Dist   *DistValue `json:"dist,omitempty"`
}

// Dump is a deterministic snapshot of a registry: values in registration
// order, formulas evaluated. It is fully detached from the live counters.
// Engine, when set by the caller (spt stamps its EngineVersion), versions
// the JSON form so archived counter dumps are distinguishable across code
// changes.
type Dump struct {
	Engine string  `json:"engine,omitempty"`
	Values []Value `json:"values"`
}

// Dump snapshots every registered statistic.
func (r *Registry) Dump() *Dump {
	d := &Dump{Values: make([]Value, 0, len(r.entries))}
	for _, e := range r.entries {
		v := Value{Name: e.name, Desc: e.desc}
		switch e.kind {
		case kindScalar:
			v.Kind = "scalar"
			v.Scalar = *e.scalar
		case kindFormula:
			v.Kind = "formula"
			v.Float = e.formula()
		case kindHist:
			v.Kind = "dist"
			h := e.hist
			dv := &DistValue{Count: h.N, Sum: h.Sum, Max: h.Max, Mean: h.Mean()}
			for i, n := range h.Buckets {
				if n == 0 {
					continue
				}
				lo, hi := BucketBounds(i)
				dv.Buckets = append(dv.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
			}
			v.Dist = dv
		}
		d.Values = append(d.Values, v)
	}
	return d
}

// Get returns the dumped value with the given name.
func (d *Dump) Get(name string) (Value, bool) {
	for _, v := range d.Values {
		if v.Name == name {
			return v, true
		}
	}
	return Value{}, false
}

// JSON renders the dump as indented JSON with a trailing newline. The
// output is byte-identical for identical counter values (slice order is
// registration order; no maps are involved).
func (d *Dump) JSON() (string, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// bucketLabel renders a bucket range in the gem5 distribution style.
func bucketLabel(b Bucket) string {
	switch {
	case b.Lo == b.Hi:
		return fmt.Sprintf("[%d]", b.Lo)
	case b.Hi == ^uint64(0):
		return fmt.Sprintf("[%d,+)", b.Lo)
	default:
		return fmt.Sprintf("[%d,%d]", b.Lo, b.Hi)
	}
}

// WriteText renders the dump in the gem5 stats.txt style: one counter per
// line, `name value # description`, with histogram buckets indented under
// their summary lines.
func (d *Dump) WriteText(w io.Writer) error {
	for _, v := range d.Values {
		var err error
		switch v.Kind {
		case "scalar":
			_, err = fmt.Fprintf(w, "%-42s %14d  # %s\n", v.Name, v.Scalar, v.Desc)
		case "formula":
			_, err = fmt.Fprintf(w, "%-42s %14.4f  # %s\n", v.Name, v.Float, v.Desc)
		case "dist":
			if _, err = fmt.Fprintf(w, "%-42s %14d  # %s (mean %.2f, max %d)\n",
				v.Name+"::count", v.Dist.Count, v.Desc, v.Dist.Mean, v.Dist.Max); err != nil {
				return err
			}
			for _, b := range v.Dist.Buckets {
				if _, err = fmt.Fprintf(w, "%-42s %14d\n", v.Name+"::"+bucketLabel(b), b.Count); err != nil {
					return err
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Text renders the dump as a string (see WriteText).
func (d *Dump) Text() string {
	var b strings.Builder
	// strings.Builder writes cannot fail.
	_ = d.WriteText(&b)
	return b.String()
}
