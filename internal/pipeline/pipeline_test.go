package pipeline_test

import (
	"math/rand"
	"testing"

	"spt/internal/asm"
	"spt/internal/emu"
	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/workloads"
)

func newCore(t *testing.T, p *isa.Program, model pipeline.AttackModel) *pipeline.Core {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Model = model
	c, err := pipeline.New(cfg, p, mem.NewHierarchy(mem.DefaultHierarchyConfig()), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runToHalt(t *testing.T, c *pipeline.Core) {
	t.Helper()
	if err := c.Run(50_000_000, 200_000_000); err != nil {
		t.Fatal(err)
	}
	if !c.Finished() {
		t.Fatal("program did not finish")
	}
}

// checkAgainstEmulator runs p on both the OoO core and the functional
// emulator and requires identical final architectural state.
func checkAgainstEmulator(t *testing.T, p *isa.Program, model pipeline.AttackModel) *pipeline.Core {
	t.Helper()
	c := newCore(t, p, model)
	runToHalt(t, c)

	e := emu.New(p)
	if _, err := e.Run(60_000_000); err != nil {
		t.Fatal(err)
	}
	if !e.State.Halted {
		t.Fatal("emulator did not halt")
	}
	if c.Stats.Retired != e.State.Retired {
		t.Errorf("retired %d instructions, emulator executed %d", c.Stats.Retired, e.State.Retired)
	}
	coreRegs := c.ArchRegs()
	for r := 0; r < isa.NumRegs; r++ {
		if coreRegs[r] != e.State.Regs[r] {
			t.Errorf("r%d = %#x, emulator has %#x", r, coreRegs[r], e.State.Regs[r])
		}
	}
	// Compare the memory the program touched.
	for _, seg := range p.Data {
		for i := range seg.Bytes {
			addr := seg.Addr + uint64(i)
			if got, want := c.Mem.ByteAt(addr), e.State.Mem.ByteAt(addr); got != want {
				t.Fatalf("mem[%#x] = %#x, emulator has %#x", addr, got, want)
			}
		}
	}
	return c
}

func TestSimpleLoopMatchesEmulator(t *testing.T) {
	p := asm.MustAssemble("loop", `
  movi r1, 1000
  movi r2, 0
top:
  add r2, r2, r1
  addi r1, r1, -1
  bne r1, r0, top
  halt
`)
	c := checkAgainstEmulator(t, p, pipeline.Futuristic)
	if c.Stats.IPC() < 1.0 {
		t.Errorf("unsafe baseline IPC = %.2f, expected > 1 for a tight loop", c.Stats.IPC())
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	p := asm.MustAssemble("stlf", `
  movi r1, 0x4000
  movi r2, 1234
  st r2, 0(r1)
  ld r3, 0(r1)
  addi r4, r3, 1
  halt
`)
	c := checkAgainstEmulator(t, p, pipeline.Futuristic)
	if c.Stats.STLForwards == 0 {
		t.Error("expected at least one store-to-load forward")
	}
}

func TestNarrowForwarding(t *testing.T) {
	p := asm.MustAssemble("narrow", `
  movi r1, 0x4000
  movi r2, 0x1122334455667788
  st r2, 0(r1)
  ldb r3, 3(r1)
  ldw r4, 4(r1)
  halt
`)
	checkAgainstEmulator(t, p, pipeline.Futuristic)
}

func TestPartialOverlapWaitsForStore(t *testing.T) {
	// Byte store followed by a wider load overlapping it: the load cannot
	// forward and must wait for the store to retire.
	p := asm.MustAssemble("partial", `
  movi r1, 0x4000
  movi r2, 0xAB
  stb r2, 2(r1)
  ld r3, 0(r1)
  halt
`)
	checkAgainstEmulator(t, p, pipeline.Futuristic)
}

func TestBranchMispredictRecovery(t *testing.T) {
	// Data-dependent unpredictable-ish branch pattern.
	p := asm.MustAssemble("misp", `
  movi r1, 200
  movi r2, 0
  movi r5, 12345
top:
  ; xorshift-style "random" bit
  shli r6, r5, 13
  xor r5, r5, r6
  shri r6, r5, 7
  xor r5, r5, r6
  andi r6, r5, 1
  beq r6, r0, skip
  addi r2, r2, 7
skip:
  addi r1, r1, -1
  bne r1, r0, top
  halt
`)
	c := checkAgainstEmulator(t, p, pipeline.Futuristic)
	if c.Stats.BranchMispredicts == 0 {
		t.Error("expected some mispredictions on pseudo-random branches")
	}
}

func TestCallReturnThroughRAS(t *testing.T) {
	p := asm.MustAssemble("calls", `
  movi r10, 0
  movi r5, 50
top:
  jal ra, addone
  addi r5, r5, -1
  bne r5, r0, top
  halt
addone:
  addi r10, r10, 1
  jalr r0, 0(ra)
`)
	c := checkAgainstEmulator(t, p, pipeline.Futuristic)
	regs := c.ArchRegs()
	if regs[10] != 50 {
		t.Fatalf("r10 = %d, want 50", regs[10])
	}
}

func TestMemoryDependenceViolation(t *testing.T) {
	// A store whose address arrives late (dependent on a slow load) aliases
	// a younger load: the load speculates, then squashes.
	p := asm.MustAssemble("violation", `
  movi r1, 0x4000
  movi r9, 0x5000
  movi r2, 0x4000
  st r2, 0(r9)        ; mem[0x5000] = 0x4000
  movi r4, 77
  st r4, 0(r1)        ; mem[0x4000] = 77
  movi r3, 0
  ld r5, 0(r9)        ; r5 = 0x4000 (slow: cold miss)
  movi r6, 99
  st r6, 0(r5)        ; store to 0x4000, address known late
  ld r7, 0(r1)        ; aliases! speculates to 77, must squash, re-read 99
  add r8, r7, r0
  halt
`)
	c := checkAgainstEmulator(t, p, pipeline.Futuristic)
	regs := c.ArchRegs()
	if regs[7] != 99 {
		t.Fatalf("r7 = %d, want 99 (violation not repaired)", regs[7])
	}
	if c.Stats.MemViolations == 0 {
		t.Error("expected a memory-dependence violation")
	}
}

func TestIndirectJumpTable(t *testing.T) {
	p := asm.MustAssemble("indirect", `
  movi r7, 20
  movi r10, 0
top:
  andi r2, r7, 1
  movi r3, 11       ; even -> pc 11 (addtwo)
  movi r4, 13       ; odd  -> pc 13 (addfive)
  beq r2, r0, even
  mov r3, r4
even:
  jalr ra, 0(r3)
  addi r7, r7, -1
  bne r7, r0, top
  halt
addtwo:
  addi r10, r10, 2
  jalr r0, 0(ra)
addfive:
  addi r10, r10, 5
  jalr r0, 0(ra)
`)
	c := checkAgainstEmulator(t, p, pipeline.Futuristic)
	regs := c.ArchRegs()
	if regs[10] != 10*2+10*5 {
		t.Fatalf("r10 = %d, want 70", regs[10])
	}
}

func TestZeroRegisterNeverWritten(t *testing.T) {
	p := asm.MustAssemble("zero", `
  movi r0, 99
  addi r0, r0, 5
  mov r1, r0
  halt
`)
	c := checkAgainstEmulator(t, p, pipeline.Futuristic)
	if c.ArchRegs()[0] != 0 || c.ArchRegs()[1] != 0 {
		t.Fatal("zero register corrupted")
	}
}

func TestRandomProgramsMatchEmulatorFuturistic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		p := workloads.RandomProgram(rng.Int63(), 40+rng.Intn(120))
		checkAgainstEmulator(t, p, pipeline.Futuristic)
		if t.Failed() {
			t.Fatalf("trial %d failed (program %s)", trial, p.Name)
		}
	}
}

func TestRandomProgramsMatchEmulatorSpectre(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		p := workloads.RandomProgram(rng.Int63(), 40+rng.Intn(120))
		checkAgainstEmulator(t, p, pipeline.Spectre)
		if t.Failed() {
			t.Fatalf("trial %d failed (program %s)", trial, p.Name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := pipeline.DefaultConfig()
	bad.PhysRegs = 10
	if _, err := pipeline.New(bad, asm.MustAssemble("x", "halt"), mem.NewHierarchy(mem.DefaultHierarchyConfig()), nil); err == nil {
		t.Fatal("accepted impossible config")
	}
	bad2 := pipeline.DefaultConfig()
	bad2.ROBSize = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("accepted zero ROB")
	}
	bad3 := pipeline.DefaultConfig()
	bad3.FetchWidth = 0
	if err := bad3.Validate(); err == nil {
		t.Fatal("accepted zero width")
	}
}

func TestLivelockDetection(t *testing.T) {
	// An infinite loop must hit the cycle bound, not hang.
	p := asm.MustAssemble("inf", "top:\n jal r0, top\n halt")
	c := newCore(t, p, pipeline.Futuristic)
	err := c.Run(1<<62, 100_000)
	if err != nil {
		t.Fatalf("bounded run errored: %v", err)
	}
	if c.Finished() {
		t.Fatal("infinite loop finished?!")
	}
	if c.Stats.Cycles < 100_000 {
		t.Fatalf("stopped early: %d cycles", c.Stats.Cycles)
	}
}

func TestColdMissDominatesTightPointerChase(t *testing.T) {
	// Build a pointer chain; chasing it is latency-bound, so IPC must be
	// well under 1.
	b := asm.NewBuilder("chase")
	const n = 4096
	base := uint64(0x100000)
	quads := make([]uint64, n)
	perm := rand.New(rand.NewSource(5)).Perm(n)
	// next[i] = address of next element (a random cycle).
	for i := 0; i < n; i++ {
		quads[perm[i]] = base + uint64(perm[(i+1)%n])*8
	}
	b.DataQuads(base, quads)
	b.Movi(1, int64(base))
	b.Movi(2, 3000)
	b.Label("top")
	b.Ld(1, 1, 0)
	b.OpI(isa.ADDI, 2, 2, -1)
	b.Bne(2, isa.Zero, "top")
	b.Halt()
	p := b.MustBuild()

	c := newCore(t, p, pipeline.Futuristic)
	runToHalt(t, c)
	if ipc := c.Stats.IPC(); ipc > 0.5 {
		t.Fatalf("pointer chase IPC = %.2f, expected memory-bound (< 0.5)", ipc)
	}
}

func TestVPStatsSane(t *testing.T) {
	p := asm.MustAssemble("vp", `
  movi r1, 100
top:
  addi r1, r1, -1
  bne r1, r0, top
  halt
`)
	for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		c := newCore(t, p, model)
		runToHalt(t, c)
		if c.Stats.Retired == 0 || c.Stats.Cycles == 0 {
			t.Fatalf("%v: empty stats", model)
		}
	}
}

// TestNarrowConfigsMatchEmulator: correctness must not depend on the
// default geometry. Tiny windows and widths stress structural-hazard
// paths (ROB/RS/LSQ full, single-issue, one mem port).
func TestNarrowConfigsMatchEmulator(t *testing.T) {
	configs := []pipeline.Config{
		func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.FetchWidth, c.RenameWidth, c.IssueWidth, c.RetireWidth = 1, 1, 1, 1
			c.ALUs, c.MemPorts = 1, 1
			return c
		}(),
		func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.ROBSize, c.RSSize, c.LQSize, c.SQSize = 8, 4, 2, 2
			c.PhysRegs = 64
			return c
		}(),
		func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.FetchBufferSize, c.FrontendDepth = 2, 12
			return c
		}(),
	}
	rng := rand.New(rand.NewSource(606))
	for ci, cfg := range configs {
		for trial := 0; trial < 8; trial++ {
			p := workloads.RandomProgram(rng.Int63(), 50)
			e := emu.New(p)
			if _, err := e.Run(10_000_000); err != nil {
				t.Fatal(err)
			}
			c, err := pipeline.New(cfg, p, mem.NewHierarchy(mem.DefaultHierarchyConfig()), nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Run(20_000_000, 400_000_000); err != nil {
				t.Fatalf("config %d trial %d: %v", ci, trial, err)
			}
			if !c.Finished() {
				t.Fatalf("config %d trial %d: did not finish", ci, trial)
			}
			regs := c.ArchRegs()
			for r := 0; r < isa.NumRegs; r++ {
				if regs[r] != e.State.Regs[r] {
					t.Fatalf("config %d trial %d: r%d = %#x, want %#x", ci, trial, r, regs[r], e.State.Regs[r])
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("config %d trial %d: %v", ci, trial, err)
			}
		}
	}
}
