package pipeline

import "spt/internal/isa"

// renameDispatch moves instructions from the fetch buffer through rename
// into the ROB, RS, and LSQ, stopping at any structural hazard. ROB entries
// are written in place into the ring slot — the steady-state loop performs
// no per-instruction allocation.
func (c *Core) renameDispatch() {
	for n := 0; n < c.Cfg.RenameWidth; n++ {
		if c.fbLen == 0 {
			return
		}
		fe := c.fbAt(0)
		if fe.readyCycle > c.cycle {
			return
		}
		if c.robLen >= c.Cfg.ROBSize {
			return
		}
		ins := fe.ins
		needsRS := opNeedsExecution(ins)
		if needsRS && c.rsCount >= c.Cfg.RSSize {
			return
		}
		if ins.IsLoad() && c.lqLen >= c.Cfg.LQSize {
			return
		}
		if ins.IsStore() && c.sqLen >= c.Cfg.SQSize {
			return
		}
		if ins.HasDest() && len(c.freeList) == 0 {
			return
		}
		// fe stays readable after the pop: the slot is only recycled by the
		// fetch stage, which runs after rename within the cycle.
		c.fbPopHead()

		c.seq++
		c.Stats.Renamed++
		di := c.robPush()
		di.Seq = c.seq
		di.RenameCycle = c.cycle
		di.PC = fe.pc
		di.Ins = ins
		di.IsLd = ins.IsLoad()
		di.IsSt = ins.IsStore()
		di.MemSz = uint64(ins.MemSize())
		di.Src1, di.Src2, di.Dst, di.OldDst = NoReg, NoReg, NoReg, NoReg
		di.IsCF = ins.IsControlFlow()
		di.Cp = fe.cp
		di.HasCp = fe.hasCp
		di.HistAt = fe.histAt
		di.RasAt = fe.rasAt

		// Rename sources.
		var srcs [2]isa.Reg
		list := ins.SrcRegs(srcs[:0])
		if len(list) > 0 {
			di.Src1 = c.rat[list[0]]
		}
		if len(list) > 1 {
			di.Src2 = c.rat[list[1]]
		}

		// Rename destination.
		if ins.HasDest() {
			p := c.freeList[len(c.freeList)-1]
			c.freeList = c.freeList[:len(c.freeList)-1]
			di.OldDst = c.rat[ins.Rd]
			c.rat[ins.Rd] = p
			di.Dst = p
			c.prfReady[p] = false
		}

		// Instructions with no execution step complete at dispatch.
		switch ins.Op {
		case isa.NOP, isa.HALT:
			di.Done = true
			di.DoneCycle = c.cycle
		case isa.JAL:
			// Direct jump: target was known at fetch, the link value is
			// PC+1. No execution or resolution effects are needed.
			if di.Dst != NoReg {
				c.prf[di.Dst] = fe.pc + 1
				c.prfReady[di.Dst] = true
			}
			di.Done = true
			di.DoneCycle = c.cycle
			di.OutcomeKnown = true
			di.ActualTaken = true
			di.ActualTarget = fe.pc + uint64(ins.Imm)
			di.Resolved = true
		}

		if needsRS {
			di.Dispatched = true
			c.rsCount++
			c.rsList = append(c.rsList, rsRef{di: di, seq: di.Seq})
		}
		if di.IsCF && !di.Resolved {
			c.cfUnresolved++
		}
		if di.IsLd || di.IsSt {
			c.memIncomplete++
		}
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, di, "rename")
		}
		if di.IsLd {
			c.lqPush(di)
		}
		if di.IsSt {
			c.sqPush(di)
		}
		if c.Pol != nil {
			c.Pol.OnRename(di)
		}
	}
}

// opNeedsExecution reports whether the op occupies an RS slot and an
// execution unit.
func opNeedsExecution(ins isa.Instruction) bool {
	switch ins.Op {
	case isa.NOP, isa.HALT, isa.JAL:
		return false
	}
	return true
}
