package pipeline

import "spt/internal/isa"

// renameDispatch moves instructions from the fetch buffer through rename
// into the ROB, RS, and LSQ, stopping at any structural hazard.
func (c *Core) renameDispatch() {
	for n := 0; n < c.Cfg.RenameWidth; n++ {
		if len(c.fetchBuf) == 0 {
			return
		}
		fe := c.fetchBuf[0]
		if fe.readyCycle > c.cycle {
			return
		}
		if len(c.rob) >= c.Cfg.ROBSize {
			return
		}
		ins := fe.ins
		needsRS := opNeedsExecution(ins)
		if needsRS && c.rsCount >= c.Cfg.RSSize {
			return
		}
		if ins.IsLoad() && len(c.lq) >= c.Cfg.LQSize {
			return
		}
		if ins.IsStore() && len(c.sq) >= c.Cfg.SQSize {
			return
		}
		if ins.HasDest() && len(c.freeList) == 0 {
			return
		}
		c.fetchBuf = c.fetchBuf[1:]

		c.seq++
		di := &DynInst{
			Seq:    c.seq,
			PC:     fe.pc,
			Ins:    ins,
			Src1:   NoReg,
			Src2:   NoReg,
			Dst:    NoReg,
			OldDst: NoReg,
			IsCF:   ins.IsControlFlow(),
			Cp:     fe.cp,
			HasCp:  fe.hasCp,
			HistAt: fe.histAt,
			RasAt:  fe.rasAt,
		}

		// Rename sources.
		var srcs [2]isa.Reg
		list := ins.SrcRegs(srcs[:0])
		if len(list) > 0 {
			di.Src1 = c.rat[list[0]]
		}
		if len(list) > 1 {
			di.Src2 = c.rat[list[1]]
		}

		// Rename destination.
		if ins.HasDest() {
			p := c.freeList[len(c.freeList)-1]
			c.freeList = c.freeList[:len(c.freeList)-1]
			di.OldDst = c.rat[ins.Rd]
			c.rat[ins.Rd] = p
			di.Dst = p
			c.prfReady[p] = false
		}

		// Instructions with no execution step complete at dispatch.
		switch ins.Op {
		case isa.NOP, isa.HALT:
			di.Done = true
			di.DoneCycle = c.cycle
		case isa.JAL:
			// Direct jump: target was known at fetch, the link value is
			// PC+1. No execution or resolution effects are needed.
			if di.Dst != NoReg {
				c.prf[di.Dst] = fe.pc + 1
				c.prfReady[di.Dst] = true
			}
			di.Done = true
			di.DoneCycle = c.cycle
			di.OutcomeKnown = true
			di.ActualTaken = true
			di.ActualTarget = fe.pc + uint64(ins.Imm)
			di.Resolved = true
		}

		if needsRS {
			di.Dispatched = true
			c.rsCount++
		}
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, di, "rename")
		}
		c.rob = append(c.rob, di)
		if ins.IsLoad() {
			c.lq = append(c.lq, di)
		}
		if ins.IsStore() {
			c.sq = append(c.sq, di)
		}
		if c.Pol != nil {
			c.Pol.OnRename(di)
		}
	}
}

// opNeedsExecution reports whether the op occupies an RS slot and an
// execution unit.
func opNeedsExecution(ins isa.Instruction) bool {
	switch ins.Op {
	case isa.NOP, isa.HALT, isa.JAL:
		return false
	}
	return true
}
