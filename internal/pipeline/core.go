// Package pipeline implements the cycle-level out-of-order core the SPT
// paper's defenses are built into: an 8-wide machine with register renaming
// (RAT + physical register file + free list), a 192-entry reorder buffer, a
// unified reservation station, a split load/store queue with store-to-load
// forwarding and memory-dependence speculation, branch prediction with
// delayed (policy-gated) resolution effects, and in-order retirement.
//
// Protection schemes (SPT, STT, the secure baseline) plug in through the
// Policy interface: they observe renames, visibility-point crossings, load
// completions and store retirement, and they gate when transmitters may
// execute and when control-flow resolution effects may become visible.
package pipeline

import (
	"context"
	"fmt"

	"spt/internal/emu"
	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/predictor"
	"spt/internal/stats"
)

// AttackModel selects the visibility-point definition (paper §2.2.1).
type AttackModel uint8

const (
	// Spectre covers control-flow speculation: an instruction reaches the
	// visibility point when all older control-flow instructions have
	// resolved.
	Spectre AttackModel = iota
	// Futuristic covers all speculation: an instruction reaches the
	// visibility point when it can no longer be squashed.
	Futuristic
)

func (m AttackModel) String() string {
	if m == Spectre {
		return "spectre"
	}
	return "futuristic"
}

// Config sizes the core (paper Table 1).
type Config struct {
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	RetireWidth int

	ROBSize  int
	RSSize   int
	LQSize   int
	SQSize   int
	PhysRegs int

	// FrontendDepth is the fetch-to-rename latency in cycles.
	FrontendDepth uint64
	// FetchBufferSize bounds the decoupled fetch queue.
	FetchBufferSize int

	// Functional unit pool.
	ALUs     int
	MemPorts int

	// Latencies by op class.
	ALULatency uint64
	MulLatency uint64
	DivLatency uint64

	Model AttackModel
}

// DefaultConfig returns the paper's Table 1 core: 8-wide, 192 ROB, 32/32
// LQ/SQ.
func DefaultConfig() Config {
	return Config{
		FetchWidth:      8,
		RenameWidth:     8,
		IssueWidth:      8,
		RetireWidth:     8,
		ROBSize:         192,
		RSSize:          96,
		LQSize:          32,
		SQSize:          32,
		PhysRegs:        320,
		FrontendDepth:   5,
		FetchBufferSize: 48,
		ALUs:            6,
		MemPorts:        2,
		ALULatency:      1,
		MulLatency:      3,
		DivLatency:      12,
		Model:           Futuristic,
	}
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.PhysRegs < isa.NumRegs+c.ROBSize/2 {
		return fmt.Errorf("pipeline: %d physical registers cannot cover %d architectural + in-flight", c.PhysRegs, isa.NumRegs)
	}
	if c.ROBSize <= 0 || c.RSSize <= 0 || c.LQSize <= 0 || c.SQSize <= 0 {
		return fmt.Errorf("pipeline: queue sizes must be positive")
	}
	if c.FetchWidth <= 0 || c.RenameWidth <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0 {
		return fmt.Errorf("pipeline: widths must be positive")
	}
	if c.FetchBufferSize <= 0 {
		return fmt.Errorf("pipeline: fetch buffer size must be positive")
	}
	return nil
}

// PhysReg indexes the physical register file; -1 means "none".
type PhysReg int16

// NoReg marks an absent register operand.
const NoReg PhysReg = -1

// DynInst is one in-flight dynamic instruction (a ROB entry).
type DynInst struct {
	Seq uint64
	PC  uint64
	Ins isa.Instruction

	// Decoded classification and access width, cached at rename so the
	// per-cycle loops avoid re-deriving them from the opcode (and copying
	// the Instruction struct) millions of times per simulated second.
	IsLd  bool
	IsSt  bool
	MemSz uint64

	// Renamed operands. Unused slots are NoReg.
	Src1, Src2 PhysReg
	Dst        PhysReg
	OldDst     PhysReg // previous mapping of the architectural dest

	// Pipeline status.
	Dispatched bool // occupies an RS slot (until issued)
	// rdy1/rdy2 memoize observed source readiness while the entry waits in
	// the RS. Readiness is monotone for an in-flight consumer: a physical
	// register is only recycled after the instruction that overwrote its
	// architectural mapping retires, and in-order retirement means every
	// older consumer has retired (and therefore issued) by then.
	rdy1, rdy2 bool
	Issued     bool
	Done       bool // result available (DoneCycle reached)
	DoneCycle  uint64
	Squashed   bool
	Retired    bool

	// Control flow.
	IsCF         bool
	Resolved     bool // resolution effects applied (or none needed)
	OutcomeKnown bool // execute computed the outcome
	ActualTaken  bool
	ActualTarget uint64
	Cp           predictor.Checkpoint
	Mispredicted bool

	// Memory.
	EffAddr   uint64
	AddrKnown bool // effective address computed (virtual, pre-translate)
	MemIssued bool // TLB/cache access started (the transmitting event)
	// FwdStore points at the ROB ring slot of the store this load forwarded
	// from (nil = memory). Ring slots are recycled after retirement, so the
	// pointer is only dereferenceable while FwdLive() holds; FwdSeq is the
	// stable identity of the forwarding store.
	FwdStore  *DynInst
	FwdSeq    uint64
	Violation bool // squash pending due to memory-dependence violation
	// The older store the violating load conflicts with, captured by value
	// (Seq and the address operand are immutable after rename) so the
	// reference stays valid even if the store's ROB slot is recycled.
	HasViolStore bool
	ViolStoreSeq uint64
	ViolSrc1     PhysReg
	violCheck    bool // store: younger loads were checked for violations

	// Predictor snapshots taken at fetch, for squash recovery.
	HistAt predictor.History
	RasAt  predictor.RASSnapshot
	HasCp  bool

	// Value produced (for dst-writing instructions) and store data.
	Val uint64

	// AtVP: the instruction has reached the visibility point.
	AtVP bool

	// Oblivious: the memory access was performed data-obliviously (no
	// speculative cache/TLB change); the real access replays at retire.
	Oblivious bool

	// DelayedByPolicy notes the instruction was blocked at least once.
	DelayedByPolicy bool

	// RenameCycle is the cycle this instruction was renamed, the anchor for
	// the RS-delay and VP-distance distributions.
	RenameCycle uint64
	// delayCycles counts the cycles this memory instruction was
	// policy-blocked before its access started (feeds TransmitterDelay).
	delayCycles uint32
}

// FwdLive reports whether ld's forwarding store still occupies its ROB ring
// slot, i.e. whether ld.FwdStore may be dereferenced for live state (taint
// of its operands, AtVP). When false the store has retired (retirement is
// the only way a forwarding source leaves the window while the load stays)
// and only ld.FwdSeq identifies it.
func (ld *DynInst) FwdLive() bool {
	return ld.FwdStore != nil && ld.FwdStore.Seq == ld.FwdSeq && !ld.FwdStore.Retired
}

// Stats aggregates core-level counters. Every field is a plain uint64 (or
// an inline stats.Hist): the per-cycle loops increment them with ordinary
// struct-field adds, and the stats registry built at construction only
// holds pointers to them — zero overhead when hot, no allocation per event.
type Stats struct {
	Cycles  uint64
	Retired uint64
	Fetched uint64
	Renamed uint64
	Issued  uint64

	// FastForwarded is the functionally executed (skipped) instruction
	// count of the snapshot this core booted from; 0 for a from-reset core.
	// It is set once at construction, never by the cycle loop.
	FastForwarded uint64

	BranchResolutions  uint64
	BranchMispredicts  uint64
	Squashes           uint64
	SquashedInstrs     uint64
	MemViolations      uint64
	STLForwards        uint64
	TransmitterDelays  uint64 // cycles a ready transmitter was policy-blocked
	ResolutionDelays   uint64 // cycles an outcome-known branch waited for policy
	RetireStallsMemory uint64
	ObliviousExecs     uint64 // memory ops executed data-obliviously

	LoadsExecuted  uint64 // loads whose memory access started
	StoresExecuted uint64 // stores whose address translation started
	VPCrossings    uint64 // instructions that reached the visibility point
	// DelayedTransmitters counts distinct memory instructions that were
	// policy-blocked for at least one cycle before their access finally
	// started (the paper's Fig. 10 numerator; TransmitterDelays counts the
	// blocked cycles themselves).
	DelayedTransmitters uint64

	// Distributions (power-of-two buckets; see internal/stats).
	SquashDepth      stats.Hist // instructions squashed per squash event
	RSDelay          stats.Hist // cycles from rename to issue
	VPDistance       stats.Hist // cycles from rename to the visibility point
	TransmitterDelay stats.Hist // blocked cycles per delayed transmitter
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// ObliviousPolicy is an optional extension of Policy implementing the
// paper's alternative protection (§6.3): instead of delaying a blocked
// transmitter, execute it in a data-oblivious fashion — no speculative
// TLB/cache state change and a fixed, operand-independent latency (in the
// spirit of SDO, Yu et al. ISCA'20). The real cache access is replayed
// non-speculatively at retirement.
type ObliviousPolicy interface {
	// ObliviousLatency returns the fixed completion latency for a blocked
	// memory instruction and whether oblivious execution should be used.
	ObliviousLatency(di *DynInst) (uint64, bool)
}

// STLQuery is an optional Policy extension: it reports whether the fact
// that store st forwards to load ld is already public (the paper's
// STLPublic condition, §6.7). When it holds — or on the unprotected
// machine — the load skips the camouflage cache access and forwards fast;
// otherwise the forwarded value is withheld until the cache access
// completes, hiding the forwarding decision.
type STLQuery interface {
	STLForwardPublic(st, ld *DynInst) bool
}

// Tracer receives per-instruction lifecycle events for debugging and the
// --track-insts output. Stage names: rename, issue, mem, complete,
// resolve, mispredict, vp, retire, squash.
type Tracer interface {
	Event(cycle uint64, di *DynInst, stage string)
}

// Policy is the protection scheme hook. The zero policy (nil) is the
// unsafe baseline: everything is always allowed.
type Policy interface {
	// Attach gives the policy access to the core. Called once.
	Attach(c *Core)
	// OnRename runs after di's registers are renamed, before dispatch.
	OnRename(di *DynInst)
	// OnSquash runs for every squashed instruction, youngest first.
	OnSquash(di *DynInst)
	// OnRetire runs when di retires (stores have written the cache).
	OnRetire(di *DynInst)
	// OnVP runs when di crosses the visibility point (declassification).
	OnVP(di *DynInst)
	// OnLoadComplete runs when a load's data arrives (di.FwdStore tells
	// whether it was forwarded).
	OnLoadComplete(di *DynInst)
	// MayExecuteMem gates a load/store's TLB+cache access.
	MayExecuteMem(di *DynInst) bool
	// MayResolveCF gates a control-flow instruction's resolution effects.
	MayResolveCF(di *DynInst) bool
	// MaySquashOnViolation gates the memory-dependence-violation squash of
	// load ld (an implicit branch over the involved store/load addresses).
	MaySquashOnViolation(ld *DynInst) bool
	// Tick runs once per cycle after retire/VP update (untaint propagation).
	Tick()
}

// Core is the simulated processor.
type Core struct {
	Cfg   Config
	Prog  *isa.Program
	Mem   *emu.Memory // functional backing store
	Hier  *mem.Hierarchy
	Pred  *predictor.Unit
	Pol   Policy
	Stats Stats

	// Observer, if non-nil, receives every microarchitecturally observable
	// memory-system event: speculative and non-speculative load cache
	// accesses ('L'), store address translations ('T'), and retirement
	// cache writes ('W'). The security tests compare these traces across
	// secret values (observational determinism).
	Observer func(kind byte, cycle uint64, addr uint64)

	// Tracer, if non-nil, receives per-instruction lifecycle events
	// (rename, issue, mem, complete, resolve, mispredict, vp, retire,
	// squash). internal/trace renders these; cmd/spt-sim exposes them as
	// the artifact's --track-insts.
	Tracer Tracer

	// Golden-model oracle state is NOT kept here; tests construct their own
	// emulator and compare after the run.

	cycle uint64
	seq   uint64

	// Fetch. The decoupled fetch buffer is a fixed-capacity ring of inline
	// fetchEntry values (no per-instruction allocation).
	fetchPC       uint64
	fetchStallTil uint64
	fetchBuf      []fetchEntry // cap Cfg.FetchBufferSize
	fbHead, fbLen int
	halted        bool // HALT fetched (stop fetching); sim ends when it retires
	finished      bool // HALT retired

	// Rename.
	rat      [isa.NumRegs]PhysReg
	freeList []PhysReg
	prf      []uint64
	prfReady []bool

	// Windows. The ROB is a fixed-capacity ring of inline DynInst values in
	// program order; a slot is recycled once its instruction retires or is
	// squashed, so the steady-state cycle loop allocates nothing. LQ/SQ are
	// rings of pointers into the ROB ring (stable while the instruction is
	// in flight).
	rob             []DynInst // cap Cfg.ROBSize
	robHead, robLen int
	lq              []*DynInst // cap Cfg.LQSize
	lqHead, lqLen   int
	sq              []*DynInst // cap Cfg.SQSize
	sqHead, sqLen   int

	// rsCount tracks occupied RS slots (dispatched, not yet issued).
	rsCount int
	// rsList is the age-ordered list of occupied RS slots issue() scans,
	// so a cycle costs O(RS occupancy) instead of O(ROB span). Entries are
	// validated against the recorded sequence number and the Dispatched
	// flag: a squash clears Dispatched (and slot recycling changes Seq), so
	// stale references are dropped lazily during the next scan.
	rsList []rsRef
	// cfUnresolved counts in-flight control-flow instructions whose
	// resolution effects are still pending (lets resolveBranches skip the
	// window scan on branch-free cycles).
	cfUnresolved int
	// execOutstanding counts issued non-memory instructions whose result is
	// not yet available (lets completeExecution bound its window scan).
	execOutstanding int
	// memIncomplete counts in-flight memory instructions that are not Done,
	// and violPending counts loads with a pending memory-dependence
	// violation. Together with cfUnresolved they let updateVP and
	// resolveViolations skip their window scans on quiet cycles.
	memIncomplete int
	violPending   int

	// Monotone prefix-skip indexes: the number of leading entries of each
	// ring that their per-cycle scan can never act on again. Each skipped
	// prefix only grows while the ring is stable; popping the head
	// decrements the index and a squash clamps it to the new length, so
	// scan order (and therefore every observable effect) is unchanged.
	execSkip   int // ROB prefix: Done or memory (completeExecution)
	cfSkip     int // ROB prefix: resolved or not control flow (resolveBranches)
	vpSkip     int // ROB prefix: already at the visibility point (updateVP)
	lqMemSkip  int // LQ prefix: access started or violation pending (memStage)
	lqDoneSkip int // LQ prefix: load complete (completeExecution)
	sqMemSkip  int // SQ prefix: translated and violation-checked (memStage)
	sqDoneSkip int // SQ prefix: store complete (completeExecution)

	// Execution resources.
	aluBusyUntil []uint64
	memBusy      int // mem port uses this cycle

	squashedThisCycle bool

	// statReg is the gem5-style registry of every counter above plus the
	// memory system's, predictors', and policy's. Built once in New; the
	// cycle loop never touches it.
	statReg *stats.Registry
}

// New builds a core for prog with the given memory system and policy
// (nil for the unsafe baseline).
func New(cfg Config, prog *isa.Program, hier *mem.Hierarchy, pol Policy) (*Core, error) {
	m := emu.NewMemory()
	m.LoadSegments(prog.Data)
	return newCore(cfg, prog, hier, pol, m, predictor.NewUnit(), prog.Entry)
}

// BootFromSnapshot builds a core that resumes from a functional snapshot
// instead of reset: the architectural registers seed the initial RAT
// mappings' physical registers, fetch starts at the snapshot PC, and the
// memory image is restored copy-on-write (the snapshot itself stays
// immutable and reusable). pred, if non-nil, supplies a functionally
// warmed branch-prediction unit (the caller keeps ownership semantics:
// pass a clone when the warm state is shared); nil boots a cold one. The
// cycle counter and every statistic start at zero, so the measured region
// covers only detailed execution; Stats.FastForwarded records the
// snapshot's functionally executed prefix.
func BootFromSnapshot(cfg Config, prog *isa.Program, hier *mem.Hierarchy, pol Policy, snap *emu.Snapshot, pred *predictor.Unit) (*Core, error) {
	if !snap.Halted && snap.PC >= uint64(len(prog.Code)) {
		return nil, fmt.Errorf("pipeline: snapshot pc %d out of range for %s (%d instructions)", snap.PC, prog.Name, len(prog.Code))
	}
	if pred == nil {
		pred = predictor.NewUnit()
	}
	c, err := newCore(cfg, prog, hier, pol, snap.NewMemory(), pred, snap.PC)
	if err != nil {
		return nil, err
	}
	// Seed the architectural register values through the reset RAT (arch
	// register r maps to physical register r; register 0 stays hardwired).
	for r := 1; r < isa.NumRegs; r++ {
		c.prf[c.rat[r]] = snap.Regs[r]
	}
	c.Stats.FastForwarded = snap.Retired
	if snap.Halted {
		// Snapshot taken after HALT: there is nothing left to simulate.
		c.halted, c.finished = true, true
	}
	return c, nil
}

// newCore is the shared construction path behind New and BootFromSnapshot.
func newCore(cfg Config, prog *isa.Program, hier *mem.Hierarchy, pol Policy, m *emu.Memory, pred *predictor.Unit, entryPC uint64) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		Cfg:          cfg,
		Prog:         prog,
		Mem:          m,
		Hier:         hier,
		Pred:         pred,
		Pol:          pol,
		fetchPC:      entryPC,
		fetchBuf:     make([]fetchEntry, cfg.FetchBufferSize),
		prf:          make([]uint64, cfg.PhysRegs),
		prfReady:     make([]bool, cfg.PhysRegs),
		freeList:     make([]PhysReg, 0, cfg.PhysRegs),
		rob:          make([]DynInst, cfg.ROBSize),
		lq:           make([]*DynInst, cfg.LQSize),
		sq:           make([]*DynInst, cfg.SQSize),
		aluBusyUntil: make([]uint64, cfg.ALUs),
		// Live entries never exceed RSSize; stale references linger at most
		// until the next issue() compaction, bounded by one squash burst
		// plus one rename group.
		rsList: make([]rsRef, 0, 2*cfg.RSSize+cfg.RenameWidth),
	}
	// Physical register 0 is the hardwired zero: always ready, never freed.
	c.prfReady[0] = true
	for r := 0; r < isa.NumRegs; r++ {
		if r == 0 {
			c.rat[r] = 0
			continue
		}
		c.rat[r] = PhysReg(r)
		c.prfReady[r] = true
	}
	for p := isa.NumRegs; p < cfg.PhysRegs; p++ {
		c.freeList = append(c.freeList, PhysReg(p))
	}
	c.registerStats()
	if pol != nil {
		pol.Attach(c)
		if sr, ok := pol.(StatsRegistrar); ok {
			sr.RegisterStats(c.statReg)
		}
	}
	return c, nil
}

// StatsRegistrar is an optional Policy (or component) extension: implementors
// publish their counters into the core's registry at construction.
type StatsRegistrar interface {
	RegisterStats(r *stats.Registry)
}

// StatsRegistry exposes the core's stats registry (e.g. for Result to
// snapshot after the run).
func (c *Core) StatsRegistry() *stats.Registry { return c.statReg }

// registerStats publishes every simulator counter into the registry, in a
// fixed order so dumps are deterministic. Only simulation-derived values are
// registered — host-dependent measurements (wall time, throughput) are kept
// off the registry entirely so stats dumps are safe for golden comparisons.
func (c *Core) registerStats() {
	r := stats.New()
	c.statReg = r
	s := &c.Stats

	perKilo := func(num *uint64) func() float64 {
		return func() float64 {
			if s.Retired == 0 {
				return 0
			}
			return 1000 * float64(*num) / float64(s.Retired)
		}
	}

	r.Scalar("sim.cycles", "simulated clock cycles", &s.Cycles)
	r.Scalar("sim.insts", "retired instructions", &s.Retired)
	r.Scalar("sim.ff_insts", "instructions fast-forwarded functionally before this region", &s.FastForwarded)
	r.Formula("sim.ipc", "retired instructions per cycle", func() float64 {
		return s.IPC()
	})
	r.Scalar("fetch.insts", "instructions fetched", &s.Fetched)
	r.Scalar("rename.insts", "instructions renamed", &s.Renamed)
	r.Scalar("issue.insts", "instructions issued to execute", &s.Issued)
	r.Hist("issue.rs_delay", "cycles from rename to issue", &s.RSDelay)

	r.Scalar("branch.resolutions", "control-flow instructions resolved", &s.BranchResolutions)
	r.Scalar("branch.mispredicts", "mispredicted control-flow instructions", &s.BranchMispredicts)
	r.Formula("branch.mpki", "branch mispredicts per kilo-instruction", perKilo(&s.BranchMispredicts))
	r.Scalar("branch.resolution_delays", "cycles outcome-known branches waited for policy", &s.ResolutionDelays)

	r.Scalar("squash.events", "pipeline squashes", &s.Squashes)
	r.Scalar("squash.insts", "instructions squashed", &s.SquashedInstrs)
	r.Formula("squash.pki", "squash events per kilo-instruction", perKilo(&s.Squashes))
	r.Hist("squash.depth", "instructions squashed per squash event", &s.SquashDepth)
	r.Scalar("squash.mem_violations", "memory-dependence violation squashes", &s.MemViolations)

	r.Scalar("mem.loads_executed", "loads whose cache/TLB access started", &s.LoadsExecuted)
	r.Scalar("mem.stores_executed", "stores whose address translation started", &s.StoresExecuted)
	r.Scalar("mem.stl_forwards", "loads forwarded from an older store", &s.STLForwards)
	r.Scalar("mem.retire_stalls", "retire stalls waiting on memory", &s.RetireStallsMemory)

	r.Scalar("policy.delayed_transmitters", "memory instructions policy-blocked at least one cycle", &s.DelayedTransmitters)
	r.Scalar("policy.transmitter_delay_cycles", "total cycles ready transmitters were policy-blocked", &s.TransmitterDelays)
	r.Hist("policy.transmitter_delay", "blocked cycles per delayed transmitter", &s.TransmitterDelay)
	r.Formula("policy.delayed_transmitter_pct", "percent of executed memory ops delayed by policy", func() float64 {
		execd := s.LoadsExecuted + s.StoresExecuted
		if execd == 0 {
			return 0
		}
		return 100 * float64(s.DelayedTransmitters) / float64(execd)
	})
	r.Scalar("policy.oblivious_execs", "memory ops executed data-obliviously", &s.ObliviousExecs)

	r.Scalar("vp.crossings", "instructions that reached the visibility point", &s.VPCrossings)
	r.Hist("vp.distance", "cycles from rename to the visibility point", &s.VPDistance)

	if c.Hier != nil {
		c.Hier.RegisterStats(r, perKilo)
	}
	c.Pred.RegisterStats(r)
}

type fetchEntry struct {
	pc         uint64
	ins        isa.Instruction
	readyCycle uint64
	cp         predictor.Checkpoint
	hasCp      bool
	predTarget uint64
	histAt     predictor.History
	rasAt      predictor.RASSnapshot
}

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// Finished reports whether the program's HALT has retired.
func (c *Core) Finished() bool { return c.finished }

// robAt returns the i-th oldest in-flight instruction (0 = head). The
// returned pointer is stable while the instruction is in flight; the slot
// is recycled after retirement or squash.
func (c *Core) robAt(i int) *DynInst {
	j := c.robHead + i
	if j >= len(c.rob) {
		j -= len(c.rob)
	}
	return &c.rob[j]
}

// rsRef is a seq-validated reference to a reservation-station entry. The
// pointer targets a ROB ring slot; the reference is live only while the
// slot still holds the recorded sequence number and the instruction is
// still dispatched-but-unissued.
type rsRef struct {
	di  *DynInst
	seq uint64
}

// robPush claims and zeroes the ring slot behind the youngest instruction.
// The caller must have checked robLen < Cfg.ROBSize.
func (c *Core) robPush() *DynInst {
	di := c.robAt(c.robLen)
	*di = DynInst{}
	c.robLen++
	return di
}

// robPopHead releases the oldest slot. The popped entry stays readable
// until rename recycles the slot (at least a full ROB wrap later).
func (c *Core) robPopHead() {
	c.robHead++
	if c.robHead == len(c.rob) {
		c.robHead = 0
	}
	c.robLen--
	if c.execSkip > 0 {
		c.execSkip--
	}
	if c.cfSkip > 0 {
		c.cfSkip--
	}
	if c.vpSkip > 0 {
		c.vpSkip--
	}
}

func (c *Core) lqAt(i int) *DynInst {
	j := c.lqHead + i
	if j >= len(c.lq) {
		j -= len(c.lq)
	}
	return c.lq[j]
}

func (c *Core) lqPush(di *DynInst) {
	j := c.lqHead + c.lqLen
	if j >= len(c.lq) {
		j -= len(c.lq)
	}
	c.lq[j] = di
	c.lqLen++
}

func (c *Core) lqPopHead() {
	c.lq[c.lqHead] = nil
	c.lqHead++
	if c.lqHead == len(c.lq) {
		c.lqHead = 0
	}
	c.lqLen--
	if c.lqMemSkip > 0 {
		c.lqMemSkip--
	}
	if c.lqDoneSkip > 0 {
		c.lqDoneSkip--
	}
}

func (c *Core) sqAt(i int) *DynInst {
	j := c.sqHead + i
	if j >= len(c.sq) {
		j -= len(c.sq)
	}
	return c.sq[j]
}

func (c *Core) sqPush(di *DynInst) {
	j := c.sqHead + c.sqLen
	if j >= len(c.sq) {
		j -= len(c.sq)
	}
	c.sq[j] = di
	c.sqLen++
}

func (c *Core) sqPopHead() {
	c.sq[c.sqHead] = nil
	c.sqHead++
	if c.sqHead == len(c.sq) {
		c.sqHead = 0
	}
	c.sqLen--
	if c.sqMemSkip > 0 {
		c.sqMemSkip--
	}
	if c.sqDoneSkip > 0 {
		c.sqDoneSkip--
	}
}

// ROBLen reports the number of in-flight instructions; ROBAt indexes them
// oldest first (0 = next to retire). Policies iterate the window with these
// instead of a materialized slice so the steady-state loop stays
// allocation-free.
func (c *Core) ROBLen() int          { return c.robLen }
func (c *Core) ROBAt(i int) *DynInst { return c.robAt(i) }

// ROBWindow returns the in-flight window, oldest first, as the ring's two
// contiguous segments (the second is empty until the ring wraps). Per-cycle
// policy scans range over these directly, avoiding per-index ring
// arithmetic; iterating older then younger visits exactly ROBAt(0..len-1).
func (c *Core) ROBWindow() (older, younger []DynInst) {
	end := c.robHead + c.robLen
	if end <= len(c.rob) {
		return c.rob[c.robHead:end], nil
	}
	return c.rob[c.robHead:], c.rob[:end-len(c.rob)]
}

// LQLen/LQAt and SQLen/SQAt expose the memory queues, oldest first.
func (c *Core) LQLen() int          { return c.lqLen }
func (c *Core) LQAt(i int) *DynInst { return c.lqAt(i) }
func (c *Core) SQLen() int          { return c.sqLen }
func (c *Core) SQAt(i int) *DynInst { return c.sqAt(i) }

// robWindowFrom, lqWindowFrom, and sqWindowFrom return the ring entries
// from logical index i (oldest = 0) to the tail as up to two contiguous
// segments, for the per-cycle scans that resume past a skipped prefix.
func (c *Core) robWindowFrom(i int) (a, b []DynInst) {
	n := len(c.rob)
	j := c.robHead + i
	end := c.robHead + c.robLen
	if j >= n {
		return c.rob[j-n : end-n], nil
	}
	if end <= n {
		return c.rob[j:end], nil
	}
	return c.rob[j:], c.rob[:end-n]
}

func (c *Core) lqWindowFrom(i int) (a, b []*DynInst) {
	n := len(c.lq)
	j := c.lqHead + i
	end := c.lqHead + c.lqLen
	if j >= n {
		return c.lq[j-n : end-n], nil
	}
	if end <= n {
		return c.lq[j:end], nil
	}
	return c.lq[j:], c.lq[:end-n]
}

func (c *Core) sqWindowFrom(i int) (a, b []*DynInst) {
	n := len(c.sq)
	j := c.sqHead + i
	end := c.sqHead + c.sqLen
	if j >= n {
		return c.sq[j-n : end-n], nil
	}
	if end <= n {
		return c.sq[j:end], nil
	}
	return c.sq[j:], c.sq[:end-n]
}

// LQWindow and SQWindow return the memory queues, oldest first, as their
// two contiguous ring segments (see ROBWindow).
func (c *Core) LQWindow() (older, younger []*DynInst) {
	end := c.lqHead + c.lqLen
	if end <= len(c.lq) {
		return c.lq[c.lqHead:end], nil
	}
	return c.lq[c.lqHead:], c.lq[:end-len(c.lq)]
}

func (c *Core) SQWindow() (older, younger []*DynInst) {
	end := c.sqHead + c.sqLen
	if end <= len(c.sq) {
		return c.sq[c.sqHead:end], nil
	}
	return c.sq[c.sqHead:], c.sq[:end-len(c.sq)]
}

// PhysRegCount reports the size of the physical register file.
func (c *Core) PhysRegCount() int { return c.Cfg.PhysRegs }

// RegValue reads a physical register (for policies and tests).
func (c *Core) RegValue(p PhysReg) uint64 { return c.prf[p] }

// RegReady reports whether a physical register has been written.
func (c *Core) RegReady(p PhysReg) bool { return p == NoReg || c.prfReady[p] }

// ArchRegs returns the current architectural register values (valid when
// the pipeline is drained, i.e. after Finished).
func (c *Core) ArchRegs() [isa.NumRegs]uint64 {
	var out [isa.NumRegs]uint64
	for r := 0; r < isa.NumRegs; r++ {
		out[r] = c.prf[c.rat[r]]
	}
	return out
}

// Step simulates one clock cycle.
func (c *Core) Step() {
	// Stage order within a cycle: older pipeline stages act on the state
	// the younger stages produced in previous cycles.
	c.squashedThisCycle = false
	c.retire()
	c.completeExecution()
	c.memStage()
	c.resolveBranches()
	c.resolveViolations()
	c.issue()
	c.renameDispatch()
	c.fetch()
	c.updateVP()
	if c.Pol != nil {
		c.Pol.Tick()
	}
	c.cycle++
	c.Stats.Cycles = c.cycle
	c.memBusy = 0
}

// Run simulates until HALT retires, maxInstructions retire, or maxCycles
// pass. It returns an error on livelock (no retirement for a long window).
func (c *Core) Run(maxInstructions, maxCycles uint64) error {
	return c.RunCtx(nil, maxInstructions, maxCycles)
}

// ctxPollMask sets how often RunCtx polls its context: every 8192 cycles —
// rare enough that the poll is invisible in profiles, frequent enough that
// cancelling a run aborts within microseconds of host time.
const ctxPollMask = 8192 - 1

// RunCtx is Run with cooperative cancellation: every few thousand cycles
// it polls ctx and, once the context is done, stops mid-run and returns
// context.Cause(ctx). The core is left in a consistent (resumable) state.
// A nil ctx is never polled, so Run's hot loop pays nothing for the
// feature.
func (c *Core) RunCtx(ctx context.Context, maxInstructions, maxCycles uint64) error {
	lastRetired := c.Stats.Retired
	lastProgress := c.cycle
	for !c.finished && c.Stats.Retired < maxInstructions && c.cycle < maxCycles {
		if ctx != nil && c.cycle&ctxPollMask == 0 {
			select {
			case <-ctx.Done():
				return context.Cause(ctx)
			default:
			}
		}
		c.Step()
		if c.Stats.Retired != lastRetired {
			lastRetired = c.Stats.Retired
			lastProgress = c.cycle
		} else if c.cycle-lastProgress > 200_000 {
			return fmt.Errorf("pipeline: livelock at cycle %d (pc=%d, rob=%d)", c.cycle, c.fetchPC, c.robLen)
		}
	}
	return nil
}
