package pipeline

import (
	"spt/internal/emu"
	"spt/internal/isa"
)

// opLatency returns the execution latency of a non-memory operation.
func (c *Core) opLatency(op isa.Op) uint64 {
	switch op {
	case isa.MUL:
		return c.Cfg.MulLatency
	case isa.DIV, isa.REM:
		return c.Cfg.DivLatency
	}
	return c.Cfg.ALULatency
}

// srcsReadyForIssue reports whether di can leave the RS. Stores only need
// their address operand (Src1); the data operand is consumed later by
// forwarding and retire.
func (c *Core) srcsReadyForIssue(di *DynInst) bool {
	if di.Ins.IsStore() {
		return c.RegReady(di.Src1)
	}
	return c.RegReady(di.Src1) && c.RegReady(di.Src2)
}

// issue selects up to IssueWidth ready RS entries, oldest first, and starts
// their execution. Loads and stores compute their effective address here
// and then wait in the LSQ; the policy-gated memory access happens in
// memStage.
func (c *Core) issue() {
	issued := 0
	for _, di := range c.rob {
		if issued >= c.Cfg.IssueWidth {
			return
		}
		if !di.Dispatched || di.Issued || !c.srcsReadyForIssue(di) {
			continue
		}

		if di.Ins.IsMem() {
			// Address generation uses an LSU AGU; it does not contend with
			// the ALU pool in this model.
			if c.Tracer != nil {
				c.Tracer.Event(c.cycle, di, "issue")
			}
			di.Issued = true
			di.Dispatched = false
			c.rsCount--
			di.EffAddr = c.prf[di.Src1] + uint64(di.Ins.Imm)
			di.AddrKnown = true
			issued++
			continue
		}

		// Find a free ALU. MUL is pipelined; DIV occupies its unit.
		slot := -1
		for i := range c.aluBusyUntil {
			if c.aluBusyUntil[i] <= c.cycle {
				slot = i
				break
			}
		}
		if slot < 0 {
			continue
		}
		lat := c.opLatency(di.Ins.Op)
		if di.Ins.Op == isa.DIV || di.Ins.Op == isa.REM {
			c.aluBusyUntil[slot] = c.cycle + lat // unpipelined
		} else {
			c.aluBusyUntil[slot] = c.cycle + 1
		}

		di.Issued = true
		di.Dispatched = false
		c.rsCount--
		di.DoneCycle = c.cycle + lat
		c.computeResult(di)
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, di, "issue")
		}
		issued++
	}
}

// computeResult evaluates di functionally. Results become architecturally
// visible (ready) at DoneCycle via completeExecution.
func (c *Core) computeResult(di *DynInst) {
	ins := di.Ins
	a := c.val(di.Src1)
	b := c.val(di.Src2)
	switch {
	case ins.IsCondBranch():
		di.ActualTaken = emu.BranchTaken(ins.Op, a, b)
		if di.ActualTaken {
			di.ActualTarget = di.PC + uint64(ins.Imm)
		} else {
			di.ActualTarget = di.PC + 1
		}
		di.OutcomeKnown = true
	case ins.Op == isa.JALR:
		di.ActualTaken = true
		di.ActualTarget = a + uint64(ins.Imm)
		di.OutcomeKnown = true
		di.Val = di.PC + 1
	case ins.Op == isa.MOV:
		di.Val = a
	case ins.Op == isa.MOVI:
		di.Val = uint64(ins.Imm)
	default:
		di.Val = emu.ALU(ins.Op, a, b, ins.Imm)
	}
}

func (c *Core) val(p PhysReg) uint64 {
	if p == NoReg {
		return 0
	}
	return c.prf[p]
}

// completeExecution retires results whose latency has elapsed: the value
// becomes visible in the PRF and dependents wake up.
func (c *Core) completeExecution() {
	for _, di := range c.rob {
		if !di.Issued || di.Done || di.Ins.IsMem() {
			continue
		}
		if di.DoneCycle > c.cycle {
			continue
		}
		di.Done = true
		if di.Dst != NoReg {
			c.prf[di.Dst] = di.Val
			c.prfReady[di.Dst] = true
		}
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, di, "complete")
		}
	}
	// Loads complete when their memory access finishes.
	for _, di := range c.lq {
		if !di.MemIssued || di.Done || di.DoneCycle > c.cycle {
			continue
		}
		di.Done = true
		if di.Dst != NoReg {
			c.prf[di.Dst] = di.Val
			c.prfReady[di.Dst] = true
		}
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, di, "complete")
		}
		if c.Pol != nil {
			c.Pol.OnLoadComplete(di)
		}
	}
	// Stores complete when translated and their data is ready.
	for _, di := range c.sq {
		if di.Done || !di.MemIssued || di.DoneCycle > c.cycle {
			continue
		}
		if !c.RegReady(di.Src2) {
			continue
		}
		di.Val = c.val(di.Src2)
		di.Done = true
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, di, "complete")
		}
	}
}

// resolveBranches applies resolution effects for executed control-flow
// instructions, oldest first, when the policy permits. A misprediction
// squashes younger instructions and redirects fetch (one squash per cycle).
func (c *Core) resolveBranches() {
	for _, di := range c.rob {
		if di.Squashed || !di.IsCF || di.Resolved {
			continue
		}
		if !di.OutcomeKnown {
			return // resolve strictly in order
		}
		if c.Pol != nil && !c.Pol.MayResolveCF(di) {
			di.DelayedByPolicy = true
			c.Stats.ResolutionDelays++
			return
		}
		// Train the predictor (resolution-time update keeps tainted data
		// out of predictor state, since the policy gate already passed).
		var misp bool
		if di.Ins.IsCondBranch() {
			misp = c.Pred.ResolveCond(di.Cp, di.ActualTaken, di.ActualTarget)
		} else {
			misp = c.Pred.ResolveJump(di.Cp, di.ActualTarget, di.Ins.Op == isa.JALR)
		}
		di.Resolved = true
		di.Mispredicted = misp
		if c.Tracer != nil {
			stage := "resolve"
			if misp {
				stage = "mispredict"
			}
			c.Tracer.Event(c.cycle, di, stage)
		}
		c.Stats.BranchResolutions++
		if misp {
			c.Stats.BranchMispredicts++
			c.Pred.Recover(di.Cp, di.ActualTaken)
			c.squashAfter(di.Seq)
			c.redirect(di.ActualTarget)
			c.squashedThisCycle = true
			return
		}
	}
}
