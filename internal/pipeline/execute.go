package pipeline

import (
	"spt/internal/emu"
	"spt/internal/isa"
)

// opLatency returns the execution latency of a non-memory operation.
func (c *Core) opLatency(op isa.Op) uint64 {
	switch op {
	case isa.MUL:
		return c.Cfg.MulLatency
	case isa.DIV, isa.REM:
		return c.Cfg.DivLatency
	}
	return c.Cfg.ALULatency
}

// srcsReadyForIssue reports whether di can leave the RS. Stores only need
// their address operand (Src1); the data operand is consumed later by
// forwarding and retire.
func (c *Core) srcsReadyForIssue(di *DynInst) bool {
	if !di.rdy1 {
		if !c.RegReady(di.Src1) {
			return false
		}
		di.rdy1 = true
	}
	if di.IsSt {
		return true
	}
	if !di.rdy2 {
		if !c.RegReady(di.Src2) {
			return false
		}
		di.rdy2 = true
	}
	return true
}

// issue selects up to IssueWidth ready RS entries, oldest first, and starts
// their execution. Loads and stores compute their effective address here
// and then wait in the LSQ; the policy-gated memory access happens in
// memStage. The scan walks rsList — the age-ordered list of occupied RS
// slots — so a cycle costs O(RS occupancy), not O(ROB span). Entries whose
// ring slot was recycled (seq mismatch) or that left the RS via a squash
// (Dispatched cleared) are dropped here; the list is compacted in place.
func (c *Core) issue() {
	issued := 0
	w := 0
	for r := 0; r < len(c.rsList); r++ {
		e := c.rsList[r]
		di := e.di
		if di.Seq != e.seq || !di.Dispatched || di.Issued {
			continue // stale: squashed or slot recycled
		}
		if issued >= c.Cfg.IssueWidth {
			// Width exhausted: keep the rest of the list as-is.
			w += copy(c.rsList[w:], c.rsList[r:])
			break
		}
		if !c.srcsReadyForIssue(di) {
			if w != r {
				c.rsList[w] = e
			}
			w++
			continue
		}

		if di.IsLd || di.IsSt {
			// Address generation uses an LSU AGU; it does not contend with
			// the ALU pool in this model.
			if c.Tracer != nil {
				c.Tracer.Event(c.cycle, di, "issue")
			}
			di.Issued = true
			di.Dispatched = false
			c.rsCount--
			c.Stats.Issued++
			c.Stats.RSDelay.Observe(c.cycle - di.RenameCycle)
			di.EffAddr = c.prf[di.Src1] + uint64(di.Ins.Imm)
			di.AddrKnown = true
			issued++
			continue
		}

		// Find a free ALU. MUL is pipelined; DIV occupies its unit.
		slot := -1
		for i := range c.aluBusyUntil {
			if c.aluBusyUntil[i] <= c.cycle {
				slot = i
				break
			}
		}
		if slot < 0 {
			c.rsList[w] = e // no free unit: still waiting in the RS
			w++
			continue
		}
		lat := c.opLatency(di.Ins.Op)
		if di.Ins.Op == isa.DIV || di.Ins.Op == isa.REM {
			c.aluBusyUntil[slot] = c.cycle + lat // unpipelined
		} else {
			c.aluBusyUntil[slot] = c.cycle + 1
		}

		di.Issued = true
		di.Dispatched = false
		c.rsCount--
		c.Stats.Issued++
		c.Stats.RSDelay.Observe(c.cycle - di.RenameCycle)
		c.execOutstanding++
		di.DoneCycle = c.cycle + lat
		c.computeResult(di)
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, di, "issue")
		}
		issued++
	}
	c.rsList = c.rsList[:w]
}

// computeResult evaluates di functionally. Results become architecturally
// visible (ready) at DoneCycle via completeExecution.
func (c *Core) computeResult(di *DynInst) {
	ins := di.Ins
	a := c.val(di.Src1)
	b := c.val(di.Src2)
	switch {
	case ins.IsCondBranch():
		di.ActualTaken = emu.BranchTaken(ins.Op, a, b)
		if di.ActualTaken {
			di.ActualTarget = di.PC + uint64(ins.Imm)
		} else {
			di.ActualTarget = di.PC + 1
		}
		di.OutcomeKnown = true
	case ins.Op == isa.JALR:
		di.ActualTaken = true
		di.ActualTarget = a + uint64(ins.Imm)
		di.OutcomeKnown = true
		di.Val = di.PC + 1
	case ins.Op == isa.MOV:
		di.Val = a
	case ins.Op == isa.MOVI:
		di.Val = uint64(ins.Imm)
	default:
		di.Val = emu.ALU(ins.Op, a, b, ins.Imm)
	}
}

func (c *Core) val(p PhysReg) uint64 {
	if p == NoReg {
		return 0
	}
	return c.prf[p]
}

// completeExecution retires results whose latency has elapsed: the value
// becomes visible in the PRF and dependents wake up. The ROB scan is gated
// on the count of issued-but-incomplete non-memory instructions and skips
// the prefix of entries it can never act on again (done, or handled by the
// memory queues below).
func (c *Core) completeExecution() {
	for c.execSkip < c.robLen {
		di := c.robAt(c.execSkip)
		if !di.Done && !di.IsLd && !di.IsSt {
			break
		}
		c.execSkip++
	}
	outstanding := c.execOutstanding
	robA, robB := c.robWindowFrom(c.execSkip)
robScan:
	for _, win := range [2][]DynInst{robA, robB} {
		for i := range win {
			if outstanding == 0 {
				break robScan
			}
			di := &win[i]
			if !di.Issued || di.Done || di.IsLd || di.IsSt {
				continue
			}
			outstanding--
			if di.DoneCycle > c.cycle {
				continue
			}
			di.Done = true
			c.execOutstanding--
			if di.Dst != NoReg {
				c.prf[di.Dst] = di.Val
				c.prfReady[di.Dst] = true
			}
			if c.Tracer != nil {
				c.Tracer.Event(c.cycle, di, "complete")
			}
		}
	}
	// Loads complete when their memory access finishes.
	for c.lqDoneSkip < c.lqLen && c.lqAt(c.lqDoneSkip).Done {
		c.lqDoneSkip++
	}
	lqA, lqB := c.lqWindowFrom(c.lqDoneSkip)
	for _, win := range [2][]*DynInst{lqA, lqB} {
		for _, di := range win {
			if !di.MemIssued || di.Done || di.DoneCycle > c.cycle {
				continue
			}
			di.Done = true
			c.memIncomplete--
			if di.Dst != NoReg {
				c.prf[di.Dst] = di.Val
				c.prfReady[di.Dst] = true
			}
			if c.Tracer != nil {
				c.Tracer.Event(c.cycle, di, "complete")
			}
			if c.Pol != nil {
				c.Pol.OnLoadComplete(di)
			}
		}
	}
	// Stores complete when translated and their data is ready.
	for c.sqDoneSkip < c.sqLen && c.sqAt(c.sqDoneSkip).Done {
		c.sqDoneSkip++
	}
	sqA, sqB := c.sqWindowFrom(c.sqDoneSkip)
	for _, win := range [2][]*DynInst{sqA, sqB} {
		for _, di := range win {
			if di.Done || !di.MemIssued || di.DoneCycle > c.cycle {
				continue
			}
			if !c.RegReady(di.Src2) {
				continue
			}
			di.Val = c.val(di.Src2)
			di.Done = true
			c.memIncomplete--
			if c.Tracer != nil {
				c.Tracer.Event(c.cycle, di, "complete")
			}
		}
	}
}

// resolveBranches applies resolution effects for executed control-flow
// instructions, oldest first, when the policy permits. A misprediction
// squashes younger instructions and redirects fetch (one squash per cycle).
// The scan is skipped entirely on cycles with no unresolved control flow.
func (c *Core) resolveBranches() {
	for c.cfSkip < c.robLen {
		di := c.robAt(c.cfSkip)
		if di.IsCF && !di.Resolved {
			break
		}
		c.cfSkip++
	}
	pending := c.cfUnresolved
	cfA, cfB := c.robWindowFrom(c.cfSkip)
	for _, win := range [2][]DynInst{cfA, cfB} {
		if pending == 0 {
			break
		}
		if c.resolveBranchWindow(win, &pending) {
			return
		}
	}
}

// resolveBranchWindow resolves branches within one contiguous ROB segment.
// It reports true when the cycle's resolution work must stop (in-order
// stall, policy delay, or a squash).
func (c *Core) resolveBranchWindow(win []DynInst, pending *int) bool {
	for i := range win {
		if *pending == 0 {
			return false
		}
		di := &win[i]
		if di.Squashed || !di.IsCF || di.Resolved {
			continue
		}
		(*pending)--
		if !di.OutcomeKnown {
			return true // resolve strictly in order
		}
		if c.Pol != nil && !c.Pol.MayResolveCF(di) {
			di.DelayedByPolicy = true
			c.Stats.ResolutionDelays++
			return true
		}
		// Train the predictor (resolution-time update keeps tainted data
		// out of predictor state, since the policy gate already passed).
		var misp bool
		if di.Ins.IsCondBranch() {
			misp = c.Pred.ResolveCond(&di.Cp, di.ActualTaken, di.ActualTarget)
		} else {
			misp = c.Pred.ResolveJump(&di.Cp, di.ActualTarget, di.Ins.Op == isa.JALR)
		}
		di.Resolved = true
		c.cfUnresolved--
		di.Mispredicted = misp
		if c.Tracer != nil {
			stage := "resolve"
			if misp {
				stage = "mispredict"
			}
			c.Tracer.Event(c.cycle, di, stage)
		}
		c.Stats.BranchResolutions++
		if misp {
			c.Stats.BranchMispredicts++
			c.Pred.Recover(&di.Cp, di.ActualTaken)
			c.squashAfter(di.Seq)
			c.redirect(di.ActualTarget)
			c.squashedThisCycle = true
			return true
		}
	}
	return false
}
