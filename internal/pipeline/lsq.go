package pipeline

// memStage advances the load/store unit by one cycle: stores translate
// their addresses (policy-gated) and check younger loads for
// memory-dependence violations; loads perform their (policy-gated) cache
// access, forwarding from the store queue when an older store matches.
func (c *Core) memStage() {
	ports := c.Cfg.MemPorts

	for _, st := range c.sq {
		if !st.AddrKnown {
			continue
		}
		// Violation detection happens when the store's virtual address
		// becomes known, independent of when the store is allowed to
		// "execute" (translate): the LSQ compares virtual addresses.
		if !st.violCheck {
			st.violCheck = true
			c.checkViolations(st)
		}
		if st.MemIssued {
			continue
		}
		if c.Pol != nil && !c.Pol.MayExecuteMem(st) {
			if lat, ok := c.obliviousLatency(st); ok {
				if ports == 0 {
					continue
				}
				ports--
				// Oblivious store execution: no TLB lookup; the address
				// stays architecturally hidden until retirement.
				st.MemIssued = true
				st.Oblivious = true
				st.DoneCycle = c.cycle + lat
				c.Stats.ObliviousExecs++
				continue
			}
			st.DelayedByPolicy = true
			c.Stats.TransmitterDelays++
			continue
		}
		if ports == 0 {
			continue
		}
		ports--
		st.MemIssued = true
		// Store execution is the address translation; the data write
		// happens at retirement (TSO).
		if c.Observer != nil {
			c.Observer('T', c.cycle, st.EffAddr&^0xFFF)
		}
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, st, "mem")
		}
		extra := c.Hier.DTLB.Translate(st.EffAddr)
		st.DoneCycle = c.cycle + 1 + extra
	}

	for _, ld := range c.lq {
		if !ld.AddrKnown || ld.MemIssued || ld.Violation {
			continue
		}
		if c.Pol != nil && !c.Pol.MayExecuteMem(ld) {
			if lat, ok := c.obliviousLatency(ld); ok && ports > 0 {
				src, status := c.findStoreSource(ld)
				if status == fwdWait {
					continue
				}
				ports--
				// Oblivious load execution: correct data, fixed latency,
				// no speculative cache or TLB state change. The demand
				// access replays non-speculatively at retirement.
				ld.MemIssued = true
				ld.Oblivious = true
				ld.DoneCycle = c.cycle + lat
				if status == fwdFrom {
					ld.FwdStore = src
					ld.Val = extractStoreBytes(c.val(src.Src2), src, ld)
					c.Stats.STLForwards++
				} else {
					ld.Val = c.Mem.Read(ld.EffAddr, ld.Ins.MemSize())
				}
				c.Stats.ObliviousExecs++
				continue
			}
			ld.DelayedByPolicy = true
			c.Stats.TransmitterDelays++
			continue
		}
		if ports == 0 {
			return
		}
		src, status := c.findStoreSource(ld)
		if status == fwdWait {
			continue // partial overlap or source data not ready yet
		}
		if status == fwdFrom && c.stlForwardPublic(src, ld) {
			// Fast forwarding: the forwarding decision is public (always,
			// on the unprotected machine; under SPT/STT, when STLPublic
			// holds), so the load reads the store queue directly with no
			// cache access.
			ports--
			ld.MemIssued = true
			ld.FwdStore = src
			ld.Val = extractStoreBytes(c.val(src.Src2), src, ld)
			ld.DoneCycle = c.cycle + c.Hier.Config().L1D.LatencyCycles
			c.Stats.STLForwards++
			if c.Tracer != nil {
				c.Tracer.Event(c.cycle, ld, "mem")
			}
			continue
		}
		// Otherwise the load accesses the cache even when forwarding
		// occurs (the paper's mechanism): the forwarded value is written
		// only when the access completes, so the forwarding decision is
		// not observable through cache state or timing.
		done, ok := c.Hier.AccessData(c.cycle, ld.EffAddr, false)
		if !ok {
			continue // all MSHRs busy; retry next cycle
		}
		if c.Observer != nil {
			c.Observer('L', c.cycle, ld.EffAddr&^63)
		}
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, ld, "mem")
		}
		ports--
		ld.MemIssued = true
		ld.DoneCycle = done
		if status == fwdFrom {
			ld.FwdStore = src
			ld.Val = extractStoreBytes(c.val(src.Src2), src, ld)
			c.Stats.STLForwards++
		} else {
			ld.Val = c.Mem.Read(ld.EffAddr, ld.Ins.MemSize())
		}
	}
}

// stlForwardPublic reports whether forwarding from st to ld may happen
// openly (fast, no camouflage cache access).
func (c *Core) stlForwardPublic(st, ld *DynInst) bool {
	if c.Pol == nil {
		return true
	}
	if q, ok := c.Pol.(STLQuery); ok {
		return q.STLForwardPublic(st, ld)
	}
	return false
}

type fwdStatus uint8

const (
	fwdNone fwdStatus = iota // read from memory
	fwdFrom                  // forward from the returned store
	fwdWait                  // must wait (partial overlap or data not ready)
)

// findStoreSource scans older stores, youngest first, for one overlapping
// the load. Stores whose addresses are still unknown are speculated past
// (memory-dependence speculation); checkViolations catches mistakes.
func (c *Core) findStoreSource(ld *DynInst) (*DynInst, fwdStatus) {
	for i := len(c.sq) - 1; i >= 0; i-- {
		st := c.sq[i]
		if st.Seq >= ld.Seq {
			continue
		}
		if !st.AddrKnown {
			continue // speculate: assume no alias
		}
		if !rangesOverlap(st, ld) {
			continue
		}
		if !rangeContains(st, ld) {
			return st, fwdWait // partial overlap: wait for the store to retire
		}
		if !c.RegReady(st.Src2) {
			return st, fwdWait // store data not produced yet
		}
		return st, fwdFrom
	}
	return nil, fwdNone
}

func rangesOverlap(st, ld *DynInst) bool {
	sa, sb := st.EffAddr, st.EffAddr+uint64(st.Ins.MemSize())
	la, lb := ld.EffAddr, ld.EffAddr+uint64(ld.Ins.MemSize())
	return sa < lb && la < sb
}

func rangeContains(st, ld *DynInst) bool {
	return ld.EffAddr >= st.EffAddr &&
		ld.EffAddr+uint64(ld.Ins.MemSize()) <= st.EffAddr+uint64(st.Ins.MemSize())
}

// extractStoreBytes pulls the load's bytes out of the (containing) store's
// data value.
func extractStoreBytes(stData uint64, st, ld *DynInst) uint64 {
	shift := (ld.EffAddr - st.EffAddr) * 8
	v := stData >> shift
	if sz := ld.Ins.MemSize(); sz < 8 {
		v &= (1 << (8 * uint(sz))) - 1
	}
	return v
}

// checkViolations marks younger loads that already got their data from
// somewhere older than st even though st's address overlaps theirs.
func (c *Core) checkViolations(st *DynInst) {
	for _, ld := range c.lq {
		if ld.Seq <= st.Seq || !ld.MemIssued || ld.Violation {
			continue
		}
		if !rangesOverlap(st, ld) {
			continue
		}
		if ld.FwdStore != nil && ld.FwdStore.Seq >= st.Seq {
			continue // load already sourced from this store or a younger one
		}
		ld.Violation = true
		ld.ViolStore = st
	}
}

// resolveViolations applies at most one pending memory-dependence squash,
// oldest load first, when the policy permits (the violation is an implicit
// branch over the involved addresses).
func (c *Core) resolveViolations() {
	if c.squashedThisCycle {
		return
	}
	for _, ld := range c.lq {
		if !ld.Violation {
			continue
		}
		if c.Pol != nil && !c.Pol.MaySquashOnViolation(ld) {
			ld.DelayedByPolicy = true
			c.Stats.ResolutionDelays++
			return
		}
		c.Stats.MemViolations++
		c.Pred.Hist = ld.HistAt
		c.Pred.Ras.Restore(ld.RasAt)
		c.squashFrom(ld.Seq)
		c.redirect(ld.PC)
		c.squashedThisCycle = true
		return
	}
}

// obliviousLatency consults the optional ObliviousPolicy extension.
func (c *Core) obliviousLatency(di *DynInst) (uint64, bool) {
	op, ok := c.Pol.(ObliviousPolicy)
	if !ok {
		return 0, false
	}
	return op.ObliviousLatency(di)
}
