package pipeline

// noteMemStart records stats when a memory instruction's access finally
// starts: the executed-op counter and, if the policy ever blocked it, the
// delayed-transmitter count and blocked-cycle distribution.
func (c *Core) noteMemStart(di *DynInst) {
	if di.IsLd {
		c.Stats.LoadsExecuted++
	} else {
		c.Stats.StoresExecuted++
	}
	if di.delayCycles > 0 {
		c.Stats.DelayedTransmitters++
		c.Stats.TransmitterDelay.Observe(uint64(di.delayCycles))
	}
}

// memStage advances the load/store unit by one cycle: stores translate
// their addresses (policy-gated) and check younger loads for
// memory-dependence violations; loads perform their (policy-gated) cache
// access, forwarding from the store queue when an older store matches.
func (c *Core) memStage() {
	ports := c.Cfg.MemPorts

	// Skip the prefix of stores that have both translated and run their
	// violation check: no further work here until they drain.
	for c.sqMemSkip < c.sqLen {
		st := c.sqAt(c.sqMemSkip)
		if !st.violCheck || !st.MemIssued {
			break
		}
		c.sqMemSkip++
	}
	sqA, sqB := c.sqWindowFrom(c.sqMemSkip)
	for _, win := range [2][]*DynInst{sqA, sqB} {
		for _, st := range win {
			if !st.AddrKnown {
				continue
			}
			// Violation detection happens when the store's virtual address
			// becomes known, independent of when the store is allowed to
			// "execute" (translate): the LSQ compares virtual addresses.
			if !st.violCheck {
				st.violCheck = true
				c.checkViolations(st)
			}
			if st.MemIssued {
				continue
			}
			if c.Pol != nil && !c.Pol.MayExecuteMem(st) {
				if lat, ok := c.obliviousLatency(st); ok {
					if ports == 0 {
						continue
					}
					ports--
					// Oblivious store execution: no TLB lookup; the address
					// stays architecturally hidden until retirement.
					st.MemIssued = true
					st.Oblivious = true
					st.DoneCycle = c.cycle + lat
					c.Stats.ObliviousExecs++
					c.noteMemStart(st)
					continue
				}
				st.DelayedByPolicy = true
				st.delayCycles++
				c.Stats.TransmitterDelays++
				continue
			}
			if ports == 0 {
				continue
			}
			ports--
			st.MemIssued = true
			c.noteMemStart(st)
			// Store execution is the address translation; the data write
			// happens at retirement (TSO).
			if c.Observer != nil {
				c.Observer('T', c.cycle, st.EffAddr&^0xFFF)
			}
			if c.Tracer != nil {
				c.Tracer.Event(c.cycle, st, "mem")
			}
			extra := c.Hier.DTLB.Translate(st.EffAddr)
			st.DoneCycle = c.cycle + 1 + extra
		}
	}

	// Skip the prefix of loads whose access has started (or that are about
	// to be squashed for a violation): memStage is done with them.
	for c.lqMemSkip < c.lqLen {
		ld := c.lqAt(c.lqMemSkip)
		if !ld.MemIssued && !ld.Violation {
			break
		}
		c.lqMemSkip++
	}
	lqA, lqB := c.lqWindowFrom(c.lqMemSkip)
	for _, win := range [2][]*DynInst{lqA, lqB} {
		for _, ld := range win {
			if !ld.AddrKnown || ld.MemIssued || ld.Violation {
				continue
			}
			if c.Pol != nil && !c.Pol.MayExecuteMem(ld) {
				if lat, ok := c.obliviousLatency(ld); ok && ports > 0 {
					src, status := c.findStoreSource(ld)
					if status == fwdWait {
						continue
					}
					ports--
					// Oblivious load execution: correct data, fixed latency,
					// no speculative cache or TLB state change. The demand
					// access replays non-speculatively at retirement.
					ld.MemIssued = true
					ld.Oblivious = true
					c.noteMemStart(ld)
					ld.DoneCycle = c.cycle + lat
					if status == fwdFrom {
						ld.FwdStore = src
						ld.FwdSeq = src.Seq
						ld.Val = extractStoreBytes(c.val(src.Src2), src, ld)
						c.Stats.STLForwards++
					} else {
						ld.Val = c.Mem.Read(ld.EffAddr, int(ld.MemSz))
					}
					c.Stats.ObliviousExecs++
					continue
				}
				ld.DelayedByPolicy = true
				ld.delayCycles++
				c.Stats.TransmitterDelays++
				continue
			}
			if ports == 0 {
				return
			}
			src, status := c.findStoreSource(ld)
			if status == fwdWait {
				continue // partial overlap or source data not ready yet
			}
			if status == fwdFrom && c.stlForwardPublic(src, ld) {
				// Fast forwarding: the forwarding decision is public (always,
				// on the unprotected machine; under SPT/STT, when STLPublic
				// holds), so the load reads the store queue directly with no
				// cache access.
				ports--
				ld.MemIssued = true
				c.noteMemStart(ld)
				ld.FwdStore = src
				ld.FwdSeq = src.Seq
				ld.Val = extractStoreBytes(c.val(src.Src2), src, ld)
				ld.DoneCycle = c.cycle + c.Hier.Config().L1D.LatencyCycles
				c.Stats.STLForwards++
				if c.Tracer != nil {
					c.Tracer.Event(c.cycle, ld, "mem")
				}
				continue
			}
			// Otherwise the load accesses the cache even when forwarding
			// occurs (the paper's mechanism): the forwarded value is written
			// only when the access completes, so the forwarding decision is
			// not observable through cache state or timing.
			done, ok := c.Hier.AccessData(c.cycle, ld.EffAddr, false)
			if !ok {
				continue // all MSHRs busy; retry next cycle
			}
			if c.Observer != nil {
				c.Observer('L', c.cycle, ld.EffAddr&^63)
			}
			if c.Tracer != nil {
				c.Tracer.Event(c.cycle, ld, "mem")
			}
			ports--
			ld.MemIssued = true
			c.noteMemStart(ld)
			ld.DoneCycle = done
			if status == fwdFrom {
				ld.FwdStore = src
				ld.FwdSeq = src.Seq
				ld.Val = extractStoreBytes(c.val(src.Src2), src, ld)
				c.Stats.STLForwards++
			} else {
				ld.Val = c.Mem.Read(ld.EffAddr, int(ld.MemSz))
			}
		}
	}
}

// stlForwardPublic reports whether forwarding from st to ld may happen
// openly (fast, no camouflage cache access).
func (c *Core) stlForwardPublic(st, ld *DynInst) bool {
	if c.Pol == nil {
		return true
	}
	if q, ok := c.Pol.(STLQuery); ok {
		return q.STLForwardPublic(st, ld)
	}
	return false
}

type fwdStatus uint8

const (
	fwdNone fwdStatus = iota // read from memory
	fwdFrom                  // forward from the returned store
	fwdWait                  // must wait (partial overlap or data not ready)
)

// findStoreSource scans older stores, youngest first, for one overlapping
// the load. Stores whose addresses are still unknown are speculated past
// (memory-dependence speculation); checkViolations catches mistakes. The
// ring is walked as its two contiguous segments, younger one (backwards)
// first, preserving youngest-first order.
func (c *Core) findStoreSource(ld *DynInst) (*DynInst, fwdStatus) {
	older, younger := c.SQWindow()
	for _, win := range [2][]*DynInst{younger, older} {
		for i := len(win) - 1; i >= 0; i-- {
			st := win[i]
			if status, decided := storeMatch(c, st, ld); decided {
				return st, status
			}
		}
	}
	return nil, fwdNone
}

// storeMatch reports whether st settles ld's forwarding decision: decided
// is false when the scan must keep looking at older stores.
func storeMatch(c *Core, st, ld *DynInst) (fwdStatus, bool) {
	if st.Seq >= ld.Seq {
		return fwdNone, false
	}
	if !st.AddrKnown {
		return fwdNone, false // speculate: assume no alias
	}
	if !rangesOverlap(st, ld) {
		return fwdNone, false
	}
	if !rangeContains(st, ld) {
		return fwdWait, true // partial overlap: wait for the store to retire
	}
	if !c.RegReady(st.Src2) {
		return fwdWait, true // store data not produced yet
	}
	return fwdFrom, true
}

func rangesOverlap(st, ld *DynInst) bool {
	sa, sb := st.EffAddr, st.EffAddr+st.MemSz
	la, lb := ld.EffAddr, ld.EffAddr+ld.MemSz
	return sa < lb && la < sb
}

func rangeContains(st, ld *DynInst) bool {
	return ld.EffAddr >= st.EffAddr &&
		ld.EffAddr+ld.MemSz <= st.EffAddr+st.MemSz
}

// extractStoreBytes pulls the load's bytes out of the (containing) store's
// data value.
func extractStoreBytes(stData uint64, st, ld *DynInst) uint64 {
	shift := (ld.EffAddr - st.EffAddr) * 8
	v := stData >> shift
	if sz := ld.MemSz; sz < 8 {
		v &= (1 << (8 * sz)) - 1
	}
	return v
}

// checkViolations marks younger loads that already got their data from
// somewhere older than st even though st's address overlaps theirs. The
// violating store is recorded by value (sequence number and renamed address
// operand) because its ring slot may be recycled before the squash fires.
func (c *Core) checkViolations(st *DynInst) {
	older, younger := c.LQWindow()
	for _, win := range [2][]*DynInst{older, younger} {
		for _, ld := range win {
			if ld.Seq <= st.Seq || !ld.MemIssued || ld.Violation {
				continue
			}
			if !rangesOverlap(st, ld) {
				continue
			}
			if ld.FwdStore != nil && ld.FwdSeq >= st.Seq {
				continue // load already sourced from this store or a younger one
			}
			ld.Violation = true
			c.violPending++
			ld.HasViolStore = true
			ld.ViolStoreSeq = st.Seq
			ld.ViolSrc1 = st.Src1
		}
	}
}

// resolveViolations applies at most one pending memory-dependence squash,
// oldest load first, when the policy permits (the violation is an implicit
// branch over the involved addresses).
func (c *Core) resolveViolations() {
	if c.squashedThisCycle || c.violPending == 0 {
		return
	}
	for i := 0; i < c.lqLen; i++ {
		ld := c.lqAt(i)
		if !ld.Violation {
			continue
		}
		if c.Pol != nil && !c.Pol.MaySquashOnViolation(ld) {
			ld.DelayedByPolicy = true
			c.Stats.ResolutionDelays++
			return
		}
		c.Stats.MemViolations++
		c.Pred.Hist = ld.HistAt
		c.Pred.Ras.Restore(ld.RasAt)
		c.squashFrom(ld.Seq)
		c.redirect(ld.PC)
		c.squashedThisCycle = true
		return
	}
}

// obliviousLatency consults the optional ObliviousPolicy extension.
func (c *Core) obliviousLatency(di *DynInst) (uint64, bool) {
	op, ok := c.Pol.(ObliviousPolicy)
	if !ok {
		return 0, false
	}
	return op.ObliviousLatency(di)
}
