package pipeline_test

import (
	"math/rand"
	"testing"

	"spt/internal/checkpoint"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/taint"
	"spt/internal/workloads"
)

// steadyStateCore builds a core running the gcc-like kernel (branchy
// integer code with loads, stores, and regular squashes) and advances it
// past the cold-start region so every pool — rings, free lists, maps,
// scratch buffers — has reached its high-water mark.
func steadyStateCore(t *testing.T, pol pipeline.Policy) *pipeline.Core {
	t.Helper()
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	c, err := pipeline.New(pipeline.DefaultConfig(), w.Build(1<<40), mem.NewHierarchy(mem.DefaultHierarchyConfig()), pol)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30_000, 1<<60); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSteadyStateAllocs pins the tentpole property of the allocation-free
// hot loop: once warm, simulating an instruction allocates nothing — no
// ROB entries, no fetch-buffer entries, no policy scratch, no memory-system
// state. Measured with testing.AllocsPerRun over 10k-instruction windows
// for the unprotected core and both protection policies.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; run without -race")
	}
	const window = 10_000
	cases := []struct {
		name string
		pol  pipeline.Policy
	}{
		{"unsafe", nil},
		{"stt", taint.NewSTT()},
		{"spt", taint.NewSPT(taint.DefaultSPTConfig())},
	}
	// A core booted from a checkpoint must reach the same allocation-free
	// steady state: restore and the copy-on-write page clones may allocate,
	// but once the working set is cloned the cycle loop allocates nothing.
	checkpointedCore := func(t *testing.T) *pipeline.Core {
		t.Helper()
		w, err := workloads.ByName("gcc")
		if err != nil {
			t.Fatal(err)
		}
		p := w.Build(1 << 40)
		hcfg := mem.DefaultHierarchyConfig()
		cp, err := checkpoint.Build(p, 20_000, hcfg, true)
		if err != nil {
			t.Fatal(err)
		}
		snap, hier, pred := cp.Materialize(hcfg)
		c, err := pipeline.BootFromSnapshot(pipeline.DefaultConfig(), p, hier, nil, snap, pred)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(30_000, 1<<60); err != nil {
			t.Fatal(err)
		}
		return c
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := steadyStateCore(t, tc.pol)
			var runErr error
			avg := testing.AllocsPerRun(5, func() {
				if err := c.Run(c.Stats.Retired+window, 1<<60); err != nil {
					runErr = err
				}
			})
			if runErr != nil {
				t.Fatal(runErr)
			}
			if c.Finished() {
				t.Fatal("program halted inside the measurement window")
			}
			if avg != 0 {
				t.Fatalf("steady-state loop allocates: %.1f allocs per %d-instruction window (%.6f/inst)",
					avg, window, avg/window)
			}
		})
	}

	t.Run("checkpointed", func(t *testing.T) {
		c := checkpointedCore(t)
		var runErr error
		avg := testing.AllocsPerRun(5, func() {
			if err := c.Run(c.Stats.Retired+window, 1<<60); err != nil {
				runErr = err
			}
		})
		if runErr != nil {
			t.Fatal(runErr)
		}
		if c.Finished() {
			t.Fatal("program halted inside the measurement window")
		}
		if avg != 0 {
			t.Fatalf("checkpointed steady-state loop allocates: %.1f allocs per %d-instruction window", avg, window)
		}
	})
}

// TestROBOccupancyBounded is the regression test for the slice-queue bug:
// the ROB (and the other in-flight queues) must never hold more entries
// than their configured capacity, cycle by cycle, including across
// squashes. Narrow structures plus a random branchy program force constant
// wrap-around and tail truncation.
func TestROBOccupancyBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 4; trial++ {
		p := workloads.RandomProgram(rng.Int63(), 100)
		cfg := pipeline.DefaultConfig()
		cfg.ROBSize = 8
		cfg.LQSize = 2
		cfg.SQSize = 2
		cfg.FetchBufferSize = 4
		cfg.RSSize = 8
		c, err := pipeline.New(cfg, p, mem.NewHierarchy(mem.DefaultHierarchyConfig()), nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200_000 && !c.Finished(); i++ {
			c.Step()
			if n := c.ROBLen(); n > cfg.ROBSize {
				t.Fatalf("trial %d cycle %d: ROB occupancy %d exceeds capacity %d", trial, c.Cycle(), n, cfg.ROBSize)
			}
			if n := c.LQLen(); n > cfg.LQSize {
				t.Fatalf("trial %d cycle %d: LQ occupancy %d exceeds capacity %d", trial, c.Cycle(), n, cfg.LQSize)
			}
			if n := c.SQLen(); n > cfg.SQSize {
				t.Fatalf("trial %d cycle %d: SQ occupancy %d exceeds capacity %d", trial, c.Cycle(), n, cfg.SQSize)
			}
		}
		if !c.Finished() {
			t.Fatalf("trial %d: did not finish", trial)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
