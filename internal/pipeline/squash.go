package pipeline

// squashAfter removes every instruction younger than seq (seq survives).
func (c *Core) squashAfter(seq uint64) { c.squashFrom(seq + 1) }

// squashFrom removes every instruction with sequence number >= seq from the
// window, restoring the RAT and free list by walking the squashed region
// youngest-to-oldest. The front end is NOT redirected here; callers follow
// up with redirect().
func (c *Core) squashFrom(seq uint64) {
	cut := c.robLen
	for cut > 0 && c.robAt(cut-1).Seq >= seq {
		cut--
	}
	if cut == c.robLen {
		// Nothing in the ROB to squash; still drop the fetch buffer, which
		// only ever holds instructions younger than anything renamed.
		c.fbHead, c.fbLen = 0, 0
		c.Stats.Squashes++
		c.Stats.SquashDepth.Observe(0)
		return
	}
	c.Stats.SquashDepth.Observe(uint64(c.robLen - cut))
	for j := c.robLen - 1; j >= cut; j-- {
		di := c.robAt(j)
		di.Squashed = true
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, di, "squash")
		}
		if c.Pol != nil {
			c.Pol.OnSquash(di)
		}
		if di.Dispatched {
			c.rsCount--
			di.Dispatched = false
		}
		if di.IsCF && !di.Resolved {
			c.cfUnresolved--
		}
		if di.IsLd || di.IsSt {
			if !di.Done {
				c.memIncomplete--
			}
		} else if di.Issued && !di.Done {
			c.execOutstanding--
		}
		if di.Violation {
			c.violPending--
		}
		if di.Dst != NoReg {
			c.rat[di.Ins.Rd] = di.OldDst
			c.freeList = append(c.freeList, di.Dst)
		}
		c.Stats.SquashedInstrs++
	}
	c.robLen = cut
	for c.lqLen > 0 && c.lqAt(c.lqLen-1).Seq >= seq {
		c.lqLen--
		// Clear the vacated tail slot so no stale pointer lingers.
		j := c.lqHead + c.lqLen
		if j >= len(c.lq) {
			j -= len(c.lq)
		}
		c.lq[j] = nil
	}
	for c.sqLen > 0 && c.sqAt(c.sqLen-1).Seq >= seq {
		c.sqLen--
		j := c.sqHead + c.sqLen
		if j >= len(c.sq) {
			j -= len(c.sq)
		}
		c.sq[j] = nil
	}
	c.fbHead, c.fbLen = 0, 0
	// The truncated tails may have included skipped-prefix entries; clamp
	// the scan-skip indexes to the surviving lengths.
	c.execSkip = min(c.execSkip, c.robLen)
	c.cfSkip = min(c.cfSkip, c.robLen)
	c.vpSkip = min(c.vpSkip, c.robLen)
	c.lqMemSkip = min(c.lqMemSkip, c.lqLen)
	c.lqDoneSkip = min(c.lqDoneSkip, c.lqLen)
	c.sqMemSkip = min(c.sqMemSkip, c.sqLen)
	c.sqDoneSkip = min(c.sqDoneSkip, c.sqLen)
	c.Stats.Squashes++
}

// updateVP advances the visibility point for the configured attack model
// and notifies the policy of every instruction crossing it
// (declassification of transmitter/branch operands happens there).
func (c *Core) updateVP() {
	frontier := c.robLen - 1
	switch c.Cfg.Model {
	case Spectre:
		// An instruction reaches the VP when all older control-flow
		// instructions have resolved: everything up to and including the
		// oldest unresolved control-flow instruction qualifies. When no
		// unresolved control flow is in flight the whole window qualifies
		// without a scan.
		if c.cfUnresolved > 0 {
			for i := 0; i < c.robLen; i++ {
				di := c.robAt(i)
				if di.IsCF && !di.Resolved {
					frontier = i
					break
				}
			}
		}
	case Futuristic:
		// An instruction reaches the VP when it can no longer be squashed.
		// Squash shadows are cast by: unresolved control-flow instructions
		// (mispredict squash), incomplete loads/stores (they may fault —
		// matching the paper's x86 machine, where memory instructions can
		// raise exceptions until they complete; an unknown store address
		// also threatens younger loads with a violation squash), and loads
		// with a pending violation. ALU operations cannot fault in µRISC
		// and cast no shadow, so the VP runs ahead of arithmetic latency.
		// The counters say whether any shadow caster exists at all; the
		// scan for the oldest one runs only when one does.
		if c.cfUnresolved > 0 || c.memIncomplete > 0 || c.violPending > 0 {
			for i := 0; i < c.robLen; i++ {
				di := c.robAt(i)
				shadowCaster := (di.IsCF && !di.Resolved) ||
					((di.IsLd || di.IsSt) && !di.Done) ||
					di.Violation
				if shadowCaster {
					frontier = i
					break
				}
			}
		}
	}
	// AtVP spreads as a contiguous prefix: entries before vpSkip already
	// crossed the visibility point in an earlier cycle.
	for i := c.vpSkip; i <= frontier && i < c.robLen; i++ {
		di := c.robAt(i)
		if !di.AtVP {
			di.AtVP = true
			c.Stats.VPCrossings++
			c.Stats.VPDistance.Observe(c.cycle - di.RenameCycle)
			if c.Tracer != nil {
				c.Tracer.Event(c.cycle, di, "vp")
			}
			if c.Pol != nil {
				c.Pol.OnVP(di)
			}
		}
		c.vpSkip = i + 1
	}
}
