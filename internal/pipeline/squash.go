package pipeline

// squashAfter removes every instruction younger than seq (seq survives).
func (c *Core) squashAfter(seq uint64) { c.squashFrom(seq + 1) }

// squashFrom removes every instruction with sequence number >= seq from the
// window, restoring the RAT and free list by walking the squashed region
// youngest-to-oldest. The front end is NOT redirected here; callers follow
// up with redirect().
func (c *Core) squashFrom(seq uint64) {
	cut := len(c.rob)
	for cut > 0 && c.rob[cut-1].Seq >= seq {
		cut--
	}
	if cut == len(c.rob) {
		// Nothing in the ROB to squash; still drop the fetch buffer, which
		// only ever holds instructions younger than anything renamed.
		c.fetchBuf = c.fetchBuf[:0]
		c.Stats.Squashes++
		return
	}
	for j := len(c.rob) - 1; j >= cut; j-- {
		di := c.rob[j]
		di.Squashed = true
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, di, "squash")
		}
		if c.Pol != nil {
			c.Pol.OnSquash(di)
		}
		if di.Dispatched {
			c.rsCount--
			di.Dispatched = false
		}
		if di.Dst != NoReg {
			c.rat[di.Ins.Rd] = di.OldDst
			c.freeList = append(c.freeList, di.Dst)
		}
		c.Stats.SquashedInstrs++
	}
	c.rob = c.rob[:cut]
	c.lq = truncateQueue(c.lq, seq)
	c.sq = truncateQueue(c.sq, seq)
	c.fetchBuf = c.fetchBuf[:0]
	c.Stats.Squashes++
}

func truncateQueue(q []*DynInst, seq uint64) []*DynInst {
	cut := len(q)
	for cut > 0 && q[cut-1].Seq >= seq {
		cut--
	}
	return q[:cut]
}

// updateVP advances the visibility point for the configured attack model
// and notifies the policy of every instruction crossing it
// (declassification of transmitter/branch operands happens there).
func (c *Core) updateVP() {
	frontier := len(c.rob) - 1
	switch c.Cfg.Model {
	case Spectre:
		// An instruction reaches the VP when all older control-flow
		// instructions have resolved: everything up to and including the
		// oldest unresolved control-flow instruction qualifies.
		for i, di := range c.rob {
			if di.IsCF && !di.Resolved {
				frontier = i
				break
			}
		}
	case Futuristic:
		// An instruction reaches the VP when it can no longer be squashed.
		// Squash shadows are cast by: unresolved control-flow instructions
		// (mispredict squash), incomplete loads/stores (they may fault —
		// matching the paper's x86 machine, where memory instructions can
		// raise exceptions until they complete; an unknown store address
		// also threatens younger loads with a violation squash), and loads
		// with a pending violation. ALU operations cannot fault in µRISC
		// and cast no shadow, so the VP runs ahead of arithmetic latency.
		for i, di := range c.rob {
			shadowCaster := (di.IsCF && !di.Resolved) ||
				(di.Ins.IsMem() && !di.Done) ||
				di.Violation
			if shadowCaster {
				frontier = i
				break
			}
		}
	}
	for i := 0; i <= frontier && i < len(c.rob); i++ {
		di := c.rob[i]
		if !di.AtVP {
			di.AtVP = true
			if c.Tracer != nil {
				c.Tracer.Event(c.cycle, di, "vp")
			}
			if c.Pol != nil {
				c.Pol.OnVP(di)
			}
		}
	}
}
