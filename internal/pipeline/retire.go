package pipeline

import "spt/internal/isa"

// retire commits completed instructions in program order. Stores write the
// functional memory and the data cache here (TSO: memory becomes visible at
// retirement). Retiring pops the ROB ring head; the slot is recycled by a
// later rename, so h stays readable for the rest of this stage.
func (c *Core) retire() {
	for n := 0; n < c.Cfg.RetireWidth; n++ {
		if c.robLen == 0 {
			return
		}
		h := c.robAt(0)
		if !h.Done || h.Violation {
			if (h.IsLd || h.IsSt) && !h.Done {
				c.Stats.RetireStallsMemory++
			}
			return
		}
		if h.IsCF && !h.Resolved {
			return
		}

		if h.IsLd && h.Oblivious {
			// Replay the suppressed demand access now that it is
			// non-speculative (warms the cache like a normal load would).
			if c.Observer != nil {
				c.Observer('R', c.cycle, h.EffAddr&^63)
			}
			c.Hier.AccessData(c.cycle, h.EffAddr, false)
		}
		if h.IsSt {
			if c.Observer != nil {
				c.Observer('W', c.cycle, h.EffAddr&^63)
			}
			c.Mem.Write(h.EffAddr, int(h.MemSz), h.Val)
			// The retirement write updates cache state; a store buffer
			// absorbs the latency, so retire does not stall on it.
			c.Hier.AccessData(c.cycle, h.EffAddr, true)
		}

		h.Retired = true
		if c.Tracer != nil {
			c.Tracer.Event(c.cycle, h, "retire")
		}
		c.robPopHead()
		if h.IsLd {
			c.lqPopHead()
		}
		if h.IsSt {
			c.sqPopHead()
		}
		if h.Dst != NoReg && h.OldDst != NoReg {
			c.freeList = append(c.freeList, h.OldDst)
		}
		c.Stats.Retired++
		if c.Pol != nil {
			c.Pol.OnRetire(h)
		}
		if h.Ins.Op == isa.HALT {
			c.finished = true
			return
		}
	}
}
