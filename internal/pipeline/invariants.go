package pipeline

import "fmt"

// CheckInvariants validates the core's internal consistency. Tests call it
// between cycles and after runs; it is not called on the hot path.
//
// Checked invariants:
//   - physical register conservation: every register is exactly one of
//     {architecturally mapped, in-flight destination, free};
//   - the RAT maps the zero register to physical register 0 and every
//     other architectural register to a unique physical register;
//   - ROB/LQ/SQ are sequence-ordered and the memory queues are exactly the
//     memory subsets of the ROB;
//   - the RS occupancy counter matches the dispatched-not-issued count.
func (c *Core) CheckInvariants() error {
	// RAT validity and uniqueness.
	if c.rat[0] != 0 {
		return fmt.Errorf("invariant: zero register mapped to p%d", c.rat[0])
	}
	seen := make(map[PhysReg]string, c.Cfg.PhysRegs)
	for r, p := range c.rat {
		if p < 0 || int(p) >= c.Cfg.PhysRegs {
			return fmt.Errorf("invariant: rat[r%d] = p%d out of range", r, p)
		}
		if r != 0 {
			if prev, dup := seen[p]; dup {
				return fmt.Errorf("invariant: p%d mapped by both %s and r%d", p, prev, r)
			}
			seen[p] = fmt.Sprintf("r%d", r)
		}
	}

	// In-flight destinations are disjoint from the RAT-committed view only
	// through OldDst chains; each in-flight Dst must be unique and not
	// free.
	for _, di := range c.rob {
		if di.Dst == NoReg {
			continue
		}
		if prev, dup := seen[di.Dst]; dup && prev != fmt.Sprintf("r%d", di.Ins.Rd) {
			return fmt.Errorf("invariant: p%d owned by %s and seq %d", di.Dst, prev, di.Seq)
		}
		seen[di.Dst] = fmt.Sprintf("seq%d", di.Seq)
	}
	free := make(map[PhysReg]bool, len(c.freeList))
	for _, p := range c.freeList {
		if free[p] {
			return fmt.Errorf("invariant: p%d on the free list twice", p)
		}
		free[p] = true
		if owner, used := seen[p]; used && owner[0] == 's' {
			return fmt.Errorf("invariant: p%d free but in flight (%s)", p, owner)
		}
	}

	// Conservation: mapped + in-flight OldDst chain + free = all.
	// Every physical register except p0 must be either free, RAT-mapped,
	// an in-flight Dst, or an in-flight OldDst (awaiting retirement).
	owned := make(map[PhysReg]bool, c.Cfg.PhysRegs)
	owned[0] = true
	for r := 1; r < len(c.rat); r++ {
		owned[c.rat[r]] = true
	}
	for _, di := range c.rob {
		if di.Dst != NoReg {
			owned[di.Dst] = true
		}
		if di.OldDst != NoReg {
			owned[di.OldDst] = true
		}
	}
	for p := range free {
		owned[p] = true
	}
	for p := 1; p < c.Cfg.PhysRegs; p++ {
		if !owned[PhysReg(p)] {
			return fmt.Errorf("invariant: p%d leaked (not mapped, in flight, or free)", p)
		}
	}

	// Queue ordering and membership.
	var lastSeq uint64
	for i, di := range c.rob {
		if i > 0 && di.Seq <= lastSeq {
			return fmt.Errorf("invariant: ROB out of order at %d", i)
		}
		lastSeq = di.Seq
		if di.Squashed {
			return fmt.Errorf("invariant: squashed seq %d still in ROB", di.Seq)
		}
	}
	li, si := 0, 0
	for _, di := range c.rob {
		if di.Ins.IsLoad() {
			if li >= len(c.lq) || c.lq[li] != di {
				return fmt.Errorf("invariant: LQ does not mirror ROB loads at seq %d", di.Seq)
			}
			li++
		}
		if di.Ins.IsStore() {
			if si >= len(c.sq) || c.sq[si] != di {
				return fmt.Errorf("invariant: SQ does not mirror ROB stores at seq %d", di.Seq)
			}
			si++
		}
	}
	if li != len(c.lq) || si != len(c.sq) {
		return fmt.Errorf("invariant: stale LQ/SQ entries (%d/%d extra)", len(c.lq)-li, len(c.sq)-si)
	}

	// RS accounting.
	rs := 0
	for _, di := range c.rob {
		if di.Dispatched && !di.Issued {
			rs++
		}
	}
	if rs != c.rsCount {
		return fmt.Errorf("invariant: rsCount %d, actual %d", c.rsCount, rs)
	}

	// VP monotonicity: AtVP entries form a prefix of the ROB.
	prefix := true
	for _, di := range c.rob {
		if di.AtVP && !prefix {
			return fmt.Errorf("invariant: AtVP not a ROB prefix at seq %d", di.Seq)
		}
		if !di.AtVP {
			prefix = false
		}
	}
	return nil
}
