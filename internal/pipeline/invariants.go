package pipeline

import "fmt"

// CheckInvariants validates the core's internal consistency. Tests call it
// between cycles and after runs; it is not called on the hot path.
//
// Checked invariants:
//   - physical register conservation: every register is exactly one of
//     {architecturally mapped, in-flight destination, free};
//   - the RAT maps the zero register to physical register 0 and every
//     other architectural register to a unique physical register;
//   - ROB/LQ/SQ are sequence-ordered and the memory queues are exactly the
//     memory subsets of the ROB;
//   - the RS/control-flow/execution occupancy counters match recounts.
func (c *Core) CheckInvariants() error {
	// RAT validity and uniqueness.
	if c.rat[0] != 0 {
		return fmt.Errorf("invariant: zero register mapped to p%d", c.rat[0])
	}
	seen := make(map[PhysReg]string, c.Cfg.PhysRegs)
	for r, p := range c.rat {
		if p < 0 || int(p) >= c.Cfg.PhysRegs {
			return fmt.Errorf("invariant: rat[r%d] = p%d out of range", r, p)
		}
		if r != 0 {
			if prev, dup := seen[p]; dup {
				return fmt.Errorf("invariant: p%d mapped by both %s and r%d", p, prev, r)
			}
			seen[p] = fmt.Sprintf("r%d", r)
		}
	}

	// In-flight destinations are disjoint from the RAT-committed view only
	// through OldDst chains; each in-flight Dst must be unique and not
	// free.
	for i := 0; i < c.robLen; i++ {
		di := c.robAt(i)
		if di.Dst == NoReg {
			continue
		}
		if prev, dup := seen[di.Dst]; dup && prev != fmt.Sprintf("r%d", di.Ins.Rd) {
			return fmt.Errorf("invariant: p%d owned by %s and seq %d", di.Dst, prev, di.Seq)
		}
		seen[di.Dst] = fmt.Sprintf("seq%d", di.Seq)
	}
	free := make(map[PhysReg]bool, len(c.freeList))
	for _, p := range c.freeList {
		if free[p] {
			return fmt.Errorf("invariant: p%d on the free list twice", p)
		}
		free[p] = true
		if owner, used := seen[p]; used && owner[0] == 's' {
			return fmt.Errorf("invariant: p%d free but in flight (%s)", p, owner)
		}
	}

	// Conservation: mapped + in-flight OldDst chain + free = all.
	// Every physical register except p0 must be either free, RAT-mapped,
	// an in-flight Dst, or an in-flight OldDst (awaiting retirement).
	owned := make(map[PhysReg]bool, c.Cfg.PhysRegs)
	owned[0] = true
	for r := 1; r < len(c.rat); r++ {
		owned[c.rat[r]] = true
	}
	for i := 0; i < c.robLen; i++ {
		di := c.robAt(i)
		if di.Dst != NoReg {
			owned[di.Dst] = true
		}
		if di.OldDst != NoReg {
			owned[di.OldDst] = true
		}
	}
	for p := range free {
		owned[p] = true
	}
	for p := 1; p < c.Cfg.PhysRegs; p++ {
		if !owned[PhysReg(p)] {
			return fmt.Errorf("invariant: p%d leaked (not mapped, in flight, or free)", p)
		}
	}

	// Occupancy bounds: the rings must never exceed their configured
	// capacities (the slice-queue representation could silently grow).
	if c.robLen > c.Cfg.ROBSize {
		return fmt.Errorf("invariant: ROB occupancy %d exceeds capacity %d", c.robLen, c.Cfg.ROBSize)
	}
	if c.lqLen > c.Cfg.LQSize {
		return fmt.Errorf("invariant: LQ occupancy %d exceeds capacity %d", c.lqLen, c.Cfg.LQSize)
	}
	if c.sqLen > c.Cfg.SQSize {
		return fmt.Errorf("invariant: SQ occupancy %d exceeds capacity %d", c.sqLen, c.Cfg.SQSize)
	}
	if c.fbLen > c.Cfg.FetchBufferSize {
		return fmt.Errorf("invariant: fetch buffer occupancy %d exceeds capacity %d", c.fbLen, c.Cfg.FetchBufferSize)
	}

	// Queue ordering and membership.
	var lastSeq uint64
	for i := 0; i < c.robLen; i++ {
		di := c.robAt(i)
		if i > 0 && di.Seq <= lastSeq {
			return fmt.Errorf("invariant: ROB out of order at %d", i)
		}
		lastSeq = di.Seq
		if di.Squashed {
			return fmt.Errorf("invariant: squashed seq %d still in ROB", di.Seq)
		}
	}
	li, si := 0, 0
	for i := 0; i < c.robLen; i++ {
		di := c.robAt(i)
		if di.Ins.IsLoad() {
			if li >= c.lqLen || c.lqAt(li) != di {
				return fmt.Errorf("invariant: LQ does not mirror ROB loads at seq %d", di.Seq)
			}
			li++
		}
		if di.Ins.IsStore() {
			if si >= c.sqLen || c.sqAt(si) != di {
				return fmt.Errorf("invariant: SQ does not mirror ROB stores at seq %d", di.Seq)
			}
			si++
		}
	}
	if li != c.lqLen || si != c.sqLen {
		return fmt.Errorf("invariant: stale LQ/SQ entries (%d/%d extra)", c.lqLen-li, c.sqLen-si)
	}

	// Cached decode classification must match the opcode.
	for i := 0; i < c.robLen; i++ {
		di := c.robAt(i)
		if di.IsLd != di.Ins.IsLoad() || di.IsSt != di.Ins.IsStore() || di.MemSz != uint64(di.Ins.MemSize()) {
			return fmt.Errorf("invariant: cached decode flags stale at seq %d", di.Seq)
		}
	}

	// Scan-bounding counters: each must equal an explicit recount, since
	// the hot loops trust them to terminate scans early.
	rs, cf, eo, mi, vp := 0, 0, 0, 0, 0
	for i := 0; i < c.robLen; i++ {
		di := c.robAt(i)
		if di.Dispatched && !di.Issued {
			rs++
		}
		if di.IsCF && !di.Resolved {
			cf++
		}
		isMem := di.IsLd || di.IsSt
		if di.Issued && !di.Done && !isMem {
			eo++
		}
		if isMem && !di.Done {
			mi++
		}
		if di.Violation {
			vp++
		}
	}
	if rs != c.rsCount {
		return fmt.Errorf("invariant: rsCount %d, actual %d", c.rsCount, rs)
	}
	if cf != c.cfUnresolved {
		return fmt.Errorf("invariant: cfUnresolved %d, actual %d", c.cfUnresolved, cf)
	}
	if eo != c.execOutstanding {
		return fmt.Errorf("invariant: execOutstanding %d, actual %d", c.execOutstanding, eo)
	}
	if mi != c.memIncomplete {
		return fmt.Errorf("invariant: memIncomplete %d, actual %d", c.memIncomplete, mi)
	}
	if vp != c.violPending {
		return fmt.Errorf("invariant: violPending %d, actual %d", c.violPending, vp)
	}

	// The RS list must cover every occupied RS slot exactly once (stale
	// references are allowed; issue() drops them lazily).
	live := 0
	for _, e := range c.rsList {
		if e.di.Seq == e.seq && e.di.Dispatched && !e.di.Issued {
			live++
		}
	}
	if live != c.rsCount {
		return fmt.Errorf("invariant: rsList holds %d live entries, rsCount %d", live, c.rsCount)
	}

	// Prefix-skip indexes: every skipped entry must satisfy its scan's
	// "never again actionable" condition.
	type skip struct {
		name string
		idx  int
		max  int
		ok   func(i int) bool
	}
	checks := []skip{
		{"execSkip", c.execSkip, c.robLen, func(i int) bool {
			di := c.robAt(i)
			return di.Done || di.IsLd || di.IsSt
		}},
		{"cfSkip", c.cfSkip, c.robLen, func(i int) bool {
			di := c.robAt(i)
			return !di.IsCF || di.Resolved
		}},
		{"vpSkip", c.vpSkip, c.robLen, func(i int) bool { return c.robAt(i).AtVP }},
		{"lqMemSkip", c.lqMemSkip, c.lqLen, func(i int) bool {
			ld := c.lqAt(i)
			return ld.MemIssued || ld.Violation
		}},
		{"lqDoneSkip", c.lqDoneSkip, c.lqLen, func(i int) bool { return c.lqAt(i).Done }},
		{"sqMemSkip", c.sqMemSkip, c.sqLen, func(i int) bool {
			st := c.sqAt(i)
			return st.violCheck && st.MemIssued
		}},
		{"sqDoneSkip", c.sqDoneSkip, c.sqLen, func(i int) bool { return c.sqAt(i).Done }},
	}
	for _, s := range checks {
		if s.idx < 0 || s.idx > s.max {
			return fmt.Errorf("invariant: %s = %d out of range [0,%d]", s.name, s.idx, s.max)
		}
		for i := 0; i < s.idx; i++ {
			if !s.ok(i) {
				return fmt.Errorf("invariant: %s = %d skips an actionable entry at %d", s.name, s.idx, i)
			}
		}
	}

	// VP monotonicity: AtVP entries form a prefix of the ROB.
	prefix := true
	for i := 0; i < c.robLen; i++ {
		di := c.robAt(i)
		if di.AtVP && !prefix {
			return fmt.Errorf("invariant: AtVP not a ROB prefix at seq %d", di.Seq)
		}
		if !di.AtVP {
			prefix = false
		}
	}
	return nil
}
