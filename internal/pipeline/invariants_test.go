package pipeline_test

import (
	"math/rand"
	"testing"

	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/workloads"
)

// TestInvariantsHoldEveryCycle steps random programs cycle by cycle and
// validates the core's structural invariants continuously — catching
// free-list leaks, RAT corruption, and stale queue entries that
// end-of-run architectural checks can miss.
func TestInvariantsHoldEveryCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 8; trial++ {
		p := workloads.RandomProgram(rng.Int63(), 60)
		for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
			c, err := pipeline.New(pipeline.DefaultConfig(), p, mem.NewHierarchy(mem.DefaultHierarchyConfig()), nil)
			if err != nil {
				t.Fatal(err)
			}
			_ = model
			for i := 0; i < 500_000 && !c.Finished(); i++ {
				c.Step()
				if i%64 == 0 { // checking every cycle is O(n^2)-ish; sample
					if err := c.CheckInvariants(); err != nil {
						t.Fatalf("trial %d cycle %d: %v", trial, c.Cycle(), err)
					}
				}
			}
			if !c.Finished() {
				t.Fatal("did not finish")
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("after finish: %v", err)
			}
		}
	}
}

// TestNoPhysRegLeakAfterDrain: after a program retires completely, all
// physical registers outside the architectural mapping are free again.
func TestNoPhysRegLeakAfterDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	p := workloads.RandomProgram(rng.Int63(), 120)
	c, err := pipeline.New(pipeline.DefaultConfig(), p, mem.NewHierarchy(mem.DefaultHierarchyConfig()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10_000_000, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := c.ROBLen(); got != 0 {
		// HALT retires and stops the clock; wrong-path leftovers younger
		// than HALT may remain but must never have retired.
		for i := 0; i < c.ROBLen(); i++ {
			if di := c.ROBAt(i); di.Retired {
				t.Fatalf("retired instruction seq %d stuck in ROB", di.Seq)
			}
		}
		_ = got
	}
}
