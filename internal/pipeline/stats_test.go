package pipeline_test

import (
	"testing"

	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/taint"
	"spt/internal/workloads"
)

// TestStatsRegistryInstrumentation runs a real workload under each scheme
// and cross-checks the registry dump against the core's counters and basic
// pipeline identities.
func TestStatsRegistryInstrumentation(t *testing.T) {
	cases := []struct {
		name string
		pol  pipeline.Policy
	}{
		{"unsafe", nil},
		{"stt", taint.NewSTT()},
		{"spt", taint.NewSPT(taint.DefaultSPTConfig())},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := workloads.ByName("gcc")
			if err != nil {
				t.Fatal(err)
			}
			c, err := pipeline.New(pipeline.DefaultConfig(), w.Build(1<<40), mem.NewHierarchy(mem.DefaultHierarchyConfig()), tc.pol)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Run(20_000, 1<<60); err != nil {
				t.Fatal(err)
			}
			d := c.StatsRegistry().Dump()

			scalar := func(name string) uint64 {
				t.Helper()
				v, ok := d.Get(name)
				if !ok {
					t.Fatalf("stat %q not registered", name)
				}
				return v.Scalar
			}
			if got := scalar("sim.insts"); got != c.Stats.Retired {
				t.Errorf("sim.insts = %d, want %d", got, c.Stats.Retired)
			}
			if got := scalar("sim.cycles"); got == 0 {
				t.Error("sim.cycles is zero after a run")
			}
			// Pipeline identities: every retired instruction was renamed, and
			// rename count covers retired plus squashed in-flight work.
			if c.Stats.Renamed < c.Stats.Retired {
				t.Errorf("renamed %d < retired %d", c.Stats.Renamed, c.Stats.Retired)
			}
			if scalar("rename.insts") != c.Stats.Renamed {
				t.Error("rename.insts does not track Stats.Renamed")
			}
			if scalar("issue.insts") == 0 {
				t.Error("issue.insts is zero")
			}
			if scalar("vp.crossings") == 0 {
				t.Error("vp.crossings is zero")
			}
			if scalar("mem.loads_executed") == 0 {
				t.Error("mem.loads_executed is zero")
			}
			if scalar("l1d.accesses") == 0 {
				t.Error("l1d.accesses is zero")
			}
			if scalar("pred.cond_predicts") == 0 {
				t.Error("pred.cond_predicts is zero")
			}
			rs, ok := d.Get("issue.rs_delay")
			if !ok || rs.Dist == nil {
				t.Fatal("issue.rs_delay histogram missing")
			}
			if rs.Dist.Count != scalar("issue.insts") {
				t.Errorf("rs_delay count %d != issued %d", rs.Dist.Count, scalar("issue.insts"))
			}
			vd, _ := d.Get("vp.distance")
			if vd.Dist == nil || vd.Dist.Count != scalar("vp.crossings") {
				t.Error("vp.distance count does not match vp.crossings")
			}

			if tc.pol == nil {
				if got := scalar("policy.delayed_transmitters"); got != 0 {
					t.Errorf("unsafe core delayed %d transmitters", got)
				}
				if _, ok := d.Get("spt.tainted_at_rename"); ok {
					t.Error("policy stats registered without a policy")
				}
				return
			}
			// Protected schemes must delay at least one transmitter on gcc,
			// and each delayed transmitter contributes one histogram sample.
			if scalar("policy.delayed_transmitters") == 0 {
				t.Error("protected scheme delayed no transmitters")
			}
			td, _ := d.Get("policy.transmitter_delay")
			if td.Dist == nil || td.Dist.Count != scalar("policy.delayed_transmitters") {
				t.Error("transmitter_delay count does not match delayed_transmitters")
			}
			switch tc.pol.(type) {
			case *taint.SPT:
				if scalar("spt.tainted_at_rename") == 0 {
					t.Error("spt.tainted_at_rename is zero")
				}
				if scalar("spt.untaint.vp-declassify") == 0 {
					t.Error("spt.untaint.vp-declassify is zero")
				}
			case *taint.STT:
				if scalar("stt.tainted_at_rename") == 0 {
					t.Error("stt.tainted_at_rename is zero")
				}
				if scalar("stt.untaints") == 0 {
					t.Error("stt.untaints is zero")
				}
			}
		})
	}
}

// TestStatsDumpStable checks two identical runs produce byte-identical
// stats output (the grid-determinism property at the single-core level).
func TestStatsDumpStable(t *testing.T) {
	run := func() string {
		w, err := workloads.ByName("mcf")
		if err != nil {
			t.Fatal(err)
		}
		c, err := pipeline.New(pipeline.DefaultConfig(), w.Build(1<<40), mem.NewHierarchy(mem.DefaultHierarchyConfig()), taint.NewSPT(taint.DefaultSPTConfig()))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(10_000, 1<<60); err != nil {
			t.Fatal(err)
		}
		j, err := c.StatsRegistry().Dump().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	if a, b := run(), run(); a != b {
		t.Fatal("stats dumps differ between identical runs")
	}
}
