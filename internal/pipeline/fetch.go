package pipeline

import "spt/internal/isa"

// fbAt returns the i-th oldest fetch-buffer entry (0 = next to rename).
// Entries live in a fixed ring; a popped slot stays readable until fetch
// pushes into it again, which cannot happen before the next fetch stage.
func (c *Core) fbAt(i int) *fetchEntry {
	j := c.fbHead + i
	if j >= len(c.fetchBuf) {
		j -= len(c.fetchBuf)
	}
	return &c.fetchBuf[j]
}

// fbPush claims and zeroes the ring slot behind the youngest entry. The
// caller must have checked fbLen < Cfg.FetchBufferSize.
func (c *Core) fbPush() *fetchEntry {
	fe := c.fbAt(c.fbLen)
	*fe = fetchEntry{}
	c.fbLen++
	return fe
}

func (c *Core) fbPopHead() {
	c.fbHead++
	if c.fbHead == len(c.fetchBuf) {
		c.fbHead = 0
	}
	c.fbLen--
}

// fetch fills the decoupled fetch buffer along the predicted path. One
// I-cache access covers a fetch group; a group ends at a predicted-taken
// control transfer or an I-cache line boundary.
func (c *Core) fetch() {
	if c.halted || c.cycle < c.fetchStallTil {
		return
	}
	if c.fbLen >= c.Cfg.FetchBufferSize {
		return
	}
	// Instruction storage is byte-addressed through the encoded form.
	lineBytes := uint64(c.Hier.L1I.Config().LineBytes)
	fetchAddr := c.fetchPC * isa.WordSize
	done := c.Hier.AccessInstr(c.cycle, fetchAddr)
	if done > c.cycle+c.Hier.Config().L1I.LatencyCycles {
		// I-cache miss: stall the front end until the fill completes.
		c.fetchStallTil = done
		return
	}
	lineBase := fetchAddr / lineBytes

	for n := 0; n < c.Cfg.FetchWidth && c.fbLen < c.Cfg.FetchBufferSize; n++ {
		pc := c.fetchPC
		if pc*isa.WordSize/lineBytes != lineBase {
			break // crossed into the next I-cache line
		}
		var ins isa.Instruction
		if pc < uint64(len(c.Prog.Code)) {
			ins = c.Prog.Code[pc]
		} else {
			// Wrong-path fetch beyond the program: synthesize a NOP; it is
			// guaranteed to be squashed (a correct program halts).
			ins = isa.Instruction{Op: isa.NOP}
		}
		fe := c.fbPush()
		fe.pc = pc
		fe.ins = ins
		fe.readyCycle = done + c.Cfg.FrontendDepth
		if ins.IsLoad() {
			// Only loads need front-end repair state outside a checkpoint:
			// a memory-dependence violation squashes from the load and must
			// restore the history/RAS the load was fetched under. Control
			// transfers carry their own snapshot inside the predictor
			// checkpoint, and nothing else can trigger a squash.
			fe.histAt = c.Pred.Hist
			fe.rasAt = c.Pred.Ras.Snapshot()
		}
		c.Stats.Fetched++

		nextPC := pc + 1
		switch {
		case ins.IsCondBranch():
			c.Pred.PredictCond(pc, &fe.cp)
			fe.hasCp = true
			nextPC = fe.cp.Target
		case ins.Op == isa.JAL:
			target := pc + uint64(ins.Imm)
			c.Pred.PredictJump(pc, target, true, ins.IsCall(), false, &fe.cp)
			fe.hasCp = true
			nextPC = fe.cp.Target
		case ins.Op == isa.JALR:
			c.Pred.PredictJump(pc, 0, false, ins.IsCall(), ins.IsReturn(), &fe.cp)
			fe.hasCp = true
			nextPC = fe.cp.Target
		case ins.Op == isa.HALT:
			c.halted = true
		}
		fe.predTarget = nextPC
		c.fetchPC = nextPC
		if c.halted {
			break
		}
		if fe.hasCp && nextPC != pc+1 {
			break // redirected: next group starts next cycle
		}
	}
}

// redirect points fetch at pc and drops everything in the front end.
func (c *Core) redirect(pc uint64) {
	c.fbHead, c.fbLen = 0, 0
	c.fetchPC = pc
	c.halted = false
	// One bubble for the redirect itself; the refilled instructions then
	// pay the frontend depth through their readyCycle.
	c.fetchStallTil = c.cycle + 1
}
