package serve

import (
	"strings"
	"testing"
)

func simulateSpec(workload string) *JobSpec {
	return &JobSpec{Type: TypeSimulate, Cells: []CellSpec{{Workload: workload}}}
}

func TestNormalizeFillsDefaults(t *testing.T) {
	s := simulateSpec("mcf")
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	c := s.Cells[0]
	if c.Scheme != "unsafe" || c.Model != "futuristic" || c.Width != 3 || c.Budget != defaultBudget {
		t.Fatalf("defaults not applied: %+v", c)
	}

	f := &JobSpec{Type: TypeFuzz}
	if err := f.Normalize(); err != nil {
		t.Fatal(err)
	}
	if f.Fuzz.Seed != 1 || f.Fuzz.Count != 32 {
		t.Fatalf("fuzz defaults not applied: %+v", f.Fuzz)
	}
	if len(f.Fuzz.Schemes) == 0 || len(f.Fuzz.Models) == 0 {
		t.Fatalf("fuzz grids not defaulted: %+v", f.Fuzz)
	}

	v := &JobSpec{Type: TypeVerify, Verify: &VerifySpec{Count: 4}}
	if err := v.Normalize(); err != nil {
		t.Fatal(err)
	}
	if v.Verify.Seed != 1 || len(v.Verify.Schemes) == 0 {
		t.Fatalf("verify defaults not applied: %+v", v.Verify)
	}
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec *JobSpec
		want string
	}{
		{"unknown type", &JobSpec{Type: "nope"}, "unknown job type"},
		{"simulate no cells", &JobSpec{Type: TypeSimulate}, "exactly one cell"},
		{"simulate two cells", &JobSpec{Type: TypeSimulate, Cells: []CellSpec{{Workload: "mcf"}, {Workload: "xz"}}}, "exactly one cell"},
		{"grid no cells", &JobSpec{Type: TypeGrid}, "at least one cell"},
		{"unknown workload", simulateSpec("no-such-workload"), "workload"},
		{"unknown scheme", &JobSpec{Type: TypeSimulate, Cells: []CellSpec{{Workload: "mcf", Scheme: "bogus"}}}, "unknown scheme"},
		{"unknown model", &JobSpec{Type: TypeSimulate, Cells: []CellSpec{{Workload: "mcf", Model: "bogus"}}}, "unknown attack model"},
		{"skip and sample", &JobSpec{Type: TypeSimulate, Cells: []CellSpec{{Workload: "mcf", Skip: 100, Sample: "4"}}}, "mutually exclusive"},
		{"bad sample", &JobSpec{Type: TypeSimulate, Cells: []CellSpec{{Workload: "mcf", Sample: "x:y"}}}, "sample"},
		{"simulate with fuzz", &JobSpec{Type: TypeSimulate, Cells: []CellSpec{{Workload: "mcf"}}, Fuzz: &FuzzSpec{}}, "cells only"},
		{"fuzz with cells", &JobSpec{Type: TypeFuzz, Cells: []CellSpec{{Workload: "mcf"}}}, "fuzz section only"},
		{"fuzz bad scheme", &JobSpec{Type: TypeFuzz, Fuzz: &FuzzSpec{Schemes: []string{"bogus"}}}, "unknown scheme"},
		{"fuzz negative", &JobSpec{Type: TypeFuzz, Fuzz: &FuzzSpec{Count: -1}}, "non-negative"},
		{"verify no count", &JobSpec{Type: TypeVerify, Verify: &VerifySpec{}}, "count > 0"},
		{"verify nil", &JobSpec{Type: TypeVerify}, "count > 0"},
		{"verify with fuzz", &JobSpec{Type: TypeVerify, Verify: &VerifySpec{Count: 1}, Fuzz: &FuzzSpec{}}, "verify section only"},
		{"verify bad model", &JobSpec{Type: TypeVerify, Verify: &VerifySpec{Count: 1, Models: []string{"bogus"}}}, "unknown attack model"},
	}
	for _, tc := range cases {
		err := tc.spec.Normalize()
		if err == nil {
			t.Errorf("%s: Normalize accepted an invalid spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func mustKey(t *testing.T, s *JobSpec) string {
	t.Helper()
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	k, err := s.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestKeyCanonicalization is the coalescing correctness core: a spec that
// spells out the defaults must produce the same content address as one
// that omits them, and scheduling hints (priority, tenant) must not
// change the key.
func TestKeyCanonicalization(t *testing.T) {
	base := mustKey(t, simulateSpec("mcf"))

	explicit := &JobSpec{Type: TypeSimulate, Cells: []CellSpec{{
		Workload: "mcf", Scheme: "unsafe", Model: "futuristic", Width: 3, Budget: defaultBudget,
	}}}
	if k := mustKey(t, explicit); k != base {
		t.Fatalf("defaulted and explicit specs disagree: %s vs %s", base, k)
	}

	hinted := simulateSpec("mcf")
	hinted.Priority = 9
	hinted.Tenant = "alice"
	if k := mustKey(t, hinted); k != base {
		t.Fatal("priority/tenant leaked into the content address")
	}

	if k := mustKey(t, simulateSpec("xz")); k == base {
		t.Fatal("different workloads share a key")
	}
	other := simulateSpec("mcf")
	other.Cells[0].Scheme = "spt"
	if k := mustKey(t, other); k == base {
		t.Fatal("different schemes share a key")
	}
	budget := simulateSpec("mcf")
	budget.Cells[0].Budget = 5000
	if k := mustKey(t, budget); k == base {
		t.Fatal("different budgets share a key")
	}
}

func TestKeyDistinguishesTypes(t *testing.T) {
	fz := mustKey(t, &JobSpec{Type: TypeFuzz, Fuzz: &FuzzSpec{Count: 4}})
	vf := mustKey(t, &JobSpec{Type: TypeVerify, Verify: &VerifySpec{Count: 4}})
	if fz == vf {
		t.Fatal("fuzz and verify jobs share a key")
	}
	fz2 := mustKey(t, &JobSpec{Type: TypeFuzz, Fuzz: &FuzzSpec{Count: 8}})
	if fz == fz2 {
		t.Fatal("different fuzz counts share a key")
	}
}

func TestProgramHashMemoized(t *testing.T) {
	h1, err := programHash("mcf")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := programHash("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || h1 == "" {
		t.Fatalf("program hash unstable: %q vs %q", h1, h2)
	}
	if _, err := programHash("no-such-workload"); err == nil {
		t.Fatal("unknown workload hashed")
	}
}
