package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spt"
)

func newHTTPServer(t *testing.T, cfg Config, run runFn) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, cfg, run)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		shutdownNow(t, s)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	return resp, v
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	return resp, v
}

const mcfJob = `{"type": "grid", "cells": [{"workload": "mcf", "budget": 1000}]}`

func TestHTTPSubmitAndStatus(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 1}, instantRun)

	resp, v := postJob(t, ts, mcfJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d, want 202", resp.StatusCode)
	}
	if v["outcome"] != "queued" {
		t.Fatalf("outcome %v, want queued", v["outcome"])
	}
	id, _ := v["id"].(string)
	if id == "" {
		t.Fatal("no job id in response")
	}
	waitDone(t, s, id)

	resp, v = getJSON(t, ts.URL+"/v1/jobs/"+id)
	if resp.StatusCode != http.StatusOK || v["state"] != "done" {
		t.Fatalf("GET %d %v", resp.StatusCode, v)
	}
	if _, ok := v["result"].(map[string]any); !ok {
		t.Fatalf("done job has no embedded result: %v", v)
	}

	// Replay: the same POST is now answered 200 from cache.
	resp, v = postJob(t, ts, mcfJob)
	if resp.StatusCode != http.StatusOK || v["outcome"] != "cached" {
		t.Fatalf("replay: %d %v", resp.StatusCode, v["outcome"])
	}
}

func TestHTTPCoalescedOutcome(t *testing.T) {
	release := make(chan struct{})
	run, started := blockingRun(release)
	s, ts := newHTTPServer(t, Config{Workers: 1}, run)

	_, first := postJob(t, ts, mcfJob)
	resp, second := postJob(t, ts, mcfJob)
	if resp.StatusCode != http.StatusAccepted || second["outcome"] != "coalesced" {
		t.Fatalf("coalesce: %d %v", resp.StatusCode, second["outcome"])
	}
	if second["id"] != first["id"] {
		t.Fatal("coalesced request got a different id")
	}
	close(release)
	waitDone(t, s, first["id"].(string))
	if *started != 1 {
		t.Fatalf("backend ran %d times", *started)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1}, instantRun)

	for _, body := range []string{
		`not json`,
		`{"type": "bogus"}`,
		`{"type": "grid"}`,
		`{"type": "grid", "cells": [{"workload": "mcf"}], "surprise": 1}`,
	} {
		resp, v := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400 (%v)", body, resp.StatusCode, v)
		}
		if v["error"] == "" {
			t.Errorf("POST %q: no error message", body)
		}
	}

	resp, _ := getJSON(t, ts.URL+"/v1/jobs/deadbeef")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown id: %d, want 404", resp.StatusCode)
	}
}

func TestHTTPCancel(t *testing.T) {
	release := make(chan struct{})
	run, _ := blockingRun(release)
	s, ts := newHTTPServer(t, Config{Workers: 1}, run)
	defer close(release)

	_, blocker := postJob(t, ts, mcfJob)
	_, queued := postJob(t, ts, `{"type": "grid", "cells": [{"workload": "mcf", "budget": 2000}]}`)
	id := queued["id"].(string)

	del := func(id string) (*http.Response, map[string]any) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&v)
		return resp, v
	}
	resp, v := del(id)
	if resp.StatusCode != http.StatusOK || v["state"] != "cancelled" {
		t.Fatalf("DELETE queued: %d %v", resp.StatusCode, v)
	}
	resp, _ = del(id)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE terminal: %d, want 409", resp.StatusCode)
	}
	resp, _ = del("deadbeef")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: %d, want 404", resp.StatusCode)
	}
	_ = s
	_ = blocker
}

func TestHTTPQuotaRetryAfter(t *testing.T) {
	release := make(chan struct{})
	run, _ := blockingRun(release)
	_, ts := newHTTPServer(t, Config{Workers: 1, QuotaRate: 0.001, QuotaBurst: 1}, run)
	defer close(release)

	postJob(t, ts, mcfJob)
	resp, v := postJob(t, ts, `{"type": "grid", "cells": [{"workload": "mcf", "budget": 2000}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota: %d %v, want 429", resp.StatusCode, v)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestHTTPSSEStream(t *testing.T) {
	step := make(chan struct{}, 3)
	run := func(ctx context.Context, _ *JobSpec, _ int, progress func(int, int)) ([]byte, error) {
		for i := 1; i <= 2; i++ {
			<-step
			progress(i, 2)
		}
		return []byte("{}\n"), nil
	}
	_, ts := newHTTPServer(t, Config{Workers: 1}, run)

	_, v := postJob(t, ts, mcfJob)
	id := v["id"].(string)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id, nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	step <- struct{}{}
	step <- struct{}{}

	var sawProgress, sawState bool
	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: progress") {
			sawProgress = true
		}
		if strings.HasPrefix(line, "event: state") {
			sawState = true
		}
	}
	if !sawProgress || !sawState {
		t.Fatalf("SSE stream incomplete: progress=%v state=%v", sawProgress, sawState)
	}

	// A terminal job streams just the final state event and EOF.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"?watch=1", nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "event: state") {
		t.Fatalf("terminal SSE missing state event:\n%s", buf.String())
	}
}

func TestHTTPMetricsAndHealth(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 1}, instantRun)
	_, v := postJob(t, ts, mcfJob)
	waitDone(t, s, v["id"].(string))

	resp, m := getJSON(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if m["engine"] != spt.EngineVersion {
		t.Fatalf("metrics engine %v, want %s", m["engine"], spt.EngineVersion)
	}
	values, ok := m["values"].([]any)
	if !ok || len(values) == 0 {
		t.Fatal("metrics dump has no values")
	}
	found := false
	for _, raw := range values {
		val := raw.(map[string]any)
		if val["name"] == "serve.backend_runs" {
			found = true
			if val["scalar"] != float64(1) {
				t.Fatalf("backend_runs = %v, want 1", val["scalar"])
			}
		}
	}
	if !found {
		t.Fatal("serve.backend_runs not in dump")
	}

	resp, h := getJSON(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, h)
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1}, instantRun)
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs: %d, want 405", resp.StatusCode)
	}
}

func TestHTTPOversizeBody(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1}, instantRun)
	huge := fmt.Sprintf(`{"type": "grid", "cells": [{"workload": %q}]}`, strings.Repeat("x", 2<<20))
	resp, _ := postJob(t, ts, huge)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize body: %d, want 400", resp.StatusCode)
	}
}
