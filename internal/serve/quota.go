package serve

import (
	"math"
	"sync"
	"time"
)

// quotaTable implements per-tenant token buckets: each tenant accrues
// rate tokens per second up to burst, and admitting a job costs one
// token. A zero rate disables quotas entirely. Coalesced and cached
// requests are never charged — only work that would occupy a backend
// worker consumes tokens.
type quotaTable struct {
	rate  float64 // tokens per second; <= 0 disables
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	now     func() time.Time // test hook
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(rate float64, burst int) *quotaTable {
	if burst <= 0 {
		burst = 1
	}
	return &quotaTable{
		rate:    rate,
		burst:   float64(burst),
		buckets: map[string]*tokenBucket{},
		now:     time.Now,
	}
}

// allow charges one token to the tenant's bucket. On refusal it returns
// the duration after which a retry would succeed (the Retry-After value).
func (q *quotaTable) allow(tenant string) (bool, time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &tokenBucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	b.tokens = math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	return false, wait
}
