package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs       submit a JobSpec; 202 queued/coalesced, 200 cached
//	GET    /v1/jobs/{id}  job status (result inline when done); SSE stream
//	                      when the client accepts text/event-stream
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET    /v1/metrics    operational counters as a stats dump
//	GET    /v1/healthz    liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// submitResponse wraps the job status with the admission outcome, so a
// client (and the CI smoke test) can tell a fresh run from a coalesced
// attach from a cache hit without consulting metrics.
type submitResponse struct {
	*JobStatus
	// Outcome is "queued", "coalesced", or "cached".
	Outcome string `json:"outcome"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid job spec: %w", err))
		return
	}
	st, err := s.Submit(&spec)
	if err != nil {
		var rej *RejectError
		if errors.As(err, &rej) {
			if rej.RetryAfter > 0 {
				secs := int(rej.RetryAfter / time.Second)
				if rej.RetryAfter%time.Second != 0 {
					secs++ // round up: retrying early would just be refused again
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
			}
			writeError(w, rej.Code, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := submitResponse{JobStatus: st}
	code := http.StatusAccepted
	switch {
	case st.State == StateDone:
		resp.Outcome = "cached"
		code = http.StatusOK
	case st.Coalesced > 0:
		resp.Outcome = "coalesced"
	default:
		resp.Outcome = "queued"
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if wantsSSE(r) {
		s.streamJob(w, r, id)
		return
	}
	st, err := s.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, statusView(st))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrConflict):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, statusView(st))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	d := s.Metrics()
	js, err := d.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(js))
}

func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream") ||
		r.URL.Query().Get("watch") == "1"
}

// statusView renders a JobStatus with the result embedded as raw JSON
// (payloads are JSON documents already; double-encoding them as a string
// would be useless to every client).
func statusView(st *JobStatus) map[string]any {
	v := map[string]any{
		"id":    st.ID,
		"type":  st.Type,
		"state": st.State,
	}
	if st.Priority != 0 {
		v["priority"] = st.Priority
	}
	if st.Total > 0 {
		v["done"], v["total"] = st.Done, st.Total
	}
	if st.Coalesced > 0 {
		v["coalesced"] = st.Coalesced
	}
	if st.Cached != "" {
		v["cached"] = st.Cached
	}
	if st.Error != "" {
		v["error"] = st.Error
	}
	if st.Result != nil {
		v["result"] = json.RawMessage(st.Result)
	}
	return v
}

// streamJob serves GET /v1/jobs/{id} as an SSE stream: "progress" events
// while the job runs, one final "state" event when it reaches a terminal
// state, then EOF. A job that is already terminal yields just the final
// event, so `curl -N -H 'Accept: text/event-stream'` always terminates.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, id string) {
	watcher, err := s.Watch(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer watcher.Close()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("serve: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	emit := func(name string, v any) {
		b, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, b)
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-watcher.Events:
			if ev.Type == "progress" {
				emit("progress", map[string]int{"done": ev.Done, "total": ev.Total})
			}
		case <-watcher.Done:
			// Terminal: report the final state (without the payload — SSE
			// frames are news, not result transport; GET fetches the body).
			st, serr := s.Status(id)
			if serr != nil {
				return
			}
			emit("state", map[string]any{"state": st.State, "error": st.Error})
			return
		}
	}
}
