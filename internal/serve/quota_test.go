package serve

import (
	"testing"
	"time"
)

func TestQuotaDisabled(t *testing.T) {
	q := newQuotaTable(0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := q.allow("t"); !ok {
			t.Fatal("disabled quota refused a request")
		}
	}
}

func TestQuotaBurstAndRefill(t *testing.T) {
	q := newQuotaTable(1, 2) // 1 token/sec, burst 2
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := q.allow("alice"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, wait := q.allow("alice")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry-after = %v, want (0, 1s]", wait)
	}

	// Tenants are isolated.
	if ok, _ := q.allow("bob"); !ok {
		t.Fatal("bob charged for alice's tokens")
	}

	// Time refills the bucket.
	now = now.Add(1500 * time.Millisecond)
	if ok, _ := q.allow("alice"); !ok {
		t.Fatal("refill did not admit")
	}
	if ok, _ := q.allow("alice"); ok {
		t.Fatal("1.5s refilled two tokens at 1/sec")
	}

	// The bucket caps at burst, never beyond.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := q.allow("alice"); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("after a long idle, admitted %d, want burst=2", admitted)
	}
}
