package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestQueueOrdering(t *testing.T) {
	q := newQueue()
	q.push("low-1", 0, 1)
	q.push("hi", 5, 2)
	q.push("low-2", 0, 3)
	q.push("mid", 2, 4)

	want := []string{"hi", "mid", "low-1", "low-2"}
	for _, w := range want {
		if got := q.pop(); got != w {
			t.Fatalf("pop order: got %s, want %s", got, w)
		}
	}
	if q.pop() != "" {
		t.Fatal("pop on empty queue returned an id")
	}
}

func TestQueueRemoveAndBump(t *testing.T) {
	q := newQueue()
	q.push("a", 0, 1)
	q.push("b", 0, 2)
	q.push("c", 0, 3)
	if !q.remove("b") {
		t.Fatal("remove failed for queued id")
	}
	if q.remove("b") {
		t.Fatal("remove succeeded twice")
	}
	q.bump("c", 7)
	q.bump("missing", 7) // no-op
	if got := q.pop(); got != "c" {
		t.Fatalf("bump did not raise priority: popped %s", got)
	}
	q.bump("a", -1) // lowering is ignored
	if got := q.pop(); got != "a" {
		t.Fatalf("want a, got %s", got)
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty: %d", q.len())
	}
}

func pendingIDs(recs []journalRecord) []string {
	var ids []string
	for _, r := range recs {
		ids = append(ids, r.ID)
	}
	return ids
}

func TestJournalReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	j, pending, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has pending jobs: %v", pendingIDs(pending))
	}
	spec := simulateSpec("mcf")
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	for _, rec := range []journalRecord{
		{Op: "submit", ID: "aaa", Seq: 1, Priority: 2, Spec: spec},
		{Op: "submit", ID: "bbb", Seq: 2, Spec: spec},
		{Op: "submit", ID: "ccc", Seq: 3, Spec: spec},
		{Op: "done", ID: "bbb", State: "done"},
		{Op: "cancel", ID: "ccc"},
	} {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay: only the unretired submit survives, with its metadata.
	j2, pending, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 1 || pending[0].ID != "aaa" {
		t.Fatalf("pending after replay = %v, want [aaa]", pendingIDs(pending))
	}
	if pending[0].Seq != 1 || pending[0].Priority != 2 || pending[0].Spec == nil {
		t.Fatalf("pending record lost metadata: %+v", pending[0])
	}

	// Compaction rewrote the file down to the single pending record.
	b, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(b), "\n"); n != 1 {
		t.Fatalf("compacted journal has %d records, want 1:\n%s", n, b)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := simulateSpec("mcf")
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Op: "submit", ID: "aaa", Seq: 1, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A torn final write: half a JSON record, no newline.
	if _, err := f.WriteString(`{"op":"done","id":"aa`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, pending, err := openJournal(dir)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	j2.Close()
	if len(pending) != 1 || pending[0].ID != "aaa" {
		t.Fatalf("pending = %v, want [aaa]", pendingIDs(pending))
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	spec := simulateSpec("mcf")
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	content := `{"op":"submit","id":"aaa","seq":1,"spec":{"type":"simulate","cells":[{"workload":"mcf"}]}}
garbage not json
{"op":"done","id":"aaa","state":"done"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(dir); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
}

func TestJournalRejectsUnknownOp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte(`{"op":"explode","id":"x"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(dir); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("want unknown-op error, got %v", err)
	}
}

func TestNilJournalIsMemoryOnly(t *testing.T) {
	j, pending, err := openJournal("")
	if err != nil || j != nil || pending != nil {
		t.Fatalf("empty dir should be a nil journal: %v %v %v", j, pending, err)
	}
	if err := j.append(journalRecord{Op: "submit", ID: "x"}); err != nil {
		t.Fatal("nil journal append should be a no-op")
	}
	if err := j.Close(); err != nil {
		t.Fatal("nil journal close should be a no-op")
	}
}

func TestOpenJournalBadDir(t *testing.T) {
	// A regular file where the queue directory should be.
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(file); err == nil {
		t.Fatal("openJournal accepted a file as its directory")
	}
}
