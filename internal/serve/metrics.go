package serve

import (
	"spt"
	"spt/internal/stats"
)

// metrics holds the server's operational counters, exposed through the
// same gem5-style registry the simulator uses for hardware counters so
// /v1/metrics speaks the established stats-dump JSON format.
//
// The registry's counters are plain (non-atomic) uint64s by design — the
// simulator increments them in single-threaded hot loops. The server is
// concurrent, so every increment and every Dump happens under the server
// mutex; nothing here touches the fields without it.
type metrics struct {
	submitted            uint64 // jobs accepted (new, coalesced, or cached)
	coalesced            uint64 // requests attached to an in-flight identical job
	cacheHitsMem         uint64 // requests served from the in-memory result cache
	cacheHitsDisk        uint64 // requests served from the on-disk result cache
	backendRuns          uint64 // jobs actually executed by the engine
	completed            uint64 // jobs that reached the done state
	failed               uint64 // jobs that reached the failed state
	cancelled            uint64 // jobs cancelled (queued or running)
	resumed              uint64 // jobs re-enqueued from the journal at startup
	rejectedQuota        uint64 // submissions refused by a tenant quota
	rejectedBackpressure uint64 // submissions refused by queue-depth backpressure
	rejectedDraining     uint64 // submissions refused during graceful drain

	// latency records POST-to-terminal wall time in milliseconds per job
	// type. Host-dependent, so it lives only in /v1/metrics — never in a
	// result payload.
	latency map[string]*stats.Hist

	reg *stats.Registry
}

// newMetrics builds the registry. queueDepth reads the live queue length;
// it is called at Dump time, under the same server mutex as everything
// else here.
func newMetrics(queueDepth func() int) *metrics {
	m := &metrics{
		latency: map[string]*stats.Hist{
			TypeSimulate: {}, TypeGrid: {}, TypeFuzz: {}, TypeVerify: {},
		},
		reg: stats.New(),
	}
	r := m.reg
	r.Scalar("serve.submitted", "jobs accepted (new, coalesced, or cached)", &m.submitted)
	r.Scalar("serve.coalesced", "requests attached to an in-flight identical job", &m.coalesced)
	r.Scalar("serve.cache_hits_mem", "requests served from the in-memory result cache", &m.cacheHitsMem)
	r.Scalar("serve.cache_hits_disk", "requests served from the on-disk result cache", &m.cacheHitsDisk)
	r.Scalar("serve.backend_runs", "jobs executed by the evaluation engine", &m.backendRuns)
	r.Scalar("serve.completed", "jobs finished successfully", &m.completed)
	r.Scalar("serve.failed", "jobs finished with an error", &m.failed)
	r.Scalar("serve.cancelled", "jobs cancelled while queued or running", &m.cancelled)
	r.Scalar("serve.resumed", "jobs re-enqueued from the journal at startup", &m.resumed)
	r.Scalar("serve.rejected_quota", "submissions refused by a tenant quota", &m.rejectedQuota)
	r.Scalar("serve.rejected_backpressure", "submissions refused by queue-depth backpressure", &m.rejectedBackpressure)
	r.Scalar("serve.rejected_draining", "submissions refused during graceful drain", &m.rejectedDraining)
	r.Formula("serve.queue_depth", "jobs currently queued", func() float64 {
		return float64(queueDepth())
	})
	r.Formula("serve.coalesce_rate", "coalesced requests per accepted job", func() float64 {
		if m.submitted == 0 {
			return 0
		}
		return float64(m.coalesced) / float64(m.submitted)
	})
	r.Formula("serve.cache_hit_rate", "cache hits per accepted job", func() float64 {
		if m.submitted == 0 {
			return 0
		}
		return float64(m.cacheHitsMem+m.cacheHitsDisk) / float64(m.submitted)
	})
	for _, t := range []string{TypeSimulate, TypeGrid, TypeFuzz, TypeVerify} {
		r.Hist("serve.latency_ms."+t, "submit-to-terminal latency (ms) for "+t+" jobs", m.latency[t])
	}
	return m
}

// dump snapshots the registry, stamped with the engine version like every
// other JSON artifact the repo emits. Caller holds the server mutex.
func (m *metrics) dump() *stats.Dump {
	d := m.reg.Dump()
	d.Engine = spt.EngineVersion
	return d
}
