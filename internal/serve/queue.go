package serve

import (
	"bufio"
	"container/heap"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// queueItem is one queued job reference inside the priority heap.
type queueItem struct {
	id       string
	priority int
	seq      uint64
	index    int // heap position, maintained by the heap interface
}

// jobHeap orders queued jobs: higher priority first, FIFO (submission
// sequence) within a priority level — so priorities never starve equal
// peers and scheduling is deterministic for a deterministic submit order.
type jobHeap []*queueItem

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *jobHeap) Push(x any) {
	it := x.(*queueItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// journalRecord is one line of the queue journal. submit records carry the
// full normalized spec so a restart can re-enqueue pending work; done and
// cancel records retire an id.
type journalRecord struct {
	Op       string   `json:"op"` // "submit", "done", "cancel"
	ID       string   `json:"id"`
	Seq      uint64   `json:"seq,omitempty"`
	Priority int      `json:"priority,omitempty"`
	Spec     *JobSpec `json:"spec,omitempty"`
	// State records how a retired job ended ("done", "failed"); informative
	// only — any retirement removes the id from the pending set.
	State string `json:"state,omitempty"`
}

// journal persists the queue as an append-only JSONL file so pending jobs
// survive a restart. A nil journal (no queue directory configured) is
// valid and makes every method a no-op: the queue is then memory-only.
type journal struct {
	path string
	f    *os.File
}

const journalName = "queue.journal"

// openJournal loads the journal in dir (creating the directory as
// needed), returns the still-pending submit records in submission order,
// and compacts the file down to exactly those records so it cannot grow
// without bound across restarts.
func openJournal(dir string) (*journal, []journalRecord, error) {
	if dir == "" {
		return nil, nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: queue dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	pending, err := loadPending(path)
	if err != nil {
		return nil, nil, err
	}

	// Compact: rewrite only the pending submits, atomically.
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return nil, nil, fmt.Errorf("serve: queue journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, rec := range pending {
		if err := writeRecord(w, rec); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil, nil, err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("serve: queue journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("serve: queue journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("serve: queue journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: queue journal: %w", err)
	}
	return &journal{path: path, f: f}, pending, nil
}

// loadPending replays the journal: submits minus dones/cancels, in
// submission-sequence order. A missing file is an empty queue. A corrupt
// trailing line (torn write) is tolerated; corruption earlier in the file
// is an error rather than silent job loss.
func loadPending(path string) ([]journalRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: queue journal: %w", err)
	}
	defer f.Close()

	submits := map[string]journalRecord{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var parseErr error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if parseErr != nil {
			// A bad line followed by a good one is real corruption, not a
			// torn tail.
			return nil, parseErr
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			parseErr = fmt.Errorf("serve: queue journal %s: corrupt record: %w", path, err)
			continue
		}
		switch rec.Op {
		case "submit":
			if rec.Spec == nil || rec.ID == "" {
				return nil, fmt.Errorf("serve: queue journal %s: submit record without spec or id", path)
			}
			if _, dup := submits[rec.ID]; !dup {
				order = append(order, rec.ID)
			}
			submits[rec.ID] = rec
		case "done", "cancel":
			if _, ok := submits[rec.ID]; ok {
				delete(submits, rec.ID)
			}
		default:
			return nil, fmt.Errorf("serve: queue journal %s: unknown op %q", path, rec.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: queue journal: %w", err)
	}
	var pending []journalRecord
	for _, id := range order {
		if rec, ok := submits[id]; ok {
			pending = append(pending, rec)
		}
	}
	return pending, nil
}

func writeRecord(w *bufio.Writer, rec journalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: queue journal: %w", err)
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("serve: queue journal: %w", err)
	}
	return nil
}

// append durably adds one record. Append-then-fsync per record keeps the
// implementation simple; the journal is written once per job state
// transition, far off the simulation hot path.
func (j *journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: queue journal: %w", err)
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("serve: queue journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: queue journal: %w", err)
	}
	return nil
}

func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}

// queue is the in-memory priority queue over job ids. All methods assume
// the caller holds the server mutex.
type queue struct {
	heap  jobHeap
	items map[string]*queueItem
}

func newQueue() *queue {
	return &queue{items: map[string]*queueItem{}}
}

func (q *queue) len() int { return len(q.heap) }

func (q *queue) push(id string, priority int, seq uint64) {
	it := &queueItem{id: id, priority: priority, seq: seq}
	q.items[id] = it
	heap.Push(&q.heap, it)
}

// pop removes and returns the highest-priority queued id, or "" when
// empty.
func (q *queue) pop() string {
	if len(q.heap) == 0 {
		return ""
	}
	it := heap.Pop(&q.heap).(*queueItem)
	delete(q.items, it.id)
	return it.id
}

// remove deletes a queued id (cancellation); returns false if absent.
func (q *queue) remove(id string) bool {
	it, ok := q.items[id]
	if !ok {
		return false
	}
	heap.Remove(&q.heap, it.index)
	delete(q.items, id)
	return true
}

// bump raises a queued id's priority (a coalesced resubmit at a higher
// priority should not wait at the original level). Lowering is ignored.
func (q *queue) bump(id string, priority int) {
	it, ok := q.items[id]
	if !ok || priority <= it.priority {
		return
	}
	it.priority = priority
	heap.Fix(&q.heap, it.index)
}
