// Package serve turns the deterministic evaluation engine into a
// long-running simulation service: an HTTP/JSON API over a persistent
// priority job queue, with request coalescing (identical in-flight jobs
// run once, the checkpoint.Store singleflight pattern lifted to whole
// jobs), a content-addressed result cache (repeat queries skip simulation
// entirely), per-tenant token-bucket quotas, queue-depth backpressure,
// SSE progress streaming, and graceful drain.
//
// The determinism contract is the whole design's keystone: a job's result
// payload is a pure function of its normalized spec and the engine
// version, byte-identical to calling spt.RunJobs / spt.RunFuzz /
// spt.RunVerify directly. That is what makes content addressing sound —
// two requests with one key MUST have one answer — and it is enforced by
// the e2e tests, which diff server payloads against direct engine calls.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"spt"
	"spt/internal/checkpoint"
	"spt/internal/workloads"
)

// Job types accepted by POST /v1/jobs.
const (
	TypeSimulate = "simulate" // one cell, payload = one result object
	TypeGrid     = "grid"     // many cells, payload = results in cell order
	TypeFuzz     = "fuzz"     // differential fuzzing campaign report
	TypeVerify   = "verify"   // two-oracle verification campaign report
)

// CellSpec is one simulation cell of a simulate or grid job. The zero
// values of the optional fields mean the engine defaults (unsafe scheme,
// futuristic model, width 3, 120k-instruction budget), which normalization
// makes explicit so "defaulted" and "spelled out" specs coalesce.
type CellSpec struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme,omitempty"`
	Model    string `json:"model,omitempty"`
	// Width is the untaint broadcast width; negative means unbounded.
	Width  int    `json:"width,omitempty"`
	Budget uint64 `json:"budget,omitempty"`
	// Skip fast-forwards the cell's first Skip instructions functionally.
	Skip uint64 `json:"skip,omitempty"`
	// Sample is the SMARTS sampling spec in the CLI syntax
	// ("intervals" or "intervals:warmup:detail"); empty disables sampling.
	Sample string `json:"sample,omitempty"`
}

// Job converts the cell to an engine grid cell.
func (c CellSpec) Job() (spt.Job, error) {
	samp, err := spt.ParseSampleSpec(c.Sample)
	if err != nil {
		return spt.Job{}, err
	}
	return spt.Job{
		Workload: c.Workload,
		Scheme:   spt.Scheme(c.Scheme),
		Model:    spt.AttackModel(c.Model),
		Width:    c.Width,
		Budget:   c.Budget,
		Skip:     c.Skip,
		Sample:   samp,
	}, nil
}

// FuzzSpec parameterizes a fuzz job (spt.RunFuzz).
type FuzzSpec struct {
	Seed     int64    `json:"seed,omitempty"`
	Count    int      `json:"count,omitempty"`
	Schemes  []string `json:"schemes,omitempty"`
	Models   []string `json:"models,omitempty"`
	Minimize int      `json:"minimize,omitempty"`
}

// VerifySpec parameterizes a verify job (spt.RunVerify) over freshly
// generated gadgets.
type VerifySpec struct {
	Seed    int64    `json:"seed,omitempty"`
	Count   int      `json:"count"`
	Schemes []string `json:"schemes,omitempty"`
	Models  []string `json:"models,omitempty"`
}

// JobSpec is the POST /v1/jobs request body. Priority and Tenant shape
// scheduling and admission; they are deliberately NOT part of the
// content-address key, so two tenants asking the same question share one
// simulation and one cached answer.
type JobSpec struct {
	Type string `json:"type"`
	// Cells holds the simulate (exactly one) or grid (one or more) cells.
	Cells  []CellSpec  `json:"cells,omitempty"`
	Fuzz   *FuzzSpec   `json:"fuzz,omitempty"`
	Verify *VerifySpec `json:"verify,omitempty"`
	// Priority orders the queue: higher runs sooner, FIFO within a level.
	Priority int `json:"priority,omitempty"`
	// Tenant names the quota bucket; empty is the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
}

// defaultBudget mirrors spt.EvalOptions' default per-run budget.
const defaultBudget = 120_000

// allSchemes and allModels render the engine's default grids explicitly,
// so a spec that omits them coalesces with one that spells them out.
func allSchemes() []string {
	var out []string
	for _, s := range spt.Schemes() {
		out = append(out, string(s))
	}
	return out
}

func allModels() []string {
	var out []string
	for _, m := range spt.AttackModels() {
		out = append(out, string(m))
	}
	return out
}

func validSchemes(names []string) error {
	known := map[string]bool{}
	for _, s := range spt.Schemes() {
		known[string(s)] = true
	}
	for _, s := range spt.ExtensionSchemes() {
		known[string(s)] = true
	}
	for _, n := range names {
		if !known[n] {
			return fmt.Errorf("serve: unknown scheme %q", n)
		}
	}
	return nil
}

func validModels(names []string) error {
	known := map[string]bool{}
	for _, m := range spt.AttackModels() {
		known[string(m)] = true
	}
	for _, n := range names {
		if !known[n] {
			return fmt.Errorf("serve: unknown attack model %q", n)
		}
	}
	return nil
}

// Normalize validates the spec and fills every defaultable field in
// place, so the canonical key sees one spelling per logical job. It
// returns an error suitable for a 400 response.
func (s *JobSpec) Normalize() error {
	switch s.Type {
	case TypeSimulate:
		if len(s.Cells) != 1 {
			return fmt.Errorf("serve: a simulate job needs exactly one cell, got %d", len(s.Cells))
		}
	case TypeGrid:
		if len(s.Cells) == 0 {
			return fmt.Errorf("serve: a grid job needs at least one cell")
		}
	case TypeFuzz:
		if s.Fuzz == nil {
			s.Fuzz = &FuzzSpec{}
		}
	case TypeVerify:
		if s.Verify == nil || s.Verify.Count <= 0 {
			return fmt.Errorf("serve: a verify job needs verify.count > 0")
		}
	default:
		return fmt.Errorf("serve: unknown job type %q (want simulate, grid, fuzz, or verify)", s.Type)
	}

	switch s.Type {
	case TypeSimulate, TypeGrid:
		if s.Fuzz != nil || s.Verify != nil {
			return fmt.Errorf("serve: %s jobs take cells only", s.Type)
		}
		for i := range s.Cells {
			c := &s.Cells[i]
			if _, err := workloads.ByName(c.Workload); err != nil {
				return fmt.Errorf("serve: cell %d: %w", i, err)
			}
			if c.Scheme == "" {
				c.Scheme = string(spt.UnsafeBaseline)
			}
			if err := validSchemes([]string{c.Scheme}); err != nil {
				return fmt.Errorf("serve: cell %d: %w", i, err)
			}
			if c.Model == "" {
				c.Model = string(spt.Futuristic)
			}
			if err := validModels([]string{c.Model}); err != nil {
				return fmt.Errorf("serve: cell %d: %w", i, err)
			}
			if c.Width == 0 {
				c.Width = 3
			}
			if c.Budget == 0 {
				c.Budget = defaultBudget
			}
			if c.Skip > 0 && c.Sample != "" {
				return fmt.Errorf("serve: cell %d: skip and sample are mutually exclusive", i)
			}
			if _, err := spt.ParseSampleSpec(c.Sample); err != nil {
				return fmt.Errorf("serve: cell %d: %w", i, err)
			}
		}
	case TypeFuzz:
		if s.Cells != nil || s.Verify != nil {
			return fmt.Errorf("serve: a fuzz job takes a fuzz section only")
		}
		f := s.Fuzz
		if f.Seed == 0 {
			f.Seed = 1
		}
		if f.Count == 0 {
			f.Count = 32
		}
		if f.Count < 0 || f.Minimize < 0 {
			return fmt.Errorf("serve: fuzz count and minimize must be non-negative")
		}
		if len(f.Schemes) == 0 {
			f.Schemes = allSchemes()
		}
		if err := validSchemes(f.Schemes); err != nil {
			return err
		}
		if len(f.Models) == 0 {
			f.Models = allModels()
		}
		if err := validModels(f.Models); err != nil {
			return err
		}
	case TypeVerify:
		if s.Cells != nil || s.Fuzz != nil {
			return fmt.Errorf("serve: a verify job takes a verify section only")
		}
		v := s.Verify
		if v.Seed == 0 {
			v.Seed = 1
		}
		if len(v.Schemes) == 0 {
			v.Schemes = allSchemes()
		}
		if err := validSchemes(v.Schemes); err != nil {
			return err
		}
		if len(v.Models) == 0 {
			v.Models = allModels()
		}
		if err := validModels(v.Models); err != nil {
			return err
		}
	}
	return nil
}

// progHashes memoizes workload program hashes: the suite is baked into the
// binary, so each workload's program is built and hashed at most once per
// process.
var progHashes sync.Map // workload name -> string (hex hash)

// programHash returns the content hash of the named workload's program —
// the same identity the checkpoint store keys on, so a workload-generator
// change invalidates cached results automatically even within one engine
// version.
func programHash(workload string) (string, error) {
	if h, ok := progHashes.Load(workload); ok {
		return h.(string), nil
	}
	w, err := workloads.ByName(workload)
	if err != nil {
		return "", err
	}
	// 1<<40 iterations is Options.WorkloadIters' effectively-unbounded
	// default: the instruction budget, not the loop bound, ends the run.
	h := checkpoint.ProgramHash(w.Build(1 << 40))
	hx := hex.EncodeToString(h[:])
	progHashes.Store(workload, hx)
	return hx, nil
}

// Key content-addresses a normalized spec: a SHA-256 over the engine
// version and every result-determining field — for cells, the program
// CONTENT hash (not the workload name) plus (scheme, model, width,
// budget, skip, sample). Priority and tenant are excluded on purpose.
// The key doubles as the job ID and the result-cache address.
func (s *JobSpec) Key() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "engine %s\ntype %s\n", spt.EngineVersion, s.Type)
	switch s.Type {
	case TypeSimulate, TypeGrid:
		for _, c := range s.Cells {
			ph, err := programHash(c.Workload)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "cell %s %s %s %d %d %d %q\n",
				ph, c.Scheme, c.Model, c.Width, c.Budget, c.Skip, c.Sample)
		}
	case TypeFuzz:
		f := s.Fuzz
		fmt.Fprintf(&b, "fuzz seed=%d count=%d minimize=%d schemes=%s models=%s\n",
			f.Seed, f.Count, f.Minimize, strings.Join(f.Schemes, ","), strings.Join(f.Models, ","))
	case TypeVerify:
		v := s.Verify
		fmt.Fprintf(&b, "verify seed=%d count=%d schemes=%s models=%s\n",
			v.Seed, v.Count, strings.Join(v.Schemes, ","), strings.Join(v.Models, ","))
	default:
		return "", fmt.Errorf("serve: unknown job type %q", s.Type)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), nil
}

// schemeList and modelList convert validated name lists to engine types.
func schemeList(names []string) []spt.Scheme {
	out := make([]spt.Scheme, len(names))
	for i, n := range names {
		out[i] = spt.Scheme(n)
	}
	return out
}

func modelList(names []string) []spt.AttackModel {
	out := make([]spt.AttackModel, len(names))
	for i, n := range names {
		out[i] = spt.AttackModel(n)
	}
	return out
}
