package serve

import (
	"context"
	"strings"
	"testing"

	"spt"
)

func TestRunSpecRejectsUnknownType(t *testing.T) {
	if _, err := runSpec(context.Background(), &JobSpec{Type: "bogus"}, 1, nil); err == nil {
		t.Fatal("unknown type executed")
	}
}

func TestPayloadHelpersRejectMissingResults(t *testing.T) {
	cell := CellSpec{Workload: "mcf", Scheme: "unsafe", Model: "futuristic", Width: 3, Budget: 1000}
	empty := map[spt.Job]*spt.Result{}
	if _, err := SimulatePayload(cell, empty); err == nil || !strings.Contains(err.Error(), "missing result") {
		t.Fatalf("SimulatePayload: want missing-result error, got %v", err)
	}
	if _, err := GridPayload([]CellSpec{cell}, empty); err == nil || !strings.Contains(err.Error(), "missing result") {
		t.Fatalf("GridPayload: want missing-result error, got %v", err)
	}
	bad := CellSpec{Workload: "mcf", Sample: "not-a-spec"}
	if _, err := SimulatePayload(bad, empty); err == nil {
		t.Fatal("SimulatePayload accepted a malformed sample spec")
	}
	if _, err := GridPayload([]CellSpec{bad}, empty); err == nil {
		t.Fatal("GridPayload accepted a malformed sample spec")
	}
}

func TestDeterministicResultZerosHostStats(t *testing.T) {
	if deterministicResult(nil) != nil {
		t.Fatal("nil result not passed through")
	}
	r := &spt.Result{Workload: "mcf", Cycles: 42, Host: spt.HostStats{Seconds: 1.5, SimKIPS: 10}}
	d := deterministicResult(r)
	if d.Host != (spt.HostStats{}) {
		t.Fatalf("host stats survived: %+v", d.Host)
	}
	if d.Cycles != 42 || r.Host.Seconds != 1.5 {
		t.Fatal("deterministicResult mutated the original or lost data")
	}
}

func TestQueueDepthAccessor(t *testing.T) {
	release := make(chan struct{})
	run, _ := blockingRun(release)
	s := newTestServer(t, Config{Workers: 1}, run)
	defer func() { close(release); shutdownNow(t, s) }()

	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("fresh server queue depth %d", d)
	}
	if _, err := s.Submit(gridSpec("mcf", 1000)); err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, s)
	if _, err := s.Submit(gridSpec("mcf", 2000)); err != nil {
		t.Fatal(err)
	}
	if d := s.QueueDepth(); d != 1 {
		t.Fatalf("queue depth %d, want 1", d)
	}
}
