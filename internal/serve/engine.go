package serve

import (
	"context"
	"encoding/json"
	"fmt"

	"spt"
)

// runSpec executes a normalized spec against the evaluation engine and
// renders the canonical result payload. It is the server's only coupling
// to the engine, and the seam the unit tests stub: everything above it
// (queue, coalescing, cache, HTTP) is engine-agnostic.
//
// gridJobs is the engine-level worker count per job (EvalOptions.Jobs /
// FuzzOptions.Jobs); the server's own concurrency is jobs-in-flight, so
// the default keeps each job sequential and lets the queue provide the
// parallelism.
func runSpec(ctx context.Context, spec *JobSpec, gridJobs int, progress func(done, total int)) ([]byte, error) {
	switch spec.Type {
	case TypeSimulate, TypeGrid:
		jobs := make([]spt.Job, len(spec.Cells))
		for i, c := range spec.Cells {
			j, err := c.Job()
			if err != nil {
				return nil, err
			}
			jobs[i] = j
		}
		opt := spt.EvalOptions{Jobs: gridJobs, Context: ctx}
		if progress != nil {
			opt.Progress = func(done, total int, _ spt.Job) { progress(done, total) }
		}
		results, err := spt.RunJobs(jobs, opt)
		if err != nil {
			return nil, err
		}
		if spec.Type == TypeSimulate {
			return SimulatePayload(spec.Cells[0], results)
		}
		return GridPayload(spec.Cells, results)

	case TypeFuzz:
		f := spec.Fuzz
		opt := spt.FuzzOptions{
			Seed:     f.Seed,
			Count:    f.Count,
			Schemes:  schemeList(f.Schemes),
			Models:   modelList(f.Models),
			Minimize: f.Minimize,
			Jobs:     gridJobs,
			Context:  ctx,
		}
		if progress != nil {
			opt.Progress = func(done, total int, _ spt.FuzzJob) { progress(done, total) }
		}
		rep, err := spt.RunFuzz(opt)
		if err != nil {
			return nil, err
		}
		js, err := rep.JSON()
		if err != nil {
			return nil, err
		}
		return []byte(js), nil

	case TypeVerify:
		v := spec.Verify
		opt := spt.VerifyOptions{
			Seed:    v.Seed,
			Count:   v.Count,
			Schemes: schemeList(v.Schemes),
			Models:  modelList(v.Models),
			Jobs:    gridJobs,
			Context: ctx,
		}
		if progress != nil {
			opt.Progress = func(done, total int, _ spt.VerifyJob) { progress(done, total) }
		}
		rep, err := spt.RunVerify(opt)
		if err != nil {
			return nil, err
		}
		js, err := rep.JSON()
		if err != nil {
			return nil, err
		}
		return []byte(js), nil
	}
	return nil, fmt.Errorf("serve: unknown job type %q", spec.Type)
}

// deterministicResult strips the host-dependent measurements from a result
// so the payload is a pure function of the spec and the engine version —
// the property content addressing relies on.
func deterministicResult(r *spt.Result) *spt.Result {
	if r == nil {
		return nil
	}
	cp := *r
	cp.Host = spt.HostStats{}
	return &cp
}

// SimulatePayload renders a one-cell job's payload: the single result as
// indented JSON with host stats zeroed. Exported so tests and tooling can
// reproduce server payloads from a direct spt.RunJobs call.
func SimulatePayload(cell CellSpec, results map[spt.Job]*spt.Result) ([]byte, error) {
	j, err := cell.Job()
	if err != nil {
		return nil, err
	}
	res, ok := results[j]
	if !ok {
		return nil, fmt.Errorf("serve: missing result for cell %v", j)
	}
	b, err := json.MarshalIndent(deterministicResult(res), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// GridPayload renders a grid job's payload: the results in cell order as
// an indented JSON array with host stats zeroed. Byte-identical output is
// guaranteed for identical specs at any engine worker count, because
// spt.RunJobs aggregates deterministically and encoding/json sorts map
// keys.
func GridPayload(cells []CellSpec, results map[spt.Job]*spt.Result) ([]byte, error) {
	out := make([]*spt.Result, len(cells))
	for i, c := range cells {
		j, err := c.Job()
		if err != nil {
			return nil, err
		}
		res, ok := results[j]
		if !ok {
			return nil, fmt.Errorf("serve: missing result for cell %v", j)
		}
		out[i] = deterministicResult(res)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
