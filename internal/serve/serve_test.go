package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"spt"
)

// runFn matches the Server.run hook.
type runFn func(ctx context.Context, spec *JobSpec, gridJobs int, progress func(done, total int)) ([]byte, error)

// instantRun completes immediately with a payload derived from the spec.
func instantRun(ctx context.Context, spec *JobSpec, _ int, progress func(done, total int)) ([]byte, error) {
	if progress != nil {
		progress(1, 1)
	}
	key, err := spec.Key()
	if err != nil {
		return nil, err
	}
	return []byte(`{"key":"` + key + `"}` + "\n"), nil
}

// blockingRun returns a run hook that parks jobs until release is closed
// (or the job context is cancelled), plus a counter of started runs.
func blockingRun(release <-chan struct{}) (runFn, *int32) {
	var mu sync.Mutex
	var started int32
	fn := func(ctx context.Context, spec *JobSpec, _ int, _ func(done, total int)) ([]byte, error) {
		mu.Lock()
		started++
		mu.Unlock()
		select {
		case <-release:
			return []byte(`{"ok":true}` + "\n"), nil
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	return fn, &started
}

func newTestServer(t *testing.T, cfg Config, run runFn) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		s.run = run
	}
	s.Start()
	return s
}

func shutdownNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
}

func gridSpec(workload string, budget uint64) *JobSpec {
	return &JobSpec{Type: TypeGrid, Cells: []CellSpec{{Workload: workload, Budget: budget}}}
}

func waitDone(t *testing.T, s *Server, id string) *JobStatus {
	t.Helper()
	w, err := s.Watch(id)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	select {
	case <-w.Done:
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", id)
	}
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func metricValue(t *testing.T, s *Server, name string) uint64 {
	t.Helper()
	d := s.Metrics()
	v, ok := d.Get(name)
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	return v.Scalar
}

// TestCoalescingRunsBackendOnce is acceptance criterion (a): N identical
// concurrent submissions execute the backend exactly once and every
// caller sees the same completed job.
func TestCoalescingRunsBackendOnce(t *testing.T) {
	release := make(chan struct{})
	run, started := blockingRun(release)
	s := newTestServer(t, Config{Workers: 4}, run)
	defer shutdownNow(t, s)

	const n = 8
	first, err := s.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := s.Submit(gridSpec("mcf", 1000))
			if err != nil {
				t.Errorf("coalesced submit failed: %v", err)
				return
			}
			if st.ID != first.ID {
				t.Errorf("coalesced submit got id %s, want %s", st.ID, first.ID)
			}
		}()
	}
	wg.Wait()
	close(release)

	st := waitDone(t, s, first.ID)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done (err %q)", st.State, st.Error)
	}
	if *started != 1 {
		t.Fatalf("backend ran %d times for %d identical submissions", *started, n)
	}
	if got := metricValue(t, s, "serve.backend_runs"); got != 1 {
		t.Fatalf("serve.backend_runs = %d, want 1", got)
	}
	if got := metricValue(t, s, "serve.coalesced"); got != n-1 {
		t.Fatalf("serve.coalesced = %d, want %d", got, n-1)
	}
	if got := metricValue(t, s, "serve.submitted"); got != n {
		t.Fatalf("serve.submitted = %d, want %d", got, n)
	}
}

// TestCacheReplay is acceptance criterion (b): a repeated job is served
// from the cache with zero additional backend work.
func TestCacheReplay(t *testing.T) {
	runs := 0
	var mu sync.Mutex
	run := func(ctx context.Context, spec *JobSpec, g int, p func(int, int)) ([]byte, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return instantRun(ctx, spec, g, p)
	}
	s := newTestServer(t, Config{Workers: 2}, run)
	defer shutdownNow(t, s)

	st1, err := s.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	done1 := waitDone(t, s, st1.ID)
	if done1.State != StateDone {
		t.Fatalf("first run failed: %s %s", done1.State, done1.Error)
	}

	st2, err := s.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone {
		t.Fatalf("replay not served immediately: state %s", st2.State)
	}
	if string(st2.Result) != string(done1.Result) {
		t.Fatal("replayed payload differs from the original")
	}
	if runs != 1 {
		t.Fatalf("backend ran %d times, want 1", runs)
	}
	if got := metricValue(t, s, "serve.cache_hits_mem"); got != 1 {
		t.Fatalf("serve.cache_hits_mem = %d, want 1", got)
	}

	// A distinct spec still runs.
	st3, err := s.Submit(gridSpec("mcf", 2000))
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID == st1.ID {
		t.Fatal("distinct specs share an id")
	}
	waitDone(t, s, st3.ID)
	if runs != 2 {
		t.Fatalf("distinct spec did not run: %d runs", runs)
	}
}

// TestDiskCacheAcrossRestart: with a cache directory, a new server
// process serves a previous process's result without any backend work.
func TestDiskCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{Workers: 1, CacheDir: dir}, instantRun)
	st, err := s1.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(t, s1, st.ID).Result
	shutdownNow(t, s1)

	var ran bool
	s2 := newTestServer(t, Config{Workers: 1, CacheDir: dir}, func(ctx context.Context, spec *JobSpec, g int, p func(int, int)) ([]byte, error) {
		ran = true
		return instantRun(ctx, spec, g, p)
	})
	defer shutdownNow(t, s2)
	st2, err := s2.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || st2.Cached != "disk" {
		t.Fatalf("want immediate disk hit, got state=%s cached=%q", st2.State, st2.Cached)
	}
	if string(st2.Result) != string(want) {
		t.Fatal("disk-cached payload differs")
	}
	if ran {
		t.Fatal("backend ran despite a disk cache hit")
	}
	if got := metricValue(t, s2, "serve.cache_hits_disk"); got != 1 {
		t.Fatalf("serve.cache_hits_disk = %d, want 1", got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	run, _ := blockingRun(release)
	s := newTestServer(t, Config{Workers: 1}, run)
	defer func() { close(release); shutdownNow(t, s) }()

	blocker, err := s.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(gridSpec("mcf", 2000))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	if _, err := s.Cancel(queued.ID); !errors.Is(err, ErrConflict) {
		t.Fatalf("second cancel: want ErrConflict, got %v", err)
	}
	if _, err := s.Cancel("0000000000000000000000000000000000000000000000000000000000000000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: want ErrNotFound, got %v", err)
	}
	_ = blocker
	if got := metricValue(t, s, "serve.cancelled"); got != 1 {
		t.Fatalf("serve.cancelled = %d, want 1", got)
	}
}

func TestCancelRunningJobPropagatesCause(t *testing.T) {
	entered := make(chan struct{})
	run := func(ctx context.Context, _ *JobSpec, _ int, _ func(int, int)) ([]byte, error) {
		close(entered)
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}
	s := newTestServer(t, Config{Workers: 1}, run)
	defer shutdownNow(t, s)

	st, err := s.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
}

// TestFailedJobIsRetryable: a failure is terminal for that submission but
// does not poison the key — resubmitting runs again.
func TestFailedJobIsRetryable(t *testing.T) {
	fail := true
	run := func(ctx context.Context, spec *JobSpec, g int, p func(int, int)) ([]byte, error) {
		if fail {
			return nil, errors.New("boom")
		}
		return instantRun(ctx, spec, g, p)
	}
	s := newTestServer(t, Config{Workers: 1}, run)
	defer shutdownNow(t, s)

	st, err := s.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, st.ID)
	if final.State != StateFailed || final.Error != "boom" {
		t.Fatalf("want failed/boom, got %s/%q", final.State, final.Error)
	}
	if got := metricValue(t, s, "serve.failed"); got != 1 {
		t.Fatalf("serve.failed = %d, want 1", got)
	}

	fail = false
	st2, err := s.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	final2 := waitDone(t, s, st2.ID)
	if final2.State != StateDone {
		t.Fatalf("retry after failure: %s %q", final2.State, final2.Error)
	}
}

func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	run, _ := blockingRun(release)
	s := newTestServer(t, Config{Workers: 1, MaxQueueDepth: 1}, run)
	defer func() { close(release); shutdownNow(t, s) }()

	if _, err := s.Submit(gridSpec("mcf", 1000)); err != nil { // running
		t.Fatal(err)
	}
	waitForRunning(t, s)
	if _, err := s.Submit(gridSpec("mcf", 2000)); err != nil { // queued
		t.Fatal(err)
	}
	_, err := s.Submit(gridSpec("mcf", 3000))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Code != 429 {
		t.Fatalf("want 429 backpressure, got %v", err)
	}
	if got := metricValue(t, s, "serve.rejected_backpressure"); got != 1 {
		t.Fatalf("serve.rejected_backpressure = %d, want 1", got)
	}
	// Coalescing onto the queued job is still free.
	if _, err := s.Submit(gridSpec("mcf", 2000)); err != nil {
		t.Fatalf("coalesce rejected under backpressure: %v", err)
	}
}

// waitForRunning parks until some job has left the queue (so queue-depth
// assertions don't race the worker picking the head up).
func waitForRunning(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		running := false
		for _, j := range s.jobs {
			if j.state == StateRunning {
				running = true
			}
		}
		s.mu.Unlock()
		if running {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no job started running")
}

func TestQuotaRejection(t *testing.T) {
	release := make(chan struct{})
	run, _ := blockingRun(release)
	s := newTestServer(t, Config{Workers: 1, QuotaRate: 0.001, QuotaBurst: 1}, run)
	defer func() { close(release); shutdownNow(t, s) }()

	if _, err := s.Submit(gridSpec("mcf", 1000)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(gridSpec("mcf", 2000))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Code != 429 || rej.RetryAfter <= 0 {
		t.Fatalf("want 429 with Retry-After, got %v", err)
	}
	// A different tenant has its own bucket.
	other := gridSpec("mcf", 2000)
	other.Tenant = "other"
	if _, err := s.Submit(other); err != nil {
		t.Fatalf("tenant isolation broken: %v", err)
	}
	// Coalescing is never charged: resubmitting the running job succeeds
	// even with an empty bucket.
	if _, err := s.Submit(gridSpec("mcf", 1000)); err != nil {
		t.Fatalf("coalesce charged against quota: %v", err)
	}
	if got := metricValue(t, s, "serve.rejected_quota"); got != 1 {
		t.Fatalf("serve.rejected_quota = %d, want 1", got)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	release := make(chan struct{})
	var order []string
	var mu sync.Mutex
	run := func(ctx context.Context, spec *JobSpec, _ int, _ func(int, int)) ([]byte, error) {
		mu.Lock()
		order = append(order, spec.Cells[0].Workload)
		mu.Unlock()
		if spec.Cells[0].Workload == "mcf" { // only the blocker parks
			select {
			case <-release:
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			}
		}
		return []byte("{}\n"), nil
	}
	s := newTestServer(t, Config{Workers: 1}, run)
	defer shutdownNow(t, s)

	if _, err := s.Submit(gridSpec("mcf", 1000)); err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, s)
	low := gridSpec("xz", 1000)
	if _, err := s.Submit(low); err != nil {
		t.Fatal(err)
	}
	high := gridSpec("gcc", 1000)
	high.Priority = 10
	hst, err := s.Submit(high)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	waitDone(t, s, hst.ID)
	lst, _ := low.Key()
	waitDone(t, s, lst)

	mu.Lock()
	defer mu.Unlock()
	want := []string{"mcf", "gcc", "xz"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v", order, want)
	}
}

// TestDrainAndResume is acceptance criterion (d): SIGTERM-style shutdown
// requeues in-flight work past the deadline, keeps the queue journaled,
// and a new server resumes every pending job.
func TestDrainAndResume(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	run, _ := blockingRun(release)
	s1 := newTestServer(t, Config{Workers: 1, QueueDir: dir}, run)

	ids := make([]string, 3)
	for i, budget := range []uint64{1000, 2000, 3000} {
		st, err := s1.Submit(gridSpec("mcf", budget))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	waitForRunning(t, s1)

	// Drain with an immediate deadline: the running job is cancelled with
	// the shutdown cause and requeued, not failed.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s1.Shutdown(ctx); err == nil {
		t.Fatal("expedited drain should report the deadline error")
	}

	// A new process over the same queue dir resumes all three jobs.
	s2, err := New(Config{Workers: 2, QueueDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s2.run = instantRun
	if got := metricValue(t, s2, "serve.resumed"); got != 3 {
		t.Fatalf("serve.resumed = %d, want 3", got)
	}
	s2.Start()
	defer shutdownNow(t, s2)
	for _, id := range ids {
		st := waitDone(t, s2, id)
		if st.State != StateDone {
			t.Fatalf("resumed job %s: state %s (%s)", id, st.State, st.Error)
		}
	}

	// After completion the journal retires everything: a third server
	// starts with an empty queue.
	shutdownNow(t, s2)
	s3, err := New(Config{Workers: 1, QueueDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, s3, "serve.resumed"); got != 0 {
		t.Fatalf("journal not retired: %d jobs resumed", got)
	}
	s3.Start()
	shutdownNow(t, s3)
}

// TestGracefulDrainFinishesInFlight: with a generous deadline, Shutdown
// lets the running job finish and it completes as done.
func TestGracefulDrainFinishesInFlight(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	run, _ := blockingRun(release)
	s := newTestServer(t, Config{Workers: 1, QueueDir: dir}, run)

	st, err := s.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, s)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// While draining, new work is refused with 503.
	time.Sleep(10 * time.Millisecond)
	_, serr := s.Submit(gridSpec("mcf", 2000))
	var rej *RejectError
	if !errors.As(serr, &rej) || rej.Code != 503 {
		t.Fatalf("submit during drain: want 503, got %v", serr)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("graceful drain errored: %v", err)
	}
	final, err := s.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("in-flight job not finished by drain: %s", final.State)
	}

	// The finished job is retired: a restart resumes nothing.
	s2, err := New(Config{QueueDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, s2, "serve.resumed"); got != 0 {
		t.Fatalf("drained job not retired in journal: resumed %d", got)
	}
	s2.Start()
	shutdownNow(t, s2)
}

func TestWatchStreamsProgressAndFinal(t *testing.T) {
	step := make(chan struct{})
	run := func(ctx context.Context, _ *JobSpec, _ int, progress func(int, int)) ([]byte, error) {
		for i := 1; i <= 3; i++ {
			<-step
			progress(i, 3)
		}
		return []byte("{}\n"), nil
	}
	s := newTestServer(t, Config{Workers: 1}, run)
	defer shutdownNow(t, s)

	st, err := s.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var progress []int
	timeout := time.After(10 * time.Second)
	for i := 0; i < 3; i++ {
		step <- struct{}{}
	loop:
		for {
			select {
			case ev := <-w.Events:
				if ev.Type == "progress" {
					progress = append(progress, ev.Done)
					break loop
				}
			case <-timeout:
				t.Fatal("no progress event")
			}
		}
	}
	select {
	case <-w.Done:
	case <-timeout:
		t.Fatal("no terminal signal")
	}
	if len(progress) != 3 || progress[2] != 3 {
		t.Fatalf("progress ticks %v, want [1 2 3]", progress)
	}
	final, _ := s.Status(st.ID)
	if final.State != StateDone || final.Done != 3 || final.Total != 3 {
		t.Fatalf("final status %+v", final)
	}
}

func TestMetricsDumpIsStamped(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1}, instantRun)
	defer shutdownNow(t, s)
	d := s.Metrics()
	if d.Engine != spt.EngineVersion {
		t.Fatalf("metrics engine stamp %q, want %q", d.Engine, spt.EngineVersion)
	}
	if _, ok := d.Get("serve.queue_depth"); !ok {
		t.Fatal("queue_depth formula missing")
	}
	if _, ok := d.Get("serve.latency_ms.grid"); !ok {
		t.Fatal("latency histogram missing")
	}
}

func TestStatusUnknownJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1}, instantRun)
	defer shutdownNow(t, s)
	if _, err := s.Status("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, err := s.Watch("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("watch: want ErrNotFound, got %v", err)
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1}, instantRun)
	defer shutdownNow(t, s)
	if _, err := s.Submit(&JobSpec{Type: "bogus"}); err == nil {
		t.Fatal("invalid spec admitted")
	}
}

// TestKeepDoneBound: terminal records are bounded; evicted results remain
// reachable through the cache (resubmission is a memory hit, not a rerun).
func TestKeepDoneBound(t *testing.T) {
	runs := 0
	var mu sync.Mutex
	run := func(ctx context.Context, spec *JobSpec, g int, p func(int, int)) ([]byte, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return instantRun(ctx, spec, g, p)
	}
	s := newTestServer(t, Config{Workers: 1, KeepDone: 2}, run)
	defer shutdownNow(t, s)

	var first string
	for i := 0; i < 4; i++ {
		st, err := s.Submit(gridSpec("mcf", uint64(1000*(i+1))))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st.ID
		}
		waitDone(t, s, st.ID)
	}
	if _, err := s.Status(first); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest record not evicted: %v", err)
	}
	st, err := s.Submit(gridSpec("mcf", 1000))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Cached != "memory" {
		t.Fatalf("evicted record not served from cache: %+v", st)
	}
	if runs != 4 {
		t.Fatalf("cache miss after record eviction: %d runs", runs)
	}
}
