package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"
)

// hexKey builds a syntactically valid cache key from a label.
func hexKey(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := newCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, k3 := hexKey("1"), hexKey("2"), hexKey("3")
	c.put(k1, []byte("one"))
	c.put(k2, []byte("two"))
	if _, layer := c.get(k1); layer != "memory" {
		t.Fatal("k1 missing before eviction")
	}
	c.put(k3, []byte("three")) // evicts k2 (k1 was just touched)
	if _, layer := c.get(k2); layer != "" {
		t.Fatal("k2 survived eviction")
	}
	if p, layer := c.get(k1); layer != "memory" || string(p) != "one" {
		t.Fatalf("k1 lost: %q %q", p, layer)
	}
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
	// Re-put of an existing key updates in place without growing.
	c.put(k1, []byte("uno"))
	if p, _ := c.get(k1); string(p) != "uno" {
		t.Fatalf("re-put did not update: %q", p)
	}
	if c.len() != 2 {
		t.Fatalf("re-put grew the cache: %d", c.len())
	}
}

func TestCacheDiskLayerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	key := hexKey("persist")
	payload := []byte(`{"answer": 42}` + "\n")

	c1, err := newCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	c1.put(key, payload)

	// A new cache instance (fresh memory) must find the payload on disk
	// and promote it.
	c2, err := newCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	p, layer := c2.get(key)
	if layer != "disk" || !bytes.Equal(p, payload) {
		t.Fatalf("disk layer miss: layer=%q payload=%q", layer, p)
	}
	if _, layer := c2.get(key); layer != "memory" {
		t.Fatal("disk hit was not promoted to memory")
	}

	// No stray temp files: every write is tmp+rename.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() && e.Name()[0] == '.' {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestCacheRejectsMalformedKeysOnDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := newCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	// A key that is not SHA-256 hex must never touch the filesystem — but
	// the memory layer still works.
	evil := "../../etc/passwd"
	c.put(evil, []byte("x"))
	if p, layer := c.get(evil); layer != "memory" || string(p) != "x" {
		t.Fatalf("memory layer broken for non-hex key: %q %q", p, layer)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("malformed key reached the disk layer: %v", entries)
	}
}

func TestCacheMemoryOnly(t *testing.T) {
	c, err := newCache(4, "")
	if err != nil {
		t.Fatal(err)
	}
	key := hexKey("mem")
	if _, layer := c.get(key); layer != "" {
		t.Fatal("empty cache hit")
	}
	c.put(key, []byte("v"))
	if p, layer := c.get(key); layer != "memory" || string(p) != "v" {
		t.Fatalf("memory-only cache broken: %q %q", p, layer)
	}
}

func TestCacheManyKeysShard(t *testing.T) {
	dir := t.TempDir()
	c, err := newCache(1, dir) // memory holds 1; disk holds all
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		c.put(hexKey(fmt.Sprint(i)), []byte{byte(i)})
	}
	for i := 0; i < 8; i++ {
		p, layer := c.get(hexKey(fmt.Sprint(i)))
		if layer == "" || len(p) != 1 || p[0] != byte(i) {
			t.Fatalf("key %d lost (layer=%q)", i, layer)
		}
	}
}

func TestNewCacheBadDir(t *testing.T) {
	dir := t.TempDir()
	file := dir + "/not-a-dir"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newCache(4, file); err == nil {
		t.Fatal("newCache accepted a file as its directory")
	}
}
