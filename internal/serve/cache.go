package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
)

// cache is the content-addressed result cache: an in-memory LRU over
// payload bytes, optionally backed by an on-disk layer that survives
// restarts. Keys are JobSpec.Key() values — they already include the
// engine version and the workload program content hashes, so a stale
// entry is unreachable by construction and no validation is needed on
// read.
type cache struct {
	entries int    // memory capacity (number of payloads)
	dir     string // "" disables the disk layer

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key     string
	payload []byte
}

func newCache(entries int, dir string) (*cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
	}
	return &cache{
		entries: entries,
		dir:     dir,
		ll:      list.New(),
		items:   map[string]*list.Element{},
	}, nil
}

// keyPattern guards the disk layer against ever turning a malformed id
// into a path: keys are SHA-256 hex and nothing else reaches the disk.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// path shards entries by the key's first byte to keep directories small.
func (c *cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// get returns the cached payload and which layer served it ("memory",
// "disk", or "" for a miss). A disk hit is promoted into memory.
func (c *cache) get(key string) ([]byte, string) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		p := el.Value.(*cacheEntry).payload
		c.mu.Unlock()
		return p, "memory"
	}
	c.mu.Unlock()

	if c.dir == "" || !keyPattern.MatchString(key) {
		return nil, ""
	}
	p, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, ""
	}
	c.insert(key, p)
	return p, "disk"
}

// put stores a payload in memory and, when configured, on disk. Disk
// writes are atomic (tmp + rename) so a crashed server never leaves a
// torn payload for its successor to serve.
func (c *cache) put(key string, payload []byte) {
	c.insert(key, payload)
	if c.dir == "" || !keyPattern.MatchString(key) {
		return
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return // the disk layer is best-effort; memory already has it
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cache-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

func (c *cache) insert(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).payload = payload
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, payload: payload})
	for c.ll.Len() > c.entries {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}

// len reports the number of in-memory entries (for tests and metrics).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
