package serve

import (
	"bytes"
	"testing"

	"spt"
)

// These tests run the real evaluation engine through the server and
// assert the determinism contract end to end: the payload a client gets
// from spt-serve is byte-identical to what a direct library call
// produces. This is acceptance criterion (c) and the property that makes
// the content-addressed cache sound.

func submitAndWait(t *testing.T, s *Server, spec *JobSpec) *JobStatus {
	t.Helper()
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, st.ID)
	if final.State != StateDone {
		t.Fatalf("job failed: %s %q", final.State, final.Error)
	}
	return final
}

func TestE2EGridMatchesDirectRunJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine e2e in -short mode")
	}
	s := newTestServer(t, Config{Workers: 2}, nil) // nil: the real runSpec
	defer shutdownNow(t, s)

	spec := &JobSpec{Type: TypeGrid, Cells: []CellSpec{
		{Workload: "mcf", Budget: 3000},
		{Workload: "mcf", Scheme: "spt", Budget: 3000},
		{Workload: "chacha20", Scheme: "stt", Model: "spectre", Budget: 3000},
	}}
	final := submitAndWait(t, s, spec)

	// The direct path: same cells through the library, rendered with the
	// same payload helper a client of the Go API would use.
	direct := &JobSpec{Type: TypeGrid, Cells: []CellSpec{
		{Workload: "mcf", Budget: 3000},
		{Workload: "mcf", Scheme: "spt", Budget: 3000},
		{Workload: "chacha20", Scheme: "stt", Model: "spectre", Budget: 3000},
	}}
	if err := direct.Normalize(); err != nil {
		t.Fatal(err)
	}
	jobs := make([]spt.Job, len(direct.Cells))
	for i, c := range direct.Cells {
		j, err := c.Job()
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	results, err := spt.RunJobs(jobs, spt.EvalOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := GridPayload(direct.Cells, results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatalf("server payload differs from direct RunJobs output:\nserver %d bytes, direct %d bytes", len(final.Result), len(want))
	}

	// The replayed (cached) payload is the same bytes again.
	again, err := s.Submit(&JobSpec{Type: TypeGrid, Cells: []CellSpec{
		{Workload: "mcf", Budget: 3000},
		{Workload: "mcf", Scheme: "spt", Budget: 3000},
		{Workload: "chacha20", Scheme: "stt", Model: "spectre", Budget: 3000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateDone || !bytes.Equal(again.Result, want) {
		t.Fatal("cached replay diverged from the computed payload")
	}
	if got := metricValue(t, s, "serve.backend_runs"); got != 1 {
		t.Fatalf("replay re-ran the backend: %d runs", got)
	}
}

func TestE2ESimulateMatchesDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine e2e in -short mode")
	}
	s := newTestServer(t, Config{Workers: 1}, nil)
	defer shutdownNow(t, s)

	spec := &JobSpec{Type: TypeSimulate, Cells: []CellSpec{{Workload: "xz", Scheme: "spt", Budget: 2000}}}
	final := submitAndWait(t, s, spec)

	direct := &JobSpec{Type: TypeSimulate, Cells: []CellSpec{{Workload: "xz", Scheme: "spt", Budget: 2000}}}
	if err := direct.Normalize(); err != nil {
		t.Fatal(err)
	}
	j, err := direct.Cells[0].Job()
	if err != nil {
		t.Fatal(err)
	}
	results, err := spt.RunJobs([]spt.Job{j}, spt.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := SimulatePayload(direct.Cells[0], results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatal("simulate payload differs from direct Run output")
	}
	if !bytes.Contains(final.Result, []byte(`"engine": "`+spt.EngineVersion+`"`)) {
		t.Fatal("payload missing the engine version stamp")
	}
}

func TestE2EFuzzMatchesDirectRunFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine e2e in -short mode")
	}
	s := newTestServer(t, Config{Workers: 1}, nil)
	defer shutdownNow(t, s)

	spec := &JobSpec{Type: TypeFuzz, Fuzz: &FuzzSpec{
		Seed: 7, Count: 3, Schemes: []string{"unsafe", "spt"}, Models: []string{"futuristic"},
	}}
	final := submitAndWait(t, s, spec)

	rep, err := spt.RunFuzz(spt.FuzzOptions{
		Seed: 7, Count: 3,
		Schemes: []spt.Scheme{spt.UnsafeBaseline, spt.SPTFull},
		Models:  []spt.AttackModel{spt.Futuristic},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(final.Result) != want {
		t.Fatal("fuzz payload differs from direct RunFuzz output")
	}
}

func TestE2EVerifyMatchesDirectRunVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine e2e in -short mode")
	}
	s := newTestServer(t, Config{Workers: 1}, nil)
	defer shutdownNow(t, s)

	spec := &JobSpec{Type: TypeVerify, Verify: &VerifySpec{
		Seed: 3, Count: 2, Schemes: []string{"unsafe"}, Models: []string{"futuristic"},
	}}
	final := submitAndWait(t, s, spec)

	rep, err := spt.RunVerify(spt.VerifyOptions{
		Seed: 3, Count: 2,
		Schemes: []spt.Scheme{spt.UnsafeBaseline},
		Models:  []spt.AttackModel{spt.Futuristic},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(final.Result) != want {
		t.Fatal("verify payload differs from direct RunVerify output")
	}
}
