package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"spt/internal/stats"
)

// Config sizes a Server. The zero value is usable: one backend worker per
// core, sequential engine runs per job, memory-only queue and cache.
type Config struct {
	// Workers is the number of jobs executed concurrently (the server-level
	// parallelism). 0 means runtime.GOMAXPROCS(0).
	Workers int
	// GridJobs is the engine-level worker count within one job
	// (EvalOptions.Jobs). 0 means 1: the queue, not the engine, provides
	// parallelism, which keeps many small jobs from fighting over cores.
	GridJobs int
	// QueueDir persists the job queue as a JSONL journal so pending work
	// survives a restart. Empty disables persistence.
	QueueDir string
	// CacheDir adds an on-disk layer to the result cache. Empty keeps the
	// cache memory-only.
	CacheDir string
	// CacheEntries bounds the in-memory result cache. 0 means 256.
	CacheEntries int
	// MaxQueueDepth rejects new work (429) once this many jobs are queued.
	// 0 means 1024.
	MaxQueueDepth int
	// QuotaRate admits at most this many new backend jobs per second per
	// tenant (token bucket). 0 disables quotas.
	QuotaRate float64
	// QuotaBurst is the token-bucket capacity. 0 means 8.
	QuotaBurst int
	// KeepDone bounds the terminal job records kept for GET /v1/jobs/{id}.
	// 0 means 256. Evicted results remain reachable through the cache.
	KeepDone int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.GridJobs <= 0 {
		c.GridJobs = 1
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 1024
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 8
	}
	if c.KeepDone <= 0 {
		c.KeepDone = 256
	}
	return c
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors for job lookup and cancellation.
var (
	// ErrNotFound reports an unknown job id (404).
	ErrNotFound = errors.New("serve: no such job")
	// ErrConflict reports a cancel of an already-terminal job (409).
	ErrConflict = errors.New("serve: job already finished")
	// ErrCancelled is the cancellation cause a DELETE injects into a
	// running job's context; runPool surfaces it via context.Cause.
	ErrCancelled = errors.New("serve: job cancelled")
	// errShutdown is the cancellation cause Shutdown injects when its
	// deadline expires; jobs cancelled by it are requeued, not failed.
	errShutdown = errors.New("serve: server shutting down")
)

// RejectError is an admission refusal: quota, backpressure, or drain.
type RejectError struct {
	Code       int // HTTP status (429 or 503)
	Reason     string
	RetryAfter time.Duration
}

func (e *RejectError) Error() string { return "serve: " + e.Reason }

// Event is one SSE frame's worth of job news.
type Event struct {
	Type  string `json:"type"` // "progress" or "state"
	State State  `json:"state,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID       string `json:"id"`
	Type     string `json:"type"`
	State    State  `json:"state"`
	Priority int    `json:"priority,omitempty"`
	Done     int    `json:"done,omitempty"`
	Total    int    `json:"total,omitempty"`
	// Coalesced counts requests folded into this job beyond the first.
	Coalesced uint64 `json:"coalesced,omitempty"`
	// Cached names the cache layer that served the result ("memory",
	// "disk"), empty for freshly computed results.
	Cached string `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Result is the payload, present once State is done.
	Result []byte `json:"result,omitempty"`
}

// job is the server-side record.
type job struct {
	id        string
	spec      *JobSpec
	state     State
	errMsg    string
	payload   []byte
	cached    string
	coalesced uint64
	done      int
	total     int
	seq       uint64
	priority  int
	submitted time.Time
	cancel    context.CancelCauseFunc // non-nil while running
	doneCh    chan struct{}           // closed on terminal transition
	subs      map[chan Event]bool
}

// Server is the simulation service: a persistent priority queue feeding a
// worker pool, with coalescing, content-addressed caching, quotas, and
// backpressure in front of it.
type Server struct {
	cfg     Config
	metrics *metrics
	quotas  *quotaTable
	cache   *cache
	journal *journal

	// runCtx parents every job context; stopRun cancels them with
	// errShutdown when a drain deadline expires.
	runCtx  context.Context
	stopRun context.CancelCauseFunc

	// run executes one job (runSpec in production; stubbed in tests).
	run func(ctx context.Context, spec *JobSpec, gridJobs int, progress func(done, total int)) ([]byte, error)
	now func() time.Time

	mu        sync.Mutex
	jobs      map[string]*job // active and recent-terminal records, by id
	q         *queue
	doneOrder []string // terminal ids, oldest first, bounded by KeepDone
	seq       uint64
	draining  bool
	started   bool

	wake     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a server and replays the queue journal (pending jobs from a
// previous process re-enter the queue). Call Start to begin executing.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	c, err := newCache(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	jrnl, pending, err := openJournal(cfg.QueueDir)
	if err != nil {
		return nil, err
	}
	runCtx, stopRun := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:     cfg,
		quotas:  newQuotaTable(cfg.QuotaRate, cfg.QuotaBurst),
		cache:   c,
		journal: jrnl,
		runCtx:  runCtx,
		stopRun: stopRun,
		run:     runSpec,
		now:     time.Now,
		jobs:    map[string]*job{},
		q:       newQueue(),
		wake:    make(chan struct{}, cfg.Workers),
		stop:    make(chan struct{}),
	}
	s.metrics = newMetrics(func() int { return s.q.len() })
	for _, rec := range pending {
		j := &job{
			id:        rec.ID,
			spec:      rec.Spec,
			state:     StateQueued,
			seq:       rec.Seq,
			priority:  rec.Priority,
			submitted: s.now(),
			doneCh:    make(chan struct{}),
			subs:      map[chan Event]bool{},
		}
		s.jobs[j.id] = j
		s.q.push(j.id, j.priority, j.seq)
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
		s.metrics.resumed++
	}
	return s, nil
}

// Start launches the worker pool. It is safe to call once.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
}

// Shutdown drains the server: new submissions are refused, workers finish
// their current job and exit, and queued jobs stay journaled for the next
// process. If ctx expires first, running jobs are cancelled (between
// simulations) and requeued. Shutdown then closes the journal.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		s.stopRun(errShutdown)
		<-idle
		err = ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cerr := s.journal.Close(); cerr != nil && err == nil {
		err = cerr
	}
	s.journal = nil
	return err
}

// Submit admits a job: coalesced onto an identical in-flight job, served
// from the result cache, or queued for execution. The returned status
// reflects the job's state at admission time.
func (s *Server) Submit(spec *JobSpec) (*JobStatus, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	id, err := spec.Key()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	if j, ok := s.jobs[id]; ok {
		switch {
		case !j.state.terminal():
			// Coalesce: one backend run answers every identical request.
			s.metrics.submitted++
			s.metrics.coalesced++
			j.coalesced++
			s.q.bump(id, spec.Priority)
			if spec.Priority > j.priority && j.state == StateQueued {
				j.priority = spec.Priority
			}
			return s.statusLocked(j, false), nil
		case j.state == StateDone:
			// A retained terminal record is a memory cache hit.
			s.metrics.submitted++
			s.metrics.cacheHitsMem++
			s.metrics.latency[j.spec.Type].Observe(0)
			return s.statusLocked(j, true), nil
		default:
			// failed and cancelled records do not block a retry: forget the
			// old record and admit the resubmission as new work.
			s.removeDoneLocked(id)
		}
	}

	if payload, layer := s.cache.get(id); layer != "" {
		j := s.adoptCachedLocked(id, spec, payload, layer)
		s.metrics.submitted++
		if layer == "disk" {
			s.metrics.cacheHitsDisk++
		} else {
			s.metrics.cacheHitsMem++
		}
		s.metrics.latency[spec.Type].Observe(0)
		return s.statusLocked(j, true), nil
	}

	// Admission control applies only to work that will occupy a backend
	// worker; coalesced and cached answers above are free.
	if s.draining {
		s.metrics.rejectedDraining++
		return nil, &RejectError{Code: 503, Reason: "server is draining"}
	}
	if ok, wait := s.quotas.allow(spec.Tenant); !ok {
		s.metrics.rejectedQuota++
		return nil, &RejectError{Code: 429, Reason: "tenant quota exceeded", RetryAfter: wait}
	}
	if s.q.len() >= s.cfg.MaxQueueDepth {
		s.metrics.rejectedBackpressure++
		return nil, &RejectError{Code: 429, Reason: "queue full", RetryAfter: time.Second}
	}

	s.seq++
	j := &job{
		id:        id,
		spec:      spec,
		state:     StateQueued,
		seq:       s.seq,
		priority:  spec.Priority,
		submitted: s.now(),
		doneCh:    make(chan struct{}),
		subs:      map[chan Event]bool{},
	}
	if err := s.journal.append(journalRecord{Op: "submit", ID: id, Seq: j.seq, Priority: j.priority, Spec: spec}); err != nil {
		return nil, err
	}
	s.jobs[id] = j
	s.q.push(id, j.priority, j.seq)
	s.metrics.submitted++
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return s.statusLocked(j, false), nil
}

// adoptCachedLocked materializes a cache hit as a terminal job record so
// GET /v1/jobs/{id} works for it like any other job.
func (s *Server) adoptCachedLocked(id string, spec *JobSpec, payload []byte, layer string) *job {
	j := &job{
		id:        id,
		spec:      spec,
		state:     StateDone,
		payload:   payload,
		cached:    layer,
		submitted: s.now(),
		doneCh:    make(chan struct{}),
		subs:      map[chan Event]bool{},
	}
	close(j.doneCh)
	s.jobs[id] = j
	s.doneOrder = append(s.doneOrder, id)
	s.trimDoneLocked()
	return j
}

// Status returns a job's current state; the payload is attached once the
// job is done.
func (s *Server) Status(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return s.statusLocked(j, true), nil
}

// Cancel cancels a job: a queued job is removed from the queue, a running
// job has ErrCancelled injected as its context cause (the pool stops
// picking up work after the in-flight simulation). Cancelling a terminal
// job returns ErrConflict.
func (s *Server) Cancel(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		s.q.remove(id)
		if err := s.journal.append(journalRecord{Op: "cancel", ID: id}); err != nil {
			return nil, err
		}
		j.state = StateCancelled
		j.errMsg = "cancelled before start"
		s.metrics.cancelled++
		s.finishLocked(j)
	case StateRunning:
		j.cancel(ErrCancelled) // the worker completes the transition
	default:
		return nil, ErrConflict
	}
	return s.statusLocked(j, false), nil
}

// Watcher streams a job's events. Events is lossy for progress (slow
// consumers skip ticks) but Done always fires on the terminal transition;
// read the final state through Status after Done closes.
type Watcher struct {
	Events <-chan Event
	Done   <-chan struct{}
	s      *Server
	id     string
	ch     chan Event
}

// Close unsubscribes the watcher.
func (w *Watcher) Close() {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	if j, ok := w.s.jobs[w.id]; ok {
		delete(j.subs, w.ch)
	}
}

// Watch subscribes to a job's progress and state transitions.
func (s *Server) Watch(id string) (*Watcher, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	ch := make(chan Event, 64)
	j.subs[ch] = true
	return &Watcher{Events: ch, Done: j.doneCh, s: s, id: id, ch: ch}, nil
}

// Metrics snapshots the server's operational counters as a stats dump.
func (s *Server) Metrics() *stats.Dump {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics.dump()
}

// QueueDepth reports the number of queued jobs (tests and tooling).
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.len()
}

func (s *Server) statusLocked(j *job, withResult bool) *JobStatus {
	st := &JobStatus{
		ID:        j.id,
		Type:      j.spec.Type,
		State:     j.state,
		Priority:  j.priority,
		Done:      j.done,
		Total:     j.total,
		Coalesced: j.coalesced,
		Cached:    j.cached,
		Error:     j.errMsg,
	}
	if withResult && j.state == StateDone {
		st.Result = j.payload
	}
	return st
}

// notifyLocked fans an event out to subscribers without blocking: a full
// subscriber skips the tick (the terminal transition is signalled
// reliably through doneCh instead).
func (s *Server) notifyLocked(j *job, ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// finishLocked completes a terminal transition: latency accounting, the
// final state event, the done signal, and the bounded terminal ring.
func (s *Server) finishLocked(j *job) {
	ms := s.now().Sub(j.submitted).Milliseconds()
	if ms < 0 {
		ms = 0
	}
	s.metrics.latency[j.spec.Type].Observe(uint64(ms))
	s.notifyLocked(j, Event{Type: "state", State: j.state})
	close(j.doneCh)
	s.doneOrder = append(s.doneOrder, j.id)
	s.trimDoneLocked()
}

func (s *Server) trimDoneLocked() {
	for len(s.doneOrder) > s.cfg.KeepDone {
		old := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, old)
	}
}

func (s *Server) removeDoneLocked(id string) {
	delete(s.jobs, id)
	for i, d := range s.doneOrder {
		if d == id {
			s.doneOrder = append(s.doneOrder[:i], s.doneOrder[i+1:]...)
			break
		}
	}
}

// worker pulls jobs off the queue until the server stops. It always
// finishes the job it is running; Shutdown's deadline, not worker exit,
// is what can interrupt in-flight work.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		id := s.popLocked()
		if id == "" {
			select {
			case <-s.stop:
				return
			case <-s.wake:
				continue
			}
		}
		s.runJob(id)
		select {
		case <-s.stop:
			return
		default:
		}
	}
}

func (s *Server) popLocked() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ""
	}
	return s.q.pop()
}

// runJob executes one job end to end and records its terminal state.
func (s *Server) runJob(id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.state != StateQueued {
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(s.runCtx)
	j.state = StateRunning
	j.cancel = cancel
	s.metrics.backendRuns++
	s.notifyLocked(j, Event{Type: "state", State: StateRunning})
	spec := j.spec
	s.mu.Unlock()

	progress := func(done, total int) {
		s.mu.Lock()
		j.done, j.total = done, total
		s.notifyLocked(j, Event{Type: "progress", Done: done, Total: total})
		s.mu.Unlock()
	}
	payload, err := s.run(ctx, spec, s.cfg.GridJobs, progress)
	cancel(nil)

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.payload = payload
		s.cache.put(id, payload)
		s.journalDoneLocked(id, "done")
		s.metrics.completed++
	case errors.Is(err, errShutdown):
		// A drain-deadline cancellation is not a job outcome: put the job
		// back in the queue. Its journal submit record is still pending, so
		// the next process resumes it.
		j.state = StateQueued
		s.q.push(id, j.priority, j.seq)
		return
	case errors.Is(err, ErrCancelled), errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.errMsg = "cancelled"
		s.journalDoneLocked(id, "cancelled")
		s.metrics.cancelled++
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.journalDoneLocked(id, "failed")
		s.metrics.failed++
	}
	s.finishLocked(j)
}

// journalDoneLocked retires a job in the journal. Failed and cancelled
// jobs are retired too — a deterministic engine would only fail the same
// way again on resume, so a restart must not retry them. An append error
// here costs at worst one redundant re-run after a restart; the in-memory
// state stays authoritative, so it is deliberately not fatal.
func (s *Server) journalDoneLocked(id, state string) {
	_ = s.journal.append(journalRecord{Op: "done", ID: id, State: state})
}
