package asm

import (
	"fmt"
	"strconv"
	"strings"

	"spt/internal/isa"
)

// Assemble parses µRISC assembly text into a program. The syntax matches
// the disassembler's output plus labels and directives:
//
//	; line comment (also #)
//	.data 0x1000          ; set data cursor
//	.byte 1, 2, 0xff      ; emit bytes at the cursor
//	.quad 0xdeadbeef, 7   ; emit 64-bit little-endian words
//	.zero 64              ; emit zero bytes
//	.entry main           ; set the entry label
//	main:
//	  movi r1, 10
//	loop:
//	  addi r1, r1, -1
//	  bne r1, r0, loop    ; branch targets: label or numeric offset
//	  ld r2, 8(r1)        ; loads/stores use offset(base)
//	  st r2, 0(r1)
//	  jal r1, func        ; jal target: label or numeric offset
//	  jalr r0, 0(r1)
//	  halt
func Assemble(name, src string) (*isa.Program, error) {
	b := NewBuilder(name)
	var (
		dataCursor uint64
		dataOpen   bool
		dataStart  uint64
		dataBytes  []byte
	)
	flushData := func() {
		if dataOpen && len(dataBytes) > 0 {
			b.Data(dataStart, dataBytes)
		}
		dataBytes = nil
		dataOpen = false
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("asm: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}

		// Directives.
		if strings.HasPrefix(line, ".") {
			fields := splitOperands(line)
			switch fields[0] {
			case ".data":
				if len(fields) != 2 {
					return nil, fail(".data needs an address")
				}
				addr, err := parseImm(fields[1])
				if err != nil {
					return nil, fail("bad address: %v", err)
				}
				flushData()
				dataCursor = uint64(addr)
				dataStart = dataCursor
				dataOpen = true
			case ".byte", ".quad":
				if !dataOpen {
					return nil, fail("%s outside a .data section", fields[0])
				}
				for _, f := range fields[1:] {
					v, err := parseImm(f)
					if err != nil {
						return nil, fail("bad value %q: %v", f, err)
					}
					if fields[0] == ".byte" {
						dataBytes = append(dataBytes, byte(v))
						dataCursor++
					} else {
						for j := 0; j < 8; j++ {
							dataBytes = append(dataBytes, byte(uint64(v)>>(8*j)))
						}
						dataCursor += 8
					}
				}
			case ".zero":
				if !dataOpen {
					return nil, fail(".zero outside a .data section")
				}
				if len(fields) != 2 {
					return nil, fail(".zero needs a count")
				}
				n, err := parseImm(fields[1])
				if err != nil || n < 0 {
					return nil, fail("bad count %q", fields[1])
				}
				dataBytes = append(dataBytes, make([]byte, n)...)
				dataCursor += uint64(n)
			case ".entry":
				if len(fields) != 2 {
					return nil, fail(".entry needs a label")
				}
				b.Entry(fields[1])
			case ".text":
				flushData()
			default:
				return nil, fail("unknown directive %q", fields[0])
			}
			continue
		}

		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return nil, fail("bad label %q", label)
			}
			b.Label(label)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		if err := assembleInstruction(b, line); err != nil {
			return nil, fail("%v", err)
		}
	}
	flushData()
	return b.Build()
}

// MustAssemble is Assemble that panics on error.
func MustAssemble(name, src string) *isa.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func assembleInstruction(b *Builder, line string) error {
	sp := strings.IndexAny(line, " \t")
	mnemonic := line
	rest := ""
	if sp >= 0 {
		mnemonic = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	op, ok := isa.OpByName(strings.ToLower(mnemonic))
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	args := splitOperandsList(rest)
	proto := isa.Instruction{Op: op}

	switch {
	case op == isa.NOP || op == isa.HALT:
		if len(args) != 0 {
			return fmt.Errorf("%v takes no operands", op)
		}
		b.emit(proto)
	case op == isa.MOVI:
		rd, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		imm, err := parseImmArg(args, 1)
		if err != nil {
			return err
		}
		b.Movi(rd, imm)
	case op == isa.MOV:
		rd, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		rs, err := parseReg(args, 1)
		if err != nil {
			return err
		}
		b.Mov(rd, rs)
	case op >= isa.ADDI && op <= isa.SLTI:
		rd, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		rs, err := parseReg(args, 1)
		if err != nil {
			return err
		}
		imm, err := parseImmArg(args, 2)
		if err != nil {
			return err
		}
		b.OpI(op, rd, rs, imm)
	case proto.IsLoad():
		rd, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		imm, base, err := parseMemOperand(args, 1)
		if err != nil {
			return err
		}
		b.emit(isa.Instruction{Op: op, Rd: rd, Rs1: base, Imm: imm})
	case proto.IsStore():
		rv, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		imm, base, err := parseMemOperand(args, 1)
		if err != nil {
			return err
		}
		b.emit(isa.Instruction{Op: op, Rs1: base, Rs2: rv, Imm: imm})
	case proto.IsCondBranch():
		rs1, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		rs2, err := parseReg(args, 1)
		if err != nil {
			return err
		}
		if len(args) != 3 {
			return fmt.Errorf("%v needs a target", op)
		}
		if isIdent(args[2]) {
			b.Branch(op, rs1, rs2, args[2])
		} else {
			imm, err := parseImm(args[2])
			if err != nil {
				return err
			}
			b.emit(isa.Instruction{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm})
		}
	case op == isa.JAL:
		rd, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		if len(args) != 2 {
			return fmt.Errorf("jal needs a target")
		}
		if isIdent(args[1]) {
			b.emitBranch(isa.Instruction{Op: isa.JAL, Rd: rd}, args[1])
		} else {
			imm, err := parseImm(args[1])
			if err != nil {
				return err
			}
			b.emit(isa.Instruction{Op: isa.JAL, Rd: rd, Imm: imm})
		}
	case op == isa.JALR:
		rd, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		imm, base, err := parseMemOperand(args, 1)
		if err != nil {
			return err
		}
		b.emit(isa.Instruction{Op: isa.JALR, Rd: rd, Rs1: base, Imm: imm})
	default:
		// Remaining register-register ALU ops.
		rd, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		rs1, err := parseReg(args, 1)
		if err != nil {
			return err
		}
		rs2, err := parseReg(args, 2)
		if err != nil {
			return err
		}
		b.Op3(op, rd, rs1, rs2)
	}
	return nil
}

func splitOperands(line string) []string {
	fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
	out := fields[:0]
	for _, f := range fields {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitOperandsList(rest string) []string {
	if rest == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(args []string, i int) (isa.Reg, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing register operand %d", i)
	}
	s := strings.ToLower(args[i])
	switch s {
	case "zero":
		return isa.Zero, nil
	case "ra":
		return isa.RA, nil
	case "sp":
		return isa.SP, nil
	case "gp":
		return isa.GP, nil
	case "tp":
		return isa.TP, nil
	}
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", args[i])
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", args[i])
	}
	return isa.Reg(n), nil
}

func parseImmArg(args []string, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing immediate operand %d", i)
	}
	return parseImm(args[i])
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Large unsigned hex constants.
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, err
		}
		return int64(u), nil
	}
	return v, nil
}

// parseMemOperand parses "imm(base)" or "(base)".
func parseMemOperand(args []string, i int) (int64, isa.Reg, error) {
	if i >= len(args) {
		return 0, 0, fmt.Errorf("missing memory operand %d", i)
	}
	s := args[i]
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q (want imm(base))", s)
	}
	var imm int64
	var err error
	if open > 0 {
		imm, err = parseImm(s[:open])
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q: %v", s, err)
		}
	}
	base, err := parseReg([]string{s[open+1 : len(s)-1]}, 0)
	if err != nil {
		return 0, 0, err
	}
	return imm, base, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Bare register names are not labels.
	if _, err := parseReg([]string{s}, 0); err == nil {
		return false
	}
	return true
}

// Disassemble renders a program as assembler text that Assemble accepts.
func Disassemble(p *isa.Program) string {
	var sb strings.Builder
	if len(p.Data) > 0 {
		for _, seg := range p.Data {
			fmt.Fprintf(&sb, ".data 0x%x\n", seg.Addr)
			for i := 0; i < len(seg.Bytes); i += 16 {
				end := i + 16
				if end > len(seg.Bytes) {
					end = len(seg.Bytes)
				}
				sb.WriteString(".byte ")
				for j := i; j < end; j++ {
					if j > i {
						sb.WriteString(", ")
					}
					fmt.Fprintf(&sb, "%d", seg.Bytes[j])
				}
				sb.WriteString("\n")
			}
		}
		sb.WriteString(".text\n")
	}
	for pc, ins := range p.Code {
		fmt.Fprintf(&sb, "%s ; pc=%d\n", ins.String(), pc)
	}
	return sb.String()
}
