package asm

import (
	"math/rand"
	"testing"

	"spt/internal/emu"
	"spt/internal/isa"
)

func TestBuilderSumLoop(t *testing.T) {
	p := NewBuilder("sum").
		Movi(1, 100).
		Movi(2, 0).
		Label("loop").
		Add(2, 2, 1).
		Addi(1, 1, -1).
		Bne(1, isa.Zero, "loop").
		Halt().
		MustBuild()
	e := emu.New(p)
	if _, err := e.Run(10000); err != nil {
		t.Fatal(err)
	}
	if got := e.State.Regs[2]; got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
}

func TestBuilderForwardReference(t *testing.T) {
	p := NewBuilder("fwd").
		Movi(1, 1).
		Jump("end").
		Movi(1, 2). // skipped
		Label("end").
		Halt().
		MustBuild()
	e := emu.New(p)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.State.Regs[1] != 1 {
		t.Fatalf("forward jump not taken: r1=%d", e.State.Regs[1])
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	_, err := NewBuilder("bad").Jump("nowhere").Halt().Build()
	if err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label did not panic")
		}
	}()
	NewBuilder("dup").Label("x").Label("x")
}

func TestBuilderEntry(t *testing.T) {
	p := NewBuilder("entry").
		Movi(1, 111).
		Halt().
		Label("main").
		Movi(1, 222).
		Halt().
		Entry("main").
		MustBuild()
	e := emu.New(p)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.State.Regs[1] != 222 {
		t.Fatalf("entry not honored: r1=%d", e.State.Regs[1])
	}
}

func TestBuilderCallRet(t *testing.T) {
	p := NewBuilder("call").
		Movi(10, 6).
		Call("double").
		Halt().
		Label("double").
		Add(10, 10, 10).
		Ret().
		MustBuild()
	e := emu.New(p)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.State.Regs[10] != 12 {
		t.Fatalf("call/ret: r10=%d, want 12", e.State.Regs[10])
	}
}

func TestBuilderDataQuads(t *testing.T) {
	p := NewBuilder("data").
		DataQuads(0x1000, []uint64{0xAABBCCDD, 42}).
		Movi(1, 0x1000).
		Ld(2, 1, 0).
		Ld(3, 1, 8).
		Halt().
		MustBuild()
	e := emu.New(p)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.State.Regs[2] != 0xAABBCCDD || e.State.Regs[3] != 42 {
		t.Fatalf("data quads: r2=%#x r3=%d", e.State.Regs[2], e.State.Regs[3])
	}
}

const fibSrc = `
; iterative fibonacci: r10 = fib(r10)
.entry main
.data 0x2000
.quad 10
.text
main:
  movi r5, 0x2000
  ld r10, 0(r5)       ; n
  movi r1, 0          ; a
  movi r2, 1          ; b
loop:
  beq r10, r0, done
  add r3, r1, r2
  mov r1, r2
  mov r2, r3
  addi r10, r10, -1
  jal r0, loop
done:
  mov r10, r1
  halt
`

func TestAssembleFibonacci(t *testing.T) {
	p, err := Assemble("fib", fibSrc)
	if err != nil {
		t.Fatal(err)
	}
	e := emu.New(p)
	if _, err := e.Run(10000); err != nil {
		t.Fatal(err)
	}
	if got := e.State.Regs[10]; got != 55 {
		t.Fatalf("fib(10) = %d, want 55", got)
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p := MustAssemble("mem", `
  movi r1, 0x3000
  movi r2, 77
  st r2, 16(r1)
  ld r3, 16(r1)
  stw r2, (r1)
  ldw r4, (r1)
  stb r2, 3(r1)
  ldb r5, 3(r1)
  halt
`)
	e := emu.New(p)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.State.Regs[3] != 77 || e.State.Regs[5] != 77 {
		t.Fatalf("mem ops: r3=%d r5=%d", e.State.Regs[3], e.State.Regs[5])
	}
}

func TestAssembleRegisterAliases(t *testing.T) {
	p := MustAssemble("alias", `
  movi sp, 0x8000
  movi ra, 5
  add gp, sp, ra
  mov tp, gp
  halt
`)
	e := emu.New(p)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.State.Regs[isa.GP] != 0x8005 || e.State.Regs[isa.TP] != 0x8005 {
		t.Fatalf("aliases: gp=%#x tp=%#x", e.State.Regs[isa.GP], e.State.Regs[isa.TP])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2", // unknown mnemonic
		"movi r99, 1",  // bad register
		"ld r1, r2",    // bad memory operand
		"beq r1, r2",   // missing target
		".byte 1",      // .byte outside .data
		".data",        // missing address
		"addi r1, r2",  // missing immediate
		"movi r1, zzz", // bad immediate
		"jalr r0, r1",  // jalr needs imm(base)
	}
	for _, src := range cases {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("accepted invalid source %q", src)
		}
	}
}

func TestAssembleNumericBranchOffset(t *testing.T) {
	p := MustAssemble("num", `
  movi r1, 1
  beq r0, r0, 2
  movi r1, 99
  halt
`)
	e := emu.New(p)
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.State.Regs[1] != 1 {
		t.Fatalf("numeric branch offset: r1=%d", e.State.Regs[1])
	}
}

// TestDisassembleRoundTrip checks that Assemble(Disassemble(p)) produces a
// program with identical code and equivalent data for random programs.
func TestDisassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder("rt")
		n := 5 + rng.Intn(30)
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				b.Movi(isa.Reg(1+rng.Intn(30)), rng.Int63n(1<<30))
			case 1:
				b.Op3(isa.ADD+isa.Op(rng.Intn(8)), isa.Reg(1+rng.Intn(30)), isa.Reg(rng.Intn(31)), isa.Reg(rng.Intn(31)))
			case 2:
				b.Ld(isa.Reg(1+rng.Intn(30)), isa.Reg(rng.Intn(31)), rng.Int63n(256))
			case 3:
				b.St(isa.Reg(rng.Intn(31)), isa.Reg(rng.Intn(31)), rng.Int63n(256))
			case 4:
				b.OpI(isa.ADDI, isa.Reg(1+rng.Intn(30)), isa.Reg(rng.Intn(31)), rng.Int63n(1000)-500)
			case 5:
				b.emit(isa.Instruction{Op: isa.BEQ, Rs1: isa.Reg(rng.Intn(31)), Rs2: isa.Reg(rng.Intn(31)), Imm: int64(-i)})
			}
		}
		b.Halt()
		if rng.Intn(2) == 0 {
			b.DataQuads(0x1000, []uint64{rng.Uint64(), rng.Uint64()})
		}
		p := b.MustBuild()
		p2, err := Assemble("rt2", Disassemble(p))
		if err != nil {
			t.Fatalf("reassemble failed: %v\n%s", err, Disassemble(p))
		}
		if len(p2.Code) != len(p.Code) {
			t.Fatalf("code length changed: %d -> %d", len(p.Code), len(p2.Code))
		}
		for i := range p.Code {
			if p.Code[i] != p2.Code[i] {
				t.Fatalf("instruction %d changed: %v -> %v", i, p.Code[i], p2.Code[i])
			}
		}
	}
}
