// Package asm provides two ways to produce µRISC programs: a programmatic
// Builder DSL (used by the workload kernels) and a two-pass text assembler
// compatible with the disassembler's output syntax.
package asm

import (
	"fmt"

	"spt/internal/isa"
)

// Builder incrementally constructs a µRISC program. Control-flow targets
// are symbolic labels resolved at Build time, so forward references are
// fine. Builder methods panic on misuse (duplicate label, bad register);
// Build returns an error for unresolved labels and validation failures.
type Builder struct {
	name   string
	code   []isa.Instruction
	labels map[string]int
	fixups []fixup
	data   []isa.Segment
	entry  string // optional entry label
}

type fixup struct {
	pc    int    // instruction needing the target
	label string // label it refers to
}

// NewBuilder returns an empty program builder.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// Len reports the number of instructions emitted so far (the PC of the next
// instruction).
func (b *Builder) Len() int { return len(b.code) }

// Label defines a label at the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q", name))
	}
	b.labels[name] = len(b.code)
	return b
}

// Entry marks the label execution starts at. Defaults to instruction 0.
func (b *Builder) Entry(label string) *Builder {
	b.entry = label
	return b
}

// Data adds an initialized data segment.
func (b *Builder) Data(addr uint64, bytes []byte) *Builder {
	cp := make([]byte, len(bytes))
	copy(cp, bytes)
	b.data = append(b.data, isa.Segment{Addr: addr, Bytes: cp})
	return b
}

// DataQuads adds a data segment of little-endian 64-bit words.
func (b *Builder) DataQuads(addr uint64, vals []uint64) *Builder {
	bytes := make([]byte, 8*len(vals))
	for i, v := range vals {
		for j := 0; j < 8; j++ {
			bytes[8*i+j] = byte(v >> (8 * j))
		}
	}
	return b.Data(addr, bytes)
}

func (b *Builder) emit(ins isa.Instruction) *Builder {
	b.code = append(b.code, ins)
	return b
}

func (b *Builder) emitBranch(ins isa.Instruction, label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	return b.emit(ins)
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(isa.Instruction{Op: isa.NOP}) }

// Halt emits a halt.
func (b *Builder) Halt() *Builder { return b.emit(isa.Instruction{Op: isa.HALT}) }

// Movi emits rd = imm.
func (b *Builder) Movi(rd isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.MOVI, Rd: rd, Imm: imm})
}

// Mov emits rd = rs.
func (b *Builder) Mov(rd, rs isa.Reg) *Builder {
	return b.emit(isa.Instruction{Op: isa.MOV, Rd: rd, Rs1: rs})
}

// Op3 emits a register-register ALU operation rd = rs1 op rs2.
func (b *Builder) Op3(op isa.Op, rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI emits a register-immediate ALU operation rd = rs1 op imm.
func (b *Builder) OpI(op isa.Op, rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Convenience ALU helpers for the most common operations.

func (b *Builder) Add(rd, a, c isa.Reg) *Builder          { return b.Op3(isa.ADD, rd, a, c) }
func (b *Builder) Sub(rd, a, c isa.Reg) *Builder          { return b.Op3(isa.SUB, rd, a, c) }
func (b *Builder) And(rd, a, c isa.Reg) *Builder          { return b.Op3(isa.AND, rd, a, c) }
func (b *Builder) Or(rd, a, c isa.Reg) *Builder           { return b.Op3(isa.OR, rd, a, c) }
func (b *Builder) Xor(rd, a, c isa.Reg) *Builder          { return b.Op3(isa.XOR, rd, a, c) }
func (b *Builder) Mul(rd, a, c isa.Reg) *Builder          { return b.Op3(isa.MUL, rd, a, c) }
func (b *Builder) Addi(rd, a isa.Reg, imm int64) *Builder { return b.OpI(isa.ADDI, rd, a, imm) }
func (b *Builder) Andi(rd, a isa.Reg, imm int64) *Builder { return b.OpI(isa.ANDI, rd, a, imm) }
func (b *Builder) Xori(rd, a isa.Reg, imm int64) *Builder { return b.OpI(isa.XORI, rd, a, imm) }
func (b *Builder) Shli(rd, a isa.Reg, imm int64) *Builder { return b.OpI(isa.SHLI, rd, a, imm) }
func (b *Builder) Shri(rd, a isa.Reg, imm int64) *Builder { return b.OpI(isa.SHRI, rd, a, imm) }

// Ld emits rd = mem64[rs1+imm]; Ldw and Ldb are the narrower forms.
func (b *Builder) Ld(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.LD, Rd: rd, Rs1: rs1, Imm: imm})
}

func (b *Builder) Ldw(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.LDW, Rd: rd, Rs1: rs1, Imm: imm})
}

func (b *Builder) Ldb(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.LDB, Rd: rd, Rs1: rs1, Imm: imm})
}

// St emits mem64[rs1+imm] = rv; Stw and Stb are the narrower forms.
func (b *Builder) St(rv, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.ST, Rs1: rs1, Rs2: rv, Imm: imm})
}

func (b *Builder) Stw(rv, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.STW, Rs1: rs1, Rs2: rv, Imm: imm})
}

func (b *Builder) Stb(rv, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.STB, Rs1: rs1, Rs2: rv, Imm: imm})
}

// Branch emits a conditional branch to a label.
func (b *Builder) Branch(op isa.Op, rs1, rs2 isa.Reg, label string) *Builder {
	if !(isa.Instruction{Op: op}).IsCondBranch() {
		panic(fmt.Sprintf("asm: Branch with non-branch op %v", op))
	}
	return b.emitBranch(isa.Instruction{Op: op, Rs1: rs1, Rs2: rs2}, label)
}

func (b *Builder) Beq(a, c isa.Reg, label string) *Builder  { return b.Branch(isa.BEQ, a, c, label) }
func (b *Builder) Bne(a, c isa.Reg, label string) *Builder  { return b.Branch(isa.BNE, a, c, label) }
func (b *Builder) Blt(a, c isa.Reg, label string) *Builder  { return b.Branch(isa.BLT, a, c, label) }
func (b *Builder) Bge(a, c isa.Reg, label string) *Builder  { return b.Branch(isa.BGE, a, c, label) }
func (b *Builder) Bltu(a, c isa.Reg, label string) *Builder { return b.Branch(isa.BLTU, a, c, label) }
func (b *Builder) Bgeu(a, c isa.Reg, label string) *Builder { return b.Branch(isa.BGEU, a, c, label) }

// Jump emits an unconditional jump (JAL writing the zero register).
func (b *Builder) Jump(label string) *Builder {
	return b.emitBranch(isa.Instruction{Op: isa.JAL, Rd: isa.Zero}, label)
}

// Call emits a call: JAL with the return address in RA.
func (b *Builder) Call(label string) *Builder {
	return b.emitBranch(isa.Instruction{Op: isa.JAL, Rd: isa.RA}, label)
}

// Ret emits a return: JALR through RA.
func (b *Builder) Ret() *Builder {
	return b.emit(isa.Instruction{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA})
}

// Jalr emits an indirect jump rd = pc+1; pc = rs1+imm.
func (b *Builder) Jalr(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.JALR, Rd: rd, Rs1: rs1, Imm: imm})
}

// JalOffset emits a JAL with a numeric instruction offset instead of a
// label. JalOffset(rd, 1) is the idiom for materializing the current
// instruction index: it "jumps" to the fall-through path and leaves
// pc+1 in rd.
func (b *Builder) JalOffset(rd isa.Reg, off int64) *Builder {
	return b.emit(isa.Instruction{Op: isa.JAL, Rd: rd, Imm: off})
}

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*isa.Program, error) {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q at pc %d", f.label, f.pc)
		}
		b.code[f.pc].Imm = int64(target - f.pc)
	}
	var entry uint64
	if b.entry != "" {
		e, ok := b.labels[b.entry]
		if !ok {
			return nil, fmt.Errorf("asm: undefined entry label %q", b.entry)
		}
		entry = uint64(e)
	}
	p := &isa.Program{Name: b.name, Code: b.code, Data: b.data, Entry: entry}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for statically-known programs.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
