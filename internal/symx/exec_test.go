package symx

import (
	"errors"
	"testing"

	"spt/internal/emu"
	"spt/internal/isa"
)

const testSecretAddr = 0x2000

func ins(op isa.Op, rd, rs1, rs2 isa.Reg, imm int64) isa.Instruction {
	return isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm}
}

func testProg(name string, code []isa.Instruction) *isa.Program {
	return &isa.Program{
		Name: name,
		Code: code,
		Data: []isa.Segment{{Addr: testSecretAddr, Bytes: []byte{0x5A}}},
	}
}

func testCfg() Config {
	return Config{Secret: SecretSpec{Addr: testSecretAddr, Size: 1}}
}

// spectreV1 mispredicts an always-taken guard branch; the transient
// fall-through loads the secret and probes a line-granular array.
func spectreV1() *isa.Program {
	return testProg("spectre-v1", []isa.Instruction{
		ins(isa.BEQ, 0, isa.Zero, isa.Zero, 5), // arch: taken to halt
		ins(isa.MOVI, 4, 0, 0, testSecretAddr),
		ins(isa.LDB, 5, 4, 0, 0), // transient secret load
		ins(isa.SHLI, 6, 5, 0, 6),
		ins(isa.LD, 7, 6, 0, 0x3000), // transmit: line per secret value
		ins(isa.HALT, 0, 0, 0, 0),
	})
}

// sttGap loads the secret architecturally (a "nonspeculative secret"),
// then transmits it only transiently: the exact case STT's taint rule
// does not cover and SPT does.
func sttGap() *isa.Program {
	return testProg("stt-gap", []isa.Instruction{
		ins(isa.MOVI, 4, 0, 0, testSecretAddr),
		ins(isa.LDB, 5, 4, 0, 0), // architectural secret load (address is uniform)
		ins(isa.BEQ, 0, isa.Zero, isa.Zero, 3),
		ins(isa.SHLI, 6, 5, 0, 6),
		ins(isa.LD, 7, 6, 0, 0x3000),
		ins(isa.HALT, 0, 0, 0, 0),
	})
}

// storeBypass guards the transmit sequence with a flag a store just set:
// the bypass window reads the stale flag and runs the gadget.
func storeBypass() *isa.Program {
	return testProg("store-bypass", []isa.Instruction{
		ins(isa.MOVI, 2, 0, 0, 0x4000),
		ins(isa.MOVI, 3, 0, 0, 1),
		ins(isa.ST, 0, 2, 3, 0),  // guard = 1; bypass episode sees 0
		ins(isa.LD, 4, 2, 0, 0),  // arch: 1, transient: 0
		ins(isa.BNE, 0, 4, 0, 4), // arch: taken to halt; transient: falls through
		ins(isa.LDB, 5, isa.Zero, 0, testSecretAddr),
		ins(isa.SHLI, 6, 5, 0, 6),
		ins(isa.LD, 7, 6, 0, 0x3000),
		ins(isa.HALT, 0, 0, 0, 0),
	})
}

// returnGadget mispredicts a return via the RAS: the leaf overwrites its
// return address, so the RAS-predicted path (the original call site's
// fall-through) runs transiently and transmits.
func returnGadget() *isa.Program {
	return testProg("return-gadget", []isa.Instruction{
		ins(isa.JAL, isa.RA, 0, 0, 5), // call leaf at 5
		// RAS predicts a return to here: the transient path.
		ins(isa.LDB, 5, isa.Zero, 0, testSecretAddr),
		ins(isa.SHLI, 6, 5, 0, 6),
		ins(isa.LD, 7, 6, 0, 0x3000),
		ins(isa.HALT, 0, 0, 0, 0),
		ins(isa.ADDI, isa.RA, isa.RA, 0, 3), // leaf: skip the gadget on the real return
		ins(isa.JALR, 0, isa.RA, 0, 0),      // returns to 4 (halt), RAS says 1
	})
}

func verdictOf(t *testing.T, p *isa.Program, scheme, model string) Result {
	t.Helper()
	res, err := Verify(p, scheme, model, testCfg())
	if err != nil {
		t.Fatalf("%s under %s/%s: %v", p.Name, scheme, model, err)
	}
	return res
}

func TestHandGadgetVerdicts(t *testing.T) {
	cases := []struct {
		prog    *isa.Program
		scheme  string
		model   string
		verdict Verdict
	}{
		{spectreV1(), "unsafe", "futuristic", VerdictLeak},
		{spectreV1(), "stt", "futuristic", VerdictSecure},
		{spectreV1(), "spt", "futuristic", VerdictSecure},
		{spectreV1(), "secure", "futuristic", VerdictSecure},
		{spectreV1(), "spt", "spectre", VerdictSecure},

		{sttGap(), "unsafe", "futuristic", VerdictLeak},
		{sttGap(), "stt", "futuristic", VerdictLeak}, // the paper's §3 gap
		{sttGap(), "spt", "futuristic", VerdictSecure},
		{sttGap(), "spt-ideal", "futuristic", VerdictSecure},

		{storeBypass(), "unsafe", "futuristic", VerdictLeak},
		{storeBypass(), "stt", "futuristic", VerdictSecure},
		{storeBypass(), "spt", "futuristic", VerdictSecure},
		// Memory speculation is outside the Spectre threat model: every
		// scheme leaves the bypass window open there.
		{storeBypass(), "spt", "spectre", VerdictLeak},
		{storeBypass(), "stt", "spectre", VerdictLeak},
		{storeBypass(), "secure", "spectre", VerdictLeak},

		{returnGadget(), "unsafe", "futuristic", VerdictLeak},
		{returnGadget(), "stt", "futuristic", VerdictSecure},
		{returnGadget(), "spt", "futuristic", VerdictSecure},
	}
	for _, c := range cases {
		res := verdictOf(t, c.prog, c.scheme, c.model)
		if res.Verdict != c.verdict {
			t.Errorf("%s under %s/%s: got %v (%s; %s), want %v",
				c.prog.Name, c.scheme, c.model, res.Verdict, res.Method, res.Reason, c.verdict)
		}
		if res.Verdict == VerdictLeak {
			if res.Witness == nil {
				t.Errorf("%s under %s/%s: leak without witness", c.prog.Name, c.scheme, c.model)
			} else if string(res.Witness.SecretA) == string(res.Witness.SecretB) {
				t.Errorf("%s under %s/%s: degenerate witness %#x", c.prog.Name, c.scheme, c.model, res.Witness.SecretA)
			}
		}
	}
}

// TestEnumerationFallback drives a transient branch whose direction is
// the secret itself: the symbolic pass cannot follow both paths, so the
// verdict must come from exhaustive enumeration, still with a witness.
func TestEnumerationFallback(t *testing.T) {
	p := testProg("transient-secret-branch", []isa.Instruction{
		ins(isa.MOVI, 2, 0, 0, 0x4000),
		ins(isa.MOVI, 3, 0, 0, 1),
		ins(isa.ST, 0, 2, 3, 0),
		ins(isa.LD, 4, 2, 0, 0),
		ins(isa.BNE, 0, 4, 0, 5), // arch: taken to halt at 9
		ins(isa.LDB, 5, isa.Zero, 0, testSecretAddr),
		ins(isa.BNE, 0, 5, 0, 2), // transient: direction IS the secret
		ins(isa.LD, 7, isa.Zero, 0, 0x3000),
		ins(isa.HALT, 0, 0, 0, 0),
		ins(isa.HALT, 0, 0, 0, 0),
	})
	res := verdictOf(t, p, "unsafe", "futuristic")
	if res.Verdict != VerdictLeak || res.Method != "enumeration" {
		t.Fatalf("got %v via %s (%s), want leak via enumeration", res.Verdict, res.Method, res.Reason)
	}
	if res.Witness == nil || res.Witness.Divergence == "" {
		t.Fatalf("enumeration leak without witness divergence: %+v", res)
	}
	// SPT closes the window entirely, symbolically.
	res = verdictOf(t, p, "spt", "futuristic")
	if res.Verdict != VerdictSecure || res.Method != "symbolic" {
		t.Fatalf("spt: got %v via %s, want secure via symbolic", res.Verdict, res.Method)
	}
}

// TestArchLeakRejected pins the contract: programs whose architectural
// execution depends on the secret are errors, not leak verdicts, exactly
// like the differential oracle's arch-sameness precheck.
func TestArchLeakRejected(t *testing.T) {
	storeVal := testProg("arch-store-value", []isa.Instruction{
		ins(isa.LDB, 5, isa.Zero, 0, testSecretAddr),
		ins(isa.ST, 0, isa.Zero, 5, 0x4000),
		ins(isa.HALT, 0, 0, 0, 0),
	})
	branchDir := testProg("arch-branch", []isa.Instruction{
		ins(isa.LDB, 5, isa.Zero, 0, testSecretAddr),
		ins(isa.BNE, 0, 5, 0, 1),
		ins(isa.HALT, 0, 0, 0, 0),
	})
	loadAddr := testProg("arch-load-addr", []isa.Instruction{
		ins(isa.LDB, 5, isa.Zero, 0, testSecretAddr),
		ins(isa.SHLI, 6, 5, 0, 6),
		ins(isa.LD, 7, 6, 0, 0x3000),
		ins(isa.HALT, 0, 0, 0, 0),
	})
	for _, p := range []*isa.Program{storeVal, branchDir, loadAddr} {
		_, err := Verify(p, "unsafe", "futuristic", testCfg())
		var al ErrArchLeak
		if !errors.As(err, &al) {
			t.Errorf("%s: got %v, want ErrArchLeak", p.Name, err)
			continue
		}
		if string(al.SecretA) == string(al.SecretB) {
			t.Errorf("%s: degenerate arch-leak witness %#x", p.Name, al.SecretA)
		}
	}
}

// TestArchEquivalence runs a program exercising ALU, memory, and
// call/return control flow on the concrete symbolic machine and on the
// golden emulator, and compares the full architectural register file.
func TestArchEquivalence(t *testing.T) {
	p := testProg("arch-equiv", []isa.Instruction{
		ins(isa.MOVI, 2, 0, 0, 0x4000),
		ins(isa.MOVI, 3, 0, 0, -7),
		ins(isa.ADD, 4, 2, 3, 0),
		ins(isa.MUL, 5, 4, 3, 0),
		ins(isa.DIV, 6, 5, 3, 0),
		ins(isa.REM, 7, 5, 4, 0),
		ins(isa.ST, 0, 2, 5, 8),
		ins(isa.LD, 8, 2, 0, 8),
		ins(isa.LDW, 9, 2, 0, 8),
		ins(isa.LDB, 10, 2, 0, 8),
		ins(isa.SLT, 11, 3, 4, 0),
		ins(isa.MAXU, 12, 5, 3, 0),
		ins(isa.ROLW, 13, 5, 4, 0),
		ins(isa.JAL, isa.RA, 0, 0, 3), // call leaf at 16
		ins(isa.XORI, 15, 14, 0, 0x55),
		ins(isa.HALT, 0, 0, 0, 0),
		ins(isa.ADDI, 14, 7, 0, 9), // leaf
		ins(isa.JALR, 0, isa.RA, 0, 0),
	})
	e := emu.New(p)
	for !e.State.Halted {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	budget := int64(1 << 20)
	m := newMachine(p, policy{}, testCfg().withDefaults(), nil, &budget, []byte{0x5A})
	if err := m.run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < isa.NumRegs; r++ {
		v, ok := m.regs[r].ConstVal()
		if !ok {
			t.Fatalf("r%d not concrete after concrete run: %v", r, m.regs[r])
		}
		if v != e.State.Regs[r] {
			t.Errorf("r%d: symx %#x, emu %#x", r, v, e.State.Regs[r])
		}
	}
	if got := e.State.Mem.Read(0x4008, 8); got != mustConst(t, m.memByteRead(0x4008)) {
		t.Errorf("memory at 0x4008: emu %#x symx %#x", got, mustConst(t, m.memByteRead(0x4008)))
	}
}

func mustConst(t *testing.T, tm *Term) uint64 {
	t.Helper()
	v, ok := tm.ConstVal()
	if !ok {
		t.Fatalf("term not concrete: %v", tm)
	}
	return v
}

// memByteRead is a test helper reading an 8-byte value.
func (m *machine) memByteRead(addr uint64) *Term {
	return m.readMem(nil, addr, 8)
}

// TestSymbolicConcreteTraceAgreement pins the core property on the hand
// gadgets: evaluating the symbolic trace at a concrete secret reproduces
// the concrete machine's trace event for event.
func TestSymbolicConcreteTraceAgreement(t *testing.T) {
	progs := []*isa.Program{spectreV1(), sttGap(), storeBypass(), returnGadget()}
	schemes := []string{"unsafe", "stt", "spt", "secure", "spt-fwd", "spt-ideal"}
	models := []string{"futuristic", "spectre"}
	for _, p := range progs {
		for _, scheme := range schemes {
			for _, model := range models {
				sym, err := ObservationEvents(p, scheme, model, testCfg(), nil)
				if err != nil {
					t.Fatalf("%s %s/%s symbolic: %v", p.Name, scheme, model, err)
				}
				for _, s := range []byte{0, 1, 0x5A, 0xFF} {
					conc, err := ObservationEvents(p, scheme, model, testCfg(), []byte{s})
					if err != nil {
						t.Fatalf("%s %s/%s secret %#x: %v", p.Name, scheme, model, s, err)
					}
					if len(conc) != len(sym) {
						t.Fatalf("%s %s/%s secret %#x: %d concrete events vs %d symbolic",
							p.Name, scheme, model, s, len(conc), len(sym))
					}
					for i := range sym {
						if sym[i].Kind != conc[i].Kind || sym[i].PC != conc[i].PC || sym[i].Spec != conc[i].Spec {
							t.Fatalf("%s %s/%s secret %#x event %d: shape mismatch %+v vs %+v",
								p.Name, scheme, model, s, i, sym[i], conc[i])
						}
						want := mustConst(t, conc[i].Addr)
						if got := sym[i].Addr.Eval([]byte{s}); got != want {
							t.Fatalf("%s %s/%s secret %#x event %d: symbolic eval %#x, concrete %#x",
								p.Name, scheme, model, s, i, got, want)
						}
					}
				}
			}
		}
	}
}
