// Package symx is a relational symbolic executor over µRISC: the repo's
// second leakage oracle. Where internal/fuzz decides "does this gadget
// leak?" by concretely simulating two secret values and diffing the
// observation traces, symx checks speculative noninterference for *all*
// secret values, SPECTECTOR-style (Guarnieri et al.): the secret bytes are
// symbolic, execution follows an always-mispredict speculative semantics
// with a bounded squash depth, and the proof obligation is that the
// observation trace — addresses of loads and stores plus speculatively
// issued branch redirects — is independent of the secret.
//
// The engine is deliberately SMT-free. Values are terms over the symbolic
// secret bytes; a known-bits ("varbits") analysis folds every term the
// secret provably cannot influence, and exhaustive evaluation over the
// narrow secret domain (the gadget contract is a 1–2 byte secret) decides
// everything the bit-level analysis cannot. For byte-wide secrets the
// verdict is therefore exact, not approximate: Secure means no secret
// value pair can diverge the trace, and Leak carries a concrete witness
// pair replayable by the differential fuzzer.
package symx

import (
	"fmt"

	"spt/internal/emu"
	"spt/internal/isa"
)

// termKind discriminates Term nodes.
type termKind uint8

const (
	// kConst is a concrete 64-bit value.
	kConst termKind = iota
	// kSecret is one symbolic secret byte (Val = byte index), read as a
	// zero-extended uint64 in [0,255].
	kSecret
	// kOp applies an isa ALU operation to A (and B or Imm).
	kOp
	// kVec is an explicit value table: one uint64 per point of the secret
	// domain. It represents values the term language cannot express
	// structurally — a load whose address depends on the secret resolves
	// to the vector of per-secret memory contents.
	kVec
)

// Term is a value as a pure function of the symbolic secret bytes. Terms
// are immutable once built; constructors constant-fold through emu.ALU
// (the ISA's single source of arithmetic truth) and collapse any term the
// varbits analysis proves secret-independent, so a Term is symbolic only
// if the secret may genuinely influence its value.
type Term struct {
	kind termKind
	op   isa.Op
	a, b *Term
	imm  int64
	// val is the value (kConst) or the secret byte index (kSecret).
	val uint64
	// vec is the per-domain-point value table (kVec only).
	vec []uint64
	// base is the term's value at the all-zero secret, maintained
	// incrementally so folding never needs a full evaluation pass.
	base uint64
	// varbits marks the bits the secret may influence. It is sound, not
	// exact: a set bit may still be constant in truth, but a clear bit is
	// guaranteed secret-independent.
	varbits uint64
}

// Const builds a concrete term.
func Const(v uint64) *Term {
	return &Term{kind: kConst, val: v, base: v}
}

// SecretByte builds the symbolic term for secret byte i (zero-extended).
func SecretByte(i int) *Term {
	return &Term{kind: kSecret, val: uint64(i), varbits: 0xFF}
}

// IsConst reports whether the term folded to a concrete value.
func (t *Term) IsConst() bool { return t.kind == kConst }

// ConstVal returns the concrete value of a folded term.
func (t *Term) ConstVal() (uint64, bool) {
	if t.kind == kConst {
		return t.val, true
	}
	return 0, false
}

// String renders the term for diagnostics.
func (t *Term) String() string {
	switch t.kind {
	case kConst:
		return fmt.Sprintf("%#x", t.val)
	case kSecret:
		return fmt.Sprintf("secret[%d]", t.val)
	case kVec:
		return fmt.Sprintf("select(secret -> %d values)", len(t.vec))
	}
	if t.b != nil {
		return fmt.Sprintf("(%s %s %s)", t.op, t.a, t.b)
	}
	return fmt.Sprintf("(%s %s %d)", t.op, t.a, t.imm)
}

// smear extends a varbits mask upward from its lowest set bit, modeling
// carry propagation: once any input bit below position k may vary, an
// addition can disturb every bit at or above it.
func smear(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	lowest := v & -v
	return ^(lowest - 1)
}

// opVarbits computes a sound varbits mask for op applied to a and b
// (b == nil for immediate forms, with bImm the immediate's value view).
func opVarbits(op isa.Op, a, b *Term, imm int64) uint64 {
	bBase, bVar := uint64(imm), uint64(0)
	if b != nil {
		bBase, bVar = b.base, b.varbits
	}
	both := a.varbits | bVar
	switch op {
	case isa.AND, isa.ANDI:
		bOne := bBase | bVar
		aOne := a.base | a.varbits
		return (a.varbits & bOne) | (bVar & aOne)
	case isa.OR, isa.ORI:
		bZero := ^bBase | bVar
		aZero := ^a.base | a.varbits
		return (a.varbits & bZero) | (bVar & aZero)
	case isa.XOR, isa.XORI:
		return both
	case isa.ADD, isa.ADDI, isa.SUB:
		return smear(both)
	case isa.MUL:
		return smear(both)
	case isa.ADDW, isa.SUBW:
		return smear(both) & 0xFFFFFFFF
	case isa.SHLI:
		return a.varbits << (uint64(imm) & 63)
	case isa.SHRI:
		return a.varbits >> (uint64(imm) & 63)
	case isa.SRAI:
		s := uint64(imm) & 63
		v := a.varbits >> s
		if a.varbits>>63 != 0 && s > 0 {
			v |= ^uint64(0) << (64 - s)
		}
		return v
	case isa.SHL, isa.SHR, isa.SRA:
		if bVar == 0 {
			s := bBase & 63
			switch op {
			case isa.SHL:
				return a.varbits << s
			case isa.SHR:
				return a.varbits >> s
			default: // SRA
				v := a.varbits >> s
				if a.varbits>>63 != 0 && s > 0 {
					v |= ^uint64(0) << (64 - s)
				}
				return v
			}
		}
		if a.varbits == 0 && bVar == 0 {
			return 0
		}
		return ^uint64(0)
	case isa.ROLW, isa.RORW:
		if both == 0 {
			return 0
		}
		return 0xFFFFFFFF
	case isa.SLT, isa.SLTU, isa.SLTI, isa.MIN, isa.MAX, isa.MINU, isa.MAXU,
		isa.DIV, isa.REM:
		if both == 0 {
			return 0
		}
		if op == isa.SLT || op == isa.SLTU || op == isa.SLTI {
			return 1
		}
		return ^uint64(0)
	}
	// Unknown operation: assume everything may vary (sound).
	if both == 0 {
		return 0
	}
	return ^uint64(0)
}

// newOp builds op(a, b/imm), folding to a constant when both operands are
// concrete or when varbits proves the secret cannot reach the result.
func newOp(op isa.Op, a, b *Term, imm int64) *Term {
	var bBase uint64
	if b != nil {
		bBase = b.base
	}
	base := emu.ALU(op, a.base, bBase, imm)
	if a.kind == kConst && (b == nil || b.kind == kConst) {
		return Const(base)
	}
	vb := opVarbits(op, a, b, imm)
	if vb == 0 {
		// The secret provably cannot influence any result bit, so the
		// value at the all-zero secret is the value everywhere.
		return Const(base)
	}
	return &Term{kind: kOp, op: op, a: a, b: b, imm: imm, base: base, varbits: vb}
}

// Op2 applies a register-register ALU operation to two terms.
func Op2(op isa.Op, a, b *Term) *Term { return newOp(op, a, b, 0) }

// OpImm applies a register-immediate ALU operation to a term.
func OpImm(op isa.Op, a *Term, imm int64) *Term { return newOp(op, a, nil, imm) }

// Eval substitutes concrete secret bytes into the term. Substitution
// commutes with construction: Eval(Op2(op,a,b), s) equals
// emu.ALU(op, Eval(a,s), Eval(b,s), imm) by definition, which is the
// property the package's tests pin against the concrete emulator.
func (t *Term) Eval(secret []byte) uint64 {
	switch t.kind {
	case kConst:
		return t.val
	case kSecret:
		i := int(t.val)
		if i < len(secret) {
			return uint64(secret[i])
		}
		return 0
	case kVec:
		return t.vec[domainIndex(secret)]
	}
	var b uint64
	if t.b != nil {
		b = t.b.Eval(secret)
	}
	return emu.ALU(t.op, t.a.Eval(secret), b, t.imm)
}

// domainIndex maps concrete secret bytes to their index in the canonical
// enumeration order (little-endian: byte 0 is the least significant).
func domainIndex(secret []byte) int {
	idx := 0
	for i := len(secret) - 1; i >= 0; i-- {
		idx = idx<<8 | int(secret[i])
	}
	return idx
}

// domainSecret is the inverse of domainIndex for a given byte width.
func domainSecret(idx, nbytes int) []byte {
	s := make([]byte, nbytes)
	for i := 0; i < nbytes; i++ {
		s[i] = byte(idx >> (8 * i))
	}
	return s
}

// maxEnumBytes bounds exhaustive evaluation: a 2-byte secret enumerates
// 65536 points, which is still cheap for gadget-sized terms; anything
// wider must be decided by varbits alone or reported Unknown.
const maxEnumBytes = 2

// termCtx memoizes per-analysis term evaluations over the whole secret
// domain. One context serves one Verify call; sharing the vectors across
// terms makes exhaustive uniformity checks linear in DAG size.
type termCtx struct {
	nbytes int
	size   int
	memo   map[*Term][]uint64
}

func newTermCtx(secretBytes int) *termCtx {
	size := 1
	for i := 0; i < secretBytes; i++ {
		size <<= 8
	}
	return &termCtx{nbytes: secretBytes, size: size, memo: map[*Term][]uint64{}}
}

// vals returns the term's value at every point of the secret domain.
func (c *termCtx) vals(t *Term) []uint64 {
	if t.kind == kConst {
		v := make([]uint64, c.size)
		for i := range v {
			v[i] = t.val
		}
		return v
	}
	if v, ok := c.memo[t]; ok {
		return v
	}
	v := make([]uint64, c.size)
	switch t.kind {
	case kSecret:
		byteIdx := int(t.val)
		for i := range v {
			v[i] = uint64(byte(i >> (8 * byteIdx)))
		}
	case kVec:
		copy(v, t.vec)
	case kOp:
		av := c.vals(t.a)
		if t.b != nil {
			bv := c.vals(t.b)
			for i := range v {
				v[i] = emu.ALU(t.op, av[i], bv[i], t.imm)
			}
		} else {
			for i := range v {
				v[i] = emu.ALU(t.op, av[i], 0, t.imm)
			}
		}
	}
	c.memo[t] = v
	return v
}

// vecTerm wraps a per-secret value table as a term, folding when uniform.
func (c *termCtx) vecTerm(vals []uint64) *Term {
	uniform := true
	for _, v := range vals[1:] {
		if v != vals[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return Const(vals[0])
	}
	var vb uint64
	for _, v := range vals {
		vb |= v ^ vals[0]
	}
	vec := make([]uint64, len(vals))
	copy(vec, vals)
	return &Term{kind: kVec, vec: vec, base: vals[0], varbits: vb}
}

// uniform reports whether the term takes one value across the whole
// secret domain, and returns that value when it does. varbits answers the
// common case without enumeration; exhaustive evaluation decides the rest.
func (c *termCtx) uniform(t *Term) (uint64, bool) {
	if t.varbits == 0 {
		return t.base, true
	}
	vals := c.vals(t)
	for _, v := range vals[1:] {
		if v != vals[0] {
			return 0, false
		}
	}
	return vals[0], true
}

// witnessPair finds two secret assignments on which the term differs,
// scanning in canonical domain order so witnesses are deterministic.
func (c *termCtx) witnessPair(t *Term) (a, b []byte, ok bool) {
	vals := c.vals(t)
	for i, v := range vals[1:] {
		if v != vals[0] {
			return domainSecret(0, c.nbytes), domainSecret(i+1, c.nbytes), true
		}
	}
	return nil, nil, false
}
