package symx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spt/internal/emu"
	"spt/internal/isa"
)

// regRegALU is every register-register operation emu.ALU defines.
var regRegALU = []isa.Op{
	isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SRA,
	isa.MUL, isa.DIV, isa.REM, isa.SLT, isa.SLTU, isa.MIN, isa.MAX,
	isa.MINU, isa.MAXU, isa.ADDW, isa.SUBW, isa.ROLW, isa.RORW,
}

// regImmALU is every register-immediate operation emu.ALU defines.
var regImmALU = []isa.Op{
	isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI, isa.SRAI, isa.SLTI,
}

// TestOpcodeTransferConcrete pins that constructing a term from concrete
// operands folds to exactly emu.ALU's answer, for every ALU opcode, on
// random states. The term engine and the emulator share emu.ALU by
// construction; the test guards the constructors' folding paths.
func TestOpcodeTransferConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	interesting := []uint64{0, 1, 63, 64, ^uint64(0), 1 << 63, 0x8000000080000000}
	sample := func() uint64 {
		if rng.Intn(3) == 0 {
			return interesting[rng.Intn(len(interesting))]
		}
		return rng.Uint64()
	}
	for _, op := range regRegALU {
		for i := 0; i < 500; i++ {
			a, b := sample(), sample()
			got := Op2(op, Const(a), Const(b))
			v, ok := got.ConstVal()
			if !ok {
				t.Fatalf("%v(const, const) did not fold: %v", op, got)
			}
			if want := emu.ALU(op, a, b, 0); v != want {
				t.Fatalf("%v(%#x, %#x) = %#x, emu says %#x", op, a, b, v, want)
			}
		}
	}
	for _, op := range regImmALU {
		for i := 0; i < 500; i++ {
			a, imm := sample(), int64(sample())
			got := OpImm(op, Const(a), imm)
			v, ok := got.ConstVal()
			if !ok {
				t.Fatalf("%v(const, %d) did not fold: %v", op, imm, got)
			}
			if want := emu.ALU(op, a, 0, imm); v != want {
				t.Fatalf("%v(%#x, imm %d) = %#x, emu says %#x", op, a, imm, v, want)
			}
		}
	}
}

// randTerm builds a random term DAG over secret byte 0, depth-bounded.
func randTerm(rng *rand.Rand, depth int) *Term {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return SecretByte(0)
		case 1:
			return Const(rng.Uint64())
		default:
			return Const(uint64(rng.Intn(256)))
		}
	}
	if rng.Intn(3) == 0 {
		op := regImmALU[rng.Intn(len(regImmALU))]
		imm := int64(rng.Intn(1 << 16))
		if rng.Intn(2) == 0 {
			imm = int64(rng.Uint64())
		}
		return OpImm(op, randTerm(rng, depth-1), imm)
	}
	op := regRegALU[rng.Intn(len(regRegALU))]
	return Op2(op, randTerm(rng, depth-1), randTerm(rng, depth-1))
}

// TestOpcodeTransferSymbolic checks, exhaustively over the byte-secret
// domain, that every random symbolic term evaluates to the same value the
// emulator computes on the concrete inputs — i.e. folding and varbits
// never change a term's meaning.
func TestOpcodeTransferSymbolic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		a := randTerm(rng, 4)
		for _, op := range regRegALU {
			b := randTerm(rng, 2)
			got := Op2(op, a, b)
			for s := 0; s < 256; s++ {
				secret := []byte{byte(s)}
				want := emu.ALU(op, a.Eval(secret), b.Eval(secret), 0)
				if v := got.Eval(secret); v != want {
					t.Fatalf("%v: secret %#x: got %#x want %#x (term %v)", op, s, v, want, got)
				}
			}
		}
		for _, op := range regImmALU {
			imm := int64(rng.Uint64())
			got := OpImm(op, a, imm)
			for s := 0; s < 256; s++ {
				secret := []byte{byte(s)}
				want := emu.ALU(op, a.Eval(secret), 0, imm)
				if v := got.Eval(secret); v != want {
					t.Fatalf("%v imm %d: secret %#x: got %#x want %#x", op, imm, s, v, want)
				}
			}
		}
	}
}

// TestVarbitsSound pins the varbits contract on random term DAGs: a bit
// outside varbits never differs from the base value on any secret.
func TestVarbitsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		tm := randTerm(rng, 6)
		for s := 0; s < 256; s++ {
			v := tm.Eval([]byte{byte(s)})
			if diff := (v ^ tm.base) &^ tm.varbits; diff != 0 {
				t.Fatalf("trial %d: secret %#x: bits %#x vary outside varbits %#x (term %v)",
					trial, s, diff, tm.varbits, tm)
			}
		}
	}
}

// TestUniformAndWitness checks ctx.uniform and witnessPair against brute
// force on random terms.
func TestUniformAndWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ctx := newTermCtx(1)
	for trial := 0; trial < 500; trial++ {
		tm := randTerm(rng, 5)
		first := tm.Eval([]byte{0})
		bruteUniform := true
		for s := 1; s < 256; s++ {
			if tm.Eval([]byte{byte(s)}) != first {
				bruteUniform = false
				break
			}
		}
		v, ok := ctx.uniform(tm)
		if ok != bruteUniform {
			t.Fatalf("trial %d: uniform=%v, brute force says %v (term %v)", trial, ok, bruteUniform, tm)
		}
		if ok && v != first {
			t.Fatalf("trial %d: uniform value %#x, brute force says %#x", trial, v, first)
		}
		wa, wb, wok := ctx.witnessPair(tm)
		if wok == bruteUniform {
			t.Fatalf("trial %d: witnessPair ok=%v on uniform=%v term", trial, wok, bruteUniform)
		}
		if wok && tm.Eval(wa) == tm.Eval(wb) {
			t.Fatalf("trial %d: witness pair %#x/%#x does not distinguish the term", trial, wa, wb)
		}
	}
}

// TestVecTermFolds checks that a uniform value table folds to a constant
// and a varying one round-trips through Eval.
func TestVecTermFolds(t *testing.T) {
	ctx := newTermCtx(1)
	same := make([]uint64, 256)
	for i := range same {
		same[i] = 0xABCD
	}
	if v, ok := ctx.vecTerm(same).ConstVal(); !ok || v != 0xABCD {
		t.Fatalf("uniform vec did not fold to its value: %v %v", v, ok)
	}
	vary := make([]uint64, 256)
	for i := range vary {
		vary[i] = uint64(i) * 3
	}
	vt := ctx.vecTerm(vary)
	if vt.IsConst() {
		t.Fatal("varying vec folded to a constant")
	}
	for s := 0; s < 256; s++ {
		if got := vt.Eval([]byte{byte(s)}); got != uint64(s)*3 {
			t.Fatalf("vec eval at %d: got %d want %d", s, got, s*3)
		}
	}
}

// TestDomainRoundTrip pins the canonical enumeration order both ways.
func TestDomainRoundTrip(t *testing.T) {
	f := func(idx uint16) bool {
		s := domainSecret(int(idx), 2)
		return domainIndex(s) == int(idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if domainIndex([]byte{0x34, 0x12}) != 0x1234 {
		t.Fatal("domainIndex is not little-endian")
	}
}

// TestTwoByteSecretVals checks per-byte extraction over a 2-byte domain.
func TestTwoByteSecretVals(t *testing.T) {
	ctx := newTermCtx(2)
	sum := Op2(isa.ADD, SecretByte(0), OpImm(isa.SHLI, SecretByte(1), 8))
	vals := ctx.vals(sum)
	for i := 0; i < ctx.size; i += 257 {
		if vals[i] != uint64(i) {
			t.Fatalf("2-byte reassembly at %d: got %d", i, vals[i])
		}
	}
	if _, ok := ctx.uniform(sum); ok {
		t.Fatal("secret sum reported uniform")
	}
}
