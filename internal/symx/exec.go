package symx

import (
	"fmt"

	"spt/internal/emu"
	"spt/internal/isa"
)

// SecretSpec locates the symbolic secret in the program's data image.
type SecretSpec struct {
	// Addr is the byte address of the secret's first byte.
	Addr uint64
	// Size is the secret's width in bytes. Widths up to maxEnumBytes are
	// decided exactly (the enumeration fallback covers the whole domain);
	// wider secrets are only decided when the bit-level analysis proves
	// independence, and report Unknown otherwise.
	Size int
}

// Config parameterizes verification.
type Config struct {
	// Secret locates the symbolic secret bytes.
	Secret SecretSpec
	// SquashDepth bounds how many instructions a transient episode
	// executes before the squash; it plays the role of the ROB capacity.
	// Default 192, the pipeline's default ROB size.
	SquashDepth int
	// MaxSteps bounds the architectural run (default 1<<16, matching the
	// differential oracle's non-termination bound).
	MaxSteps int
	// MaxWork bounds total executed instructions across the architectural
	// run, every transient episode, and every enumeration replay; it is
	// the defense against adversarial inputs. Default 1<<22.
	MaxWork int64
	// MispredictTaken additionally explores the taken path of
	// architecturally not-taken branches (an adversarially pre-trained
	// predictor). The default false models the pipeline's cold static
	// not-taken prediction, which is what the differential oracle
	// exercises; enabling it strengthens the verdict but can report leaks
	// a cold-predictor concrete replay cannot reproduce.
	MispredictTaken bool
}

func (c Config) withDefaults() Config {
	if c.Secret.Size == 0 {
		c.Secret.Size = 1
	}
	if c.SquashDepth == 0 {
		c.SquashDepth = 192
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 1 << 16
	}
	if c.MaxWork == 0 {
		c.MaxWork = 1 << 22
	}
	return c
}

// protClass is the abstract protection a scheme provides inside a
// transient episode. The abstraction is relational, not cycle-accurate:
// it models which squashed-path observations can become attacker-visible,
// which is the only thing a noninterference verdict depends on.
type protClass uint8

const (
	// protNone: every transient observation is attacker-visible (the
	// unsafe baseline, and memory speculation under the Spectre model,
	// which that threat model does not cover).
	protNone protClass = iota
	// protTaint: STT's rule. Data returned by loads issued inside the
	// episode is tainted; a transmitter (load/store address operand,
	// branch condition, jump target) reading tainted data is delayed past
	// the squash and never observed. Data that was architecturally live
	// before the episode is untainted — exactly the paper's §3 gap.
	protTaint
	// protDelayAll: the SPT family. SPT taints all data until it has been
	// non-speculatively leaked; a squashed path can only transmit values
	// the architectural trace already revealed, so no squashed-path
	// observation can add secret-dependent information. The untaint
	// optimizations (fwd/bwd/shadow) trade performance, not leakage, so
	// secure, spt-fwd, spt-bwd, spt, spt-shadowmem and spt-ideal share
	// this class. Modeled as: transient episodes observe nothing.
	protDelayAll
)

// policy is the per-episode-kind protection for one (scheme, model) cell.
type policy struct {
	ctl protClass // episodes opened by control-flow misprediction
	mem protClass // episodes opened by memory speculation (store bypass)
}

// policyFor maps a (scheme, model) cell to its abstract protection. The
// scheme set mirrors internal/fuzz.SchemeNames.
func policyFor(scheme, model string) (policy, error) {
	var base protClass
	switch scheme {
	case "unsafe":
		base = protNone
	case "stt":
		base = protTaint
	case "secure", "spt-fwd", "spt-bwd", "spt", "spt-shadowmem", "spt-ideal":
		base = protDelayAll
	default:
		return policy{}, fmt.Errorf("symx: unknown scheme %q", scheme)
	}
	p := policy{ctl: base, mem: base}
	switch model {
	case "futuristic":
	case "spectre":
		// Memory speculation is outside the Spectre threat model: no
		// scheme defends the store-bypass window there.
		p.mem = protNone
	default:
		return policy{}, fmt.Errorf("symx: unknown attack model %q", model)
	}
	return p, nil
}

// episodeKind distinguishes what opened a transient episode, which
// determines whether control flow inside it can ever resolve: branch
// resolution is strictly in program order, so nothing younger than an
// unresolved mispredicted branch (ctlEpisode) redirects fetch, whereas in
// a store-bypass window (memEpisode) the bypassing control flow is the
// oldest unresolved instruction and resolves normally.
type episodeKind uint8

const (
	ctlEpisode episodeKind = iota
	memEpisode
)

// Event is one entry of the speculative observation trace: the address of
// a load line access ('L', line-masked), a store address translation
// ('T', page-masked), a retirement cache write ('W', line-masked) — the
// same kinds and masks the pipeline's observer emits — plus 'B', a
// resolved-mispredict fetch redirect inside a memory-speculation episode
// (observable in the pipeline as the squash-and-replay of younger
// accesses). Addr is a term over the secret; the relational check is that
// every event's value, and the trace's shape, is secret-independent.
type Event struct {
	Kind byte
	Addr *Term
	// Spec marks events emitted inside a transient episode.
	Spec bool
	// PC is the static program counter of the emitting instruction.
	PC uint64
}

const (
	lineMask = ^int64(63)
	pageMask = ^int64(0xFFF)
)

// cEvent is a concrete trace entry (enumeration and witness replays).
type cEvent struct {
	Kind byte
	Addr uint64
}

func (e cEvent) String() string { return fmt.Sprintf("%c@%#x", e.Kind, e.Addr) }

// ErrArchLeak reports a contract violation: the program's architectural
// execution itself depends on the secret (a secret-dependent branch,
// address, or stored value), so it is outside the constant-time-victim
// contract and a trace divergence would not be a speculation leak. The
// differential oracle rejects such programs the same way (its
// arch-sameness precheck).
type ErrArchLeak struct {
	What    string
	PC      uint64
	SecretA []byte
	SecretB []byte
}

func (e ErrArchLeak) Error() string {
	return fmt.Sprintf("symx: architectural %s at pc %d depends on the secret (witness %#x vs %#x)",
		e.What, e.PC, e.SecretA, e.SecretB)
}

// errNonUniform aborts the symbolic pass when an execution decision (a
// transient branch direction, jump target, or store address) depends on
// the secret: the paths diverge per secret value, so one symbolic trace
// cannot represent them and verification falls back to exhaustive
// concrete enumeration of the secret domain.
type errNonUniform struct {
	what string
	pc   uint64
}

func (e errNonUniform) Error() string {
	return fmt.Sprintf("symx: %s at pc %d is secret-dependent; falling back to enumeration", e.what, e.pc)
}

// errBudget reports work-bound exhaustion (adversarial input defense).
type errBudget struct{}

func (errBudget) Error() string { return "symx: work budget exhausted" }

// machine executes one program under the relational speculative
// semantics. The same code path serves the symbolic pass (secret bytes
// are kSecret leaves) and the enumeration fallback (secret bytes are
// constants, so every term folds and every decision is trivially
// uniform); the property tests pin that substituting a concrete secret
// into the symbolic run reproduces the concrete run exactly.
type machine struct {
	prog *isa.Program
	cfg  Config
	pol  policy
	// ctx is the enumeration context for narrow secrets; nil when the
	// secret is too wide to enumerate (then only varbits can decide) and
	// in concrete replays (where every term folds).
	ctx    *termCtx
	budget *int64

	regs   [isa.NumRegs]*Term
	mem    map[uint64]*Term
	ras    []uint64
	trace  []Event
	digest uint64 // FNV-1a over the architectural execution, as in fuzz.archDigest
}

var zeroTerm = Const(0)

// newMachine loads the program image. secret == nil runs symbolically;
// otherwise the given concrete secret bytes are patched in.
func newMachine(prog *isa.Program, pol policy, cfg Config, ctx *termCtx, budget *int64, secret []byte) *machine {
	m := &machine{prog: prog, pol: pol, cfg: cfg, ctx: ctx, budget: budget,
		mem: make(map[uint64]*Term, 4096), digest: 14695981039346656037}
	for i := range m.regs {
		m.regs[i] = zeroTerm
	}
	for _, seg := range prog.Data {
		for i, b := range seg.Bytes {
			m.mem[seg.Addr+uint64(i)] = Const(uint64(b))
		}
	}
	for i := 0; i < cfg.Secret.Size; i++ {
		a := cfg.Secret.Addr + uint64(i)
		if secret == nil {
			m.mem[a] = SecretByte(i)
		} else {
			m.mem[a] = Const(uint64(secret[i]))
		}
	}
	return m
}

func (m *machine) mix(v uint64) {
	m.digest ^= v
	m.digest *= 1099511628211
}

func (m *machine) spend() error {
	*m.budget--
	if *m.budget < 0 {
		return errBudget{}
	}
	return nil
}

// memByte reads one byte term, preferring an episode overlay.
func (m *machine) memByte(overlay map[uint64]*Term, a uint64) *Term {
	if overlay != nil {
		if t, ok := overlay[a]; ok {
			return t
		}
	}
	if t, ok := m.mem[a]; ok {
		return t
	}
	return zeroTerm
}

// readMem assembles a little-endian load of size bytes at a concrete
// address.
func (m *machine) readMem(overlay map[uint64]*Term, addr uint64, size int) *Term {
	if size == 1 {
		return m.memByte(overlay, addr)
	}
	acc := zeroTerm
	for i := 0; i < size; i++ {
		b := m.memByte(overlay, addr+uint64(i))
		if i > 0 {
			b = OpImm(isa.SHLI, b, int64(8*i))
		}
		acc = Op2(isa.OR, acc, b)
	}
	return acc
}

// writeMem decomposes a store into byte terms.
func (m *machine) writeMem(dst map[uint64]*Term, addr uint64, size int, v *Term) {
	for i := 0; i < size; i++ {
		b := v
		if i > 0 {
			b = OpImm(isa.SHRI, b, int64(8*i))
		}
		dst[addr+uint64(i)] = OpImm(isa.ANDI, b, 0xFF)
	}
}

// readMemVec resolves a load whose address varies with the secret: the
// per-secret addresses are each read at their own domain point, yielding
// an explicit value table (folded if it happens to be uniform, as it is
// when the whole target region holds one value — e.g. a cold probe
// array).
func (m *machine) readMemVec(overlay map[uint64]*Term, addrVals []uint64, size int) *Term {
	out := make([]uint64, len(addrVals))
	for i, a := range addrVals {
		var v uint64
		for k := 0; k < size; k++ {
			bt := m.memByte(overlay, a+uint64(k))
			var bv uint64
			if c, ok := bt.ConstVal(); ok {
				bv = c
			} else {
				bv = m.ctx.vals(bt)[i]
			}
			v |= (bv & 0xFF) << (8 * k)
		}
		out[i] = v
	}
	return m.ctx.vecTerm(out)
}

// uniform decides whether a term is secret-independent, with its value.
func (m *machine) uniform(t *Term) (uint64, bool) {
	if t.varbits == 0 {
		return t.base, true
	}
	if m.ctx == nil {
		return 0, false
	}
	return m.ctx.uniform(t)
}

// branchDir evaluates a conditional branch predicate relationally. The
// returned witness points are two secrets on which the direction differs
// (non-uniform case only).
func (m *machine) branchDir(op isa.Op, a, b *Term) (taken, uniform bool, wa, wb []byte) {
	if a.varbits == 0 && b.varbits == 0 {
		return emu.BranchTaken(op, a.base, b.base), true, nil, nil
	}
	if m.ctx == nil {
		return false, false, nil, nil
	}
	av, bv := m.ctx.vals(a), m.ctx.vals(b)
	first := emu.BranchTaken(op, av[0], bv[0])
	for i := 1; i < len(av); i++ {
		if emu.BranchTaken(op, av[i], bv[i]) != first {
			return false, false, domainSecret(0, m.ctx.nbytes), domainSecret(i, m.ctx.nbytes)
		}
	}
	return first, true, nil, nil
}

// witness produces a deterministic secret pair on which t differs,
// falling back to a generic pair when enumeration is unavailable.
func (m *machine) witness(t *Term) (a, b []byte) {
	if m.ctx != nil {
		if wa, wb, ok := m.ctx.witnessPair(t); ok {
			return wa, wb
		}
	}
	n := m.cfg.Secret.Size
	wa, wb := make([]byte, n), make([]byte, n)
	for i := range wb {
		wb[i] = 0xFF
	}
	return wa, wb
}

func (m *machine) emit(kind byte, addr *Term, spec bool, pc uint64) {
	m.trace = append(m.trace, Event{Kind: kind, Addr: addr, Spec: spec, PC: pc})
}

func isImmALU(op isa.Op) bool { return op >= isa.ADDI && op <= isa.SLTI }

// run executes the program architecturally, opening a transient episode
// at every speculation point, until HALT, an error, or the step bound.
func (m *machine) run() error {
	code := m.prog.Code
	m.mix(uint64(len(code)))
	pc := m.prog.Entry
	for steps := 0; ; steps++ {
		if steps >= m.cfg.MaxSteps {
			return fmt.Errorf("symx: %s did not terminate in %d steps", m.prog.Name, m.cfg.MaxSteps)
		}
		if err := m.spend(); err != nil {
			return err
		}
		if pc >= uint64(len(code)) {
			return emu.ErrPCOutOfRange{PC: pc}
		}
		ins := code[pc]
		m.mix(pc)
		next := pc + 1

		switch {
		case ins.Op == isa.HALT:
			return nil

		case ins.Op == isa.NOP:

		case ins.Op == isa.MOVI:
			m.setReg(ins.Rd, Const(uint64(ins.Imm)))

		case ins.Op == isa.MOV:
			m.setReg(ins.Rd, m.reg(ins.Rs1))

		case ins.IsLoad():
			addrT := OpImm(isa.ADDI, m.reg(ins.Rs1), ins.Imm)
			addr, ok := m.uniform(addrT)
			if !ok {
				wa, wb := m.witness(addrT)
				return ErrArchLeak{What: "load address", PC: pc, SecretA: wa, SecretB: wb}
			}
			m.mix(addr)
			m.emit('L', OpImm(isa.ANDI, addrT, lineMask), false, pc)
			m.setReg(ins.Rd, m.readMem(nil, addr, ins.MemSize()))

		case ins.IsStore():
			addrT := OpImm(isa.ADDI, m.reg(ins.Rs1), ins.Imm)
			addr, ok := m.uniform(addrT)
			if !ok {
				wa, wb := m.witness(addrT)
				return ErrArchLeak{What: "store address", PC: pc, SecretA: wa, SecretB: wb}
			}
			valT := m.reg(ins.Rs2)
			val, ok := m.uniform(valT)
			if !ok {
				wa, wb := m.witness(valT)
				return ErrArchLeak{What: "stored value", PC: pc, SecretA: wa, SecretB: wb}
			}
			m.mix(addr)
			m.mix(val)
			// Memory speculation: younger instructions issue before the
			// store commits, observing pre-store memory, then squash and
			// replay. The episode runs first (its events precede the
			// store's own translation in the pipeline) on pre-store state.
			if err := m.episode(next, memEpisode, m.pol.mem); err != nil {
				return err
			}
			m.emit('T', OpImm(isa.ANDI, addrT, pageMask), false, pc)
			m.emit('W', OpImm(isa.ANDI, addrT, lineMask), false, pc)
			m.writeMem(m.mem, addr, ins.MemSize(), valT)

		case ins.IsCondBranch():
			taken, ok, wa, wb := m.branchDir(ins.Op, m.reg(ins.Rs1), m.reg(ins.Rs2))
			if !ok {
				if wa == nil {
					wa, wb = m.witness(Op2(isa.XOR, m.reg(ins.Rs1), m.reg(ins.Rs2)))
				}
				return ErrArchLeak{What: "branch direction", PC: pc, SecretA: wa, SecretB: wb}
			}
			if taken {
				m.mix(1)
				// Cold static prediction is not-taken: the fall-through
				// path runs transiently.
				if err := m.episode(pc+1, ctlEpisode, m.pol.ctl); err != nil {
					return err
				}
				next = pc + uint64(ins.Imm)
			} else {
				m.mix(2)
				if m.cfg.MispredictTaken {
					// Adversarially trained predictor: explore the taken
					// path even though the architectural run falls through.
					if err := m.episode(pc+uint64(ins.Imm), ctlEpisode, m.pol.ctl); err != nil {
						return err
					}
				}
			}

		case ins.Op == isa.JAL:
			if ins.IsCall() {
				m.ras = append(m.ras, pc+1)
			}
			m.setReg(ins.Rd, Const(pc+1))
			next = pc + uint64(ins.Imm)

		case ins.Op == isa.JALR:
			targetT := OpImm(isa.ADDI, m.reg(ins.Rs1), ins.Imm)
			target, ok := m.uniform(targetT)
			if !ok {
				wa, wb := m.witness(targetT)
				return ErrArchLeak{What: "jump target", PC: pc, SecretA: wa, SecretB: wb}
			}
			m.mix(target)
			predicted := pc + 1
			if ins.IsReturn() && len(m.ras) > 0 {
				predicted = m.ras[len(m.ras)-1]
				m.ras = m.ras[:len(m.ras)-1]
			}
			if ins.IsCall() {
				m.ras = append(m.ras, pc+1)
			}
			m.setReg(ins.Rd, Const(pc+1))
			if predicted != target {
				// The return-address stack (returns) or fall-through
				// fetch (BTB-cold indirect jumps) predicts the wrong
				// target: the predicted path runs transiently.
				if err := m.episode(predicted, ctlEpisode, m.pol.ctl); err != nil {
					return err
				}
			}
			next = target

		case isImmALU(ins.Op):
			m.setReg(ins.Rd, OpImm(ins.Op, m.reg(ins.Rs1), ins.Imm))

		default:
			m.setReg(ins.Rd, Op2(ins.Op, m.reg(ins.Rs1), m.reg(ins.Rs2)))
		}
		pc = next
	}
}

func (m *machine) reg(r isa.Reg) *Term {
	if r == isa.Zero {
		return zeroTerm
	}
	return m.regs[r]
}

func (m *machine) setReg(r isa.Reg, t *Term) {
	if r != isa.Zero {
		m.regs[r] = t
	}
}

// episode executes a transient path from start until the squash depth, a
// halt, or a fetch fault, emitting the observations the protection class
// lets through. Architectural state is untouched: registers are copied
// and memory writes go to an overlay. Speculation does not nest — an
// episode models the oldest unresolved prediction, whose squash discards
// everything younger, so nested windows cannot outlive it.
func (m *machine) episode(start uint64, kind episodeKind, prot protClass) error {
	if prot == protDelayAll {
		// Every transmitter waits for its operands to be untainted, which
		// for data never non-speculatively leaked means: past the squash.
		// The squashed path observes nothing.
		return nil
	}
	code := m.prog.Code
	regs := m.regs
	ras := append([]uint64(nil), m.ras...)
	overlay := map[uint64]*Term{}
	// taint marks registers whose value was produced by a load issued
	// inside this episode (STT's speculative taint); poison marks
	// registers whose producing load was itself delayed, so the value
	// never arrives and dependents cannot execute at all.
	var taint, poison [isa.NumRegs]bool

	tainted := func(rs ...isa.Reg) bool {
		for _, r := range rs {
			if taint[r] {
				return true
			}
		}
		return false
	}
	poisoned := func(rs ...isa.Reg) bool {
		for _, r := range rs {
			if poison[r] {
				return true
			}
		}
		return false
	}
	set := func(r isa.Reg, t *Term, tnt, psn bool) {
		if r != isa.Zero {
			regs[r] = t
			taint[r] = tnt
			poison[r] = psn
		}
	}
	get := func(r isa.Reg) *Term {
		if r == isa.Zero {
			return zeroTerm
		}
		return regs[r]
	}
	// resolves combines the in-order-resolution rule (nothing younger
	// than a ctlEpisode opener redirects fetch) with the scheme's delay
	// of the decision's operands.
	resolves := func(srcs ...isa.Reg) bool {
		if kind == ctlEpisode {
			return false
		}
		return !(poisoned(srcs...) || (prot == protTaint && tainted(srcs...)))
	}

	pc := start
	for depth := 0; depth < m.cfg.SquashDepth; depth++ {
		if pc >= uint64(len(code)) {
			return nil // transient fetch fault: the window just squashes
		}
		if err := m.spend(); err != nil {
			return err
		}
		ins := code[pc]
		next := pc + 1

		switch {
		case ins.Op == isa.HALT:
			return nil

		case ins.Op == isa.NOP:

		case ins.Op == isa.MOVI:
			set(ins.Rd, Const(uint64(ins.Imm)), false, false)

		case ins.Op == isa.MOV:
			set(ins.Rd, get(ins.Rs1), taint[ins.Rs1], poison[ins.Rs1])

		case ins.IsLoad():
			if poisoned(ins.Rs1) || (prot == protTaint && tainted(ins.Rs1)) {
				// The address operand never becomes ready (poison) or the
				// scheme delays the access past the squash (taint): the
				// load neither executes nor observes, and its dependents
				// never wake up.
				set(ins.Rd, zeroTerm, true, true)
				break
			}
			addrT := OpImm(isa.ADDI, get(ins.Rs1), ins.Imm)
			m.emit('L', OpImm(isa.ANDI, addrT, lineMask), true, pc)
			var val *Term
			if addr, ok := m.uniform(addrT); ok {
				val = m.readMem(overlay, addr, ins.MemSize())
			} else {
				if m.ctx == nil {
					return errNonUniform{what: "transient load address", pc: pc}
				}
				val = m.readMemVec(overlay, m.ctx.vals(addrT), ins.MemSize())
			}
			set(ins.Rd, val, true, false)

		case ins.IsStore():
			if poisoned(ins.Rs1) || (prot == protTaint && tainted(ins.Rs1)) {
				break // the translation (the observable event) is delayed past squash
			}
			addrT := OpImm(isa.ADDI, get(ins.Rs1), ins.Imm)
			m.emit('T', OpImm(isa.ANDI, addrT, pageMask), true, pc)
			// No 'W': the retirement write never happens on a squashed path.
			addr, ok := m.uniform(addrT)
			if !ok {
				return errNonUniform{what: "transient store address", pc: pc}
			}
			if !poisoned(ins.Rs2) {
				m.writeMem(overlay, addr, ins.MemSize(), get(ins.Rs2))
			}

		case ins.IsCondBranch():
			if !resolves(ins.Rs1, ins.Rs2) {
				// The branch cannot resolve inside the window (it is
				// younger than the unresolved opener, or its condition is
				// delayed): fetch keeps following the static not-taken
				// prediction.
				break
			}
			taken, ok, _, _ := m.branchDir(ins.Op, get(ins.Rs1), get(ins.Rs2))
			if !ok {
				return errNonUniform{what: "transient branch direction", pc: pc}
			}
			if taken {
				// Direction mispredict inside the window: the resolve
				// squashes and refetches, which the receiver observes as
				// the replay of younger accesses.
				m.emit('B', Const(pc+uint64(ins.Imm)), true, pc)
				next = pc + uint64(ins.Imm)
			}

		case ins.Op == isa.JAL:
			if ins.IsCall() {
				ras = append(ras, pc+1)
			}
			set(ins.Rd, Const(pc+1), false, false)
			next = pc + uint64(ins.Imm)

		case ins.Op == isa.JALR:
			predicted := pc + 1
			if ins.IsReturn() && len(ras) > 0 {
				predicted = ras[len(ras)-1]
				ras = ras[:len(ras)-1]
			}
			if ins.IsCall() {
				ras = append(ras, pc+1)
			}
			if !resolves(ins.Rs1) {
				set(ins.Rd, Const(pc+1), false, false)
				next = predicted
				break
			}
			targetT := OpImm(isa.ADDI, get(ins.Rs1), ins.Imm)
			target, ok := m.uniform(targetT)
			if !ok {
				return errNonUniform{what: "transient jump target", pc: pc}
			}
			set(ins.Rd, Const(pc+1), false, false)
			if target != predicted {
				m.emit('B', Const(target), true, pc)
			}
			next = target

		case isImmALU(ins.Op):
			set(ins.Rd, OpImm(ins.Op, get(ins.Rs1), ins.Imm), taint[ins.Rs1], poison[ins.Rs1])

		default:
			set(ins.Rd, Op2(ins.Op, get(ins.Rs1), get(ins.Rs2)),
				taint[ins.Rs1] || taint[ins.Rs2], poison[ins.Rs1] || poison[ins.Rs2])
		}
		pc = next
	}
	return nil
}
