package symx

import (
	"fmt"

	"spt/internal/isa"
)

// Verdict is the outcome of a verification run.
type Verdict uint8

const (
	// VerdictUnknown means neither security nor a leak could be
	// established; Result.Reason says why.
	VerdictUnknown Verdict = iota
	// VerdictSecure means no pair of secret values can diverge the
	// speculative observation trace (exact for secrets up to maxEnumBytes
	// wide, conservative beyond).
	VerdictSecure
	// VerdictLeak means a concrete secret pair diverges the trace;
	// Result.Witness carries the pair, already confirmed by concrete
	// replay inside symx and replayable by the differential fuzz oracle.
	VerdictLeak
)

func (v Verdict) String() string {
	switch v {
	case VerdictSecure:
		return "secure"
	case VerdictLeak:
		return "leak"
	}
	return "unknown"
}

// Witness is a concrete secret pair exhibiting a leak.
type Witness struct {
	// SecretA and SecretB are the two secret values (little-endian bytes,
	// Config.Secret.Size wide) whose observation traces diverge.
	SecretA, SecretB []byte
	// Divergence describes the first differing trace event.
	Divergence string
}

// Result is the answer of one Verify call.
type Result struct {
	Verdict Verdict
	// Method is "symbolic" when the relational pass decided the verdict
	// on one trace, "enumeration" when it fell back to exhaustive
	// concrete evaluation of the secret domain.
	Method string
	// Reason explains a VerdictUnknown.
	Reason string
	// Witness is set iff Verdict == VerdictLeak.
	Witness *Witness
	// Events is the speculative observation trace length that was checked.
	Events int
}

// Verify checks speculative noninterference of prog under the named
// protection scheme and attack model: whether the speculative observation
// trace (load/store addresses and transient fetch redirects, at the
// pipeline observer's granularity) is independent of the secret bytes
// located by cfg.Secret, for all secret values.
//
// Scheme and model names mirror internal/fuzz (unsafe, stt, secure,
// spt-fwd, spt-bwd, spt, spt-shadowmem, spt-ideal × futuristic, spectre).
// Errors are reserved for programs outside the oracle's contract
// (validation failures, non-termination, architectural secret
// transmission — see ErrArchLeak); an in-contract program always gets a
// Result, possibly VerdictUnknown with a reason.
func Verify(prog *isa.Program, scheme, model string, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	pol, err := policyFor(scheme, model)
	if err != nil {
		return Result{}, err
	}
	if err := prog.Validate(); err != nil {
		return Result{}, err
	}
	budget := cfg.MaxWork
	var ctx *termCtx
	if cfg.Secret.Size <= maxEnumBytes {
		ctx = newTermCtx(cfg.Secret.Size)
	}

	m := newMachine(prog, pol, cfg, ctx, &budget, nil)
	switch err := m.run(); err.(type) {
	case nil:
		return classify(m, prog, pol, cfg, ctx, &budget)
	case errNonUniform:
		if ctx == nil {
			return Result{Verdict: VerdictUnknown, Method: "symbolic",
				Reason: fmt.Sprintf("%v and the %d-byte secret domain is too wide to enumerate", err, cfg.Secret.Size)}, nil
		}
		return enumerate(prog, pol, cfg, &budget)
	case errBudget:
		return Result{Verdict: VerdictUnknown, Method: "symbolic", Reason: err.Error()}, nil
	default:
		return Result{}, err
	}
}

// ObservationEvents exposes one raw speculative observation trace: the
// symbolic one when secret is nil, a concrete replay otherwise. It is the
// hook the property tests use to pin that substituting a concrete secret
// into the symbolic trace reproduces the concrete run event for event,
// and a debugging aid for the CLI. Symbolic runs return errNonUniform's
// message as an error when a transient decision depends on the secret.
func ObservationEvents(prog *isa.Program, scheme, model string, cfg Config, secret []byte) ([]Event, error) {
	cfg = cfg.withDefaults()
	pol, err := policyFor(scheme, model)
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	budget := cfg.MaxWork
	var ctx *termCtx
	if secret == nil && cfg.Secret.Size <= maxEnumBytes {
		ctx = newTermCtx(cfg.Secret.Size)
	}
	m := newMachine(prog, pol, cfg, ctx, &budget, secret)
	if err := m.run(); err != nil {
		return nil, err
	}
	return m.trace, nil
}

// classify scans a completed symbolic trace: every event value uniform
// across the secret domain proves security; the first non-uniform event
// is a leak, whose witness pair is confirmed by concrete replay.
func classify(m *machine, prog *isa.Program, pol policy, cfg Config, ctx *termCtx, budget *int64) (Result, error) {
	for i, ev := range m.trace {
		if _, ok := m.uniform(ev.Addr); ok {
			continue
		}
		if ctx == nil {
			return Result{Verdict: VerdictUnknown, Method: "symbolic",
				Reason: fmt.Sprintf("event %d (%c at pc %d) may depend on the secret, and the %d-byte secret domain is too wide to enumerate",
					i, ev.Kind, ev.PC, cfg.Secret.Size)}, nil
		}
		wa, wb, _ := ctx.witnessPair(ev.Addr)
		wit, err := confirm(prog, pol, cfg, budget, wa, wb)
		if err != nil {
			return Result{}, err
		}
		if wit == nil {
			// Defensive: the relational pass and the concrete semantics
			// disagree; never expected (the property tests pin their
			// agreement), but an honest Unknown beats a wrong Leak.
			return Result{Verdict: VerdictUnknown, Method: "symbolic",
				Reason: fmt.Sprintf("event %d is secret-dependent symbolically but concrete replay of %#x vs %#x does not diverge",
					i, wa, wb)}, nil
		}
		return Result{Verdict: VerdictLeak, Method: "symbolic", Witness: wit, Events: len(m.trace)}, nil
	}
	return Result{Verdict: VerdictSecure, Method: "symbolic", Events: len(m.trace)}, nil
}

// concreteTrace replays prog with a concrete secret and returns the
// observation trace and the architectural digest.
func concreteTrace(prog *isa.Program, pol policy, cfg Config, budget *int64, secret []byte) ([]cEvent, uint64, error) {
	m := newMachine(prog, pol, cfg, nil, budget, secret)
	if err := m.run(); err != nil {
		return nil, 0, err
	}
	out := make([]cEvent, len(m.trace))
	for i, ev := range m.trace {
		out[i] = cEvent{Kind: ev.Kind, Addr: ev.Addr.Eval(secret)}
	}
	return out, m.digest, nil
}

// confirm replays a candidate witness pair concretely; nil means the
// traces did not diverge.
func confirm(prog *isa.Program, pol policy, cfg Config, budget *int64, sa, sb []byte) (*Witness, error) {
	ta, _, err := concreteTrace(prog, pol, cfg, budget, sa)
	if err != nil {
		return nil, fmt.Errorf("symx: witness replay secret=%#x: %w", sa, err)
	}
	tb, _, err := concreteTrace(prog, pol, cfg, budget, sb)
	if err != nil {
		return nil, fmt.Errorf("symx: witness replay secret=%#x: %w", sb, err)
	}
	d := diffTraces(ta, tb)
	if d == "" {
		return nil, nil
	}
	return &Witness{SecretA: sa, SecretB: sb, Divergence: d}, nil
}

// diffTraces pinpoints the first differing event ("" when identical).
func diffTraces(a, b []cEvent) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("event %d: %s vs %s (lengths %d/%d)", i, a[i], b[i], len(a), len(b))
		}
	}
	if len(a) != len(b) {
		ev := func(t []cEvent) string {
			if n < len(t) {
				return t[n].String()
			}
			return "<end>"
		}
		return fmt.Sprintf("event %d: %s vs %s (lengths %d/%d)", n, ev(a), ev(b), len(a), len(b))
	}
	return ""
}

// enumerate decides the verdict by exhaustive concrete execution over the
// whole secret domain: exact, and immune to the path-explosion case that
// aborted the symbolic pass (a transient decision that itself depends on
// the secret).
func enumerate(prog *isa.Program, pol policy, cfg Config, budget *int64) (Result, error) {
	size := 1 << (8 * cfg.Secret.Size)
	traces := make([][]cEvent, size)
	digests := make([]uint64, size)
	for i := 0; i < size; i++ {
		s := domainSecret(i, cfg.Secret.Size)
		tr, dg, err := concreteTrace(prog, pol, cfg, budget, s)
		if err != nil {
			if _, ok := err.(errBudget); ok {
				return Result{Verdict: VerdictUnknown, Method: "enumeration", Reason: err.Error()}, nil
			}
			return Result{}, fmt.Errorf("symx: %s secret=%#x: %w", prog.Name, s, err)
		}
		traces[i] = tr
		digests[i] = dg
	}
	for i := 1; i < size; i++ {
		if digests[i] != digests[0] {
			return Result{}, ErrArchLeak{What: "execution",
				SecretA: domainSecret(0, cfg.Secret.Size), SecretB: domainSecret(i, cfg.Secret.Size)}
		}
	}
	for i := 1; i < size; i++ {
		if d := diffTraces(traces[0], traces[i]); d != "" {
			return Result{Verdict: VerdictLeak, Method: "enumeration",
				Witness: &Witness{SecretA: domainSecret(0, cfg.Secret.Size),
					SecretB: domainSecret(i, cfg.Secret.Size), Divergence: d},
				Events: len(traces[0])}, nil
		}
	}
	return Result{Verdict: VerdictSecure, Method: "enumeration", Events: len(traces[0])}, nil
}
