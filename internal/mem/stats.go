package mem

import "spt/internal/stats"

// RegisterStats publishes the cache's counters under prefix (e.g. "l1d").
// The registered pointers target the live counters, so the registry must not
// outlive the cache.
func (c *Cache) RegisterStats(r *stats.Registry, prefix string) {
	r.Scalar(prefix+".accesses", c.cfg.Name+" accesses", &c.stats.Accesses)
	r.Scalar(prefix+".hits", c.cfg.Name+" hits", &c.stats.Hits)
	r.Scalar(prefix+".misses", c.cfg.Name+" misses", &c.stats.Misses)
	r.Scalar(prefix+".evictions", c.cfg.Name+" lines evicted", &c.stats.Evictions)
	r.Scalar(prefix+".writebacks", c.cfg.Name+" dirty writebacks", &c.stats.Writebacks)
	r.Formula(prefix+".miss_rate", c.cfg.Name+" miss rate", func() float64 {
		if c.stats.Accesses == 0 {
			return 0
		}
		return float64(c.stats.Misses) / float64(c.stats.Accesses)
	})
}

// RegisterStats publishes the TLB's counters under prefix (e.g. "dtlb").
func (t *TLB) RegisterStats(r *stats.Registry, prefix string) {
	r.Scalar(prefix+".accesses", "TLB lookups", &t.Stats.Accesses)
	r.Scalar(prefix+".misses", "TLB misses (page walks)", &t.Stats.Misses)
}

// RegisterStats publishes the whole memory system: hierarchy-level counters,
// every cache level, and the data TLB. perKilo builds a per-kilo-instruction
// formula over a counter (the retired-instruction denominator lives in the
// core, which owns the registry).
func (h *Hierarchy) RegisterStats(r *stats.Registry, perKilo func(*uint64) func() float64) {
	r.Scalar("mem.data_accesses", "data-side hierarchy accesses", &h.Stats.DataAccesses)
	r.Scalar("mem.instr_accesses", "instruction fetch accesses", &h.Stats.InstrAccesses)
	r.Scalar("mem.dram_accesses", "accesses that reached DRAM", &h.Stats.DRAMAccesses)
	r.Scalar("mem.mshr_stalls", "accesses rejected for want of an MSHR", &h.Stats.MSHRStalls)
	r.Scalar("mem.mshr_merges", "accesses merged into an in-flight miss", &h.Stats.MSHRMerges)
	r.Scalar("mem.instr_prefetches", "next-line instruction prefetches", &h.Stats.InstrPrefetches)

	h.L1I.RegisterStats(r, "l1i")
	h.L1D.RegisterStats(r, "l1d")
	r.Formula("l1d.mpki", "L1D misses per kilo-instruction", perKilo(&h.L1D.stats.Misses))
	h.L2.RegisterStats(r, "l2")
	h.L3.RegisterStats(r, "l3")
	h.DTLB.RegisterStats(r, "dtlb")
}
