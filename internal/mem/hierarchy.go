package mem

// HierarchyConfig describes the full memory system (paper Table 1).
type HierarchyConfig struct {
	L1I, L1D, L2, L3 CacheConfig
	MSHRs            int
	// DRAMCycles is the DRAM access latency added after an L3 miss
	// (50 ns at the simulated 2 GHz clock = 100 cycles).
	DRAMCycles     uint64
	Mesh           Mesh
	CoreNode       int
	TLBEntries     int
	PageBytes      int
	PageWalkCycles uint64
}

// DefaultHierarchyConfig returns the paper's Table 1 memory system.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:            CacheConfig{Name: "L1I", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, LatencyCycles: 2},
		L1D:            CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, LatencyCycles: 2},
		L2:             CacheConfig{Name: "L2", SizeBytes: 256 << 10, Ways: 16, LineBytes: 64, LatencyCycles: 20},
		L3:             CacheConfig{Name: "L3", SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, LatencyCycles: 40},
		MSHRs:          16,
		DRAMCycles:     100,
		Mesh:           DefaultMesh(),
		CoreNode:       0,
		TLBEntries:     64,
		PageBytes:      4 << 10,
		PageWalkCycles: 50,
	}
}

// HierarchyStats aggregates memory-system counters.
type HierarchyStats struct {
	DataAccesses    uint64
	InstrAccesses   uint64
	DRAMAccesses    uint64
	MSHRStalls      uint64
	MSHRMerges      uint64
	InstrPrefetches uint64
}

// Hierarchy is the single-core memory system timing model. Latency is
// computed synchronously: an access returns the cycle at which its data is
// available. Outstanding misses occupy MSHRs until their completion cycle;
// an access that needs a new MSHR when all are busy reports a structural
// stall and must be retried.
type Hierarchy struct {
	cfg  HierarchyConfig
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	L3   *Cache
	DTLB *TLB

	// mshr tracks outstanding misses as (line address, completion cycle)
	// pairs. A flat array beats a map here: there are at most cfg.MSHRs
	// (16) entries, every data access expires and searches them, and
	// mshrMin lets the expiry scan skip entirely while no entry is due —
	// the common case during functional warming, where the pseudo-clock
	// advances one tick per instruction.
	mshr    []mshrEntry
	mshrMin uint64 // earliest completion cycle in mshr; ^0 when empty

	// Fetch-streak memo: iLine is the line address of the last
	// instruction fetch plus one (zero = invalid), iSet/iWay its resident
	// L1I slot. It is established only when both that line and the next
	// are present after a fetch, which makes the repeated same-line fetch
	// — the overwhelmingly common case, since superblocks fetch word by
	// word through 16-instruction lines — a touch plus a latency constant
	// with no tag scans or prefetch probes. Only AccessInstr and FlushAll
	// mutate the L1I, so the memo cannot go stale in between; Clone drops
	// it (struct literal), which only costs the first fetch after a
	// restore.
	iLine uint64
	iSet  int
	iWay  int

	Stats HierarchyStats
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg:     cfg,
		L1I:     NewCache(cfg.L1I),
		L1D:     NewCache(cfg.L1D),
		L2:      NewCache(cfg.L2),
		L3:      NewCache(cfg.L3),
		DTLB:    NewTLB(cfg.TLBEntries, cfg.PageBytes, cfg.PageWalkCycles),
		mshr:    make([]mshrEntry, 0, cfg.MSHRs),
		mshrMin: ^uint64(0),
	}
}

type mshrEntry struct {
	line  uint64
	ready uint64
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

func (h *Hierarchy) expireMSHRs(now uint64) {
	if now < h.mshrMin {
		return
	}
	min := ^uint64(0)
	out := h.mshr[:0]
	for _, e := range h.mshr {
		if e.ready > now {
			if e.ready < min {
				min = e.ready
			}
			out = append(out, e)
		}
	}
	h.mshr = out
	h.mshrMin = min
}

// mshrLookup returns the completion cycle of an in-flight miss to
// lineAddr, if any.
func (h *Hierarchy) mshrLookup(lineAddr uint64) (uint64, bool) {
	for i := range h.mshr {
		if h.mshr[i].line == lineAddr {
			return h.mshr[i].ready, true
		}
	}
	return 0, false
}

// AccessData performs a data access at cycle now. It returns the cycle the
// access completes and ok=false if the access could not start because all
// MSHRs are busy (the caller must retry). The TLB translation latency is
// included; protection policies must only call this once the access is
// allowed to become visible.
func (h *Hierarchy) AccessData(now uint64, addr uint64, write bool) (uint64, bool) {
	h.expireMSHRs(now)
	h.Stats.DataAccesses++

	start := now + h.DTLB.Translate(addr)
	lineAddr := h.L1D.LineAddr(addr)

	if h.L1D.Access(addr, write) {
		return start + h.cfg.L1D.LatencyCycles, true
	}
	// L1 miss: check for an in-flight miss to the same line.
	if ready, ok := h.mshrLookup(lineAddr); ok {
		h.Stats.MSHRMerges++
		done := ready
		if s := start + h.cfg.L1D.LatencyCycles; s > done {
			done = s
		}
		return done, true
	}
	if len(h.mshr) >= h.cfg.MSHRs {
		h.Stats.MSHRStalls++
		return 0, false
	}

	latency := h.cfg.L1D.LatencyCycles
	state := Exclusive
	if write {
		state = Modified
	}
	switch {
	case h.L2.Access(addr, write):
		latency += h.cfg.L2.LatencyCycles
	case h.L3.Access(addr, write):
		latency += h.cfg.L2.LatencyCycles + h.cfg.L3.LatencyCycles +
			h.cfg.Mesh.TransferCycles(h.cfg.CoreNode, lineAddr)
		h.fillL2(addr, write)
	default:
		latency += h.cfg.L2.LatencyCycles + h.cfg.L3.LatencyCycles +
			h.cfg.Mesh.TransferCycles(h.cfg.CoreNode, lineAddr) + h.cfg.DRAMCycles
		h.Stats.DRAMAccesses++
		h.L3.Fill(addr, Exclusive)
		h.fillL2(addr, write)
	}
	if victim, wb := h.L1D.Fill(addr, state); wb {
		// Dirty victim writes back into L2 (inclusive hierarchy).
		h.L2.Access(victim, true)
	}
	done := start + latency
	h.mshr = append(h.mshr, mshrEntry{line: lineAddr, ready: done})
	if done < h.mshrMin {
		h.mshrMin = done
	}
	return done, true
}

func (h *Hierarchy) fillL2(addr uint64, write bool) {
	if victim, wb := h.L2.Fill(addr, Exclusive); wb {
		h.L3.Access(victim, true)
	}
	_ = write
}

// AccessInstr performs an instruction fetch at cycle now and returns the
// completion cycle. Fetch misses do not consume data MSHRs.
func (h *Hierarchy) AccessInstr(now uint64, addr uint64) uint64 {
	line := h.L1I.LineAddr(addr)
	if line+1 == h.iLine {
		// Same line as the previous fetch and the memo guarantees both it
		// and the next line are resident: replay the hit bookkeeping and
		// return. Byte-identical to the slow path below for this case —
		// the Access would hit, the Probe would find the next line, and
		// no state beyond the LRU stamp and hit counters would change.
		h.Stats.InstrAccesses++
		h.L1I.touch(h.iSet, h.iWay)
		return now + h.cfg.L1I.LatencyCycles
	}
	h.iLine = 0
	h.Stats.InstrAccesses++
	latency := h.cfg.L1I.LatencyCycles
	hit := h.L1I.Access(addr, false)
	// Next-line prefetch: sequential fetch is the overwhelmingly common
	// case, so every access pulls the following line in behind it.
	next := line + uint64(h.cfg.L1I.LineBytes)
	if _, present := h.L1I.Probe(next); !present {
		h.Stats.InstrPrefetches++
		if !h.L2.Access(next, false) {
			h.fillL2(next, false)
		}
		h.L1I.Fill(next, Exclusive)
	}
	if hit {
		h.establishStreak(line, next)
		return now + latency
	}
	switch {
	case h.L2.Access(addr, false):
		latency += h.cfg.L2.LatencyCycles
	case h.L3.Access(addr, false):
		latency += h.cfg.L2.LatencyCycles + h.cfg.L3.LatencyCycles +
			h.cfg.Mesh.TransferCycles(h.cfg.CoreNode, h.L1I.LineAddr(addr))
		h.fillL2(addr, false)
	default:
		latency += h.cfg.L2.LatencyCycles + h.cfg.L3.LatencyCycles +
			h.cfg.Mesh.TransferCycles(h.cfg.CoreNode, h.L1I.LineAddr(addr)) + h.cfg.DRAMCycles
		h.Stats.DRAMAccesses++
		h.L3.Fill(addr, Exclusive)
		h.fillL2(addr, false)
	}
	h.L1I.Fill(addr, Exclusive)
	h.establishStreak(line, next)
	return now + latency
}

// establishStreak arms the fetch-streak memo for line if both it and the
// following line ended the access resident (the prefetch fill can evict
// either in degenerate single-set configurations, so residency is checked
// rather than assumed).
func (h *Hierarchy) establishStreak(line, next uint64) {
	if set, way, ok := h.L1I.locate(line); ok {
		if _, present := h.L1I.Probe(next); present {
			h.iLine, h.iSet, h.iWay = line+1, set, way
		}
	}
}

// OutstandingMisses reports the number of busy MSHRs at cycle now.
func (h *Hierarchy) OutstandingMisses(now uint64) int {
	h.expireMSHRs(now)
	return len(h.mshr)
}

// FlushAll empties every cache level and the TLB contents are kept (the
// paper's receiver probes cache residency, not TLB state).
func (h *Hierarchy) FlushAll() {
	h.iLine = 0
	h.L1I.FlushAll()
	h.L1D.FlushAll()
	h.L2.FlushAll()
	h.L3.FlushAll()
	h.mshr = h.mshr[:0]
	h.mshrMin = ^uint64(0)
}
