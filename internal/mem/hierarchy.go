package mem

// HierarchyConfig describes the full memory system (paper Table 1).
type HierarchyConfig struct {
	L1I, L1D, L2, L3 CacheConfig
	MSHRs            int
	// DRAMCycles is the DRAM access latency added after an L3 miss
	// (50 ns at the simulated 2 GHz clock = 100 cycles).
	DRAMCycles     uint64
	Mesh           Mesh
	CoreNode       int
	TLBEntries     int
	PageBytes      int
	PageWalkCycles uint64
}

// DefaultHierarchyConfig returns the paper's Table 1 memory system.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:            CacheConfig{Name: "L1I", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, LatencyCycles: 2},
		L1D:            CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, LatencyCycles: 2},
		L2:             CacheConfig{Name: "L2", SizeBytes: 256 << 10, Ways: 16, LineBytes: 64, LatencyCycles: 20},
		L3:             CacheConfig{Name: "L3", SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, LatencyCycles: 40},
		MSHRs:          16,
		DRAMCycles:     100,
		Mesh:           DefaultMesh(),
		CoreNode:       0,
		TLBEntries:     64,
		PageBytes:      4 << 10,
		PageWalkCycles: 50,
	}
}

// HierarchyStats aggregates memory-system counters.
type HierarchyStats struct {
	DataAccesses    uint64
	InstrAccesses   uint64
	DRAMAccesses    uint64
	MSHRStalls      uint64
	MSHRMerges      uint64
	InstrPrefetches uint64
}

// Hierarchy is the single-core memory system timing model. Latency is
// computed synchronously: an access returns the cycle at which its data is
// available. Outstanding misses occupy MSHRs until their completion cycle;
// an access that needs a new MSHR when all are busy reports a structural
// stall and must be retried.
type Hierarchy struct {
	cfg  HierarchyConfig
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	L3   *Cache
	DTLB *TLB

	// mshr maps outstanding miss line addresses to completion cycles.
	mshr map[uint64]uint64

	Stats HierarchyStats
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg:  cfg,
		L1I:  NewCache(cfg.L1I),
		L1D:  NewCache(cfg.L1D),
		L2:   NewCache(cfg.L2),
		L3:   NewCache(cfg.L3),
		DTLB: NewTLB(cfg.TLBEntries, cfg.PageBytes, cfg.PageWalkCycles),
		mshr: make(map[uint64]uint64, cfg.MSHRs),
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

func (h *Hierarchy) expireMSHRs(now uint64) {
	for lineAddr, ready := range h.mshr {
		if ready <= now {
			delete(h.mshr, lineAddr)
		}
	}
}

// AccessData performs a data access at cycle now. It returns the cycle the
// access completes and ok=false if the access could not start because all
// MSHRs are busy (the caller must retry). The TLB translation latency is
// included; protection policies must only call this once the access is
// allowed to become visible.
func (h *Hierarchy) AccessData(now uint64, addr uint64, write bool) (uint64, bool) {
	h.expireMSHRs(now)
	h.Stats.DataAccesses++

	start := now + h.DTLB.Translate(addr)
	lineAddr := h.L1D.LineAddr(addr)

	if h.L1D.Access(addr, write) {
		return start + h.cfg.L1D.LatencyCycles, true
	}
	// L1 miss: check for an in-flight miss to the same line.
	if ready, ok := h.mshr[lineAddr]; ok {
		h.Stats.MSHRMerges++
		done := ready
		if s := start + h.cfg.L1D.LatencyCycles; s > done {
			done = s
		}
		return done, true
	}
	if len(h.mshr) >= h.cfg.MSHRs {
		h.Stats.MSHRStalls++
		return 0, false
	}

	latency := h.cfg.L1D.LatencyCycles
	state := Exclusive
	if write {
		state = Modified
	}
	switch {
	case h.L2.Access(addr, write):
		latency += h.cfg.L2.LatencyCycles
	case h.L3.Access(addr, write):
		latency += h.cfg.L2.LatencyCycles + h.cfg.L3.LatencyCycles +
			h.cfg.Mesh.TransferCycles(h.cfg.CoreNode, lineAddr)
		h.fillL2(addr, write)
	default:
		latency += h.cfg.L2.LatencyCycles + h.cfg.L3.LatencyCycles +
			h.cfg.Mesh.TransferCycles(h.cfg.CoreNode, lineAddr) + h.cfg.DRAMCycles
		h.Stats.DRAMAccesses++
		h.L3.Fill(addr, Exclusive)
		h.fillL2(addr, write)
	}
	if victim, wb := h.L1D.Fill(addr, state); wb {
		// Dirty victim writes back into L2 (inclusive hierarchy).
		h.L2.Access(victim, true)
	}
	done := start + latency
	h.mshr[lineAddr] = done
	return done, true
}

func (h *Hierarchy) fillL2(addr uint64, write bool) {
	if victim, wb := h.L2.Fill(addr, Exclusive); wb {
		h.L3.Access(victim, true)
	}
	_ = write
}

// AccessInstr performs an instruction fetch at cycle now and returns the
// completion cycle. Fetch misses do not consume data MSHRs.
func (h *Hierarchy) AccessInstr(now uint64, addr uint64) uint64 {
	h.Stats.InstrAccesses++
	latency := h.cfg.L1I.LatencyCycles
	hit := h.L1I.Access(addr, false)
	// Next-line prefetch: sequential fetch is the overwhelmingly common
	// case, so every access pulls the following line in behind it.
	next := h.L1I.LineAddr(addr) + uint64(h.cfg.L1I.LineBytes)
	if _, present := h.L1I.Probe(next); !present {
		h.Stats.InstrPrefetches++
		if !h.L2.Access(next, false) {
			h.fillL2(next, false)
		}
		h.L1I.Fill(next, Exclusive)
	}
	if hit {
		return now + latency
	}
	switch {
	case h.L2.Access(addr, false):
		latency += h.cfg.L2.LatencyCycles
	case h.L3.Access(addr, false):
		latency += h.cfg.L2.LatencyCycles + h.cfg.L3.LatencyCycles +
			h.cfg.Mesh.TransferCycles(h.cfg.CoreNode, h.L1I.LineAddr(addr))
		h.fillL2(addr, false)
	default:
		latency += h.cfg.L2.LatencyCycles + h.cfg.L3.LatencyCycles +
			h.cfg.Mesh.TransferCycles(h.cfg.CoreNode, h.L1I.LineAddr(addr)) + h.cfg.DRAMCycles
		h.Stats.DRAMAccesses++
		h.L3.Fill(addr, Exclusive)
		h.fillL2(addr, false)
	}
	h.L1I.Fill(addr, Exclusive)
	return now + latency
}

// OutstandingMisses reports the number of busy MSHRs at cycle now.
func (h *Hierarchy) OutstandingMisses(now uint64) int {
	h.expireMSHRs(now)
	return len(h.mshr)
}

// FlushAll empties every cache level and the TLB contents are kept (the
// paper's receiver probes cache residency, not TLB state).
func (h *Hierarchy) FlushAll() {
	h.L1I.FlushAll()
	h.L1D.FlushAll()
	h.L2.FlushAll()
	h.L3.FlushAll()
	h.mshr = make(map[uint64]uint64, h.cfg.MSHRs)
}
