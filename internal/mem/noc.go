package mem

// Mesh models the paper's 4×2 mesh interconnect (Table 1: 128-bit links,
// 1 cycle per hop). The L3 is banked across mesh nodes by line address; an
// access from the core pays the round-trip hop latency to the bank.
type Mesh struct {
	Width, Height int
	LinkCycles    uint64
	LineBytes     int
	FlitBytes     int // link width in bytes (128 b = 16 B)
}

// DefaultMesh returns the paper's 4×2 mesh.
func DefaultMesh() Mesh {
	return Mesh{Width: 4, Height: 2, LinkCycles: 1, LineBytes: 64, FlitBytes: 16}
}

// Nodes reports the number of mesh nodes.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// Hops returns the Manhattan distance between two nodes.
func (m Mesh) Hops(from, to int) int {
	fx, fy := from%m.Width, from/m.Width
	tx, ty := to%m.Width, to/m.Width
	dx, dy := fx-tx, fy-ty
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// BankOf maps a line address to its L3 bank (mesh node).
func (m Mesh) BankOf(lineAddr uint64) int {
	return int(lineAddr/uint64(m.LineBytes)) % m.Nodes()
}

// TransferCycles returns the round-trip latency for moving one cache line
// between the core node and the bank holding lineAddr: request hop latency
// plus serialized response flits.
func (m Mesh) TransferCycles(coreNode int, lineAddr uint64) uint64 {
	bank := m.BankOf(lineAddr)
	hops := uint64(m.Hops(coreNode, bank))
	flits := uint64((m.LineBytes + m.FlitBytes - 1) / m.FlitBytes)
	// Request traverses hops, response traverses hops with the line
	// pipelined flit-by-flit behind the head.
	return 2*hops*m.LinkCycles + (flits - 1)
}
