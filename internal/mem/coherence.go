package mem

// Directory implements a two-level MESI directory protocol over a set of
// private L1 caches (paper Table 1: "Two-Level MESI"). Each line has a set
// of sharers and at most one owner in Modified/Exclusive state. The
// simulator's single-core runs use a one-cache directory (where the
// protocol degenerates to E/M upgrades), but the protocol itself supports
// any number of cores and is exercised by multi-requester unit tests.
type Directory struct {
	caches []*Cache
	// sharers maps line address -> bitmask of caches holding the line.
	sharers map[uint64]uint64
	Stats   DirectoryStats
}

// DirectoryStats counts protocol events.
type DirectoryStats struct {
	ReadRequests  uint64
	WriteRequests uint64
	Invalidations uint64
	Downgrades    uint64
	DirtyForwards uint64
}

// NewDirectory builds a directory over the given L1 caches.
func NewDirectory(caches ...*Cache) *Directory {
	return &Directory{caches: caches, sharers: make(map[uint64]uint64)}
}

// Read handles a read request from core for the line containing addr.
// It returns the MESI state the requester should install the line in and
// whether another core supplied modified data.
func (d *Directory) Read(core int, addr uint64) (MESI, bool) {
	d.Stats.ReadRequests++
	lineAddr := d.caches[core].LineAddr(addr)
	mask := d.sharers[lineAddr]
	dirtyForward := false
	for i, c := range d.caches {
		if i == core || mask&(1<<uint(i)) == 0 {
			continue
		}
		// Any Modified/Exclusive holder downgrades to Shared.
		if c.Downgrade(lineAddr) {
			dirtyForward = true
			d.Stats.DirtyForwards++
		}
		d.Stats.Downgrades++
	}
	newState := Exclusive
	if mask&^(1<<uint(core)) != 0 {
		newState = Shared
	}
	d.sharers[lineAddr] = mask | 1<<uint(core)
	return newState, dirtyForward
}

// Write handles a write (read-for-ownership) request from core. All other
// sharers are invalidated; the requester installs the line Modified.
func (d *Directory) Write(core int, addr uint64) MESI {
	d.Stats.WriteRequests++
	lineAddr := d.caches[core].LineAddr(addr)
	mask := d.sharers[lineAddr]
	for i, c := range d.caches {
		if i == core || mask&(1<<uint(i)) == 0 {
			continue
		}
		if dirty, present := c.Invalidate(lineAddr); present {
			d.Stats.Invalidations++
			if dirty {
				d.Stats.DirtyForwards++
			}
		}
	}
	d.sharers[lineAddr] = 1 << uint(core)
	return Modified
}

// Evicted notifies the directory that core no longer holds the line.
func (d *Directory) Evicted(core int, lineAddr uint64) {
	if mask, ok := d.sharers[lineAddr]; ok {
		mask &^= 1 << uint(core)
		if mask == 0 {
			delete(d.sharers, lineAddr)
		} else {
			d.sharers[lineAddr] = mask
		}
	}
}

// Sharers reports the number of caches holding the line (for tests).
func (d *Directory) Sharers(lineAddr uint64) int {
	n := 0
	for mask := d.sharers[lineAddr]; mask != 0; mask &= mask - 1 {
		n++
	}
	return n
}
