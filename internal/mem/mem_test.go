package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return NewCache(CacheConfig{Name: "t", SizeBytes: 1024, Ways: 2, LineBytes: 64, LatencyCycles: 2})
}

func TestCacheHitAfterFill(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000, false) {
		t.Fatal("cold cache hit")
	}
	c.Fill(0x1000, Exclusive)
	if !c.Access(0x1000, false) {
		t.Fatal("miss after fill")
	}
	if !c.Access(0x103F, false) {
		t.Fatal("miss within same line")
	}
	if c.Access(0x1040, false) {
		t.Fatal("hit on adjacent line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 8 sets, 2 ways
	// Three lines mapping to the same set (stride = sets*line = 512).
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400)
	c.Fill(a, Exclusive)
	c.Fill(b, Exclusive)
	c.Access(a, false) // make b the LRU
	victim, _ := c.Fill(d, Exclusive)
	if victim != b {
		t.Fatalf("victim = %#x, want %#x", victim, b)
	}
	if _, hit := c.Probe(a); !hit {
		t.Fatal("recently used line evicted")
	}
	if _, hit := c.Probe(b); hit {
		t.Fatal("LRU line still present")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := smallCache()
	c.Fill(0x0000, Modified)
	c.Fill(0x0200, Exclusive)
	_, wb := c.Fill(0x0400, Exclusive) // evicts 0x0000 (LRU, dirty)
	if !wb {
		t.Fatal("dirty eviction did not report writeback")
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCacheWriteUpgradesState(t *testing.T) {
	c := smallCache()
	c.Fill(0x40, Exclusive)
	c.Access(0x40, true)
	if s, _ := c.Probe(0x40); s != Modified {
		t.Fatalf("state after write = %v, want M", s)
	}
}

func TestCacheFillEvictCallbacks(t *testing.T) {
	c := smallCache()
	var fills, evicts []uint64
	c.OnFill = func(a uint64) { fills = append(fills, a) }
	c.OnEvict = func(a uint64) { evicts = append(evicts, a) }
	c.Fill(0x0000, Exclusive)
	c.Fill(0x0200, Exclusive)
	c.Fill(0x0400, Exclusive)
	if len(fills) != 3 || len(evicts) != 1 || evicts[0] != 0x0000 {
		t.Fatalf("fills=%x evicts=%x", fills, evicts)
	}
	c.Invalidate(0x0200)
	if len(evicts) != 2 || evicts[1] != 0x0200 {
		t.Fatalf("invalidate callback missing: %x", evicts)
	}
}

func TestCacheVictimAddressReconstruction(t *testing.T) {
	f := func(raw uint64) bool {
		c := smallCache()
		addr := raw &^ 0x3F // line-align
		c.Fill(addr, Exclusive)
		s1 := c.setOf(addr)
		// Fill two more lines in the same set to force the victim out.
		c.Fill(addr+512, Exclusive)
		victim, _ := c.Fill(addr+1024, Exclusive)
		return victim == addr && c.setOf(victim) == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeshHopsAndBanking(t *testing.T) {
	m := DefaultMesh()
	if m.Nodes() != 8 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
	if m.Hops(0, 0) != 0 || m.Hops(0, 3) != 3 || m.Hops(0, 7) != 4 || m.Hops(4, 3) != 4 {
		t.Fatalf("hop distances wrong: %d %d %d", m.Hops(0, 3), m.Hops(0, 7), m.Hops(4, 3))
	}
	seen := make(map[int]bool)
	for i := uint64(0); i < 8; i++ {
		seen[m.BankOf(i*64)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("banking does not spread lines: %v", seen)
	}
	// Same-node transfer still pays serialization (3 extra flits for 64B/16B).
	if got := m.TransferCycles(0, 0); got != 3 {
		t.Fatalf("local transfer = %d, want 3", got)
	}
	if got := m.TransferCycles(0, 7*64); got != 2*4+3 {
		t.Fatalf("far transfer = %d, want 11", got)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(2, 4096, 50)
	if got := tlb.Translate(0x1000); got != 50 {
		t.Fatalf("cold miss latency = %d", got)
	}
	if got := tlb.Translate(0x1FFF); got != 0 {
		t.Fatalf("same-page hit latency = %d", got)
	}
	tlb.Translate(0x2000) // second entry
	tlb.Translate(0x1000) // refresh first
	tlb.Translate(0x3000) // evicts 0x2000 (LRU)
	if tlb.Present(0x2000) {
		t.Fatal("LRU page not evicted")
	}
	if !tlb.Present(0x1000) {
		t.Fatal("MRU page evicted")
	}
	if tlb.Stats.Misses != 3 {
		t.Fatalf("misses = %d, want 3", tlb.Stats.Misses)
	}
}

func TestDirectoryMESITransitions(t *testing.T) {
	c0, c1 := smallCache(), smallCache()
	d := NewDirectory(c0, c1)

	// Core 0 reads: Exclusive.
	s, _ := d.Read(0, 0x1000)
	if s != Exclusive {
		t.Fatalf("first read state = %v, want E", s)
	}
	c0.Fill(0x1000, s)

	// Core 1 reads the same line: both Shared, core 0 downgraded.
	s, _ = d.Read(1, 0x1000)
	if s != Shared {
		t.Fatalf("second read state = %v, want S", s)
	}
	c1.Fill(0x1000, s)
	if st, _ := c0.Probe(0x1000); st != Shared {
		t.Fatalf("core 0 state = %v, want S", st)
	}
	if d.Sharers(0x1000) != 2 {
		t.Fatalf("sharers = %d, want 2", d.Sharers(0x1000))
	}

	// Core 0 writes: core 1 invalidated.
	s = d.Write(0, 0x1000)
	if s != Modified {
		t.Fatalf("write state = %v, want M", s)
	}
	c0.Fill(0x1000, s)
	if _, present := c1.Probe(0x1000); present {
		t.Fatal("core 1 not invalidated on write")
	}
	if d.Sharers(0x1000) != 1 {
		t.Fatalf("sharers after write = %d, want 1", d.Sharers(0x1000))
	}

	// Core 1 reads back: core 0's modified data is forwarded.
	_, dirty := d.Read(1, 0x1000)
	if !dirty {
		t.Fatal("dirty forward not reported")
	}
	if st, _ := c0.Probe(0x1000); st != Shared {
		t.Fatalf("core 0 state after forward = %v, want S", st)
	}
}

func TestDirectoryEviction(t *testing.T) {
	c0 := smallCache()
	d := NewDirectory(c0)
	d.Read(0, 0x40)
	d.Evicted(0, 0x40)
	if d.Sharers(0x40) != 0 {
		t.Fatal("eviction did not clear sharers")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	cfg := h.Config()

	// Cold access: TLB walk + full miss path to DRAM.
	done, ok := h.AccessData(0, 0x10000, false)
	if !ok {
		t.Fatal("MSHR stall on cold access")
	}
	wantMin := cfg.PageWalkCycles + cfg.L1D.LatencyCycles + cfg.L2.LatencyCycles +
		cfg.L3.LatencyCycles + cfg.DRAMCycles
	if done < wantMin {
		t.Fatalf("cold access done=%d, want >= %d", done, wantMin)
	}
	if h.Stats.DRAMAccesses != 1 {
		t.Fatalf("DRAM accesses = %d", h.Stats.DRAMAccesses)
	}

	// Hot access on the same line: L1 hit, no TLB walk.
	done2, _ := h.AccessData(done, 0x10000, false)
	if done2 != done+cfg.L1D.LatencyCycles {
		t.Fatalf("hot access latency = %d, want %d", done2-done, cfg.L1D.LatencyCycles)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	cfg := h.Config()
	done, _ := h.AccessData(0, 0x20000, false)
	// Evict the line from L1D (8 ways; touch 8 other lines in the same set).
	setStride := uint64(cfg.L1D.SizeBytes / cfg.L1D.Ways)
	now := done
	for i := uint64(1); i <= 8; i++ {
		now, _ = h.AccessData(now+1000, 0x20000+i*setStride, false)
	}
	if _, present := h.L1D.Probe(0x20000); present {
		t.Skip("conflict eviction did not occur; geometry changed")
	}
	start := now + 100000
	done2, _ := h.AccessData(start, 0x20000, false)
	lat := done2 - start
	want := cfg.L1D.LatencyCycles + cfg.L2.LatencyCycles
	if lat != want {
		t.Fatalf("L2 hit latency = %d, want %d", lat, want)
	}
}

func TestHierarchyMSHRLimitAndMerge(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Issue 16 distinct line misses at cycle 0.
	for i := 0; i < 16; i++ {
		if _, ok := h.AccessData(0, uint64(0x100000+i*64), false); !ok {
			t.Fatalf("miss %d rejected early", i)
		}
	}
	if _, ok := h.AccessData(0, 0x200000, false); ok {
		t.Fatal("17th outstanding miss accepted")
	}
	if h.Stats.MSHRStalls != 1 {
		t.Fatalf("stalls = %d", h.Stats.MSHRStalls)
	}
	// A miss to an in-flight line merges instead of stalling. Evict it from
	// L1D first? It was filled already, so this is a hit; use a fresh
	// hierarchy to test merging precisely.
	h2 := NewHierarchy(DefaultHierarchyConfig())
	d1, _ := h2.AccessData(0, 0x300000, false)
	// Same line, before completion, after invalidating L1 residency to force
	// the MSHR-merge path.
	h2.L1D.Invalidate(0x300000)
	d2, ok := h2.AccessData(1, 0x300000, false)
	if !ok || d2 != d1 {
		t.Fatalf("merge: done=%d ok=%v, want %d", d2, ok, d1)
	}
	if h2.Stats.MSHRMerges != 1 {
		t.Fatalf("merges = %d", h2.Stats.MSHRMerges)
	}
	// After completion the MSHR frees.
	if got := h2.OutstandingMisses(d1 + 1); got != 0 {
		t.Fatalf("outstanding after completion = %d", got)
	}
}

func TestHierarchyInstrPath(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	cfg := h.Config()
	done := h.AccessInstr(0, 0x4000)
	if done < cfg.L1I.LatencyCycles+cfg.L2.LatencyCycles+cfg.L3.LatencyCycles+cfg.DRAMCycles {
		t.Fatalf("cold fetch too fast: %d", done)
	}
	done2 := h.AccessInstr(done, 0x4000)
	if done2 != done+cfg.L1I.LatencyCycles {
		t.Fatalf("hot fetch latency = %d", done2-done)
	}
}

func TestHierarchyFlushAll(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.AccessData(0, 0x5000, false)
	h.FlushAll()
	if _, present := h.L1D.Probe(0x5000); present {
		t.Fatal("line survived flush")
	}
	if h.OutstandingMisses(0) != 0 {
		t.Fatal("MSHRs survived flush")
	}
}

func TestCacheFlushCallbacks(t *testing.T) {
	c := smallCache()
	evicts := 0
	c.OnEvict = func(uint64) { evicts++ }
	c.Fill(0x0, Exclusive)
	c.Fill(0x40, Exclusive)
	c.FlushAll()
	if evicts != 2 {
		t.Fatalf("flush evict callbacks = %d, want 2", evicts)
	}
}

func TestCacheProbeNoSideEffects(t *testing.T) {
	c := smallCache()
	c.Probe(0x1234)
	if c.Stats().Accesses != 0 {
		t.Fatal("probe counted as access")
	}
}

// TestCacheSingleCopyInvariant: arbitrary fill/invalidate/access sequences
// never create two copies of one line.
func TestCacheSingleCopyInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := smallCache()
	addrs := make([]uint64, 12)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(4)) * 512 // heavy set conflicts
	}
	count := func(addr uint64) int {
		n := 0
		// Probe every way via repeated invalidation: each Invalidate
		// removes at most one copy.
		for {
			if _, present := c.Probe(addr); !present {
				break
			}
			c.Invalidate(addr)
			n++
			if n > 8 {
				break
			}
		}
		// Reinstall a single copy so the test can continue.
		if n > 0 {
			c.Fill(addr, Exclusive)
		}
		return n
	}
	for step := 0; step < 3000; step++ {
		a := addrs[rng.Intn(len(addrs))]
		switch rng.Intn(4) {
		case 0:
			c.Fill(a, Exclusive)
		case 1:
			c.Fill(a, Modified)
		case 2:
			c.Access(a, rng.Intn(2) == 0)
		case 3:
			c.Invalidate(a)
		}
		if step%100 == 0 {
			for _, a := range addrs {
				if n := count(a); n > 1 {
					t.Fatalf("step %d: line %#x present %d times", step, a, n)
				}
			}
		}
	}
}

// TestTLBNeverExceedsCapacity: the TLB's resident set is bounded.
func TestTLBNeverExceedsCapacity(t *testing.T) {
	tlb := NewTLB(8, 4096, 50)
	rng := rand.New(rand.NewSource(13))
	resident := 0
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(64)) << 12
		if tlb.Translate(addr) == 0 {
			continue
		}
		resident++
	}
	// Count how many of the 64 pages currently hit.
	hits := 0
	for p := uint64(0); p < 64; p++ {
		if tlb.Present(p << 12) {
			hits++
		}
	}
	if hits > 8 {
		t.Fatalf("TLB holds %d pages, capacity 8", hits)
	}
}
