package mem

// Clone returns a deep copy of the cache: geometry, line metadata, LRU
// stamps, and counters. The OnFill/OnEvict hooks are deliberately NOT
// copied — they are per-attachment state (the shadow L1 installs them when
// a policy attaches to a core), not part of the warmable contents.
func (c *Cache) Clone() *Cache {
	out := &Cache{
		cfg:       c.cfg,
		sets:      c.sets,
		lineShift: c.lineShift,
		setShift:  c.setShift,
		setMask:   c.setMask,
		lines:     make([]line, len(c.lines)),
		stamp:     c.stamp,
		stats:     c.stats,
	}
	copy(out.lines, c.lines)
	return out
}

// ResetStats zeroes the counters without touching line state, so a warmed
// cache starts a measured region with clean statistics.
func (c *Cache) ResetStats() { c.stats = CacheStats{} }

// Clone returns a deep copy of the TLB: entries, recency order, and
// counters.
func (t *TLB) Clone() *TLB {
	out := &TLB{
		entries:   t.entries,
		pageShift: t.pageShift,
		walkCost:  t.walkCost,
		idx:       make(map[uint64]int, len(t.idx)),
		pages:     append([]uint64(nil), t.pages...),
		prev:      append([]int(nil), t.prev...),
		next:      append([]int(nil), t.next...),
		head:      t.head,
		tail:      t.tail,
		used:      t.used,
		Stats:     t.Stats,
	}
	for p, s := range t.idx {
		out.idx[p] = s
	}
	return out
}

// Clone returns a deep copy of the hierarchy's warmable state: every cache
// level and the TLB, with their contents, LRU stamps, and counters. The
// MSHR table is NOT carried over — outstanding-miss completion cycles are
// meaningless across a clock-domain change (a restored core restarts at
// cycle 0) — and neither are cache hooks (see Cache.Clone).
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{
		cfg:     h.cfg,
		L1I:     h.L1I.Clone(),
		L1D:     h.L1D.Clone(),
		L2:      h.L2.Clone(),
		L3:      h.L3.Clone(),
		DTLB:    h.DTLB.Clone(),
		mshr:    make([]mshrEntry, 0, h.cfg.MSHRs),
		mshrMin: ^uint64(0),
		Stats:   h.Stats,
	}
}

// ResetStats zeroes every counter in the hierarchy — its own, each cache
// level's, and the TLB's — without touching cache or TLB contents. Called
// on a functionally-warmed hierarchy before the detailed region so the
// measured statistics cover only detailed execution.
func (h *Hierarchy) ResetStats() {
	h.Stats = HierarchyStats{}
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.L3.ResetStats()
	h.DTLB.Stats = TLBStats{}
}
