// Package mem models the memory system of the simulated machine: set
// associative write-back caches with MESI coherence state, a non-blocking
// miss pipeline bounded by MSHRs, a TLB, a mesh NoC latency model for the
// banked L3, and DRAM. It is a timing model only: data values live in the
// functional backing store (emu.Memory); this package answers "when does
// this access complete" and tracks line residency for the shadow L1.
package mem

import "fmt"

// MESI is the coherence state of a cache line.
type MESI uint8

const (
	Invalid MESI = iota
	Shared
	Exclusive
	Modified
)

func (s MESI) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// line is one cache line's metadata. Data is not stored here (functional
// values live in the backing store).
type line struct {
	tag   uint64
	state MESI
	lru   uint64 // last-touch stamp
}

// CacheConfig describes one cache's geometry.
type CacheConfig struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	// LatencyCycles is the hit latency of this level.
	LatencyCycles uint64
}

// CacheStats counts cache events.
type CacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg       CacheConfig
	sets      int
	lineShift uint
	setShift  uint // log2(sets); tags are (addr >> lineShift) >> setShift
	setMask   uint64
	lines     []line // sets*ways, row-major by set
	stamp     uint64
	stats     CacheStats

	// OnFill, if non-nil, is called when a line is installed (with the line
	// base address). OnEvict is called when a valid line is replaced or
	// invalidated. The shadow L1 hooks these.
	OnFill  func(lineAddr uint64)
	OnEvict func(lineAddr uint64)
}

// NewCache builds a cache from its configuration.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("mem: %s: line size %d not a power of two", cfg.Name, cfg.LineBytes))
	}
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: %s: set count %d not a power of two", cfg.Name, sets))
	}
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		lines:   make([]line, sets*cfg.Ways),
	}
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		c.lineShift++
	}
	for s := sets; s > 1; s >>= 1 {
		c.setShift++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// LineAddr returns the line base address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineBytes) - 1) }

func (c *Cache) setOf(addr uint64) int {
	return int((addr >> c.lineShift) & c.setMask)
}

func (c *Cache) tagOf(addr uint64) uint64 {
	// sets is a power of two (checked in NewCache), so the tag is a shift
	// — a division here would dominate the tag scan, since the divisor is
	// only known at run time.
	return (addr >> c.lineShift) >> c.setShift
}

func (c *Cache) slot(set, way int) *line { return &c.lines[set*c.cfg.Ways+way] }

// locate returns the set and way holding addr's line, without updating
// LRU or statistics — the lookup half of Access, used to pin a (set, way)
// for a repeated-hit fast path (see Hierarchy.AccessInstr).
func (c *Cache) locate(addr uint64) (set, way int, ok bool) {
	set = c.setOf(addr)
	tag := c.tagOf(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		l := c.slot(set, w)
		if l.state != Invalid && l.tag == tag {
			return set, w, true
		}
	}
	return 0, 0, false
}

// touch replays the bookkeeping half of a read hit on a known (set, way):
// the stamp advance, the access and hit counters, and the LRU refresh —
// exactly what Access(addr, false) does when it finds the line, minus the
// tag scan. The caller is responsible for (set, way) still holding the
// intended line.
func (c *Cache) touch(set, way int) {
	c.stamp++
	c.stats.Accesses++
	c.stats.Hits++
	c.slot(set, way).lru = c.stamp
}

// Probe reports whether addr's line is present, without updating LRU or
// statistics. Used by the covert-channel receiver in the penetration tests
// and by the shadow L1.
func (c *Cache) Probe(addr uint64) (MESI, bool) {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	ls := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
	for w := range ls {
		if ls[w].state != Invalid && ls[w].tag == tag {
			return ls[w].state, true
		}
	}
	return Invalid, false
}

// Access looks up addr. On a hit it refreshes LRU and (for writes to
// non-Modified lines) upgrades the state. It reports hit/miss; the caller
// decides what a miss costs. It does NOT allocate: call Fill for that.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.stamp++
	c.stats.Accesses++
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	ls := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
	for w := range ls {
		l := &ls[w]
		if l.state != Invalid && l.tag == tag {
			l.lru = c.stamp
			if write {
				l.state = Modified
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Fill installs addr's line, evicting the LRU victim if the set is full.
// It returns the victim line address and whether a dirty victim was written
// back. state is the installed MESI state.
func (c *Cache) Fill(addr uint64, state MESI) (victimAddr uint64, writeback bool) {
	c.stamp++
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	// If the line is already resident, update its state in place; a cache
	// never holds two copies of one line.
	for w := 0; w < c.cfg.Ways; w++ {
		l := c.slot(set, w)
		if l.state != Invalid && l.tag == tag {
			l.state = state
			l.lru = c.stamp
			return 0, false
		}
	}
	victim := 0
	for w := 0; w < c.cfg.Ways; w++ {
		l := c.slot(set, w)
		if l.state == Invalid {
			victim = w
			break
		}
		if l.lru < c.slot(set, victim).lru {
			victim = w
		}
	}
	v := c.slot(set, victim)
	if v.state != Invalid {
		victimAddr = c.reconstructAddr(set, v.tag)
		writeback = v.state == Modified
		c.stats.Evictions++
		if writeback {
			c.stats.Writebacks++
		}
		if c.OnEvict != nil {
			c.OnEvict(victimAddr)
		}
	}
	*v = line{tag: tag, state: state, lru: c.stamp}
	if c.OnFill != nil {
		c.OnFill(c.LineAddr(addr))
	}
	return victimAddr, writeback
}

// Invalidate drops addr's line if present, reporting whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (wasDirty bool, wasPresent bool) {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		l := c.slot(set, w)
		if l.state != Invalid && l.tag == tag {
			wasDirty = l.state == Modified
			l.state = Invalid
			if c.OnEvict != nil {
				c.OnEvict(c.LineAddr(addr))
			}
			return wasDirty, true
		}
	}
	return false, false
}

// Downgrade moves addr's line to Shared (for coherence), reporting whether
// a writeback of modified data was needed.
func (c *Cache) Downgrade(addr uint64) (wasDirty bool) {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		l := c.slot(set, w)
		if l.state != Invalid && l.tag == tag {
			wasDirty = l.state == Modified
			l.state = Shared
			return wasDirty
		}
	}
	return false
}

func (c *Cache) reconstructAddr(set int, tag uint64) uint64 {
	return (tag*uint64(c.sets) + uint64(set)) << c.lineShift
}

// FlushAll invalidates every line (used between penetration-test phases).
func (c *Cache) FlushAll() {
	for i := range c.lines {
		if c.lines[i].state != Invalid && c.OnEvict != nil {
			set := i / c.cfg.Ways
			c.OnEvict(c.reconstructAddr(set, c.lines[i].tag))
		}
		c.lines[i] = line{}
	}
}
