package mem

// TLB is a fully associative translation lookaside buffer with LRU
// replacement. The simulator runs a flat (identity) address space, so the
// TLB exists purely for timing: misses cost a page-walk latency, and a
// load/store that is delayed by a protection policy does not perform its
// TLB lookup (TLB fills are an address-dependent covert channel).
type TLB struct {
	entries   int
	pageShift uint
	walkCost  uint64
	pages     map[uint64]uint64 // page number -> last-touch stamp
	stamp     uint64

	Stats TLBStats
}

// TLBStats counts TLB events.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with the given entry count, page size, and page-walk
// latency in cycles.
func NewTLB(entries int, pageBytes int, walkCycles uint64) *TLB {
	shift := uint(0)
	for s := pageBytes; s > 1; s >>= 1 {
		shift++
	}
	return &TLB{
		entries:   entries,
		pageShift: shift,
		walkCost:  walkCycles,
		pages:     make(map[uint64]uint64, entries),
	}
}

// Translate performs a lookup for addr and returns the added latency
// (0 on hit, walk cost on miss). The entry is installed on miss.
func (t *TLB) Translate(addr uint64) uint64 {
	t.stamp++
	t.Stats.Accesses++
	page := addr >> t.pageShift
	if _, ok := t.pages[page]; ok {
		t.pages[page] = t.stamp
		return 0
	}
	t.Stats.Misses++
	if len(t.pages) >= t.entries {
		// Evict LRU.
		var victim uint64
		var oldest uint64 = ^uint64(0)
		for p, s := range t.pages {
			if s < oldest {
				oldest = s
				victim = p
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.stamp
	return t.walkCost
}

// Present reports whether addr's page is cached, without side effects.
func (t *TLB) Present(addr uint64) bool {
	_, ok := t.pages[addr>>t.pageShift]
	return ok
}
