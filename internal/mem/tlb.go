package mem

// TLB is a fully associative translation lookaside buffer with exact LRU
// replacement. The simulator runs a flat (identity) address space, so the
// TLB exists purely for timing: misses cost a page-walk latency, and a
// load/store that is delayed by a protection policy does not perform its
// TLB lookup (TLB fills are an address-dependent covert channel).
//
// Recency is an intrusive doubly-linked list over a fixed slot array
// (head = MRU, tail = LRU) with a map from page number to slot. This is
// behaviorally identical to timestamp LRU — every access is a distinct
// recency event, so the eviction order matches — but a hit is a map read
// plus pointer splices instead of a map write, a miss evicts in O(1)
// instead of scanning for the oldest stamp, and the repeated-same-page
// hit (the common case during functional warming) is a single head
// check. Translate is the hottest call in hierarchy warming; see
// BenchmarkWarmingWalker.
type TLB struct {
	entries   int
	pageShift uint
	walkCost  uint64

	idx        map[uint64]int
	pages      []uint64
	prev, next []int
	head, tail int // slot indices, -1 when empty
	used       int

	Stats TLBStats
}

// TLBStats counts TLB events.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with the given entry count, page size, and page-walk
// latency in cycles.
func NewTLB(entries int, pageBytes int, walkCycles uint64) *TLB {
	shift := uint(0)
	for s := pageBytes; s > 1; s >>= 1 {
		shift++
	}
	return &TLB{
		entries:   entries,
		pageShift: shift,
		walkCost:  walkCycles,
		idx:       make(map[uint64]int, entries),
		pages:     make([]uint64, entries),
		prev:      make([]int, entries),
		next:      make([]int, entries),
		head:      -1,
		tail:      -1,
	}
}

// moveToFront makes slot s the MRU entry.
func (t *TLB) moveToFront(s int) {
	if t.head == s {
		return
	}
	p, n := t.prev[s], t.next[s]
	if p >= 0 {
		t.next[p] = n
	}
	if n >= 0 {
		t.prev[n] = p
	}
	if t.tail == s {
		t.tail = p
	}
	t.prev[s] = -1
	t.next[s] = t.head
	if t.head >= 0 {
		t.prev[t.head] = s
	}
	t.head = s
	if t.tail < 0 {
		t.tail = s
	}
}

// Translate performs a lookup for addr and returns the added latency
// (0 on hit, walk cost on miss). The entry is installed on miss.
func (t *TLB) Translate(addr uint64) uint64 {
	t.Stats.Accesses++
	page := addr >> t.pageShift
	if t.head >= 0 && t.pages[t.head] == page {
		return 0 // already MRU: nothing to reorder
	}
	if s, ok := t.idx[page]; ok {
		t.moveToFront(s)
		return 0
	}
	t.Stats.Misses++
	var s int
	if t.used >= t.entries {
		s = t.tail
		delete(t.idx, t.pages[s])
	} else {
		s = t.used
		t.used++
		if t.head < 0 {
			t.prev[s] = -1
			t.next[s] = -1
			t.head, t.tail = s, s
			t.pages[s] = page
			t.idx[page] = s
			return t.walkCost
		}
		// Link as a fresh tail so moveToFront splices uniformly.
		t.prev[s] = t.tail
		t.next[s] = -1
		t.next[t.tail] = s
		t.tail = s
	}
	t.pages[s] = page
	t.idx[page] = s
	t.moveToFront(s)
	return t.walkCost
}

// Present reports whether addr's page is cached, without side effects.
func (t *TLB) Present(addr uint64) bool {
	_, ok := t.idx[addr>>t.pageShift]
	return ok
}
