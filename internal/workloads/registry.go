package workloads

import (
	"fmt"
	"sort"

	"spt/internal/isa"
)

// Class groups workloads the way the paper's figures do.
type Class uint8

const (
	// SPECInt mimics a SPEC CPU2017 integer benchmark.
	SPECInt Class = iota
	// SPECFP mimics a SPEC CPU2017 floating-point benchmark (µRISC has no
	// FP unit, so the kernels reproduce the memory/branch behavior with
	// fixed-point arithmetic).
	SPECFP
	// ConstTime is a data-oblivious (constant-time) kernel.
	ConstTime
)

func (c Class) String() string {
	switch c {
	case SPECInt:
		return "int"
	case SPECFP:
		return "fp"
	case ConstTime:
		return "const-time"
	}
	return "class(?)"
}

// Workload is one benchmark in the suite.
type Workload struct {
	Name  string
	Class Class
	// Behavior summarizes the dominant behavior being mimicked.
	Behavior string
	// Build constructs the program. iters scales the outer loop; pass a
	// small value to run to completion in tests, or a huge value and stop
	// on a retired-instruction budget (the SimPoint stand-in) in benches.
	Build func(iters int64) *isa.Program
}

var registry []Workload

func register(w Workload) { registry = append(registry, w) }

// All returns every workload: the SPEC-like suite followed by the
// constant-time kernels, each in a stable order.
func All() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SPECLike returns the SPEC-CPU2017-like kernels.
func SPECLike() []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Class != ConstTime {
			out = append(out, w)
		}
	}
	return out
}

// ConstTimeKernels returns the data-oblivious kernels (bitslice AES-style,
// ChaCha20, djbsort-style sorting network).
func ConstTimeKernels() []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Class == ConstTime {
			out = append(out, w)
		}
	}
	return out
}

// ByName finds a workload.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}
