package workloads

import (
	"math/rand"

	"spt/internal/asm"
	"spt/internal/isa"
)

// Constant-time kernels (paper §9.1: bitslice AES, BearSSL ChaCha20,
// djbsort). All three are genuinely data-oblivious µRISC programs: no
// secret-dependent branch predicates or memory addresses. The dedicated
// test TestConstTimeKernelsAreDataOblivious verifies this by comparing
// observation traces across different secret inputs on the *unprotected*
// machine.

// Memory layout shared by the constant-time kernels.
const (
	ctStateBase = 0x40000 // initial state / key material
	ctOutBase   = 0x41000 // output (keystream / ciphertext / sorted data)
)

func init() {
	register(Workload{
		Name:     "chacha20",
		Class:    ConstTime,
		Behavior: "ChaCha20 block function (RFC 8439): 20 rounds of ADDW/XOR/ROLW per block",
		Build:    BuildChaCha20,
	})
	register(Workload{
		Name:     "aes-bitslice",
		Class:    ConstTime,
		Behavior: "bitsliced AES-style rounds: XOR/AND/OR gate network over 8 bit-planes",
		Build:    buildBitsliceAES,
	})
	register(Workload{
		Name:     "djbsort",
		Class:    ConstTime,
		Behavior: "djbsort-style constant-time sorting network (Batcher odd-even merge, MIN/MAX)",
		Build:    buildDjbsort,
	})
}

// DefaultChaChaKey is the kernel's embedded key: bytes 00 01 02 ... 1f.
func DefaultChaChaKey() [32]byte {
	var k [32]byte
	for i := range k {
		k[i] = byte(i)
	}
	return k
}

// ChaChaInitialState returns the RFC 8439 initial state for the given key
// with the kernel's embedded nonce and counter (used by the test's
// reference implementation).
func ChaChaInitialState() [16]uint32 { return ChaChaInitialStateKeyed(DefaultChaChaKey()) }

// ChaChaInitialStateKeyed builds the initial state for an arbitrary key.
func ChaChaInitialStateKeyed(key [32]byte) [16]uint32 {
	var st [16]uint32
	st[0], st[1], st[2], st[3] = 0x61707865, 0x3320646e, 0x79622d32, 0x6b206574
	for i := 0; i < 8; i++ {
		st[4+i] = uint32(key[4*i]) | uint32(key[4*i+1])<<8 | uint32(key[4*i+2])<<16 | uint32(key[4*i+3])<<24
	}
	st[12] = 1          // block counter
	st[13] = 0x09000000 // nonce
	st[14] = 0x4a000000
	st[15] = 0
	return st
}

// BuildChaCha20 emits the ChaCha20 block function with the default key.
func BuildChaCha20(iters int64) *isa.Program {
	return BuildChaCha20Keyed(iters, DefaultChaChaKey())
}

// BuildChaCha20Keyed emits the ChaCha20 block function for a specific
// (secret) key. Each outer iteration produces one 64-byte keystream block
// at ctOutBase and increments the block counter in the state. Register
// plan: r5-r20 hold the 16 state words, r23-r26 hold the rotation amounts,
// r21 points at the stored initial state.
func BuildChaCha20Keyed(iters int64, key [32]byte) *isa.Program {
	b := asm.NewBuilder("chacha20")
	init := ChaChaInitialStateKeyed(key)
	stBytes := make([]byte, 64)
	for i, w := range init {
		stBytes[4*i] = byte(w)
		stBytes[4*i+1] = byte(w >> 8)
		stBytes[4*i+2] = byte(w >> 16)
		stBytes[4*i+3] = byte(w >> 24)
	}
	b.Data(ctStateBase, stBytes)

	st := func(i int) isa.Reg { return isa.Reg(5 + i) } // r5..r20
	b.Movi(21, ctStateBase)
	b.Movi(22, ctOutBase)
	b.Movi(23, 16)
	b.Movi(24, 12)
	b.Movi(25, 8)
	b.Movi(26, 7)

	quarter := func(a, c, d, e int) {
		A, B, C, D := st(a), st(c), st(d), st(e)
		b.Op3(isa.ADDW, A, A, B)
		b.Xor(D, D, A)
		b.Op3(isa.ROLW, D, D, 23) // 16
		b.Op3(isa.ADDW, C, C, D)
		b.Xor(B, B, C)
		b.Op3(isa.ROLW, B, B, 24) // 12
		b.Op3(isa.ADDW, A, A, B)
		b.Xor(D, D, A)
		b.Op3(isa.ROLW, D, D, 25) // 8
		b.Op3(isa.ADDW, C, C, D)
		b.Xor(B, B, C)
		b.Op3(isa.ROLW, B, B, 26) // 7
	}

	outer(b, iters, func() {
		// Load the working state.
		for i := 0; i < 16; i++ {
			b.Ldw(st(i), 21, int64(4*i))
		}
		for round := 0; round < 10; round++ {
			// Column rounds.
			quarter(0, 4, 8, 12)
			quarter(1, 5, 9, 13)
			quarter(2, 6, 10, 14)
			quarter(3, 7, 11, 15)
			// Diagonal rounds.
			quarter(0, 5, 10, 15)
			quarter(1, 6, 11, 12)
			quarter(2, 7, 8, 13)
			quarter(3, 4, 9, 14)
		}
		// Add the initial state back in and emit the keystream block.
		for i := 0; i < 16; i++ {
			b.Ldw(tmpA, 21, int64(4*i))
			b.Op3(isa.ADDW, st(i), st(i), tmpA)
			b.Stw(st(i), 22, int64(4*i))
		}
		// Increment the block counter (word 12).
		b.Ldw(tmpA, 21, 48)
		b.OpI(isa.ADDI, tmpA, tmpA, 1)
		b.Stw(tmpA, 21, 48)
	})
	return b.MustBuild()
}

// buildBitsliceAES emits a bitsliced AES-style cipher: 8 bit-plane
// registers (64 blocks in parallel), ten rounds of a nonlinear XOR/AND/OR
// gate network (the op mix of ctaes's Boyar–Peralta S-box), a rotate-based
// linear layer, and per-round key XORs from memory. The exact ctaes
// circuit is unavailable offline; this network preserves the structure
// that matters for the paper's evaluation: dense straight-line logic ops,
// no secret-dependent branches or addresses.
func buildBitsliceAES(iters int64) *isa.Program { return BuildBitsliceAESSeeded(iters, 77) }

// BuildBitsliceAESSeeded builds the bitslice kernel with key material and
// plaintext drawn from seed (the secret input for obliviousness tests).
func BuildBitsliceAESSeeded(iters int64, seed int64) *isa.Program {
	const keyBase = ctStateBase
	b := asm.NewBuilder("aes-bitslice")
	rng := rand.New(rand.NewSource(seed))
	// 10 round keys x 8 planes.
	keys := make([]uint64, 80)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.DataQuads(keyBase, keys)
	// Plaintext planes.
	pt := make([]uint64, 8)
	for i := range pt {
		pt[i] = rng.Uint64()
	}
	b.DataQuads(ctOutBase, pt)

	plane := func(i int) isa.Reg { return isa.Reg(5 + i) } // r5..r12
	b.Movi(20, keyBase)
	b.Movi(21, ctOutBase)

	outer(b, iters, func() {
		for i := 0; i < 8; i++ {
			b.Ld(plane(i), 21, int64(8*i))
		}
		for round := 0; round < 10; round++ {
			// AddRoundKey.
			for i := 0; i < 8; i++ {
				b.Ld(tmpA, 20, int64(8*(round*8+i)))
				b.Xor(plane(i), plane(i), tmpA)
			}
			// Nonlinear layer: a Toffoli-style mixing network
			// (t = a AND b; c ^= t; ...) over plane triples.
			for i := 0; i < 8; i++ {
				a, c, d := plane(i), plane((i+1)&7), plane((i+3)&7)
				b.And(tmpA, a, c)
				b.Xor(d, d, tmpA)
				b.Or(tmpB, a, d)
				b.Xor(c, c, tmpB)
			}
			// Linear layer: rotate each plane (ShiftRows analogue).
			for i := 0; i < 8; i++ {
				b.Shli(tmpA, plane(i), int64(8*(i&3)+1))
				b.Shri(tmpB, plane(i), int64(64-(8*(i&3)+1)))
				b.Or(plane(i), tmpA, tmpB)
			}
		}
		for i := 0; i < 8; i++ {
			b.St(plane(i), 21, int64(8*i))
		}
	})
	return b.MustBuild()
}

// DjbsortN is the array length sorted by the djbsort kernel.
const DjbsortN = 64

// buildDjbsort emits the sorting network over default (seed 88) data.
func buildDjbsort(iters int64) *isa.Program { return BuildDjbsortSeeded(iters, 88) }

// BuildDjbsortSeeded emits a Batcher odd-even merge sorting network over
// DjbsortN 64-bit values drawn from seed: a fixed sequence of MIN/MAX
// compare-exchanges, exactly djbsort's approach to constant-time sorting.
// The comparator sequence — and therefore every observable event — is
// independent of the (secret) data being sorted.
func BuildDjbsortSeeded(iters int64, seed int64) *isa.Program {
	b := asm.NewBuilder("djbsort")
	rng := rand.New(rand.NewSource(seed))
	vals := make([]uint64, DjbsortN)
	for i := range vals {
		vals[i] = uint64(rng.Int63())
	}
	b.DataQuads(ctOutBase, vals)
	b.Movi(20, ctOutBase)

	outer(b, iters, func() {
		for _, pair := range OddEvenMergeSortNetwork(DjbsortN) {
			i, j := int64(pair[0]), int64(pair[1])
			b.Ld(5, 20, 8*i)
			b.Ld(6, 20, 8*j)
			b.Op3(isa.MIN, 7, 5, 6)
			b.Op3(isa.MAX, 8, 5, 6)
			b.St(7, 20, 8*i)
			b.St(8, 20, 8*j)
		}
	})
	return b.MustBuild()
}

// OddEvenMergeSortNetwork returns Batcher's odd-even merge sort
// comparator sequence for n (a power of two): applying
// (min,max) to each [i,j] pair in order sorts any input.
func OddEvenMergeSortNetwork(n int) [][2]int {
	var pairs [][2]int
	var mergeRange func(lo, cnt, r int)
	mergeRange = func(lo, cnt, r int) {
		m := r * 2
		if m < cnt {
			mergeRange(lo, cnt, m)
			mergeRange(lo+r, cnt, m)
			for i := lo + r; i+r < lo+cnt; i += m {
				pairs = append(pairs, [2]int{i, i + r})
			}
		} else {
			pairs = append(pairs, [2]int{lo, lo + r})
		}
	}
	var sortRange func(lo, cnt int)
	sortRange = func(lo, cnt int) {
		if cnt > 1 {
			m := cnt / 2
			sortRange(lo, m)
			sortRange(lo+m, m)
			mergeRange(lo, cnt, 1)
		}
	}
	sortRange(0, n)
	return pairs
}

// CTOutBase exposes the output buffer address for tests.
const CTOutBase = ctOutBase

// CTStateBase exposes the state buffer address for tests.
const CTStateBase = ctStateBase
