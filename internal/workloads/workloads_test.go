package workloads_test

import (
	"math/bits"
	"math/rand"
	"testing"

	"spt/internal/emu"
	"spt/internal/isa"
	"spt/internal/pipeline"
	"spt/internal/workloads"

	"spt/internal/mem"
)

func TestRegistryComplete(t *testing.T) {
	all := workloads.All()
	if len(all) != 19 {
		t.Fatalf("expected 19 workloads (16 SPEC-like + 3 const-time), got %d", len(all))
	}
	if got := len(workloads.SPECLike()); got != 16 {
		t.Fatalf("SPEC-like count = %d", got)
	}
	if got := len(workloads.ConstTimeKernels()); got != 3 {
		t.Fatalf("const-time count = %d", got)
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Behavior == "" {
			t.Errorf("%s: missing behavior description", w.Name)
		}
	}
	if _, err := workloads.ByName("mcf"); err != nil {
		t.Fatal(err)
	}
	if _, err := workloads.ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestAllKernelsRunToCompletion executes every kernel (few iterations) on
// the functional emulator: they must be valid programs that halt.
func TestAllKernelsRunToCompletion(t *testing.T) {
	for _, w := range workloads.All() {
		p := w.Build(3)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		e := emu.New(p)
		if _, err := e.Run(10_000_000); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if !e.State.Halted {
			t.Fatalf("%s: did not halt", w.Name)
		}
	}
}

// TestAllKernelsMatchPipeline runs every kernel on the OoO core with the
// full SPT policy and checks architectural equivalence with the emulator.
func TestAllKernelsMatchPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full-suite pipeline equivalence")
	}
	for _, w := range workloads.All() {
		p := w.Build(2)
		e := emu.New(p)
		if _, err := e.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		cfg := pipeline.DefaultConfig()
		c, err := pipeline.New(cfg, p, mem.NewHierarchy(mem.DefaultHierarchyConfig()), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(20_000_000, 200_000_000); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if !c.Finished() {
			t.Fatalf("%s: pipeline did not finish", w.Name)
		}
		regs := c.ArchRegs()
		for r := 0; r < isa.NumRegs; r++ {
			if regs[r] != e.State.Regs[r] {
				t.Fatalf("%s: r%d = %#x, emulator %#x", w.Name, r, regs[r], e.State.Regs[r])
			}
		}
	}
}

// chachaRef is an independent Go implementation of the ChaCha20 block
// function used as the oracle for the µRISC kernel.
func chachaRef(st [16]uint32) [16]uint32 {
	x := st
	qr := func(a, b, c, d int) {
		x[a] += x[b]
		x[d] = bits.RotateLeft32(x[d]^x[a], 16)
		x[c] += x[d]
		x[b] = bits.RotateLeft32(x[b]^x[c], 12)
		x[a] += x[b]
		x[d] = bits.RotateLeft32(x[d]^x[a], 8)
		x[c] += x[d]
		x[b] = bits.RotateLeft32(x[b]^x[c], 7)
	}
	for i := 0; i < 10; i++ {
		qr(0, 4, 8, 12)
		qr(1, 5, 9, 13)
		qr(2, 6, 10, 14)
		qr(3, 7, 11, 15)
		qr(0, 5, 10, 15)
		qr(1, 6, 11, 12)
		qr(2, 7, 8, 13)
		qr(3, 4, 9, 14)
	}
	for i := range x {
		x[i] += st[i]
	}
	return x
}

// TestChaCha20MatchesReference: the µRISC kernel's keystream equals an
// independent Go implementation's, block by block.
func TestChaCha20MatchesReference(t *testing.T) {
	p := workloads.BuildChaCha20(2)
	e := emu.New(p)
	if _, err := e.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	// After 2 iterations the output buffer holds block for counter=2.
	st := workloads.ChaChaInitialState()
	st[12] = 2
	want := chachaRef(st)
	for i := 0; i < 16; i++ {
		got := uint32(e.State.Mem.Read(workloads.CTOutBase+uint64(4*i), 4))
		if got != want[i] {
			t.Fatalf("keystream word %d = %#x, want %#x", i, got, want[i])
		}
	}
}

// TestDjbsortSorts: one pass of the network sorts the embedded data.
func TestDjbsortSorts(t *testing.T) {
	w, err := workloads.ByName("djbsort")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(1)
	e := emu.New(p)
	if _, err := e.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i := 0; i < workloads.DjbsortN; i++ {
		v := e.State.Mem.Read(workloads.CTOutBase+uint64(8*i), 8)
		if i > 0 && v < prev {
			t.Fatalf("output not sorted at %d: %d < %d", i, v, prev)
		}
		prev = v
	}
}

// TestOddEvenNetworkSortsAnything: property test of the comparator
// network itself.
func TestOddEvenNetworkSortsAnything(t *testing.T) {
	check := func(n int, arr []int) {
		net := workloads.OddEvenMergeSortNetwork(n)
		for _, pr := range net {
			if arr[pr[0]] > arr[pr[1]] {
				arr[pr[0]], arr[pr[1]] = arr[pr[1]], arr[pr[0]]
			}
		}
		for i := 1; i < n; i++ {
			if arr[i-1] > arr[i] {
				t.Fatalf("n=%d: not sorted: %v", n, arr)
			}
		}
	}
	// Zero-one principle: a network that sorts every 0/1 input sorts all
	// inputs. Exhaustive up to n=16, randomized 0/1 vectors for n=64.
	for _, n := range []int{2, 4, 8, 16} {
		for x := 0; x < 1<<n; x++ {
			arr := make([]int, n)
			for i := 0; i < n; i++ {
				arr[i] = (x >> i) & 1
			}
			check(n, arr)
		}
	}
	rng := newRand()
	for trial := 0; trial < 4096; trial++ {
		arr := make([]int, 64)
		for i := range arr {
			arr[i] = rng.Intn(2)
		}
		check(64, arr)
	}
}

// TestRandomProgramsTerminate: the generator must always produce halting
// programs.
func TestRandomProgramsTerminate(t *testing.T) {
	rng := newRand()
	for i := 0; i < 30; i++ {
		p := workloads.RandomProgram(rng.Int63(), 150)
		e := emu.New(p)
		if _, err := e.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		if !e.State.Halted {
			t.Fatal("random program did not halt")
		}
	}
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(123)) }
