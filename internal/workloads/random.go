// Package workloads provides the µRISC programs the evaluation runs: 14
// SPEC-CPU2017-like synthetic kernels, three constant-time crypto/sorting
// kernels, and a random-program generator used by the property tests.
// See doc.go for the kernel inventory.
package workloads

import (
	"fmt"
	"math/rand"

	"spt/internal/asm"
	"spt/internal/isa"
)

// RandomProgram generates a terminating µRISC program exercising ALU ops,
// loads/stores (with frequent address aliasing to provoke store-to-load
// forwarding and memory-dependence violations), bounded loops, forward
// branches, and calls. The generated programs are used to property-test
// that the out-of-order core matches the functional emulator, and as
// filler by the leakage fuzzer. The program is a pure function of
// (seed, size) — the name "random-<seed>" makes any run reproducible.
func RandomProgram(seed int64, size int) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	b := asm.NewBuilder(fmt.Sprintf("random-%d", seed))

	const dataBase = 0x10000
	const dataSize = 1 << 12 // small region: heavy aliasing

	// Seed the data region with random quads.
	quads := make([]uint64, dataSize/8)
	for i := range quads {
		quads[i] = rng.Uint64()
	}
	b.DataQuads(dataBase, quads)

	// r20 = data base; r5..r15 are scratch data registers.
	b.Movi(20, dataBase)
	for r := isa.Reg(5); r <= 15; r++ {
		b.Movi(r, rng.Int63n(1<<32))
	}

	labelN := 0
	newLabel := func() string {
		labelN++
		return fmt.Sprintf("L%d", labelN)
	}
	scratch := func() isa.Reg { return isa.Reg(5 + rng.Intn(11)) }

	// A leaf function the program can call: r16 = f(r16).
	b.Jump("main")
	b.Label("leaf")
	b.OpI(isa.XORI, 16, 16, 0x5A)
	b.OpI(isa.ADDI, 16, 16, 3)
	b.Ret()
	b.Label("main")

	aluOps := []isa.Op{
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SRA,
		isa.MUL, isa.SLT, isa.SLTU, isa.MIN, isa.MAX, isa.MINU, isa.MAXU,
		isa.ADDW, isa.SUBW, isa.ROLW, isa.RORW, isa.DIV, isa.REM,
	}
	immOps := []isa.Op{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI, isa.SRAI, isa.SLTI}

	var emit func(depth, n int)
	emit = func(depth, n int) {
		for i := 0; i < n; i++ {
			switch k := rng.Intn(20); {
			case k < 7: // register ALU
				b.Op3(aluOps[rng.Intn(len(aluOps))], scratch(), scratch(), scratch())
			case k < 10: // immediate ALU
				b.OpI(immOps[rng.Intn(len(immOps))], scratch(), scratch(), rng.Int63n(64))
			case k < 12: // load
				off := int64(rng.Intn(dataSize/8)) * 8
				b.Ld(scratch(), 20, off)
			case k < 14: // store
				off := int64(rng.Intn(dataSize/8)) * 8
				b.St(scratch(), 20, off)
			case k < 15: // data-dependent (aliasing) access
				r := scratch()
				b.OpI(isa.ANDI, r, r, int64(dataSize/8-1))
				b.Shli(r, r, 3)
				b.Add(r, r, 20)
				if rng.Intn(2) == 0 {
					b.Ld(scratch(), r, 0)
				} else {
					b.St(scratch(), r, 0)
				}
			case k < 16: // narrow access
				off := int64(rng.Intn(dataSize - 8))
				if rng.Intn(2) == 0 {
					b.Ldb(scratch(), 20, off)
				} else {
					b.Stb(scratch(), 20, off)
				}
			case k < 17 && depth < 2: // bounded loop
				cnt := isa.Reg(21 + depth) // dedicated counters avoid clobber
				iters := int64(1 + rng.Intn(6))
				top := newLabel()
				b.Movi(cnt, iters)
				b.Label(top)
				emit(depth+1, 1+rng.Intn(4))
				b.OpI(isa.ADDI, cnt, cnt, -1)
				b.Bne(cnt, isa.Zero, top)
			case k < 19: // forward branch over a short block
				skip := newLabel()
				ops := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
				b.Branch(ops[rng.Intn(len(ops))], scratch(), scratch(), skip)
				emit(depth, 1+rng.Intn(3))
				b.Label(skip)
			default: // call the leaf function
				b.Mov(16, scratch())
				b.Call("leaf")
				b.Mov(scratch(), 16)
			}
		}
	}
	emit(0, size)
	b.Halt()
	return b.MustBuild()
}
