// Package workloads: benchmark inventory.
//
// The paper evaluates SPEC CPU2017 (reference inputs, SimPoint phases) and
// three constant-time kernels. SPEC sources and inputs are proprietary and
// a SimPoint toolchain needs the real binaries, so this package supplies
// behavior-matched synthetic kernels written in µRISC. Each kernel is
// sized so its working set lands in the cache level that dominates the
// real benchmark's behavior, and each reproduces the dominant
// microarchitectural pattern the real benchmark stresses — which is what
// drives SPT's costs (taint-delayed memory-level parallelism and delayed
// branch resolution). A fixed retired-instruction budget per run stands in
// for SimPoint phases.
//
// SPEC-like integer kernels:
//
//	perlbench  hash-table probing with data-dependent update branches;
//	           updated slots hold public values, so re-probes exercise the
//	           shadow L1 (the paper calls out perlbench's shadow-L1 win)
//	gcc        opcode dispatch over an IR array (branchy integer code)
//	mcf        pointer chasing over 512 KiB of 32-byte nodes with
//	           derived-pointer field accesses (exercises backward
//	           untainting, the paper's headline mcf observation)
//	omnetpp    binary-heap event queue with unpredictable comparisons
//	xalancbmk  byte scanning/matching with early-exit branches
//	x264       block SAD with branch-free MIN/MAX absolute differences
//	deepsjeng  bitboard shift/mask chains with bit-test branches
//	leela      randomized board walks (loads at unpredictable addresses)
//	xz         hashed LZ match finding (public positions stored into the
//	           hash table, exercising shadow-L1 untainting of reloads)
//	exchange2  recursive search with stack spills of public values
//
// SPEC-like floating-point kernels (µRISC has no FP unit; fixed-point
// arithmetic reproduces the memory/branch structure):
//
//	bwaves     streaming 1-D stencil over a DRAM-resident array
//	lbm        lattice streaming across three wide arrays
//	namd       multiply-dense pair forces on an L1-resident set
//	parest     sparse matrix-vector with dependent scattered loads
//	povray     MUL/DIV discriminants with a sign-test branch
//	fotonik3d  3-D stencil sweep with plane-strided accesses
//
// Constant-time kernels (genuinely data-oblivious: no secret-dependent
// branches or addresses; verified by the data-obliviousness tests):
//
//	chacha20      the exact RFC 8439 block function, validated against an
//	              independent Go implementation
//	aes-bitslice  bitsliced AES-style rounds over 8 bit-planes (the exact
//	              ctaes circuit is unavailable offline; the op mix and
//	              obliviousness are preserved)
//	djbsort       Batcher odd-even merge sorting network with MIN/MAX,
//	              djbsort's constant-time approach (zero-one-principle
//	              property-tested)
package workloads
