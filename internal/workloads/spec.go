package workloads

import (
	"math/rand"

	"spt/internal/asm"
	"spt/internal/isa"
)

// Register conventions used by the kernels:
//
//	r30      outer-loop counter (iters)
//	r28/r29  scratch temporaries
//	r20..r27 kernel bases and state
//	r5..r15  data values
const (
	iterReg = isa.Reg(30)
	tmpA    = isa.Reg(28)
	tmpB    = isa.Reg(29)
)

// outer wraps a kernel body in the standard outer loop.
func outer(b *asm.Builder, iters int64, body func()) {
	b.Movi(iterReg, iters)
	b.Label("outer")
	body()
	b.OpI(isa.ADDI, iterReg, iterReg, -1)
	b.Bne(iterReg, isa.Zero, "outer")
	b.Halt()
}

// emitXorshift emits x = xorshift64(x), clobbering t.
func emitXorshift(b *asm.Builder, x, t isa.Reg) {
	b.Shli(t, x, 13)
	b.Xor(x, x, t)
	b.Shri(t, x, 7)
	b.Xor(x, x, t)
	b.Shli(t, x, 17)
	b.Xor(x, x, t)
}

func randQuads(seed int64, n int) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	q := make([]uint64, n)
	for i := range q {
		q[i] = rng.Uint64()
	}
	return q
}

func init() {
	register(Workload{
		Name:     "perlbench",
		Class:    SPECInt,
		Behavior: "hash-table probing: hashed indexed loads/stores, data-dependent branches",
		Build:    buildPerlbench,
	})
	register(Workload{
		Name:     "gcc",
		Class:    SPECInt,
		Behavior: "opcode dispatch over an IR array: branchy integer code, moderate footprint",
		Build:    buildGCC,
	})
	register(Workload{
		Name:     "mcf",
		Class:    SPECInt,
		Behavior: "pointer chasing over a large permuted ring: latency-bound dependent loads",
		Build:    buildMCF,
	})
	register(Workload{
		Name:     "omnetpp",
		Class:    SPECInt,
		Behavior: "binary-heap event queue: sift-down with unpredictable comparisons",
		Build:    buildOmnetpp,
	})
	register(Workload{
		Name:     "xalancbmk",
		Class:    SPECInt,
		Behavior: "byte scanning and matching: LDB-heavy loops with early-exit branches",
		Build:    buildXalancbmk,
	})
	register(Workload{
		Name:     "x264",
		Class:    SPECInt,
		Behavior: "block SAD: streaming byte loads, MIN/MAX absolute differences",
		Build:    buildX264,
	})
	register(Workload{
		Name:     "deepsjeng",
		Class:    SPECInt,
		Behavior: "bitboard evaluation: shift/mask chains with bit-test branches",
		Build:    buildDeepsjeng,
	})
	register(Workload{
		Name:     "leela",
		Class:    SPECInt,
		Behavior: "random playouts over a board: randomized loads and branches",
		Build:    buildLeela,
	})
	register(Workload{
		Name:     "xz",
		Class:    SPECInt,
		Behavior: "LZ match finding: hashed position lookups with byte-compare loops",
		Build:    buildXZ,
	})
	register(Workload{
		Name:     "exchange2",
		Class:    SPECInt,
		Behavior: "recursive puzzle search: call-heavy with dense small-array accesses",
		Build:    buildExchange2,
	})
	register(Workload{
		Name:     "bwaves",
		Class:    SPECFP,
		Behavior: "streaming 1-D stencil over a DRAM-resident array",
		Build:    buildBwaves,
	})
	register(Workload{
		Name:     "lbm",
		Class:    SPECFP,
		Behavior: "lattice streaming: multiple wide arrays read and written per site",
		Build:    buildLBM,
	})
	register(Workload{
		Name:     "namd",
		Class:    SPECFP,
		Behavior: "particle pair forces: multiply-dense arithmetic on an L1-resident set",
		Build:    buildNAMD,
	})
	register(Workload{
		Name:     "parest",
		Class:    SPECFP,
		Behavior: "sparse matrix-vector product: index load then dependent data load",
		Build:    buildParest,
	})
	register(Workload{
		Name:     "povray",
		Class:    SPECFP,
		Behavior: "ray-intersection arithmetic: MUL/DIV mixes with taken/not-taken branches",
		Build:    buildPovray,
	})
	register(Workload{
		Name:     "fotonik3d",
		Class:    SPECFP,
		Behavior: "3-D stencil sweep: strided accesses across planes",
		Build:    buildFotonik,
	})
}

// buildPerlbench: hash table of 2^14 slots (128 KiB), xorshift keys,
// probe + conditional update.
func buildPerlbench(iters int64) *isa.Program {
	const base, slots = 0x100000, 1 << 14
	b := asm.NewBuilder("perlbench")
	b.DataQuads(base, randQuads(1, slots))
	b.Movi(20, base)
	b.Movi(5, 0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF) // key state
	b.Movi(6, 0)                                     // hit counter
	outer(b, iters, func() {
		emitXorshift(b, 5, tmpA)
		// idx = (key ^ key>>33) & (slots-1)
		b.Shri(tmpA, 5, 33)
		b.Xor(tmpA, 5, tmpA)
		b.OpI(isa.ANDI, tmpA, tmpA, slots-1)
		b.Shli(tmpA, tmpA, 3)
		b.Add(tmpA, tmpA, 20)
		b.Ld(7, tmpA, 0) // probe
		// if (slot & 1) overwrite the slot with the (public) key, else
		// count a hit. Re-probes of updated slots read public bytes, which
		// is where the shadow L1 pays off (paper §9.3, perlbench).
		b.OpI(isa.ANDI, tmpB, 7, 1)
		b.Beq(tmpB, isa.Zero, "even")
		b.St(5, tmpA, 0)
		b.Jump("next")
		b.Label("even")
		b.OpI(isa.ADDI, 6, 6, 1)
		b.Label("next")
	})
	return b.MustBuild()
}

// buildGCC: IR array of (opcode, operand) pairs; dispatch on opcode.
func buildGCC(iters int64) *isa.Program {
	const base, nodes = 0x100000, 1 << 13
	b := asm.NewBuilder("gcc")
	rng := rand.New(rand.NewSource(2))
	q := make([]uint64, nodes)
	for i := range q {
		q[i] = uint64(rng.Intn(4))<<32 | uint64(rng.Intn(1<<16))
	}
	b.DataQuads(base, q)
	b.Movi(20, base)
	b.Movi(5, 0) // accumulator
	b.Movi(6, 0) // cursor
	outer(b, iters, func() {
		b.Shli(tmpA, 6, 3)
		b.Add(tmpA, tmpA, 20)
		b.Ld(7, tmpA, 0)
		b.Shri(8, 7, 32)              // opcode
		b.OpI(isa.ANDI, 9, 7, 0xFFFF) // operand: constant-pool index
		// Dereference the constant pool (address depends on loaded data).
		b.OpI(isa.ANDI, 10, 9, nodes-1)
		b.Shli(10, 10, 3)
		b.Add(10, 10, 20)
		b.Ld(9, 10, 0)
		b.OpI(isa.ANDI, 9, 9, 0xFFFF)
		b.OpI(isa.SLTI, tmpB, 8, 1)
		b.Bne(tmpB, isa.Zero, "op0")
		b.OpI(isa.SLTI, tmpB, 8, 2)
		b.Bne(tmpB, isa.Zero, "op1")
		b.OpI(isa.SLTI, tmpB, 8, 3)
		b.Bne(tmpB, isa.Zero, "op2")
		b.Xor(5, 5, 9) // op3
		b.Jump("dispatchdone")
		b.Label("op0")
		b.Add(5, 5, 9)
		b.Jump("dispatchdone")
		b.Label("op1")
		b.Sub(5, 5, 9)
		b.Jump("dispatchdone")
		b.Label("op2")
		b.Op3(isa.MUL, 5, 5, 9)
		b.Label("dispatchdone")
		b.OpI(isa.ADDI, 6, 6, 1)
		b.OpI(isa.ANDI, 6, 6, nodes-1)
	})
	return b.MustBuild()
}

// buildMCF: pointer chase over a 512 KiB permuted ring.
func buildMCF(iters int64) *isa.Program {
	const base, n = 0x200000, 1 << 14 // 16K nodes * 32 B = 512 KiB
	b := asm.NewBuilder("mcf")
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(n)
	// Nodes are 32 bytes: {next, cost, flow, pad}, like mcf's arcs.
	q := make([]uint64, n*4)
	for i := 0; i < n; i++ {
		q[perm[i]*4] = base + uint64(perm[(i+1)%n])*32
		q[perm[i]*4+1] = uint64(i) * 3
		q[perm[i]*4+2] = uint64(i) * 7
	}
	b.DataQuads(base, q)
	b.Movi(20, base)
	b.Mov(5, 20)
	b.Movi(6, 0)
	outer(b, iters, func() {
		b.Ld(5, 5, 0) // chase node->next
		// Field accesses through derived pointers. When the cost load
		// reaches the VP it declassifies r8; the backward ADDI rule then
		// untaints r5 and the forward rule untaints r9, letting the flow
		// load execute before its own VP — the paper's "mcf benefits the
		// most from backward untainting" effect.
		b.OpI(isa.ADDI, 8, 5, 8)
		b.OpI(isa.ADDI, 9, 5, 16)
		b.Ld(10, 8, 0) // node->cost
		b.Ld(11, 9, 0) // node->flow
		b.Add(6, 6, 10)
		b.Add(6, 6, 11)
	})
	return b.MustBuild()
}

// buildOmnetpp: binary heap of 8K keys; pop-min then push a new pseudo
// random key (sift operations are branch-heavy).
func buildOmnetpp(iters int64) *isa.Program {
	const base, n = 0x100000, 1 << 13
	b := asm.NewBuilder("omnetpp")
	b.DataQuads(base, randQuads(4, n))
	b.Movi(20, base)
	b.Movi(5, 0xABCDEF12345)
	outer(b, iters, func() {
		// Replace the root with a new key and sift down 3 levels.
		emitXorshift(b, 5, tmpA)
		b.St(5, 20, 0)
		b.Movi(6, 0) // index
		for level := 0; level < 3; level++ {
			lvl := "sift_" + string(rune('a'+level))
			// left child = 2i+1, right = 2i+2
			b.Shli(7, 6, 1)
			b.OpI(isa.ADDI, 7, 7, 1)
			b.Shli(tmpA, 7, 3)
			b.Add(tmpA, tmpA, 20)
			b.Ld(8, tmpA, 0) // left key
			b.Ld(9, tmpA, 8) // right key
			b.Shli(tmpB, 6, 3)
			b.Add(tmpB, tmpB, 20)
			b.Ld(10, tmpB, 0) // parent key
			// pick smaller child
			b.Op3(isa.SLTU, 11, 8, 9)
			b.Bne(11, isa.Zero, lvl+"_left")
			b.Mov(8, 9) // child key = right
			b.OpI(isa.ADDI, 7, 7, 1)
			b.Label(lvl + "_left")
			// if child < parent: swap
			b.Op3(isa.SLTU, 11, 8, 10)
			b.Beq(11, isa.Zero, lvl+"_done")
			b.Shli(tmpA, 7, 3)
			b.Add(tmpA, tmpA, 20)
			b.St(10, tmpA, 0)
			b.St(8, tmpB, 0)
			b.Mov(6, 7)
			b.Label(lvl + "_done")
			// Dereference the winning key as an event-object pointer
			// (loaded-data-dependent address, like omnetpp's event call).
			b.OpI(isa.ANDI, 12, 8, (n-1)*8)
			b.Add(12, 12, 20)
			b.Ld(13, 12, 0)
			b.Add(15, 15, 13)
		}
	})
	return b.MustBuild()
}

// buildXalancbmk: scan a 256 KiB byte buffer counting pattern matches.
func buildXalancbmk(iters int64) *isa.Program {
	const base, n = 0x100000, 1 << 18
	b := asm.NewBuilder("xalancbmk")
	rng := rand.New(rand.NewSource(5))
	bytes := make([]byte, n)
	rng.Read(bytes)
	b.Data(base, bytes)
	b.Movi(20, base)
	b.Movi(5, 0) // cursor
	b.Movi(6, 0) // matches
	outer(b, iters, func() {
		b.Add(tmpA, 20, 5)
		b.Ldb(7, tmpA, 0)
		b.Ldb(8, tmpA, 1)
		b.OpI(isa.XORI, 9, 7, '<')
		b.Bne(9, isa.Zero, "nomatch")
		b.OpI(isa.XORI, 9, 8, '/')
		b.Bne(9, isa.Zero, "nomatch")
		b.OpI(isa.ADDI, 6, 6, 1)
		b.Label("nomatch")
		// DOM-style hop: the scanned byte pair selects the next subtree
		// (a loaded-data-dependent address, like following a child link).
		b.Shli(10, 7, 8)
		b.Or(10, 10, 8)
		b.Shli(10, 10, 2)
		b.OpI(isa.ANDI, 10, 10, n-8)
		b.Add(10, 10, 20)
		b.Ld(11, 10, 0)
		b.Add(6, 6, 11)
		b.OpI(isa.ADDI, 5, 5, 2)
		b.OpI(isa.ANDI, 5, 5, n-4)
	})
	return b.MustBuild()
}

// buildX264: 8-byte SAD over two frame rows.
func buildX264(iters int64) *isa.Program {
	const refBase, curBase, n = 0x100000, 0x180000, 1 << 16
	b := asm.NewBuilder("x264")
	rng := rand.New(rand.NewSource(6))
	ref := make([]byte, n)
	cur := make([]byte, n)
	rng.Read(ref)
	rng.Read(cur)
	b.Data(refBase, ref)
	b.Data(curBase, cur)
	b.Movi(20, refBase)
	b.Movi(21, curBase)
	b.Movi(5, 0) // offset
	b.Movi(6, 0) // SAD accumulator
	outer(b, iters, func() {
		for i := int64(0); i < 4; i++ {
			b.Add(tmpA, 20, 5)
			b.Add(tmpB, 21, 5)
			b.Ldb(7, tmpA, i)
			b.Ldb(8, tmpB, i)
			// |a-b| via MAX-MIN (branch-free, like SIMD SAD)
			b.Op3(isa.MAXU, 9, 7, 8)
			b.Op3(isa.MINU, 10, 7, 8)
			b.Sub(9, 9, 10)
			b.Add(6, 6, 9)
		}
		b.OpI(isa.ADDI, 5, 5, 4)
		b.OpI(isa.ANDI, 5, 5, n-8)
	})
	return b.MustBuild()
}

// buildDeepsjeng: bitboard manipulation with bit-test branches.
func buildDeepsjeng(iters int64) *isa.Program {
	const base, n = 0x100000, 1 << 12
	b := asm.NewBuilder("deepsjeng")
	b.DataQuads(base, randQuads(7, n))
	b.Movi(20, base)
	b.Movi(5, 0x0F0F0F0F0F0F0F0F)
	b.Movi(6, 0) // index
	b.Movi(11, 0)
	outer(b, iters, func() {
		b.Shli(tmpA, 6, 3)
		b.Add(tmpA, tmpA, 20)
		b.Ld(7, tmpA, 0) // bitboard
		// attacks = (bb << 9 | bb >> 7) & mask
		b.Shli(8, 7, 9)
		b.Shri(9, 7, 7)
		b.Or(8, 8, 9)
		b.And(8, 8, 5)
		// if (bb & attacks) capture++
		b.And(9, 7, 8)
		b.Beq(9, isa.Zero, "nocap")
		b.OpI(isa.ADDI, 11, 11, 1)
		b.Xor(7, 7, 9)
		b.St(7, tmpA, 0)
		b.Label("nocap")
		b.OpI(isa.ADDI, 6, 6, 1)
		b.OpI(isa.ANDI, 6, 6, n-1)
	})
	return b.MustBuild()
}

// buildLeela: random walk over a 64 KiB "board" with occasional writes.
func buildLeela(iters int64) *isa.Program {
	const base, n = 0x100000, 1 << 13
	b := asm.NewBuilder("leela")
	b.DataQuads(base, randQuads(8, n))
	b.Movi(20, base)
	b.Movi(5, 0x123456789)
	b.Movi(6, 0)
	b.Movi(12, 0) // walk position, fed by loaded data (tainted addresses)
	outer(b, iters, func() {
		emitXorshift(b, 5, tmpA)
		// Half the steps walk through loaded data (the playout follows the
		// board state), half jump to a fresh pseudo-random position.
		b.OpI(isa.ANDI, 9, 5, 1)
		b.Beq(9, isa.Zero, "fresh")
		b.OpI(isa.ANDI, 7, 12, n-1)
		b.Jump("step")
		b.Label("fresh")
		b.OpI(isa.ANDI, 7, 5, n-1)
		b.Label("step")
		b.Shli(7, 7, 3)
		b.Add(7, 7, 20)
		b.Ld(8, 7, 0) // board cell: next position lives in the data
		b.Mov(12, 8)
		b.Add(6, 6, 8)
		// ~25% of visits update the cell with a public value
		b.OpI(isa.ANDI, 9, 5, 3)
		b.Bne(9, isa.Zero, "nowrite")
		b.St(5, 7, 0)
		b.Label("nowrite")
	})
	return b.MustBuild()
}

// buildXZ: hashed match-finder over a byte history buffer.
func buildXZ(iters int64) *isa.Program {
	const histBase, n = 0x100000, 1 << 17
	const hashBase, hslots = 0x200000, 1 << 12
	b := asm.NewBuilder("xz")
	rng := rand.New(rand.NewSource(9))
	hist := make([]byte, n)
	rng.Read(hist)
	// Plant repeats so matches actually occur.
	for i := 0; i+32 < n; i += 512 {
		copy(hist[i+256:i+288], hist[i:i+32])
	}
	b.Data(histBase, hist)
	b.DataQuads(hashBase, make([]uint64, hslots))
	b.Movi(20, histBase)
	b.Movi(21, hashBase)
	b.Movi(5, 0) // position
	b.Movi(6, 0) // total match length
	outer(b, iters, func() {
		// h = hash of 4 bytes at pos
		b.Add(tmpA, 20, 5)
		b.Ldw(7, tmpA, 0)
		b.OpI(isa.ORI, 7, 7, 1)
		b.Movi(tmpB, 2654435761)
		b.Op3(isa.MUL, 7, 7, tmpB)
		b.Shri(7, 7, 20)
		b.OpI(isa.ANDI, 7, 7, hslots-1)
		b.Shli(7, 7, 3)
		b.Add(7, 7, 21)
		b.Ld(8, 7, 0) // candidate position
		b.St(5, 7, 0) // update hash head
		// compare up to 4 bytes at candidate vs pos
		b.Add(9, 20, 8)
		b.Movi(10, 0) // match length
		for i := int64(0); i < 4; i++ {
			b.Ldb(11, tmpA, i)
			b.Ldb(12, 9, i)
			b.Bne(11, 12, "mismatch")
			b.OpI(isa.ADDI, 10, 10, 1)
		}
		b.Label("mismatch")
		b.Add(6, 6, 10)
		b.OpI(isa.ADDI, 5, 5, 5)
		b.OpI(isa.ANDI, 5, 5, n-16)
	})
	return b.MustBuild()
}

// buildExchange2: recursive permutation-style search, call heavy.
func buildExchange2(iters int64) *isa.Program {
	const base = 0x100000
	b := asm.NewBuilder("exchange2")
	b.DataQuads(base, randQuads(10, 64))
	b.Movi(20, base)
	b.Movi(isa.SP, 0x300000)
	b.Movi(6, 0)
	b.Jump("start")

	// recurse(depth=r10): sums grid cells, recursing twice until depth 0.
	b.Label("recurse")
	b.Beq(10, isa.Zero, "base_case")
	// push ra, depth
	b.OpI(isa.ADDI, isa.SP, isa.SP, -16)
	b.St(isa.RA, isa.SP, 0)
	b.St(10, isa.SP, 8)
	b.OpI(isa.ADDI, 10, 10, -1)
	b.Call("recurse")
	b.Ld(10, isa.SP, 8)
	b.OpI(isa.ADDI, 10, 10, -1)
	b.Call("recurse")
	b.Ld(isa.RA, isa.SP, 0)
	b.OpI(isa.ADDI, isa.SP, isa.SP, 16)
	b.Ret()
	b.Label("base_case")
	b.OpI(isa.ANDI, tmpA, 6, 63)
	b.Shli(tmpA, tmpA, 3)
	b.Add(tmpA, tmpA, 20)
	b.Ld(7, tmpA, 0)
	b.Add(6, 6, 7)
	b.Ret()

	b.Label("start")
	outer(b, iters, func() {
		b.Movi(10, 5) // depth 5: 2^5 calls per outer iteration
		b.Call("recurse")
	})
	return b.MustBuild()
}

// buildBwaves: streaming 3-point stencil over a 4 MiB array.
func buildBwaves(iters int64) *isa.Program {
	const base, n = 0x400000, 1 << 19 // 512K quads = 4 MiB
	b := asm.NewBuilder("bwaves")
	b.DataQuads(base, randQuads(11, 1<<12)) // seed only the first 32 KiB
	b.Movi(20, base)
	b.Movi(5, 0)
	b.Movi(6, 0)
	outer(b, iters, func() {
		b.Shli(tmpA, 5, 3)
		b.Add(tmpA, tmpA, 20)
		b.Ld(7, tmpA, 0)
		b.Ld(8, tmpA, 8)
		b.Ld(9, tmpA, 16)
		b.Add(10, 7, 9)
		b.Shri(10, 10, 1)
		b.Add(10, 10, 8)
		b.St(10, tmpA, 8)
		b.Add(6, 6, 10)
		b.OpI(isa.ADDI, 5, 5, 4)
		b.OpI(isa.ANDI, 5, 5, n-8)
	})
	return b.MustBuild()
}

// buildLBM: lattice update reading three distributions, writing two.
func buildLBM(iters int64) *isa.Program {
	const aBase, bBase, cBase, n = 0x400000, 0x500000, 0x600000, 1 << 14
	b := asm.NewBuilder("lbm")
	b.DataQuads(aBase, randQuads(12, n))
	b.DataQuads(bBase, randQuads(13, n))
	b.DataQuads(cBase, randQuads(14, n))
	b.Movi(20, aBase)
	b.Movi(21, bBase)
	b.Movi(22, cBase)
	b.Movi(5, 0)
	outer(b, iters, func() {
		b.Shli(tmpA, 5, 3)
		b.Add(6, tmpA, 20)
		b.Add(7, tmpA, 21)
		b.Add(8, tmpA, 22)
		b.Ld(9, 6, 0)
		b.Ld(10, 7, 0)
		b.Ld(11, 8, 0)
		b.Add(12, 9, 10)
		b.Sub(13, 12, 11)
		b.Shri(14, 13, 2)
		b.St(13, 6, 0)
		b.St(14, 7, 0)
		b.OpI(isa.ADDI, 5, 5, 1)
		b.OpI(isa.ANDI, 5, 5, n-1)
	})
	return b.MustBuild()
}

// buildNAMD: multiply-dense pairwise "force" arithmetic on an L1-resident
// particle set.
func buildNAMD(iters int64) *isa.Program {
	const base, n = 0x100000, 1 << 9 // 4 KiB: L1 resident
	b := asm.NewBuilder("namd")
	b.DataQuads(base, randQuads(15, n))
	b.Movi(20, base)
	b.Movi(5, 0)
	b.Movi(6, 1)
	outer(b, iters, func() {
		b.Shli(tmpA, 5, 3)
		b.Add(tmpA, tmpA, 20)
		b.Ld(7, tmpA, 0)
		b.Ld(8, tmpA, 8)
		b.Sub(9, 7, 8)
		b.Op3(isa.MUL, 10, 9, 9) // r^2
		b.OpI(isa.ORI, 10, 10, 1)
		b.Op3(isa.MUL, 11, 10, 9)  // r^3
		b.Op3(isa.MUL, 12, 11, 10) // r^5
		b.Add(6, 6, 12)
		b.Op3(isa.MUL, 6, 6, 10)
		b.OpI(isa.ADDI, 5, 5, 1)
		b.OpI(isa.ANDI, 5, 5, n-4)
	})
	return b.MustBuild()
}

// buildParest: sparse matrix-vector: index array then dependent data load.
func buildParest(iters int64) *isa.Program {
	const idxBase, valBase, vecBase = 0x100000, 0x200000, 0x300000
	const nnz, cols = 1 << 14, 1 << 15
	b := asm.NewBuilder("parest")
	rng := rand.New(rand.NewSource(16))
	idx := make([]uint64, nnz)
	for i := range idx {
		idx[i] = uint64(rng.Intn(cols))
	}
	b.DataQuads(idxBase, idx)
	b.DataQuads(valBase, randQuads(17, nnz))
	b.DataQuads(vecBase, randQuads(18, cols))
	b.Movi(20, idxBase)
	b.Movi(21, valBase)
	b.Movi(22, vecBase)
	b.Movi(5, 0)
	b.Movi(6, 0)
	outer(b, iters, func() {
		b.Shli(tmpA, 5, 3)
		b.Add(7, tmpA, 20)
		b.Ld(8, 7, 0) // column index
		b.Add(9, tmpA, 21)
		b.Ld(10, 9, 0) // matrix value
		b.Shli(8, 8, 3)
		b.Add(8, 8, 22)
		b.Ld(11, 8, 0) // x[col] — dependent, scattered
		b.Op3(isa.MUL, 12, 10, 11)
		b.Add(6, 6, 12)
		b.OpI(isa.ADDI, 5, 5, 1)
		b.OpI(isa.ANDI, 5, 5, nnz-1)
	})
	return b.MustBuild()
}

// buildPovray: MUL/DIV-heavy discriminant evaluation with a branch on the
// sign.
func buildPovray(iters int64) *isa.Program {
	const base, n = 0x100000, 1 << 11
	b := asm.NewBuilder("povray")
	b.DataQuads(base, randQuads(19, n))
	b.Movi(20, base)
	b.Movi(5, 0)
	b.Movi(6, 0)
	outer(b, iters, func() {
		b.Shli(tmpA, 5, 3)
		b.Add(tmpA, tmpA, 20)
		b.Ld(7, tmpA, 0)        // a
		b.Ld(8, tmpA, 8)        // c
		b.Op3(isa.MUL, 9, 7, 7) // b^2-ish
		b.Op3(isa.MUL, 10, 7, 8)
		b.Sub(11, 9, 10) // discriminant
		b.Blt(11, isa.Zero, "miss")
		b.OpI(isa.ORI, 12, 7, 1)
		b.Op3(isa.DIV, 13, 11, 12) // hit distance
		b.Add(6, 6, 13)
		b.Label("miss")
		b.OpI(isa.ADDI, 5, 5, 2)
		b.OpI(isa.ANDI, 5, 5, n-2)
	})
	return b.MustBuild()
}

// buildFotonik: 3-D stencil: plane-strided loads over a 2 MiB grid.
func buildFotonik(iters int64) *isa.Program {
	const base = 0x400000
	const dim = 64 // 64^3 quads = 2 MiB
	const n = dim * dim * dim
	b := asm.NewBuilder("fotonik3d")
	b.DataQuads(base, randQuads(20, 1<<12))
	b.Movi(20, base)
	b.Movi(5, dim*dim+dim) // start inside the grid
	b.Movi(6, 0)
	outer(b, iters, func() {
		b.Shli(tmpA, 5, 3)
		b.Add(tmpA, tmpA, 20)
		b.Ld(7, tmpA, 0)
		b.Ld(8, tmpA, 8)          // +x
		b.Ld(9, tmpA, dim*8)      // +y
		b.Ld(10, tmpA, dim*dim*8) // +z
		b.Add(11, 8, 9)
		b.Add(11, 11, 10)
		b.Shri(11, 11, 1)
		b.Sub(11, 11, 7)
		b.St(11, tmpA, 0)
		b.Add(6, 6, 11)
		b.OpI(isa.ADDI, 5, 5, 7) // stride through the volume
		b.OpI(isa.ANDI, 5, 5, n-dim*dim-dim-2)
	})
	return b.MustBuild()
}
