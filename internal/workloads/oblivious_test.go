package workloads_test

import (
	"fmt"
	"testing"

	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/workloads"
)

// observableTrace runs prog on the UNPROTECTED core and records every
// observable memory event with its cycle.
func observableTrace(t *testing.T, prog *isa.Program) []string {
	t.Helper()
	c, err := pipeline.New(pipeline.DefaultConfig(), prog, mem.NewHierarchy(mem.DefaultHierarchyConfig()), nil)
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	c.Observer = func(kind byte, cycle, addr uint64) {
		trace = append(trace, fmt.Sprintf("%c@%d:%#x", kind, cycle, addr))
	}
	if err := c.Run(2_000_000, 50_000_000); err != nil {
		t.Fatal(err)
	}
	if !c.Finished() {
		t.Fatal("did not finish")
	}
	return trace
}

// TestConstTimeKernelsAreDataOblivious proves the three kernels deserve
// the name: on the *unprotected* machine, the full observable event trace
// (which addresses are touched, when) is identical across different secret
// inputs. This is the precondition for the paper's constant-time story —
// such code leaks nothing non-speculatively, so SPT keeps its secrets
// tainted forever while still running it at full speed.
func TestConstTimeKernelsAreDataOblivious(t *testing.T) {
	variants := map[string][2]*isa.Program{
		"chacha20": {
			workloads.BuildChaCha20Keyed(3, [32]byte{1, 2, 3, 4}),
			workloads.BuildChaCha20Keyed(3, [32]byte{0xFF, 0xEE, 0xDD}),
		},
		"aes-bitslice": {
			workloads.BuildBitsliceAESSeeded(3, 1001),
			workloads.BuildBitsliceAESSeeded(3, 2002),
		},
		"djbsort": {
			workloads.BuildDjbsortSeeded(2, 3003),
			workloads.BuildDjbsortSeeded(2, 4004),
		},
	}
	for name, progs := range variants {
		a := observableTrace(t, progs[0])
		b := observableTrace(t, progs[1])
		if len(a) != len(b) {
			t.Errorf("%s: trace lengths differ across secrets: %d vs %d", name, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: observable traces diverge at event %d: %q vs %q", name, i, a[i], b[i])
				break
			}
		}
	}
}

// TestSPECKernelsAreNotDataOblivious is the control: the SPEC-like kernels
// do leak their data through addresses/branches (that is the point — their
// data is non-speculatively public, which is what SPT exploits).
func TestSPECKernelsAreNotDataOblivious(t *testing.T) {
	// perlbench's probe addresses depend on the key stream, which depends
	// on the embedded data... the key stream is actually seed-driven from
	// registers. Use leela, whose walk follows loaded board data.
	a := observableTrace(t, rebuildWithData(t, "leela"))
	b := observableTrace(t, buildDefault(t, "leela"))
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Skip("traces identical (data coincidence); not a failure")
	}
}

func buildDefault(t *testing.T, name string) *isa.Program {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.Build(40)
}

// rebuildWithData builds the same kernel but patches its data image.
func rebuildWithData(t *testing.T, name string) *isa.Program {
	t.Helper()
	p := buildDefault(t, name)
	// Perturb the data segments: flip bytes in the largest segment.
	clone := *p
	clone.Data = make([]isa.Segment, len(p.Data))
	copy(clone.Data, p.Data)
	big := 0
	for i, s := range clone.Data {
		if len(s.Bytes) > len(clone.Data[big].Bytes) {
			big = i
		}
	}
	perturbed := make([]byte, len(clone.Data[big].Bytes))
	copy(perturbed, clone.Data[big].Bytes)
	for i := range perturbed {
		perturbed[i] ^= 0x5A
	}
	clone.Data[big] = isa.Segment{Addr: clone.Data[big].Addr, Bytes: perturbed}
	return &clone
}
