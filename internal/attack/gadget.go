package attack

import (
	"spt/internal/asm"
	"spt/internal/isa"
)

// Memory layout shared by every gadget: the hand-written penetration tests
// below and the generated programs in internal/fuzz. Exported so the fuzzer
// composes gadgets against the same addresses the cache-probe receiver
// (Probe) and the corpus reproducers assume.
const (
	// ArrayBase is the victim array A used by bounds-bypass gadgets.
	ArrayBase = 0x10000
	// ArrayLen is A's element count (8 bytes each).
	ArrayLen = 16
	// SecretAddr holds the secret byte, just past the victim array.
	SecretAddr = ArrayBase + ArrayLen*8 + 64
	// SlowPtrAddr is a pointer cell chased to reach SlowCellAddr; the two
	// serialized cold misses give every gadget its misprediction window.
	SlowPtrAddr = 0x20000
	// SlowCellAddr holds the gadget-specific guard value (an array length,
	// a branch guard, a jump displacement, or a store target).
	SlowCellAddr = 0x20400
	// ProbeBase and ProbeLine describe the receiver's 256-line probe array.
	ProbeBase = 0x100000
	ProbeLine = 64
)

// Kit builds secret-parameterized transient-execution gadgets on top of an
// asm.Builder. It owns the standard data image — the secret byte, and a
// pointer-chase pair whose final cell ("the slow cell") resolves only after
// two serialized DRAM misses — and provides the emission helpers the
// hand-written attacks and the fuzzer's primitive library share. Code is
// emitted through the embedded builder; the data segments materialize at
// Build time so the slow-cell value can be chosen after the code that
// depends on it (e.g. a jump displacement) has been measured.
type Kit struct {
	// B is the underlying program builder, exposed for direct emission.
	B *asm.Builder

	secret      byte
	slow        uint64
	victimArray bool
}

// NewKit starts a gadget program holding the given secret byte at
// SecretAddr.
func NewKit(name string, secret byte) *Kit {
	return &Kit{B: asm.NewBuilder(name), secret: secret}
}

// SetSlowCell sets the value the two-miss pointer chase resolves to.
func (k *Kit) SetSlowCell(v uint64) *Kit {
	k.slow = v
	return k
}

// VictimArray adds the bounds-checked victim array A at ArrayBase.
func (k *Kit) VictimArray() *Kit {
	k.victimArray = true
	return k
}

// OOBIndex is the attacker-controlled index that steers A[i] onto the
// secret byte (for 8-byte-element indexing with a byte load).
func OOBIndex() int64 { return (SecretAddr - ArrayBase) / 8 }

// EmitProbeBase emits dst = ProbeBase.
func (k *Kit) EmitProbeBase(dst isa.Reg) *Kit {
	k.B.Movi(dst, ProbeBase)
	return k
}

// EmitSlowLoad emits the serialized pointer chase: dst holds the slow-cell
// value only after two dependent cold misses. Every speculation primitive
// uses it to keep its resolving instruction unresolved long enough for the
// transient gadget to run.
func (k *Kit) EmitSlowLoad(dst isa.Reg) *Kit {
	k.B.Movi(dst, SlowPtrAddr)
	k.B.Ld(dst, dst, 0)
	k.B.Ld(dst, dst, 0)
	return k
}

// EmitLoadSecret emits a direct, non-speculative load of the secret byte
// into dst (clobbering addrTmp with the secret's address).
func (k *Kit) EmitLoadSecret(dst, addrTmp isa.Reg) *Kit {
	k.B.Movi(addrTmp, SecretAddr)
	k.B.Ldb(dst, addrTmp, 0)
	return k
}

// EmitTransmitLoad emits the load transmitter: a line-stride encode of val
// into the probe array, ld probe[val*64]. tmp is clobbered; probe must hold
// ProbeBase.
func (k *Kit) EmitTransmitLoad(val, tmp, probe isa.Reg) *Kit {
	k.B.Shli(tmp, val, 6)
	k.B.Add(tmp, tmp, probe)
	k.B.Ld(tmp, tmp, 0)
	return k
}

// EmitTransmitStore emits the store transmitter: a page-stride encode of
// val into a store address, st probe[val*4096]. The store's address
// translation is the observable event, so the stride matches the
// page-masked 'T' observation. tmp is clobbered; probe must hold ProbeBase.
func (k *Kit) EmitTransmitStore(val, tmp, probe isa.Reg) *Kit {
	k.B.Shli(tmp, val, 12)
	k.B.Add(tmp, tmp, probe)
	k.B.Stb(isa.Zero, tmp, 0)
	return k
}

// Build materializes the data image and resolves labels.
func (k *Kit) Build() (*isa.Program, error) {
	k.B.Data(SecretAddr, []byte{k.secret})
	k.B.DataQuads(SlowPtrAddr, []uint64{SlowCellAddr})
	k.B.DataQuads(SlowCellAddr, []uint64{k.slow})
	if k.victimArray {
		quads := make([]uint64, ArrayLen)
		for i := range quads {
			quads[i] = uint64(i + 1)
		}
		k.B.DataQuads(ArrayBase, quads)
	}
	return k.B.Build()
}

// MustBuild is Build that panics on error, for statically-known gadgets.
func (k *Kit) MustBuild() *isa.Program {
	p, err := k.Build()
	if err != nil {
		panic(err)
	}
	return p
}
