// Package attack contains the penetration tests from the paper's
// evaluation (§9.1): a Spectre V1 bounds-bypass attack on
// speculatively-accessed data, and an attack on a *non-speculative secret*
// held by constant-time code — the case STT does not protect and SPT does.
// The gadget scaffolding (memory layout, slow-resolving guards, probe-array
// transmitters) lives in the Kit in gadget.go and is shared with the
// differential leakage fuzzer in internal/fuzz.
//
// The attacker's receiver is a cache-occupancy probe: after the victim
// runs, it checks which line of a 256-line probe array became resident.
// Probe line v resident <=> the transient transmitter executed with secret
// value v.
package attack

import (
	"fmt"

	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/pipeline"
)

// SpectreV1Program builds the classic bounds-bypass victim,
// if (i < N) transmit(A[i]), with secret placed just past the array. The
// bounds value N is loaded from memory (a cold miss), so the bounds check
// resolves slowly; the first dynamic instance of the branch has no
// predictor state and is predicted not-taken (fall-through into the
// gadget), giving a deterministic misprediction window.
func SpectreV1Program(secret byte) *isa.Program {
	k := NewKit("spectre-v1", secret)
	k.VictimArray().SetSlowCell(ArrayLen)
	b := k.B
	b.Movi(1, ArrayBase)  // r1 = A
	b.Movi(3, OOBIndex()) // r3 = attacker-controlled index (out of bounds)
	k.EmitProbeBase(8)    // r8 = probe array
	k.EmitSlowLoad(4)     // r4 = N, only after two serialized misses
	b.Bgeu(3, 4, "done")  // bounds check: architecturally TAKEN (i >= N)
	b.Shli(5, 3, 3)
	b.Add(5, 5, 1)
	b.Ldb(6, 5, 0)              // transient out-of-bounds read of the secret
	k.EmitTransmitLoad(6, 7, 8) // transmitter: touches probe line <secret>
	b.Label("done")
	b.Halt()
	return k.MustBuild()
}

// NonSpecSecretProgram builds the constant-time-victim scenario from §3:
// the secret is read into a register *non-speculatively* and only used in
// data-oblivious computation, so it never leaks in any correct execution.
// A mispredicted branch then transiently steers execution into a transmit
// gadget that encodes the secret register into the probe array.
//
// STT does not protect this (the secret is non-speculatively accessed);
// SPT taints it until it is non-speculatively leaked — which never
// happens — so the gadget's transmitter is delayed until squash.
func NonSpecSecretProgram(secret byte) *isa.Program {
	k := NewKit("nonspec-secret", secret)
	k.SetSlowCell(1)
	b := k.B
	k.EmitLoadSecret(9, 1) // SECRET loaded non-speculatively (retires normally)
	k.EmitProbeBase(8)     // r8 = probe array
	// Constant-time computation over the secret: no secret-dependent
	// branches or addresses (data-oblivious).
	b.Xori(10, 9, 0x5A)
	b.Andi(10, 10, 0x7F)
	b.Add(11, 10, 10)
	// Attacker-influenced control flow: the guard value arrives from a
	// cold load, and the first dynamic branch instance mispredicts
	// not-taken, transiently running the gadget below.
	k.EmitSlowLoad(4)           // r4 = guard = 1, after two serialized misses
	b.Bne(4, 0, "done")         // architecturally TAKEN (guard != 0)
	k.EmitTransmitLoad(9, 7, 8) // transmitter on the non-speculative secret
	b.Label("done")
	b.Halt()
	return k.MustBuild()
}

// Result describes what the receiver observed after a victim run.
type Result struct {
	// Leaked reports whether exactly one probe line was resident.
	Leaked bool
	// Value is the leaked byte when Leaked.
	Value byte
	// ResidentLines counts probe lines found in the cache.
	ResidentLines int
}

// Run executes the victim under the given policy and model, then probes
// the cache. The probe checks L1D, L2 and L3 residency (Flush+Reload-style
// receivers see any level).
func Run(prog *isa.Program, model pipeline.AttackModel, pol pipeline.Policy) (Result, error) {
	cfg := pipeline.DefaultConfig()
	cfg.Model = model
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	core, err := pipeline.New(cfg, prog, hier, pol)
	if err != nil {
		return Result{}, err
	}
	if err := core.Run(10_000_000, 100_000_000); err != nil {
		return Result{}, err
	}
	if !core.Finished() {
		return Result{}, fmt.Errorf("attack: victim did not finish")
	}
	return Probe(hier), nil
}

// Probe inspects the cache for resident probe lines.
func Probe(hier *mem.Hierarchy) Result {
	var res Result
	for v := 0; v < 256; v++ {
		addr := uint64(ProbeBase + v*ProbeLine)
		_, inL1 := hier.L1D.Probe(addr)
		_, inL2 := hier.L2.Probe(addr)
		_, inL3 := hier.L3.Probe(addr)
		if inL1 || inL2 || inL3 {
			res.ResidentLines++
			res.Value = byte(v)
		}
	}
	res.Leaked = res.ResidentLines == 1
	return res
}

// ObservationTrace runs prog and records every observable memory-system
// event (load line accesses, store translations, retirement writes) with
// its cycle. Identical traces across secret values mean the secret is
// unobservable (Definition 1's observational-determinism reading).
func ObservationTrace(prog *isa.Program, model pipeline.AttackModel, pol pipeline.Policy) ([]string, error) {
	cfg := pipeline.DefaultConfig()
	cfg.Model = model
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	core, err := pipeline.New(cfg, prog, hier, pol)
	if err != nil {
		return nil, err
	}
	var trace []string
	core.Observer = func(kind byte, cycle uint64, addr uint64) {
		trace = append(trace, fmt.Sprintf("%c@%d:%#x", kind, cycle, addr))
	}
	if err := core.Run(10_000_000, 100_000_000); err != nil {
		return nil, err
	}
	if !core.Finished() {
		return nil, fmt.Errorf("attack: victim did not finish")
	}
	return trace, nil
}
