// Package attack contains the penetration tests from the paper's
// evaluation (§9.1): a Spectre V1 bounds-bypass attack on
// speculatively-accessed data, and an attack on a *non-speculative secret*
// held by constant-time code — the case STT does not protect and SPT does.
//
// The attacker's receiver is a cache-occupancy probe: after the victim
// runs, it checks which line of a 256-line probe array became resident.
// Probe line v resident <=> the transient transmitter executed with secret
// value v.
package attack

import (
	"fmt"

	"spt/internal/asm"
	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/pipeline"
)

// Layout constants shared by the gadget programs.
const (
	arrayBase   = 0x10000                     // victim array A
	arrayLen    = 16                          // elements (8 bytes each)
	secretAddr  = arrayBase + arrayLen*8 + 64 // out-of-bounds secret location
	boundsAddr  = 0x20000                     // pointer to the bounds cell (chased)
	boundsAddr2 = 0x20400                     // memory cell holding the array length
	probeBase   = 0x100000
	probeLine   = 64
)

// SpectreV1Program builds the classic bounds-bypass victim,
// if (i < N) transmit(A[i]), with secret placed just past the array. The
// bounds value N is loaded from memory (a cold miss), so the bounds check
// resolves slowly; the first dynamic instance of the branch has no
// predictor state and is predicted not-taken (fall-through into the
// gadget), giving a deterministic misprediction window.
func SpectreV1Program(secret byte) *isa.Program {
	oobIndex := (secretAddr - arrayBase) / 8
	src := fmt.Sprintf(`
.data %#x
.quad 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
.data %#x
.byte %d
.data %#x
.quad %#x
.data %#x
.quad %d
.text
  movi r1, %#x       ; A
  movi r2, %#x       ; &&N
  movi r3, %d        ; attacker-controlled index (out of bounds)
  movi r8, %#x       ; probe array
  ld r4, 0(r2)       ; chase 1 (cold miss)
  ld r4, 0(r4)       ; N arrives only after two serialized misses
  bgeu r3, r4, done  ; bounds check: architecturally TAKEN (i >= N)
  shli r5, r3, 3
  add r5, r5, r1
  ldb r6, 0(r5)      ; transient out-of-bounds read of the secret
  shli r7, r6, 6     ; line-stride encode
  add r7, r7, r8
  ld r9, 0(r7)       ; transmitter: touches probe line <secret>
done:
  halt
`, arrayBase, secretAddr, secret, boundsAddr, boundsAddr2, boundsAddr2, arrayLen,
		arrayBase, boundsAddr, oobIndex, probeBase)
	return asm.MustAssemble("spectre-v1", src)
}

// NonSpecSecretProgram builds the constant-time-victim scenario from §3:
// the secret is read into a register *non-speculatively* and only used in
// data-oblivious computation, so it never leaks in any correct execution.
// A mispredicted branch then transiently steers execution into a transmit
// gadget that encodes the secret register into the probe array.
//
// STT does not protect this (the secret is non-speculatively accessed);
// SPT taints it until it is non-speculatively leaked — which never
// happens — so the gadget's transmitter is delayed until squash.
func NonSpecSecretProgram(secret byte) *isa.Program {
	src := fmt.Sprintf(`
.data %#x
.byte %d
.data %#x
.quad %#x
.data %#x
.quad 1
.text
  movi r1, %#x       ; &secret
  movi r8, %#x       ; probe array
  ldb r9, 0(r1)      ; SECRET loaded non-speculatively (retires normally)
  ; --- constant-time computation over the secret: no secret-dependent
  ;     branches or addresses (data-oblivious) ---
  xori r10, r9, 0x5A
  andi r10, r10, 0x7F
  add r11, r10, r10
  ; --- attacker-influenced control flow: the guard value arrives from a
  ;     cold load, and the first dynamic branch instance mispredicts
  ;     not-taken, transiently running the gadget below ---
  movi r2, %#x
  ld r4, 0(r2)       ; chase 1 (cold miss)
  ld r4, 0(r4)       ; guard = 1, after two serialized misses
  bne r4, r0, done   ; architecturally TAKEN (guard != 0)
  ; transient gadget: transmit(secret)
  shli r7, r9, 6
  add r7, r7, r8
  ld r12, 0(r7)      ; transmitter on the non-speculative secret
done:
  halt
`, secretAddr, secret, boundsAddr, boundsAddr2, boundsAddr2, secretAddr, probeBase, boundsAddr)
	return asm.MustAssemble("nonspec-secret", src)
}

// Result describes what the receiver observed after a victim run.
type Result struct {
	// Leaked reports whether exactly one probe line was resident.
	Leaked bool
	// Value is the leaked byte when Leaked.
	Value byte
	// ResidentLines counts probe lines found in the cache.
	ResidentLines int
}

// Run executes the victim under the given policy and model, then probes
// the cache. The probe checks L1D, L2 and L3 residency (Flush+Reload-style
// receivers see any level).
func Run(prog *isa.Program, model pipeline.AttackModel, pol pipeline.Policy) (Result, error) {
	cfg := pipeline.DefaultConfig()
	cfg.Model = model
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	core, err := pipeline.New(cfg, prog, hier, pol)
	if err != nil {
		return Result{}, err
	}
	if err := core.Run(10_000_000, 100_000_000); err != nil {
		return Result{}, err
	}
	if !core.Finished() {
		return Result{}, fmt.Errorf("attack: victim did not finish")
	}
	return Probe(hier), nil
}

// Probe inspects the cache for resident probe lines.
func Probe(hier *mem.Hierarchy) Result {
	var res Result
	for v := 0; v < 256; v++ {
		addr := uint64(probeBase + v*probeLine)
		_, inL1 := hier.L1D.Probe(addr)
		_, inL2 := hier.L2.Probe(addr)
		_, inL3 := hier.L3.Probe(addr)
		if inL1 || inL2 || inL3 {
			res.ResidentLines++
			res.Value = byte(v)
		}
	}
	res.Leaked = res.ResidentLines == 1
	return res
}

// ObservationTrace runs prog and records every observable memory-system
// event (load line accesses, store translations, retirement writes) with
// its cycle. Identical traces across secret values mean the secret is
// unobservable (Definition 1's observational-determinism reading).
func ObservationTrace(prog *isa.Program, model pipeline.AttackModel, pol pipeline.Policy) ([]string, error) {
	cfg := pipeline.DefaultConfig()
	cfg.Model = model
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	core, err := pipeline.New(cfg, prog, hier, pol)
	if err != nil {
		return nil, err
	}
	var trace []string
	core.Observer = func(kind byte, cycle uint64, addr uint64) {
		trace = append(trace, fmt.Sprintf("%c@%d:%#x", kind, cycle, addr))
	}
	if err := core.Run(10_000_000, 100_000_000); err != nil {
		return nil, err
	}
	if !core.Finished() {
		return nil, fmt.Errorf("attack: victim did not finish")
	}
	return trace, nil
}
