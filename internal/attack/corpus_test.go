// Regression tests driving the fuzz corpus through this package's
// observation-trace machinery directly. The reproducers under
// testdata/fuzz/ were found by fuzzing campaigns and minimized to a
// handful of instructions; each one pins a concrete speculation leak (or
// a defense blocking it) the way the hand-written penetration tests in
// attack.go pin the paper's §9.1 attacks. The full scheme x model grid is
// re-checked in internal/fuzz; here we exercise the two headline cells.
package attack_test

import (
	"testing"

	"spt/internal/attack"
	"spt/internal/fuzz"
)

func TestCorpusAgainstUnsafeAndSPT(t *testing.T) {
	entries, err := fuzz.LoadCorpus("../../testdata/fuzz")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus reproducers found in testdata/fuzz")
	}
	diverges := func(t *testing.T, e fuzz.CorpusEntry, scheme string) bool {
		t.Helper()
		model, err := fuzz.ModelByName("futuristic")
		if err != nil {
			t.Fatal(err)
		}
		pa := fuzz.PatchSecret(e.Prog, fuzz.SecretA)
		pb := fuzz.PatchSecret(e.Prog, fuzz.SecretB)
		var traces [2][]string
		polA, err := fuzz.PolicyByName(scheme)
		if err != nil {
			t.Fatal(err)
		}
		polB, err := fuzz.PolicyByName(scheme)
		if err != nil {
			t.Fatal(err)
		}
		if traces[0], err = attack.ObservationTrace(pa, model, polA); err != nil {
			t.Fatal(err)
		}
		if traces[1], err = attack.ObservationTrace(pb, model, polB); err != nil {
			t.Fatal(err)
		}
		return fuzz.DiffTraces(traces[0], traces[1]) != nil
	}
	cellIn := func(cells []fuzz.SchemeModel, scheme string) bool {
		for _, sm := range cells {
			if sm.Scheme == scheme && sm.Model == "futuristic" {
				return true
			}
		}
		return false
	}
	for _, e := range entries {
		t.Run(e.Name, func(t *testing.T) {
			// Every reproducer leaks on the unsafe baseline…
			if !cellIn(e.LeaksUnder(), "unsafe") {
				t.Fatal("corpus entry does not record an unsafe/futuristic leak")
			}
			if !diverges(t, e, "unsafe") {
				t.Error("unsafe baseline no longer leaks this reproducer")
			}
			// …and full SPT blocks every one of them (the corpus records
			// spt/futuristic under clean-under for each entry).
			if !cellIn(e.CleanUnder(), "spt") {
				t.Fatal("corpus entry does not record spt/futuristic as clean")
			}
			if diverges(t, e, "spt") {
				t.Error("defense regression: full SPT leaks this reproducer")
			}
		})
	}
}
