package attack

import (
	"testing"

	"spt/internal/pipeline"
	"spt/internal/taint"
)

func sptFull() pipeline.Policy { return taint.NewSPT(taint.DefaultSPTConfig()) }
func secure() pipeline.Policy  { return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintNone}) }
func sptIdeal() pipeline.Policy {
	return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintIdeal, Shadow: taint.ShadowMem})
}

// TestSpectreV1LeaksOnUnsafeBaseline: the classic attack works against the
// unprotected machine, recovering the exact secret byte.
func TestSpectreV1LeaksOnUnsafeBaseline(t *testing.T) {
	for _, secret := range []byte{42, 0xA7} {
		for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
			res, err := Run(SpectreV1Program(secret), model, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Leaked || res.Value != secret {
				t.Fatalf("model %v secret %d: attack failed on unsafe baseline: %+v", model, secret, res)
			}
		}
	}
}

// TestSpectreV1BlockedByAllDefenses: every protected configuration stops
// the bounds-bypass leak (speculatively-accessed data is in every scheme's
// protection scope).
func TestSpectreV1BlockedByAllDefenses(t *testing.T) {
	mks := map[string]func() pipeline.Policy{
		"secure":    secure,
		"stt":       func() pipeline.Policy { return taint.NewSTT() },
		"spt-full":  sptFull,
		"spt-ideal": sptIdeal,
	}
	for name, mk := range mks {
		for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
			res, err := Run(SpectreV1Program(42), model, mk())
			if err != nil {
				t.Fatal(err)
			}
			if res.ResidentLines != 0 {
				t.Errorf("%s/%v: probe lines resident after defended run: %+v", name, model, res)
			}
		}
	}
}

// TestNonSpecSecretLeaksUnderSTT is the paper's motivating gap (§3): the
// secret is accessed non-speculatively by constant-time code, so STT
// leaves it unprotected and the transient gadget leaks it. The unsafe
// baseline leaks it too, of course.
func TestNonSpecSecretLeaksUnderSTT(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() pipeline.Policy
	}{
		{"unsafe", func() pipeline.Policy { return nil }},
		{"stt", func() pipeline.Policy { return taint.NewSTT() }},
	} {
		res, err := Run(NonSpecSecretProgram(0x3C), pipeline.Futuristic, tc.mk())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Leaked || res.Value != 0x3C {
			t.Errorf("%s: expected the non-speculative secret to leak, got %+v", tc.name, res)
		}
	}
}

// TestNonSpecSecretProtectedBySPT: SPT's broader scope (non-speculative
// secrets) blocks the same attack, as does the secure baseline.
func TestNonSpecSecretProtectedBySPT(t *testing.T) {
	mks := map[string]func() pipeline.Policy{
		"secure":    secure,
		"spt-full":  sptFull,
		"spt-ideal": sptIdeal,
	}
	for name, mk := range mks {
		for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
			res, err := Run(NonSpecSecretProgram(0x3C), model, mk())
			if err != nil {
				t.Fatal(err)
			}
			if res.ResidentLines != 0 {
				t.Errorf("%s/%v: non-speculative secret leaked: %+v", name, model, res)
			}
		}
	}
}

// TestObservationalDeterminism: Definition 1 as a differential test. The
// victim's secret is never non-speculatively leaked, so under SPT the full
// observable event trace must be identical for different secret values;
// under the unsafe baseline it differs (the transient gadget's probe
// access depends on the secret).
func TestObservationalDeterminism(t *testing.T) {
	secrets := []byte{0x11, 0xEE}

	t.Run("spt-traces-equal", func(t *testing.T) {
		var traces [][]string
		for _, s := range secrets {
			tr, err := ObservationTrace(NonSpecSecretProgram(s), pipeline.Futuristic, sptFull())
			if err != nil {
				t.Fatal(err)
			}
			traces = append(traces, tr)
		}
		if len(traces[0]) != len(traces[1]) {
			t.Fatalf("trace lengths differ: %d vs %d", len(traces[0]), len(traces[1]))
		}
		for i := range traces[0] {
			if traces[0][i] != traces[1][i] {
				t.Fatalf("traces diverge at event %d: %q vs %q", i, traces[0][i], traces[1][i])
			}
		}
	})

	t.Run("unsafe-traces-differ", func(t *testing.T) {
		var traces [][]string
		for _, s := range secrets {
			tr, err := ObservationTrace(NonSpecSecretProgram(s), pipeline.Futuristic, nil)
			if err != nil {
				t.Fatal(err)
			}
			traces = append(traces, tr)
		}
		same := len(traces[0]) == len(traces[1])
		if same {
			for i := range traces[0] {
				if traces[0][i] != traces[1][i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("unsafe baseline produced identical traces; the gadget did not fire")
		}
	})
}

// TestSpectreObservationalDeterminismAcrossConfigs: the Spectre V1 victim
// under every SPT configuration produces secret-independent traces.
func TestSpectreObservationalDeterminismAcrossConfigs(t *testing.T) {
	mks := map[string]func() pipeline.Policy{
		"secure":    secure,
		"spt-full":  sptFull,
		"spt-ideal": sptIdeal,
		"stt":       func() pipeline.Policy { return taint.NewSTT() },
	}
	for name, mk := range mks {
		a, err := ObservationTrace(SpectreV1Program(1), pipeline.Futuristic, mk())
		if err != nil {
			t.Fatal(err)
		}
		b, err := ObservationTrace(SpectreV1Program(200), pipeline.Futuristic, mk())
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Errorf("%s: trace lengths differ: %d vs %d", name, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: traces diverge at %d: %q vs %q", name, i, a[i], b[i])
				break
			}
		}
	}
}
