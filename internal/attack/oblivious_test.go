package attack

import (
	"testing"

	"spt/internal/pipeline"
	"spt/internal/taint"
)

func sptOblivious() pipeline.Policy {
	return taint.NewSPT(taint.SPTConfig{
		Method: taint.UntaintBwd, Shadow: taint.ShadowL1, BroadcastWidth: 3,
		Protect: taint.ObliviousExecution,
	})
}

// TestObliviousExecutionBlocksAttacks: the SDO-style protection policy
// must block both penetration tests — transmitters run, but with no
// operand-dependent cache state.
func TestObliviousExecutionBlocksAttacks(t *testing.T) {
	for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		res, err := Run(SpectreV1Program(42), model, sptOblivious())
		if err != nil {
			t.Fatal(err)
		}
		if res.ResidentLines != 0 {
			t.Errorf("%v: spectre-v1 leaked under oblivious execution: %+v", model, res)
		}
		res, err = Run(NonSpecSecretProgram(0x3C), model, sptOblivious())
		if err != nil {
			t.Fatal(err)
		}
		if res.ResidentLines != 0 {
			t.Errorf("%v: nonspec-secret leaked under oblivious execution: %+v", model, res)
		}
	}
}

// TestObliviousObservationalDeterminism: the full observable trace stays
// secret-independent, including the retirement-time replay accesses.
func TestObliviousObservationalDeterminism(t *testing.T) {
	a, err := ObservationTrace(NonSpecSecretProgram(0x01), pipeline.Futuristic, sptOblivious())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ObservationTrace(NonSpecSecretProgram(0xFE), pipeline.Futuristic, sptOblivious())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
