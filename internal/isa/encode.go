package isa

import (
	"encoding/binary"
	"fmt"
)

// WordSize is the size of one encoded instruction in bytes. µRISC uses a
// fixed-width 16-byte encoding: 1 byte opcode, 3 register specifiers, 4
// reserved bytes, and a 64-bit little-endian immediate. The encoding exists
// so programs can be stored and exchanged as binaries (cmd/spt-asm); the
// timing model fetches by instruction index.
const WordSize = 16

// Encode serializes one instruction into a 16-byte word.
func Encode(ins Instruction) [WordSize]byte {
	var w [WordSize]byte
	w[0] = byte(ins.Op)
	w[1] = byte(ins.Rd)
	w[2] = byte(ins.Rs1)
	w[3] = byte(ins.Rs2)
	binary.LittleEndian.PutUint64(w[8:], uint64(ins.Imm))
	return w
}

// Decode deserializes one instruction word. It rejects invalid opcodes and
// register specifiers.
func Decode(w [WordSize]byte) (Instruction, error) {
	ins := Instruction{
		Op:  Op(w[0]),
		Rd:  Reg(w[1]),
		Rs1: Reg(w[2]),
		Rs2: Reg(w[3]),
		Imm: int64(binary.LittleEndian.Uint64(w[8:])),
	}
	if ins.Op >= numOps {
		return Instruction{}, fmt.Errorf("isa: invalid opcode %d", w[0])
	}
	if ins.Rd >= NumRegs || ins.Rs1 >= NumRegs || ins.Rs2 >= NumRegs {
		return Instruction{}, fmt.Errorf("isa: invalid register in %x", w)
	}
	return ins, nil
}

// EncodeProgram serializes a program's code section. The data image is not
// included; cmd/spt-asm stores it separately.
func EncodeProgram(code []Instruction) []byte {
	out := make([]byte, 0, len(code)*WordSize)
	for _, ins := range code {
		w := Encode(ins)
		out = append(out, w[:]...)
	}
	return out
}

// DecodeProgram deserializes a code section produced by EncodeProgram.
func DecodeProgram(b []byte) ([]Instruction, error) {
	if len(b)%WordSize != 0 {
		return nil, fmt.Errorf("isa: code length %d not a multiple of %d", len(b), WordSize)
	}
	code := make([]Instruction, 0, len(b)/WordSize)
	for i := 0; i < len(b); i += WordSize {
		var w [WordSize]byte
		copy(w[:], b[i:i+WordSize])
		ins, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i/WordSize, err)
		}
		code = append(code, ins)
	}
	return code, nil
}
