package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpNamesComplete(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.String() == "" || op.String()[0] == 'o' && op.String() != "or" && op.String() != "ori" {
			t.Errorf("op %d has no mnemonic (got %q)", op, op.String())
		}
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v, true", op.String(), got, ok, op)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(opRaw uint8, rd, rs1, rs2 uint8, imm int64) bool {
		ins := Instruction{
			Op:  Op(opRaw % uint8(numOps)),
			Rd:  Reg(rd % NumRegs),
			Rs1: Reg(rs1 % NumRegs),
			Rs2: Reg(rs2 % NumRegs),
			Imm: imm,
		}
		got, err := Decode(Encode(ins))
		return err == nil && got == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	var w [WordSize]byte
	w[0] = byte(numOps)
	if _, err := Decode(w); err == nil {
		t.Fatal("Decode accepted invalid opcode")
	}
	w[0] = byte(ADD)
	w[1] = NumRegs // invalid register
	if _, err := Decode(w); err == nil {
		t.Fatal("Decode accepted invalid register")
	}
}

func TestDecodeProgramLengthCheck(t *testing.T) {
	if _, err := DecodeProgram(make([]byte, WordSize+1)); err == nil {
		t.Fatal("DecodeProgram accepted misaligned input")
	}
	code := []Instruction{{Op: MOVI, Rd: 5, Imm: 42}, {Op: HALT}}
	got, err := DecodeProgram(EncodeProgram(code))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != code[0] || got[1] != code[1] {
		t.Fatalf("round trip mismatch: %v", got)
	}
}

func TestClassifiers(t *testing.T) {
	cases := []struct {
		ins                          Instruction
		load, store, branch, control bool
	}{
		{Instruction{Op: LD, Rd: 1, Rs1: 2}, true, false, false, false},
		{Instruction{Op: LDB, Rd: 1, Rs1: 2}, true, false, false, false},
		{Instruction{Op: ST, Rs1: 1, Rs2: 2}, false, true, false, false},
		{Instruction{Op: STW, Rs1: 1, Rs2: 2}, false, true, false, false},
		{Instruction{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 4}, false, false, true, true},
		{Instruction{Op: BGEU, Rs1: 1, Rs2: 2, Imm: -2}, false, false, true, true},
		{Instruction{Op: JAL, Rd: RA, Imm: 10}, false, false, false, true},
		{Instruction{Op: JALR, Rs1: RA}, false, false, false, true},
		{Instruction{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, false, false, false, false},
	}
	for _, c := range cases {
		if c.ins.IsLoad() != c.load || c.ins.IsStore() != c.store ||
			c.ins.IsCondBranch() != c.branch || c.ins.IsControlFlow() != c.control {
			t.Errorf("%v: classification mismatch", c.ins)
		}
		if c.ins.IsTransmitter() != (c.load || c.store) {
			t.Errorf("%v: transmitter mismatch", c.ins)
		}
	}
}

func TestCallReturn(t *testing.T) {
	call := Instruction{Op: JAL, Rd: RA, Imm: 5}
	if !call.IsCall() {
		t.Error("JAL rd=RA should be a call")
	}
	indirectCall := Instruction{Op: JALR, Rd: RA, Rs1: 7}
	if !indirectCall.IsCall() {
		t.Error("JALR rd=RA should be a call")
	}
	ret := Instruction{Op: JALR, Rd: Zero, Rs1: RA}
	if !ret.IsReturn() || ret.IsCall() {
		t.Error("JALR rd=zero rs1=RA should be a return")
	}
	plainJump := Instruction{Op: JAL, Rd: Zero, Imm: 3}
	if plainJump.IsCall() || plainJump.IsReturn() {
		t.Error("JAL rd=zero should be a plain jump")
	}
}

func TestSrcRegs(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want []Reg
	}{
		{Instruction{Op: MOVI, Rd: 1, Imm: 7}, nil},
		{Instruction{Op: MOV, Rd: 1, Rs1: 2}, []Reg{2}},
		{Instruction{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, []Reg{2, 3}},
		{Instruction{Op: ADDI, Rd: 1, Rs1: 2, Imm: 5}, []Reg{2}},
		{Instruction{Op: LD, Rd: 1, Rs1: 2, Imm: 8}, []Reg{2}},
		{Instruction{Op: ST, Rs1: 2, Rs2: 3}, []Reg{2, 3}},
		{Instruction{Op: BEQ, Rs1: 4, Rs2: 5, Imm: 1}, []Reg{4, 5}},
		{Instruction{Op: JAL, Rd: RA, Imm: 1}, nil},
		{Instruction{Op: JALR, Rd: Zero, Rs1: RA}, []Reg{RA}},
		{Instruction{Op: HALT}, nil},
	}
	for _, c := range cases {
		got := c.ins.SrcRegs(nil)
		if len(got) != len(c.want) {
			t.Errorf("%v: SrcRegs = %v, want %v", c.ins, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v: SrcRegs = %v, want %v", c.ins, got, c.want)
			}
		}
	}
}

func TestHasDest(t *testing.T) {
	if (Instruction{Op: ADD, Rd: Zero, Rs1: 1, Rs2: 2}).HasDest() {
		t.Error("write to zero register should not count as a destination")
	}
	if !(Instruction{Op: LD, Rd: 3, Rs1: 1}).HasDest() {
		t.Error("load should have a destination")
	}
	if (Instruction{Op: ST, Rs1: 1, Rs2: 2}).HasDest() {
		t.Error("store has no destination")
	}
	if (Instruction{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 1}).HasDest() {
		t.Error("branch has no destination")
	}
}

func TestValidate(t *testing.T) {
	good := &Program{
		Code: []Instruction{
			{Op: MOVI, Rd: 1, Imm: 3},
			{Op: BEQ, Rs1: 1, Rs2: 0, Imm: 1},
			{Op: HALT},
		},
		Data: []Segment{{Addr: 0x1000, Bytes: make([]byte, 64)}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	bad := &Program{Code: []Instruction{{Op: BEQ, Imm: 10}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range branch target accepted")
	}

	overlap := &Program{
		Code: []Instruction{{Op: HALT}},
		Data: []Segment{
			{Addr: 0x1000, Bytes: make([]byte, 64)},
			{Addr: 0x1020, Bytes: make([]byte, 64)},
		},
	}
	if err := overlap.Validate(); err == nil {
		t.Fatal("overlapping data segments accepted")
	}
}

func TestStringSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		ins := Instruction{
			Op:  Op(rng.Intn(NumOps)),
			Rd:  Reg(rng.Intn(NumRegs)),
			Rs1: Reg(rng.Intn(NumRegs)),
			Rs2: Reg(rng.Intn(NumRegs)),
			Imm: rng.Int63n(1 << 20),
		}
		if ins.String() == "" {
			t.Fatalf("empty disassembly for %+v", ins)
		}
	}
}

func TestMemSize(t *testing.T) {
	sizes := map[Op]int{LD: 8, ST: 8, LDW: 4, STW: 4, LDB: 1, STB: 1, ADD: 0, BEQ: 0}
	for op, want := range sizes {
		if got := (Instruction{Op: op}).MemSize(); got != want {
			t.Errorf("MemSize(%v) = %d, want %d", op, got, want)
		}
	}
}
