// Package isa defines µRISC, the 64-bit RISC instruction set used by the
// SPT simulator. µRISC is deliberately small but complete enough to express
// the paper's workloads: full-width and 32-bit arithmetic, constant-time
// selection (MIN/MAX), byte/word/doubleword memory accesses, conditional
// branches, and calls/returns through JAL/JALR.
//
// Program counters are instruction indices, not byte addresses: instruction
// i+1 follows instruction i, and branch offsets are in instructions. Data
// addresses are byte-granular 64-bit values.
package isa

import "fmt"

// NumRegs is the number of architectural registers. Register 0 (Zero) is
// hardwired to zero: writes to it are discarded.
const NumRegs = 32

// Reg names an architectural register.
type Reg uint8

// Conventional register names. Only Zero and RA have semantics baked into
// the hardware model (RA drives the return-address-stack push/pop
// heuristics); the rest are calling-convention suggestions used by the
// assembler and the workloads.
const (
	Zero Reg = 0 // hardwired zero
	RA   Reg = 1 // return address
	SP   Reg = 2 // stack pointer
	GP   Reg = 3 // global pointer
	TP   Reg = 4 // thread pointer / scratch
)

// Op identifies a µRISC operation.
type Op uint8

// The µRISC operation set.
const (
	NOP Op = iota
	HALT

	// Register moves and immediates.
	MOVI // rd = imm
	MOV  // rd = rs1

	// 64-bit ALU, register-register.
	ADD  // rd = rs1 + rs2
	SUB  // rd = rs1 - rs2
	AND  // rd = rs1 & rs2
	OR   // rd = rs1 | rs2
	XOR  // rd = rs1 ^ rs2
	SHL  // rd = rs1 << (rs2 & 63)
	SHR  // rd = uint64(rs1) >> (rs2 & 63)
	SRA  // rd = rs1 >> (rs2 & 63), arithmetic
	MUL  // rd = rs1 * rs2
	DIV  // rd = rs1 / rs2 (signed; x/0 = -1)
	REM  // rd = rs1 % rs2 (signed; x%0 = x)
	SLT  // rd = (rs1 < rs2) signed ? 1 : 0
	SLTU // rd = (rs1 < rs2) unsigned ? 1 : 0
	MIN  // rd = min(rs1, rs2) signed (single-cycle, constant time)
	MAX  // rd = max(rs1, rs2) signed
	MINU // rd = min(rs1, rs2) unsigned
	MAXU // rd = max(rs1, rs2) unsigned

	// 32-bit ALU forms; results are zero-extended to 64 bits. Used by the
	// ChaCha20 and bitslice kernels.
	ADDW // rd = uint32(rs1 + rs2)
	SUBW // rd = uint32(rs1 - rs2)
	ROLW // rd = rotl32(uint32(rs1), rs2 & 31)
	RORW // rd = rotr32(uint32(rs1), rs2 & 31)

	// 64-bit ALU, register-immediate.
	ADDI // rd = rs1 + imm
	ANDI // rd = rs1 & imm
	ORI  // rd = rs1 | imm
	XORI // rd = rs1 ^ imm
	SHLI // rd = rs1 << (imm & 63)
	SHRI // rd = uint64(rs1) >> (imm & 63)
	SRAI // rd = rs1 >> (imm & 63), arithmetic
	SLTI // rd = (rs1 < imm) signed ? 1 : 0

	// Memory. Effective address is rs1 + imm. LD/ST move 8 bytes, LDW/STW 4
	// bytes (zero-extending on load), LDB/STB 1 byte (zero-extending).
	LD
	LDW
	LDB
	ST // mem[rs1+imm] = rs2
	STW
	STB

	// Conditional branches: taken target is pc + imm (instruction offset).
	BEQ  // rs1 == rs2
	BNE  // rs1 != rs2
	BLT  // rs1 <  rs2, signed
	BGE  // rs1 >= rs2, signed
	BLTU // rs1 <  rs2, unsigned
	BGEU // rs1 >= rs2, unsigned

	// Unconditional control flow.
	JAL  // rd = pc + 1; pc = pc + imm. Call when rd == RA.
	JALR // rd = pc + 1; pc = rs1 + imm. Return when rs1 == RA && rd == Zero.

	numOps // sentinel
)

// NumOps reports the number of defined operations (for table sizing).
const NumOps = int(numOps)

var opNames = [...]string{
	NOP: "nop", HALT: "halt",
	MOVI: "movi", MOV: "mov",
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", SRA: "sra", MUL: "mul", DIV: "div", REM: "rem",
	SLT: "slt", SLTU: "sltu", MIN: "min", MAX: "max", MINU: "minu", MAXU: "maxu",
	ADDW: "addw", SUBW: "subw", ROLW: "rolw", RORW: "rorw",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SHLI: "shli", SHRI: "shri", SRAI: "srai", SLTI: "slti",
	LD: "ld", LDW: "ldw", LDB: "ldb", ST: "st", STW: "stw", STB: "stb",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	JAL: "jal", JALR: "jalr",
}

// String returns the assembler mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpByName maps mnemonics back to operations. Unknown names return (0, false).
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// Instruction is one decoded µRISC instruction. Fields that an operation
// does not use are zero.
type Instruction struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// MemSize reports the access width in bytes for memory operations, and 0
// for everything else.
func (i Instruction) MemSize() int {
	switch i.Op {
	case LD, ST:
		return 8
	case LDW, STW:
		return 4
	case LDB, STB:
		return 1
	}
	return 0
}

// IsLoad reports whether the instruction reads memory.
func (i Instruction) IsLoad() bool { return i.Op == LD || i.Op == LDW || i.Op == LDB }

// IsStore reports whether the instruction writes memory.
func (i Instruction) IsStore() bool { return i.Op == ST || i.Op == STW || i.Op == STB }

// IsMem reports whether the instruction accesses memory.
func (i Instruction) IsMem() bool { return i.IsLoad() || i.IsStore() }

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Instruction) IsCondBranch() bool { return i.Op >= BEQ && i.Op <= BGEU }

// IsControlFlow reports whether the instruction can redirect the PC.
func (i Instruction) IsControlFlow() bool { return i.IsCondBranch() || i.Op == JAL || i.Op == JALR }

// IsCall reports whether the instruction is a call (pushes the return
// address stack).
func (i Instruction) IsCall() bool { return (i.Op == JAL || i.Op == JALR) && i.Rd == RA }

// IsReturn reports whether the instruction is a return (pops the return
// address stack).
func (i Instruction) IsReturn() bool { return i.Op == JALR && i.Rs1 == RA && i.Rd != RA }

// IsTransmitter reports whether executing the instruction creates an
// operand-dependent microarchitectural covert channel. Following the paper's
// evaluation (§9.1), transmitters are loads and stores: their execution
// makes address-dependent changes to TLB and cache state. Conditional
// branches and indirect jumps are handled separately as implicit channels.
func (i Instruction) IsTransmitter() bool { return i.IsMem() }

// HasDest reports whether the instruction writes a destination register.
// A destination of Zero still counts as "no destination" for dataflow.
func (i Instruction) HasDest() bool {
	switch {
	case i.Op == NOP, i.Op == HALT, i.IsStore(), i.IsCondBranch():
		return false
	}
	return i.Rd != Zero
}

// SrcRegs appends the source registers the instruction reads to dst and
// returns the result. Zero-register sources are included (they read as 0 and
// are always untainted).
func (i Instruction) SrcRegs(dst []Reg) []Reg {
	switch i.Op {
	case NOP, HALT, MOVI:
		return dst
	case MOV:
		return append(dst, i.Rs1)
	case ADDI, ANDI, ORI, XORI, SHLI, SHRI, SRAI, SLTI:
		return append(dst, i.Rs1)
	case LD, LDW, LDB:
		return append(dst, i.Rs1)
	case ST, STW, STB:
		return append(dst, i.Rs1, i.Rs2)
	case JAL:
		return dst
	case JALR:
		return append(dst, i.Rs1)
	}
	if i.IsCondBranch() {
		return append(dst, i.Rs1, i.Rs2)
	}
	// Remaining register-register ALU forms.
	return append(dst, i.Rs1, i.Rs2)
}

// String renders the instruction in assembler syntax.
func (i Instruction) String() string {
	r := func(x Reg) string { return fmt.Sprintf("r%d", x) }
	switch {
	case i.Op == NOP || i.Op == HALT:
		return i.Op.String()
	case i.Op == MOVI:
		return fmt.Sprintf("%s %s, %d", i.Op, r(i.Rd), i.Imm)
	case i.Op == MOV:
		return fmt.Sprintf("%s %s, %s", i.Op, r(i.Rd), r(i.Rs1))
	case i.Op >= ADDI && i.Op <= SLTI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rd), r(i.Rs1), i.Imm)
	case i.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, r(i.Rd), i.Imm, r(i.Rs1))
	case i.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, r(i.Rs2), i.Imm, r(i.Rs1))
	case i.IsCondBranch():
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rs1), r(i.Rs2), i.Imm)
	case i.Op == JAL:
		return fmt.Sprintf("%s %s, %d", i.Op, r(i.Rd), i.Imm)
	case i.Op == JALR:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, r(i.Rd), i.Imm, r(i.Rs1))
	}
	return fmt.Sprintf("%s %s, %s, %s", i.Op, r(i.Rd), r(i.Rs1), r(i.Rs2))
}

// Program is a µRISC program: code plus an initial data image.
type Program struct {
	Name string
	Code []Instruction
	// Data maps byte addresses to initial memory contents. Segments must
	// not overlap.
	Data []Segment
	// Entry is the instruction index execution starts at.
	Entry uint64
}

// Segment is a contiguous chunk of initialized memory.
type Segment struct {
	Addr  uint64
	Bytes []byte
}

// Validate checks structural well-formedness: branch targets in range,
// register indices valid, data segments non-overlapping.
func (p *Program) Validate() error {
	n := int64(len(p.Code))
	if p.Entry >= uint64(n) && n > 0 {
		return fmt.Errorf("isa: entry %d out of range (%d instructions)", p.Entry, n)
	}
	for pc, ins := range p.Code {
		if ins.Op >= numOps {
			return fmt.Errorf("isa: pc %d: invalid op %d", pc, ins.Op)
		}
		if ins.Rd >= NumRegs || ins.Rs1 >= NumRegs || ins.Rs2 >= NumRegs {
			return fmt.Errorf("isa: pc %d: register out of range in %v", pc, ins)
		}
		if ins.IsCondBranch() || ins.Op == JAL {
			t := int64(pc) + ins.Imm
			if t < 0 || t >= n {
				return fmt.Errorf("isa: pc %d: branch target %d out of range", pc, t)
			}
		}
	}
	for i, s := range p.Data {
		for j := i + 1; j < len(p.Data); j++ {
			t := p.Data[j]
			if s.Addr < t.Addr+uint64(len(t.Bytes)) && t.Addr < s.Addr+uint64(len(s.Bytes)) {
				return fmt.Errorf("isa: data segments %d and %d overlap", i, j)
			}
		}
	}
	return nil
}
