package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/workloads"
)

func buildProg(t *testing.T, name string, iters int64) *isa.Program {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.Build(iters)
}

func detailedRun(t *testing.T, core *pipeline.Core, insts uint64) {
	t.Helper()
	if err := core.Run(insts, 400*insts+400_000); err != nil {
		t.Fatal(err)
	}
}

// TestBootFromSnapshotAtResetEqualsNew pins the restore path's fidelity: a
// core booted from a snapshot of the un-started emulator, with a cold
// hierarchy and predictor, is cycle-for-cycle the same machine as a core
// built from reset.
func TestBootFromSnapshotAtResetEqualsNew(t *testing.T) {
	p := buildProg(t, "gcc", 1<<40)
	hcfg := mem.DefaultHierarchyConfig()
	cfg := pipeline.DefaultConfig()

	ref, err := pipeline.New(cfg, p, mem.NewHierarchy(hcfg), nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Build(p, 0, hcfg, false)
	if err != nil {
		t.Fatal(err)
	}
	snap, hier, pred := cp.Materialize(hcfg)
	got, err := pipeline.BootFromSnapshot(cfg, p, hier, nil, snap, pred)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 5_000
	detailedRun(t, ref, budget)
	detailedRun(t, got, budget)
	if ref.Stats.Cycles != got.Stats.Cycles || ref.Stats.Retired != got.Stats.Retired {
		t.Fatalf("restored-at-reset run diverged: cycles %d vs %d, retired %d vs %d",
			got.Stats.Cycles, ref.Stats.Cycles, got.Stats.Retired, ref.Stats.Retired)
	}
	if ref.ArchRegs() != got.ArchRegs() {
		t.Fatal("restored-at-reset run reached different architectural registers")
	}
	if got.Stats.FastForwarded != 0 {
		t.Fatalf("FastForwarded = %d at skip 0", got.Stats.FastForwarded)
	}
}

// TestBootFromSnapshotArchitecturallyCorrect is the end-to-end functional
// property: fast-forward partway, finish the program on the detailed core,
// and the final architectural registers must equal a pure-emulator run of
// the whole program. Warm microarchitectural state may change timing but
// never results.
func TestBootFromSnapshotArchitecturallyCorrect(t *testing.T) {
	hcfg := mem.DefaultHierarchyConfig()
	for _, warm := range []bool{false, true} {
		p := buildProg(t, "chacha20", 3) // small iteration count: halts
		w := NewWalker(p, hcfg, false)
		// Run the reference to completion to learn the total count.
		for !w.Em.State.Halted {
			if err := w.Em.Step(); err != nil {
				t.Fatal(err)
			}
		}
		total := w.Em.State.Retired
		wantRegs := w.Em.State.Regs
		skip := total / 3

		cp, err := Build(p, skip, hcfg, warm)
		if err != nil {
			t.Fatal(err)
		}
		if cp.Snap.Retired != skip {
			t.Fatalf("checkpoint at %d instructions, want %d", cp.Snap.Retired, skip)
		}
		snap, hier, pred := cp.Materialize(hcfg)
		core, err := pipeline.BootFromSnapshot(pipeline.DefaultConfig(), p, hier, nil, snap, pred)
		if err != nil {
			t.Fatal(err)
		}
		detailedRun(t, core, total) // runs to HALT before the budget
		if !core.Finished() {
			t.Fatalf("warm=%v: detailed run did not finish", warm)
		}
		if got := core.Stats.Retired + core.Stats.FastForwarded; got != total {
			t.Fatalf("warm=%v: retired %d + fast-forwarded %d != total %d",
				warm, core.Stats.Retired, core.Stats.FastForwarded, total)
		}
		got := core.ArchRegs()
		for r := 1; r < isa.NumRegs; r++ {
			if got[r] != wantRegs[r] {
				t.Fatalf("warm=%v: r%d = %#x after restore+detail, want %#x", warm, r, got[r], wantRegs[r])
			}
		}
	}
}

// TestCheckpointRestoreIsRepeatable: one checkpoint boots many cores and
// each detailed run is bit-identical — the warm template and the snapshot
// must be immune to the restored cores' execution.
func TestCheckpointRestoreIsRepeatable(t *testing.T) {
	p := buildProg(t, "mcf", 1<<40)
	hcfg := mem.DefaultHierarchyConfig()
	cp, err := Build(p, 30_000, hcfg, true)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (uint64, [isa.NumRegs]uint64) {
		snap, hier, pred := cp.Materialize(hcfg)
		core, err := pipeline.BootFromSnapshot(pipeline.DefaultConfig(), p, hier, nil, snap, pred)
		if err != nil {
			t.Fatal(err)
		}
		detailedRun(t, core, 5_000)
		return core.Stats.Cycles, core.ArchRegs()
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("two restores of one checkpoint diverged: %d vs %d cycles", c1, c2)
	}
}

// TestWalkerDeterminism: two independent functional passes produce
// identical snapshots (content hash) and the walker refuses to advance
// past HALT.
func TestWalkerDeterminism(t *testing.T) {
	hcfg := mem.DefaultHierarchyConfig()
	p := buildProg(t, "xz", 1<<40)
	h := func() [32]byte {
		cp, err := Build(p, 20_000, hcfg, true)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := cp.Snap.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	if h() != h() {
		t.Fatal("two functional passes produced different snapshots")
	}

	short := buildProg(t, "chacha20", 1)
	if _, err := Build(short, 1<<40, hcfg, false); err == nil {
		t.Fatal("fast-forward past HALT succeeded; want error")
	} else if !strings.Contains(err.Error(), "halted") {
		t.Fatalf("unexpected error past HALT: %v", err)
	}
}

// TestStoreBuildsOnce: concurrent Gets for one key share a single build.
func TestStoreBuildsOnce(t *testing.T) {
	p := buildProg(t, "gcc", 1<<40)
	hcfg := mem.DefaultHierarchyConfig()
	s := NewStore("")
	const callers = 8
	cps := make([]*Checkpoint, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			cp, err := s.Get(p, 10_000, hcfg, true)
			if err != nil {
				t.Error(err)
				return
			}
			cps[i] = cp
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Builds != 1 || st.MemHits != callers-1 {
		t.Fatalf("store stats = %+v, want 1 build and %d memory hits", st, callers-1)
	}
	for _, cp := range cps[1:] {
		if cp != cps[0] {
			t.Fatal("concurrent Gets returned different checkpoint instances")
		}
	}
	// A different skip distance is a different key.
	if _, err := s.Get(p, 20_000, hcfg, true); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Builds; got != 2 {
		t.Fatalf("Builds = %d after second skip distance, want 2", got)
	}
}

// TestStoreDisk covers persistence: a second store (fresh process stand-in)
// serves cold requests from disk without a functional pass, warm requests
// rebuild and hash-check against the file, and corruption is reported.
func TestStoreDisk(t *testing.T) {
	p := buildProg(t, "mcf", 1<<40)
	hcfg := mem.DefaultHierarchyConfig()
	dir := t.TempDir()
	const skip = 10_000

	s1 := NewStore(dir)
	cp1, err := s1.Get(p, skip, hcfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.Builds != 1 || st.DiskSaves != 1 {
		t.Fatalf("first store stats = %+v, want 1 build and 1 save", st)
	}

	s2 := NewStore(dir)
	cp2, err := s2.Get(p, skip, hcfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Builds != 0 || st.DiskHits != 1 {
		t.Fatalf("second store stats = %+v, want 0 builds and 1 disk hit", st)
	}
	h1, _ := cp1.Snap.Hash()
	h2, _ := cp2.Snap.Hash()
	if h1 != h2 {
		t.Fatal("disk round trip changed the snapshot")
	}

	// Warm request against an existing file: rebuilt (for warm state) and
	// cross-checked, no new file written.
	s3 := NewStore(dir)
	cp3, err := s3.Get(p, skip, hcfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if cp3.Hier == nil || cp3.Pred == nil {
		t.Fatal("warm request returned a cold checkpoint")
	}
	if st := s3.Stats(); st.Builds != 1 || st.DiskSaves != 0 {
		t.Fatalf("warm-over-disk stats = %+v, want 1 build and 0 saves", st)
	}

	// Corrupt the file body: the next cold load must fail loudly.
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("expected exactly one checkpoint file, got %d (%v)", len(ents), err)
	}
	path := filepath.Join(dir, ents[0].Name())
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(dir).Get(p, skip, hcfg, false); err == nil {
		t.Fatal("corrupt checkpoint file loaded without error")
	}
}
