package checkpoint

import (
	"sync"
	"testing"

	"spt/internal/emu"
	"spt/internal/mem"
	"spt/internal/pipeline"
)

// TestConcurrentWindowForks exercises the exact sharing pattern of the
// parallel-window sampling driver, designed to be run under -race: many
// workers fork from one checkpoint (copy-on-write snapshot plus cloned
// warm state) and mutate their private copies, while the parent walker
// keeps advancing past the fork point and taking further checkpoints.
// Frozen pages must stay immutable (the checkpoint's digest cannot move)
// and every fork must compute the identical result.
func TestConcurrentWindowForks(t *testing.T) {
	p := buildProg(t, "gcc", 1<<40)
	hcfg := mem.DefaultHierarchyConfig()
	w := NewWalker(p, hcfg, true)
	if err := w.Advance(10_000); err != nil {
		t.Fatal(err)
	}
	cp := w.Checkpoint()
	before, err := cp.Snap.Hash()
	if err != nil {
		t.Fatal(err)
	}

	const forks = 8
	var wg sync.WaitGroup
	cycles := make([]uint64, forks)
	digests := make([][32]byte, forks)
	errs := make([]error, forks)
	for k := 0; k < forks; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			// Detailed fork: boot a core from the warm checkpoint and run a
			// measured region (stores retire into the CoW memory).
			snap, hier, pred := cp.Materialize(hcfg)
			core, err := pipeline.BootFromSnapshot(pipeline.DefaultConfig(), p, hier, nil, snap, pred)
			if err != nil {
				errs[k] = err
				return
			}
			if err := core.Run(2_000, 4_000_000); err != nil {
				errs[k] = err
				return
			}
			cycles[k] = core.Stats.Cycles

			// Functional fork from the same snapshot: heavier memory
			// mutation, then a digest of the fork's private final state.
			em := emu.NewFromSnapshot(p, snap)
			if _, err := em.Run(20_000); err != nil {
				errs[k] = err
				return
			}
			digests[k], errs[k] = em.Snapshot().Hash()
		}(k)
	}

	// Meanwhile the parent walker streams ahead, mutating its own memory
	// (breaking CoW sharing page by page) and minting more checkpoints —
	// just like the sampling producer does while windows are in flight.
	for i := 1; i <= 4; i++ {
		if err := w.Advance(10_000 + uint64(i)*5_000); err != nil {
			t.Fatal(err)
		}
		w.Checkpoint()
	}
	wg.Wait()

	for k, err := range errs {
		if err != nil {
			t.Fatalf("fork %d: %v", k, err)
		}
	}
	after, err := cp.Snap.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Error("checkpoint snapshot digest moved: a fork or the walker wrote a frozen page in place")
	}
	for k := 1; k < forks; k++ {
		if cycles[k] != cycles[0] {
			t.Errorf("fork %d took %d cycles, fork 0 took %d — concurrent forks diverged", k, cycles[k], cycles[0])
		}
		if digests[k] != digests[0] {
			t.Errorf("fork %d final memory digest differs from fork 0", k)
		}
	}
}
