// Package checkpoint implements gem5/SimPoint-style functional
// fast-forwarding for the simulator: a program's prefix executes on the
// ~100x-faster functional emulator (optionally warming the memory
// hierarchy and branch predictors along the way), and the resulting
// architectural snapshot plus warm microarchitectural state boots
// detailed cores from the region of interest instead of from reset.
//
// The three layers:
//
//   - Walker drives the functional pass: it advances the emulator and, in
//     warm mode, streams every instruction fetch, load, store, and branch
//     through a mem.Hierarchy and predictor.Unit so caches, the TLB, and
//     TAGE reach the region of interest warm. Warming is scheme-independent
//     (no protection policy observes it), which is what makes the result
//     shareable across grid cells.
//   - Checkpoint packages one (snapshot, warm state) pair. It is an
//     immutable template: Materialize hands out per-core copies, so one
//     checkpoint boots any number of detailed cores, concurrently.
//   - Store (store.go) caches checkpoints in memory (build-once per key
//     under concurrency) and persists architectural snapshots on disk.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"spt/internal/emu"
	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/predictor"
)

// ProgramHash is the content identity of a program: SHA-256 over the
// entry point, the encoded code section, and every data segment. Two
// programs with equal hashes have identical architectural behavior, so
// the hash keys the checkpoint cache (a workload generator change
// invalidates stale checkpoints automatically).
func ProgramHash(p *isa.Program) [32]byte {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u64(p.Entry)
	code := isa.EncodeProgram(p.Code)
	u64(uint64(len(code)))
	h.Write(code)
	u64(uint64(len(p.Data)))
	for _, seg := range p.Data {
		u64(seg.Addr)
		u64(uint64(len(seg.Bytes)))
		h.Write(seg.Bytes)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Checkpoint is an immutable (snapshot, warm state) template at one point
// of one program's execution. Hier and Pred hold functionally warmed
// microarchitectural state with statistics already reset; they are nil
// for cold checkpoints (e.g. loaded from disk without replay), in which
// case a restored core boots with a fresh hierarchy and predictor.
type Checkpoint struct {
	Snap *emu.Snapshot
	Hier *mem.Hierarchy
	Pred *predictor.Unit
}

// Materialize returns the state to boot one detailed core: the shared
// snapshot (safe to reuse — restores are copy-on-write) plus per-core
// copies of the warm hierarchy and predictor, or cold ones built from
// hcfg when the checkpoint carries no warm state. Safe to call
// concurrently.
func (cp *Checkpoint) Materialize(hcfg mem.HierarchyConfig) (*emu.Snapshot, *mem.Hierarchy, *predictor.Unit) {
	if cp.Hier == nil {
		return cp.Snap, mem.NewHierarchy(hcfg), predictor.NewUnit()
	}
	return cp.Snap, cp.Hier.Clone(), cp.Pred.Clone()
}

// Walker advances a program functionally, optionally warming a memory
// hierarchy and branch-prediction unit as it goes. One walker makes any
// number of checkpoints at increasing instruction counts (the sampling
// driver checkpoints once per interval from a single pass).
type Walker struct {
	Em   *emu.Emulator
	Hier *mem.Hierarchy  // nil when warming is off
	Pred *predictor.Unit // nil when warming is off

	// now is the warming pseudo-clock: one tick per instruction, so MSHR
	// entries and LRU stamps age plausibly during the functional pass.
	now uint64
}

// NewWalker builds a walker at the program's entry point. With warm set,
// fetches, loads, stores, and branches stream through a fresh hierarchy
// (built from hcfg) and predictor unit.
func NewWalker(p *isa.Program, hcfg mem.HierarchyConfig, warm bool) *Walker {
	w := &Walker{Em: emu.New(p)}
	if warm {
		w.Hier = mem.NewHierarchy(hcfg)
		w.Pred = predictor.NewUnit()
	}
	return w
}

// Advance executes functionally until the emulator has retired target
// instructions in total. In warm mode it takes the block-granular fast
// path: the emulator's superblock engine batches one WarmEvent per
// retired instruction and replay streams each batch into the hierarchy
// and predictor. The event stream is byte-identical — same events, same
// order, same operand values — to what AdvanceHooked's per-instruction
// pass produces, so checkpoints (and their hashes) do not depend on
// which path built them; TestWalkerReplayMatchesHooked and the walker
// determinism goldens are the contract. Reaching HALT before the target
// is an error: a checkpoint past the end of the program is meaningless.
func (w *Walker) Advance(target uint64) error {
	st := &w.Em.State
	for st.Retired < target {
		if st.Halted {
			return fmt.Errorf("checkpoint: %s halted after %d instructions (fast-forward target %d)",
				w.Em.Prog.Name, st.Retired, target)
		}
		var err error
		if w.Hier != nil {
			_, err = w.Em.RunWarm(target-st.Retired, w.replay)
		} else {
			_, err = w.Em.Run(target - st.Retired)
		}
		if err != nil {
			return fmt.Errorf("checkpoint: %s: %w", w.Em.Prog.Name, err)
		}
	}
	return nil
}

// AdvanceHooked is the per-instruction reference warming path: identical
// semantics to Advance, but warming runs as a pre-execution hook on every
// instruction instead of through batched event replay. It exists so tests
// can pin the fast path's warm state to the reference, and as a fallback
// observation point for tooling that needs a live per-instruction view.
func (w *Walker) AdvanceHooked(target uint64) error {
	st := &w.Em.State
	for st.Retired < target {
		if st.Halted {
			return fmt.Errorf("checkpoint: %s halted after %d instructions (fast-forward target %d)",
				w.Em.Prog.Name, st.Retired, target)
		}
		var err error
		if w.Hier != nil {
			_, err = w.Em.RunHooked(target-st.Retired, w.warmOne)
		} else {
			_, err = w.Em.Run(target - st.Retired)
		}
		if err != nil {
			return fmt.Errorf("checkpoint: %s: %w", w.Em.Prog.Name, err)
		}
	}
	return nil
}

// replay streams a batch of warming events into the warm structures — the
// block-granular counterpart of warmOne. Every arm mirrors warmOne
// exactly: one pseudo-clock tick and an instruction fetch per event, then
// the class-specific access or predictor round trip. The emulator
// captured each event's operands at the same pre-execution point the hook
// would have observed, so the two paths train identical state.
func (w *Walker) replay(evs []emu.WarmEvent) {
	h, p := w.Hier, w.Pred
	now := w.now
	var cpv predictor.Checkpoint
	cp := &cpv
	for i := range evs {
		ev := &evs[i]
		now++
		h.AccessInstr(now, ev.PC*uint64(isa.WordSize))
		switch ev.Kind {
		case emu.WarmFetch:
		case emu.WarmLoad:
			h.AccessData(now, ev.Aux, false)
		case emu.WarmStore:
			h.AccessData(now, ev.Aux, true)
		case emu.WarmCondNotTaken:
			p.PredictCond(ev.PC, cp)
			if p.ResolveCond(cp, false, ev.Aux) {
				p.Recover(cp, false)
			}
		case emu.WarmCondTaken:
			p.PredictCond(ev.PC, cp)
			if p.ResolveCond(cp, true, ev.Aux) {
				p.Recover(cp, true)
			}
		case emu.WarmJal:
			p.PredictJump(ev.PC, ev.Aux, true, false, false, cp)
			p.ResolveJump(cp, ev.Aux, false)
		case emu.WarmJalCall:
			p.PredictJump(ev.PC, ev.Aux, true, true, false, cp)
			p.ResolveJump(cp, ev.Aux, false)
		case emu.WarmJalr:
			p.PredictJump(ev.PC, 0, false, false, false, cp)
			if p.ResolveJump(cp, ev.Aux, true) {
				p.Recover(cp, true)
			}
		case emu.WarmJalrCall:
			p.PredictJump(ev.PC, 0, false, true, false, cp)
			if p.ResolveJump(cp, ev.Aux, true) {
				p.Recover(cp, true)
			}
		case emu.WarmJalrRet:
			p.PredictJump(ev.PC, 0, false, false, true, cp)
			if p.ResolveJump(cp, ev.Aux, true) {
				p.Recover(cp, true)
			}
		}
	}
	w.now = now
}

// warmOne streams the next instruction's microarchitectural events into
// the warm structures before the emulator executes it (it runs as the
// block engine's pre-execution hook, so the registers it reads are still
// the pre-execution values). Branch training mirrors the detailed
// pipeline's resolution path (predict, resolve, recover on mispredict) so
// the predictor reaches the same trained state it would after in-order
// execution of the prefix.
func (w *Walker) warmOne(pc uint64, ins *isa.Instruction) {
	st := &w.Em.State
	w.now++
	w.Hier.AccessInstr(w.now, pc*uint64(isa.WordSize))
	switch {
	case ins.IsMem():
		addr := st.Regs[ins.Rs1] + uint64(ins.Imm)
		// An MSHR-full miss is retried next tick in the detailed model; in
		// functional mode the access simply does not install this tick.
		w.Hier.AccessData(w.now, addr, ins.IsStore())
	case ins.IsCondBranch():
		var cp predictor.Checkpoint
		w.Pred.PredictCond(pc, &cp)
		taken := emu.BranchTaken(ins.Op, st.Regs[ins.Rs1], st.Regs[ins.Rs2])
		target := pc + 1
		if taken {
			target = pc + uint64(ins.Imm)
		}
		if w.Pred.ResolveCond(&cp, taken, target) {
			w.Pred.Recover(&cp, taken)
		}
	case ins.Op == isa.JAL:
		target := pc + uint64(ins.Imm)
		var cp predictor.Checkpoint
		w.Pred.PredictJump(pc, target, true, ins.IsCall(), false, &cp)
		w.Pred.ResolveJump(&cp, target, false)
	case ins.Op == isa.JALR:
		target := st.Regs[ins.Rs1] + uint64(ins.Imm)
		var cp predictor.Checkpoint
		w.Pred.PredictJump(pc, 0, false, ins.IsCall(), ins.IsReturn(), &cp)
		if w.Pred.ResolveJump(&cp, target, true) {
			w.Pred.Recover(&cp, true)
		}
	}
}

// Checkpoint captures the walker's current point as an immutable
// template. The walker keeps running afterwards (pages are frozen
// copy-on-write; warm state is cloned), so successive checkpoints from
// one pass are independent. Warm-state statistics are reset on the
// checkpoint's copies: a detailed region measures only itself.
func (w *Walker) Checkpoint() *Checkpoint {
	cp := &Checkpoint{Snap: w.Em.Snapshot()}
	if w.Hier != nil {
		cp.Hier = w.Hier.Clone()
		cp.Hier.ResetStats()
		cp.Pred = w.Pred.Clone()
		cp.Pred.ResetStats()
	}
	return cp
}

// Build runs one functional pass over prog's first skip instructions and
// returns the checkpoint at that point (with warm state when warm is
// set). Use a Store to share and persist the result.
func Build(p *isa.Program, skip uint64, hcfg mem.HierarchyConfig, warm bool) (*Checkpoint, error) {
	w := NewWalker(p, hcfg, warm)
	if err := w.Advance(skip); err != nil {
		return nil, err
	}
	return w.Checkpoint(), nil
}
