package checkpoint

import (
	"testing"
	"time"

	"spt/internal/mem"
	"spt/internal/workloads"
)

// BenchmarkWarmingWalker measures functional-warming throughput, the
// serial bottleneck of sampled grids: every checkpoint interval is walked
// once, warm, before any detailed window can run. Per workload it reports
//
//	warm-MIPS:   block-granular warming (Advance: RunWarm + batch replay)
//	hooked-MIPS: per-instruction reference warming (AdvanceHooked)
//	cold-MIPS:   no warming at all (plain Run), the engine's upper bound
//	speedup-x:   warm-MIPS / hooked-MIPS
//
// The CI perf smoke parses warm-MIPS and speedup-x; both paths produce
// byte-identical warm state (TestWalkerReplayMatchesHooked), so the ratio
// is pure dispatch-and-batching overhead.
func BenchmarkWarmingWalker(b *testing.B) {
	const insts = 1_000_000
	hcfg := mem.DefaultHierarchyConfig()
	for _, name := range []string{"gcc", "mcf", "lbm", "aes-bitslice", "chacha20"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		p := w.Build(1 << 40)
		b.Run(name, func(b *testing.B) {
			var blockSec, hookedSec, coldSec float64
			for i := 0; i < b.N; i++ {
				wk := NewWalker(p, hcfg, true)
				start := time.Now()
				if err := wk.Advance(insts); err != nil {
					b.Fatal(err)
				}
				blockSec += time.Since(start).Seconds()

				hk := NewWalker(p, hcfg, true)
				start = time.Now()
				if err := hk.AdvanceHooked(insts); err != nil {
					b.Fatal(err)
				}
				hookedSec += time.Since(start).Seconds()

				ck := NewWalker(p, hcfg, false)
				start = time.Now()
				if err := ck.Advance(insts); err != nil {
					b.Fatal(err)
				}
				coldSec += time.Since(start).Seconds()
			}
			total := float64(insts) * float64(b.N)
			b.ReportMetric(total/blockSec/1e6, "warm-MIPS")
			b.ReportMetric(total/hookedSec/1e6, "hooked-MIPS")
			b.ReportMetric(total/coldSec/1e6, "cold-MIPS")
			b.ReportMetric(hookedSec/blockSec, "speedup-x")
		})
	}
}
