package checkpoint

import (
	"reflect"
	"testing"

	"spt/internal/mem"
)

// TestWalkerReplayMatchesHooked pins the block-granular warming fast path
// (Advance → RunWarm → replay) to the per-instruction reference
// (AdvanceHooked → RunHooked → warmOne): after advancing the same program
// to the same points through both paths, the pseudo-clock, the entire
// warm hierarchy and predictor state, and the architectural snapshot must
// all match exactly. The uneven targets land advances inside superblocks
// (Step-tail path), on fused-pair boundaries, and across event-buffer
// flushes.
func TestWalkerReplayMatchesHooked(t *testing.T) {
	hcfg := mem.DefaultHierarchyConfig()
	for _, name := range []string{"gcc", "mcf", "xz", "aes-bitslice"} {
		p := buildProg(t, name, 1<<40)
		fast := NewWalker(p, hcfg, true)
		ref := NewWalker(p, hcfg, true)
		for _, target := range []uint64{1, 997, 5_000, 5_003, 60_000} {
			if err := fast.Advance(target); err != nil {
				t.Fatal(err)
			}
			if err := ref.AdvanceHooked(target); err != nil {
				t.Fatal(err)
			}
			if fast.now != ref.now {
				t.Fatalf("%s@%d: pseudo-clock %d (replay) vs %d (hooked)", name, target, fast.now, ref.now)
			}
			if !reflect.DeepEqual(fast.Hier, ref.Hier) {
				t.Fatalf("%s@%d: warm hierarchies diverge between replay and hooked paths", name, target)
			}
			if !reflect.DeepEqual(fast.Pred, ref.Pred) {
				t.Fatalf("%s@%d: warm predictors diverge between replay and hooked paths", name, target)
			}
			fh, err := fast.Em.Snapshot().Hash()
			if err != nil {
				t.Fatal(err)
			}
			rh, err := ref.Em.Snapshot().Hash()
			if err != nil {
				t.Fatal(err)
			}
			if fh != rh {
				t.Fatalf("%s@%d: snapshot hashes diverge between replay and hooked paths", name, target)
			}
		}
	}
}
