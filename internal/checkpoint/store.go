package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"spt/internal/emu"
	"spt/internal/isa"
	"spt/internal/mem"
)

// Key identifies one checkpoint: which workload, how far in, and the exact
// program contents (so regenerated workloads never hit stale entries).
type Key struct {
	Workload string
	Skip     uint64
	Hash     [32]byte
}

// StoreStats counts what the store did. Builds is the number of functional
// passes actually executed — a grid over N schemes x M models that shares a
// store shows Builds == number of distinct (workload, skip) prefixes, the
// direct evidence that each prefix ran exactly once.
type StoreStats struct {
	Builds    uint64 // functional passes executed
	MemHits   uint64 // checkpoints served from memory
	DiskHits  uint64 // cold checkpoints served from disk without a pass
	DiskSaves uint64 // snapshot files written
}

// Store caches checkpoints. In memory it is a build-once map: concurrent
// Gets for one key block on a single builder (singleflight), so a parallel
// grid executes each workload prefix exactly once. With a directory
// configured, architectural snapshots also persist across processes.
//
// Disk files hold only architectural state (pages, registers, PC) — warm
// cache/predictor state is rebuilt by functional replay when requested, and
// the replayed snapshot's content hash is cross-checked against the file's,
// so results are bit-identical whether or not the file existed.
type Store struct {
	dir string

	mu      sync.Mutex
	entries map[Key]*storeEntry

	builds    atomic.Uint64
	memHits   atomic.Uint64
	diskHits  atomic.Uint64
	diskSaves atomic.Uint64
}

type storeEntry struct {
	ready chan struct{} // closed when cp/err are set
	cp    *Checkpoint
	err   error
}

// NewStore returns a store. dir is the on-disk cache directory; empty means
// memory-only. The directory is created on first save.
func NewStore(dir string) *Store {
	return &Store{dir: dir, entries: make(map[Key]*storeEntry)}
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Builds:    s.builds.Load(),
		MemHits:   s.memHits.Load(),
		DiskHits:  s.diskHits.Load(),
		DiskSaves: s.diskSaves.Load(),
	}
}

// Get returns the checkpoint for p's first skip instructions, building it
// at most once per key no matter how many goroutines ask. With warm set the
// checkpoint carries functionally warmed hierarchy/predictor state (built
// from hcfg); without it, a disk file can satisfy the request with no
// functional pass at all.
func (s *Store) Get(p *isa.Program, skip uint64, hcfg mem.HierarchyConfig, warm bool) (*Checkpoint, error) {
	key := Key{Workload: p.Name, Skip: skip, Hash: ProgramHash(p)}

	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		<-e.ready
		if e.err == nil {
			s.memHits.Add(1)
		}
		return e.cp, e.err
	}
	e := &storeEntry{ready: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()

	e.cp, e.err = s.build(key, p, skip, hcfg, warm)
	if e.err != nil {
		// Drop failed entries so a later call can retry (e.g. after the
		// user deletes a corrupt file).
		s.mu.Lock()
		delete(s.entries, key)
		s.mu.Unlock()
	}
	close(e.ready)
	return e.cp, e.err
}

func (s *Store) build(key Key, p *isa.Program, skip uint64, hcfg mem.HierarchyConfig, warm bool) (*Checkpoint, error) {
	disk, diskErr := s.load(key)
	if diskErr != nil {
		return nil, diskErr
	}
	if disk != nil && !warm {
		s.diskHits.Add(1)
		return &Checkpoint{Snap: disk}, nil
	}

	cp, err := Build(p, skip, hcfg, warm)
	if err != nil {
		return nil, err
	}
	s.builds.Add(1)

	if disk != nil {
		// Replayed and on-disk state must agree; a mismatch means the file
		// is stale or corrupt (the program hash matched, so the program is
		// not the culprit).
		want, err1 := disk.Hash()
		got, err2 := cp.Snap.Hash()
		if err1 != nil || err2 != nil || want != got {
			return nil, fmt.Errorf("checkpoint: on-disk snapshot for %s@%d does not match functional replay (stale or corrupt file %s)",
				key.Workload, key.Skip, s.path(key))
		}
		return cp, nil
	}
	if err := s.save(key, cp.Snap); err != nil {
		return nil, err
	}
	return cp, nil
}

// ckptMagic versions the checkpoint-file framing (which wraps the snapshot
// format versioned by its own magic).
const ckptMagic = "SPTCKPF1"

// path returns the file name for a key: workload, skip distance, and a
// short program-hash prefix for human-auditable cache directories.
func (s *Store) path(key Key) string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, key.Workload)
	return filepath.Join(s.dir, fmt.Sprintf("%s-skip%d-%s.ckpt", name, key.Skip, hex.EncodeToString(key.Hash[:6])))
}

// load reads and verifies the snapshot file for key, if the store has a
// directory and the file exists. A missing file returns (nil, nil); a
// present-but-invalid file returns an error rather than silently
// rebuilding, so corruption is never papered over.
func (s *Store) load(key Key) (*emu.Snapshot, error) {
	if s.dir == "" {
		return nil, nil
	}
	b, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if len(b) < len(ckptMagic)+32+32+8 || string(b[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("checkpoint: %s is not a checkpoint file", s.path(key))
	}
	b = b[len(ckptMagic):]
	var progHash, snapHash [32]byte
	copy(progHash[:], b[:32])
	copy(snapHash[:], b[32:64])
	skip := binary.LittleEndian.Uint64(b[64:72])
	body := b[72:]
	if progHash != key.Hash || skip != key.Skip {
		return nil, fmt.Errorf("checkpoint: %s was built for a different program or skip distance", s.path(key))
	}
	if sha256.Sum256(body) != snapHash {
		return nil, fmt.Errorf("checkpoint: %s failed its integrity check (corrupt)", s.path(key))
	}
	snap, err := emu.UnmarshalSnapshot(body)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", s.path(key), err)
	}
	return snap, nil
}

// save writes the snapshot file for key atomically (temp file + rename).
func (s *Store) save(key Key, snap *emu.Snapshot) error {
	if s.dir == "" {
		return nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	body, err := snap.MarshalBinary()
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	sum := sha256.Sum256(body)
	out := make([]byte, 0, len(ckptMagic)+32+32+8+len(body))
	out = append(out, ckptMagic...)
	out = append(out, key.Hash[:]...)
	out = append(out, sum[:]...)
	out = binary.LittleEndian.AppendUint64(out, key.Skip)
	out = append(out, body...)

	tmp, err := os.CreateTemp(s.dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.diskSaves.Add(1)
	return nil
}
