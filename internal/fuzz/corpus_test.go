package fuzz

import (
	"strings"
	"testing"

	"spt/internal/asm"
)

// TestCorpusRoundTrip: Format -> Parse recovers the metadata and an
// equivalent program.
func TestCorpusRoundTrip(t *testing.T) {
	c := Generate(7)
	e := CorpusEntry{
		Name: c.Name,
		Meta: map[string]string{
			"seed":        "7",
			"class":       string(c.Class),
			"primitive":   string(c.Primitive),
			"transmitter": string(c.Transmit),
			"leaks-under": "unsafe/futuristic unsafe/spectre",
			"clean-under": "spt/futuristic secure/futuristic",
		},
		Prog: c.Prog,
	}
	text := FormatCorpusEntry(e)
	if !strings.HasPrefix(text, "; name: "+c.Name+"\n") {
		t.Fatalf("header missing name:\n%s", text)
	}
	got, err := ParseCorpusEntry("file-name", text)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name {
		t.Fatalf("name %q, want %q", got.Name, c.Name)
	}
	if got.Meta["primitive"] != string(c.Primitive) || got.Meta["seed"] != "7" {
		t.Fatalf("metadata lost: %v", got.Meta)
	}
	lu := got.LeaksUnder()
	if len(lu) != 2 || lu[0] != (SchemeModel{"unsafe", "futuristic"}) || lu[1] != (SchemeModel{"unsafe", "spectre"}) {
		t.Fatalf("leaks-under parsed wrong: %v", lu)
	}
	if cu := got.CleanUnder(); len(cu) != 2 || cu[0].Scheme != "spt" {
		t.Fatalf("clean-under parsed wrong: %v", cu)
	}
	if asm.Disassemble(got.Prog) != asm.Disassemble(c.Prog) {
		t.Fatal("program did not round-trip")
	}
}

func TestParseSchemeModel(t *testing.T) {
	sm, err := ParseSchemeModel("stt/futuristic")
	if err != nil || sm.Scheme != "stt" || sm.Model != "futuristic" {
		t.Fatalf("got %v, %v", sm, err)
	}
	for _, bad := range []string{"", "stt", "stt/", "/futuristic", "a/b/c"} {
		if _, err := ParseSchemeModel(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestCheckedInCorpus re-runs the differential oracle on every reproducer
// under testdata/fuzz: each must still diverge in its leaks-under cells
// and stay clean in its clean-under cells. This is the permanent
// regression suite grown from fuzzing campaigns.
func TestCheckedInCorpus(t *testing.T) {
	entries, err := LoadCorpus("../../testdata/fuzz")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus reproducers found in testdata/fuzz")
	}
	for _, e := range entries {
		t.Run(e.Name, func(t *testing.T) {
			if len(e.LeaksUnder()) == 0 {
				t.Fatal("reproducer has no leaks-under cells")
			}
			for _, sm := range e.LeaksUnder() {
				v, err := CheckLeak(e.Prog, sm.Scheme, sm.Model)
				if err != nil {
					t.Fatalf("%s: %v", sm, err)
				}
				if !v.Leaked {
					t.Errorf("no longer leaks under %s", sm)
				}
			}
			for _, sm := range e.CleanUnder() {
				v, err := CheckLeak(e.Prog, sm.Scheme, sm.Model)
				if err != nil {
					t.Fatalf("%s: %v", sm, err)
				}
				if v.Leaked {
					t.Errorf("defense regression: leaks under %s (%s)", sm, v.Div)
				}
			}
		})
	}
}
