package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spt/internal/asm"
	"spt/internal/isa"
)

// SchemeModel names one oracle cell, e.g. {"stt", "futuristic"}.
type SchemeModel struct {
	Scheme string
	Model  string
}

func (sm SchemeModel) String() string { return sm.Scheme + "/" + sm.Model }

// ParseSchemeModel parses "scheme/model".
func ParseSchemeModel(s string) (SchemeModel, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return SchemeModel{}, fmt.Errorf("fuzz: bad scheme/model %q", s)
	}
	return SchemeModel{Scheme: parts[0], Model: parts[1]}, nil
}

// CorpusEntry is one checked-in reproducer: a minimized leaking program
// plus the metadata recorded when it was found. The regression tests
// re-run the oracle against LeaksUnder and CleanUnder.
type CorpusEntry struct {
	Name string
	// Meta holds the "; key: value" header fields verbatim.
	Meta map[string]string
	Prog *isa.Program
}

// LeaksUnder lists the cells the reproducer must still diverge in.
func (e CorpusEntry) LeaksUnder() []SchemeModel { return e.cells("leaks-under") }

// CleanUnder lists the cells the reproducer must stay clean in.
func (e CorpusEntry) CleanUnder() []SchemeModel { return e.cells("clean-under") }

func (e CorpusEntry) cells(key string) []SchemeModel {
	var out []SchemeModel
	for _, f := range strings.Fields(e.Meta[key]) {
		if sm, err := ParseSchemeModel(f); err == nil {
			out = append(out, sm)
		}
	}
	return out
}

// FormatCorpusEntry renders a reproducer in the .urisc corpus format: a
// "; key: value" metadata header followed by the program's disassembly
// (which the assembler round-trips; comments are ignored).
func FormatCorpusEntry(e CorpusEntry) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; name: %s\n", e.Name)
	keys := make([]string, 0, len(e.Meta))
	for k := range e.Meta {
		if k != "name" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "; %s: %s\n", k, e.Meta[k])
	}
	sb.WriteString(asm.Disassemble(e.Prog))
	return sb.String()
}

// ParseCorpusEntry parses the corpus format: metadata from the leading
// comment block, program from assembling the whole source.
func ParseCorpusEntry(name, src string) (CorpusEntry, error) {
	e := CorpusEntry{Name: name, Meta: map[string]string{}}
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, ";") {
			if line == "" {
				continue
			}
			break // end of the header block
		}
		kv := strings.SplitN(strings.TrimSpace(strings.TrimPrefix(line, ";")), ":", 2)
		if len(kv) == 2 {
			e.Meta[strings.TrimSpace(kv[0])] = strings.TrimSpace(kv[1])
		}
	}
	if n := e.Meta["name"]; n != "" {
		e.Name = n
	}
	prog, err := asm.Assemble(e.Name, src)
	if err != nil {
		return CorpusEntry{}, fmt.Errorf("fuzz: corpus %s: %w", name, err)
	}
	e.Prog = prog
	return e, nil
}

// LoadCorpus reads every *.urisc reproducer in dir, sorted by filename.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.urisc"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	entries := make([]CorpusEntry, 0, len(paths))
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		base := strings.TrimSuffix(filepath.Base(p), ".urisc")
		e, err := ParseCorpusEntry(base, string(src))
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// WriteCorpusEntry writes a reproducer to dir/<name>.urisc.
func WriteCorpusEntry(dir string, e CorpusEntry) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, e.Name+".urisc")
	return path, os.WriteFile(path, []byte(FormatCorpusEntry(e)), 0o644)
}
