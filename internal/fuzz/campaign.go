package fuzz

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"

	"spt/internal/attack"
	"spt/internal/isa"
)

// Campaign orchestration, deterministic by construction. A campaign is a
// sequence of generations; each generation plans PerGen units, and a unit
// is either a fresh seed-pure Generate case, a mutant of a checked-in
// corpus reproducer, or a mutant of an earlier unit that opened a new
// coverage bucket. Planning for generation g depends only on the campaign
// config, the corpus, and the *shapes* of generations < g — never on
// oracle results — and shapes are cheap enough (two functional runs plus
// one reference simulation per unit) that every shard computes them for
// every unit. Only the expensive oracle grid is sharded. That split is
// what makes shard merges exact: shards agree on every planning input, so
// their unit records differ only in which ones carry oracle results, and
// a merge is a disjoint union.

// Unit kinds.
const (
	KindGenerate       = "generate"        // fresh seed-pure Generate case
	KindCorpusMutant   = "corpus-mutant"   // mutation of a checked-in reproducer
	KindCoverageMutant = "coverage-mutant" // mutation of a frontier unit
)

// CampaignConfig is the deterministic identity of a campaign. Two runs
// with equal configs (and equal corpora) plan identical units.
type CampaignConfig struct {
	// Seed is the base seed; unit u generates from Seed+u, mutants derive
	// a mixed per-unit mutation seed.
	Seed int64 `json:"seed"`
	// Generations and PerGen size the campaign: Generations*PerGen units.
	Generations int `json:"generations"`
	PerGen      int `json:"per_gen"`
	// Schemes and Models define the oracle grid evaluated per unit.
	Schemes []string `json:"schemes"`
	Models  []string `json:"models"`
}

// Units is the campaign's total unit count.
func (c CampaignConfig) Units() int { return c.Generations * c.PerGen }

// Digest fingerprints the config plus the mutation corpus contents.
// Shard-merge and resume refuse states whose digests differ: a campaign's
// plan is only reproducible against the exact corpus it started from.
func (c CampaignConfig) Digest(corpus []CorpusEntry) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d gens=%d per=%d", c.Seed, c.Generations, c.PerGen)
	for _, s := range c.Schemes {
		fmt.Fprintf(h, " s:%s", s)
	}
	for _, m := range c.Models {
		fmt.Fprintf(h, " m:%s", m)
	}
	for _, e := range corpus {
		fmt.Fprintf(h, " corpus:%s:", e.Name)
		h.Write([]byte(FormatCorpusEntry(e)))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// CellLeak records one leaking oracle cell of a unit.
type CellLeak struct {
	Scheme string `json:"scheme"`
	Model  string `json:"model"`
	// Expected is the ground-truth matrix verdict: true-positive control
	// vs. defense failure.
	Expected bool `json:"expected"`
	// Divergence is the first-divergent-event description.
	Divergence string `json:"divergence"`
	// Kinds is the event-kind pair at the divergence (e.g. "L/T", "L/end"),
	// the address- and cycle-insensitive signal triage clusters on.
	Kinds string `json:"kinds"`
}

// UnitRecord is the canonical per-unit campaign state. The plan fields
// and the realization/shape fields are pure functions of (config, corpus)
// and are computed identically by every shard; the oracle fields are
// filled only by the unit's owning shard. The state file is exactly
// []UnitRecord — coverage maps and triage tables are derived views.
type UnitRecord struct {
	// Plan fields.
	Unit   int    `json:"unit"`
	Gen    int    `json:"gen"`
	Kind   string `json:"kind"`
	Seed   int64  `json:"seed"`             // Generate seed, or mutation rng seed
	Parent int    `json:"parent,omitempty"` // coverage-mutant: parent unit id
	Corpus string `json:"corpus,omitempty"` // corpus-mutant: entry name

	// Realization/shape fields (deterministic, computed by every shard).
	Name        string `json:"name,omitempty"`
	Class       string `json:"class,omitempty"`
	Primitive   string `json:"primitive,omitempty"`
	Transmitter string `json:"transmitter,omitempty"`
	Op          string `json:"op,omitempty"` // mutation operator applied
	Insns       int    `json:"insns,omitempty"`
	// Rejected names why a mutant broke the differential contract (or had
	// no mutation site); rejected units carry no bucket and are not
	// evaluated.
	Rejected string `json:"rejected,omitempty"`
	Bucket   string `json:"bucket,omitempty"`

	// Oracle fields (owning shard only).
	Done      bool       `json:"done,omitempty"`
	EvalError string     `json:"eval_error,omitempty"`
	Leaks     []CellLeak `json:"leaks,omitempty"`
}

// mutantSeed derives the mutation rng seed for a unit: a splitmix-style
// mix so neighbouring units do not get correlated rng streams.
func mutantSeed(base int64, unit int) int64 {
	x := uint64(base) + 0x9e3779b97f4a7c15*uint64(unit+1)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int64(x)
}

// PlanGeneration plans generation gen's unit records (plan fields only).
// prior must hold the shaped records of all earlier generations in
// ascending unit order. The mix: in generation 0 everything is fresh
// except a corpus-mutant every 4th slot; later generations give every odd
// slot to a mutation of the previous generation's coverage frontier (the
// units that opened buckets no earlier unit had hit), keeping the other
// half fresh so the campaign never stops exploring.
func PlanGeneration(cfg CampaignConfig, corpus []CorpusEntry, gen int, prior []UnitRecord) []UnitRecord {
	// Replay coverage over the prior records to find the frontier: units
	// of generation gen-1 that opened a new bucket.
	cov := NewCoverage()
	var frontier []int
	for _, u := range prior {
		if u.Bucket == "" {
			continue
		}
		if cov.Add(u.Bucket, u.Unit) && u.Gen == gen-1 {
			frontier = append(frontier, u.Unit)
		}
	}

	recs := make([]UnitRecord, 0, cfg.PerGen)
	for j := 0; j < cfg.PerGen; j++ {
		u := gen*cfg.PerGen + j
		rec := UnitRecord{Unit: u, Gen: gen}
		switch {
		case gen > 0 && len(frontier) > 0 && j%2 == 1:
			rec.Kind = KindCoverageMutant
			rec.Parent = frontier[(j/2)%len(frontier)]
			rec.Seed = mutantSeed(cfg.Seed, u)
		case len(corpus) > 0 && j%4 == 2:
			rec.Kind = KindCorpusMutant
			rec.Corpus = corpus[(u/4)%len(corpus)].Name
			rec.Seed = mutantSeed(cfg.Seed, u)
		default:
			rec.Kind = KindGenerate
			rec.Seed = cfg.Seed + int64(u)
		}
		recs = append(recs, rec)
	}
	return recs
}

// corpusCase rebuilds a Case from a checked-in reproducer's metadata, so
// mutants of corpus entries carry the ground-truth class/primitive the
// ExpectLeak matrix needs.
func corpusCase(e CorpusEntry) (Case, error) {
	class := Class(e.Meta["class"])
	prim := Primitive(e.Meta["primitive"])
	tx := Transmitter(e.Meta["transmitter"])
	if class == "" || prim == "" || tx == "" {
		return Case{}, fmt.Errorf("fuzz: corpus entry %s lacks class/primitive/transmitter metadata", e.Name)
	}
	seed, _ := strconv.ParseInt(e.Meta["seed"], 10, 64)
	return Case{Seed: seed, Name: e.Name, Class: class, Primitive: prim, Transmit: tx, Prog: e.Prog}, nil
}

// RealizeUnit reconstructs a unit's Case from its plan record. all must
// be the dense unit-indexed record slice (all[u].Unit == u) covering
// every earlier unit, so coverage-mutant parent chains can be realized
// recursively. op names the mutation operator applied (empty for fresh
// cases); reject is non-empty when a mutant had no mutation site.
// Structural impossibilities (dangling parent, missing corpus entry) are
// errors because they mean the state and config disagree.
func RealizeUnit(rec UnitRecord, all []UnitRecord, corpus []CorpusEntry) (c Case, op, reject string, err error) {
	switch rec.Kind {
	case KindGenerate:
		return Generate(rec.Seed), "", "", nil

	case KindCorpusMutant:
		var base Case
		found := false
		for _, e := range corpus {
			if e.Name == rec.Corpus {
				bc, cerr := corpusCase(e)
				if cerr != nil {
					return Case{}, "", "", cerr
				}
				base, found = bc, true
				break
			}
		}
		if !found {
			return Case{}, "", "", fmt.Errorf("fuzz: unit %d mutates unknown corpus entry %q", rec.Unit, rec.Corpus)
		}
		return mutateCase(base, rec)

	case KindCoverageMutant:
		if rec.Parent < 0 || rec.Parent >= len(all) || all[rec.Parent].Unit != rec.Parent {
			return Case{}, "", "", fmt.Errorf("fuzz: unit %d has dangling parent %d", rec.Unit, rec.Parent)
		}
		base, _, preject, perr := RealizeUnit(all[rec.Parent], all, corpus)
		if perr != nil || preject != "" {
			return Case{}, "", "", fmt.Errorf("fuzz: unit %d parent %d unrealizable (%s)", rec.Unit, rec.Parent, preject)
		}
		return mutateCase(base, rec)
	}
	return Case{}, "", "", fmt.Errorf("fuzz: unit %d has unknown kind %q", rec.Unit, rec.Kind)
}

// mutateCase applies the unit's seeded mutation to a base case.
func mutateCase(base Case, rec UnitRecord) (Case, string, string, error) {
	rng := rand.New(rand.NewSource(rec.Seed))
	prog, tx, op, ok := Mutate(base.Prog, base.Transmit, rng)
	if !ok {
		return Case{}, "", "no-mutation-site", nil
	}
	c := base
	c.Seed = rec.Seed
	c.Name = fmt.Sprintf("%s+m%d", base.Name, rec.Unit)
	c.Transmit = tx
	c.Prog = prog
	c.Prog.Name = c.Name
	return c, op, "", nil
}

// ShapeUnit realizes a unit and computes its reference shape, returning
// the filled record, the realized case, and the reference observation
// trace (the unsafe/futuristic SecretA trace, reusable by EvalUnit).
// Mutants that violate the differential contract — architecturally
// divergent twins, non-termination — come back with Rejected set; the
// same violations on a fresh Generate case are an error, because the
// generator guarantees the contract.
func ShapeUnit(rec UnitRecord, all []UnitRecord, corpus []CorpusEntry) (UnitRecord, Case, []string, error) {
	c, op, reject, err := RealizeUnit(rec, all, corpus)
	if err != nil {
		return rec, Case{}, nil, err
	}
	if reject != "" {
		rec.Rejected = reject
		return rec, Case{}, nil, nil
	}
	rec.Op = op
	rec.Name = c.Name
	rec.Class = string(c.Class)
	rec.Primitive = string(c.Primitive)
	rec.Transmitter = string(c.Transmit)
	rec.Insns = len(c.Prog.Code)

	reFail := func(stage string, cause error) (UnitRecord, Case, []string, error) {
		if rec.Kind == KindGenerate {
			return rec, Case{}, nil, fmt.Errorf("fuzz: generated unit %d breaks the %s contract: %w", rec.Unit, stage, cause)
		}
		rec.Rejected = fmt.Sprintf("%s: %v", stage, cause)
		return rec, Case{}, nil, nil
	}

	pa := PatchSecret(c.Prog, SecretA)
	pb := PatchSecret(c.Prog, SecretB)
	same, err := ArchSame(pa, pb)
	if err != nil {
		return reFail("termination", err)
	}
	if !same {
		return reFail("arch-sameness", fmt.Errorf("architectural executions diverge across secrets"))
	}
	trace, sh, err := ReferenceObservation(pa)
	if err != nil {
		return reFail("reference-run", err)
	}
	rec.Bucket = BucketKey(c.Primitive, c.Transmit, sh)
	return rec, c, trace, nil
}

// EvalUnit runs the oracle grid for one shaped unit: the SecretA/SecretB
// twins under every (scheme, model) cell, diffing observation traces.
// refTrace, when non-nil, must be the unit's reference observation (the
// SecretA unsafe/futuristic trace) — that cell's A-side simulation is
// then skipped, which is the campaign-scale amortization: the shape phase
// already paid for it. The arch-sameness contract is ShapeUnit's job and
// is not re-checked here. Only leaking cells are returned.
func EvalUnit(c Case, schemes, models []string, refTrace []string) ([]CellLeak, error) {
	pa := PatchSecret(c.Prog, SecretA)
	pb := PatchSecret(c.Prog, SecretB)
	var leaks []CellLeak
	for _, s := range schemes {
		for _, m := range models {
			mv, err := ModelByName(m)
			if err != nil {
				return nil, err
			}
			var ta []string
			if s == "unsafe" && m == "futuristic" && refTrace != nil {
				ta = refTrace
			} else {
				polA, err := PolicyByName(s)
				if err != nil {
					return nil, err
				}
				if ta, err = attack.ObservationTrace(pa, mv, polA); err != nil {
					return nil, fmt.Errorf("fuzz: %s under %s/%s: %w", c.Name, s, m, err)
				}
			}
			polB, err := PolicyByName(s)
			if err != nil {
				return nil, err
			}
			tb, err := attack.ObservationTrace(pb, mv, polB)
			if err != nil {
				return nil, fmt.Errorf("fuzz: %s under %s/%s: %w", c.Name, s, m, err)
			}
			if div := DiffTraces(ta, tb); div != nil {
				leaks = append(leaks, CellLeak{
					Scheme:     s,
					Model:      m,
					Expected:   ExpectLeak(s, m, c),
					Divergence: div.String(),
					Kinds:      divKinds(div),
				})
			}
		}
	}
	return leaks, nil
}

// divKinds names the event-kind pair at a divergence, e.g. "L/T" for a
// load event where the other secret produced a store translation, or
// "R/end" when one trace simply ends early.
func divKinds(d *Divergence) string {
	kind := func(ev string) string {
		if ev == "" {
			return "end"
		}
		return string(ev[0])
	}
	return kind(d.A) + "/" + kind(d.B)
}

// OwnsUnit reports whether shard (of shards total) owns a unit's oracle
// evaluation. Ownership is round-robin by unit id so every shard touches
// every generation.
func OwnsUnit(unit, shard, shards int) bool {
	if shards <= 1 {
		return true
	}
	return unit%shards == shard
}

// SkeletonDigest hashes a program's opcode sequence (FNV-1a). Triage uses
// it as the second-level cluster key: two leaks whose minimized
// reproducers share an opcode skeleton are the same gadget shape with
// different constants.
func SkeletonDigest(prog *isa.Program) uint64 {
	h := fnv.New64a()
	for _, ins := range prog.Code {
		h.Write([]byte{byte(ins.Op)})
	}
	return h.Sum64()
}
