package fuzz

import (
	"fmt"

	"spt/internal/attack"
	"spt/internal/emu"
	"spt/internal/isa"
)

// PatchSecret returns a copy of prog with the byte at attack.SecretAddr
// set to secret. Generated programs keep the secret purely in the data
// image, so the two differential twins share identical code.
func PatchSecret(prog *isa.Program, secret byte) *isa.Program {
	q := *prog
	q.Data = make([]isa.Segment, len(prog.Data))
	for i, seg := range prog.Data {
		bytes := make([]byte, len(seg.Bytes))
		copy(bytes, seg.Bytes)
		if seg.Addr <= attack.SecretAddr && attack.SecretAddr < seg.Addr+uint64(len(bytes)) {
			bytes[attack.SecretAddr-seg.Addr] = secret
		}
		q.Data[i] = isa.Segment{Addr: seg.Addr, Bytes: bytes}
	}
	return &q
}

// archSteps bounds the functional run; generated programs are loop-free
// and tiny, so anything past this is a broken candidate.
const archSteps = 1 << 16

// archDigest runs prog on the functional emulator and hashes everything an
// architectural observer sees: the retired PC sequence, every conditional
// branch outcome, every memory access address, and every stored value
// (FNV-1a). Branch outcomes are hashed separately from the PC sequence
// because a taken branch with offset 1 lands on the same PC as its
// fall-through — architecturally a no-op, but the direction mispredict
// still squashes and replays younger accesses, which no scheme hides. A
// secret-dependent condition is a constant-time violation by the victim,
// outside Definition 1's contract, so the oracle must reject it.
func archDigest(prog *isa.Program) (uint64, error) {
	e := emu.New(prog)
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	for steps := 0; !e.State.Halted; steps++ {
		if steps >= archSteps {
			return 0, fmt.Errorf("fuzz: %s did not terminate in %d steps", prog.Name, archSteps)
		}
		pc := e.State.PC
		if pc >= uint64(len(prog.Code)) {
			return 0, emu.ErrPCOutOfRange{PC: pc}
		}
		ins := prog.Code[pc]
		mix(pc)
		if ins.IsCondBranch() {
			if emu.BranchTaken(ins.Op, e.State.Regs[ins.Rs1], e.State.Regs[ins.Rs2]) {
				mix(1)
			} else {
				mix(2)
			}
		}
		if ins.IsMem() {
			mix(e.State.Regs[ins.Rs1] + uint64(ins.Imm))
			if ins.IsStore() {
				mix(e.State.Regs[ins.Rs2])
			}
		}
		if err := e.Step(); err != nil {
			return 0, err
		}
	}
	return h, nil
}

// ArchSame reports whether two programs have identical architectural
// executions (same control flow, memory addresses and stored values).
// When it holds, the secret is never transmitted non-speculatively, so
// any observation-trace divergence is a transient-execution leak.
func ArchSame(a, b *isa.Program) (bool, error) {
	da, err := archDigest(a)
	if err != nil {
		return false, err
	}
	db, err := archDigest(b)
	if err != nil {
		return false, err
	}
	return da == db, nil
}

// Divergence pinpoints the first difference between two observation
// traces.
type Divergence struct {
	// Index of the first differing event.
	Index int
	// A and B are the events at Index ("" where a trace has ended).
	A, B string
	// LenA and LenB are the full trace lengths.
	LenA, LenB int
}

func (d *Divergence) String() string {
	if d == nil {
		return "traces identical"
	}
	ev := func(s string) string {
		if s == "" {
			return "<end>"
		}
		return s
	}
	return fmt.Sprintf("first divergence at event %d: %s vs %s (lengths %d/%d)",
		d.Index, ev(d.A), ev(d.B), d.LenA, d.LenB)
}

// DiffTraces compares two observation traces and returns the first
// divergent event, or nil if the traces are identical.
func DiffTraces(a, b []string) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return &Divergence{Index: i, A: a[i], B: b[i], LenA: len(a), LenB: len(b)}
		}
	}
	if len(a) != len(b) {
		d := &Divergence{Index: n, LenA: len(a), LenB: len(b)}
		if n < len(a) {
			d.A = a[n]
		}
		if n < len(b) {
			d.B = b[n]
		}
		return d
	}
	return nil
}

// Verdict is the oracle's answer for one (program, scheme, model) cell.
type Verdict struct {
	// Leaked is true when the observation traces diverge across secrets.
	Leaked bool
	// Div describes the first divergent event when Leaked.
	Div *Divergence
}

// CheckLeak runs the differential oracle: prog with SecretA and SecretB
// under the scheme's policy, diffing the observation traces. It first
// re-verifies the generator's arch-sameness contract on the functional
// emulator and errors out if the candidate violates it (such a program
// transmits its secret architecturally, so a divergence would not be a
// speculation leak).
func CheckLeak(prog *isa.Program, scheme, model string) (Verdict, error) {
	return CheckLeakWith(prog, scheme, model, SecretA, SecretB)
}

// CheckLeakWith is CheckLeak with an explicit secret pair. The symbolic
// oracle's leak witnesses are replayed through it: a cell where the
// default pair happens to collide is re-checked on the pair the
// relational analysis says must diverge.
func CheckLeakWith(prog *isa.Program, scheme, model string, secretA, secretB byte) (Verdict, error) {
	pa := PatchSecret(prog, secretA)
	pb := PatchSecret(prog, secretB)
	same, err := ArchSame(pa, pb)
	if err != nil {
		return Verdict{}, err
	}
	if !same {
		return Verdict{}, fmt.Errorf("fuzz: %s transmits its secret architecturally", prog.Name)
	}
	m, err := ModelByName(model)
	if err != nil {
		return Verdict{}, err
	}
	polA, err := PolicyByName(scheme)
	if err != nil {
		return Verdict{}, err
	}
	polB, err := PolicyByName(scheme)
	if err != nil {
		return Verdict{}, err
	}
	ta, err := attack.ObservationTrace(pa, m, polA)
	if err != nil {
		return Verdict{}, fmt.Errorf("fuzz: %s secret=%#x: %w", prog.Name, secretA, err)
	}
	tb, err := attack.ObservationTrace(pb, m, polB)
	if err != nil {
		return Verdict{}, fmt.Errorf("fuzz: %s secret=%#x: %w", prog.Name, secretB, err)
	}
	div := DiffTraces(ta, tb)
	return Verdict{Leaked: div != nil, Div: div}, nil
}
