package fuzz

import "spt/internal/isa"

// Minimize shrinks a leaking program by instruction-range bisection: it
// repeatedly tries to delete chunks of instructions (halving the chunk
// size down to single instructions) and keeps a deletion whenever keep
// still accepts the candidate. Branch and call offsets are rebuilt around
// each deletion; candidates whose control flow can no longer be expressed
// (or that fail validation) are rejected before keep ever runs. The result
// is 1-minimal with respect to keep at chunk size 1.
//
// keep must accept the original program, and should re-run the full
// oracle (arch-sameness + trace divergence), so semantic breakage from a
// deletion simply rejects the candidate.
func Minimize(prog *isa.Program, keep func(*isa.Program) bool) *isa.Program {
	cur := prog
	for {
		before := len(cur.Code)
		for chunk := len(cur.Code) / 2; chunk >= 1; chunk /= 2 {
			lo := 0
			for lo+chunk <= len(cur.Code) {
				if cand, ok := removeRange(cur, lo, chunk); ok && keep(cand) {
					cur = cand
					continue // same lo now covers the next instructions
				}
				lo++
			}
		}
		if len(cur.Code) == before {
			return cur
		}
	}
}

// removeRange deletes code[lo : lo+n] and retargets the remaining
// control flow. Relative targets (conditional branches, JAL) that pointed
// into the deleted range are redirected to the first surviving
// instruction after it; targets outside the code bounds reject the
// candidate. JALR targets are absolute register values the rewrite cannot
// see — the oracle-driven keep predicate catches candidates they break.
func removeRange(prog *isa.Program, lo, n int) (*isa.Program, bool) {
	hi := lo + n
	total := len(prog.Code)
	if lo < 0 || hi > total || n >= total {
		return nil, false
	}
	// newIdx[i] = index, in the shrunk program, of the first surviving
	// instruction at or after old index i (defined for i in [0, total]).
	newIdx := make([]int, total+1)
	for i := 0; i <= total; i++ {
		cut := 0
		if i > lo {
			cut = i - lo
			if cut > n {
				cut = n
			}
		}
		newIdx[i] = i - cut
	}
	code := make([]isa.Instruction, 0, total-n)
	for i, ins := range prog.Code {
		if i >= lo && i < hi {
			continue
		}
		if ins.IsCondBranch() || ins.Op == isa.JAL {
			target := i + int(ins.Imm)
			if target < 0 || target > total {
				return nil, false
			}
			ins.Imm = int64(newIdx[target] - newIdx[i])
		}
		code = append(code, ins)
	}
	entry := prog.Entry
	if entry <= uint64(total) {
		entry = uint64(newIdx[entry])
	}
	q := &isa.Program{Name: prog.Name, Code: code, Data: prog.Data, Entry: entry}
	if err := q.Validate(); err != nil {
		return nil, false
	}
	return q, true
}
