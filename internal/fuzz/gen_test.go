package fuzz

import (
	"fmt"
	"testing"

	"spt/internal/asm"
)

// TestGenerateDeterministic: a case is a pure function of its seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Name != b.Name || a.Class != b.Class || a.Primitive != b.Primitive || a.Transmit != b.Transmit {
			t.Fatalf("seed %d: metadata differs: %+v vs %+v", seed, a, b)
		}
		if asm.Disassemble(a.Prog) != asm.Disassemble(b.Prog) {
			t.Fatalf("seed %d: program differs between generations", seed)
		}
	}
}

// TestGeneratedProgramsAreArchSame: the generator's core contract — the
// two secret twins of every case have identical architectural executions,
// so the differential oracle's divergences are speculation leaks.
func TestGeneratedProgramsAreArchSame(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		c := Generate(seed)
		same, err := ArchSame(PatchSecret(c.Prog, SecretA), PatchSecret(c.Prog, SecretB))
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, c.Name, err)
		}
		if !same {
			t.Fatalf("seed %d (%s): architectural execution depends on the secret", seed, c.Name)
		}
	}
}

// TestExpectationMatrix: the oracle's verdict matches the ground-truth
// ExpectLeak matrix on every (case, scheme, model) cell: the unsafe
// baseline leaks every gadget, STT leaks exactly the non-speculative
// secrets (plus store-bypass under Spectre, which is out of that threat
// model for every scheme), and all SPT variants and the secure baseline
// are otherwise clean.
func TestExpectationMatrix(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		c := Generate(seed)
		for _, scheme := range SchemeNames() {
			for _, model := range ModelNames() {
				v, err := CheckLeak(c.Prog, scheme, model)
				if err != nil {
					t.Fatalf("seed %d %s/%s: %v", seed, scheme, model, err)
				}
				if want := ExpectLeak(scheme, model, c); v.Leaked != want {
					t.Errorf("%s under %s/%s: leaked=%v want %v (%s)",
						c.Name, scheme, model, v.Leaked, want, v.Div)
				}
			}
		}
	}
}

// TestGeneratorCoversAllShapes: every primitive, class and transmitter
// combination the generator supports appears within a modest seed range.
func TestGeneratorCoversAllShapes(t *testing.T) {
	combos := map[string]bool{}
	for seed := int64(1); seed <= 200; seed++ {
		c := Generate(seed)
		combos[fmt.Sprintf("%s/%s/%s", c.Primitive, c.Class, c.Transmit)] = true
	}
	want := []string{}
	for _, p := range []Primitive{PrimBranch, PrimReturn, PrimIndirect} {
		for _, cl := range []Class{ClassSpecSecret, ClassNonSpecSecret} {
			for _, tx := range []Transmitter{TxLoad, TxStore} {
				want = append(want, fmt.Sprintf("%s/%s/%s", p, cl, tx))
			}
		}
	}
	for _, tx := range []Transmitter{TxLoad, TxStore, TxBranch} {
		want = append(want, fmt.Sprintf("%s/%s/%s", PrimStoreBypass, ClassSpecSecret, tx))
	}
	for _, w := range want {
		if !combos[w] {
			t.Errorf("combination %s never generated in 200 seeds", w)
		}
	}
}
