package fuzz

import (
	"math/rand"

	"spt/internal/isa"
)

// Corpus evolution: campaigns do not only generate fresh seed-pure
// gadgets, they also mutate known-interesting programs — checked-in
// .urisc reproducers and cases that opened new coverage buckets. The
// operators below are deliberately conservative: they only touch scratch
// ALU immediates, insert scratch-register filler, or swap the two memory
// transmitters, so a mutant either keeps the differential contract
// (identical architectural twins) or breaks it in a way the oracle's
// contract re-check rejects. Nothing here can silently change which
// ground-truth class a gadget belongs to.

// Mutation operator names, recorded in unit provenance.
const (
	MutPerturb = "perturb" // operand perturbation of a scratch ALU immediate
	MutStretch = "stretch" // window stretching: insert scratch filler
	MutSwapTx  = "swaptx"  // transmitter swap: load <-> store channel
)

// scratch registers the generator's filler uses (gen.go); mutations that
// only touch these cannot interfere with gadget scaffolding registers
// (r16..r23) or the kit's address computations.
const (
	scratchLo = isa.Reg(5)
	scratchHi = isa.Reg(15)
)

func isScratch(r isa.Reg) bool { return r >= scratchLo && r <= scratchHi }

// Mutate applies one randomly chosen operator to prog and returns the
// mutant, its (possibly swapped) transmitter, and the operator name. It
// is a pure function of (prog, tx, rng state). ok is false when no
// operator applies to the program (no mutable site found).
func Mutate(prog *isa.Program, tx Transmitter, rng *rand.Rand) (*isa.Program, Transmitter, string, bool) {
	// Try the operators in a seed-determined order so every program with
	// at least one mutable site yields a mutant.
	ops := []string{MutPerturb, MutStretch, MutSwapTx}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	for _, op := range ops {
		switch op {
		case MutPerturb:
			if q, ok := perturbImmediate(prog, rng); ok {
				return q, tx, op, true
			}
		case MutStretch:
			if q, ok := stretchWindow(prog, rng); ok {
				return q, tx, op, true
			}
		case MutSwapTx:
			if q, tx2, ok := swapTransmitter(prog, tx, rng); ok {
				return q, tx2, op, true
			}
		}
	}
	return nil, tx, "", false
}

// perturbImmediate rewrites the immediate of one scratch-destination ALU
// instruction. Scratch registers never feed addresses the gadget
// scaffolding depends on, so both secret twins change identically and
// arch-sameness is preserved by construction; what changes is the noise
// environment the speculation window runs in.
func perturbImmediate(prog *isa.Program, rng *rand.Rand) (*isa.Program, bool) {
	var sites []int
	for i, ins := range prog.Code {
		switch ins.Op {
		case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI:
			if isScratch(ins.Rd) && isScratch(ins.Rs1) {
				sites = append(sites, i)
			}
		}
	}
	if len(sites) == 0 {
		return nil, false
	}
	at := sites[rng.Intn(len(sites))]
	q := cloneCode(prog)
	ins := &q.Code[at]
	if ins.Op == isa.SHLI {
		ins.Imm = rng.Int63n(48)
	} else {
		ins.Imm ^= 1 + rng.Int63n(255)
	}
	return q, q.Validate() == nil
}

// stretchWindow inserts 1-3 scratch ALU instructions at a random point,
// retargeting relative control flow across the insertion. Inserted
// between a slow-resolving guard and its gadget it stretches the
// transient window; inserted inside a length-calibrated window (return /
// indirect gadgets encode code distances in their slow cells) it breaks
// the calibration — and the oracle's contract check rejects the mutant.
func stretchWindow(prog *isa.Program, rng *rand.Rand) (*isa.Program, bool) {
	n := 1 + rng.Intn(3)
	fill := make([]isa.Instruction, n)
	for i := range fill {
		r := isa.Reg(int(scratchLo) + rng.Intn(int(scratchHi-scratchLo)+1))
		fill[i] = isa.Instruction{Op: isa.ADDI, Rd: r, Rs1: r, Imm: rng.Int63n(31)}
	}
	return insertAt(prog, rng.Intn(len(prog.Code)+1), fill)
}

// transmit patterns as emitted by attack.Kit: the load transmitter is
// {shli tmp,val,6; add tmp,tmp,probe; ld tmp,0(tmp)}, the store
// transmitter {shli tmp,val,12; add tmp,tmp,probe; stb zero,0(tmp)}.
func isLoadTransmit(c []isa.Instruction, i int) bool {
	if i+2 >= len(c) {
		return false
	}
	s, a, l := c[i], c[i+1], c[i+2]
	return s.Op == isa.SHLI && s.Imm == 6 &&
		a.Op == isa.ADD && a.Rd == s.Rd && a.Rs1 == s.Rd &&
		l.Op == isa.LD && l.Rd == s.Rd && l.Rs1 == s.Rd && l.Imm == 0
}

func isStoreTransmit(c []isa.Instruction, i int) bool {
	if i+2 >= len(c) {
		return false
	}
	s, a, st := c[i], c[i+1], c[i+2]
	return s.Op == isa.SHLI && s.Imm == 12 &&
		a.Op == isa.ADD && a.Rd == s.Rd && a.Rs1 == s.Rd &&
		st.Op == isa.STB && st.Rs1 == s.Rd && st.Rs2 == isa.Zero && st.Imm == 0
}

// swapTransmitter rewrites one transmit sequence to the other memory
// channel: the cache-line load channel becomes the page-stride store
// (TLB) channel or vice versa. Instruction count is unchanged, so no
// control flow needs retargeting and window calibrations survive.
func swapTransmitter(prog *isa.Program, tx Transmitter, rng *rand.Rand) (*isa.Program, Transmitter, bool) {
	var loads, stores []int
	for i := range prog.Code {
		if isLoadTransmit(prog.Code, i) {
			loads = append(loads, i)
		} else if isStoreTransmit(prog.Code, i) {
			stores = append(stores, i)
		}
	}
	if len(loads)+len(stores) == 0 {
		return nil, tx, false
	}
	pick := rng.Intn(len(loads) + len(stores))
	q := cloneCode(prog)
	newTx := tx
	if pick < len(loads) {
		i := loads[pick]
		tmp := q.Code[i].Rd
		q.Code[i].Imm = 12
		q.Code[i+2] = isa.Instruction{Op: isa.STB, Rs1: tmp, Rs2: isa.Zero}
		if tx == TxLoad {
			newTx = TxStore
		}
	} else {
		i := stores[pick-len(loads)]
		tmp := q.Code[i].Rd
		q.Code[i].Imm = 6
		q.Code[i+2] = isa.Instruction{Op: isa.LD, Rd: tmp, Rs1: tmp}
		if tx == TxStore {
			newTx = TxLoad
		}
	}
	return q, newTx, q.Validate() == nil
}

// cloneCode copies prog with a private code slice (data is never mutated,
// so segments are shared).
func cloneCode(prog *isa.Program) *isa.Program {
	q := *prog
	q.Code = make([]isa.Instruction, len(prog.Code))
	copy(q.Code, prog.Code)
	return &q
}

// insertAt inserts instructions before index at, retargeting the relative
// control flow (conditional branches and JAL) that crosses the insertion
// point — the mirror image of removeRange in minimize.go. JALR targets
// are absolute register values the rewrite cannot see; the oracle-driven
// contract check catches mutants they break.
func insertAt(prog *isa.Program, at int, ins []isa.Instruction) (*isa.Program, bool) {
	total := len(prog.Code)
	n := len(ins)
	if at < 0 || at > total || n == 0 {
		return nil, false
	}
	shift := func(i int) int {
		if i >= at {
			return i + n
		}
		return i
	}
	code := make([]isa.Instruction, 0, total+n)
	for i, old := range prog.Code {
		if i == at {
			code = append(code, ins...)
		}
		if old.IsCondBranch() || old.Op == isa.JAL {
			target := i + int(old.Imm)
			if target < 0 || target > total {
				return nil, false
			}
			old.Imm = int64(shift(target) - shift(i))
		}
		code = append(code, old)
	}
	if at == total {
		code = append(code, ins...)
	}
	entry := prog.Entry
	if int(entry) >= at {
		entry += uint64(n)
	}
	q := &isa.Program{Name: prog.Name, Code: code, Data: prog.Data, Entry: entry}
	if err := q.Validate(); err != nil {
		return nil, false
	}
	return q, true
}
