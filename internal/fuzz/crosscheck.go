package fuzz

import (
	"fmt"

	"spt/internal/attack"
	"spt/internal/isa"
	"spt/internal/symx"
)

// SymxConfig is the symbolic oracle configuration matching the fuzz
// harness's gadget contract: a one-byte secret at attack.SecretAddr.
func SymxConfig() symx.Config {
	return symx.Config{Secret: symx.SecretSpec{Addr: attack.SecretAddr, Size: 1}}
}

// Agreement classifies one two-oracle comparison.
type Agreement string

const (
	// AgreeSecure: both oracles say the cell is clean.
	AgreeSecure Agreement = "agree-secure"
	// AgreeLeak: both oracles observe a leak.
	AgreeLeak Agreement = "agree-leak"
	// SymLeakConfirmed: the symbolic oracle found a leak the fuzzer's
	// default secret pair missed, and replaying the symbolic witness pair
	// through the differential oracle confirmed the divergence. The
	// fuzzer was under-testing this cell; the witness makes a reproducer.
	SymLeakConfirmed Agreement = "sym-leak-confirmed"
	// SymUnknown: the symbolic oracle abstained; the fuzzer's verdict
	// stands uncontested.
	SymUnknown Agreement = "sym-unknown"
	// SoundnessBug: the symbolic oracle proved the cell secure but the
	// concrete fuzzer observed a divergence — one of the two oracles is
	// wrong about the semantics. Always a hard failure.
	SoundnessBug Agreement = "soundness-bug"
	// WitnessUnconfirmed: the symbolic oracle claims a leak but its own
	// witness pair does not diverge the concrete pipeline — the symbolic
	// model over-approximates this cell. Always a hard failure.
	WitnessUnconfirmed Agreement = "witness-unconfirmed"
)

// CrossCheck is the outcome of running both oracles on one cell.
type CrossCheck struct {
	Name      string
	Scheme    string
	Model     string
	Agreement Agreement
	// FuzzLeaked is the differential oracle's verdict on the default
	// secret pair.
	FuzzLeaked bool
	// Sym is the symbolic oracle's full result.
	Sym symx.Result
	// Detail describes the divergence (or the abstention reason).
	Detail string
}

// OK reports whether the comparison is consistent: anything but a
// soundness bug or an unconfirmable witness.
func (c CrossCheck) OK() bool {
	return c.Agreement != SoundnessBug && c.Agreement != WitnessUnconfirmed
}

func (c CrossCheck) String() string {
	return fmt.Sprintf("%s %s/%s: %s (fuzz leak=%v, symx %s via %s) %s",
		c.Name, c.Scheme, c.Model, c.Agreement, c.FuzzLeaked, c.Sym.Verdict, c.Sym.Method, c.Detail)
}

// CrossCheckProgram runs the differential and the symbolic oracle on one
// (program, scheme, model) cell and reconciles the verdicts. Errors are
// contract violations (architectural secret transmission,
// non-termination) on which both oracles agree by construction — the
// symbolic executor mirrors the fuzzer's arch-sameness precheck.
func CrossCheckProgram(prog *isa.Program, scheme, model string) (CrossCheck, error) {
	cc := CrossCheck{Name: prog.Name, Scheme: scheme, Model: model}
	fv, err := CheckLeak(prog, scheme, model)
	if err != nil {
		return cc, err
	}
	cc.FuzzLeaked = fv.Leaked
	sym, err := symx.Verify(prog, scheme, model, SymxConfig())
	if err != nil {
		return cc, err
	}
	cc.Sym = sym

	switch sym.Verdict {
	case symx.VerdictUnknown:
		cc.Agreement = SymUnknown
		cc.Detail = sym.Reason
	case symx.VerdictSecure:
		if fv.Leaked {
			cc.Agreement = SoundnessBug
			cc.Detail = fv.Div.String()
		} else {
			cc.Agreement = AgreeSecure
		}
	case symx.VerdictLeak:
		if fv.Leaked {
			cc.Agreement = AgreeLeak
			cc.Detail = sym.Witness.Divergence
			break
		}
		// The fuzzer's fixed pair saw nothing; replay the symbolic
		// witness pair through the concrete pipeline.
		wa, wb := sym.Witness.SecretA[0], sym.Witness.SecretB[0]
		rv, err := CheckLeakWith(prog, scheme, model, wa, wb)
		if err != nil {
			return cc, fmt.Errorf("fuzz: witness replay %#x/%#x: %w", wa, wb, err)
		}
		if rv.Leaked {
			cc.Agreement = SymLeakConfirmed
			cc.Detail = fmt.Sprintf("secrets %#x vs %#x: %s", wa, wb, rv.Div)
		} else {
			cc.Agreement = WitnessUnconfirmed
			cc.Detail = fmt.Sprintf("secrets %#x vs %#x: pipeline traces identical, symbolic says %s",
				wa, wb, sym.Witness.Divergence)
		}
	}
	return cc, nil
}

// WitnessEntry packages a confirmed symbolic-only leak (SymLeakConfirmed)
// as a corpus reproducer: the program with the witness's first secret
// baked in, annotated with the pair that diverges. Checked in, the
// regression tests replay it with CheckLeakWith.
func WitnessEntry(prog *isa.Program, scheme, model string, w *symx.Witness) CorpusEntry {
	return CorpusEntry{
		Name: fmt.Sprintf("%s-symx-witness", prog.Name),
		Meta: map[string]string{
			"found-by":    "symx",
			"leaks-under": SchemeModel{Scheme: scheme, Model: model}.String(),
			"secret-pair": fmt.Sprintf("%#x %#x", w.SecretA[0], w.SecretB[0]),
			"divergence":  w.Divergence,
		},
		Prog: prog,
	}
}
