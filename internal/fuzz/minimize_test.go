package fuzz

import (
	"testing"

	"spt/internal/asm"
	"spt/internal/isa"
)

// TestRemoveRangeRetargetsBranches: deleting a range keeps surviving
// control flow pointed at the right instructions.
func TestRemoveRangeRetargetsBranches(t *testing.T) {
	b := asm.NewBuilder("retarget")
	b.Movi(5, 1)          // 0
	b.Beq(5, 5, "target") // 1: +4
	b.Movi(6, 2)          // 2 \ deleted
	b.Movi(6, 3)          // 3 /
	b.Movi(7, 4)          // 4
	b.Label("target")
	b.Halt() // 5
	p := b.MustBuild()

	q, ok := removeRange(p, 2, 2)
	if !ok {
		t.Fatal("removeRange rejected a clean deletion")
	}
	if len(q.Code) != 4 {
		t.Fatalf("got %d instructions, want 4", len(q.Code))
	}
	if q.Code[1].Imm != 2 { // branch at 1 must now target halt at 3
		t.Fatalf("branch offset %d, want 2", q.Code[1].Imm)
	}

	// Deleting the branch's target retargets to the next survivor.
	q2, ok := removeRange(p, 4, 1)
	if !ok {
		t.Fatal("removeRange rejected deleting a plain instruction")
	}
	if q2.Code[1].Imm != 3 { // target label shifts from 5 to 4
		t.Fatalf("branch offset %d, want 3", q2.Code[1].Imm)
	}
}

func TestRemoveRangeRejectsEmptying(t *testing.T) {
	b := asm.NewBuilder("tiny")
	b.Halt()
	p := b.MustBuild()
	if _, ok := removeRange(p, 0, 1); ok {
		t.Fatal("removed the entire program")
	}
}

// TestMinimizeShrinksLeakingCases: for a handful of generated leaks, the
// bisection minimizer produces a sub-40-instruction reproducer that still
// passes the full oracle (arch-same + divergent) in the same cell.
func TestMinimizeShrinksLeakingCases(t *testing.T) {
	shrunk := false
	for seed := int64(1); seed <= 6; seed++ {
		c := Generate(seed)
		keep := func(p *isa.Program) bool {
			v, err := CheckLeak(p, "unsafe", "futuristic")
			return err == nil && v.Leaked
		}
		if !keep(c.Prog) {
			t.Fatalf("seed %d: case does not leak under unsafe/futuristic", seed)
		}
		min := Minimize(c.Prog, keep)
		if len(min.Code) >= len(c.Prog.Code) {
			t.Errorf("seed %d: no shrink (%d -> %d)", seed, len(c.Prog.Code), len(min.Code))
		}
		if !keep(min) {
			t.Errorf("seed %d: minimized program no longer leaks", seed)
		}
		if len(min.Code) < 40 {
			shrunk = true
		}
		t.Logf("seed %d (%s): %d -> %d instructions", seed, c.Name, len(c.Prog.Code), len(min.Code))
	}
	if !shrunk {
		t.Error("no reproducer shrank below 40 instructions")
	}
}
