package fuzz_test

import (
	"strings"
	"testing"
	"testing/quick"

	"spt/internal/fuzz"
	"spt/internal/symx"
)

// TestCorpusTwoOracleAgreement runs both oracles over every checked-in
// reproducer and every cell its metadata classifies. The two oracles must
// agree with each other and with the recorded classification: the
// symbolic executor proves every leaks-under cell leaky (with a concrete
// witness) and every clean-under cell secure.
func TestCorpusTwoOracleAgreement(t *testing.T) {
	entries, err := fuzz.LoadCorpus("../../testdata/fuzz")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus entries found")
	}
	for _, e := range entries {
		for _, cell := range e.LeaksUnder() {
			cc, err := fuzz.CrossCheckProgram(e.Prog, cell.Scheme, cell.Model)
			if err != nil {
				t.Fatalf("%s %s: %v", e.Name, cell, err)
			}
			if !cc.OK() {
				t.Errorf("oracle disagreement: %s", cc)
			}
			if cc.Sym.Verdict != symx.VerdictLeak {
				t.Errorf("%s %s: symbolic verdict %s, corpus metadata says leak",
					e.Name, cell, cc.Sym.Verdict)
			}
			if !cc.FuzzLeaked && cc.Agreement != fuzz.SymLeakConfirmed {
				t.Errorf("%s %s: fuzzer clean on a leaks-under cell (%s)", e.Name, cell, cc)
			}
			if cc.Sym.Witness == nil {
				t.Errorf("%s %s: leak verdict without a witness", e.Name, cell)
			}
		}
		for _, cell := range e.CleanUnder() {
			cc, err := fuzz.CrossCheckProgram(e.Prog, cell.Scheme, cell.Model)
			if err != nil {
				t.Fatalf("%s %s: %v", e.Name, cell, err)
			}
			if !cc.OK() {
				t.Errorf("oracle disagreement: %s", cc)
			}
			if cc.Sym.Verdict != symx.VerdictSecure {
				t.Errorf("%s %s: symbolic verdict %s, corpus metadata says clean",
					e.Name, cell, cc.Sym.Verdict)
			}
		}
	}
}

// TestGeneratedTwoOracleAgreement sweeps fresh gadgets through both
// oracles on the full scheme × model grid, asserting oracle agreement and
// consistency with the generator's ExpectLeak prediction.
func TestGeneratedTwoOracleAgreement(t *testing.T) {
	seeds := 32
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		c := fuzz.Generate(seed)
		for _, scheme := range fuzz.SchemeNames() {
			for _, model := range fuzz.ModelNames() {
				cc, err := fuzz.CrossCheckProgram(c.Prog, scheme, model)
				if err != nil {
					t.Fatalf("%s %s/%s: %v", c.Prog.Name, scheme, model, err)
				}
				if !cc.OK() {
					t.Errorf("oracle disagreement: %s", cc)
					continue
				}
				want := fuzz.ExpectLeak(scheme, model, c)
				symLeak := cc.Sym.Verdict == symx.VerdictLeak
				if cc.Sym.Verdict == symx.VerdictUnknown {
					t.Errorf("%s %s/%s: symbolic oracle abstained: %s",
						c.Prog.Name, scheme, model, cc.Sym.Reason)
					continue
				}
				if symLeak != want || cc.FuzzLeaked != want {
					t.Errorf("%s %s/%s: ExpectLeak=%v, fuzzer=%v, symbolic=%s",
						c.Prog.Name, scheme, model, want, cc.FuzzLeaked, cc.Sym.Verdict)
				}
			}
		}
	}
}

// TestCheckLeakWith pins the parameterized differential oracle: an equal
// secret pair can never diverge, and the default pair reproduces
// CheckLeak exactly.
func TestCheckLeakWith(t *testing.T) {
	c := fuzz.Generate(2) // leaks under unsafe by construction
	same, err := fuzz.CheckLeakWith(c.Prog, "unsafe", "futuristic", 0x5A, 0x5A)
	if err != nil {
		t.Fatal(err)
	}
	if same.Leaked {
		t.Fatalf("equal secrets diverged: %s", same.Div)
	}
	def, err := fuzz.CheckLeak(c.Prog, "unsafe", "futuristic")
	if err != nil {
		t.Fatal(err)
	}
	expl, err := fuzz.CheckLeakWith(c.Prog, "unsafe", "futuristic", fuzz.SecretA, fuzz.SecretB)
	if err != nil {
		t.Fatal(err)
	}
	if def.Leaked != expl.Leaked {
		t.Fatalf("CheckLeak=%v but CheckLeakWith(default pair)=%v", def.Leaked, expl.Leaked)
	}
	if !def.Leaked {
		t.Fatal("generated unsafe gadget did not leak under the default pair")
	}
}

// TestWitnessEntryRoundTrip checks that a symbolic witness packaged as a
// corpus entry survives the format/parse cycle with its metadata and that
// the recorded cell parses back.
func TestWitnessEntryRoundTrip(t *testing.T) {
	c := fuzz.Generate(3)
	sym, err := symx.Verify(c.Prog, "unsafe", "futuristic", fuzz.SymxConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sym.Verdict != symx.VerdictLeak || sym.Witness == nil {
		t.Fatalf("expected a leak with witness under unsafe, got %s", sym.Verdict)
	}
	e := fuzz.WitnessEntry(c.Prog, "unsafe", "futuristic", sym.Witness)
	text := fuzz.FormatCorpusEntry(e)
	back, err := fuzz.ParseCorpusEntry(e.Name, text)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, text)
	}
	if back.Meta["found-by"] != "symx" {
		t.Fatalf("found-by lost in round trip: %q", back.Meta["found-by"])
	}
	cells := back.LeaksUnder()
	if len(cells) != 1 || cells[0].Scheme != "unsafe" || cells[0].Model != "futuristic" {
		t.Fatalf("leaks-under cell lost in round trip: %v", cells)
	}
	if !strings.Contains(back.Meta["secret-pair"], "0x") {
		t.Fatalf("secret-pair lost in round trip: %q", back.Meta["secret-pair"])
	}
	if len(back.Prog.Code) != len(c.Prog.Code) {
		t.Fatalf("program lost in round trip: %d vs %d instructions",
			len(back.Prog.Code), len(c.Prog.Code))
	}
	v, err := fuzz.CheckLeak(back.Prog, "unsafe", "futuristic")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Leaked {
		t.Fatal("round-tripped reproducer no longer leaks")
	}
}

// TestSymbolicWitnessReplays checks the full witness pipeline: every
// symbolic leak on the corpus replays through the concrete differential
// oracle on the exact witness pair.
func TestSymbolicWitnessReplays(t *testing.T) {
	entries, err := fuzz.LoadCorpus("../../testdata/fuzz")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		for _, cell := range e.LeaksUnder() {
			sym, err := symx.Verify(e.Prog, cell.Scheme, cell.Model, fuzz.SymxConfig())
			if err != nil {
				t.Fatalf("%s %s: %v", e.Name, cell, err)
			}
			if sym.Verdict != symx.VerdictLeak {
				t.Errorf("%s %s: verdict %s", e.Name, cell, sym.Verdict)
				continue
			}
			wa, wb := sym.Witness.SecretA[0], sym.Witness.SecretB[0]
			v, err := fuzz.CheckLeakWith(e.Prog, cell.Scheme, cell.Model, wa, wb)
			if err != nil {
				t.Fatalf("%s %s: witness replay: %v", e.Name, cell, err)
			}
			if !v.Leaked {
				t.Errorf("%s %s: witness %#x/%#x does not diverge the pipeline (symbolic: %s)",
					e.Name, cell, wa, wb, sym.Witness.Divergence)
			}
		}
	}
}

// TestQuickSymbolicSubstitution is the property test tying the two
// oracles' semantics together: substituting any concrete secret into the
// symbolic observation trace reproduces the concrete machine's trace
// event for event (same kinds, same evaluated addresses, same order).
func TestQuickSymbolicSubstitution(t *testing.T) {
	schemes := fuzz.SchemeNames()
	models := fuzz.ModelNames()
	cfg := fuzz.SymxConfig()
	prop := func(seedLow uint8, secret byte, cell uint8) bool {
		c := fuzz.Generate(int64(seedLow))
		scheme := schemes[int(cell)%len(schemes)]
		model := models[int(cell/16)%len(models)]
		symEv, err := symx.ObservationEvents(c.Prog, scheme, model, cfg, nil)
		if err != nil {
			// The symbolic pass abstains when a transient decision is
			// secret-dependent; the substitution property is vacuous.
			return true
		}
		conEv, err := symx.ObservationEvents(c.Prog, scheme, model, cfg, []byte{secret})
		if err != nil {
			t.Logf("%s %s/%s secret %#x: concrete replay: %v", c.Prog.Name, scheme, model, secret, err)
			return false
		}
		if len(symEv) != len(conEv) {
			t.Logf("%s %s/%s secret %#x: %d symbolic vs %d concrete events",
				c.Prog.Name, scheme, model, secret, len(symEv), len(conEv))
			return false
		}
		for i := range symEv {
			if symEv[i].Kind != conEv[i].Kind || symEv[i].PC != conEv[i].PC {
				t.Logf("%s %s/%s secret %#x: event %d kind/pc mismatch", c.Prog.Name, scheme, model, secret, i)
				return false
			}
			if symEv[i].Addr.Eval([]byte{secret}) != conEv[i].Addr.Eval([]byte{secret}) {
				t.Logf("%s %s/%s secret %#x: event %d address mismatch", c.Prog.Name, scheme, model, secret, i)
				return false
			}
		}
		return true
	}
	n := 120
	if testing.Short() {
		n = 30
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}
