// Package fuzz is the differential leakage-fuzzing engine: it generates
// secret-parameterized transient-execution gadgets (gen.go), decides
// whether a program leaks its secret under a (scheme, attack model) pair
// by diffing observation traces across two secret values (oracle.go),
// shrinks leaking programs to minimal reproducers (minimize.go), and
// persists found reproducers as a regression corpus (corpus.go).
//
// The oracle is SPECTECTOR-style speculative non-interference: the
// generator guarantees (and the functional emulator re-checks) that the
// two secret values produce identical architectural executions, so any
// divergence between the microarchitectural observation traces is a leak.
package fuzz

import (
	"fmt"

	"spt/internal/pipeline"
	"spt/internal/taint"
)

// SchemeNames lists the Table 2 configurations the fuzzer can target, in
// the root package's presentation order. Kept in sync with spt.Schemes()
// (the root package imports this one, so it cannot be derived from it).
func SchemeNames() []string {
	return []string{
		"unsafe", "secure",
		"spt-fwd", "spt-bwd", "spt",
		"spt-shadowmem", "spt-ideal", "stt",
	}
}

// PolicyByName builds a fresh pipeline policy for a scheme name. Policies
// are stateful, so every simulation needs its own instance. The mapping
// mirrors spt.Options.policy in the root package.
func PolicyByName(scheme string) (pipeline.Policy, error) {
	const w = 3 // default untaint broadcast width (paper §9.4)
	switch scheme {
	case "unsafe":
		return nil, nil
	case "secure":
		return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintNone}), nil
	case "spt-fwd":
		return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintFwd, BroadcastWidth: w}), nil
	case "spt-bwd":
		return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintBwd, BroadcastWidth: w}), nil
	case "spt":
		return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintBwd, Shadow: taint.ShadowL1, BroadcastWidth: w}), nil
	case "spt-shadowmem":
		return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintBwd, Shadow: taint.ShadowMem, BroadcastWidth: w}), nil
	case "spt-ideal":
		return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintIdeal, Shadow: taint.ShadowMem}), nil
	case "stt":
		return taint.NewSTT(), nil
	case "spt-sdo":
		return taint.NewSPT(taint.SPTConfig{
			Method: taint.UntaintBwd, Shadow: taint.ShadowL1, BroadcastWidth: w,
			Protect: taint.ObliviousExecution,
		}), nil
	}
	return nil, fmt.Errorf("fuzz: unknown scheme %q", scheme)
}

// ModelNames lists the attack-model names.
func ModelNames() []string { return []string{"futuristic", "spectre"} }

// ModelByName parses an attack-model name.
func ModelByName(name string) (pipeline.AttackModel, error) {
	switch name {
	case "futuristic":
		return pipeline.Futuristic, nil
	case "spectre":
		return pipeline.Spectre, nil
	}
	return 0, fmt.Errorf("fuzz: unknown attack model %q", name)
}

// ModelName is the inverse of ModelByName.
func ModelName(m pipeline.AttackModel) string {
	if m == pipeline.Spectre {
		return "spectre"
	}
	return "futuristic"
}
