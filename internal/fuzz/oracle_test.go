package fuzz

import (
	"testing"

	"spt/internal/attack"
	"spt/internal/isa"
)

func TestDiffTracesEqual(t *testing.T) {
	a := []string{"L@10:0x100000", "T@20:0x101000"}
	if d := DiffTraces(a, []string{"L@10:0x100000", "T@20:0x101000"}); d != nil {
		t.Fatalf("identical traces reported divergent: %v", d)
	}
	if d := DiffTraces(nil, nil); d != nil {
		t.Fatalf("empty traces reported divergent: %v", d)
	}
}

// TestDiffTracesPinpointsFirstDivergence: the report names the first
// differing event, not just "different".
func TestDiffTracesPinpointsFirstDivergence(t *testing.T) {
	a := []string{"L@10:0x100000", "L@30:0x1006c0", "T@40:0x101000"}
	b := []string{"L@10:0x100000", "L@30:0x103900", "T@40:0x101000"}
	d := DiffTraces(a, b)
	if d == nil {
		t.Fatal("no divergence found")
	}
	if d.Index != 1 || d.A != "L@30:0x1006c0" || d.B != "L@30:0x103900" {
		t.Fatalf("wrong divergence: %+v", d)
	}
	if d.LenA != 3 || d.LenB != 3 {
		t.Fatalf("wrong lengths: %+v", d)
	}
}

// TestDiffTracesLengthMismatch: a strict-prefix pair diverges at the
// shorter trace's end, with the missing side reported as empty.
func TestDiffTracesLengthMismatch(t *testing.T) {
	a := []string{"L@10:0x100000"}
	b := []string{"L@10:0x100000", "L@55:0x1006c0"}
	d := DiffTraces(a, b)
	if d == nil {
		t.Fatal("prefix traces reported identical")
	}
	if d.Index != 1 || d.A != "" || d.B != "L@55:0x1006c0" {
		t.Fatalf("wrong divergence: %+v", d)
	}
}

// TestPatchSecret: only the byte at attack.SecretAddr changes, and the
// original program is untouched.
func TestPatchSecret(t *testing.T) {
	c := Generate(3)
	orig := c.Prog
	p := PatchSecret(orig, SecretB)
	found := false
	for i, seg := range p.Data {
		o := orig.Data[i]
		for j := range seg.Bytes {
			addr := seg.Addr + uint64(j)
			if addr == attack.SecretAddr {
				found = true
				if seg.Bytes[j] != SecretB {
					t.Fatalf("secret byte not patched: %#x", seg.Bytes[j])
				}
				if o.Bytes[j] != SecretA {
					t.Fatalf("original mutated: %#x", o.Bytes[j])
				}
			} else if seg.Bytes[j] != o.Bytes[j] {
				t.Fatalf("byte at %#x changed by PatchSecret", addr)
			}
		}
	}
	if !found {
		t.Fatal("secret address not in any data segment")
	}
}

// TestArchSameRejectsArchTransmission: a program that architecturally
// stores its secret fails the arch-sameness check — the oracle refuses to
// call such divergence a speculation leak.
func TestArchSameRejectsArchTransmission(t *testing.T) {
	build := func(secret byte) *attack.Kit {
		k := attack.NewKit("arch-leak", secret)
		k.SetSlowCell(1)
		k.EmitLoadSecret(17, 19)
		k.B.St(17, 19, 8) // secret value stored: architecturally visible
		k.B.Halt()
		return k
	}
	pa, pb := build(SecretA).MustBuild(), build(SecretB).MustBuild()
	same, err := ArchSame(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Fatal("architectural secret store not detected")
	}
	if _, err := CheckLeak(pa, "unsafe", "futuristic"); err == nil {
		t.Fatal("CheckLeak accepted an arch-transmitting program")
	}
}

// TestArchSameRejectsSecretBranchCondition: a conditional branch whose
// condition depends on the secret is a constant-time violation even when
// the taken target equals the fall-through (offset 1, architecturally a
// no-op) — the direction mispredict squashes and replays younger accesses
// under every scheme. The minimizer once produced exactly this shape, so
// the digest must hash branch outcomes, not just the retired PC sequence.
func TestArchSameRejectsSecretBranchCondition(t *testing.T) {
	build := func(secret byte) *attack.Kit {
		k := attack.NewKit("secret-branch", secret)
		k.EmitLoadSecret(17, 19)
		k.B.Andi(21, 17, 0x10) // differs across SecretA/SecretB
		k.B.Bne(21, isa.Zero, "next")
		k.B.Label("next") // taken target == fall-through
		k.B.Halt()
		return k
	}
	pa, pb := build(SecretA).MustBuild(), build(SecretB).MustBuild()
	same, err := ArchSame(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Fatal("secret-dependent branch condition not detected")
	}
}

// TestCheckLeakOnHandWrittenAttacks cross-validates the differential
// oracle against the §9.1 penetration tests: V1 leaks on unsafe and is
// blocked by SPT; the non-speculative secret leaks under STT.
func TestCheckLeakOnHandWrittenAttacks(t *testing.T) {
	v1 := attack.SpectreV1Program(SecretA)
	if v, err := CheckLeak(v1, "unsafe", "futuristic"); err != nil || !v.Leaked {
		t.Fatalf("V1 under unsafe: leaked=%v err=%v", v.Leaked, err)
	}
	if v, err := CheckLeak(v1, "spt", "futuristic"); err != nil || v.Leaked {
		t.Fatalf("V1 under spt: leaked=%v err=%v (%s)", v.Leaked, err, v.Div)
	}
	ns := attack.NonSpecSecretProgram(SecretA)
	if v, err := CheckLeak(ns, "stt", "futuristic"); err != nil || !v.Leaked {
		t.Fatalf("nonspec secret under stt: leaked=%v err=%v", v.Leaked, err)
	}
	if v, err := CheckLeak(ns, "spt", "futuristic"); err != nil || v.Leaked {
		t.Fatalf("nonspec secret under spt: leaked=%v err=%v (%s)", v.Leaked, err, v.Div)
	}
}
