package fuzz

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// StateVersion identifies the campaign state-file schema.
const StateVersion = "spt-campaign-state/1"

// CampaignState is the resumable campaign snapshot: the config identity
// plus the canonical unit records. Everything else a report shows —
// coverage map, cell tallies, triage clusters — is derived from Units, so
// two states with equal unit records render byte-identical reports no
// matter how many shards, interruptions, or resumes produced them.
type CampaignState struct {
	Version string `json:"version"`
	// Engine is the engine version that produced the state; merge and
	// resume refuse mixed-engine states since simulator changes can move
	// observation traces.
	Engine string         `json:"engine,omitempty"`
	Digest string         `json:"digest"`
	Config CampaignConfig `json:"config"`
	Units  []UnitRecord   `json:"units"`
}

// NewCampaignState starts an empty state for a config.
func NewCampaignState(cfg CampaignConfig, digest, engine string) *CampaignState {
	return &CampaignState{Version: StateVersion, Engine: engine, Digest: digest, Config: cfg}
}

// LoadState reads a campaign state file.
func LoadState(path string) (*CampaignState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st CampaignState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("fuzz: state %s: %w", path, err)
	}
	if st.Version != StateVersion {
		return nil, fmt.Errorf("fuzz: state %s has version %q, want %q", path, st.Version, StateVersion)
	}
	return &st, nil
}

// Save writes the state atomically (temp file + rename), so a campaign
// killed mid-write leaves the previous snapshot intact.
func (s *CampaignState) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".spt-state-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// UnitByID returns the index of a unit's record in Units, or -1.
func (s *CampaignState) UnitByID(unit int) int {
	i := sort.Search(len(s.Units), func(i int) bool { return s.Units[i].Unit >= unit })
	if i < len(s.Units) && s.Units[i].Unit == unit {
		return i
	}
	return -1
}

// samePlanShape reports whether two records agree on every field all
// shards compute independently (everything except the oracle results).
func samePlanShape(a, b UnitRecord) bool {
	return a.Unit == b.Unit && a.Gen == b.Gen && a.Kind == b.Kind &&
		a.Seed == b.Seed && a.Parent == b.Parent && a.Corpus == b.Corpus &&
		a.Name == b.Name && a.Class == b.Class && a.Primitive == b.Primitive &&
		a.Transmitter == b.Transmitter && a.Op == b.Op && a.Insns == b.Insns &&
		a.Rejected == b.Rejected && a.Bucket == b.Bucket
}

// sameResult reports whether two Done records agree on oracle results.
func sameResult(a, b UnitRecord) bool {
	if a.EvalError != b.EvalError || len(a.Leaks) != len(b.Leaks) {
		return false
	}
	for i := range a.Leaks {
		if a.Leaks[i] != b.Leaks[i] {
			return false
		}
	}
	return true
}

// MergeStates combines shard states into one. All inputs must share the
// config digest and engine. Unit records are unioned: plan/shape fields
// must agree exactly (every shard computes them from the same inputs, so
// a mismatch means corrupted or mixed-campaign state), and where two
// shards both evaluated a unit their results must agree too. The merged
// unit list is sorted by unit id, which is what makes the merge — and
// every report derived from it — deterministic in the input set, not the
// input order.
func MergeStates(states []*CampaignState) (*CampaignState, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("fuzz: no states to merge")
	}
	first := states[0]
	merged := map[int]UnitRecord{}
	for _, st := range states {
		if st.Digest != first.Digest {
			return nil, fmt.Errorf("fuzz: state digest mismatch: %s vs %s (different campaign config or corpus)", st.Digest, first.Digest)
		}
		if st.Engine != first.Engine {
			return nil, fmt.Errorf("fuzz: state engine mismatch: %q vs %q", st.Engine, first.Engine)
		}
		for _, u := range st.Units {
			prev, ok := merged[u.Unit]
			if !ok {
				merged[u.Unit] = u
				continue
			}
			if !samePlanShape(prev, u) {
				return nil, fmt.Errorf("fuzz: unit %d plan/shape disagrees across states", u.Unit)
			}
			if u.Done && prev.Done && !sameResult(prev, u) {
				return nil, fmt.Errorf("fuzz: unit %d oracle results disagree across states", u.Unit)
			}
			if u.Done {
				merged[u.Unit] = u
			}
		}
	}
	out := NewCampaignState(first.Config, first.Digest, first.Engine)
	out.Units = make([]UnitRecord, 0, len(merged))
	for _, u := range merged {
		out.Units = append(out.Units, u)
	}
	sort.Slice(out.Units, func(i, j int) bool { return out.Units[i].Unit < out.Units[j].Unit })
	return out, nil
}
