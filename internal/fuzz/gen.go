package fuzz

import (
	"fmt"
	"math/rand"

	"spt/internal/asm"
	"spt/internal/attack"
	"spt/internal/isa"
)

// The differential secrets. They differ in every bit, so any single-bit
// transmitter distinguishes them.
const (
	SecretA byte = 0x1B
	SecretB byte = 0xE4
)

// Class says how the program reaches the secret.
type Class string

const (
	// ClassSpecSecret: the secret is accessed only transiently (a Spectre
	// V1 out-of-bounds read, a direct load on a mispredicted path, or a
	// stale read past an in-flight store). The architectural execution
	// never touches the secret value, so STT's speculative-data taint is
	// enough to protect it.
	ClassSpecSecret Class = "spec-secret"
	// ClassNonSpecSecret: the secret is loaded architecturally into a
	// register and only used in data-oblivious computation; a transient
	// gadget then transmits the register. This is the paper's §3 scenario
	// that STT does not protect and SPT does.
	ClassNonSpecSecret Class = "nonspec-secret"
)

// Primitive is the speculation mechanism that opens the transient window.
type Primitive string

const (
	// PrimBranch: a bounds-check-style conditional branch whose guard
	// arrives from a two-miss pointer chase; the first dynamic instance
	// predicts not-taken, falling through into the gadget.
	PrimBranch Primitive = "branch"
	// PrimReturn: a leaf callee slowly increments its return address, so
	// the RAS-predicted return target (call+1) transiently executes the
	// gadget the real return skips.
	PrimReturn Primitive = "return"
	// PrimIndirect: an indirect jump whose target displacement arrives
	// slowly; with no BTB entry it predicts fall-through into the gadget.
	PrimIndirect Primitive = "indirect"
	// PrimStoreBypass: a store to the secret's address resolves slowly; a
	// younger load speculates past it and reads the stale secret the store
	// architecturally overwrites. Memory speculation is outside the
	// Spectre threat model, so under the Spectre model this leaks on every
	// scheme by design.
	PrimStoreBypass Primitive = "store-bypass"
)

// Transmitter is the covert channel encoding the secret.
type Transmitter string

const (
	// TxLoad touches probe line secret*64 (cache fill channel).
	TxLoad Transmitter = "load"
	// TxStore translates a store at page secret*4096 (TLB channel).
	TxStore Transmitter = "store"
	// TxBranch branches on one secret bit: the taken path touches a probe
	// line the not-taken path does not (fetch-redirect channel). Branch
	// resolution is strictly in program order, so a secret-dependent
	// branch nested under an unresolved control-flow instruction never
	// redirects fetch; the channel only fires when the branch is the
	// oldest in-flight control flow, which is exactly the store-bypass
	// window (the only primitive that opens a window without control
	// flow). The generator therefore pairs TxBranch with PrimStoreBypass
	// only.
	TxBranch Transmitter = "branch"
)

// Case is one generated fuzz program. Prog holds SecretA at
// attack.SecretAddr; the oracle derives the SecretB twin with PatchSecret.
type Case struct {
	Seed      int64
	Name      string
	Class     Class
	Primitive Primitive
	Transmit  Transmitter
	Prog      *isa.Program
}

// Filler memory region, disjoint from the Kit layout and the probe array.
const (
	fillerBase  = 0x40000
	fillerQuads = 64
)

// Generate builds the fuzz case for a seed. It is a pure function of the
// seed: the same seed always yields the same program, which is what makes
// campaigns and checked-in reproducers deterministic.
func Generate(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))

	prims := []Primitive{PrimBranch, PrimReturn, PrimIndirect, PrimStoreBypass}
	prim := prims[rng.Intn(len(prims))]
	class := ClassSpecSecret
	if prim != PrimStoreBypass && rng.Intn(2) == 1 {
		class = ClassNonSpecSecret
	}
	txs := []Transmitter{TxLoad, TxStore}
	if prim == PrimStoreBypass {
		txs = append(txs, TxBranch)
	}
	tx := txs[rng.Intn(len(txs))]

	name := fmt.Sprintf("fuzz-%d-%s-%s-%s", seed, prim, class, tx)
	k := attack.NewKit(name, SecretA)
	b := k.B

	// Filler data region seeded from the rng (identical for both secret
	// values: only the byte at attack.SecretAddr ever differs).
	quads := make([]uint64, fillerQuads)
	for i := range quads {
		quads[i] = rng.Uint64()
	}
	b.DataQuads(fillerBase, quads)

	// Register conventions: r16 slow/guard, r17 secret, r18 probe base,
	// r19/r21 temps, r20 filler base, r22 victim array, r23 PC value.
	// Filler computes on r5..r15 only.
	b.Movi(20, fillerBase)
	k.EmitProbeBase(18)
	for r := isa.Reg(5); r <= 15; r++ {
		b.Movi(r, rng.Int63n(1<<32))
	}
	if class == ClassNonSpecSecret {
		// Architectural secret load, followed only by data-oblivious uses.
		k.EmitLoadSecret(17, 19)
		b.Xori(19, 17, int64(rng.Intn(256)))
		b.Add(19, 19, 19)
	}
	emitFiller(b, rng, 2+rng.Intn(6))

	switch prim {
	case PrimBranch:
		emitBranchWindow(k, rng, class, tx)
	case PrimReturn:
		emitReturnWindow(k, rng, class, tx)
	case PrimIndirect:
		emitIndirectWindow(k, rng, class, tx)
	case PrimStoreBypass:
		emitStoreBypassWindow(k, rng, tx)
	}

	emitFiller(b, rng, 1+rng.Intn(4))
	b.Halt()
	if prim == PrimReturn {
		// The leaf lives past the halt; only the call reaches it.
		b.Label("leaf")
		k.EmitSlowLoad(16)
		b.Add(isa.RA, isa.RA, 16)
		b.Ret()
	}

	return Case{Seed: seed, Name: name, Class: class, Primitive: prim, Transmit: tx, Prog: k.MustBuild()}
}

// emitFiller adds straight-line noise: ALU ops on r5..r15 and loads/stores
// into the filler region. No control flow, so generated programs terminate
// by construction.
func emitFiller(b *asm.Builder, rng *rand.Rand, n int) {
	aluOps := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.MUL}
	immOps := []isa.Op{isa.ADDI, isa.ANDI, isa.XORI, isa.SHLI}
	scratch := func() isa.Reg { return isa.Reg(5 + rng.Intn(11)) }
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 5:
			b.Op3(aluOps[rng.Intn(len(aluOps))], scratch(), scratch(), scratch())
		case k < 7:
			b.OpI(immOps[rng.Intn(len(immOps))], scratch(), scratch(), rng.Int63n(48))
		case k < 9:
			b.Ld(scratch(), 20, int64(rng.Intn(fillerQuads))*8)
		default:
			b.St(scratch(), 20, int64(rng.Intn(fillerQuads))*8)
		}
	}
}

// emitGadget emits the transient payload: for spec-secret classes it first
// fetches the secret into r17 (this fetch itself is transient), then
// transmits r17.
func emitGadget(k *attack.Kit, rng *rand.Rand, class Class, tx Transmitter, loadSecret bool) {
	if class == ClassSpecSecret && loadSecret {
		k.EmitLoadSecret(17, 19)
	}
	emitTransmit(k, rng, tx)
}

// emitTransmit encodes r17 into the probe array through the chosen channel.
func emitTransmit(k *attack.Kit, rng *rand.Rand, tx Transmitter) {
	b := k.B
	switch tx {
	case TxLoad:
		k.EmitTransmitLoad(17, 21, 18)
	case TxStore:
		k.EmitTransmitStore(17, 21, 18)
	case TxBranch:
		// Branch on one secret bit. The not-taken (predicted) path touches
		// probe line 1 under both secrets; the taken path's probe line 2 is
		// fetched only when the branch resolves taken — i.e. only for the
		// secret with the bit set.
		bit := rng.Intn(8)
		b.Andi(21, 17, 1<<bit)
		b.Bne(21, isa.Zero, "tx-taken")
		b.Ld(21, 18, 1*attack.ProbeLine)
		b.Jump("tx-done")
		b.Label("tx-taken")
		b.Ld(21, 18, 2*attack.ProbeLine)
		b.Label("tx-done")
	}
}

// emitBranchWindow: bounds-check misprediction. Spec-secret uses the V1
// shape (out-of-bounds array read); nonspec-secret guards the transmit of
// an architecturally-held secret.
func emitBranchWindow(k *attack.Kit, rng *rand.Rand, class Class, tx Transmitter) {
	b := k.B
	if class == ClassSpecSecret {
		k.VictimArray().SetSlowCell(attack.ArrayLen)
		b.Movi(22, attack.ArrayBase)
		b.Movi(19, attack.OOBIndex())
		k.EmitSlowLoad(16) // r16 = array length, slowly
		b.Bgeu(19, 16, "resume")
		b.Shli(21, 19, 3)
		b.Add(21, 21, 22)
		b.Ldb(17, 21, 0) // transient out-of-bounds secret read
		emitTransmit(k, rng, tx)
		b.Label("resume")
		return
	}
	k.SetSlowCell(1)
	k.EmitSlowLoad(16) // r16 = guard = 1, slowly
	b.Bne(16, isa.Zero, "resume")
	emitGadget(k, rng, class, tx, false)
	b.Label("resume")
}

// emitReturnWindow: the callee (emitted after the halt) computes
// ra += gadgetLen from the slow cell, so the return-address-stack
// prediction (call+1) transiently runs the gadget the real return skips.
func emitReturnWindow(k *attack.Kit, rng *rand.Rand, class Class, tx Transmitter) {
	b := k.B
	b.Call("leaf")
	start := b.Len()
	emitGadget(k, rng, class, tx, true)
	k.SetSlowCell(uint64(b.Len() - start))
}

// emitIndirectWindow: materialize pc+1 with JalOffset, add a slow
// displacement, jump. No BTB entry means the indirect jump predicts
// fall-through — straight into the gadget the real target skips.
func emitIndirectWindow(k *attack.Kit, rng *rand.Rand, class Class, tx Transmitter) {
	b := k.B
	b.JalOffset(23, 1) // r23 = this pc + 1
	k.EmitSlowLoad(16) // 3 instructions
	b.Add(23, 23, 16)
	b.Jalr(isa.Zero, 23, 0)
	start := b.Len()
	emitGadget(k, rng, class, tx, true)
	// Real target = (jal pc+1) + 5 + gadgetLen = the instruction after the
	// gadget.
	k.SetSlowCell(uint64(5 + b.Len() - start))
}

// emitStoreBypassWindow: the store's target (the secret's own address)
// resolves slowly; the younger load speculates past it and reads the stale
// secret. Architecturally the load sees the store's 0, so the transmit
// runs with value 0 in both secret runs — arch-sameness holds.
func emitStoreBypassWindow(k *attack.Kit, rng *rand.Rand, tx Transmitter) {
	b := k.B
	k.SetSlowCell(attack.SecretAddr)
	k.EmitSlowLoad(16)     // r16 = &secret, slowly
	b.Stb(isa.Zero, 16, 0) // overwrite the secret with 0
	b.Movi(19, attack.SecretAddr)
	b.Ldb(17, 19, 0) // speculates past the store: stale secret
	emitTransmit(k, rng, tx)
}

// ExpectLeak is the ground-truth matrix for a case under (scheme, model):
// whether a divergence is a true-positive control (expected) rather than a
// defense failure. Expected leaks: the unsafe baseline always; any scheme
// under the Spectre model for store-bypass gadgets (memory speculation is
// outside that threat model); and STT for non-speculatively-accessed
// secrets (the paper's motivating gap, §3).
func ExpectLeak(scheme, model string, c Case) bool {
	if scheme == "unsafe" {
		return true
	}
	if c.Primitive == PrimStoreBypass && model == "spectre" {
		return true
	}
	if scheme == "stt" && c.Class == ClassNonSpecSecret {
		return true
	}
	return false
}
