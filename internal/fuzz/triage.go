package fuzz

import (
	"sort"
	"strings"
)

// Leak triage. A large campaign produces thousands of raw divergences,
// but almost all of them are the same few gadget shapes hit again and
// again; the useful output is a deduplicated table of *distinct* leaks
// with one representative reproducer each. Clustering is two-level: a
// cheap first-level key built from unit metadata and the leak-cell
// profile groups the raw divergences without touching the simulator, and
// the caller then minimizes only the cluster representatives — collapsing
// clusters further when minimized reproducers share an opcode skeleton
// (SkeletonDigest).

// LeakCluster is one distinct leak: a group of units whose divergences
// share a signature, represented by the lowest unit id in the group.
type LeakCluster struct {
	// Key is the cluster signature:
	// class|primitive|transmitter|cell-profile|divergence-kinds.
	Key string `json:"key"`
	// Metadata shared by every unit in the cluster.
	Class       string `json:"class"`
	Primitive   string `json:"primitive"`
	Transmitter string `json:"transmitter"`
	// Cells lists the leaking scheme/model cells, "!"-prefixed where the
	// leak is unexpected (a defense failure).
	Cells []string `json:"cells"`
	// Unexpected is true when any cell in the profile is a defense failure.
	Unexpected bool `json:"unexpected"`
	// Kinds is the per-cell divergence-kind profile.
	Kinds string `json:"kinds"`
	// Count is how many evaluated units landed in the cluster; Units lists
	// the first few ids, Representative the lowest.
	Count          int   `json:"count"`
	Units          []int `json:"units"`
	Representative int   `json:"representative"`
}

// maxClusterUnits caps the per-cluster unit id list in reports.
const maxClusterUnits = 8

// clusterKey builds the first-level triage signature for an evaluated
// unit. The cell profile and divergence kinds come from the unit's leaks
// in cell order; addresses and cycle counts are deliberately excluded —
// the same gadget hit at a different probe line is the same leak.
func clusterKey(u UnitRecord) (key string, cells []string, kinds string, unexpected bool) {
	var cellList, kindList []string
	for _, l := range u.Leaks {
		cell := l.Scheme + "/" + l.Model
		if !l.Expected {
			cell = "!" + cell
			unexpected = true
		}
		cellList = append(cellList, cell)
		kindList = append(kindList, l.Kinds)
	}
	cellsStr := strings.Join(cellList, ",")
	kinds = strings.Join(kindList, ",")
	key = strings.Join([]string{u.Class, u.Primitive, u.Transmitter, cellsStr, kinds}, "|")
	return key, cellList, kinds, unexpected
}

// Triage clusters the evaluated, leaking units. The result is a pure
// function of the unit records: clusters are keyed on metadata and leak
// signatures only, ordered unexpected-first and then by representative
// unit id, so sharded, resumed, and differently-parallelized campaigns
// triage identically.
func Triage(units []UnitRecord) []LeakCluster {
	byKey := map[string]*LeakCluster{}
	for _, u := range units {
		if !u.Done || len(u.Leaks) == 0 {
			continue
		}
		key, cells, kinds, unexpected := clusterKey(u)
		cl, ok := byKey[key]
		if !ok {
			cl = &LeakCluster{
				Key: key, Class: u.Class, Primitive: u.Primitive, Transmitter: u.Transmitter,
				Cells: cells, Unexpected: unexpected, Kinds: kinds,
				Representative: u.Unit,
			}
			byKey[key] = cl
		}
		cl.Count++
		if u.Unit < cl.Representative {
			cl.Representative = u.Unit
		}
		if len(cl.Units) < maxClusterUnits {
			cl.Units = append(cl.Units, u.Unit)
		}
	}
	out := make([]LeakCluster, 0, len(byKey))
	for _, cl := range byKey {
		sort.Ints(cl.Units)
		out = append(out, *cl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Unexpected != out[j].Unexpected {
			return out[i].Unexpected
		}
		return out[i].Representative < out[j].Representative
	})
	return out
}
