package fuzz

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/pipeline"
)

// Campaign coverage is defined over observation-trace *shape*, not code
// coverage: two gadgets are "the same" when they open the same kind of
// speculation window (primitive), encode through the same channel
// (transmitter), squash to the same depth, and emit the same pattern of
// observable events on the reference cell (unsafe/futuristic — the one
// configuration where every transient access is visible). A campaign that
// keeps generating gadgets landing in occupied buckets is wasting oracle
// time; gadgets that open a new bucket are the interesting frontier and
// seed the next generation's mutations.

// Shape is the microarchitectural fingerprint of one case on the
// reference cell.
type Shape struct {
	// MaxSquash is the deepest single squash (instructions discarded by
	// one squash event) observed during the run.
	MaxSquash uint64
	// Sig is the run-length-compressed observation-event signature, e.g.
	// "L3T1R2": event kinds in order, each annotated with the power-of-two
	// bucket of its run length.
	Sig string
}

// sigMaxRuns caps the signature length so pathological traces cannot
// explode bucket cardinality; longer traces share a "+" suffix bucket.
const sigMaxRuns = 12

// TraceSignature compresses an observation trace ("L@cycle:addr" events)
// into its kind signature: consecutive events of the same kind collapse
// into one run, and run lengths are bucketed by power of two (bits.Len64)
// so a 5-event and a 6-event burst land in the same bucket while 1 vs 100
// do not.
func TraceSignature(trace []string) string {
	if len(trace) == 0 {
		return "empty"
	}
	var sb strings.Builder
	runs := 0
	kind := trace[0][0]
	n := uint64(0)
	flush := func() {
		if runs < sigMaxRuns {
			fmt.Fprintf(&sb, "%c%d", kind, bits.Len64(n))
		} else if runs == sigMaxRuns {
			sb.WriteByte('+')
		}
		runs++
	}
	for _, ev := range trace {
		if ev[0] == kind {
			n++
			continue
		}
		flush()
		kind = ev[0]
		n = 1
	}
	flush()
	return sb.String()
}

// BucketKey names the coverage bucket for a case's metadata and shape:
// primitive × transmitter × squash-depth bucket × trace signature.
func BucketKey(prim Primitive, tx Transmitter, sh Shape) string {
	return fmt.Sprintf("%s|%s|q%d|%s", prim, tx, bits.Len64(sh.MaxSquash), sh.Sig)
}

// ReferenceObservation runs prog (a patched secret twin) on the reference
// cell — the unsafe baseline under the futuristic model, where every
// transient access is observable — and returns the observation trace plus
// the shape signal. The trace is byte-identical to
// attack.ObservationTrace(prog, pipeline.Futuristic, nil), so campaign
// callers can reuse it as the unsafe/futuristic A-side trace instead of
// re-simulating that cell.
func ReferenceObservation(prog *isa.Program) ([]string, Shape, error) {
	cfg := pipeline.DefaultConfig()
	cfg.Model = pipeline.Futuristic
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	core, err := pipeline.New(cfg, prog, hier, nil)
	if err != nil {
		return nil, Shape{}, err
	}
	var trace []string
	core.Observer = func(kind byte, cycle uint64, addr uint64) {
		trace = append(trace, fmt.Sprintf("%c@%d:%#x", kind, cycle, addr))
	}
	if err := core.Run(10_000_000, 100_000_000); err != nil {
		return nil, Shape{}, err
	}
	if !core.Finished() {
		return nil, Shape{}, fmt.Errorf("fuzz: %s did not finish on the reference cell", prog.Name)
	}
	sh := Shape{MaxSquash: core.Stats.SquashDepth.Max, Sig: TraceSignature(trace)}
	return trace, sh, nil
}

// Coverage is the campaign's bucket map: how many cases landed in each
// bucket and which unit opened it.
type Coverage struct {
	Counts map[string]int
	First  map[string]int // bucket -> unit id that first hit it
}

// NewCoverage returns an empty coverage map.
func NewCoverage() *Coverage {
	return &Coverage{Counts: map[string]int{}, First: map[string]int{}}
}

// Add records one case in a bucket and reports whether the bucket was
// previously empty. Calls must be made in ascending unit order for First
// to be deterministic.
func (c *Coverage) Add(bucket string, unit int) bool {
	fresh := c.Counts[bucket] == 0
	c.Counts[bucket]++
	if fresh {
		c.First[bucket] = unit
	}
	return fresh
}

// Keys returns the bucket names in sorted order.
func (c *Coverage) Keys() []string {
	keys := make([]string, 0, len(c.Counts))
	for k := range c.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CoverageFromRecords rebuilds the bucket map from campaign unit records
// (in ascending unit order). Rejected units — mutants that broke the
// differential contract — carry no bucket and are skipped.
func CoverageFromRecords(units []UnitRecord) *Coverage {
	cov := NewCoverage()
	for _, u := range units {
		if u.Bucket != "" {
			cov.Add(u.Bucket, u.Unit)
		}
	}
	return cov
}
