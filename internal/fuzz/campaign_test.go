package fuzz

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"spt/internal/asm"
	"spt/internal/isa"
)

func TestTraceSignature(t *testing.T) {
	tests := []struct {
		trace []string
		want  string
	}{
		{nil, "empty"},
		{[]string{"L@3:0x40"}, "L1"},
		// Two Ls (len bucket 2), one T (bucket 1), two Rs (bucket 2).
		{[]string{"L@1:0x0", "L@2:0x40", "T@3:0x1000", "R@4:0x0", "R@5:0x8"}, "L2T1R2"},
		// 5 and 6 events share a power-of-two bucket (bits.Len 3)...
		{[]string{"L@1:0", "L@2:0", "L@3:0", "L@4:0", "L@5:0"}, "L3"},
		{[]string{"L@1:0", "L@2:0", "L@3:0", "L@4:0", "L@5:0", "L@6:0"}, "L3"},
		// ...but 1 and 100 do not.
		{[]string{"L@1:0"}, "L1"},
	}
	for _, tt := range tests {
		if got := TraceSignature(tt.trace); got != tt.want {
			t.Errorf("TraceSignature(%v) = %q, want %q", tt.trace, got, tt.want)
		}
	}

	// More than sigMaxRuns runs collapse into a shared "+" suffix bucket.
	var long []string
	for i := 0; i < sigMaxRuns+5; i++ {
		if i%2 == 0 {
			long = append(long, "L@1:0")
		} else {
			long = append(long, "T@1:0")
		}
	}
	sig := TraceSignature(long)
	if !strings.HasSuffix(sig, "+") {
		t.Errorf("long alternating trace signature %q should end in +", sig)
	}
	if n := strings.Count(sig, "1"); n != sigMaxRuns {
		t.Errorf("signature %q should keep exactly %d runs", sig, sigMaxRuns)
	}
}

func TestBucketKeySeparatesShapes(t *testing.T) {
	a := BucketKey(PrimBranch, TxLoad, Shape{MaxSquash: 3, Sig: "L2"})
	b := BucketKey(PrimBranch, TxLoad, Shape{MaxSquash: 9, Sig: "L2"})
	c := BucketKey(PrimBranch, TxStore, Shape{MaxSquash: 3, Sig: "L2"})
	if a == b || a == c {
		t.Errorf("distinct shapes share a bucket: %q %q %q", a, b, c)
	}
	// Squash depths in the same power-of-two bucket collapse.
	if d := BucketKey(PrimBranch, TxLoad, Shape{MaxSquash: 2, Sig: "L2"}); d != a {
		t.Errorf("squash 2 and 3 should share a bucket: %q vs %q", d, a)
	}
}

// TestInsertAtRetargets verifies the control-flow rewrite around an
// insertion point: branches and JALs spanning the insertion keep their
// original targets, ones before/after it are untouched.
func TestInsertAtRetargets(t *testing.T) {
	b := asm.NewBuilder("insert-test")
	b.Addi(5, 5, 1)            // 0
	b.Beq(isa.Zero, 0, "skip") // 1 -> 4
	b.Addi(6, 6, 1)            // 2  <- insertion point
	b.Addi(7, 7, 1)            // 3
	b.Label("skip")
	b.Halt() // 4
	prog := b.MustBuild()

	fill := []isa.Instruction{{Op: isa.ADDI, Rd: 9, Rs1: 9, Imm: 1}, {Op: isa.ADDI, Rd: 9, Rs1: 9, Imm: 2}}
	q, ok := insertAt(prog, 2, fill)
	if !ok {
		t.Fatal("insertAt failed")
	}
	if len(q.Code) != len(prog.Code)+2 {
		t.Fatalf("got %d instructions, want %d", len(q.Code), len(prog.Code)+2)
	}
	// The branch at 1 originally targeted 4 (halt); the halt is now at 6,
	// so the relative offset must be 5.
	if q.Code[1].Op != isa.BEQ || q.Code[1].Imm != 5 {
		t.Errorf("branch not retargeted: %+v", q.Code[1])
	}
	if q.Code[2] != fill[0] || q.Code[3] != fill[1] {
		t.Errorf("fill not inserted at 2: %+v %+v", q.Code[2], q.Code[3])
	}
	if q.Code[6].Op != isa.HALT {
		t.Errorf("halt not at 6: %+v", q.Code[6])
	}
	// Original program is untouched.
	if prog.Code[1].Imm != 3 {
		t.Errorf("insertAt mutated its input: %+v", prog.Code[1])
	}
}

func TestMutateDeterministic(t *testing.T) {
	c := Generate(5)
	for seed := int64(0); seed < 4; seed++ {
		a, txA, opA, okA := Mutate(c.Prog, c.Transmit, rand.New(rand.NewSource(seed)))
		b, txB, opB, okB := Mutate(c.Prog, c.Transmit, rand.New(rand.NewSource(seed)))
		if okA != okB || opA != opB || txA != txB {
			t.Fatalf("seed %d: mutation not deterministic (%v/%v %s/%s)", seed, okA, okB, opA, opB)
		}
		if okA && asm.Disassemble(a) != asm.Disassemble(b) {
			t.Fatalf("seed %d: same-seed mutants differ", seed)
		}
	}
}

// TestMutantsKeepContractOrReject is the safety property the campaign
// relies on: a mutant either preserves the differential contract
// (identical architectural twins, terminating) or is detectably broken —
// never a silently misclassified gadget.
func TestMutantsKeepContractOrReject(t *testing.T) {
	kept, rejected := 0, 0
	for seed := int64(1); seed <= 24; seed++ {
		c := Generate(seed)
		for ms := int64(0); ms < 3; ms++ {
			m, _, op, ok := Mutate(c.Prog, c.Transmit, rand.New(rand.NewSource(seed*31+ms)))
			if !ok {
				t.Fatalf("seed %d: generated program has no mutation site", seed)
			}
			same, err := ArchSame(PatchSecret(m, SecretA), PatchSecret(m, SecretB))
			if err != nil || !same {
				rejected++ // detectably broken: the shape phase drops it
				continue
			}
			if _, _, err := ReferenceObservation(m); err != nil {
				rejected++
				continue
			}
			kept++
			_ = op
		}
	}
	if kept == 0 {
		t.Error("no mutant survived the contract check; mutation operators too destructive")
	}
	t.Logf("mutants: %d kept, %d rejected", kept, rejected)
}

// TestSwapTransmitterRoundTrips checks the transmitter rewrite against
// the generator's own emit patterns.
func TestSwapTransmitterRoundTrips(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		c := Generate(seed)
		if c.Transmit == TxBranch {
			continue
		}
		rng := rand.New(rand.NewSource(seed))
		q, tx, ok := swapTransmitter(c.Prog, c.Transmit, rng)
		if !ok {
			t.Fatalf("seed %d (%s/%s): transmit pattern not found", seed, c.Primitive, c.Transmit)
		}
		if tx == c.Transmit {
			t.Fatalf("seed %d: transmitter did not swap", seed)
		}
		// Swapping back restores the original instruction stream.
		back, tx2, ok := swapTransmitter(q, tx, rand.New(rand.NewSource(seed)))
		if !ok || tx2 != c.Transmit {
			t.Fatalf("seed %d: swap did not round-trip", seed)
		}
		if asm.Disassemble(back) != asm.Disassemble(c.Prog) {
			t.Fatalf("seed %d: double swap changed the program", seed)
		}
	}
}

func TestPlanGenerationDeterministicMix(t *testing.T) {
	cfg := CampaignConfig{Seed: 3, Generations: 2, PerGen: 8}
	corpus, err := LoadCorpus(filepath.Join("..", "..", "testdata", "fuzz"))
	if err != nil {
		t.Fatal(err)
	}
	g0 := PlanGeneration(cfg, corpus, 0, nil)
	if !reflect.DeepEqual(g0, PlanGeneration(cfg, corpus, 0, nil)) {
		t.Fatal("planning is not deterministic")
	}
	kinds := map[string]int{}
	for _, r := range g0 {
		kinds[r.Kind]++
	}
	if kinds[KindCorpusMutant] == 0 || kinds[KindGenerate] == 0 {
		t.Fatalf("generation 0 should mix fresh and corpus-mutant units, got %v", kinds)
	}

	// Give generation 1 a prior with two fresh buckets opened in gen 0:
	// odd slots become coverage mutants of the frontier.
	prior := []UnitRecord{
		{Unit: 0, Gen: 0, Kind: KindGenerate, Seed: 3, Bucket: "b1"},
		{Unit: 1, Gen: 0, Kind: KindGenerate, Seed: 4, Bucket: "b2"},
		{Unit: 2, Gen: 0, Kind: KindGenerate, Seed: 5, Bucket: "b1"},
	}
	g1 := PlanGeneration(cfg, nil, 1, prior)
	mutants := 0
	for _, r := range g1 {
		if r.Kind == KindCoverageMutant {
			mutants++
			if r.Parent != 0 && r.Parent != 1 {
				t.Errorf("coverage mutant parent %d is not on the frontier", r.Parent)
			}
		}
	}
	if mutants != cfg.PerGen/2 {
		t.Errorf("got %d coverage mutants, want %d", mutants, cfg.PerGen/2)
	}
}

func TestStateSaveLoadRoundTrip(t *testing.T) {
	cfg := CampaignConfig{Seed: 1, Generations: 1, PerGen: 2, Schemes: []string{"unsafe"}, Models: []string{"futuristic"}}
	st := NewCampaignState(cfg, cfg.Digest(nil), "engine-test")
	st.Units = []UnitRecord{
		{Unit: 0, Gen: 0, Kind: KindGenerate, Seed: 1, Name: "a", Bucket: "x", Done: true,
			Leaks: []CellLeak{{Scheme: "unsafe", Model: "futuristic", Expected: true, Divergence: "d", Kinds: "L/L"}}},
		{Unit: 1, Gen: 0, Kind: KindGenerate, Seed: 2, Rejected: "arch-sameness: nope"},
	}
	path := filepath.Join(t.TempDir(), "sub", "state.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", st, got)
	}
	if got.UnitByID(1) != 1 || got.UnitByID(7) != -1 {
		t.Error("UnitByID lookup broken")
	}
}

func TestMergeStates(t *testing.T) {
	cfg := CampaignConfig{Seed: 1, Generations: 1, PerGen: 4}
	digest := cfg.Digest(nil)
	shaped := func(u int) UnitRecord {
		return UnitRecord{Unit: u, Gen: 0, Kind: KindGenerate, Seed: int64(u) + 1, Name: "n", Bucket: "b"}
	}
	done := func(u int) UnitRecord {
		r := shaped(u)
		r.Done = true
		r.Leaks = []CellLeak{{Scheme: "unsafe", Model: "futuristic", Expected: true, Divergence: "d", Kinds: "L/L"}}
		return r
	}

	s0 := NewCampaignState(cfg, digest, "e")
	s0.Units = []UnitRecord{done(0), shaped(1), done(2), shaped(3)}
	s1 := NewCampaignState(cfg, digest, "e")
	s1.Units = []UnitRecord{shaped(0), done(1), shaped(2), done(3)}

	merged, err := MergeStates([]*CampaignState{s1, s0}) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range merged.Units {
		if u.Unit != i || !u.Done {
			t.Fatalf("merged unit %d: %+v", i, u)
		}
	}

	// Digest mismatch is refused.
	other := NewCampaignState(cfg, "ffffffffffffffff", "e")
	if _, err := MergeStates([]*CampaignState{s0, other}); err == nil {
		t.Error("digest mismatch not detected")
	}

	// Conflicting oracle results are refused.
	bad := NewCampaignState(cfg, digest, "e")
	conflict := done(0)
	conflict.Leaks[0].Divergence = "different"
	bad.Units = []UnitRecord{conflict}
	if _, err := MergeStates([]*CampaignState{s0, bad}); err == nil {
		t.Error("conflicting results not detected")
	}

	// Plan/shape disagreement is refused.
	skew := NewCampaignState(cfg, digest, "e")
	sk := shaped(1)
	sk.Bucket = "other-bucket"
	skew.Units = []UnitRecord{sk}
	if _, err := MergeStates([]*CampaignState{s0, skew}); err == nil {
		t.Error("plan/shape disagreement not detected")
	}
}

func TestTriageClustersAndOrders(t *testing.T) {
	leak := func(scheme string, expected bool) CellLeak {
		return CellLeak{Scheme: scheme, Model: "futuristic", Expected: expected, Divergence: "d", Kinds: "L/L"}
	}
	units := []UnitRecord{
		{Unit: 0, Done: true, Class: "spec-secret", Primitive: "branch", Transmitter: "load", Leaks: []CellLeak{leak("unsafe", true)}},
		{Unit: 1, Done: true, Class: "spec-secret", Primitive: "branch", Transmitter: "load", Leaks: []CellLeak{leak("unsafe", true)}},
		{Unit: 2, Done: true, Class: "spec-secret", Primitive: "branch", Transmitter: "load", Leaks: []CellLeak{leak("spt", false)}},
		{Unit: 3, Done: true, Class: "nonspec-secret", Primitive: "return", Transmitter: "store", Leaks: []CellLeak{leak("unsafe", true)}},
		{Unit: 4, Done: true, Class: "spec-secret", Primitive: "branch", Transmitter: "load"}, // clean: no cluster
		{Unit: 5, Class: "spec-secret", Primitive: "branch", Transmitter: "load"},             // pending: no cluster
	}
	clusters := Triage(units)
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3: %+v", len(clusters), clusters)
	}
	if !clusters[0].Unexpected || clusters[0].Representative != 2 {
		t.Errorf("unexpected cluster should sort first: %+v", clusters[0])
	}
	if clusters[1].Representative != 0 || clusters[1].Count != 2 {
		t.Errorf("units 0 and 1 should cluster together: %+v", clusters[1])
	}
	if got := clusters[0].Cells[0]; got != "!spt/futuristic" {
		t.Errorf("unexpected cell should carry the ! marker, got %q", got)
	}
}

// TestCorpusMutantsRealize ensures every checked-in reproducer can seed
// mutation: metadata is complete and at least one operator applies.
func TestCorpusMutantsRealize(t *testing.T) {
	corpus, err := LoadCorpus(filepath.Join("..", "..", "testdata", "fuzz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("no corpus entries")
	}
	for _, e := range corpus {
		c, err := corpusCase(e)
		if err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		if _, _, _, ok := Mutate(c.Prog, c.Transmit, rand.New(rand.NewSource(1))); !ok {
			t.Errorf("%s: no mutation operator applies", e.Name)
		}
	}
}
