// Package trace renders per-instruction pipeline activity: a flat event
// log (one line per lifecycle event) and a gem5-O3-pipeview-style timeline
// that shows, per dynamic instruction, the cycles at which it was renamed,
// issued, performed its memory access, completed, crossed the visibility
// point, and retired. cmd/spt-sim exposes it as the paper artifact's
// --track-insts.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"spt/internal/pipeline"
)

// Recorder collects pipeline lifecycle events. It implements
// pipeline.Tracer. The buffer is bounded: once Limit events are recorded,
// further events are counted but dropped.
type Recorder struct {
	// Limit bounds the stored events (default 100_000 if zero).
	Limit int

	events  []Event
	dropped uint64
	insts   map[uint64]*InstTimeline
	order   []uint64
}

// Event is one lifecycle event.
type Event struct {
	Cycle uint64
	Seq   uint64
	PC    uint64
	Stage string
	Disas string
}

// InstTimeline aggregates one dynamic instruction's stage cycles.
type InstTimeline struct {
	Seq      uint64
	PC       uint64
	Disas    string
	Stages   map[string]uint64
	Squashed bool
	Retired  bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{insts: make(map[uint64]*InstTimeline)}
}

// Event implements pipeline.Tracer.
func (r *Recorder) Event(cycle uint64, di *pipeline.DynInst, stage string) {
	limit := r.Limit
	if limit == 0 {
		limit = 100_000
	}
	if len(r.events) >= limit {
		r.dropped++
		return
	}
	disas := di.Ins.String()
	r.events = append(r.events, Event{Cycle: cycle, Seq: di.Seq, PC: di.PC, Stage: stage, Disas: disas})
	tl := r.insts[di.Seq]
	if tl == nil {
		tl = &InstTimeline{Seq: di.Seq, PC: di.PC, Disas: disas, Stages: make(map[string]uint64, 8)}
		r.insts[di.Seq] = tl
		r.order = append(r.order, di.Seq)
	}
	if _, dup := tl.Stages[stage]; !dup {
		tl.Stages[stage] = cycle
	}
	switch stage {
	case "squash":
		tl.Squashed = true
	case "retire":
		tl.Retired = true
	}
}

// Events returns the recorded event log.
func (r *Recorder) Events() []Event { return r.events }

// Dropped reports how many events exceeded the buffer.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Timelines returns per-instruction timelines in program order.
func (r *Recorder) Timelines() []*InstTimeline {
	out := make([]*InstTimeline, 0, len(r.order))
	for _, seq := range r.order {
		out = append(out, r.insts[seq])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteLog writes the flat event log.
func (r *Recorder) WriteLog(w io.Writer) error {
	for _, e := range r.events {
		if _, err := fmt.Fprintf(w, "cycle=%-8d seq=%-6d pc=%-5d %-10s %s\n",
			e.Cycle, e.Seq, e.PC, e.Stage, e.Disas); err != nil {
			return err
		}
	}
	if r.dropped > 0 {
		fmt.Fprintf(w, "... %d events dropped (buffer limit)\n", r.dropped)
	}
	return nil
}

// timelineColumns defines the column order of the pipeview output.
var timelineColumns = []string{"rename", "issue", "mem", "complete", "resolve", "vp", "retire"}

// WriteTimeline writes the per-instruction stage table.
func (r *Recorder) WriteTimeline(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-6s %-5s %-9s", "seq", "pc", "fate"); err != nil {
		return err
	}
	for _, col := range timelineColumns {
		fmt.Fprintf(w, " %9s", col)
	}
	fmt.Fprintln(w, "  instruction")
	for _, tl := range r.Timelines() {
		fate := "in-flight"
		switch {
		case tl.Retired:
			fate = "retired"
		case tl.Squashed:
			fate = "squashed"
		}
		fmt.Fprintf(w, "%-6d %-5d %-9s", tl.Seq, tl.PC, fate)
		for _, col := range timelineColumns {
			key := col
			if col == "resolve" {
				if _, misp := tl.Stages["mispredict"]; misp {
					key = "mispredict"
				}
			}
			if cyc, ok := tl.Stages[key]; ok {
				mark := ""
				if key == "mispredict" {
					mark = "!"
				}
				fmt.Fprintf(w, " %8d%1s", cyc, mark)
			} else {
				fmt.Fprintf(w, " %9s", ".")
			}
		}
		fmt.Fprintf(w, "  %s\n", tl.Disas)
	}
	return nil
}

// Summary returns quick aggregate facts about the trace (for tests and
// logs): events by stage and squash count.
func (r *Recorder) Summary() string {
	byStage := map[string]int{}
	for _, e := range r.events {
		byStage[e.Stage]++
	}
	keys := make([]string, 0, len(byStage))
	for k := range byStage {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d ", k, byStage[k])
	}
	return strings.TrimSpace(b.String())
}
