package trace_test

import (
	"strings"
	"testing"

	"spt/internal/asm"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/trace"
)

func runTraced(t *testing.T, src string) *trace.Recorder {
	t.Helper()
	p := asm.MustAssemble("traced", src)
	rec := trace.NewRecorder()
	c, err := pipeline.New(pipeline.DefaultConfig(), p, mem.NewHierarchy(mem.DefaultHierarchyConfig()), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Tracer = rec
	if err := c.Run(1_000_000, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if !c.Finished() {
		t.Fatal("did not finish")
	}
	return rec
}

const tracedSrc = `
  movi r1, 0x4000
  movi r2, 5
  st r2, 0(r1)
  ld r3, 0(r1)
  add r4, r3, r2
  beq r4, r0, skip
  addi r5, r4, 1
skip:
  halt
`

func TestStageOrderingPerInstruction(t *testing.T) {
	rec := runTraced(t, tracedSrc)
	for _, tl := range rec.Timelines() {
		if !tl.Retired {
			continue
		}
		order := []string{"rename", "issue", "mem", "complete", "retire"}
		var prev uint64
		var prevStage string
		for _, s := range order {
			cyc, ok := tl.Stages[s]
			if !ok {
				continue
			}
			if cyc < prev {
				t.Errorf("seq %d (%s): %s@%d before %s@%d", tl.Seq, tl.Disas, s, cyc, prevStage, prev)
			}
			prev, prevStage = cyc, s
		}
	}
}

func TestEveryRetiredInstructionHasRenameAndRetire(t *testing.T) {
	rec := runTraced(t, tracedSrc)
	retired := 0
	for _, tl := range rec.Timelines() {
		if !tl.Retired {
			continue
		}
		retired++
		if _, ok := tl.Stages["rename"]; !ok {
			t.Errorf("seq %d retired without rename event", tl.Seq)
		}
		if _, ok := tl.Stages["vp"]; !ok {
			t.Errorf("seq %d retired without crossing the VP", tl.Seq)
		}
	}
	if retired != 8 { // 7 instructions + halt
		t.Fatalf("retired instructions traced = %d, want 8", retired)
	}
}

func TestMemEventsOnlyForMemOps(t *testing.T) {
	rec := runTraced(t, tracedSrc)
	for _, e := range rec.Events() {
		if e.Stage == "mem" && !strings.Contains(e.Disas, "(") {
			t.Errorf("mem event for non-memory instruction %q", e.Disas)
		}
	}
}

func TestRenderers(t *testing.T) {
	rec := runTraced(t, tracedSrc)
	var log strings.Builder
	if err := rec.WriteLog(&log); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "rename") || !strings.Contains(log.String(), "retire") {
		t.Fatal("event log missing stages")
	}
	var tlb strings.Builder
	if err := rec.WriteTimeline(&tlb); err != nil {
		t.Fatal(err)
	}
	out := tlb.String()
	for _, want := range []string{"seq", "retired", "movi r1", "halt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	if rec.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestSquashedInstructionsMarked(t *testing.T) {
	// A data-dependent branch that mispredicts at least once.
	rec := runTraced(t, `
  movi r1, 40
  movi r5, 99
top:
  andi r2, r1, 3
  beq r2, r0, skip
  addi r5, r5, 1
skip:
  addi r1, r1, -1
  bne r1, r0, top
  halt
`)
	squashed := 0
	for _, tl := range rec.Timelines() {
		if tl.Squashed {
			squashed++
			if tl.Retired {
				t.Errorf("seq %d both squashed and retired", tl.Seq)
			}
		}
	}
	if squashed == 0 {
		t.Fatal("no squashed instructions traced (expected mispredictions)")
	}
}

// TestEmptyRecorder pins the degenerate rendering paths: a recorder that
// never saw an event must still produce a well-formed (header-only)
// timeline, an empty log, and zero drop/summary state, because spt-sim
// -track-insts reaches these writers even when a program halts before any
// instruction is traced.
func TestEmptyRecorder(t *testing.T) {
	rec := trace.NewRecorder()
	var tl strings.Builder
	if err := rec.WriteTimeline(&tl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(tl.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("empty timeline = %d lines, want header only:\n%s", len(lines), tl.String())
	}
	for _, col := range []string{"seq", "pc", "fate", "rename", "retire", "instruction"} {
		if !strings.Contains(lines[0], col) {
			t.Errorf("timeline header missing column %q: %q", col, lines[0])
		}
	}
	var log strings.Builder
	if err := rec.WriteLog(&log); err != nil {
		t.Fatal(err)
	}
	if log.Len() != 0 {
		t.Errorf("empty recorder log = %q, want empty", log.String())
	}
	if got := rec.Dropped(); got != 0 {
		t.Errorf("Dropped() = %d, want 0", got)
	}
	if got := len(rec.Timelines()); got != 0 {
		t.Errorf("Timelines() = %d entries, want 0", got)
	}
	if got := rec.Summary(); got != "" {
		t.Errorf("Summary() = %q, want empty", got)
	}
}

// TestDropAccounting drives the Tracer interface directly to pin the exact
// overflow arithmetic: with Limit n, the first n events are stored, every
// further event increments Dropped by exactly one, and dropped events
// contribute nothing to the per-instruction timelines.
func TestDropAccounting(t *testing.T) {
	rec := trace.NewRecorder()
	rec.Limit = 3
	for i := 0; i < 10; i++ {
		di := &pipeline.DynInst{Seq: uint64(i + 1), PC: uint64(4 * i)}
		rec.Event(uint64(100+i), di, "rename")
	}
	if got := len(rec.Events()); got != 3 {
		t.Fatalf("stored events = %d, want 3", got)
	}
	if got := rec.Dropped(); got != 7 {
		t.Fatalf("Dropped() = %d, want 7", got)
	}
	if got := len(rec.Timelines()); got != 3 {
		t.Fatalf("timelines = %d, want 3 (drops must not create timelines)", got)
	}
	var log strings.Builder
	if err := rec.WriteLog(&log); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "7 events dropped") {
		t.Fatalf("log missing exact drop count:\n%s", log.String())
	}
}

func TestBufferLimit(t *testing.T) {
	p := asm.MustAssemble("big", `
  movi r1, 2000
top:
  addi r1, r1, -1
  bne r1, r0, top
  halt
`)
	rec := trace.NewRecorder()
	rec.Limit = 100
	c, err := pipeline.New(pipeline.DefaultConfig(), p, mem.NewHierarchy(mem.DefaultHierarchyConfig()), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Tracer = rec
	if err := c.Run(1_000_000, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) != 100 {
		t.Fatalf("events = %d, want 100", len(rec.Events()))
	}
	if rec.Dropped() == 0 {
		t.Fatal("no drops recorded")
	}
	var sb strings.Builder
	if err := rec.WriteLog(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dropped") {
		t.Fatal("drop notice missing from log")
	}
}
