package taint

import (
	"spt/internal/isa"
	"spt/internal/pipeline"
)

// STT implements Speculative Taint Tracking (Yu et al., MICRO'19), the
// paper's narrower-scope comparison point: only speculatively-accessed
// data (outputs of loads that have not reached the visibility point) is
// tainted. Non-speculatively-accessed data — including architectural
// secrets read by retired loads — is never protected; the differential
// penetration test in internal/attack demonstrates exactly that gap.
//
// Following the paper's evaluation (footnote 6), stores are treated as
// transmitters for consistency with SPT.
type STT struct {
	core *pipeline.Core
	// sTaint is the per-physical-register speculative taint.
	sTaint []bool

	Stats STTStats
}

// STTStats counts s-taint events.
type STTStats struct {
	// Untaints counts registers whose s-taint was cleared by the
	// single-cycle transitive untaint after a load crossed the VP.
	Untaints uint64
	// TaintedAtRename counts instructions whose output was s-tainted at
	// rename (loads, and ops with at least one s-tainted input).
	TaintedAtRename uint64
	// STLPublicHits counts store-to-load forwards permitted openly because
	// every involved address was s-untainted.
	STLPublicHits uint64
}

// NewSTT builds an STT policy.
func NewSTT() *STT { return &STT{} }

// Attach implements pipeline.Policy.
func (t *STT) Attach(c *pipeline.Core) {
	t.core = c
	t.sTaint = make([]bool, c.PhysRegCount())
}

// STainted reports a register's speculative taint (for tests).
func (t *STT) STainted(p pipeline.PhysReg) bool {
	if p == pipeline.NoReg {
		return false
	}
	return t.sTaint[p]
}

// OnRename implements pipeline.Policy: load outputs are s-tainted until
// the load reaches the VP; other outputs inherit the OR of their inputs.
func (t *STT) OnRename(di *pipeline.DynInst) {
	if di.Dst == pipeline.NoReg {
		return
	}
	switch {
	case di.IsLd:
		t.sTaint[di.Dst] = true
	case di.Ins.Op == isa.MOVI, di.Ins.Op == isa.JAL:
		t.sTaint[di.Dst] = false
	default:
		t.sTaint[di.Dst] = t.STainted(di.Src1) || t.STainted(di.Src2)
	}
	if t.sTaint[di.Dst] {
		t.Stats.TaintedAtRename++
	}
}

// OnSquash implements pipeline.Policy.
func (t *STT) OnSquash(di *pipeline.DynInst) {
	if di.Dst != pipeline.NoReg {
		t.sTaint[di.Dst] = false
	}
}

// OnRetire implements pipeline.Policy.
func (t *STT) OnRetire(*pipeline.DynInst) {}

// OnVP implements pipeline.Policy. The recompute in Tick performs the
// transitive untaint; nothing to do here.
func (t *STT) OnVP(*pipeline.DynInst) {}

// OnLoadComplete implements pipeline.Policy. A completing load's output
// keeps its s-taint until the load reaches the VP.
func (t *STT) OnLoadComplete(*pipeline.DynInst) {}

// MayExecuteMem implements pipeline.Policy: explicit channels are blocked
// by delaying transmitters with s-tainted address operands.
func (t *STT) MayExecuteMem(di *pipeline.DynInst) bool {
	return di.AtVP || !t.STainted(di.Src1)
}

// MayResolveCF implements pipeline.Policy: resolution-based implicit
// channels are blocked by delaying resolution effects until the predicate
// is s-untainted.
func (t *STT) MayResolveCF(di *pipeline.DynInst) bool {
	return di.AtVP || (!t.STainted(di.Src1) && !t.STainted(di.Src2))
}

// MaySquashOnViolation implements pipeline.Policy: the violation squash is
// an implicit branch over the involved addresses.
func (t *STT) MaySquashOnViolation(ld *pipeline.DynInst) bool {
	if ld.AtVP {
		return true
	}
	if t.STainted(ld.Src1) {
		return false
	}
	// The violating store is identified by value: its ROB slot may already
	// hold another instruction by the time the squash is permitted.
	if ld.HasViolStore {
		if t.STainted(ld.ViolSrc1) {
			return false
		}
		for i := 0; i < t.core.SQLen(); i++ {
			other := t.core.SQAt(i)
			if other.Seq > ld.ViolStoreSeq && other.Seq < ld.Seq && other.AddrKnown && t.STainted(other.Src1) {
				return false
			}
		}
	}
	return true
}

// STLForwardPublic implements pipeline.STLQuery: the forwarding decision
// is public when the load's and all involved stores' addresses are
// s-untainted (STT's store-to-load forwarding exception).
func (t *STT) STLForwardPublic(st, ld *pipeline.DynInst) bool {
	if t.STainted(ld.Src1) && !ld.AtVP {
		return false
	}
	if !st.Retired && t.STainted(st.Src1) && !st.AtVP {
		return false
	}
	for i := 0; i < t.core.SQLen(); i++ {
		other := t.core.SQAt(i)
		if other.Seq <= st.Seq || other.Seq >= ld.Seq || other.AtVP {
			continue
		}
		if !other.AddrKnown || t.STainted(other.Src1) {
			return false
		}
	}
	t.Stats.STLPublicHits++
	return true
}

// Tick implements pipeline.Policy: STT's single-cycle transitive untaint.
// A full recompute over the in-flight window (oldest first) reproduces the
// paper's fast untaint hardware: a load's output is s-tainted iff the load
// has not reached the VP; every other output is the OR of its inputs.
func (t *STT) Tick() {
	older, younger := t.core.ROBWindow()
	t.tickWindow(older)
	t.tickWindow(younger)
}

func (t *STT) tickWindow(win []pipeline.DynInst) {
	for i := range win {
		di := &win[i]
		if di.Dst == pipeline.NoReg || di.Squashed {
			continue
		}
		var want bool
		op := di.Ins.Op
		switch {
		case di.IsLd:
			want = !di.AtVP
		case op == isa.MOVI, op == isa.JAL:
			want = false
		default:
			want = t.STainted(di.Src1) || t.STainted(di.Src2)
		}
		if t.sTaint[di.Dst] && !want {
			t.Stats.Untaints++
		}
		t.sTaint[di.Dst] = want
	}
}

// String identifies the policy.
func (t *STT) String() string { return "STT" }
